(* Transport-fault bench: closed-loop routed scoring throughput while
   the shards' transport layer misbehaves. Two shard server processes
   and one router run from the CLI binary (MORPHEUS_BIN); each
   measurement arms 0, 1, or 2 transport fault points in the *shard*
   processes via MORPHEUS_FAULTS in their environment — dropped reads
   (`endpoint.read`) and torn frames (`endpoint.write.torn`) — and
   runs the same sweep with hedging off and on.

   Clients issue score_ids with the retrying client (transport errors
   are retryable and idempotent, so every accepted answer is still
   bitwise-identical to a fault-free run); the reported quantities are
   requests/s, success-latency p95, and how many requests exhausted
   the retry budget. What the sweep shows: how much throughput the
   retry + failover machinery gives back under byte-level faults, and
   what hedging buys on top.

   Results go to stdout as a table and to BENCH_faults.json. As with
   the cluster bench, [cores_online] records the host's exposed cores
   and a single-core host refuses to overwrite the committed numbers. *)

open La
open Sparse
open Morpheus
open Morpheus_serve
open Workload

let client_threads = 4

(* (label, MORPHEUS_FAULTS spec for the shards, armed point count) *)
let fault_configs =
  [ ("none", "", 0);
    ("read", "seed=7,endpoint.read=0.02", 1);
    ("read+torn", "seed=7,endpoint.read=0.02,endpoint.write.torn=0.01", 2)
  ]

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd)
  @@ fun () ->
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) ;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> failwith "no port bound"

let spawn ?(env = []) bin argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close devnull)
  @@ fun () ->
  let full_env = Array.append (Unix.environment ()) (Array.of_list env) in
  Unix.create_process_env bin
    (Array.of_list (bin :: argv))
    full_env Unix.stdin devnull devnull

let await_healthy addr =
  let deadline = Timing.now () +. 10.0 in
  let rec go () =
    match Client.health ~socket:addr with
    | Ok _ -> ()
    | Error _ | (exception Unix.Unix_error _) ->
      if Timing.now () > deadline then
        failwith (Printf.sprintf "endpoint %s never became healthy" addr)
      else begin
        Thread.delay 0.05 ;
        go ()
      end
  in
  go ()

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

(* One closed-loop measurement: 2 shard processes with [faults] armed
   in their environment, one router (hedging per [hedge]),
   [client_threads] threads of retried score_ids for [window] seconds.
   Returns (ok requests, exhausted requests, elapsed, sorted ok
   latencies). *)
let measure ~bin ~reg ~ds_dir ~model ~rows ~window ~faults ~hedge =
  let shard_addrs =
    List.init 2 (fun _ -> Printf.sprintf "127.0.0.1:%d" (free_port ()))
  in
  let env = if faults = "" then [] else [ "MORPHEUS_FAULTS=" ^ faults ] in
  let shard_pids =
    List.map
      (fun addr ->
        spawn ~env bin
          [ "serve"; "--registry"; reg; "--listen"; addr; "--handlers"; "6";
            "--max-wait-ms"; "1"
          ])
      shard_addrs
  in
  let router_addr = Printf.sprintf "127.0.0.1:%d" (free_port ()) in
  let router_pid = ref None in
  let all_pids () =
    (match !router_pid with Some p -> [ p ] | None -> []) @ shard_pids
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ()) (all_pids ()) ;
      List.iter
        (fun pid -> try ignore (Unix.waitpid [] pid) with _ -> ())
        (all_pids ()))
  @@ fun () ->
  List.iter await_healthy shard_addrs ;
  router_pid :=
    Some
      (spawn bin
         ([ "route"; "--listen"; router_addr; "--block"; "8"; "--handlers"; "4" ]
         @ (if hedge then [ "--hedge" ] else [])
         @ List.concat
             (List.mapi
                (fun i addr -> [ "--shard"; Printf.sprintf "shard%d=%s" i addr ])
                shard_addrs))) ;
  await_healthy router_addr ;
  let stop_at = Timing.now () +. window in
  let oks = Array.make client_threads 0 in
  let exhausted = Array.make client_threads 0 in
  let lats = Array.make client_threads [] in
  let policy =
    { Client.default_retry with
      attempts = 6;
      base_backoff = 2e-3;
      max_backoff = 0.05;
      budget = 5.0;
      retry_codes = "unavailable" :: "rejected" :: Client.default_retry.retry_codes
    }
  in
  let worker th =
    let rng = Rng.of_int (0xfa017 + th) in
    let i = ref 0 in
    while Timing.now () < stop_at do
      let ids =
        Array.init 8 (fun k -> ((th * 7919) + (!i * 13) + (29 * k)) mod rows)
      in
      let t0 = Timing.now () in
      (match
         Client.score_ids_retry ~policy ~rng ~socket:router_addr ~model
           ~dataset:ds_dir ids
       with
      | Ok _ ->
        oks.(th) <- oks.(th) + 1 ;
        lats.(th) <- (Timing.now () -. t0) :: lats.(th)
      | Error _ ->
        (* retry budget exhausted under injected faults: a structured
           transient error, never a wrong answer *)
        exhausted.(th) <- exhausted.(th) + 1) ;
      incr i
    done
  in
  let t0 = Timing.now () in
  let threads = List.init client_threads (fun th -> Thread.create worker th) in
  List.iter Thread.join threads ;
  let elapsed = Timing.now () -. t0 in
  let sorted =
    Array.of_list (List.concat (Array.to_list lats)) |> fun a ->
    Array.sort compare a ;
    a
  in
  (Array.fold_left ( + ) 0 oks, Array.fold_left ( + ) 0 exhausted, elapsed, sorted)

let run cfg =
  Harness.section
    "Transport chaos: routed throughput with 0/1/2 armed fault points, \
     hedging off/on" ;
  match Sys.getenv_opt "MORPHEUS_BIN" with
  | None | Some "" ->
    print_endline
      "skipped: MORPHEUS_BIN must point at the morpheus CLI binary (the \
       shards and the router run as real processes)"
  | Some bin ->
    let rows = if cfg.Harness.quick then 400 else 2_000 in
    let window = if cfg.Harness.quick then 0.8 else 2.5 in
    let root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "morpheus_faults_bench_%d" (Unix.getpid ()))
    in
    rm_rf root ;
    Sys.mkdir root 0o755 ;
    Fun.protect ~finally:(fun () -> rm_rf root)
    @@ fun () ->
    let g = Rng.of_int 4242 in
    let s = Dense.random ~rng:g rows 3 in
    let r = Dense.random ~rng:g 50 4 in
    let k = Indicator.random ~rng:g ~rows ~cols:50 () in
    let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
    let d = snd (Normalized.dims t) in
    let ds_dir = Filename.concat root "ds" in
    Io.save ~dir:ds_dir t ;
    let reg = Filename.concat root "reg" in
    let entry =
      Registry.save ~dir:reg ~name:"bench"
        ~schema_hash:(Registry.schema_hash t)
        (Artifact.Logreg (Dense.random ~rng:g d 1))
    in
    let cores = Domain.recommended_domain_count () in
    Printf.printf
      "dataset: %d rows; 2 shards, %d client threads, %gs window per point; \
       host cores online: %d\n"
      rows client_threads window cores ;
    let results =
      List.concat_map
        (fun hedge ->
          List.map
            (fun (label, faults, armed) ->
              let ok, exhausted, elapsed, lat =
                measure ~bin ~reg ~ds_dir ~model:entry.Registry.id ~rows
                  ~window ~faults ~hedge
              in
              (label, armed, hedge, float_of_int ok /. elapsed, exhausted, lat))
            fault_configs)
        [ false; true ]
    in
    Printf.printf "\n%-11s %6s %6s %10s %10s %10s %10s\n" "faults" "armed"
      "hedge" "req/s" "p50" "p95" "exhausted" ;
    List.iter
      (fun (label, armed, hedge, rate, exhausted, lat) ->
        Printf.printf "%-11s %6d %6s %10.0f %10s %10s %10d\n" label armed
          (if hedge then "on" else "off")
          rate
          (Harness.ts (percentile lat 0.50))
          (Harness.ts (percentile lat 0.95))
          exhausted)
      results ;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n" ;
    Buffer.add_string buf
      (Printf.sprintf
         "  \"setting\": {\"rows\": %d, \"shards\": 2, \"client_threads\": \
          %d, \"window_s\": %.1f, \"ids_per_request\": 8, \"block\": 8, \
          \"retry_attempts\": 6},\n"
         rows client_threads window) ;
    Buffer.add_string buf (Printf.sprintf "  \"cores_online\": %d,\n" cores) ;
    Buffer.add_string buf "  \"points\": [\n" ;
    List.iteri
      (fun i (label, armed, hedge, rate, exhausted, lat) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"faults\": \"%s\", \"points_armed\": %d, \"hedge\": %b, \
              \"req_per_s\": %.1f, \"retry_exhausted\": %d, \"latency_s\": \
              {\"p50\": %.6f, \"p95\": %.6f}}%s\n"
             label armed hedge rate exhausted
             (percentile lat 0.50) (percentile lat 0.95)
             (if i = List.length results - 1 then "" else ",")))
      results ;
    Buffer.add_string buf "  ]\n}\n" ;
    let path = "BENCH_faults.json" in
    (* a single-core host serializes the shard processes and measures
       nothing: never let it silently replace the committed numbers *)
    if cores <= 1 && Sys.file_exists path && not cfg.Harness.force then
      Printf.printf
        "\nWARNING: host exposes only %d core online; NOT overwriting the \
         committed %s (re-run with --force to override)\n"
        cores path
    else begin
      let oc = open_out path in
      output_string oc (Buffer.contents buf) ;
      close_out oc ;
      Printf.printf "\nwrote %s\n" path
    end
