(* Figure 5 (plus appendix Figures 8, 9, 10): the four ML algorithms on
   synthetic PK-FK data — logistic regression, linear regression (normal
   equations and gradient descent), K-Means, and GNMF — sweeping the
   tuple ratio, the feature ratio, the iteration count, and the number
   of centroids/topics, exactly the axes of the paper's plots. *)

open La
open Morpheus
open Ml_algs.Algorithms
open Workload

let iters cfg = if cfg.Harness.quick then 3 else 5
let base_nr cfg = if cfg.Harness.quick then 500 else 2_000

type algo = {
  name : string;
  fact : iters:int -> Normalized.t -> Dense.t -> Dense.t -> unit;
  mat : iters:int -> Regular_matrix.t -> Dense.t -> Dense.t -> unit;
}

let algos =
  [ { name = "Logistic Regression";
      fact = (fun ~iters t y _ -> ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters t y));
      mat = (fun ~iters m y _ -> ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters m y)) };
    { name = "Linear Regression (normal equations)";
      fact = (fun ~iters:_ t _ yn -> ignore (Factorized.Linreg.train_normal t yn));
      mat = (fun ~iters:_ m _ yn -> ignore (Materialized.Linreg.train_normal m yn)) };
    { name = "Linear Regression (gradient descent)";
      fact = (fun ~iters t _ yn -> ignore (Factorized.Linreg.train_gd ~alpha:1e-7 ~iters t yn));
      mat = (fun ~iters m _ yn -> ignore (Materialized.Linreg.train_gd ~alpha:1e-7 ~iters m yn)) };
    { name = "K-Means (k=5)";
      fact = (fun ~iters t _ _ -> ignore (Factorized.Kmeans.train ~iters ~k:5 t));
      mat = (fun ~iters m _ _ -> ignore (Materialized.Kmeans.train ~iters ~k:5 m)) };
    { name = "GNMF (rank=5)";
      fact = (fun ~iters t _ _ -> ignore (Factorized.Gnmf.train ~iters ~rank:5 t));
      mat = (fun ~iters m _ _ -> ignore (Materialized.Gnmf.train ~iters ~rank:5 m)) } ]

let bench_case cfg algo ~iters (d : Synthetic.pkfk) =
  let t = d.Synthetic.t in
  let m = Materialize.to_regular t in
  let y = d.Synthetic.y and yn = d.Synthetic.y_numeric in
  Harness.time_fm cfg
    ~f:(fun () -> algo.fact ~iters t y yn)
    ~m:(fun () -> algo.mat ~iters m y yn)

let run cfg =
  Harness.section "Figure 5 (a,b row): ML algorithms, vary TR and FR" ;
  let trs = if cfg.Harness.quick then [ 5; 20 ] else [ 5; 10; 15; 20 ] in
  let frs = if cfg.Harness.quick then [ 2.0 ] else [ 1.0; 2.0; 4.0 ] in
  let it = iters cfg in
  List.iter
    (fun algo ->
      Harness.subsection algo.name ;
      Printf.printf "%6s %6s %12s %12s %9s\n" "TR" "FR" "M" "F" "speedup" ;
      List.iter
        (fun tr ->
          List.iter
            (fun fr ->
              let d = Synthetic.table4_tuple_ratio ~base:(base_nr cfg) ~tr ~fr () in
              let tf, tm = bench_case cfg algo ~iters:it d in
              Fmt.pr "%6d %6.2f %12s %12s %8.1fx@." tr fr (Harness.ts tm)
                (Harness.ts tf) (tm /. tf))
            frs)
        trs)
    algos

(* Figure 5(c1,d1) / appendix 8(c), 9: runtime vs number of iterations. *)
let run_iterations cfg =
  Harness.section "Figures 5(c1,d1)/8/9: runtime vs iterations (TR=10, FR=4)" ;
  let iter_grid = if cfg.Harness.quick then [ 2; 5 ] else [ 2; 5; 10; 20 ] in
  let d = Synthetic.table4_tuple_ratio ~base:(base_nr cfg) ~tr:10 ~fr:4.0 () in
  List.iter
    (fun algo ->
      Harness.subsection algo.name ;
      Printf.printf "%8s %12s %12s %9s\n" "iters" "M" "F" "speedup" ;
      List.iter
        (fun it ->
          let tf, tm = bench_case cfg algo ~iters:it d in
          Fmt.pr "%8d %12s %12s %8.1fx@." it (Harness.ts tm) (Harness.ts tf) (tm /. tf))
        iter_grid)
    (List.filter (fun a -> a.name <> "Linear Regression (normal equations)") algos)

(* Figure 5(c2): K-Means runtime vs number of centroids; (d2): GNMF vs
   number of topics. *)
let run_centroids_topics cfg =
  Harness.section "Figure 5(c2,d2): K-Means vs #centroids, GNMF vs #topics (TR=10, FR=4)" ;
  let d = Synthetic.table4_tuple_ratio ~base:(base_nr cfg) ~tr:10 ~fr:4.0 () in
  let t = d.Synthetic.t in
  let m = Materialize.to_regular t in
  let it = iters cfg in
  Harness.subsection "K-Means" ;
  Printf.printf "%10s %12s %12s %9s\n" "centroids" "M" "F" "speedup" ;
  List.iter
    (fun k ->
      let tf, tm =
        Harness.time_fm cfg
          ~f:(fun () -> ignore (Factorized.Kmeans.train ~iters:it ~k t))
          ~m:(fun () -> ignore (Materialized.Kmeans.train ~iters:it ~k m))
      in
      Fmt.pr "%10d %12s %12s %8.1fx@." k (Harness.ts tm) (Harness.ts tf)
        (tm /. tf))
    (if cfg.Harness.quick then [ 5; 10 ] else [ 5; 10; 15; 20 ]) ;
  Harness.subsection "GNMF" ;
  Printf.printf "%10s %12s %12s %9s\n" "topics" "M" "F" "speedup" ;
  List.iter
    (fun rank ->
      let tf, tm =
        Harness.time_fm cfg
          ~f:(fun () -> ignore (Factorized.Gnmf.train ~iters:it ~rank t))
          ~m:(fun () -> ignore (Materialized.Gnmf.train ~iters:it ~rank m))
      in
      Fmt.pr "%10d %12s %12s %8.1fx@." rank (Harness.ts tm) (Harness.ts tf) (tm /. tf))
    (if cfg.Harness.quick then [ 2; 5 ] else [ 2; 4; 6; 8; 10 ])
