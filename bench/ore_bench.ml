(* Tables 9 and 10: per-iteration logistic regression over chunked
   (larger-than-memory-style) data, PK-FK and M:N. The materialized path
   streams the wide T from disk chunk by chunk; the Morpheus path keeps
   the small R in memory and streams only S (PK-FK) or only indicator
   windows (M:N), exactly the Morpheus-on-ORE architecture of §5.2.4. *)

open La
open Morpheus
open Workload

let tmpdir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "morpheus_bench_%s_%d" tag (Unix.getpid ()))

let per_iteration cfg cn t_store y =
  let w0_f = Dense.create (Ore.Chunked_normalized.cols cn) 1 in
  let w0_m = Dense.create (Ore.Chunk_store.cols t_store) 1 in
  let t_f =
    Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
        ignore (Ore.Ore_logreg.iteration_factorized ~alpha:1e-4 cn y w0_f))
  in
  let t_m =
    Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
        ignore (Ore.Ore_logreg.iteration_materialized ~alpha:1e-4 t_store y w0_m))
  in
  (t_f, t_m)

let run_table9 cfg =
  Harness.section "Table 9: ORE-style chunked logistic regression, PK-FK (per-iteration)" ;
  let ns = if cfg.Harness.quick then 40_000 else 200_000 in
  let nr = ns / 20 and ds = 20 in
  let chunk = ns / 10 in
  Printf.printf "(nS=%d, nR=%d, dS=%d, %d-row chunks on disk)\n" ns nr ds chunk ;
  Printf.printf "%6s %14s %14s %9s\n" "FR" "Materialized" "Morpheus" "speedup" ;
  List.iter
    (fun fr ->
      let dr = int_of_float (fr *. float_of_int ds) in
      let data = Synthetic.pkfk ~seed:dr ~ns ~ds ~nr ~dr () in
      let t = data.Synthetic.t in
      let dir_s = tmpdir (Printf.sprintf "t9s_%d" dr) in
      let cn = Ore.Chunked_normalized.of_normalized ~dir:dir_s ~chunk_size:chunk t in
      let dir_t = tmpdir (Printf.sprintf "t9t_%d" dr) in
      let t_store = Ore.Chunked_normalized.materialize ~dir:dir_t cn in
      Fun.protect
        ~finally:(fun () ->
          Ore.Chunk_store.delete t_store ;
          Ore.Chunked_normalized.cleanup cn)
        (fun () ->
          let tf, tm = per_iteration cfg cn t_store data.Synthetic.y in
          Fmt.pr "%6.1f %14s %14s %8.1fx@." fr (Harness.ts tm) (Harness.ts tf) (tm /. tf)))
    [ 0.5; 1.0; 2.0; 4.0 ]

let run_table10 cfg =
  Harness.section "Table 10: ORE-style chunked logistic regression, M:N (per-iteration)" ;
  let ns = if cfg.Harness.quick then 2_000 else 5_000 in
  let d = if cfg.Harness.quick then 30 else 40 in
  Printf.printf "(nS=nR=%d, dS=dR=%d; domain size nU varies)\n" ns d ;
  Printf.printf "%10s %10s %14s %14s %9s\n" "nU" "|T| rows" "Materialized" "Morpheus"
    "speedup" ;
  List.iter
    (fun u ->
      let nu = max 1 (int_of_float (u *. float_of_int ns)) in
      let data = Synthetic.mn ~seed:nu ~ns ~nr:ns ~ds:d ~dr:d ~nu () in
      let t = data.Synthetic.t in
      let n_out = Normalized.rows t in
      let chunk = max 1 (n_out / 10) in
      let dir_s = tmpdir (Printf.sprintf "t10s_%d" nu) in
      let cn = Ore.Chunked_normalized.of_normalized ~dir:dir_s ~chunk_size:chunk t in
      let dir_t = tmpdir (Printf.sprintf "t10t_%d" nu) in
      let t_store = Ore.Chunked_normalized.materialize ~dir:dir_t cn in
      Fun.protect
        ~finally:(fun () ->
          Ore.Chunk_store.delete t_store ;
          Ore.Chunked_normalized.cleanup cn)
        (fun () ->
          let tf, tm = per_iteration cfg cn t_store data.Synthetic.y in
          Fmt.pr "%10d %10d %14s %14s %8.1fx@." nu n_out (Harness.ts tm)
            (Harness.ts tf) (tm /. tf)))
    (if cfg.Harness.quick then [ 0.5; 0.05 ] else [ 0.5; 0.1; 0.05; 0.01 ])
