(* Serving bench: closed-loop clients against an in-process scoring
   server on a Unix socket, measuring end-to-end request latency
   (client-side p50/p95/p99) and throughput. The interesting contrast
   is micro-batching on (max_batch 64) vs off (max_batch 1): with
   batching, concurrent same-model requests fuse into one factorized
   select_rows + product, so the R-side work is paid once per batch
   instead of once per request.

   Results go to stdout and BENCH_serve.json in the current directory. *)

open La
open Morpheus
open Morpheus_serve

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

type scenario_result = {
  sc_name : string;
  sc_clients : int;
  sc_requests : int;
  sc_wall : float;
  sc_p50 : float;
  sc_p95 : float;
  sc_p99 : float;
  sc_max : float;
  sc_mean_batch : float;
  sc_batches : int;
}

(* One closed loop: [requests] score-by-ids calls of [ids_per_req] rows
   each, latencies recorded client-side. *)
let client_loop ~socket ~model ~dataset ~ids_per_req ~n_rows ~requests ~seed out
    =
  let rng = Rng.of_int seed in
  Client.with_client ~socket (fun c ->
      for r = 0 to requests - 1 do
        let ids = Array.init ids_per_req (fun _ -> Rng.int rng n_rows) in
        let t0 = Unix.gettimeofday () in
        (match Client.score_ids c ~model ~dataset ids with
        | Ok _ -> ()
        | Error (code, msg) ->
          Printf.eprintf "serve bench: [%s] %s\n%!" code msg ;
          exit 1) ;
        out.(r) <- Unix.gettimeofday () -. t0
      done)

let run_scenario ~name ~registry ~socket ~model ~dataset ~n_rows ~max_batch
    ~clients ~requests ~ids_per_req =
  let server =
    Server.start
      { (Server.default_config ~registry ~socket) with
        Server.max_batch;
        (* zero linger: a batch is whatever queued while the scorer was
           busy, so batching never *adds* latency and the contrast with
           max_batch = 1 isolates the fusion win *)
        max_wait = 0.0;
        handlers = clients
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop server)
  @@ fun () ->
  (* warmup: fault in the model and the dataset *)
  Client.with_client ~socket (fun c ->
      match Client.score_ids c ~model ~dataset [| 0 |] with
      | Ok _ -> ()
      | Error (code, msg) ->
        Printf.eprintf "serve bench warmup: [%s] %s\n%!" code msg ;
        exit 1) ;
  let lat = Array.init clients (fun _ -> Array.make requests 0.0) in
  let wall0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            client_loop ~socket ~model ~dataset ~ids_per_req ~n_rows ~requests
              ~seed:(1000 + i) lat.(i))
          ())
  in
  List.iter Thread.join threads ;
  let wall = Unix.gettimeofday () -. wall0 in
  let all = Array.concat (Array.to_list lat) in
  Array.sort compare all ;
  let snapshot = Metrics.snapshot (Server.metrics server) in
  let stat path conv =
    List.fold_left
      (fun acc k -> Option.bind acc (Json.member k))
      (Some snapshot) path
    |> Fun.flip Option.bind conv
  in
  { sc_name = name;
    sc_clients = clients;
    sc_requests = clients * requests;
    sc_wall = wall;
    sc_p50 = percentile all 0.50;
    sc_p95 = percentile all 0.95;
    sc_p99 = percentile all 0.99;
    sc_max = all.(Array.length all - 1);
    sc_mean_batch =
      Option.value ~default:0.0 (stat [ "batches"; "mean_requests" ] Json.to_float);
    sc_batches =
      Option.value ~default:0 (stat [ "batches"; "count" ] Json.to_int)
  }

let print_result r =
  Printf.printf
    "%-12s %2d clients  %6d reqs  %7.0f req/s  p50 %6.3fms  p95 %6.3fms  p99 \
     %6.3fms  (batches: %d, mean %.1f reqs)\n%!"
    r.sc_name r.sc_clients r.sc_requests
    (float_of_int r.sc_requests /. r.sc_wall)
    (1e3 *. r.sc_p50) (1e3 *. r.sc_p95) (1e3 *. r.sc_p99) r.sc_batches
    r.sc_mean_batch

let json_result r =
  Printf.sprintf
    "    { \"scenario\": %S, \"clients\": %d, \"requests\": %d,\n\
    \      \"throughput_rps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f,\n\
    \      \"p99_ms\": %.4f, \"max_ms\": %.4f,\n\
    \      \"batches\": %d, \"mean_batch_requests\": %.2f }"
    r.sc_name r.sc_clients r.sc_requests
    (float_of_int r.sc_requests /. r.sc_wall)
    (1e3 *. r.sc_p50) (1e3 *. r.sc_p95) (1e3 *. r.sc_p99) (1e3 *. r.sc_max)
    r.sc_batches r.sc_mean_batch

let run (cfg : Harness.config) =
  Harness.section "Serving: micro-batched scoring over a Unix socket" ;
  (* a heavy attribute table: the R-side term of the factorized product
     is the per-batch fixed cost micro-batching amortizes *)
  let ns = if cfg.Harness.quick then 20_000 else 100_000 in
  let nr = if cfg.Harness.quick then 500 else 2_000 in
  let dr = if cfg.Harness.quick then 100 else 200 in
  let clients = if cfg.Harness.quick then 4 else 8 in
  let requests = if cfg.Harness.quick then 150 else 600 in
  let ids_per_req = 8 in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "morpheus_serve_bench_%d" (Unix.getpid ()))
  in
  rm_rf root ;
  Sys.mkdir root 0o755 ;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  let data = Workload.Synthetic.pkfk ~seed:7 ~ns ~ds:5 ~nr ~dr () in
  let t = data.Workload.Synthetic.t in
  let n_rows, d = Normalized.dims t in
  let dataset = Filename.concat root "ds" in
  Io.save ~dir:dataset t ;
  let registry = Filename.concat root "reg" in
  let model =
    (Registry.save ~dir:registry ~name:"bench"
       ~schema_hash:(Registry.schema_hash t)
       (Artifact.Logreg (Dense.random ~rng:(Rng.of_int 9) d 1)))
      .Registry.id
  in
  Printf.printf "dataset: %d x %d (nr=%d), model %s, %d ids/request\n%!" n_rows
    d nr model ids_per_req ;
  let scenario name max_batch i =
    run_scenario ~name ~registry
      ~socket:(Filename.concat root (Printf.sprintf "sock%d" i))
      ~model ~dataset ~n_rows ~max_batch ~clients ~requests ~ids_per_req
  in
  let unbatched = scenario "unbatched" 1 0 in
  print_result unbatched ;
  let batched = scenario "batched" 64 1 in
  print_result batched ;
  Printf.printf "micro-batching p95 speed-up: %.2fx\n%!"
    (unbatched.sc_p95 /. Float.max 1e-9 batched.sc_p95) ;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n" ;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"ns\": %d, \"nr\": %d, \"d\": %d, \"clients\": %d,\n\
       \    \"requests_per_client\": %d, \"ids_per_request\": %d },\n" ns nr d
       clients requests ids_per_req) ;
  Buffer.add_string buf "  \"scenarios\": [\n" ;
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_result [ unbatched; batched ])) ;
  Buffer.add_string buf "\n  ]\n}\n" ;
  let path = "BENCH_serve.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf)) ;
  Printf.printf "wrote %s\n%!" path
