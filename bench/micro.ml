(* Bechamel micro-suite: one Test.make per table/figure family, timing
   the core factorized vs materialized operator of that experiment with
   OLS estimation over many samples. Complements the sweep benches with
   statistically robust per-op numbers at one representative size. *)

open Bechamel
open Toolkit
open La
open Sparse
open Morpheus
open Workload

let make_tests cfg =
  let ns = if cfg.Harness.quick then 10_000 else 40_000 in
  let nr = ns / 10 in
  let data = Synthetic.pkfk ~seed:9 ~ns ~ds:10 ~nr ~dr:40 () in
  let t = data.Synthetic.t in
  let m = Materialize.to_mat t in
  let y = data.Synthetic.y in
  let mn = Synthetic.mn ~seed:9 ~ns:(ns / 20) ~nr:(ns / 20) ~ds:20 ~dr:20
      ~nu:(ns / 200) ()
  in
  let tmn = mn.Synthetic.t in
  let mmn = Materialize.to_mat tmn in
  let x = Dense.random ~rng:(Rng.of_int 1) (Normalized.cols t) 1 in
  let xm = Dense.random ~rng:(Rng.of_int 1) (Normalized.cols tmn) 1 in
  let stage f = Staged.stage f in
  let module FL = Ml_algs.Algorithms.Factorized.Logreg in
  let module ML = Ml_algs.Algorithms.Materialized.Logreg in
  [ Test.make ~name:"fig3/scalar:M" (stage (fun () -> ignore (Mat.scale 2.0 m)));
    Test.make ~name:"fig3/scalar:F" (stage (fun () -> ignore (Rewrite.scale 2.0 t)));
    Test.make ~name:"fig3/lmm:M" (stage (fun () -> ignore (Mat.mm m x)));
    Test.make ~name:"fig3/lmm:F" (stage (fun () -> ignore (Rewrite.lmm t x)));
    Test.make ~name:"fig3/crossprod:M" (stage (fun () -> ignore (Mat.crossprod m)));
    Test.make ~name:"fig3/crossprod:F" (stage (fun () -> ignore (Rewrite.crossprod t)));
    Test.make ~name:"fig4/mn-lmm:M" (stage (fun () -> ignore (Mat.mm mmn xm)));
    Test.make ~name:"fig4/mn-lmm:F" (stage (fun () -> ignore (Rewrite.lmm tmn xm)));
    Test.make ~name:"fig5/logreg-iter:M"
      (stage (fun () -> ignore (ML.train ~alpha:1e-4 ~iters:1 (Regular_matrix.of_mat m) y)));
    Test.make ~name:"fig5/logreg-iter:F"
      (stage (fun () -> ignore (FL.train ~alpha:1e-4 ~iters:1 t y)));
    Test.make ~name:"tab3/rowsums:M" (stage (fun () -> ignore (Mat.row_sums m)));
    Test.make ~name:"tab3/rowsums:F" (stage (fun () -> ignore (Rewrite.row_sums t))) ]

let run cfg =
  Harness.section "Bechamel micro-suite (OLS ns/run estimates)" ;
  let tests = Test.make_grouped ~name:"morpheus" ~fmt:"%s %s" (make_tests cfg) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let bench_cfg =
    Benchmark.cfg ~limit:1000
      ~quota:(Time.second (if cfg.Harness.quick then 0.25 else 0.5))
      ~kde:(Some 500) ()
  in
  let raw = Benchmark.all bench_cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf "%-36s %16s\n" "benchmark" "time/run" ;
  let times = Hashtbl.create 16 in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
        Hashtbl.replace times name est ;
        let pp =
          if est > 1e9 then Printf.sprintf "%10.3f s " (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%10.3f ms" (est /. 1e6)
          else Printf.sprintf "%10.3f us" (est /. 1e3)
        in
        Printf.printf "%-36s %16s\n" name pp
      | _ -> Printf.printf "%-36s %16s\n" name "n/a")
    rows ;
  (* derived speed-ups per family *)
  print_newline () ;
  Hashtbl.iter
    (fun name est ->
      let suffix = ":M" in
      if Filename.check_suffix name suffix then begin
        let base = Filename.chop_suffix name suffix in
        match Hashtbl.find_opt times (base ^ ":F") with
        | Some f -> Printf.printf "%-30s speed-up %.2fx\n" base (est /. f)
        | None -> ()
      end)
    times
