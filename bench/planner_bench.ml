(* Planner bench: pushed-down selection vs materialize-then-filter.

   A segment query sigma_p(T)' sigma_p(T) (the filtered Gram matrix)
   and a segment scoring pass sigma_p(T) * w can run two ways:

   - pushdown: evaluate the predicate with per-table masks over the
     factorized representation, compose indicator mappings with one
     Normalized.select_rows, and run the factorized rewrite on the
     still-normalized segment (what Expr.optimize emits for
     filter(...) plans — docs/PLANNER.md);
   - materialize-then-filter: materialize the join, evaluate the
     predicate over the joined rows, gather the survivors, and run the
     standard kernel on the filtered regular matrix.

   The sweep varies predicate selectivity at the Fig-3 "large" cell
   (TR = 20, FR = 4). Results go to stdout and BENCH_planner.json; the
   expectation checked by eye (and recorded in the JSON) is that
   pushdown wins at every selectivity <= 0.5, where the avoided
   materialization dominates. *)

open La
open Morpheus
open Workload

let selectivities = [ 0.01; 0.1; 0.25; 0.5; 0.9 ]

let json_floats l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.6f") l) ^ "]"

let run cfg =
  Harness.section
    "Planner: pushed-down selection vs materialize-then-filter (TR=20 FR=4)" ;
  let base = if cfg.Harness.quick then 500 else 2_000 in
  let d = Synthetic.table4_tuple_ratio ~base ~tr:20 ~fr:4.0 () in
  let t = d.Synthetic.t in
  let n, dc = Normalized.dims t in
  let dense_t = Sparse.Mat.dense (Materialize.to_mat t) in
  let w = Dense.gaussian ~rng:(Rng.of_int 11) dc 1 in
  (* thresholds from the empirical quantiles of column c0, so each
     target selectivity is hit to within 1/n *)
  let col0 = Array.init n (fun i -> Dense.get dense_t i 0) in
  Array.sort compare col0 ;
  Printf.printf "T: %d x %d; predicate c0 < quantile(sel)\n\n" n dc ;
  Printf.printf "%-6s %-6s %22s %22s\n" "sel" "rows" "crossprod (push/mat)"
    "scoring (push/mat)" ;
  let results =
    List.map
      (fun sel ->
        let thr =
          col0.(min (n - 1) (int_of_float (sel *. float_of_int n)))
        in
        let pred =
          match Pred.parse (Printf.sprintf "c0 < %.17g" thr) with
          | Ok p -> p
          | Error msg -> failwith ("planner bench predicate: " ^ msg)
        in
        let rows = Array.length (Relalg.mask t pred) in
        let push_xp () = ignore (Rewrite.crossprod (Relalg.filter t pred)) in
        let mat_xp () =
          ignore
            (Sparse.Mat.crossprod (Relalg.filter_mat (Materialize.to_mat t) pred))
        in
        let push_sc () = ignore (Rewrite.lmm (Relalg.filter t pred) w) in
        let mat_sc () =
          ignore (Sparse.Mat.mm (Relalg.filter_mat (Materialize.to_mat t) pred) w)
        in
        let time f = Timing.measure ~warmup:1 ~runs:cfg.Harness.runs f in
        let txp_p = time push_xp and txp_m = time mat_xp in
        let tsc_p = time push_sc and tsc_m = time mat_sc in
        Printf.printf "%-6.2f %-6d %10s/%-10s %10s/%-10s  xp %5.2fx  sc %5.2fx\n"
          sel rows (Harness.ts txp_p) (Harness.ts txp_m) (Harness.ts tsc_p)
          (Harness.ts tsc_m) (txp_m /. txp_p) (tsc_m /. tsc_p) ;
        (sel, rows, (txp_p, txp_m), (tsc_p, tsc_m)))
      selectivities
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n" ;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"setting\": {\"base\": %d, \"tr\": 20, \"fr\": 4.0, \"rows\": %d, \
        \"cols\": %d, \"predicate\": \"c0 < quantile(sel)\"},\n"
       base n dc) ;
  Buffer.add_string buf
    "  \"expectation\": \"pushdown beats materialize-then-filter at every \
     selectivity <= 0.5\",\n" ;
  Buffer.add_string buf
    (Printf.sprintf "  \"selectivities\": %s,\n" (json_floats selectivities)) ;
  Buffer.add_string buf "  \"sweep\": [\n" ;
  List.iteri
    (fun i (sel, rows, (txp_p, txp_m), (tsc_p, tsc_m)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"selectivity\": %.2f, \"rows\": %d, \"crossprod\": \
            {\"pushdown_s\": %.6f, \"materialize_s\": %.6f, \"speedup\": \
            %.3f}, \"scoring\": {\"pushdown_s\": %.6f, \"materialize_s\": \
            %.6f, \"speedup\": %.3f}}%s\n"
           sel rows txp_p txp_m (txp_m /. txp_p) tsc_p tsc_m (tsc_m /. tsc_p)
           (if i = List.length results - 1 then "" else ",")))
    results ;
  Buffer.add_string buf "  ]\n}\n" ;
  let path = "BENCH_planner.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf) ;
  close_out oc ;
  Printf.printf "\nwrote %s\n" path
