(* Sync-layer overhead bench: the cost of the named-lock wrappers
   against raw Stdlib mutexes, in the three modes that matter for the
   lockdep design contract:

     raw         Mutex.lock / Mutex.unlock
     sync-off    Sync.lock / Sync.unlock, lockdep disabled
     sync-on     same, lockdep enabled (graph + held-stack updates)

   The contract is that sync-off is within noise of raw (the disabled
   path is one bool-ref load on top of the mutex), so the wrappers can
   stay on production serve/kernel paths; sync-on is expected to cost
   several times more and is a debug mode. Both an uncontended loop
   and a 4-thread contended loop are measured — contention is where
   serve-path locks (batcher, metrics) actually live.

   Results go to stdout and BENCH_sync.json. *)

open Workload

let ops_uncontended = 2_000_000
let ops_contended = 200_000
let contended_threads = 4

(* ns/op over [runs] medians of a lock/unlock loop *)
let time_loop cfg ~ops f =
  let t = Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () -> f ops) in
  t /. float_of_int ops *. 1e9

let raw_loop counter m ops =
  for _ = 1 to ops do
    Mutex.lock m ;
    incr counter ;
    Mutex.unlock m
  done

let sync_loop counter l ops =
  for _ = 1 to ops do
    Analysis.Sync.lock l ;
    incr counter ;
    Analysis.Sync.unlock l
  done

(* [contended_threads] systhreads hammering one lock; each runs
   ops/threads iterations so total work matches the label. *)
let contended loop ops =
  let per = ops / contended_threads in
  let ts =
    Array.init contended_threads (fun _ -> Thread.create (fun () -> loop per) ())
  in
  Array.iter Thread.join ts

let with_lockdep_mode on f =
  let was = Analysis.Sync.lockdep_enabled () in
  Analysis.Sync.reset_lockdep () ;
  if on then Analysis.Sync.enable_lockdep ()
  else Analysis.Sync.disable_lockdep () ;
  Fun.protect
    ~finally:(fun () ->
      Analysis.Sync.reset_lockdep () ;
      if was then Analysis.Sync.enable_lockdep ()
      else Analysis.Sync.disable_lockdep ())
    f

let run (cfg : Harness.config) =
  let ops_u = if cfg.quick then ops_uncontended / 20 else ops_uncontended in
  let ops_c = if cfg.quick then ops_contended / 20 else ops_contended in
  Harness.section "Sync wrapper overhead (ns per lock/unlock)" ;
  let counter = ref 0 in
  let m = Mutex.create () in
  let l = Analysis.Sync.create ~name:"bench.sync" () in
  let raw_u = time_loop cfg ~ops:ops_u (raw_loop counter m) in
  let off_u =
    with_lockdep_mode false (fun () ->
        time_loop cfg ~ops:ops_u (sync_loop counter l))
  in
  let on_u =
    with_lockdep_mode true (fun () ->
        time_loop cfg ~ops:ops_u (sync_loop counter l))
  in
  let raw_c =
    time_loop cfg ~ops:ops_c (fun ops ->
        contended (raw_loop counter m) ops)
  in
  let off_c =
    with_lockdep_mode false (fun () ->
        time_loop cfg ~ops:ops_c (fun ops ->
            contended (sync_loop counter l) ops))
  in
  let on_c =
    with_lockdep_mode true (fun () ->
        time_loop cfg ~ops:ops_c (fun ops ->
            contended (sync_loop counter l) ops))
  in
  Printf.printf "%-22s %10s %10s %10s %14s\n" "scenario" "raw" "sync-off"
    "sync-on" "off/raw ratio" ;
  let row name raw off on_ =
    Printf.printf "%-22s %8.1fns %8.1fns %8.1fns %13.2fx\n" name raw off on_
      (off /. raw)
  in
  row (Printf.sprintf "uncontended x%d" ops_u) raw_u off_u on_u ;
  row
    (Printf.sprintf "%d threads x%d" contended_threads ops_c)
    raw_c off_c on_c ;
  ignore !counter ;
  let j =
    Printf.sprintf
      "{\"uncontended\":{\"raw_ns\":%.2f,\"sync_off_ns\":%.2f,\"sync_on_ns\":%.2f},\n\
       \ \"contended\":{\"threads\":%d,\"raw_ns\":%.2f,\"sync_off_ns\":%.2f,\"sync_on_ns\":%.2f}}\n"
      raw_u off_u on_u contended_threads raw_c off_c on_c
  in
  let oc = open_out "BENCH_sync.json" in
  output_string oc j ;
  close_out oc ;
  Printf.printf "\nwrote BENCH_sync.json\n"
