(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (§5 + appendix) at a configurable scale.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig3         # one experiment
     dune exec bench/main.exe -- --quick all  # fast smoke pass
     dune exec bench/main.exe -- --list       # experiment index

   Absolute times differ from the paper's testbed (R + tuned BLAS on a
   20-core Xeon vs this pure-OCaml substrate); the reproduced quantity is
   the *shape*: who wins, by what factor, and where the crossovers sit. *)

let experiments : (string * string * (Harness.config -> unit)) list =
  [ ("fig3", "Fig 3: PK-FK operator speed-up grids (scalar, LMM, crossprod, ginv)",
     fun cfg -> Fig3.run cfg);
    ("fig6", "Fig 6/7: appendix operators over the same PK-FK sweep",
     fun cfg -> Fig3.run_fig6 cfg);
    ("fig4", "Fig 4: M:N join operators vs uniqueness degree",
     fun cfg -> Fig4.run cfg);
    ("fig11", "Fig 11/12: all operators over M:N sweeps",
     fun cfg -> Fig4.run_all_ops cfg);
    ("fig5", "Fig 5: four ML algorithms, vary TR and FR", Fig5.run);
    ("fig8", "Fig 5(c1,d1)/8/9: ML algorithms vs iterations", Fig5.run_iterations);
    ("fig5cd", "Fig 5(c2,d2): K-Means vs centroids, GNMF vs topics",
     Fig5.run_centroids_topics);
    ("table3", "Table 3/11: arithmetic computations, model vs measured flops",
     Flops_bench.run);
    ("table7", "Table 7: real datasets (simulated), runtimes and speed-ups",
     Tables.run_table7);
    ("table7full", "Table 7 at full published scale (logreg only; slow)",
     Tables.run_table7_full);
    ("table8", "Table 8: Morpheus vs Orion", Tables.run_table8);
    ("table9", "Table 9: ORE-style chunked logreg, PK-FK", Ore_bench.run_table9);
    ("table10", "Table 10: ORE-style chunked logreg, M:N", Ore_bench.run_table10);
    ("table12", "Table 12: data preparation vs logreg runtime", Tables.run_table12);
    ("ablate", "Ablations: crossprod method, LMM order, kernels, policy", Ablate.run);
    ("scaling", "Parallel scaling: Exec domains vs wall-clock, JSON report",
     Scaling.run);
    ("kernels", "Dense kernels: naive vs cache-blocked/tiled, JSON report",
     Kernels.run);
    ("planner", "Planner: pushed-down selection vs materialize-then-filter, JSON report",
     Planner_bench.run);
    ("memo", "Memoization + in-place kernels: per-iteration time/alloc, JSON report",
     Memo_bench.run);
    ("serve", "Scoring server: micro-batched vs unbatched latency, JSON report",
     Serve_bench.run);
    ("cluster", "Sharded serving: routed throughput over 1/2/4 shard processes, JSON report",
     Cluster_bench.run);
    ("faults", "Transport chaos: throughput with 0/1/2 armed fault points, hedging off/on, JSON report",
     Faults_bench.run);
    ("sync", "Sync named-lock wrapper overhead vs raw mutexes, JSON report",
     Sync_bench.run);
    ("micro", "Bechamel micro-suite (one Test.make per experiment family)", Micro.run) ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--runs N] [--runtimes] [--force] [--list] \
     [EXPERIMENT...]" ;
  print_endline "experiments:" ;
  List.iter (fun (n, d, _) -> Printf.printf "  %-9s %s\n" n d) experiments ;
  print_endline "  all       every experiment above (default)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let cfg = ref Harness.default in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      cfg := { !cfg with Harness.quick = true } ;
      parse rest
    | "--runtimes" :: rest ->
      cfg := { !cfg with Harness.runtimes = true } ;
      parse rest
    | "--force" :: rest ->
      cfg := { !cfg with Harness.force = true } ;
      parse rest
    | "--runs" :: n :: rest ->
      cfg := { !cfg with Harness.runs = int_of_string n } ;
      parse rest
    | ("--list" | "--help") :: _ ->
      usage () ;
      exit 0
    | name :: rest ->
      selected := name :: !selected ;
      parse rest
  in
  parse args ;
  let names =
    match List.rev !selected with
    | [] | [ "all" ] -> List.map (fun (n, _, _) -> n) experiments
    | l -> l
  in
  Printf.printf "Morpheus bench harness — %s mode, %d timed runs per measurement\n"
    (if !cfg.Harness.quick then "quick" else "full")
    !cfg.Harness.runs ;
  (* The paper benches time repeated applications of one operator on one
     matrix; with the memo layer on, warmup would populate the caches and
     the measured runs would see hits instead of kernels. Off globally;
     the memo bench re-enables it for its "after" arm. *)
  La.Memo.set_enabled false ;
  let t0 = Workload.Timing.now () in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, _, run) -> run !cfg
      | None ->
        Printf.printf "unknown experiment %S\n" name ;
        usage () ;
        exit 1)
    names ;
  Printf.printf "\ntotal bench time: %.1fs\n" (Workload.Timing.now () -. t0)
