(* Figure 4 (and appendix Figures 11/12): operator runtimes over an M:N
   join as the join-attribute uniqueness degree n_U/n_S varies. Smaller
   degrees mean more repetition after the join — at 0.01 the paper sees
   nearly two-orders-of-magnitude speed-ups. Table 5's setup, rescaled
   with d_S = d_R fixed and both runtimes reported like the paper's
   log-scale plots. *)

open Morpheus
open Workload

let uniqueness cfg =
  if cfg.Harness.quick then [ 0.02; 0.2 ] else [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.5 ]

let sizes cfg = if cfg.Harness.quick then [ 1_000 ] else [ 1_000; 2_000 ]
let dims cfg = if cfg.Harness.quick then 30 else 50

let run ?(ops = [ Op_defs.lmm; Op_defs.crossprod ])
    ?(title = "Figure 4: M:N join operators vs join attribute uniqueness degree") cfg =
  Harness.section title ;
  let d = dims cfg in
  List.iter
    (fun (op : Op_defs.op) ->
      Harness.subsection op.Op_defs.name ;
      Printf.printf "%10s %8s %12s %12s %9s\n" "nS=nR" "nU/nS" "M" "F" "speedup" ;
      List.iter
        (fun ns ->
          let ns = max 200 (ns / op.Op_defs.shrink) in
          List.iter
            (fun u ->
              let nu = max 1 (int_of_float (u *. float_of_int ns)) in
              let data = Synthetic.mn ~seed:(nu + ns) ~ns ~nr:ns ~ds:d ~dr:d ~nu () in
              let t = data.Synthetic.t in
              let m = Materialize.to_mat t in
              let tf, tm =
                Harness.time_fm cfg ~f:(op.Op_defs.fact t) ~m:(op.Op_defs.mat m)
              in
              Fmt.pr "%10d %8.2f %12s %12s %8.1fx  (|T| = %d rows)@." ns u
                (Harness.ts tm) (Harness.ts tf) (tm /. tf)
                (Normalized.rows t))
            (uniqueness cfg))
        (sizes cfg))
    ops

(* Appendix Figures 11/12: every operator over the M:N sweep. *)
let run_all_ops cfg =
  run ~ops:Op_defs.all_ops
    ~title:"Figures 11/12: all operators over M:N joins" cfg
