(* Tables 7, 8, and 12 of the paper.

   Table 7: the four ML algorithms over the seven (simulated) real
   datasets — materialized runtime and Morpheus speed-up per cell.
   Table 8: Morpheus vs the reimplemented Orion on factorized logistic
   regression, sweeping the feature ratio.
   Table 12 (appendix K): data-preparation time vs logistic-regression
   runtime, per real dataset. *)

open Sparse
open Morpheus
open Ml_algs
open Ml_algs.Algorithms
open Workload

(* Scaled-down loading of the Table 6 datasets: rows at 2%, one-hot
   widths at 0.5% keep d³ pseudo-inverses tractable while preserving
   per-row sparsity and TR. --quick shrinks further. *)
let scales cfg =
  if cfg.Harness.quick then (0.005, 0.002) else (0.05, 0.005)

let iters cfg = if cfg.Harness.quick then 3 else 5

let run_table7 cfg =
  Harness.section "Table 7: real datasets (simulated per Table 6), M runtime and Morpheus speed-up" ;
  let scale_rows, scale_cols = scales cfg in
  Printf.printf
    "(rows scaled x%g, one-hot widths x%g; %d iterations; k=5 centroids; 5 topics)\n"
    scale_rows scale_cols (iters cfg) ;
  Printf.printf "%-10s %22s %22s %22s %22s\n" "" "Lin.Reg" "Log.Reg" "K-Means" "GNMF" ;
  Printf.printf "%-10s %12s %9s %12s %9s %12s %9s %12s %9s\n" "dataset" "M" "Sp" "M" "Sp"
    "M" "Sp" "M" "Sp" ;
  let it = iters cfg in
  List.iter
    (fun spec ->
      let t, y, yn = Realistic.load ~scale_rows ~scale_cols spec in
      let m = Materialize.to_regular t in
      let cell fact mat =
        let tf, tm = Harness.time_fm cfg ~f:fact ~m:mat in
        (tm, tm /. tf)
      in
      (* one-hot features make crossprod(T) singular, so the paper's Â§4
         fallback applies: gradient descent instead of normal equations *)
      let lin_m, lin_sp =
        cell
          (fun () -> ignore (Factorized.Linreg.train_gd ~alpha:1e-7 ~iters:it t yn))
          (fun () -> ignore (Materialized.Linreg.train_gd ~alpha:1e-7 ~iters:it m yn))
      in
      let log_m, log_sp =
        cell
          (fun () -> ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters:it t y))
          (fun () -> ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters:it m y))
      in
      let km_m, km_sp =
        cell
          (fun () -> ignore (Factorized.Kmeans.train ~iters:it ~k:5 t))
          (fun () -> ignore (Materialized.Kmeans.train ~iters:it ~k:5 m))
      in
      let gn_m, gn_sp =
        cell
          (fun () -> ignore (Factorized.Gnmf.train ~iters:it ~rank:5 t))
          (fun () -> ignore (Materialized.Gnmf.train ~iters:it ~rank:5 m))
      in
      Fmt.pr "%-10s %12s %8.1fx %12s %8.1fx %12s %8.1fx %12s %8.1fx@."
        spec.Realistic.name (Harness.ts lin_m) lin_sp (Harness.ts log_m)
        log_sp (Harness.ts km_m) km_sp (Harness.ts gn_m) gn_sp)
    Realistic.all

(* Table 7 at the *full published scale* of Table 6 (n_S up to 1e6,
   one-hot widths up to 5e4), logistic regression only: the GLM path
   touches the data through sparse LMM/tLMM, so the full scale fits in
   memory -- unlike crossprod-based methods whose d*d outputs would not.
   Single timed run per cell (each materialized run is substantial). *)
let run_table7_full cfg =
  Harness.section "Table 7 (full scale): logistic regression over the Table 6 datasets" ;
  let iters = iters cfg in
  Printf.printf "(full published sizes; %d iterations; 1 timed run per cell)\n" iters ;
  Printf.printf "%-10s %10s %14s %14s %9s\n" "dataset" "nS" "M" "F" "speedup" ;
  List.iter
    (fun spec ->
      let t, y, _ = Realistic.load ~scale_rows:1.0 ~scale_cols:1.0 spec in
      let m = Materialize.to_regular t in
      let t_f =
        Timing.measure ~warmup:0 ~runs:1 (fun () ->
            ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters t y))
      in
      let t_m =
        Timing.measure ~warmup:0 ~runs:1 (fun () ->
            ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters m y))
      in
      Fmt.pr "%-10s %10d %14s %14s %8.1fx@." spec.Realistic.name
        (Normalized.rows t) (Harness.ts t_m) (Harness.ts t_f) (t_m /. t_f))
    (if cfg.Harness.quick then [ Realistic.flights; Realistic.walmart ]
     else Realistic.all)

let run_table8 cfg =
  Harness.section "Table 8: Morpheus vs Orion, factorized logistic regression (vary FR)" ;
  let ns = if cfg.Harness.quick then 20_000 else 100_000 in
  let nr = ns / 20 in
  let ds = 20 in
  let iters = if cfg.Harness.quick then 3 else 5 in
  Printf.printf "(nS=%d, nR=%d, dS=%d, %d iterations; speed-ups vs materialized)\n" ns
    nr ds iters ;
  Printf.printf "%12s %10s %10s %12s %12s %12s\n" "FR" "Orion" "Morpheus" "t(M)" "t(Orion)"
    "t(Morpheus)" ;
  List.iter
    (fun fr ->
      let dr = int_of_float (fr *. float_of_int ds) in
      let d = Synthetic.pkfk ~seed:(dr + 7) ~ns ~ds ~nr ~dr () in
      let t = d.Synthetic.t in
      let y = d.Synthetic.y in
      let s, k, r =
        match (Normalized.ent t, Normalized.parts t) with
        | Some s, [ p ] -> (Mat.dense s, p.Normalized.ind, Mat.dense p.Normalized.mat)
        | _ -> assert false
      in
      let m = Materialize.to_regular t in
      let t_m =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters m y))
      in
      let t_orion =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Orion.train_logreg ~alpha:1e-4 ~iters ~s ~k ~r ~y ()))
      in
      let t_f =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters t y))
      in
      Fmt.pr "%12.1f %9.1fx %9.1fx %12s %12s %12s@." fr (t_m /. t_orion)
        (t_m /. t_f) (Harness.ts t_m) (Harness.ts t_orion) (Harness.ts t_f))
    [ 1.0; 2.0; 3.0; 4.0 ]

let run_table12 cfg =
  Harness.section "Table 12 (appendix K): data preparation vs logistic regression runtime" ;
  let scale_rows, scale_cols = scales cfg in
  let it = iters cfg in
  Printf.printf "%-10s %12s %12s %12s %12s %10s %10s\n" "dataset" "prep(M)" "prep(F)"
    "logreg(M)" "logreg(F)" "ratio(M)" "ratio(F)" ;
  List.iter
    (fun spec ->
      let t, y, _ = Realistic.load ~scale_rows ~scale_cols spec in
      (* F prep: construct the indicator matrices from raw FK columns
         (here: from the mappings, the same work) and wrap. *)
      let fk_columns =
        List.map (fun (p : Normalized.part) -> Indicator.mapping p.Normalized.ind)
          (Normalized.parts t)
      in
      let prep_f =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            let parts =
              List.map2
                (fun mapping (p : Normalized.part) ->
                  ( Indicator.create ~cols:(Mat.rows p.Normalized.mat) mapping,
                    p.Normalized.mat ))
                fk_columns (Normalized.parts t)
            in
            ignore (Normalized.star ~s:(Option.get (Normalized.ent t)) ~parts))
      in
      (* M prep: materialize the join output. *)
      let prep_m =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Materialize.to_mat t))
      in
      let m = Materialize.to_regular t in
      let log_m =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters:it m y))
      in
      let log_f =
        Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (fun () ->
            ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters:it t y))
      in
      Fmt.pr "%-10s %12s %12s %12s %12s %10.3f %10.3f@." spec.Realistic.name
        (Harness.ts prep_m) (Harness.ts prep_f) (Harness.ts log_m)
        (Harness.ts log_f) (prep_m /. log_m) (prep_f /. log_f))
    Realistic.all
