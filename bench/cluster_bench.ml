(* Sharded-serving bench: closed-loop scoring throughput against a
   `morpheus route` process over 1 → 2 → 4 shard server processes on
   loopback TCP. Every tier lives in its own process (the CLI binary
   from MORPHEUS_BIN) so the shards actually run on separate cores —
   in-process shards would share one domain and measure nothing.

   Four client threads each hold one keep-alive connection to the
   router and issue score_ids requests over an 8-id spread (blocks
   hash to different shards, so most requests scatter-gather) for a
   fixed wall-clock window; the reported quantity is requests/s and
   latency percentiles per shard count.

   Results go to stdout as a table and to BENCH_cluster.json. As with
   the parallel-scaling bench, [cores_online] records the host's
   exposed cores and a single-core host refuses to overwrite the
   committed multi-core numbers. *)

open La
open Sparse
open Morpheus
open Morpheus_serve
open Workload

let shard_counts = [ 1; 2; 4 ]
let client_threads = 4

let json_floats l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.6f") l) ^ "]"

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd)
  @@ fun () ->
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) ;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> failwith "no port bound"

let spawn bin argv =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close devnull)
  @@ fun () ->
  Unix.create_process bin (Array.of_list (bin :: argv)) Unix.stdin devnull devnull

let await_healthy addr =
  let deadline = Timing.now () +. 10.0 in
  let rec go () =
    match Client.health ~socket:addr with
    | Ok _ -> ()
    | Error _ | (exception Unix.Unix_error _) ->
      if Timing.now () > deadline then
        failwith (Printf.sprintf "endpoint %s never became healthy" addr)
      else begin
        Thread.delay 0.05 ;
        go ()
      end
  in
  go ()

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

(* One closed-loop measurement: [n] shard processes, one router
   process, [client_threads] threads hammering score_ids for
   [window] seconds. Returns (requests, elapsed, latencies sorted). *)
let measure ~bin ~reg ~ds_dir ~model ~rows ~window n =
  let shard_ports = List.init n (fun _ -> free_port ()) in
  let shard_addrs =
    List.map (Printf.sprintf "127.0.0.1:%d") shard_ports
  in
  let shard_pids =
    List.map
      (fun addr ->
        spawn bin
          [ "serve"; "--registry"; reg; "--listen"; addr; "--handlers"; "4";
            "--max-wait-ms"; "1" ])
      shard_addrs
  in
  let router_addr = Printf.sprintf "127.0.0.1:%d" (free_port ()) in
  let router_pid = ref None in
  let all_pids () = (match !router_pid with Some p -> [ p ] | None -> []) @ shard_pids in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ()) (all_pids ()) ;
      List.iter
        (fun pid -> try ignore (Unix.waitpid [] pid) with _ -> ())
        (all_pids ()))
  @@ fun () ->
  List.iter await_healthy shard_addrs ;
  router_pid :=
    Some
      (spawn bin
         ([ "route"; "--listen"; router_addr; "--block"; "8"; "--handlers"; "4" ]
         @ List.concat
             (List.mapi
                (fun i addr -> [ "--shard"; Printf.sprintf "shard%d=%s" i addr ])
                shard_addrs))) ;
  await_healthy router_addr ;
  let stop_at = Timing.now () +. window in
  let counts = Array.make client_threads 0 in
  let lats = Array.make client_threads [] in
  let failure = Mutex.create () and failed = ref None in
  let worker th =
    Client.with_client ~socket:router_addr
    @@ fun c ->
    let i = ref 0 in
    while Timing.now () < stop_at && Option.is_none !failed do
      let ids =
        Array.init 8 (fun k -> ((th * 7919) + (!i * 13) + (29 * k)) mod rows)
      in
      let t0 = Timing.now () in
      (match Client.score_ids c ~model ~dataset:ds_dir ids with
      | Ok _ ->
        counts.(th) <- counts.(th) + 1 ;
        lats.(th) <- (Timing.now () -. t0) :: lats.(th)
      | Error (code, msg) ->
        Mutex.lock failure ;
        failed := Some (Printf.sprintf "[%s] %s" code msg) ;
        Mutex.unlock failure) ;
      incr i
    done
  in
  let t0 = Timing.now () in
  let threads = List.init client_threads (fun th -> Thread.create worker th) in
  List.iter Thread.join threads ;
  let elapsed = Timing.now () -. t0 in
  (match !failed with
  | Some e -> failwith ("cluster bench request failed: " ^ e)
  | None -> ()) ;
  let requests = Array.fold_left ( + ) 0 counts in
  let sorted =
    Array.of_list (List.concat (Array.to_list lats)) |> fun a ->
    Array.sort compare a ;
    a
  in
  (requests, elapsed, sorted)

let run cfg =
  Harness.section "Cluster scaling: routed score_ids over 1/2/4 shard processes" ;
  match Sys.getenv_opt "MORPHEUS_BIN" with
  | None | Some "" ->
    print_endline
      "skipped: MORPHEUS_BIN must point at the morpheus CLI binary (the \
       shards and the router run as real processes)"
  | Some bin ->
    let rows = if cfg.Harness.quick then 400 else 2_000 in
    let window = if cfg.Harness.quick then 1.0 else 4.0 in
    let root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "morpheus_cluster_bench_%d" (Unix.getpid ()))
    in
    rm_rf root ;
    Sys.mkdir root 0o755 ;
    Fun.protect ~finally:(fun () -> rm_rf root)
    @@ fun () ->
    let g = Rng.of_int 4242 in
    let s = Dense.random ~rng:g rows 3 in
    let r = Dense.random ~rng:g 50 4 in
    let k = Indicator.random ~rng:g ~rows ~cols:50 () in
    let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
    let d = snd (Normalized.dims t) in
    let ds_dir = Filename.concat root "ds" in
    Io.save ~dir:ds_dir t ;
    let reg = Filename.concat root "reg" in
    let entry =
      Registry.save ~dir:reg ~name:"bench"
        ~schema_hash:(Registry.schema_hash t)
        (Artifact.Logreg (Dense.random ~rng:g d 1))
    in
    let cores = Domain.recommended_domain_count () in
    Printf.printf
      "dataset: %d rows; %d client threads, %gs window per point; host \
       cores online: %d\n"
      rows client_threads window cores ;
    let results =
      List.map
        (fun n ->
          let requests, elapsed, lat =
            measure ~bin ~reg ~ds_dir ~model:entry.Registry.id ~rows ~window n
          in
          (n, float_of_int requests /. elapsed, lat))
        shard_counts
    in
    Printf.printf "\n%-8s %10s %10s %10s %10s %9s\n" "shards" "req/s" "p50"
      "p95" "p99" "speedup" ;
    let base_rate = match results with (_, r, _) :: _ -> r | [] -> 1.0 in
    List.iter
      (fun (n, rate, lat) ->
        Printf.printf "%-8d %10.0f %10s %10s %10s %8.2fx\n" n rate
          (Harness.ts (percentile lat 0.50))
          (Harness.ts (percentile lat 0.95))
          (Harness.ts (percentile lat 0.99))
          (rate /. base_rate))
      results ;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n" ;
    Buffer.add_string buf
      (Printf.sprintf
         "  \"setting\": {\"rows\": %d, \"client_threads\": %d, \
          \"window_s\": %.1f, \"ids_per_request\": 8, \"block\": 8},\n"
         rows client_threads window) ;
    Buffer.add_string buf (Printf.sprintf "  \"cores_online\": %d,\n" cores) ;
    Buffer.add_string buf
      (Printf.sprintf "  \"shards\": [%s],\n"
         (String.concat ", " (List.map string_of_int shard_counts))) ;
    Buffer.add_string buf "  \"points\": [\n" ;
    List.iteri
      (fun i (n, rate, lat) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"shards\": %d, \"req_per_s\": %.1f, \"speedup_vs_1\": \
              %.3f, \"latency_s\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": \
              %.6f}}%s\n"
             n rate (rate /. base_rate)
             (percentile lat 0.50) (percentile lat 0.95) (percentile lat 0.99)
             (if i = List.length results - 1 then "" else ",")))
      results ;
    Buffer.add_string buf "  ]\n}\n" ;
    let path = "BENCH_cluster.json" in
    (* same discipline as the parallel-scaling bench: a single-core
       host cannot measure shard scaling, so never let it silently
       replace the committed numbers *)
    if cores <= 1 && Sys.file_exists path && not cfg.Harness.force then
      Printf.printf
        "\nWARNING: host exposes only %d core online; NOT overwriting the \
         committed %s (re-run with --force to override)\n"
        cores path
    else begin
      let oc = open_out path in
      output_string oc (Buffer.contents buf) ;
      close_out oc ;
      Printf.printf "\nwrote %s\n" path
    end
