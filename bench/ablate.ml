(* Ablations of the design choices DESIGN.md calls out:
   1. cross-product: naive (Algorithm 1) vs efficient (Algorithm 2);
   2. LMM multiplication order: K·(R·X) vs materializing (K·R)·X (§3.3.3);
   3. indicator-specialized kernels vs generic CSR for K;
   4. execution policy: heuristic-adaptive vs always-factorized vs
      always-materialized on both a high- and a low-redundancy join. *)

open La
open Sparse
open Morpheus
open Ml_algs.Algorithms
open Workload

let run cfg =
  Harness.section "Ablations" ;
  let ns = if cfg.Harness.quick then 20_000 else 100_000 in
  let nr = ns / 10 in
  let data = Synthetic.pkfk ~seed:5 ~ns ~ds:15 ~nr ~dr:45 () in
  let t = data.Synthetic.t in

  (* 1. crossprod methods *)
  Harness.subsection "1. cross-product: Algorithm 1 (naive) vs Algorithm 2 (efficient)" ;
  let t_naive =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Rewrite.crossprod_naive t))
  in
  let t_eff =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Rewrite.crossprod t))
  in
  Fmt.pr "naive %s | efficient %s | efficient is %.2fx faster@." (Harness.ts t_naive) (Harness.ts t_eff) (t_naive /. t_eff) ;

  (* 2. LMM order *)
  Harness.subsection "2. LMM order: K(RX) vs (KR)X" ;
  let x = Dense.random ~rng:(Rng.of_int 2) (Normalized.cols t) 2 in
  let part = List.hd (Normalized.parts t) in
  let s = Option.get (Normalized.ent t) in
  let ds_cols = Mat.cols s in
  let good =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Rewrite.lmm t x))
  in
  let bad =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        (* (KR)·X[dS+1:,] — materializes the join's R half first *)
        let kr = Materialize.part_product part in
        let z =
          Mat.mm kr (Dense.sub_rows x ~lo:ds_cols ~hi:(Dense.rows x))
        in
        let sz = Mat.mm s (Dense.sub_rows x ~lo:0 ~hi:ds_cols) in
        ignore (Dense.add sz z))
  in
  Fmt.pr "K(RX) %s | (KR)X %s | correct order is %.2fx faster@." (Harness.ts good) (Harness.ts bad) (bad /. good) ;

  (* 3. indicator kernels vs generic CSR *)
  Harness.subsection "3. indicator-specialized kernels vs generic CSR for K" ;
  let k = part.Normalized.ind in
  let r = Mat.dense part.Normalized.mat in
  let k_csr = Indicator.to_csr k in
  let spec =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Indicator.mult k r))
  in
  let generic =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Csr.smm k_csr r))
  in
  Fmt.pr "indicator gather %s | csr smm %s | specialization is %.2fx faster@."
    (Harness.ts spec) (Harness.ts generic) (generic /. spec) ;

  (* 4. execution policy *)
  Harness.subsection "4. policy: adaptive vs always-F vs always-M (logreg, 3 iters)" ;
  let bench_policy label t =
    let y =
      Dense.init (Normalized.rows t) 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0)
    in
    let m = Materialize.to_regular t in
    let t_m =
      Timing.measure ~runs:cfg.Harness.runs (fun () ->
          ignore (Materialized.Logreg.train ~alpha:1e-4 ~iters:3 m y))
    in
    let t_f =
      Timing.measure ~runs:cfg.Harness.runs (fun () ->
          ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters:3 t y))
    in
    let a = Adaptive_matrix.of_normalized t in
    let t_a =
      Timing.measure ~runs:cfg.Harness.runs (fun () ->
          ignore (Adaptive.Logreg.train ~alpha:1e-4 ~iters:3 a y))
    in
    Fmt.pr
      "%s (TR=%.1f FR=%.1f): M %s | F %s | adaptive %s (chose %s)@." label
      (Normalized.tuple_ratio t) (Normalized.feature_ratio t) (Harness.ts t_m)
      (Harness.ts t_f) (Harness.ts t_a)
      (Decision.to_string (Adaptive_matrix.choice a))
  in
  bench_policy "high redundancy" t ;
  let low =
    Synthetic.pkfk ~seed:6 ~ns:(nr * 2) ~ds:30 ~nr ~dr:8 ()
  in
  bench_policy "low redundancy " low.Synthetic.t ;

  (* 5. spectral extensions (paper Â§7 future work): PCA over the
     normalized matrix vs over the materialized one *)
  Harness.subsection "5. PCA: factorized (Spectral) vs materialized (center + eigen)" ;
  let m = Materialize.to_mat t in
  let t_pca_f =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        ignore (Spectral.pca ~k:5 t))
  in
  let t_pca_m =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        let md = Mat.dense m in
        let n = Dense.rows md in
        let mu = Dense.scale (1.0 /. float_of_int n) (Dense.col_sums md) in
        let centered = Dense.mapi (fun _ j v -> v -. Dense.get mu 0 j) md in
        let cov =
          Dense.scale (1.0 /. float_of_int (n - 1)) (Blas.crossprod centered)
        in
        ignore (Linalg.sym_eig cov))
  in
  Fmt.pr "materialized %s | factorized %s | speed-up %.2fx@." (Harness.ts t_pca_m)
    (Harness.ts t_pca_f) (t_pca_m /. t_pca_f) ;

  (* 6. expression-DSL dispatch overhead vs direct rewrite calls *)
  Harness.subsection "6. Expr DSL overhead: eval(T'.(T.w)) vs direct rewrites" ;
  let w = Dense.random ~rng:(Rng.of_int 7) (Normalized.cols t) 1 in
  let e = Expr.(tr (normalized t) *@ (normalized t *@ dense w)) in
  let t_expr =
    Timing.measure ~runs:cfg.Harness.runs (fun () -> ignore (Expr.eval_dense e))
  in
  let t_direct =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        ignore (Rewrite.tlmm t (Rewrite.lmm t w)))
  in
  Fmt.pr "direct %s | via DSL %s | overhead %.1f%%@." (Harness.ts t_direct)
    (Harness.ts t_expr)
    (100.0 *. ((t_expr /. t_direct) -. 1.0)) ;

  (* 7. cross-validation: factorized folds share R, materialized folds
     re-materialize their subsets *)
  Harness.subsection "7. 5-fold CV (ridge): factorized folds vs materialized folds" ;
  let y = Dense.gaussian ~rng:(Rng.of_int 8) (Normalized.rows t) 1 in
  let module FL = Ml_algs.Linreg.Make (Morpheus.Factorized_matrix) in
  let module MLreg = Ml_algs.Linreg.Make (Morpheus.Regular_matrix) in
  let folds = Ml_algs.Model_selection.fold_indices ~seed:4 ~k:5 (Normalized.rows t) in
  let t_cv_f =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        List.iteri
          (fun f _ ->
            let (t_train, y_train), _ = Ml_algs.Model_selection.split t y folds f in
            ignore (FL.train_gd ~alpha:1e-6 ~iters:3 t_train y_train))
          folds)
  in
  let t_cv_m =
    Timing.measure ~runs:cfg.Harness.runs (fun () ->
        List.iteri
          (fun f _ ->
            let (t_train, y_train), _ = Ml_algs.Model_selection.split t y folds f in
            let m_train = Regular_matrix.of_dense (Materialize.to_dense t_train) in
            ignore (MLreg.train_gd ~alpha:1e-6 ~iters:3 m_train y_train))
          folds)
  in
  Fmt.pr "materialized folds %s | factorized folds %s | speed-up %.1fx@."
    (Harness.ts t_cv_m) (Harness.ts t_cv_f) (t_cv_m /. t_cv_f)
