(* Table 3 / Table 11: arithmetic-computation counts. Rather than citing
   the analytic expressions, this bench *measures* them: the LA kernels
   carry flop counters, and each operator's measured count is printed
   next to the Table 3 model for both execution paths, together with the
   asymptotic speed-up limits of Table 11. *)

open La
open Sparse
open Morpheus
open Workload

let run cfg =
  Harness.section "Table 3/11: arithmetic computations, model vs measured" ;
  let ns = if cfg.Harness.quick then 20_000 else 50_000 in
  let nr = ns / 10 and ds = 10 in
  let dr = 20 in
  Printf.printf "(nS=%d, dS=%d, nR=%d, dR=%d; counts in flops, model doubled to count mult+add)\n"
    ns ds nr dr ;
  let data = Synthetic.pkfk ~seed:3 ~ns ~ds ~nr ~dr () in
  let t = data.Synthetic.t in
  let m = Materialize.to_mat t in
  let dims = { Cost.ns; ds; nr; dr } in
  let x1 = Dense.random ~rng:(Rng.of_int 11) (ds + dr) 1 in
  let xr = Dense.random ~rng:(Rng.of_int 12) 1 ns in
  let flops f =
    let _, n = Flops.count f in
    n
  in
  let cases =
    [ ( "scalar mult",
        Cost.Scalar_op,
        1.0,
        (fun () -> ignore (Rewrite.scale 2.0 t)),
        fun () -> ignore (Mat.scale 2.0 m) );
      ( "rowSums",
        Cost.Aggregation,
        1.0,
        (fun () -> ignore (Rewrite.row_sums t)),
        fun () -> ignore (Mat.row_sums m) );
      ( "LMM (dX=1)",
        Cost.Lmm 1,
        2.0,
        (fun () -> ignore (Rewrite.lmm t x1)),
        fun () -> ignore (Mat.mm m x1) );
      ( "RMM (nX=1)",
        Cost.Rmm 1,
        2.0,
        (fun () -> ignore (Rewrite.rmm xr t)),
        fun () -> ignore (Mat.mm_left xr m) );
      ( "crossprod",
        Cost.Crossprod,
        2.0,
        (fun () -> ignore (Rewrite.crossprod t)),
        fun () -> ignore (Mat.crossprod m) ) ]
  in
  Printf.printf "%-14s %14s %14s %14s %14s %9s %9s\n" "operator" "model(M)" "meas(M)"
    "model(F)" "meas(F)" "sp model" "sp meas" ;
  List.iter
    (fun (name, op, scale, ff, fm) ->
      let model_m = scale *. Cost.standard dims op in
      let model_f = scale *. Cost.factorized dims op in
      let meas_f = flops ff in
      let meas_m = flops fm in
      Printf.printf "%-14s %14.3g %14.3g %14.3g %14.3g %8.2fx %8.2fx\n" name model_m
        meas_m model_f meas_f (model_m /. model_f) (meas_m /. meas_f))
    cases ;
  Printf.printf "\nTable 11 asymptotic speed-up limits at FR=%.1f: linear ops -> %.1f, crossprod -> %.1f\n"
    (float_of_int dr /. float_of_int ds)
    (Cost.limit_tuple_ratio ~feature_ratio:(float_of_int dr /. float_of_int ds)
       (Cost.Lmm 1))
    (Cost.limit_tuple_ratio ~feature_ratio:(float_of_int dr /. float_of_int ds)
       Cost.Crossprod)
