(* Operator closures shared by the operator-level benches (Figures 3, 4,
   6, 7, 11, 12): each op has a factorized form over the normalized
   matrix and a standard form over the materialized T. *)

open La
open Sparse
open Morpheus

type op = {
  name : string;
  fact : Normalized.t -> unit -> unit;
  mat : Mat.t -> unit -> unit;
  shrink : int;
      (* divide the sweep's base size by this; >1 for operators whose
         materialized version is superlinear (ginv's SVD) *)
}

let x_for cols k = Dense.random ~rng:(Rng.of_int (cols + k)) cols k
let xl_for rows k = Dense.random ~rng:(Rng.of_int (rows + k)) k rows

let scalar_mult =
  { name = "scalar mult";
    fact = (fun t () -> ignore (Rewrite.scale 3.0 t));
    mat = (fun m () -> ignore (Mat.scale 3.0 m)) ;
    shrink = 1 }

let scalar_add =
  { name = "scalar add";
    fact = (fun t () -> ignore (Rewrite.add_scalar 1.5 t));
    mat = (fun m () -> ignore (Mat.add_scalar 1.5 m)) ;
    shrink = 1 }

let scalar_exp =
  { name = "scalar exp";
    fact = (fun t () -> ignore (Rewrite.exp t));
    mat = (fun m () -> ignore (Mat.exp m)) ;
    shrink = 1 }

let lmm =
  { name = "LMM";
    fact = (fun t -> let x = x_for (Normalized.cols t) 2 in fun () -> ignore (Rewrite.lmm t x));
    mat = (fun m -> let x = x_for (Mat.cols m) 2 in fun () -> ignore (Mat.mm m x)) ;
    shrink = 1 }

let rmm =
  { name = "RMM";
    fact = (fun t -> let x = xl_for (Normalized.rows t) 2 in fun () -> ignore (Rewrite.rmm x t));
    mat = (fun m -> let x = xl_for (Mat.rows m) 2 in fun () -> ignore (Mat.mm_left x m)) ;
    shrink = 1 }

let row_sums =
  { name = "rowSums";
    fact = (fun t () -> ignore (Rewrite.row_sums t));
    mat = (fun m () -> ignore (Mat.row_sums m)) ;
    shrink = 1 }

let col_sums =
  { name = "colSums";
    fact = (fun t () -> ignore (Rewrite.col_sums t));
    mat = (fun m () -> ignore (Mat.col_sums m)) ;
    shrink = 1 }

let sum =
  { name = "sum";
    fact = (fun t () -> ignore (Rewrite.sum t));
    mat = (fun m () -> ignore (Mat.sum m)) ;
    shrink = 1 }

let crossprod =
  { name = "crossprod";
    fact = (fun t () -> ignore (Rewrite.crossprod t));
    mat = (fun m () -> ignore (Mat.crossprod m)) ;
    shrink = 1 }

let ginv =
  { name = "pseudo-inverse";
    fact = (fun t () -> ignore (Rewrite.ginv t));
    mat = (fun m () -> ignore (Linalg.ginv (Mat.dense m)));
    shrink = 8 }


(* Figure 3's four headline operators. *)
let fig3_ops = [ scalar_mult; lmm; crossprod; ginv ]

(* Figure 6's appendix set. *)
let fig6_ops = [ scalar_add; rmm; row_sums; col_sums; sum ]

(* Appendix Figures 11/12 sweep all element-wise, aggregation, and
   multiplication operators over M:N joins (no pseudo-inverse there). *)
let all_ops =
  [ scalar_mult; scalar_add; scalar_exp; lmm; rmm; row_sums; col_sums; sum;
    crossprod ]
