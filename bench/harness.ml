(* Shared infrastructure for the paper-reproduction benches: timing both
   execution paths, printing paper-style tables, and the global scale
   knob (--quick shrinks every workload; ratios are preserved). *)

open Workload

type config = {
  quick : bool; (* smaller grids and sizes *)
  runs : int; (* timed repetitions (median) *)
  runtimes : bool; (* print absolute runtimes alongside speed-ups *)
  force : bool;
      (* overwrite committed BENCH_*.json even when the host would
         produce unrepresentative numbers (e.g. one core online) *)
}

let default = { quick = false; runs = 3; runtimes = false; force = false }

(* Median-of-runs timing for the two paths of one operator instance. *)
let time_fm cfg ~f ~m =
  let tf = Timing.measure ~warmup:1 ~runs:cfg.runs f in
  let tm = Timing.measure ~warmup:1 ~runs:cfg.runs m in
  (tf, tm)

let speedup_cell sp =
  (* the paper's Figure 3 buckets *)
  if sp < 1.0 then Printf.sprintf "%5.2f." sp
  else if sp < 2.0 then Printf.sprintf "%5.2f-" sp
  else if sp < 3.0 then Printf.sprintf "%5.2f+" sp
  else Printf.sprintf "%5.2f*" sp

let hrule width = String.make width '-'

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let legend () =
  print_endline
    "cells are F-over-M speed-ups; buckets as in Fig 3: '.' <1, '-' 1-2, '+' 2-3, '*' >3"

(* Print a TR×FR-style grid of speed-ups. *)
let grid ~row_label ~col_label ~rows ~cols cell =
  Printf.printf "%8s \\ %s\n" row_label col_label ;
  Printf.printf "%8s" "" ;
  List.iter (fun c -> Printf.printf " %8s" c) cols ;
  print_newline () ;
  List.iteri
    (fun i r ->
      Printf.printf "%8s" r ;
      List.iteri (fun j _ -> Printf.printf " %8s" (cell i j)) cols ;
      print_newline ())
    rows

let pp_time = Timing.pp_seconds

(* Fixed-width rendering for table cells. *)
let ts s =
  if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* ---- allocation columns (the memo/in-place bench) ---- *)

(* Word counts rendered like times: per-iteration minor/major heap
   words, scaled to k/M for readability. *)
let words w =
  if w < 1e3 then Printf.sprintf "%.0fw" w
  else if w < 1e6 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.2fMw" (w /. 1e6)

(* Time + allocation of [f], respecting the config's run count. *)
let measure_alloc cfg f = Timing.measure_alloc ~warmup:1 ~runs:cfg.runs f

let alloc_header () =
  Printf.printf "%-28s %10s %10s %10s %10s\n" "variant" "time" "minor"
    "major" "promoted"

let alloc_row name (a : Timing.alloc) =
  Printf.printf "%-28s %10s %10s %10s %10s\n" name (ts a.Timing.seconds)
    (words a.Timing.minor_words)
    (words a.Timing.major_words)
    (words a.Timing.promoted_words)
