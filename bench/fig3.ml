(* Figures 3, 6 and 7: operator-level speed-ups over a synthetic PK-FK
   join, swept over the tuple ratio TR = n_S/n_R and feature ratio
   FR = d_R/d_S (Table 4's setup, rescaled). For each grid cell the
   factorized and materialized operators run on identical data; cells
   report the F-over-M speed-up using the paper's Figure-3 buckets. *)

open Morpheus
open Workload

let tuple_ratios cfg = if cfg.Harness.quick then [ 2; 10 ] else [ 1; 2; 5; 10; 20 ]
let feature_ratios cfg = if cfg.Harness.quick then [ 1.0; 4.0 ] else [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
let base_nr cfg = if cfg.Harness.quick then 500 else 2_000

let datasets cfg ~shrink =
  List.concat_map
    (fun tr ->
      List.map
        (fun fr ->
          let base = max 50 (base_nr cfg / shrink) in
          let d = Synthetic.table4_tuple_ratio ~base ~tr ~fr () in
          (tr, fr, d.Synthetic.t))
        (feature_ratios cfg))
    (tuple_ratios cfg)

let run ?(ops = Op_defs.fig3_ops) ?(title = "Figure 3: PK-FK operator speed-ups (TR x FR grid)")
    cfg =
  Harness.section title ;
  Harness.legend () ;
  let trs = tuple_ratios cfg and frs = feature_ratios cfg in
  List.iter
    (fun (op : Op_defs.op) ->
      Harness.subsection op.Op_defs.name ;
      let cells = datasets cfg ~shrink:op.Op_defs.shrink in
      (* precompute times for the whole grid *)
      let results =
        List.map
          (fun (tr, fr, t) ->
            let m = Materialize.to_mat t in
            let tf, tm =
              Harness.time_fm cfg ~f:(op.Op_defs.fact t) ~m:(op.Op_defs.mat m)
            in
            ((tr, fr), (tf, tm)))
          cells
      in
      Harness.grid ~row_label:"FR" ~col_label:"TR"
        ~rows:(List.map string_of_float frs)
        ~cols:(List.map string_of_int trs)
        (fun fi ti ->
          let tr = List.nth trs ti and fr = List.nth frs fi in
          let tf, tm = List.assoc (tr, fr) results in
          Harness.speedup_cell (tm /. tf)) ;
      if cfg.Harness.runtimes then begin
        print_endline "absolute runtimes (materialized | factorized):" ;
        List.iter
          (fun ((tr, fr), (tf, tm)) ->
            Fmt.pr "  TR=%2d FR=%4.2f  M %s | F %s@." tr fr (Harness.ts tm)
              (Harness.ts tf))
          results
      end)
    ops

(* Figure 6 is the same sweep over the appendix operator set. *)
let run_fig6 cfg =
  run ~ops:Op_defs.fig6_ops
    ~title:"Figure 6: PK-FK operator speed-ups, appendix operators" cfg
