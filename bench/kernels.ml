(* Kernel bench: cache-blocked/register-tiled Blas vs the frozen naive
   reference (Blas_ref), over matrix sizes d ∈ {100, 500, 1000, 2000}
   and 1/2/4 execution domains. Every timed pair is also checked
   bitwise — the tiled kernels must reproduce the reference exactly at
   every shape and domain count, so the speed column is the only thing
   allowed to differ.

   Results go to stdout and to BENCH_kernels.json (same single-core
   overwrite guard as the scaling bench: on a 1-core host the
   tiled-vs-naive ratio is still meaningful, but an existing file
   recorded on real cores is not silently replaced). *)

open La
open Workload

let domain_counts = [ 1; 2; 4 ]

let json_floats l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.6f") l) ^ "]"

let bits_equal_mat a b =
  let ad = Dense.data a and bd = Dense.data b in
  Dense.rows a = Dense.rows b
  && Dense.cols a = Dense.cols b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       ad bd

let bits_equal_vec x y =
  Array.length x = Array.length y
  && Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       x y

type probe = {
  name : string;
  naive : Exec.t -> unit -> unit;
  tiled : Exec.t -> unit -> unit;
  identical : Exec.t -> bool;
}

let probes d =
  let a = Dense.gaussian ~rng:(Rng.of_int (17 + d)) d d in
  let b = Dense.gaussian ~rng:(Rng.of_int (23 + d)) d d in
  let x = Array.init d (fun i -> sin (float_of_int (i + 1))) in
  [ { name = "gemm";
      naive = (fun exec () -> ignore (Blas_ref.gemm ~exec a b));
      tiled = (fun exec () -> ignore (Blas.gemm ~exec a b));
      identical =
        (fun exec -> bits_equal_mat (Blas_ref.gemm ~exec a b) (Blas.gemm ~exec a b))
    };
    { name = "crossprod";
      naive = (fun exec () -> ignore (Blas_ref.crossprod ~exec a));
      tiled = (fun exec () -> ignore (Blas.crossprod ~exec a));
      identical =
        (fun exec ->
          bits_equal_mat (Blas_ref.crossprod ~exec a) (Blas.crossprod ~exec a))
    };
    { name = "gemm_nt";
      naive = (fun exec () -> ignore (Blas_ref.gemm_nt ~exec a b));
      tiled = (fun exec () -> ignore (Blas.gemm_nt ~exec a b));
      identical =
        (fun exec ->
          bits_equal_mat (Blas_ref.gemm_nt ~exec a b) (Blas.gemm_nt ~exec a b))
    };
    { name = "gemv";
      naive = (fun exec () -> ignore (Blas_ref.gemv ~exec a x));
      tiled = (fun exec () -> ignore (Blas.gemv ~exec a x));
      identical =
        (fun exec ->
          bits_equal_vec (Blas_ref.gemv ~exec a x) (Blas.gemv ~exec a x))
    }
  ]

let run cfg =
  Harness.section "Dense kernels: naive (Blas_ref) vs cache-blocked (Blas)" ;
  let dims = if cfg.Harness.quick then [ 100; 300 ] else [ 100; 500; 1000; 2000 ] in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "tile profile: %s\nhost cores online: %d\n"
    (Tune.describe (Tune.current ()))
    cores ;
  let results = ref [] in
  List.iter
    (fun d ->
      let probes = probes d in
      (* big sizes amortize their own noise; cap repetitions there so
         the full sweep stays tractable *)
      let runs = if d >= 1000 then 1 else cfg.Harness.runs in
      Harness.subsection (Printf.sprintf "d = %d (runs=%d)" d runs) ;
      Printf.printf "%-10s" "kernel" ;
      List.iter
        (fun dn -> Printf.printf " %9s %9s" (Printf.sprintf "naive:%d" dn)
             (Printf.sprintf "tiled:%d" dn))
        domain_counts ;
      Printf.printf " %8s %5s\n" "speedup" "bits" ;
      List.iter
        (fun p ->
          let per_domain =
            List.map
              (fun domains ->
                let exec = Exec.make domains in
                let tn = Timing.measure ~warmup:1 ~runs (p.naive exec) in
                let tt = Timing.measure ~warmup:1 ~runs (p.tiled exec) in
                let same = p.identical exec in
                Exec.shutdown exec ;
                (domains, tn, tt, same))
              domain_counts
          in
          let _, tn1, tt1, _ = List.hd per_domain in
          let all_same = List.for_all (fun (_, _, _, s) -> s) per_domain in
          Printf.printf "%-10s" p.name ;
          List.iter
            (fun (_, tn, tt, _) ->
              Printf.printf " %9s %9s" (Harness.ts tn) (Harness.ts tt))
            per_domain ;
          Printf.printf "   %5.2fx %5s\n" (tn1 /. tt1)
            (if all_same then "ok" else "DIFF") ;
          results := (d, p.name, per_domain, all_same) :: !results)
        probes)
    dims ;
  let results = List.rev !results in
  let headline =
    List.filter_map
      (fun (d, name, per_domain, _) ->
        if name = "gemm" && d >= 500 then
          let _, tn1, tt1, _ = List.hd per_domain in
          Some (d, tn1 /. tt1)
        else None)
      results
  in
  List.iter
    (fun (d, sp) ->
      Printf.printf "\ngemm d=%d: tiled %.2fx over naive (1 domain)%s" d sp
        (if sp >= 3.0 then "  [>=3x target met]" else ""))
    headline ;
  if headline <> [] then print_newline () ;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n" ;
  Buffer.add_string buf (Printf.sprintf "  \"cores_online\": %d,\n" cores) ;
  Buffer.add_string buf
    (Printf.sprintf "  \"tile_profile\": %S,\n" (Tune.describe (Tune.current ()))) ;
  Buffer.add_string buf
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map string_of_int domain_counts))) ;
  Buffer.add_string buf
    (Printf.sprintf "  \"dims\": [%s],\n"
       (String.concat ", " (List.map string_of_int dims))) ;
  Buffer.add_string buf "  \"kernels\": [\n" ;
  List.iteri
    (fun i (d, name, per_domain, all_same) ->
      let naive = List.map (fun (_, tn, _, _) -> tn) per_domain in
      let tiled = List.map (fun (_, _, tt, _) -> tt) per_domain in
      let _, tn1, tt1, _ = List.hd per_domain in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"dim\": %d, \"naive_seconds\": %s, \
            \"tiled_seconds\": %s, \"tiled_speedup_1dom\": %.3f, \
            \"bitwise_identical\": %b}%s\n"
           name d (json_floats naive) (json_floats tiled) (tn1 /. tt1) all_same
           (if i = List.length results - 1 then "" else ",")))
    results ;
  Buffer.add_string buf "  ]\n}\n" ;
  let path = "BENCH_kernels.json" in
  if cores <= 1 && Sys.file_exists path && not cfg.Harness.force then
    Printf.printf
      "\nWARNING: host exposes only %d core online; NOT overwriting the \
       committed %s (re-run with --force to override)\n"
      cores path
  else begin
    let oc = open_out path in
    output_string oc (Buffer.contents buf) ;
    close_out oc ;
    Printf.printf "\nwrote %s\n" path
  end
