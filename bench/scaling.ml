(* Parallel-scaling bench: wall-clock of the hot kernels vs the number
   of execution-engine domains, at the Fig-3 "large" grid cell
   (TR = 20, FR = 4 ⇒ n_S = 20·base, d_S = 20, d_R = 80). Three probes
   cover the stack: dense crossprod (the reduction kernel), dense LMM
   (the map kernel), and end-to-end factorized logistic regression
   (kernels reached through the process-default backend).

   Results go to stdout as a table and to BENCH_parallel.json in the
   current directory. Speed-ups are relative to the 1-domain run on
   the same build; [cores_online] records how many hardware cores the
   host actually exposes, since domains beyond that cannot speed
   anything up. *)

open La
open Morpheus
open Workload
open Ml_algs.Algorithms

let domain_counts = [ 1; 2; 4 ]

let json_floats l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%.6f") l) ^ "]"

let run cfg =
  Harness.section "Parallel scaling: Exec domains vs wall-clock (Fig-3 TR=20 FR=4)" ;
  let base = if cfg.Harness.quick then 500 else 2_000 in
  let tr = 20 and fr = 4.0 in
  let d = Synthetic.table4_tuple_ratio ~base ~tr ~fr () in
  let t = d.Synthetic.t in
  let dense_t = Sparse.Mat.dense (Materialize.to_mat t) in
  let n, dc = Dense.dims dense_t in
  let x = Dense.gaussian ~rng:(Rng.of_int 7) dc 2 in
  let iters = if cfg.Harness.quick then 3 else 5 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "dense T: %d x %d; logreg %d iters; host cores online: %d\n"
    n dc iters cores ;
  let ops =
    [ ("crossprod", fun exec () -> ignore (Blas.crossprod ~exec dense_t));
      ("lmm", fun exec () -> ignore (Blas.gemm ~exec dense_t x));
      ( "logreg",
        fun exec () ->
          (* end-to-end path: kernels pick the backend up as the
             process default, as library users' code would *)
          Exec.set_default exec ;
          ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters t d.Synthetic.y) )
    ]
  in
  let results =
    List.map
      (fun (name, probe) ->
        let seconds =
          List.map
            (fun domains ->
              let exec = Exec.make domains in
              let dt =
                Timing.measure ~warmup:1 ~runs:cfg.Harness.runs (probe exec)
              in
              Exec.set_default (Exec.seq) ;
              Exec.shutdown exec ;
              dt)
            domain_counts
        in
        (name, seconds))
      ops
  in
  Printf.printf "\n%-10s" "op" ;
  List.iter (fun dn -> Printf.printf " %8s" (Printf.sprintf "p=%d" dn)) domain_counts ;
  Printf.printf " %8s\n" "speedup" ;
  List.iter
    (fun (name, seconds) ->
      let t1 = List.hd seconds in
      Printf.printf "%-10s" name ;
      List.iter (fun s -> Printf.printf " %8s" (Harness.ts s)) seconds ;
      Printf.printf "   %5.2fx\n"
        (t1 /. List.fold_left min infinity seconds))
    results ;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n" ;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"setting\": {\"base\": %d, \"tr\": %d, \"fr\": %.1f, \"rows\": %d, \"cols\": %d, \"logreg_iters\": %d},\n"
       base tr fr n dc iters) ;
  Buffer.add_string buf (Printf.sprintf "  \"cores_online\": %d,\n" cores) ;
  Buffer.add_string buf
    (Printf.sprintf "  \"domains\": [%s],\n"
       (String.concat ", " (List.map string_of_int domain_counts))) ;
  Buffer.add_string buf "  \"ops\": [\n" ;
  List.iteri
    (fun i (name, seconds) ->
      let t1 = List.hd seconds in
      let speedups = List.map (fun s -> t1 /. s) seconds in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"seconds\": %s, \"speedup_vs_1\": %s}%s\n" name
           (json_floats seconds) (json_floats speedups)
           (if i = List.length results - 1 then "" else ",")))
    results ;
  Buffer.add_string buf "  ]\n}\n" ;
  let path = "BENCH_parallel.json" in
  (* a single-core host measures no parallelism: silently replacing the
     committed multi-core numbers with flat ones would look like a
     regression, so refuse unless explicitly forced *)
  if cores <= 1 && Sys.file_exists path && not cfg.Harness.force then
    Printf.printf
      "\nWARNING: host exposes only %d core online; NOT overwriting the \
       committed %s with single-core numbers (re-run with --force to \
       override)\n"
      cores path
  else begin
    let oc = open_out path in
    output_string oc (Buffer.contents buf) ;
    close_out oc ;
    Printf.printf "\nwrote %s\n" path
  end
