(* Memoization + in-place-kernel bench: per-iteration wall-clock and
   heap allocation of the three iterative ML algorithms, before vs
   after the invariant-memo / allocation-free-loop work.

   "before" re-creates the legacy loop shapes locally — dense one-hot
   selectors, fresh temporaries from add/scale/gemm on every iteration,
   a materialized 2·T copy and rowSums(T²) recomputed per call — and
   runs them with memoization disabled. "after" is the shipped
   implementation: memoized rowSums(T²)/crossprod on the normalized
   matrix, [axpy]/[gemm_into]/workspace loops inside.

   Both arms compute bitwise-identical models (the in-place kernels are
   exact rewrites), so the delta is pure overhead removed. Results go
   to stdout and BENCH_memo.json in the current directory. *)

open La
open Morpheus
open Workload
open Ml_algs.Algorithms
module F = Factorized_matrix

(* ---- legacy loop shapes (pre-memo, allocating) ---- *)

let legacy_logreg ~alpha ~iters t y =
  let d = F.cols t in
  let w = ref (Dense.create d 1) in
  for _ = 1 to iters do
    let scores = F.lmm t !w in
    let p = Dense.create (Dense.rows y) 1 in
    let pd = Dense.data p and yd = Dense.data y and sd = Dense.data scores in
    for i = 0 to Array.length pd - 1 do
      let yi = Array.unsafe_get yd i in
      Array.unsafe_set pd i
        (yi /. (1.0 +. Stdlib.exp (yi *. Array.unsafe_get sd i)))
    done ;
    let grad = F.tlmm t p in
    w := Dense.add !w (Dense.scale alpha grad)
  done ;
  !w

let legacy_kmeans ~iters ~k t =
  let n = F.rows t in
  (* dense n×k one-hot selector for the seeds *)
  let sel = Dense.init n k (fun i j -> if i = j * (n / k) then 1.0 else 0.0) in
  let c = ref (F.tlmm t sel) in
  (* recomputed on every call: rowSums(T²) and a scaled 2·T copy *)
  let dt = F.row_sums (F.pow t 2.0) in
  let t2 = F.scale 2.0 t in
  for _ = 1 to iters do
    let c2 = Dense.col_sums (Dense.pow_scalar !c 2.0) in
    let tc = F.lmm t2 !c in
    let d = Dense.create n k in
    let dd = Dense.data d
    and dtd = Dense.data dt
    and c2d = Dense.data c2
    and tcd = Dense.data tc in
    for i = 0 to n - 1 do
      let base = i * k in
      let dti = Array.unsafe_get dtd i in
      for j = 0 to k - 1 do
        Array.unsafe_set dd (base + j)
          (dti +. Array.unsafe_get c2d j -. Array.unsafe_get tcd (base + j))
      done
    done ;
    let args = Dense.row_argmins d in
    let a = Dense.create n k in
    let ad = Dense.data a in
    Array.iteri (fun i j -> Array.unsafe_set ad ((i * k) + j) 1.0) args ;
    let ta = F.tlmm t a in
    let counts = Dense.col_sums a in
    c :=
      Dense.init (F.cols t) k (fun i j ->
          let cnt = Dense.get counts 0 j in
          if cnt > 0.0 then Dense.get ta i j /. cnt else Dense.get !c i j)
  done ;
  !c

let legacy_gnmf ~iters ~rank t =
  let rng = Rng.of_int 42 in
  let n = F.rows t and d = F.cols t in
  let pos rows cols = Dense.init rows cols (fun _ _ -> 0.1 +. Rng.float rng) in
  let w = ref (pos n rank) and h = ref (pos d rank) in
  let eps = 1e-12 in
  for _ = 1 to iters do
    let update cur num den =
      let out = Dense.create (Dense.rows cur) (Dense.cols cur) in
      let od = Dense.data out
      and cd = Dense.data cur
      and nd = Dense.data num
      and dd = Dense.data den in
      for i = 0 to Array.length od - 1 do
        Array.unsafe_set od i
          (Array.unsafe_get cd i *. Array.unsafe_get nd i
          /. (Array.unsafe_get dd i +. eps))
      done ;
      out
    in
    let p = F.tlmm t !w in
    let denom_h = Blas.gemm !h (Blas.crossprod !w) in
    h := update !h p denom_h ;
    let p = F.lmm t !h in
    let denom_w = Blas.gemm !w (Blas.crossprod !h) in
    w := update !w p denom_w
  done ;
  (!w, !h)

(* ---- driver ---- *)

let per_iter iters (a : Timing.alloc) =
  let n = float_of_int iters in
  Timing.
    {
      seconds = a.seconds /. n;
      minor_words = a.minor_words /. n;
      major_words = a.major_words /. n;
      promoted_words = a.promoted_words /. n;
    }

let json_alloc (a : Timing.alloc) =
  Printf.sprintf
    "{\"seconds_per_iter\": %.6e, \"minor_words_per_iter\": %.1f, \"major_words_per_iter\": %.1f, \"promoted_words_per_iter\": %.1f}"
    a.Timing.seconds a.Timing.minor_words a.Timing.major_words
    a.Timing.promoted_words

let run cfg =
  Harness.section
    "Memoization + in-place kernels: per-iteration time and allocation" ;
  let base = if cfg.Harness.quick then 300 else 2_000 in
  let tr = 10 and fr = 4.0 in
  let data = Synthetic.table4_tuple_ratio ~base ~tr ~fr () in
  let t = data.Synthetic.t and y = data.Synthetic.y in
  let iters = if cfg.Harness.quick then 3 else 10 in
  Printf.printf
    "factorized T at TR=%d FR=%.1f (base n_R=%d); %d iterations per run\n" tr
    fr base iters ;
  let cases =
    [ ( "logreg",
        (fun () -> ignore (legacy_logreg ~alpha:1e-4 ~iters t y)),
        fun () -> ignore (Factorized.Logreg.train ~alpha:1e-4 ~iters t y) );
      ( "kmeans",
        (fun () -> ignore (legacy_kmeans ~iters ~k:5 t)),
        fun () -> ignore (Factorized.Kmeans.train ~iters ~k:5 t) );
      ( "gnmf",
        (fun () -> ignore (legacy_gnmf ~iters ~rank:5 t)),
        fun () -> ignore (Factorized.Gnmf.train ~iters ~rank:5 t) )
    ]
  in
  let results =
    List.map
      (fun (name, before, after) ->
        (* legacy arm with memoization off: every run recomputes the
           loop invariants, as the pre-memo library did *)
        let b =
          per_iter iters
            (Harness.measure_alloc cfg (fun () -> Memo.with_disabled before))
        in
        (* shipped arm: memoization on (the driver turns it off for the
           paper benches); warmup populates the memo cells attached to
           [t], so measured runs see the steady state *)
        let a =
          Memo.set_enabled true ;
          let r = per_iter iters (Harness.measure_alloc cfg after) in
          Memo.set_enabled false ;
          r
        in
        Harness.subsection name ;
        Harness.alloc_header () ;
        Harness.alloc_row "before (legacy, no memo)" b ;
        Harness.alloc_row "after (memo + in-place)" a ;
        Printf.printf "per-iteration speedup: %.2fx\n"
          (b.Timing.seconds /. a.Timing.seconds) ;
        (name, b, a))
      cases
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n" ;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"setting\": {\"base\": %d, \"tr\": %d, \"fr\": %.1f, \"iters\": %d, \"quick\": %b},\n"
       base tr fr iters cfg.Harness.quick) ;
  Buffer.add_string buf "  \"algorithms\": [\n" ;
  List.iteri
    (fun i (name, b, a) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S,\n     \"before\": %s,\n     \"after\": %s,\n     \"speedup_per_iter\": %.2f}%s\n"
           name (json_alloc b) (json_alloc a)
           (b.Timing.seconds /. a.Timing.seconds)
           (if i = List.length results - 1 then "" else ",")))
    results ;
  Buffer.add_string buf "  ]\n}\n" ;
  let path = "BENCH_memo.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf) ;
  close_out oc ;
  Printf.printf "\nwrote %s\n" path
