(* M:N join example (§3.6): two fact tables joined on a shared non-key
   attribute. Think of transactions and promotions both keyed by
   product-category: T = Transactions ⋈_category Promotions pairs every
   transaction with every promotion in its category — an M:N join whose
   output explodes as categories repeat, exactly the regime where the
   indicator-matrix rewrites shine (Figure 4). Like the paper's Table 5
   setup, both sides carry wide feature vectors.

   Run with:  dune exec examples/market_basket_mn.exe *)

open La
open Relational
open Morpheus

let n_transactions = 3000
let n_promotions = 3000
let n_categories = 150
let n_features = 30 (* numeric features per side *)

let feature_cols prefix =
  List.init n_features (fun i ->
      Schema.column
        ~name:(Printf.sprintf "%s%d" prefix i)
        ~role:Schema.Numeric_feature)

let make_tables () =
  let rng = Rng.of_int 5150 in
  let features () =
    List.init n_features (fun _ -> Value.Float (Rng.gaussian rng))
  in
  let transactions =
    List.init n_transactions (fun _ ->
        Array.of_list
          (Value.Int (Rng.int rng n_categories)
           :: Value.Float (if Rng.bool rng then 1.0 else -1.0)
           :: features ()))
  in
  let promotions =
    List.init n_promotions (fun _ ->
        Array.of_list (Value.Int (Rng.int rng n_categories) :: features ()))
  in
  let t_schema =
    Schema.create ~table_name:"Transactions"
      (Schema.column ~name:"Category" ~role:Schema.Ignored
       :: Schema.column ~name:"HighMargin" ~role:Schema.Target
       :: feature_cols "tx")
  in
  let p_schema =
    Schema.create ~table_name:"Promotions"
      (Schema.column ~name:"Category" ~role:Schema.Ignored :: feature_cols "promo")
  in
  (Table.of_rows t_schema transactions, Table.of_rows p_schema promotions)

let () =
  let s, r = make_tables () in
  let ds = Builder.mn ~s ~js:"Category" ~r ~jr:"Category" () in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  let n_out = Normalized.rows t in
  Fmt.pr "M:N join: %d × %d base tuples → %d output tuples (×%.0f blow-up)@."
    n_transactions n_promotions n_out
    (float_of_int n_out /. float_of_int n_transactions) ;
  Fmt.pr "normalized matrix stores %d scalars; T would store %d@."
    (Normalized.storage_size t)
    (n_out * Normalized.cols t) ;

  (* Operator-level comparison on this M:N join, like Figure 4. *)
  let x = Dense.gaussian ~rng:(Rng.of_int 1) (Normalized.cols t) 4 in
  let t_mat, mat_time = Workload.Timing.time (fun () -> Materialize.to_mat t) in
  Fmt.pr "@.materializing T took %a@." Workload.Timing.pp_seconds mat_time ;
  let bench name f_fact f_mat =
    let dt_f = Workload.Timing.measure ~warmup:1 ~runs:3 f_fact in
    let dt_m = Workload.Timing.measure ~warmup:1 ~runs:3 f_mat in
    Fmt.pr "%-12s materialized %a | factorized %a | speed-up %.1fx@." name
      Workload.Timing.pp_seconds dt_m Workload.Timing.pp_seconds dt_f
      (dt_m /. dt_f)
  in
  bench "LMM"
    (fun () -> ignore (Rewrite.lmm t x))
    (fun () -> ignore (Sparse.Mat.mm t_mat x)) ;
  bench "crossprod"
    (fun () -> ignore (Rewrite.crossprod t))
    (fun () -> ignore (Sparse.Mat.crossprod t_mat)) ;
  bench "rowSums"
    (fun () -> ignore (Rewrite.row_sums t))
    (fun () -> ignore (Sparse.Mat.row_sums t_mat)) ;

  (* Train logistic regression over the M:N output, both paths. *)
  let module F = Ml_algs.Logreg.Make (Factorized_matrix) in
  let module M = Ml_algs.Logreg.Make (Regular_matrix) in
  let model_f, dt_f =
    Workload.Timing.time (fun () -> F.train ~alpha:1e-6 ~iters:10 t y)
  in
  let model_m, dt_m =
    Workload.Timing.time (fun () ->
        M.train ~alpha:1e-6 ~iters:10 (Regular_matrix.of_mat t_mat) y)
  in
  Fmt.pr "@.logistic regression over the join output (10 iterations):@." ;
  Fmt.pr "  materialized %a | factorized %a | speed-up %.1fx@."
    Workload.Timing.pp_seconds dt_m Workload.Timing.pp_seconds dt_f
    (dt_m /. dt_f) ;
  Fmt.pr "  weights agree to %.2e@."
    (Dense.max_abs_diff model_f.F.w model_m.M.w)
