(* Star-schema example (§3.5): a recommendation-style dataset shaped like
   the paper's Movies workload — a ratings table with two foreign keys
   into Users and Movies tables of sparse one-hot features. Runs the two
   unsupervised algorithms the paper factorizes for the first time:
   K-Means clustering and GNMF feature extraction.

   Run with:  dune exec examples/recommender.exe *)

open La
open Morpheus
open Workload

let () =
  (* A scaled-down Movies-shaped dataset from the Table 6 simulator. *)
  let t, _, _ =
    Realistic.load ~scale_rows:0.02 ~scale_cols:0.02 Realistic.movies
  in
  Fmt.pr "Movies-shaped star schema: T is %d×%d over %d attribute tables@."
    (Normalized.rows t) (Normalized.cols t)
    (List.length (Normalized.parts t)) ;
  Fmt.pr "stored scalars: %d (materialized T would hold %d)@."
    (Normalized.storage_size t)
    (Normalized.rows t * Normalized.cols t) ;

  let module FK = Ml_algs.Kmeans.Make (Factorized_matrix) in
  let module MK = Ml_algs.Kmeans.Make (Regular_matrix) in
  let module FG = Ml_algs.Gnmf.Make (Factorized_matrix) in
  let module MG = Ml_algs.Gnmf.Make (Regular_matrix) in

  let t_mat = Materialize.to_regular t in

  (* ---- K-Means: segment the ratings by their joined features ---- *)
  let k = 10 in
  let res_f, dt_f = Timing.time (fun () -> FK.train ~iters:10 ~k t) in
  let res_m, dt_m = Timing.time (fun () -> MK.train ~iters:10 ~k t_mat) in
  Fmt.pr "@.K-Means (k=%d, 10 iterations):@." k ;
  Fmt.pr "  materialized %a | factorized %a | speed-up %.1fx@."
    Timing.pp_seconds dt_m Timing.pp_seconds dt_f (dt_m /. dt_f) ;
  Fmt.pr "  objective %.1f; centroid drift between paths %.2e@."
    res_f.FK.objective
    (Dense.max_abs_diff res_f.FK.centroids res_m.MK.centroids) ;
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) res_f.FK.assignments ;
  Fmt.pr "  cluster sizes: %a@."
    Fmt.(array ~sep:sp int)
    sizes ;

  (* ---- GNMF: extract latent topics ---- *)
  let rank = 5 in
  let gf, dt_gf = Timing.time (fun () -> FG.train ~iters:10 ~rank t) in
  let _, dt_gm = Timing.time (fun () -> MG.train ~iters:10 ~rank t_mat) in
  Fmt.pr "@.GNMF (rank=%d, 10 iterations):@." rank ;
  Fmt.pr "  materialized %a | factorized %a | speed-up %.1fx@."
    Timing.pp_seconds dt_gm Timing.pp_seconds dt_gf (dt_gm /. dt_gf) ;
  Fmt.pr "  reconstruction error: %.1f@." (FG.reconstruction_error t gf) ;
  (* top-weight feature indices of each topic *)
  let h = gf.FG.h in
  for topic = 0 to rank - 1 do
    let best = ref 0 in
    for i = 0 to Dense.rows h - 1 do
      if Dense.get h i topic > Dense.get h !best topic then best := i
    done ;
    Fmt.pr "  topic %d: dominant feature column %d (weight %.3f)@." topic !best
      (Dense.get h !best topic)
  done
