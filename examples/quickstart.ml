(* Quickstart: the paper's §3.2 flow in a few lines.

   1. Build a normalized matrix (S, K, R) instead of joining the tables.
   2. Run any LA operation — it is rewritten over the base tables.
   3. Train an ML algorithm written once against the abstract data-matrix
      signature; the factorized instantiation is automatic.

   Run with:  dune exec examples/quickstart.exe *)

open La
open Sparse
open Morpheus

let () =
  (* Synthetic normalized data: S is 100k×5, R is 10k×20, K maps each of
     S's rows to a row of R — tuple ratio 10, feature ratio 4. *)
  let rng = Rng.of_int 7 in
  let ns = 100_000 and ds = 5 and nr = 10_000 and dr = 20 in
  let s = Mat.of_dense (Dense.gaussian ~rng ns ds) in
  let r = Mat.of_dense (Dense.gaussian ~rng nr dr) in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in

  (* The normalized matrix: a logical T = [S, K·R] that is never built. *)
  let t = Normalized.pkfk ~s ~k ~r in
  Fmt.pr "normalized matrix: %d x %d (stored scalars: %d, T would store %d)@."
    (Normalized.rows t) (Normalized.cols t) (Normalized.storage_size t)
    (Normalized.rows t * Normalized.cols t) ;

  (* LA operations run through the rewrite rules. *)
  let total = Rewrite.sum t in
  Fmt.pr "sum(T)        = %.3f (computed without materializing T)@." total ;
  let w = Dense.gaussian ~rng (Normalized.cols t) 1 in
  let tw = Rewrite.lmm t w in
  Fmt.pr "T·w           : %d×%d result@." (Dense.rows tw) (Dense.cols tw) ;
  let cp = Rewrite.crossprod t in
  Fmt.pr "crossprod(T)  : %d×%d result@." (Dense.rows cp) (Dense.cols cp) ;

  (* The same logistic-regression code runs materialized or factorized. *)
  let y = Dense.init ns 1 (fun i _ -> if i mod 3 = 0 then 1.0 else -1.0) in
  let module F = Ml_algs.Logreg.Make (Factorized_matrix) in
  let module M = Ml_algs.Logreg.Make (Regular_matrix) in
  let t_mat = Materialize.to_mat t in
  let (model_f, dt_f) =
    Workload.Timing.time (fun () -> F.train ~alpha:1e-4 ~iters:10 t y)
  in
  let (model_m, dt_m) =
    Workload.Timing.time (fun () ->
        M.train ~alpha:1e-4 ~iters:10 (Regular_matrix.of_mat t_mat) y)
  in
  Fmt.pr "logistic regression, 10 iterations:@." ;
  Fmt.pr "  materialized: %a@." Workload.Timing.pp_seconds dt_m ;
  Fmt.pr "  factorized  : %a (%.1fx speed-up)@." Workload.Timing.pp_seconds dt_f
    (dt_m /. dt_f) ;
  Fmt.pr "  max weight difference: %.2e (identical up to float rounding)@."
    (Dense.max_abs_diff model_f.F.w model_m.M.w) ;

  (* The heuristic decision rule of §3.7 agrees this is worth factorizing. *)
  Fmt.pr "decision rule: %s (TR=%.1f, FR=%.1f)@."
    (Decision.to_string (Decision.heuristic t))
    (Normalized.tuple_ratio t) (Normalized.feature_ratio t)
