(* Beyond Table 1: the paper's §7 lists SVD and Cholesky over normalized
   data as future work — this example runs them. A Yelp-shaped star
   schema is reduced with PCA (covariance, eigendirections, projections
   all computed over the normalized matrix; the centered T is never
   formed), then ridge regression is solved through the factorized
   Cholesky path, and finally the same computation is phrased in the
   Expr DSL to show the automatic-rewriting front end.

   Run with:  dune exec examples/dimensionality_reduction.exe *)

open La
open Morpheus
open Workload

let () =
  let t, _, y = Realistic.load ~scale_rows:0.02 ~scale_cols:0.003 Realistic.yelp in
  let n, d = Normalized.dims t in
  Fmt.pr "Yelp-shaped star schema: T is %d×%d (%d stored scalars)@." n d
    (Normalized.storage_size t) ;

  (* ---- PCA without materializing or centering T ---- *)
  let k = 8 in
  let p, dt = Timing.time (fun () -> Spectral.pca ~k t) in
  Fmt.pr "@.PCA (k=%d) in %a; explained variance ratio %.3f@." k
    Timing.pp_seconds dt
    (Spectral.explained_ratio t p) ;
  Array.iteri
    (fun i v -> Fmt.pr "  component %d: variance %.4f@." i v)
    p.Spectral.explained_variance ;
  let projected = Spectral.transform t p in
  Fmt.pr "projected data: %d×%d@." (Dense.rows projected) (Dense.cols projected) ;

  (* ---- truncated SVD of the logical T ---- *)
  let svd, dt_svd = Timing.time (fun () -> Spectral.svd ~rank:5 t) in
  Fmt.pr "@.truncated SVD (rank 5) in %a; singular values:@." Timing.pp_seconds
    dt_svd ;
  Array.iter (fun s -> Fmt.pr "  %.4f@." s) svd.Spectral.s ;

  (* ---- ridge regression via factorized Cholesky ---- *)
  let w, dt_ridge = Timing.time (fun () -> Spectral.solve_ridge ~lambda:1.0 t y) in
  let module FL = Ml_algs.Linreg.Make (Factorized_matrix) in
  Fmt.pr "@.ridge regression (λ=1) in %a; RSS %.1f (vs %.1f at w=0)@."
    Timing.pp_seconds dt_ridge (FL.rss t w y)
    (Dense.sum (Dense.mul_elem y y)) ;

  (* ---- the same normal equations through the Expr DSL ---- *)
  let script =
    (* w = ginv(crossprod(T)) %*% (T' %*% y): Algorithm 6 verbatim *)
    Expr.(
      Ginv (Crossprod (normalized t)) *@ (tr (normalized t) *@ dense y))
  in
  Fmt.pr "@.Expr DSL script: %s@." (Expr.to_string (Expr.simplify script)) ;
  let w_expr, dt_expr = Timing.time (fun () -> Expr.eval_dense script) in
  Fmt.pr "evaluated with automatic factorization in %a; RSS %.1f@."
    Timing.pp_seconds dt_expr (FL.rss t w_expr y)
