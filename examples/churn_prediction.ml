(* The paper's running example (§2): an insurance analyst predicts
   customer churn with logistic regression over
     Customers(CustomerID, Churn, Age, Income, EmployerID)
       ⋈ Employers(EmployerID, Revenue, Country).

   This example goes end to end through the relational substrate: write
   the two base tables as CSV, read them back, build the normalized
   matrix (one-hot encoding the nominal Country column), and train —
   never materializing the join.

   Run with:  dune exec examples/churn_prediction.exe *)

open La
open Relational
open Morpheus

let n_customers = 50_000
let n_employers = 500

(* Synthesize the two base tables. Churn correlates with employer
   revenue ("customers employed by rich corporations ... are unlikely to
   churn") so the joined features genuinely matter. *)
let make_tables () =
  let rng = Rng.of_int 2024 in
  let countries = [| "US"; "DE"; "FR"; "IN"; "JP" |] in
  let employers =
    List.init n_employers (fun i ->
        [| Value.Int i;
           Value.Float (Rng.uniform rng ~lo:1.0 ~hi:100.0) (* revenue, $M *);
           Value.String countries.(Rng.int rng (Array.length countries)) |])
  in
  let revenue_of = Array.make n_employers 0.0 in
  List.iteri
    (fun i row -> revenue_of.(i) <- Value.to_float row.(1))
    employers ;
  let customers =
    List.init n_customers (fun i ->
        let emp = Rng.int rng n_employers in
        let age = Rng.uniform rng ~lo:20.0 ~hi:70.0 in
        let income = Rng.uniform rng ~lo:20.0 ~hi:200.0 in
        (* churn likely when revenue low and income low *)
        let score =
          (0.04 *. revenue_of.(emp)) +. (0.02 *. income) -. 2.8
          +. (0.5 *. Rng.gaussian rng)
        in
        [| Value.Int i;
           Value.Float (if score < 0.0 then 1.0 else -1.0) (* churns? *);
           Value.Float age;
           Value.Float income;
           Value.Int emp |])
  in
  let customers_schema =
    Schema.create ~table_name:"Customers"
      [ Schema.column ~name:"CustomerID" ~role:Schema.Primary_key;
        Schema.column ~name:"Churn" ~role:Schema.Target;
        Schema.column ~name:"Age" ~role:Schema.Numeric_feature;
        Schema.column ~name:"Income" ~role:Schema.Numeric_feature;
        Schema.column ~name:"EmployerID" ~role:(Schema.Foreign_key "Employers") ]
  in
  let employers_schema =
    Schema.create ~table_name:"Employers"
      [ Schema.column ~name:"EmployerID" ~role:Schema.Primary_key;
        Schema.column ~name:"Revenue" ~role:Schema.Numeric_feature;
        Schema.column ~name:"Country" ~role:Schema.Nominal_feature ]
  in
  ( Table.of_rows customers_schema customers,
    Table.of_rows employers_schema employers,
    customers_schema,
    employers_schema )

let () =
  let customers, employers, s_schema, r_schema = make_tables () in

  (* Round-trip through CSV, as a real pipeline would. *)
  let dir = Filename.get_temp_dir_name () in
  let s_path = Filename.concat dir "customers.csv" in
  let r_path = Filename.concat dir "employers.csv" in
  Csv.write_table s_path customers ;
  Csv.write_table r_path employers ;
  Fmt.pr "wrote %s (%d rows) and %s (%d rows)@." s_path (Table.nrows customers)
    r_path (Table.nrows employers) ;

  let role_of schema n = (Schema.find schema n).Schema.role in
  let ds =
    Builder.pkfk_of_csv ~s_path
      ~s_roles:(role_of s_schema)
      ~fk:"EmployerID" ~r_path
      ~r_roles:(role_of r_schema)
      ~pk:"EmployerID" ()
  in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  Fmt.pr "normalized matrix: %d×%d; decision rule says: %s@."
    (Normalized.rows t) (Normalized.cols t)
    (Decision.to_string (Decision.heuristic t)) ;

  (* Train both paths; compare time and verify the models coincide. *)
  let module F = Ml_algs.Logreg.Make (Factorized_matrix) in
  let module M = Ml_algs.Logreg.Make (Regular_matrix) in
  let t_mat, prep_m = Workload.Timing.time (fun () -> Materialize.to_mat t) in
  let model_f, dt_f =
    Workload.Timing.time (fun () -> F.train ~alpha:1e-5 ~iters:30 t y)
  in
  let model_m, dt_m =
    Workload.Timing.time (fun () ->
        M.train ~alpha:1e-5 ~iters:30 (Regular_matrix.of_mat t_mat) y)
  in
  Fmt.pr "materialized: join %a + train %a@." Workload.Timing.pp_seconds prep_m
    Workload.Timing.pp_seconds dt_m ;
  Fmt.pr "factorized  : train %a (%.1fx on training alone)@."
    Workload.Timing.pp_seconds dt_f (dt_m /. dt_f) ;
  Fmt.pr "weights agree to %.2e@."
    (Dense.max_abs_diff model_f.F.w model_m.M.w) ;
  Fmt.pr "training accuracy: %.3f@." (F.accuracy t model_f y) ;

  Sys.remove s_path ;
  Sys.remove r_path
