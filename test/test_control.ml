(* The control-plane suite (@controlcheck, also plain runtest):
   endpoint-string edge cases, wire-codec fuzzing (in memory and
   against a live server socket), deterministic breaker jitter, the
   AIMD concurrency limiter, deadline admission end to end (the shard
   observes a strictly smaller budget than the client sent), the
   drain/undrain lifecycle on both the server and the router, active
   health probing with auto-eject and rejoin, and hedged requests.
   When MORPHEUS_BIN points at the CLI binary, a transport-fault storm
   over real shard processes (SIGKILL mid-storm, restart, rejoin,
   drain with zero failures) and CLI usage-error checks ride along;
   without it those cases skip. *)

open La
open Sparse
open Morpheus
open Morpheus_serve
open Morpheus_cluster

let qc = QCheck_alcotest.to_alcotest

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let tmpdir prefix =
  incr dir_counter ;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !dir_counter)
  in
  rm_rf d ;
  Sys.mkdir d 0o755 ;
  d

let contains ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let wire addr req = Client.with_client ~socket:addr (fun c -> Client.call c req)

let await ?(timeout = 10.0) ?on_timeout ~what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then begin
      (match on_timeout with Some f -> f () | None -> ()) ;
      Alcotest.failf "timed out waiting for %s" what
    end
    else begin
      Thread.delay 0.01 ;
      go ()
    end
  in
  go ()

(* ---- endpoint strings: every malformed form is a structured error ---- *)

let test_endpoint_edges () =
  let ok s expected =
    match Endpoint.of_string_result s with
    | Ok e -> Alcotest.(check string) s expected (Endpoint.to_string e)
    | Error msg -> Alcotest.failf "%S rejected: %s" s msg
  in
  let bad s =
    match Endpoint.of_string_result s with
    | Error msg ->
      if not (contains ~needle:"bad endpoint" msg || contains ~needle:"empty" msg)
      then Alcotest.failf "%S: unhelpful error %S" s msg
    | Ok e ->
      Alcotest.failf "%S accepted as %s" s (Endpoint.to_string e)
  in
  bad "" ;
  bad "unix:" ;
  bad "tcp:" ;
  bad "tcp:nohost" ;
  bad "tcp::80" ;
  bad "tcp:host:" ;
  bad "tcp:host:notaport" ;
  bad "tcp:host:99999" ;
  bad "tcp:host:-1" ;
  bad ":9000" ;
  bad "tcp:[::1]" ;
  bad "tcp:[::1]:" ;
  bad "tcp:[::1]:nope" ;
  (* IPv6 literals use the bracket form, with and without the prefix *)
  (match Endpoint.of_string_result "tcp:[::1]:8080" with
  | Ok (Endpoint.Tcp ("::1", 8080)) -> ()
  | Ok e -> Alcotest.failf "tcp:[::1]:8080 parsed as %s" (Endpoint.to_string e)
  | Error msg -> Alcotest.failf "tcp:[::1]:8080 rejected: %s" msg) ;
  ok "[::1]:8080" "[::1]:8080" ;
  ok "tcp:[::1]:8080" "[::1]:8080" ;
  (* the existing contract is untouched *)
  ok "127.0.0.1:9000" "127.0.0.1:9000" ;
  ok "tcp:localhost:80" "localhost:80" ;
  ok "unix:/tmp/x:1" "/tmp/x:1" ;
  ok "/tmp/odd:name" "/tmp/odd:name" ;
  ok "/tmp/sock" "/tmp/sock" ;
  (* of_string raises where of_string_result errors, with the reason *)
  match Endpoint.of_string "tcp:" with
  | exception Invalid_argument msg ->
    if not (contains ~needle:"bad endpoint" msg) then
      Alcotest.failf "of_string error lost the reason: %S" msg
  | _ -> Alcotest.fail "of_string accepted tcp:"

(* ---- codec fuzz: the parser and decoder are total ---- *)

let qcheck_json_total =
  QCheck.Test.make ~name:"Json.of_string is total on garbage" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match Json.of_string s with Ok _ -> true | Error _ -> true)

(* Random JSON values: decoding any shape must return a result, never
   raise. *)
let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [ return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Num (float_of_int i /. 8.0)) (int_range (-8000) 8000);
               map (fun s -> Json.Str s) (string_size (int_range 0 12))
             ]
         in
         if n <= 0 then leaf
         else
           frequency
             [ (2, leaf);
               ( 1,
                 map (fun l -> Json.Arr l) (list_size (int_range 0 4) (self (n / 2)))
               );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_range 0 4)
                      (pair
                         (oneofl
                            [ "op"; "model"; "rows"; "dataset"; "ids"; "where";
                              "deadline_ms"; "shard"; "x" ])
                         (self (n / 2)))) )
             ])

let qcheck_request_total =
  QCheck.Test.make ~name:"request_of_json is total on any shape" ~count:500
    (QCheck.make json_gen)
    (fun j ->
      match Protocol.request_of_json j with Ok _ -> true | Error _ -> true)

let qcheck_truncated_frames =
  QCheck.Test.make ~name:"truncated frames parse to errors, never raise"
    ~count:300
    QCheck.(pair (int_range 0 80) (int_range 0 1000))
    (fun (cut, seed) ->
      let reqs =
        [ Protocol.Ping;
          Protocol.Membership;
          Protocol.Drain (Some "s0");
          Protocol.Score
            { model = "m";
              target = Protocol.Rows [| [| 0.5; Float.of_int seed |] |];
              deadline_ms = Some 12.5
            }
        ]
      in
      let line =
        Json.to_string
          (Protocol.request_to_json (List.nth reqs (seed mod List.length reqs)))
      in
      let cut = min cut (String.length line) in
      match Json.of_string (String.sub line 0 cut) with
      | Ok j -> ( match Protocol.request_of_json j with Ok _ | Error _ -> true)
      | Error _ -> true)

(* ---- live-socket fuzz: garbage never kills or wedges the server ---- *)

let start_plain_server () =
  let reg = tmpdir "control_empty_reg" in
  Server.start
    { (Server.default_config ~registry:reg ~socket:"127.0.0.1:0") with
      Server.handlers = 2;
      max_wait = 1e-3
    }

let send_raw fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  (try
     while !off < Bytes.length b do
       off := !off + Unix.write fd b !off (Bytes.length b - !off)
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ())

let read_response fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if String.contains (Buffer.contents buf) '\n' then
      Some (List.hd (String.split_on_char '\n' (Buffer.contents buf)))
    else begin
      match Unix.select [ fd ] [] [] 5.0 with
      | [], _, _ -> None
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n ;
          go ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> None)
    end
  in
  go ()

let test_wire_fuzz () =
  let server = start_plain_server () in
  Fun.protect ~finally:(fun () -> Server.stop server)
  @@ fun () ->
  let addr = Endpoint.to_string (Server.endpoint server) in
  let garbage =
    [ "not json at all";
      "{\"op\":\"score\"";  (* truncated object *)
      "{\"op\":42}";
      "{\"op\":\"nosuchop\"}";
      "[1,2,3]";
      "\"just a string\"";
      "{}";
      "{\"op\":\"score\",\"model\":3,\"rows\":\"x\"}";
      "\x00\x01\xfe binary \xff";
      String.make 600 '{'
    ]
  in
  List.iter
    (fun line ->
      let fd = Endpoint.connect (Endpoint.of_string addr) in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      send_raw fd (line ^ "\n") ;
      match read_response fd with
      | None -> Alcotest.failf "no response to %S" line
      | Some resp -> (
        match Json.of_string resp with
        | Error e -> Alcotest.failf "unparseable response %S to %S: %s" resp line e
        | Ok j -> (
          match Option.bind (Json.member "ok" j) Json.to_bool with
          | Some false -> ()
          | _ -> Alcotest.failf "garbage %S was not refused: %s" line resp)))
    garbage ;
  (* an oversized frame gets a structured refusal and a hangup, not an
     unbounded buffer (the write may also die early with RST — both
     are clean outcomes) *)
  let fd = Endpoint.connect (Endpoint.of_string addr) in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  (fun () ->
    send_raw fd (String.make (2 * 1024 * 1024) 'a' ^ "\n") ;
    match read_response fd with
    | Some resp when contains ~needle:"frame too large" resp -> ()
    | Some resp when contains ~needle:"bad_request" resp -> ()
    | Some resp -> Alcotest.failf "oversized frame got %S" resp
    | None -> () (* connection reset before the refusal drained: fine *)) ;
  (* the server is still healthy and the refusals were counted *)
  (match wire addr Protocol.Ping with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "ping after fuzz: [%s] %s" c m) ;
  let stats = Json.to_string (Server.stats server) in
  if not (contains ~needle:"bad_request" stats) then
    Alcotest.fail "refusals were not counted in stats"

(* ---- breaker: seeded jitter spreads reopen instants ---- *)

let test_breaker_jitter_spread () =
  let n = 8 in
  let clocks = Array.make n 0.0 in
  let breakers =
    Array.init n (fun i ->
        Breaker.create ~threshold:1 ~cooldown:1.0 ~jitter:0.5 ~seed:i
          ~now:(fun () -> clocks.(i))
          ())
  in
  Array.iter Breaker.failure breakers ;
  Array.iter
    (fun b -> Alcotest.(check bool) "opened" false (Breaker.allow b))
    breakers ;
  let first_allow =
    Array.mapi
      (fun i b ->
        let t = ref 1.0 in
        while
          clocks.(i) <- !t ;
          Breaker.state b <> Breaker.Half_open && !t < 2.0
        do
          t := !t +. 0.005
        done ;
        !t)
      breakers
  in
  Array.iter
    (fun t ->
      if t < 1.0 || t > 1.51 then
        Alcotest.failf "reopen at %.3f outside [cooldown, cooldown*1.5]" t)
    first_allow ;
  let distinct =
    List.length (List.sort_uniq compare (Array.to_list first_allow))
  in
  if distinct < 3 then
    Alcotest.failf "only %d distinct reopen instants across %d seeds" distinct n ;
  let lo = Array.fold_left min first_allow.(0) first_allow in
  let hi = Array.fold_left max first_allow.(0) first_allow in
  if hi -. lo < 0.05 then
    Alcotest.failf "reopen spread %.3fs is lockstep" (hi -. lo) ;
  (* determinism: the same seed replays the same jitter *)
  let clock = ref 0.0 in
  let same () =
    let b =
      Breaker.create ~threshold:1 ~cooldown:1.0 ~jitter:0.5 ~seed:3
        ~now:(fun () -> !clock)
        ()
    in
    clock := 0.0 ;
    Breaker.failure b ;
    let t = ref 1.0 in
    while
      clock := !t ;
      Breaker.state b <> Breaker.Half_open && !t < 2.0
    do
      t := !t +. 0.005
    done ;
    !t
  in
  Alcotest.(check (float 1e-9)) "seeded jitter is deterministic" (same ()) (same ())

(* ---- limiter: AIMD on a fake clock ---- *)

let test_limiter_aimd () =
  let clock = ref 0.0 in
  let lim =
    Limiter.create ~min_limit:2.0 ~max_limit:8.0 ~initial:4.0 ~backoff:0.5
      ~decrease_interval:0.05
      ~now:(fun () -> !clock)
      ~target:0.010 ()
  in
  (* admission stops exactly at the limit *)
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "admit %d" i) true (Limiter.try_acquire lim)
  done ;
  Alcotest.(check bool) "fifth is shed" false (Limiter.try_acquire lim) ;
  Alcotest.(check int) "shed counted" 1 (Limiter.shed lim) ;
  (* fast completions grow the limit additively *)
  for _ = 1 to 4 do
    Limiter.release lim ~latency:0.002 ~ok:true
  done ;
  let grown = Limiter.limit lim in
  if grown <= 4.0 then Alcotest.failf "no additive increase (limit %.2f)" grown ;
  if grown > 5.5 then Alcotest.failf "increase too aggressive (limit %.2f)" grown ;
  (* a slow completion cuts multiplicatively *)
  clock := 1.0 ;
  Alcotest.(check bool) "admit again" true (Limiter.try_acquire lim) ;
  Limiter.release lim ~latency:0.200 ~ok:true ;
  let cut = Limiter.limit lim in
  if cut >= grown *. 0.6 then
    Alcotest.failf "no multiplicative decrease (%.2f -> %.2f)" grown cut ;
  (* decreases are rate-limited inside the interval *)
  Alcotest.(check bool) "admit" true (Limiter.try_acquire lim) ;
  Limiter.release lim ~latency:0.200 ~ok:false ;
  Alcotest.(check (float 1e-9)) "second cut inside interval suppressed" cut
    (Limiter.limit lim) ;
  (* and the floor holds *)
  for k = 1 to 20 do
    clock := 1.0 +. (0.1 *. float_of_int k) ;
    if Limiter.try_acquire lim then Limiter.release lim ~latency:0.2 ~ok:false
  done ;
  if Limiter.limit lim < 2.0 then Alcotest.fail "limit fell through min_limit"

(* ---- batcher: Expired at dequeue when the budget cannot be met ---- *)

let test_batcher_expired () =
  let metrics = Metrics.create () in
  let b =
    Batcher.create ~max_batch:4 ~max_wait:0.0 ~queue_bound:16 ~metrics
      ~size:(fun _ -> 1)
      ~exec:(fun () payloads ->
        Thread.delay 0.05 ;
        Array.map (fun _ -> Ok ()) payloads)
      ()
  in
  Fun.protect ~finally:(fun () -> Batcher.stop b)
  @@ fun () ->
  (* prime the execution-time ewma with one normal batch *)
  (match Batcher.submit b () () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "prime batch failed: %s" (Batcher.error_code e)) ;
  (* a deadline beyond now but inside the known execution time: the
     batcher refuses at dequeue rather than answering late *)
  (match Batcher.submit b ~deadline:(Unix.gettimeofday () +. 0.01) () () with
  | Error Batcher.Expired -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Batcher.error_code e)
  | Ok () -> Alcotest.fail "a request that could not meet its deadline ran") ;
  (* an already-passed deadline still reports Deadline_exceeded *)
  (match Batcher.submit b ~deadline:(Unix.gettimeofday () -. 0.001) () () with
  | Error Batcher.Deadline_exceeded -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Batcher.error_code e)
  | Ok () -> Alcotest.fail "an expired request ran") ;
  (* a roomy deadline still runs *)
  match Batcher.submit b ~deadline:(Unix.gettimeofday () +. 5.0) () () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "roomy deadline failed: %s" (Batcher.error_code e)

(* ---- fake shards: scripted TCP peers for control-plane tests ---- *)

type fake = {
  fk_addr : string;
  fk_stop : bool ref;
  fk_listen : Unix.file_descr;
  mutable fk_threads : Thread.t list;
  fk_deadlines : float Queue.t;
  fk_q : Mutex.t;
}

(* A minimal shard: answers health immediately, score after
   [score_delay], recording each forwarded deadline_ms. Good enough to
   stand on the far side of the router — the real server's behavior is
   covered by @clustercheck. *)
let start_fake ?(port = 0) ?(score_delay = 0.0) ?(status = "ok") () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true ;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) ;
  Unix.listen listen_fd 16 ;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "fake shard: no port"
  in
  let f =
    { fk_addr = Printf.sprintf "127.0.0.1:%d" port;
      fk_stop = ref false;
      fk_listen = listen_fd;
      fk_threads = [];
      fk_deadlines = Queue.create ();
      fk_q = Mutex.create ()
    }
  in
  let handle fd =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec serve () =
      let contents = Buffer.contents buf in
      match String.index_opt contents '\n' with
      | Some i ->
        let line = String.sub contents 0 i in
        Buffer.clear buf ;
        Buffer.add_string buf
          (String.sub contents (i + 1) (String.length contents - i - 1)) ;
        let j = Result.value ~default:Json.Null (Json.of_string line) in
        let op =
          Option.value ~default:"" (Option.bind (Json.member "op" j) Json.to_str)
        in
        let reply =
          match op with
          | "health" ->
            Json.Obj [ ("ok", Json.Bool true); ("status", Json.Str status) ]
          | "score" ->
            (match Option.bind (Json.member "deadline_ms" j) Json.to_float with
            | Some d ->
              Mutex.lock f.fk_q ;
              Queue.push d f.fk_deadlines ;
              Mutex.unlock f.fk_q
            | None -> ()) ;
            if score_delay > 0.0 then Thread.delay score_delay ;
            let n =
              match Option.bind (Json.member "ids" j) Json.to_list with
              | Some l -> List.length l
              | None -> (
                match Option.bind (Json.member "rows" j) Json.to_list with
                | Some l -> List.length l
                | None -> 1)
            in
            Json.Obj
              [ ("ok", Json.Bool true);
                ("model", Json.Str "m@v1");
                ("predictions", Json.Arr (List.init n (fun _ -> Json.Num 0.125)))
              ]
          | _ ->
            Json.Obj
              [ ("ok", Json.Bool false);
                ("code", Json.Str "bad_request");
                ("message", Json.Str "fake shard")
              ]
        in
        send_raw fd (Json.to_string reply ^ "\n") ;
        serve ()
      | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n ;
          serve ()
        | exception Unix.Unix_error _ -> ())
    in
    (try serve () with _ -> ()) ;
    try Unix.close fd with _ -> ()
  in
  let acceptor () =
    let rec loop () =
      if !(f.fk_stop) then ()
      else begin
        match Unix.select [ listen_fd ] [] [] 0.1 with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.accept ~cloexec:true listen_fd with
          | fd, _ ->
            f.fk_threads <- Thread.create handle fd :: f.fk_threads ;
            loop ()
          | exception Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ()
      end
    in
    loop ()
  in
  f.fk_threads <- [ Thread.create acceptor () ] ;
  f

let stop_fake f =
  f.fk_stop := true ;
  (try Unix.close f.fk_listen with _ -> ()) ;
  List.iter (fun t -> try Thread.join t with _ -> ()) f.fk_threads

let fake_deadlines f =
  Mutex.lock f.fk_q ;
  let l = List.of_seq (Queue.to_seq f.fk_deadlines) in
  Mutex.unlock f.fk_q ;
  l

let router_over ?(probe_interval = 0.05) ?(hedge = false) ?limiter_target_ms
    ?(handlers = 2) shards =
  Router.start
    { (Router.default_config ~listen:"127.0.0.1:0" ~shards) with
      Router.handlers;
      block = 4;
      breaker_threshold = 3;
      breaker_cooldown = 0.2;
      probe_interval;
      probe_timeout = 0.5;
      eject_after = 2;
      rejoin_after = 2;
      hedge;
      hedge_rate = 50.0;
      hedge_burst = 4.0;
      limiter_target_ms
    }

let membership_of addr =
  match wire addr Protocol.Membership with
  | Error (c, m) -> Alcotest.failf "membership: [%s] %s" c m
  | Ok j -> j

let member_field j shard k =
  Option.bind (Json.member "members" j) (Json.member shard)
  |> Fun.flip Option.bind (Json.member k)

let member_state j shard =
  Option.value ~default:"?" (Option.bind (member_field j shard "state") Json.to_str)

let member_in_ring j shard =
  Option.value ~default:true
    (Option.bind (member_field j shard "in_ring") Json.to_bool)

let score_rows_req ?deadline_ms () =
  Protocol.Score
    { model = "m"; target = Protocol.Rows [| [| 0.5; 0.25 |] |]; deadline_ms }

(* ---- deadline propagation: the shard sees a smaller budget ---- *)

let test_deadline_propagation () =
  let shard = start_fake () in
  Fun.protect ~finally:(fun () -> stop_fake shard)
  @@ fun () ->
  let router = router_over [ ("s0", shard.fk_addr) ] in
  Fun.protect ~finally:(fun () -> Router.stop router)
  @@ fun () ->
  let addr = Endpoint.to_string (Router.endpoint router) in
  (* an armed delay on admission makes the queue time deterministic:
     the forwarded budget must be strictly below the client's 500ms *)
  Fault.with_config "router.admit=1.0:delay5" (fun () ->
      match wire addr (score_rows_req ~deadline_ms:500.0 ()) with
      | Error (c, m) -> Alcotest.failf "routed score: [%s] %s" c m
      | Ok _ -> ()) ;
  (match fake_deadlines shard with
  | [ d ] ->
    if d >= 500.0 then
      Alcotest.failf "shard saw %.3fms, not a decremented budget" d ;
    if d <= 0.0 then Alcotest.failf "shard saw a non-positive budget %.3f" d ;
    if d > 496.0 then
      Alcotest.failf "queue time was not deducted (shard saw %.3fms)" d
  | l -> Alcotest.failf "shard saw %d forwarded deadlines" (List.length l)) ;
  (* a budget smaller than the armed queue delay is shed with expired,
     and the shard never sees it *)
  Fault.with_config "router.admit=1.0:delay10" (fun () ->
      match wire addr (score_rows_req ~deadline_ms:3.0 ()) with
      | Error ("expired", _) -> ()
      | Ok _ -> Alcotest.fail "an overdrawn request was answered"
      | Error (c, m) -> Alcotest.failf "wrong error [%s] %s" c m) ;
  Alcotest.(check int) "the expired request was never forwarded" 1
    (List.length (fake_deadlines shard)) ;
  (* requests without deadlines pass untouched *)
  match wire addr (score_rows_req ()) with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "no-deadline score: [%s] %s" c m

(* ---- router drain lifecycle: zero failed requests ---- *)

let test_router_drain () =
  let a = start_fake () and b = start_fake () in
  Fun.protect ~finally:(fun () -> stop_fake a ; stop_fake b)
  @@ fun () ->
  let router = router_over [ ("s0", a.fk_addr); ("s1", b.fk_addr) ] in
  Fun.protect ~finally:(fun () -> Router.stop router)
  @@ fun () ->
  let addr = Endpoint.to_string (Router.endpoint router) in
  (* drain wants a shard name at the router *)
  (match wire addr (Protocol.Drain None) with
  | Error ("bad_request", _) -> ()
  | r -> Alcotest.failf "nameless drain: %s" (match r with Ok _ -> "ok" | Error (c, _) -> c)) ;
  (match wire addr (Protocol.Drain (Some "ghost")) with
  | Error ("bad_request", _) -> ()
  | _ -> Alcotest.fail "unknown shard drained") ;
  (* drain s0: it leaves the ring, traffic keeps succeeding *)
  (match wire addr (Protocol.Drain (Some "s0")) with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "drain: [%s] %s" c m) ;
  let j = membership_of addr in
  Alcotest.(check string) "s0 draining" "draining" (member_state j "s0") ;
  Alcotest.(check bool) "s0 out of the ring" false (member_in_ring j "s0") ;
  Alcotest.(check bool) "s1 still in" true (member_in_ring j "s1") ;
  for i = 1 to 10 do
    match wire addr (score_rows_req ()) with
    | Ok _ -> ()
    | Error (c, m) -> Alcotest.failf "request %d failed during drain: [%s] %s" i c m
  done ;
  (* the prober must not auto-rejoin an operator drain *)
  Thread.delay 0.3 ;
  Alcotest.(check string) "operator drain is sticky" "draining"
    (member_state (membership_of addr) "s0") ;
  (* the last in-ring shard refuses to drain *)
  (match wire addr (Protocol.Drain (Some "s1")) with
  | Error ("rejected", _) -> ()
  | _ -> Alcotest.fail "drained the last in-ring shard") ;
  (* undrain restores *)
  (match wire addr (Protocol.Undrain (Some "s0")) with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "undrain: [%s] %s" c m) ;
  let j = membership_of addr in
  Alcotest.(check string) "s0 active again" "active" (member_state j "s0") ;
  Alcotest.(check bool) "s0 back in the ring" true (member_in_ring j "s0")

(* ---- prober: eject on death, rejoin on recovery ---- *)

let test_probe_eject_rejoin () =
  let a = start_fake () and b = start_fake () in
  let b_port = int_of_string (List.nth (String.split_on_char ':' b.fk_addr) 1) in
  Fun.protect ~finally:(fun () -> stop_fake a)
  @@ fun () ->
  let router = router_over [ ("s0", a.fk_addr); ("s1", b.fk_addr) ] in
  Fun.protect ~finally:(fun () -> Router.stop router)
  @@ fun () ->
  let addr = Endpoint.to_string (Router.endpoint router) in
  await ~what:"both shards active" (fun () ->
      let j = membership_of addr in
      member_state j "s0" = "active" && member_state j "s1" = "active") ;
  (* kill s1: consecutive probe failures eject it *)
  stop_fake b ;
  await ~what:"s1 ejected" (fun () ->
      let j = membership_of addr in
      member_state j "s1" = "ejected" && not (member_in_ring j "s1")) ;
  (* traffic keeps flowing on the survivor *)
  for _ = 1 to 5 do
    match wire addr (score_rows_req ()) with
    | Ok _ -> ()
    | Error (c, m) -> Alcotest.failf "score after eject: [%s] %s" c m
  done ;
  (* the suspicion score reflects the failures *)
  let susp =
    Option.value ~default:0.0
      (Option.bind (member_field (membership_of addr) "s1" "suspicion") Json.to_float)
  in
  if susp < 1.0 then Alcotest.failf "ejected shard suspicion %.2f too low" susp ;
  (* resurrect s1 on the same port: sustained healthy probes rejoin it
     with no operator action *)
  let revived = start_fake ~port:b_port () in
  Fun.protect ~finally:(fun () -> stop_fake revived)
  @@ fun () ->
  await ~what:"s1 rejoined" (fun () ->
      let j = membership_of addr in
      member_state j "s1" = "active" && member_in_ring j "s1")

(* ---- server drain: health flips, queue finishes, auto-stop ---- *)

let test_server_drain () =
  let server = start_plain_server () in
  let addr = Endpoint.to_string (Server.endpoint server) in
  let finally () = Server.stop server in
  Fun.protect ~finally
  @@ fun () ->
  (* drain over the wire flips health to draining *)
  (match wire addr (Protocol.Drain None) with
  | Ok j ->
    Alcotest.(check (option bool)) "drain acked" (Some true)
      (Option.bind (Json.member "draining" j) Json.to_bool)
  | Error (c, m) -> Alcotest.failf "drain: [%s] %s" c m) ;
  (match wire addr Protocol.Health with
  | Ok j ->
    Alcotest.(check (option string)) "health says draining" (Some "draining")
      (Option.bind (Json.member "status" j) Json.to_str)
  | Error (c, m) -> Alcotest.failf "health: [%s] %s" c m) ;
  Alcotest.(check bool) "is_draining" true (Server.is_draining server) ;
  (* undrain within the grace window cancels the stop *)
  (match wire addr (Protocol.Undrain None) with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "undrain: [%s] %s" c m) ;
  Thread.delay 0.4 ;
  (match wire addr Protocol.Ping with
  | Ok _ -> ()
  | Error (c, m) ->
    Alcotest.failf "server stopped despite the undrain: [%s] %s" c m) ;
  (match wire addr Protocol.Health with
  | Ok j ->
    Alcotest.(check (option string)) "health recovered" (Some "ok")
      (Option.bind (Json.member "status" j) Json.to_str)
  | Error (c, m) -> Alcotest.failf "health: [%s] %s" c m) ;
  (* drain again and let it complete: the server stops on its own.
     After the auto-stop the listen socket lingers until Server.stop,
     so probe with a select timeout — an accepted-but-unserved ping
     would otherwise block forever. *)
  (match wire addr (Protocol.Drain None) with
  | Ok _ -> ()
  | Error (c, m) -> Alcotest.failf "second drain: [%s] %s" c m) ;
  let gone () =
    match Endpoint.connect (Endpoint.of_string addr) with
    | exception Unix.Unix_error _ -> true
    | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      send_raw fd "{\"op\":\"ping\"}\n" ;
      (match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> true (* accepted, but nobody is serving anymore *)
      | _ -> (
        match Unix.read fd (Bytes.create 64) 0 64 with
        | 0 -> true
        | _ -> false
        | exception Unix.Unix_error _ -> true))
  in
  await ~timeout:5.0 ~what:"drained server to stop" gone

(* ---- hedging: a slow owner is raced, responses stay identical ---- *)

let test_hedged_requests () =
  (* find which member owns the routing key "m" so the slow shard can
     be placed there deterministically *)
  let owner = Ring.lookup (Ring.create [ "s0"; "s1" ]) "m" in
  let slow = start_fake ~score_delay:0.5 () in
  let fast = start_fake () in
  Fun.protect ~finally:(fun () -> stop_fake slow ; stop_fake fast)
  @@ fun () ->
  let shards =
    if owner = "s0" then [ ("s0", slow.fk_addr); ("s1", fast.fk_addr) ]
    else [ ("s0", fast.fk_addr); ("s1", slow.fk_addr) ]
  in
  let router = router_over ~hedge:true shards in
  Fun.protect ~finally:(fun () -> Router.stop router)
  @@ fun () ->
  let addr = Endpoint.to_string (Router.endpoint router) in
  let t0 = Unix.gettimeofday () in
  (match wire addr (score_rows_req ()) with
  | Ok j ->
    (* the hedge's answer is the same bytes the slow owner would give *)
    Alcotest.(check (option (list (float 1e-12)))) "hedged predictions"
      (Some [ 0.125 ])
      (Option.bind (Json.member "predictions" j) Json.float_list)
  | Error (c, m) -> Alcotest.failf "hedged score: [%s] %s" c m) ;
  let dt = Unix.gettimeofday () -. t0 in
  if dt > 0.4 then
    Alcotest.failf "hedge did not win: %.0fms (owner sleeps 500ms)" (dt *. 1e3) ;
  let cluster =
    Option.value ~default:Json.Null (Json.member "cluster" (Router.stats router))
  in
  let num k =
    Option.value ~default:0 (Option.bind (Json.member k cluster) Json.to_int)
  in
  if num "hedges" < 1 then Alcotest.fail "no hedge was fired" ;
  if num "hedge_wins" < 1 then Alcotest.fail "no hedge win was counted"

(* ---- router limiter: overload sheds with a structured error ---- *)

let test_router_limiter () =
  let slow = start_fake ~score_delay:0.2 () in
  Fun.protect ~finally:(fun () -> stop_fake slow)
  @@ fun () ->
  let router =
    router_over ~limiter_target_ms:1.0 ~handlers:16 [ ("s0", slow.fk_addr) ]
  in
  Fun.protect ~finally:(fun () -> Router.stop router)
  @@ fun () ->
  let addr = Endpoint.to_string (Router.endpoint router) in
  (* drive enough slow traffic to pull the AIMD limit down, then
     overload: at least one request must shed with `overloaded` *)
  let m = Mutex.create () in
  let sheds = ref 0 and oks = ref 0 in
  let bump r =
    Mutex.lock m ;
    incr r ;
    Mutex.unlock m
  in
  let worker () =
    for _ = 1 to 4 do
      match wire addr (score_rows_req ()) with
      | Ok _ -> bump oks
      | Error ("overloaded", _) -> bump sheds
      | Error _ -> ()
    done
  in
  let threads = List.init 16 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads ;
  if !oks = 0 then Alcotest.fail "limiter shed everything" ;
  if !sheds = 0 then
    Alcotest.fail "sustained overload against a 1ms target never shed" ;
  let stats = Json.to_string (Router.stats router) in
  if not (contains ~needle:"limiter" stats) then
    Alcotest.fail "limiter snapshot missing from stats"

(* ---- process-level control chaos (MORPHEUS_BIN) ---- *)

let make_data root =
  let g = Rng.of_int 4242 in
  let s = Dense.random ~rng:g 200 3 in
  let r = Dense.random ~rng:g 15 4 in
  let k = Indicator.random ~rng:g ~rows:200 ~cols:15 () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let d = snd (Normalized.dims t) in
  let artifact = Artifact.Logreg (Dense.random ~rng:g d 1) in
  let ds_dir = Filename.concat root "ds" in
  Io.save ~dir:ds_dir t ;
  let reg = Filename.concat root "reg" in
  let entry =
    Registry.save ~dir:reg ~name:"m" ~schema_hash:(Registry.schema_hash t)
      artifact
  in
  (t, artifact, ds_dir, reg, entry)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd)
  @@ fun () ->
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) ;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> Alcotest.fail "no port bound"

let spawn_shard bin ~reg ~port =
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close devnull)
  @@ fun () ->
  let pid =
    Unix.create_process bin
      (* enough handler slots that the router's cached per-handler
         connections can't saturate the shard and starve health
         probes *)
      [| bin; "serve"; "--registry"; reg; "--listen"; addr; "--handlers"; "6";
         "--max-wait-ms"; "1"; "--drain-on"; "SIGTERM"
      |]
      Unix.stdin devnull devnull
  in
  (pid, addr)

let await_shard_healthy addr =
  await ~what:(addr ^ " healthy") (fun () ->
      match Client.health ~socket:addr with
      | Ok _ -> true
      | Error _ -> false
      | exception Unix.Unix_error _ -> false)

let test_control_chaos () =
  match Sys.getenv_opt "MORPHEUS_BIN" with
  | None | Some "" ->
    print_endline "control chaos: skipped (MORPHEUS_BIN not set)"
  | Some bin ->
    let root = tmpdir "control_chaos" in
    let t, artifact, ds_dir, reg, entry = make_data root in
    let ports = [ free_port (); free_port () ] in
    let procs = List.map (fun port -> (port, ref (spawn_shard bin ~reg ~port))) ports in
    let kill_all signal =
      List.iter (fun (_, p) -> try Unix.kill (fst !p) signal with _ -> ()) procs
    in
    Fun.protect
      ~finally:(fun () ->
        kill_all Sys.sigkill ;
        List.iter
          (fun (_, p) -> try ignore (Unix.waitpid [] (fst !p)) with _ -> ())
          procs)
    @@ fun () ->
    List.iter (fun (_, p) -> await_shard_healthy (snd !p)) procs ;
    let router =
      router_over ~probe_interval:0.05
        (List.mapi (fun i (_, p) -> (Printf.sprintf "s%d" i, snd !p)) procs)
    in
    Fun.protect ~finally:(fun () -> Router.stop router)
    @@ fun () ->
    let addr = Endpoint.to_string (Router.endpoint router) in
    let batches =
      Array.init 24 (fun b -> Array.init 8 (fun i -> ((13 * b) + (29 * i)) mod 200))
    in
    let expected =
      Array.map
        (fun ids ->
          Artifact.score_normalized artifact (Normalized.select_rows t ids))
        batches
    in
    let policy =
      { Client.default_retry with
        attempts = 10;
        base_backoff = 5e-3;
        max_backoff = 0.1;
        budget = 30.0;
        retry_codes =
          "unavailable" :: "rejected"
          :: Client.default_retry.Client.retry_codes
      }
    in
    let victim_port, victim = List.hd procs in
    (* the storm runs with transport faults armed on the router/client
       side of every connection; responses must stay bitwise-identical
       (absorbed by failover + retries), and the SIGKILLed shard must
       be auto-ejected *)
    Fault.with_config
      "seed=11,endpoint.read=0.03,endpoint.write.torn=0.02,router.forward=0.03"
      (fun () ->
        Array.iteri
          (fun b ids ->
            if b = 8 then Unix.kill (fst !victim) Sys.sigkill ;
            match
              Client.score_ids_retry ~policy ~socket:addr
                ~model:entry.Registry.id ~dataset:ds_dir ids
            with
            | Error (code, msg) ->
              Alcotest.failf "storm batch %d: [%s] %s" b code msg
            | Ok preds ->
              if preds <> expected.(b) then
                Alcotest.failf "storm batch %d: answer differs" b)
          batches) ;
    let dump () =
      Printf.eprintf "membership at timeout: %s\n%!"
        (Json.to_string (membership_of addr))
    in
    await ~what:"victim ejected" ~on_timeout:dump (fun () ->
        let j = membership_of addr in
        member_state j "s0" = "ejected" && not (member_in_ring j "s0")) ;
    (* restart the victim on the same port: it rejoins unaided *)
    ignore (Unix.waitpid [] (fst !victim)) ;
    victim := spawn_shard bin ~reg ~port:victim_port ;
    await_shard_healthy (snd !victim) ;
    await ~what:"victim rejoined" ~on_timeout:dump (fun () ->
        let j = membership_of addr in
        member_state j "s0" = "active" && member_in_ring j "s0") ;
    (* drain the revived shard: membership flips and not one request
       fails while it empties *)
    (match wire addr (Protocol.Drain (Some "s0")) with
    | Ok _ -> ()
    | Error (c, m) -> Alcotest.failf "drain: [%s] %s" c m) ;
    Array.iteri
      (fun b ids ->
        match
          Client.score_ids_retry ~policy ~socket:addr ~model:entry.Registry.id
            ~dataset:ds_dir ids
        with
        | Error (code, msg) ->
          Alcotest.failf "drain batch %d failed: [%s] %s" b code msg
        | Ok preds ->
          if preds <> expected.(b) then
            Alcotest.failf "drain batch %d: answer differs" b)
      batches ;
    Alcotest.(check bool) "still out of the ring" false
      (member_in_ring (membership_of addr) "s0") ;
    kill_all Sys.sigterm

(* ---- CLI usage errors exit 2, not a backtrace ---- *)

let run_cli bin args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close devnull)
  @@ fun () ->
  let pid =
    Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin devnull
      devnull
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _ -> -1

let test_cli_usage_errors () =
  match Sys.getenv_opt "MORPHEUS_BIN" with
  | None | Some "" ->
    print_endline "cli usage: skipped (MORPHEUS_BIN not set)"
  | Some bin ->
    let reg = tmpdir "control_cli_reg" in
    let check args =
      let code = run_cli bin args in
      if code <> 2 then
        Alcotest.failf "%s: exit %d, wanted the usage error 2"
          (String.concat " " args) code
    in
    check [ "score"; "--socket"; ""; "--ping" ] ;
    check [ "score"; "--socket"; "tcp:host:notaport"; "--ping" ] ;
    check [ "score"; "--socket"; "tcp::80"; "--ping" ] ;
    check [ "serve"; "--registry"; reg; "--socket"; "/tmp/x.sock";
            "--drain-on"; "SIGUSR1" ] ;
    check [ "route"; "--listen"; "tcp:"; "--shard"; "a=127.0.0.1:1" ] ;
    check [ "route"; "--listen"; "127.0.0.1:0"; "--shard"; "a=tcp:bad" ]

let () =
  Alcotest.run "control"
    [ ( "endpoint",
        [ Alcotest.test_case "edge cases and IPv6 brackets" `Quick
            test_endpoint_edges ] );
      ( "codec",
        [ qc qcheck_json_total;
          qc qcheck_request_total;
          qc qcheck_truncated_frames;
          Alcotest.test_case "live-socket fuzz" `Quick test_wire_fuzz ] );
      ( "breaker",
        [ Alcotest.test_case "seeded jitter spreads reopens" `Quick
            test_breaker_jitter_spread ] );
      ( "limiter",
        [ Alcotest.test_case "AIMD on a fake clock" `Quick test_limiter_aimd ] );
      ( "batcher",
        [ Alcotest.test_case "expired at dequeue" `Quick test_batcher_expired ] );
      ( "deadline",
        [ Alcotest.test_case "budget decrements across the router" `Quick
            test_deadline_propagation ] );
      ( "membership",
        [ Alcotest.test_case "router drain lifecycle" `Quick test_router_drain;
          Alcotest.test_case "probe eject and rejoin" `Quick
            test_probe_eject_rejoin;
          Alcotest.test_case "server drain mode" `Quick test_server_drain ] );
      ( "hedge",
        [ Alcotest.test_case "slow owner is raced" `Quick test_hedged_requests ] );
      ( "limiter-router",
        [ Alcotest.test_case "overload sheds structurally" `Quick
            test_router_limiter ] );
      ( "chaos",
        [ Alcotest.test_case "transport storm, SIGKILL, rejoin, drain" `Quick
            test_control_chaos;
          Alcotest.test_case "CLI usage errors exit 2" `Quick
            test_cli_usage_errors ] )
    ]
