(* Tests for the additional ML algorithms: hinge-loss linear SVM (via
   the GLM functor), K-Means++ initialization, and Gaussian Naive Bayes
   over normalized matrices. *)

open La
open Sparse
open Morpheus
open Ml_algs
open Test_support

let check_close = Gen.check_close

module FG = Glm.Make (Factorized_matrix)
module MG = Glm.Make (Regular_matrix)
module FK = Kmeans.Make (Factorized_matrix)
module MK = Kmeans.Make (Regular_matrix)

(* separable two-class PK-FK dataset where the class depends on the
   joined R features *)
let separable ?(seed = 90) ?(ns = 120) () =
  let rng = Rng.of_int seed in
  let nr = 6 in
  let s = Dense.gaussian ~rng ns 2 in
  let r =
    Dense.init nr 3 (fun i _ -> if i < nr / 2 then 4.0 else -4.0)
  in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let y =
    Dense.init ns 1 (fun i _ ->
        if Indicator.col_of_row k i < nr / 2 then 1.0 else -1.0)
  in
  (t, y)

(* ---- hinge / linear SVM ---- *)

let test_hinge_f_equals_m () =
  let t, y = separable () in
  let m = Materialize.to_regular t in
  let f = FG.train ~alpha:1e-3 ~iters:20 ~family:Glm.Hinge t y in
  let g = MG.train ~alpha:1e-3 ~iters:20 ~family:Glm.Hinge m y in
  check_close "identical weights" g.MG.w f.FG.w

let test_hinge_separates () =
  let t, y = separable () in
  let model = FG.train ~alpha:1e-2 ~iters:60 ~family:Glm.Hinge t y in
  let preds = FG.predict_mean t model in
  let correct = ref 0 in
  Dense.iteri
    (fun i _ p -> if p = Dense.get y i 0 then incr correct)
    preds ;
  let acc = float_of_int !correct /. float_of_int (Dense.rows y) in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f" acc) true (acc > 0.95)

let test_hinge_loss_properties () =
  (* correct side of margin: zero loss and zero gradient *)
  Alcotest.(check (float 0.)) "beyond margin" 0.0
    (Glm.nll Glm.Hinge ~score:2.0 ~y:1.0) ;
  Alcotest.(check (float 0.)) "no gradient" 0.0
    (Glm.gradient_weight Glm.Hinge ~score:2.0 ~y:1.0) ;
  (* wrong side: linear loss, gradient = y *)
  Alcotest.(check (float 1e-12)) "inside margin loss" 1.5
    (Glm.nll Glm.Hinge ~score:(-0.5) ~y:1.0) ;
  Alcotest.(check (float 0.)) "gradient is y" (-1.0)
    (Glm.gradient_weight Glm.Hinge ~score:0.5 ~y:(-1.0))

(* ---- K-Means++ ---- *)

let test_kmeanspp_f_equals_m () =
  let t, _ = separable ~seed:91 () in
  let m = Materialize.to_regular t in
  let cf = FK.init_plus_plus ~rng:(Rng.of_int 5) t 3 in
  let cm = MK.init_plus_plus ~rng:(Rng.of_int 5) m 3 in
  check_close "same seeds chosen" cm cf

let test_kmeanspp_shape_and_distinct () =
  let t, _ = separable ~seed:92 () in
  let c = FK.init_plus_plus ~rng:(Rng.of_int 6) t 4 in
  Alcotest.(check (pair int int)) "d×k" (Normalized.cols t, 4) (Dense.dims c) ;
  (* each centroid is an actual data row *)
  let m = Materialize.to_dense t in
  for j = 0 to 3 do
    let found = ref false in
    for i = 0 to Dense.rows m - 1 do
      let matches = ref true in
      for f = 0 to Dense.cols m - 1 do
        if Float.abs (Dense.get m i f -. Dense.get c f j) > 1e-12 then
          matches := false
      done ;
      if !matches then found := true
    done ;
    Alcotest.(check bool) "centroid is a data row" true !found
  done

let test_kmeanspp_improves_or_matches () =
  let t, _ = separable ~seed:93 ~ns:200 () in
  let base = FK.train ~iters:6 ~k:2 t in
  let pp =
    FK.train ~iters:6 ~centroids:(FK.init_plus_plus ~rng:(Rng.of_int 7) t 2) ~k:2 t
  in
  (* on well-separated blobs both must find a near-perfect clustering;
     check k-means++ is at least not catastrophically worse *)
  Alcotest.(check bool)
    (Printf.sprintf "objectives %.1f vs %.1f" pp.FK.objective base.FK.objective)
    true
    (pp.FK.objective <= base.FK.objective *. 1.5 +. 1e-6)

let test_row_of () =
  let t, _ = separable ~seed:94 () in
  let m = Materialize.to_dense t in
  let r = FK.row_of t 7 in
  check_close "row extraction" (Dense.transpose (Dense.of_row_array (Dense.row m 7))) r

(* ---- Naive Bayes ---- *)

let test_nb_learns_separable () =
  let t, y = separable ~seed:95 ~ns:200 () in
  let model = Naive_bayes.train t y in
  Alcotest.(check int) "two classes" 2 (List.length model.Naive_bayes.classes) ;
  let acc = Naive_bayes.accuracy model t y in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f" acc) true (acc > 0.95)

let test_nb_stats_match_materialized () =
  let t, y = separable ~seed:96 () in
  let model = Naive_bayes.train t y in
  let m = Materialize.to_dense t in
  let y_arr = Dense.col_to_array y in
  List.iter
    (fun (c : Naive_bayes.class_stats) ->
      let idx =
        Array.of_list
          (List.filter (fun i -> y_arr.(i) = c.Naive_bayes.label)
             (List.init (Dense.rows m) Fun.id))
      in
      let nc = float_of_int (Array.length idx) in
      Alcotest.(check (float 1e-9)) "prior"
        (nc /. float_of_int (Dense.rows m))
        c.Naive_bayes.prior ;
      (* reference mean per feature *)
      Array.iteri
        (fun j mu ->
          let acc = ref 0.0 in
          Array.iter (fun i -> acc := !acc +. Dense.get m i j) idx ;
          Alcotest.(check (float 1e-9)) "mean" (!acc /. nc) mu)
        c.Naive_bayes.mean)
    model.Naive_bayes.classes

let test_nb_priors_sum_to_one () =
  let t, y = separable ~seed:97 () in
  let model = Naive_bayes.train t y in
  let total =
    List.fold_left (fun a c -> a +. c.Naive_bayes.prior) 0.0 model.Naive_bayes.classes
  in
  Alcotest.(check (float 1e-12)) "priors" 1.0 total

let test_nb_rejects_single_class () =
  let t, _ = separable ~seed:98 () in
  let y = Dense.make (Normalized.rows t) 1 1.0 in
  Alcotest.(check bool) "single class rejected" true
    (try
       ignore (Naive_bayes.train t y) ;
       false
     with Invalid_argument _ -> true)

let test_nb_predict_dense_matches () =
  let t, y = separable ~seed:99 () in
  let model = Naive_bayes.train t y in
  let m = Materialize.to_dense t in
  Alcotest.(check bool) "streaming = dense prediction" true
    (Naive_bayes.predict model t = Naive_bayes.predict_dense model m)

let () =
  Alcotest.run "ml-more"
    [ ( "hinge-svm",
        [ Alcotest.test_case "F = M" `Quick test_hinge_f_equals_m;
          Alcotest.test_case "separates blobs" `Quick test_hinge_separates;
          Alcotest.test_case "loss/gradient" `Quick test_hinge_loss_properties ] );
      ( "kmeans++",
        [ Alcotest.test_case "F = M" `Quick test_kmeanspp_f_equals_m;
          Alcotest.test_case "shape & membership" `Quick test_kmeanspp_shape_and_distinct;
          Alcotest.test_case "objective sane" `Quick test_kmeanspp_improves_or_matches;
          Alcotest.test_case "row extraction" `Quick test_row_of ] );
      ( "naive-bayes",
        [ Alcotest.test_case "learns separable" `Quick test_nb_learns_separable;
          Alcotest.test_case "stats match materialized" `Quick test_nb_stats_match_materialized;
          Alcotest.test_case "priors sum to 1" `Quick test_nb_priors_sum_to_one;
          Alcotest.test_case "rejects single class" `Quick test_nb_rejects_single_class;
          Alcotest.test_case "streaming predict" `Quick test_nb_predict_dense_matches ] ) ]
