(* Tests for the dense LA substrate: Dense, Blas, Linalg. *)

open La

let check_close ?(tol = 1e-9) msg a b =
  if not (Dense.approx_equal ~tol a b) then
    Alcotest.failf "%s: max|diff| = %g" msg (Dense.max_abs_diff a b)

let check_float = Alcotest.(check (float 1e-9))

let rng () = Rng.of_int 12345

(* ---- Dense ---- *)

let test_create_dims () =
  let m = Dense.create 3 4 in
  Alcotest.(check (pair int int)) "dims" (3, 4) (Dense.dims m) ;
  Alcotest.(check int) "numel" 12 (Dense.numel m)

let test_of_arrays_roundtrip () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let m = Dense.of_arrays a in
  Alcotest.(check bool) "roundtrip" true (Dense.to_arrays m = a)

let test_get_set () =
  let m = Dense.create 2 2 in
  Dense.set m 1 0 7.5 ;
  check_float "get" 7.5 (Dense.get m 1 0) ;
  Alcotest.check_raises "oob" (Invalid_argument "Dense.get: (2,0) out of 2x2")
    (fun () -> ignore (Dense.get m 2 0))

let test_identity () =
  let i3 = Dense.identity 3 in
  check_float "diag" 1.0 (Dense.get i3 1 1) ;
  check_float "offdiag" 0.0 (Dense.get i3 0 2) ;
  check_float "trace" 3.0 (Dense.sum i3)

let test_transpose_involution () =
  let m = Dense.random ~rng:(rng ()) 5 7 in
  check_close "ttᵀᵀ = t" m (Dense.transpose (Dense.transpose m))

let test_hcat_vcat () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Dense.of_arrays [| [| 5. |]; [| 6. |] |] in
  let h = Dense.hcat [ a; b ] in
  Alcotest.(check (pair int int)) "hcat dims" (2, 3) (Dense.dims h) ;
  check_float "hcat val" 5.0 (Dense.get h 0 2) ;
  let v = Dense.vcat [ a; Dense.transpose b ] in
  Alcotest.(check (pair int int)) "vcat dims" (3, 2) (Dense.dims v) ;
  check_float "vcat val" 6.0 (Dense.get v 2 1)

let test_sub_rows_cols () =
  let m = Dense.init 4 5 (fun i j -> float_of_int ((10 * i) + j)) in
  let r = Dense.sub_rows m ~lo:1 ~hi:3 in
  check_float "sub_rows" 21.0 (Dense.get r 1 1) ;
  let c = Dense.sub_cols m ~lo:2 ~hi:4 in
  check_float "sub_cols" 13.0 (Dense.get c 1 1)

let test_row_col_sums () =
  let m = Dense.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  check_close "row_sums" (Dense.of_col_array [| 6.; 15. |]) (Dense.row_sums m) ;
  check_close "col_sums" (Dense.of_row_array [| 5.; 7.; 9. |]) (Dense.col_sums m) ;
  check_float "sum" 21.0 (Dense.sum m)

let test_row_mins_argmins () =
  let m = Dense.of_arrays [| [| 3.; 1.; 2. |]; [| -1.; 5.; 0. |] |] in
  check_close "row_mins" (Dense.of_col_array [| 1.; -1. |]) (Dense.row_mins m) ;
  Alcotest.(check (array int)) "argmins" [| 1; 0 |] (Dense.row_argmins m)

let test_scalar_ops () =
  let m = Dense.of_arrays [| [| 1.; -2. |] |] in
  check_close "scale" (Dense.of_arrays [| [| 3.; -6. |] |]) (Dense.scale 3.0 m) ;
  check_close "add_scalar" (Dense.of_arrays [| [| 2.; -1. |] |]) (Dense.add_scalar 1.0 m) ;
  check_close "pow" (Dense.of_arrays [| [| 1.; 4. |] |]) (Dense.pow_scalar m 2.0)

let test_elementwise () =
  let a = Dense.of_arrays [| [| 1.; 2. |] |] in
  let b = Dense.of_arrays [| [| 3.; 4. |] |] in
  check_close "add" (Dense.of_arrays [| [| 4.; 6. |] |]) (Dense.add a b) ;
  check_close "mul" (Dense.of_arrays [| [| 3.; 8. |] |]) (Dense.mul_elem a b) ;
  check_close "div" (Dense.of_arrays [| [| 3.; 2. |] |]) (Dense.div_elem b a)

let test_diag () =
  let d = Dense.diag_of_array [| 1.; 2.; 3. |] in
  check_float "diag val" 2.0 (Dense.get d 1 1) ;
  Alcotest.(check (array (float 0.))) "extract" [| 1.; 2.; 3. |] (Dense.diag d)

(* ---- Blas ---- *)

let naive_gemm a b =
  Dense.init (Dense.rows a) (Dense.cols b) (fun i j ->
      let acc = ref 0.0 in
      for k = 0 to Dense.cols a - 1 do
        acc := !acc +. (Dense.get a i k *. Dense.get b k j)
      done ;
      !acc)

let test_gemm_known () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Dense.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  check_close "gemm" (Dense.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |]) (Blas.gemm a b)

let test_gemm_random () =
  let r = rng () in
  let a = Dense.random ~rng:r 7 5 and b = Dense.random ~rng:r 5 9 in
  check_close "gemm vs naive" (naive_gemm a b) (Blas.gemm a b)

let test_tgemm () =
  let r = rng () in
  let a = Dense.random ~rng:r 6 4 and b = Dense.random ~rng:r 6 3 in
  check_close "tgemm" (naive_gemm (Dense.transpose a) b) (Blas.tgemm a b)

let test_gemm_nt () =
  let r = rng () in
  let a = Dense.random ~rng:r 4 6 and b = Dense.random ~rng:r 5 6 in
  check_close "gemm_nt" (naive_gemm a (Dense.transpose b)) (Blas.gemm_nt a b)

let test_crossprod () =
  let a = Dense.random ~rng:(rng ()) 8 5 in
  check_close "crossprod" (naive_gemm (Dense.transpose a) a) (Blas.crossprod a)

let test_weighted_crossprod () =
  let r = rng () in
  let a = Dense.random ~rng:r 8 4 in
  let w = Array.init 8 (fun _ -> Rng.float r) in
  let wa = Dense.init 8 4 (fun i j -> w.(i) *. Dense.get a i j) in
  check_close "weighted" (naive_gemm (Dense.transpose wa) a) (Blas.weighted_crossprod a w)

let test_tcrossprod () =
  let a = Dense.random ~rng:(rng ()) 5 3 in
  check_close "tcrossprod" (naive_gemm a (Dense.transpose a)) (Blas.tcrossprod a)

let test_gemv_dot () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12))) "gemv" [| 5.; 11. |] (Blas.gemv a [| 1.; 2. |]) ;
  check_float "dot" 11.0 (Blas.dot [| 1.; 2.; 3. |] [| 3.; 1.; 2. |])

(* ---- Linalg ---- *)

let spd n r =
  (* random symmetric positive-definite matrix *)
  let a = Dense.random ~rng:r n n in
  Dense.add (Blas.crossprod a) (Dense.scale 0.5 (Dense.identity n))

let test_lu_solve () =
  let r = rng () in
  let a = spd 6 r in
  let b = Dense.random ~rng:r 6 2 in
  let x = Linalg.solve a b in
  check_close ~tol:1e-8 "Ax=b" b (Blas.gemm a x)

let test_inverse () =
  let a = spd 5 (rng ()) in
  check_close ~tol:1e-8 "A·A⁻¹=I" (Dense.identity 5) (Blas.gemm a (Linalg.inverse a))

let test_determinant () =
  let a = Dense.of_arrays [| [| 2.; 0. |]; [| 1.; 3. |] |] in
  check_float "det" 6.0 (Linalg.determinant a) ;
  let sing = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  check_float "singular det" 0.0 (Linalg.determinant sing)

let test_cholesky () =
  let a = spd 6 (rng ()) in
  let l = Linalg.cholesky a in
  check_close ~tol:1e-8 "LLᵀ=A" a (Blas.gemm_nt l l) ;
  (* strictly upper entries are zero *)
  Dense.iteri (fun i j v -> if j > i then check_float "upper" 0.0 v) l

let test_cholesky_not_pd () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not PD" Linalg.Not_positive_definite (fun () ->
      ignore (Linalg.cholesky a))

let test_sym_eig () =
  let a = spd 6 (rng ()) in
  let vals, v = Linalg.sym_eig a in
  (* V orthogonal *)
  check_close ~tol:1e-8 "VᵀV=I" (Dense.identity 6) (Blas.crossprod v) ;
  (* A = V diag Vᵀ *)
  let recon = Blas.gemm_nt (Blas.gemm v (Dense.diag_of_array vals)) v in
  check_close ~tol:1e-7 "reconstruction" a recon

let test_svd () =
  let a = Dense.random ~rng:(rng ()) 8 5 in
  let u, s, v = Linalg.svd a in
  let recon = Blas.gemm_nt (Blas.gemm u (Dense.diag_of_array s)) v in
  check_close ~tol:1e-7 "USVᵀ=A" a recon ;
  check_close ~tol:1e-8 "UᵀU=I" (Dense.identity 5) (Blas.crossprod u) ;
  Array.iter (fun x -> Alcotest.(check bool) "s>=0" true (x >= 0.0)) s

let test_svd_wide () =
  let a = Dense.random ~rng:(rng ()) 4 9 in
  let u, s, v = Linalg.svd a in
  let recon = Blas.gemm_nt (Blas.gemm u (Dense.diag_of_array s)) v in
  check_close ~tol:1e-7 "wide USVᵀ=A" a recon

(* the four Moore-Penrose conditions *)
let moore_penrose name a g =
  check_close ~tol:1e-6 (name ^ ": AGA=A") a (Blas.gemm (Blas.gemm a g) a) ;
  check_close ~tol:1e-6 (name ^ ": GAG=G") g (Blas.gemm (Blas.gemm g a) g) ;
  let ag = Blas.gemm a g and ga = Blas.gemm g a in
  check_close ~tol:1e-6 (name ^ ": (AG)ᵀ=AG") (Dense.transpose ag) ag ;
  check_close ~tol:1e-6 (name ^ ": (GA)ᵀ=GA") (Dense.transpose ga) ga

let test_ginv_tall () =
  let a = Dense.random ~rng:(rng ()) 8 4 in
  moore_penrose "tall" a (Linalg.ginv a)

let test_ginv_wide () =
  let a = Dense.random ~rng:(rng ()) 3 7 in
  moore_penrose "wide" a (Linalg.ginv a)

let test_ginv_singular () =
  (* rank-1 matrix *)
  let a = Dense.init 5 4 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  moore_penrose "singular" a (Linalg.ginv a)

let test_ginv_sym () =
  let a = spd 5 (rng ()) in
  check_close ~tol:1e-7 "sym ginv = inverse for SPD" (Linalg.inverse a)
    (Linalg.ginv_sym a) ;
  (* singular symmetric: projector property *)
  let ones = Dense.make 4 4 1.0 in
  moore_penrose "singular sym" ones (Linalg.ginv_sym ones)

let test_lstsq () =
  let r = rng () in
  let a = Dense.random ~rng:r 10 3 in
  let x_true = Dense.random ~rng:r 3 1 in
  let b = Blas.gemm a x_true in
  check_close ~tol:1e-7 "recovers exact solution" x_true (Linalg.lstsq a b)

(* ---- Rng determinism & flops ---- *)

let test_rng_deterministic () =
  let a = Rng.of_int 99 and b = Rng.of_int 99 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0) ;
    let i = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 10)
  done

let test_flops_gemm () =
  Flops.reset () ;
  let a = Dense.create 10 20 and b = Dense.create 20 5 in
  ignore (Blas.gemm a b) ;
  check_float "2mnk" (2.0 *. 10.0 *. 20.0 *. 5.0) (Flops.get ())

let test_flops_count () =
  Flops.reset () ;
  let _, f = Flops.count (fun () -> ignore (Dense.scale 2.0 (Dense.create 4 5))) in
  check_float "scale flops" 20.0 f

(* qcheck properties *)

let dense_gen =
  QCheck.make
    ~print:(fun (r, c, seed) -> Printf.sprintf "%dx%d seed=%d" r c seed)
    QCheck.Gen.(triple (int_range 1 12) (int_range 1 12) (int_range 0 1000))

let prop_transpose_gemm =
  QCheck.Test.make ~name:"(AB)ᵀ = BᵀAᵀ" ~count:50 dense_gen (fun (r, c, seed) ->
      let g = Rng.of_int seed in
      let a = Dense.random ~rng:g r c and b = Dense.random ~rng:g c (r + 1) in
      Dense.approx_equal ~tol:1e-9
        (Dense.transpose (Blas.gemm a b))
        (Blas.gemm (Dense.transpose b) (Dense.transpose a)))

let prop_rowsums_sum =
  QCheck.Test.make ~name:"sum = sum of row_sums" ~count:50 dense_gen
    (fun (r, c, seed) ->
      let m = Dense.random ~rng:(Rng.of_int seed) r c in
      Float.abs (Dense.sum m -. Dense.sum (Dense.row_sums m)) < 1e-9)

let prop_ginv_moore_penrose =
  QCheck.Test.make ~name:"ginv satisfies AGA=A" ~count:25 dense_gen
    (fun (r, c, seed) ->
      let a = Dense.random ~rng:(Rng.of_int seed) r c in
      let g = Linalg.ginv a in
      Dense.approx_equal ~tol:1e-6 a (Blas.gemm (Blas.gemm a g) a))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "la"
    [ ( "dense",
        [ Alcotest.test_case "create dims" `Quick test_create_dims;
          Alcotest.test_case "of_arrays roundtrip" `Quick test_of_arrays_roundtrip;
          Alcotest.test_case "get/set + bounds" `Quick test_get_set;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          Alcotest.test_case "hcat/vcat" `Quick test_hcat_vcat;
          Alcotest.test_case "sub rows/cols" `Quick test_sub_rows_cols;
          Alcotest.test_case "row/col sums" `Quick test_row_col_sums;
          Alcotest.test_case "row mins/argmins" `Quick test_row_mins_argmins;
          Alcotest.test_case "scalar ops" `Quick test_scalar_ops;
          Alcotest.test_case "elementwise ops" `Quick test_elementwise;
          Alcotest.test_case "diag" `Quick test_diag ] );
      ( "blas",
        [ Alcotest.test_case "gemm known" `Quick test_gemm_known;
          Alcotest.test_case "gemm random" `Quick test_gemm_random;
          Alcotest.test_case "tgemm" `Quick test_tgemm;
          Alcotest.test_case "gemm_nt" `Quick test_gemm_nt;
          Alcotest.test_case "crossprod" `Quick test_crossprod;
          Alcotest.test_case "weighted crossprod" `Quick test_weighted_crossprod;
          Alcotest.test_case "tcrossprod" `Quick test_tcrossprod;
          Alcotest.test_case "gemv/dot" `Quick test_gemv_dot;
          qc prop_transpose_gemm ] );
      ( "linalg",
        [ Alcotest.test_case "lu solve" `Quick test_lu_solve;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "cholesky" `Quick test_cholesky;
          Alcotest.test_case "cholesky rejects non-PD" `Quick test_cholesky_not_pd;
          Alcotest.test_case "symmetric eigen" `Quick test_sym_eig;
          Alcotest.test_case "svd tall" `Quick test_svd;
          Alcotest.test_case "svd wide" `Quick test_svd_wide;
          Alcotest.test_case "ginv tall" `Quick test_ginv_tall;
          Alcotest.test_case "ginv wide" `Quick test_ginv_wide;
          Alcotest.test_case "ginv singular" `Quick test_ginv_singular;
          Alcotest.test_case "ginv symmetric" `Quick test_ginv_sym;
          Alcotest.test_case "lstsq" `Quick test_lstsq;
          qc prop_ginv_moore_penrose ] );
      ( "rng+flops",
        [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
          Alcotest.test_case "flops gemm" `Quick test_flops_gemm;
          Alcotest.test_case "flops count" `Quick test_flops_count;
          qc prop_rowsums_sum ] ) ]
