(* Tests for Householder QR and the Expr matrix-chain optimizer, plus a
   small finite-precision study (the paper's footnote 7 leaves numerical
   analysis to future work; here we at least quantify that the
   factorized and materialized paths drift by no more than a few ulps on
   random data). *)

open La
open Morpheus
open Test_support

let check_close = Gen.check_close

(* ---- QR ---- *)

let test_qr_reconstructs () =
  let a = Dense.random ~rng:(Rng.of_int 1) 12 5 in
  let q, r = Linalg.qr a in
  check_close ~tol:1e-9 "QR = A" a (Blas.gemm q r) ;
  check_close ~tol:1e-9 "QᵀQ = I" (Dense.identity 5) (Blas.crossprod q) ;
  (* R upper-triangular *)
  Dense.iteri
    (fun i j v ->
      if j < i then Alcotest.(check (float 0.)) "lower zero" 0.0 v)
    r

let test_qr_square () =
  let a = Dense.random ~rng:(Rng.of_int 2) 6 6 in
  let q, r = Linalg.qr a in
  check_close ~tol:1e-9 "square QR" a (Blas.gemm q r)

let test_lstsq_qr_exact () =
  let rng = Rng.of_int 3 in
  let a = Dense.random ~rng 20 4 in
  let x_true = Dense.random ~rng 4 2 in
  let b = Blas.gemm a x_true in
  check_close ~tol:1e-8 "recovers solution" x_true (Linalg.lstsq_qr a b)

let test_lstsq_qr_matches_ginv () =
  let rng = Rng.of_int 4 in
  let a = Dense.random ~rng 15 3 in
  let b = Dense.random ~rng 15 1 in
  check_close ~tol:1e-7 "QR = pseudo-inverse solution" (Linalg.lstsq a b)
    (Linalg.lstsq_qr a b)

let test_lstsq_qr_singular_raises () =
  let a = Dense.init 6 3 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  Alcotest.(check bool) "rank-deficient raises" true
    (try
       ignore (Linalg.lstsq_qr a (Dense.create 6 1)) ;
       false
     with Linalg.Singular -> true)

(* ---- matrix-chain optimizer ---- *)

let mk r c seed = Expr.dense (Dense.random ~rng:(Rng.of_int seed) r c)

let flops_of_eval e =
  let _, f = Flops.count (fun () -> ignore (Expr.eval e)) in
  f

let test_chain_order_basic () =
  (* A(10×200) · B(200×10) · C(10×300): left association is far cheaper *)
  let a = mk 10 200 1 and b = mk 200 10 2 and c = mk 10 300 3 in
  let bad = Expr.(a *@ (b *@ c)) in
  let opt = Expr.optimize bad in
  let f_bad = flops_of_eval bad and f_opt = flops_of_eval opt in
  Alcotest.(check bool)
    (Printf.sprintf "flops %.0f -> %.0f" f_bad f_opt)
    true
    (f_opt < f_bad /. 3.0) ;
  check_close ~tol:1e-8 "same result" (Expr.eval_dense bad) (Expr.eval_dense opt)

let test_chain_order_right () =
  (* A(300×10) · B(10×200) · C(200×1): right association wins *)
  let a = mk 300 10 4 and b = mk 10 200 5 and c = mk 200 1 6 in
  let bad = Expr.((a *@ b) *@ c) in
  let opt = Expr.optimize bad in
  Alcotest.(check bool) "cheaper" true
    (flops_of_eval opt < flops_of_eval bad /. 3.0) ;
  check_close ~tol:1e-8 "same result" (Expr.eval_dense bad) (Expr.eval_dense opt)

let test_chain_with_normalized () =
  (* T(n×d) · X(d×k) · z(k×1): must choose T·(X·z), and the factorized
     cost model must not trick it into materializing-like orders *)
  let tn = Gen.normalized ~seed:7 Gen.Pkfk in
  let d = Normalized.cols tn in
  let x = mk d 6 8 and z = mk 6 1 9 in
  let bad = Expr.((Expr.normalized tn *@ x) *@ z) in
  let opt = Expr.optimize bad in
  Alcotest.(check bool) "factorized-aware order cheaper" true
    (flops_of_eval opt <= flops_of_eval bad +. 1.0) ;
  check_close ~tol:1e-8 "same result" (Expr.eval_dense bad) (Expr.eval_dense opt)

let test_optimize_preserves_everything () =
  (* random chains: optimize must preserve semantics *)
  List.iter
    (fun seed ->
      let rng = Rng.of_int seed in
      let dims =
        Array.init 5 (fun _ -> 1 + Rng.int rng 30)
      in
      let leaves =
        List.init 4 (fun i -> mk dims.(i) dims.(i + 1) (seed + i))
      in
      let chain =
        List.fold_left (fun acc e -> Expr.(acc *@ e)) (List.hd leaves)
          (List.tl leaves)
      in
      let opt = Expr.optimize chain in
      check_close ~tol:1e-7
        (Printf.sprintf "seed %d" seed)
        (Expr.eval_dense chain) (Expr.eval_dense opt))
    [ 11; 12; 13; 14; 15 ]

let test_optimize_skips_scalar_chains () =
  let a = mk 4 4 20 in
  let e = Expr.(scalar 2.0 *@ a *@ a) in
  let opt = Expr.optimize e in
  check_close ~tol:1e-9 "scalar chain ok" (Expr.eval_dense e) (Expr.eval_dense opt)

let test_optimize_recurses () =
  (* optimization applies inside other operators *)
  let a = mk 5 40 21 and b = mk 40 5 22 and c = mk 5 60 23 in
  let e = Expr.(Sum (a *@ (b *@ c))) in
  let opt = Expr.optimize e in
  let sa = Expr.eval_scalar e and sb = Expr.eval_scalar opt in
  Alcotest.(check bool) "same sum" true (Float.abs (sa -. sb) < 1e-6 *. (1.0 +. Float.abs sa)) ;
  Alcotest.(check bool) "inner chain reassociated" true
    (flops_of_eval opt < flops_of_eval e)

(* ---- finite-precision drift (footnote 7) ---- *)

let test_numerical_drift_bounds () =
  (* the factorized and materialized paths reorder float additions; the
     drift on random data must stay within a few units of rounding *)
  List.iter
    (fun seed ->
      let t = Gen.normalized ~seed Gen.Star2 in
      let m = Gen.ground_truth t in
      let x = Dense.random ~rng:(Rng.of_int (seed + 50)) (Normalized.cols t) 1 in
      let f = Rewrite.lmm t x and g = Blas.gemm m x in
      let scale = Float.max 1.0 (Dense.max_abs g) in
      let drift = Dense.max_abs_diff f g /. scale in
      if drift > 1e-13 then
        Alcotest.failf "LMM drift %.3e exceeds 1e-13 (seed %d)" drift seed ;
      let cf = Rewrite.crossprod t and cg = Blas.crossprod m in
      let cscale = Float.max 1.0 (Dense.max_abs cg) in
      let cdrift = Dense.max_abs_diff cf cg /. cscale in
      if cdrift > 1e-12 then
        Alcotest.failf "crossprod drift %.3e exceeds 1e-12 (seed %d)" cdrift seed)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_ml_drift_after_many_iterations () =
  (* drift compounds across iterations but stays tiny relative to w *)
  let rng = Rng.of_int 60 in
  let s = Sparse.Mat.of_dense (Dense.gaussian ~rng 100 3) in
  let r = Sparse.Mat.of_dense (Dense.gaussian ~rng 8 4) in
  let k = Sparse.Indicator.random ~rng ~rows:100 ~cols:8 () in
  let t = Normalized.pkfk ~s ~k ~r in
  let y = Dense.init 100 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0) in
  let module F = Ml_algs.Logreg.Make (Factorized_matrix) in
  let module M = Ml_algs.Logreg.Make (Regular_matrix) in
  let wf = (F.train ~alpha:1e-2 ~iters:100 t y).F.w in
  let wm =
    (M.train ~alpha:1e-2 ~iters:100 (Materialize.to_regular t) y).M.w
  in
  let rel = Dense.max_abs_diff wf wm /. Float.max 1e-9 (Dense.max_abs wm) in
  if rel > 1e-10 then Alcotest.failf "100-iteration drift %.3e" rel

let () =
  Alcotest.run "optimizer"
    [ ( "qr",
        [ Alcotest.test_case "reconstructs" `Quick test_qr_reconstructs;
          Alcotest.test_case "square" `Quick test_qr_square;
          Alcotest.test_case "lstsq exact" `Quick test_lstsq_qr_exact;
          Alcotest.test_case "matches ginv path" `Quick test_lstsq_qr_matches_ginv;
          Alcotest.test_case "singular raises" `Quick test_lstsq_qr_singular_raises ] );
      ( "matrix-chain",
        [ Alcotest.test_case "left association" `Quick test_chain_order_basic;
          Alcotest.test_case "right association" `Quick test_chain_order_right;
          Alcotest.test_case "normalized-aware" `Quick test_chain_with_normalized;
          Alcotest.test_case "semantics preserved" `Quick test_optimize_preserves_everything;
          Alcotest.test_case "scalar chains" `Quick test_optimize_skips_scalar_chains;
          Alcotest.test_case "recurses into operators" `Quick test_optimize_recurses ] );
      ( "finite-precision",
        [ Alcotest.test_case "operator drift bounds" `Quick test_numerical_drift_bounds;
          Alcotest.test_case "100-iteration ML drift" `Quick test_ml_drift_after_many_iterations ] ) ]
