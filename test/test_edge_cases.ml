(* Edge cases that real datasets exercise: zero-column entity matrices
   (Movies/Yelp/LastFM/Books have d_S = 0 in Table 6), single-row and
   single-column matrices, empty sparse rows, tuple ratio 1 joins, and
   degenerate indicator structures. *)

open La
open Sparse
open Morpheus
open Test_support

let check_close = Gen.check_close

(* ---- zero-column entity matrix (Table 6's dS = 0 datasets) ---- *)

let zero_col_ent () =
  let rng = Rng.of_int 70 in
  let ns = 20 in
  let s = Mat.of_csr (Csr.of_triplets ~rows:ns ~cols:0 []) in
  let r1 = Mat.of_dense (Dense.random ~rng 4 3) in
  let r2 = Mat.random_sparse ~rng ~density:0.5 5 2 in
  let k1 = Indicator.random ~rng ~rows:ns ~cols:4 () in
  let k2 = Indicator.random ~rng ~rows:ns ~cols:5 () in
  Normalized.star ~s ~parts:[ (k1, r1); (k2, r2) ]

let test_zero_col_entity () =
  let t = zero_col_ent () in
  Alcotest.(check (pair int int)) "dims" (20, 5) (Normalized.dims t) ;
  let m = Gen.ground_truth t in
  let x = Dense.random ~rng:(Rng.of_int 71) 5 2 in
  check_close "lmm" (Blas.gemm m x) (Rewrite.lmm t x) ;
  check_close "crossprod" (Blas.crossprod m) (Rewrite.crossprod t) ;
  check_close "rowSums" (Dense.row_sums m) (Rewrite.row_sums t) ;
  check_close "colSums" (Dense.col_sums m) (Rewrite.col_sums t) ;
  (* ML still runs *)
  let y = Dense.init 20 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0) in
  let module F = Ml_algs.Logreg.Make (Factorized_matrix) in
  let module M = Ml_algs.Logreg.Make (Regular_matrix) in
  let f = F.train ~alpha:1e-2 ~iters:5 t y in
  let g = M.train ~alpha:1e-2 ~iters:5 (Regular_matrix.of_dense m) y in
  check_close "logreg with dS=0" g.M.w f.F.w

(* ---- single-row / single-column shapes ---- *)

let test_single_column_r () =
  let rng = Rng.of_int 72 in
  let s = Mat.of_dense (Dense.random ~rng 10 1) in
  let r = Mat.of_dense (Dense.random ~rng 2 1) in
  let k = Indicator.random ~rng ~rows:10 ~cols:2 () in
  let t = Normalized.pkfk ~s ~k ~r in
  let m = Gen.ground_truth t in
  check_close "crossprod 2x2" (Blas.crossprod m) (Rewrite.crossprod t) ;
  check_close "ginv" (Linalg.ginv m) (Rewrite.ginv t)

let test_single_tuple_attribute () =
  (* n_R = 1: every S row references the same R row *)
  let rng = Rng.of_int 73 in
  let s = Mat.of_dense (Dense.random ~rng 8 2) in
  let r = Mat.of_dense (Dense.random ~rng 1 3) in
  let k = Indicator.create ~cols:1 (Array.make 8 0) in
  let t = Normalized.pkfk ~s ~k ~r in
  let m = Gen.ground_truth t in
  check_close "fan-out-to-one lmm"
    (Blas.gemm m (Dense.random ~rng:(Rng.of_int 74) 5 1))
    (Rewrite.lmm t (Dense.random ~rng:(Rng.of_int 74) 5 1)) ;
  check_close "fan-out-to-one crossprod" (Blas.crossprod m) (Rewrite.crossprod t)

let test_tuple_ratio_one () =
  (* n_S = n_R with a bijective mapping: the join is a 1:1 key join *)
  let rng = Rng.of_int 75 in
  let n = 6 in
  let s = Mat.of_dense (Dense.random ~rng n 2) in
  let r = Mat.of_dense (Dense.random ~rng n 3) in
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm ;
  let k = Indicator.create ~cols:n perm in
  let t = Normalized.pkfk ~s ~k ~r in
  Alcotest.(check (float 1e-9)) "TR = 1" 1.0 (Normalized.tuple_ratio t) ;
  let m = Gen.ground_truth t in
  check_close "bijective join" (Blas.crossprod m) (Rewrite.crossprod t) ;
  Alcotest.(check string) "rule says materialize" "materialized"
    (Decision.to_string (Decision.heuristic t))

(* ---- sparse matrices with empty rows/columns ---- *)

let test_csr_empty_rows () =
  let c = Csr.of_triplets ~rows:5 ~cols:3 [ (0, 1, 2.0); (4, 0, 1.0) ] in
  let x = Dense.random ~rng:(Rng.of_int 76) 3 2 in
  check_close "smm with empty rows" (Blas.gemm (Csr.to_dense c) x) (Csr.smm c x) ;
  check_close "row_sums" (Dense.row_sums (Csr.to_dense c)) (Csr.row_sums c) ;
  let t = Csr.transpose c in
  Alcotest.(check int) "transpose nnz" 2 (Csr.nnz t)

let test_empty_csr () =
  let c = Csr.of_triplets ~rows:3 ~cols:4 [] in
  Alcotest.(check int) "nnz" 0 (Csr.nnz c) ;
  Alcotest.(check (float 0.)) "sum" 0.0 (Csr.sum c) ;
  let x = Dense.random ~rng:(Rng.of_int 77) 4 2 in
  check_close "smm zero" (Dense.create 3 2) (Csr.smm c x) ;
  check_close "crossprod zero" (Dense.create 4 4) (Csr.crossprod c)

(* ---- 1×1 and tiny dense matrices ---- *)

let test_one_by_one () =
  let m = Dense.of_arrays [| [| 4.0 |] |] in
  check_close "inverse" (Dense.of_arrays [| [| 0.25 |] |]) (Linalg.inverse m) ;
  check_close "ginv" (Dense.of_arrays [| [| 0.25 |] |]) (Linalg.ginv m) ;
  let vals, v = Linalg.sym_eig m in
  Alcotest.(check (float 1e-12)) "eigenvalue" 4.0 vals.(0) ;
  Alcotest.(check (float 1e-12)) "eigenvector" 1.0 (Float.abs (Dense.get v 0 0)) ;
  let u, s, _ = Linalg.svd m in
  Alcotest.(check (float 1e-12)) "singular value" 4.0 s.(0) ;
  Alcotest.(check (float 1e-12)) "u" 1.0 (Float.abs (Dense.get u 0 0))

let test_zero_matrix_ginv () =
  let z = Dense.create 3 2 in
  check_close "ginv of 0 is 0" (Dense.create 2 3) (Linalg.ginv z)

(* ---- indicator degenerate structures ---- *)

let test_indicator_all_same_column () =
  let k = Indicator.create ~cols:3 (Array.make 7 1) in
  let counts = Indicator.col_counts k in
  Alcotest.(check (array (float 0.))) "counts" [| 0.; 7.; 0. |] counts ;
  let r = Dense.random ~rng:(Rng.of_int 78) 3 2 in
  let gathered = Indicator.mult k r in
  for i = 0 to 6 do
    for j = 0 to 1 do
      Alcotest.(check (float 0.)) "same row" (Dense.get r 1 j) (Dense.get gathered i j)
    done
  done

let test_identity_indicator_laws () =
  let n = 9 in
  let k = Indicator.identity n in
  let x = Dense.random ~rng:(Rng.of_int 79) n 3 in
  check_close "I·X = X" x (Indicator.mult k x) ;
  check_close "Iᵀ·X = X" x (Indicator.tmult k x) ;
  let v = Array.init n float_of_int in
  Alcotest.(check (array (float 0.))) "gather id" v (Indicator.gather k v) ;
  Alcotest.(check (array (float 0.))) "scatter id" v (Indicator.scatter_add k v)

(* ---- select_rows degenerate cases ---- *)

let test_select_rows_empty_and_full () =
  let t = Gen.normalized ~seed:80 Gen.Pkfk in
  let n = Normalized.rows t in
  let full = Normalized.select_rows t (Array.init n Fun.id) in
  check_close "identity selection" (Gen.ground_truth t) (Gen.ground_truth full) ;
  let single = Normalized.select_rows t [| n - 1 |] in
  Alcotest.(check int) "single row" 1 (Normalized.rows single) ;
  let m = Gen.ground_truth single in
  check_close "single-row rowSums" (Dense.row_sums m) (Rewrite.row_sums single)

(* ---- scalar ops on extreme values ---- *)

let test_scalar_extremes () =
  let t = Gen.normalized ~seed:81 Gen.Pkfk in
  let m = Gen.ground_truth t in
  (* multiply by zero *)
  check_close "scale by 0" (Dense.create (Dense.rows m) (Dense.cols m))
    (Gen.ground_truth (Rewrite.scale 0.0 t)) ;
  (* negative power of squares stays finite *)
  let sq = Rewrite.sq t in
  let inv = Rewrite.map_scalar (fun v -> 1.0 /. (v +. 1.0)) sq in
  let expected = Dense.map (fun v -> 1.0 /. ((v *. v) +. 1.0)) m in
  check_close "1/(x²+1)" expected (Gen.ground_truth inv)

(* ---- M:N join where every tuple matches exactly one (PK-FK limit) ---- *)

let test_mn_reduces_to_pkfk () =
  (* I_S = identity makes the M:N rewrites coincide with PK-FK ones, as
     noted at the end of appendix D *)
  let rng = Rng.of_int 82 in
  let ns = 12 and nr = 3 in
  let is_ = Indicator.identity ns in
  let ir = Indicator.random ~rng ~rows:ns ~cols:nr () in
  let s = Mat.of_dense (Dense.random ~rng ns 2) in
  let r = Mat.of_dense (Dense.random ~rng nr 2) in
  let t_mn = Normalized.mn ~is_ ~s ~ir ~r in
  let t_pkfk = Normalized.pkfk ~s ~k:ir ~r in
  check_close "same T" (Gen.ground_truth t_mn) (Gen.ground_truth t_pkfk) ;
  check_close "same crossprod" (Rewrite.crossprod t_pkfk) (Rewrite.crossprod t_mn) ;
  let x = Dense.random ~rng 4 1 in
  check_close "same lmm" (Rewrite.lmm t_pkfk x) (Rewrite.lmm t_mn x)

(* ---- validation errors ---- *)

let test_construction_validation () =
  let rng = Rng.of_int 83 in
  let s = Mat.of_dense (Dense.random ~rng 5 2) in
  let r = Mat.of_dense (Dense.random ~rng 3 2) in
  let k_bad_rows = Indicator.random ~rng ~rows:6 ~cols:3 () in
  Alcotest.(check bool) "row mismatch" true
    (try
       ignore (Normalized.pkfk ~s ~k:k_bad_rows ~r) ;
       false
     with Invalid_argument _ -> true) ;
  let k_bad_cols = Indicator.random ~rng ~rows:5 ~cols:4 () in
  Alcotest.(check bool) "col mismatch" true
    (try
       ignore (Normalized.pkfk ~s ~k:k_bad_cols ~r) ;
       false
     with Invalid_argument _ -> true) ;
  Alcotest.(check bool) "empty" true
    (try
       ignore (Normalized.make []) ;
       false
     with Invalid_argument _ -> true)

let test_lmm_dim_error_message () =
  let t = Gen.normalized ~seed:84 Gen.Pkfk in
  let x = Dense.random ~rng:(Rng.of_int 85) (Normalized.cols t + 1) 1 in
  Alcotest.(check bool) "lmm dim mismatch" true
    (try
       ignore (Rewrite.lmm t x) ;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "edge-cases"
    [ ( "degenerate-shapes",
        [ Alcotest.test_case "zero-column entity (dS=0)" `Quick test_zero_col_entity;
          Alcotest.test_case "single-column tables" `Quick test_single_column_r;
          Alcotest.test_case "fan-out to one tuple" `Quick test_single_tuple_attribute;
          Alcotest.test_case "tuple ratio 1" `Quick test_tuple_ratio_one ] );
      ( "sparse-edges",
        [ Alcotest.test_case "empty rows" `Quick test_csr_empty_rows;
          Alcotest.test_case "all-zero matrix" `Quick test_empty_csr ] );
      ( "dense-edges",
        [ Alcotest.test_case "1x1 factorizations" `Quick test_one_by_one;
          Alcotest.test_case "ginv of zero" `Quick test_zero_matrix_ginv ] );
      ( "indicator-edges",
        [ Alcotest.test_case "all rows to one column" `Quick test_indicator_all_same_column;
          Alcotest.test_case "identity laws" `Quick test_identity_indicator_laws ] );
      ( "normalized-edges",
        [ Alcotest.test_case "select_rows identity/single" `Quick test_select_rows_empty_and_full;
          Alcotest.test_case "scalar extremes" `Quick test_scalar_extremes;
          Alcotest.test_case "M:N reduces to PK-FK" `Quick test_mn_reduces_to_pkfk;
          Alcotest.test_case "construction validation" `Quick test_construction_validation;
          Alcotest.test_case "lmm dimension errors" `Quick test_lmm_dim_error_message ] ) ]
