(* Tests for the expression DSL: automatic factorization must be
   observationally identical to the materialized reference evaluator on
   every expression form, simplification must preserve semantics, and
   shape inference must catch ill-typed scripts. *)

open La
open Morpheus
open Test_support

let check_close = Gen.check_close

let t0 () = Gen.normalized ~seed:21 Gen.Star2
let t_mn () = Gen.normalized ~seed:22 ~sparse:true Gen.Mn

(* compare factorized vs materialized evaluation of an expression *)
let both_ways name e =
  let f = Expr.eval e in
  let m = Expr.eval_materialized e in
  match (f, m) with
  | Expr.Scalar x, Expr.Scalar y ->
    if Float.abs (x -. y) > 1e-7 *. (1.0 +. Float.abs y) then
      Alcotest.failf "%s: scalar %g vs %g" name x y
  | _ -> check_close ~tol:1e-7 name (Expr.as_dense m) (Expr.as_dense f)

let test_scalar_pipeline () =
  let t = Expr.normalized (t0 ()) in
  both_ways "sum(2*(T^2) + 1)"
    Expr.(Sum (Add_scalar (1.0, Scale (2.0, Pow_scalar (t, 2.0)))))

let test_aggregations () =
  let t = Expr.normalized (t0 ()) in
  both_ways "rowSums" Expr.(Row_sums t) ;
  both_ways "colSums" Expr.(Col_sums t) ;
  both_ways "rowSums of transpose" Expr.(Row_sums (Transpose t)) ;
  both_ways "sum of scaled" Expr.(Sum (Scale (3.0, t)))

let test_products () =
  let tn = t0 () in
  let t = Expr.normalized tn in
  let x = Expr.dense (Dense.random ~rng:(Rng.of_int 30) (Normalized.cols tn) 2) in
  let z = Expr.dense (Dense.random ~rng:(Rng.of_int 31) 2 (Normalized.rows tn)) in
  both_ways "T*X (LMM)" Expr.(t *@ x) ;
  both_ways "Z*T (RMM)" Expr.(z *@ t) ;
  both_ways "T'*(T*X) chains" Expr.(tr t *@ (t *@ x)) ;
  both_ways "crossprod" Expr.(Crossprod t) ;
  both_ways "gram" Expr.(Crossprod (Transpose t))

let test_dmm_via_expr () =
  let a = t0 () in
  let b = Gen.normalized ~seed:23 Gen.Pkfk in
  (* Aᵀ·B requires equal row counts: build b with same rows via gram trick
     instead: use A'·A which routes to DMM when both sides normalized *)
  ignore b ;
  both_ways "T'*T via DMM"
    Expr.(tr (Expr.normalized a) *@ Expr.normalized a)

let test_elementwise_materializes () =
  let tn = t_mn () in
  let n, d = Normalized.dims tn in
  let x = Expr.dense (Dense.add_scalar 1.5 (Dense.random ~rng:(Rng.of_int 32) n d)) in
  let t = Expr.normalized tn in
  both_ways "T + X" Expr.(t +@ x) ;
  both_ways "T - X" Expr.(t -@ x) ;
  both_ways "T .* X" Expr.(Mul_elem (t, x)) ;
  both_ways "X ./ T(+2)" Expr.(Div_elem (x, Add_scalar (2.0, t)))

let test_ginv_expr () =
  let rng = Rng.of_int 33 in
  let s = Sparse.Mat.of_dense (Dense.random ~rng 30 3) in
  let r = Sparse.Mat.of_dense (Dense.random ~rng 5 3) in
  let k = Sparse.Indicator.random ~rng ~rows:30 ~cols:5 () in
  let t = Normalized.pkfk ~s ~k ~r in
  both_ways "ginv" Expr.(Ginv (Expr.normalized t))

(* the full logistic-regression update as one expression *)
let test_logreg_update_expression () =
  let tn = t0 () in
  let n = Normalized.rows tn in
  let d = Normalized.cols tn in
  let w = Dense.random ~rng:(Rng.of_int 34) d 1 in
  let y = Dense.init n 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0) in
  let t = Expr.normalized tn in
  let update =
    (* w + α·Tᵀ(Y / (1 + exp(T·w))) *)
    Expr.(
      dense w
      +@ Scale
           ( 0.01,
             tr t
             *@ Div_elem
                  ( dense y,
                    Add_scalar (1.0, Map_scalar ("exp", Stdlib.exp, t *@ dense w)) ) ))
  in
  both_ways "logreg update" update

(* ---- simplification ---- *)

let test_simplify_double_transpose () =
  let t = Expr.normalized (t0 ()) in
  let e = Expr.(Transpose (Transpose t)) in
  Alcotest.(check string) "Tᵀᵀ → T" (Expr.to_string t)
    (Expr.to_string (Expr.simplify e))

let test_simplify_scalar_fusion () =
  let t = Expr.normalized (t0 ()) in
  let e = Expr.(Scale (2.0, Scale (3.0, t))) in
  match Expr.simplify e with
  | Expr.Scale (x, _) -> Alcotest.(check (float 0.)) "fused" 6.0 x
  | _ -> Alcotest.fail "expected fused Scale"

let test_simplify_preserves_semantics () =
  let tn = t0 () in
  let t = Expr.normalized tn in
  let x = Expr.dense (Dense.random ~rng:(Rng.of_int 35) (Normalized.rows tn) 1) in
  let exprs =
    [ Expr.(Row_sums (Transpose (Scale (2.0, t))));
      Expr.(Sum (Transpose t));
      Expr.(Transpose (Transpose (Col_sums t)));
      Expr.(tr (Scale (0.5, t)) *@ x) ]
  in
  List.iter
    (fun e ->
      let simplified = Expr.simplify e in
      let a = Expr.eval e and b = Expr.eval simplified in
      match (a, b) with
      | Expr.Scalar x, Expr.Scalar y ->
        Alcotest.(check (float 1e-9)) "scalar preserved" x y
      | _ ->
        check_close ~tol:1e-9
          ("simplify preserves " ^ Expr.to_string e)
          (Expr.as_dense a) (Expr.as_dense b))
    exprs

(* ---- shape inference & typing ---- *)

let test_shape_inference () =
  let tn = t0 () in
  let n, d = Normalized.dims tn in
  let t = Expr.normalized tn in
  let x = Expr.dense (Dense.create d 3) in
  Alcotest.(check bool) "product shape" true
    (Expr.shape_of ~env:[] Expr.(t *@ x) = Expr.S_mat (n, 3)) ;
  Alcotest.(check bool) "crossprod shape" true
    (Expr.shape_of ~env:[] Expr.(Crossprod t) = Expr.S_mat (d, d)) ;
  Alcotest.(check bool) "sum is scalar" true
    (Expr.shape_of ~env:[] Expr.(Sum t) = Expr.S_scalar)

let test_type_errors () =
  let t = Expr.normalized (t0 ()) in
  let bad = Expr.(t *@ t) in
  Alcotest.(check bool) "bad product rejected" true
    (try
       ignore (Expr.shape_of ~env:[] bad) ;
       false
     with Expr.Type_error _ -> true) ;
  Alcotest.(check bool) "unbound var" true
    (try
       ignore (Expr.eval (Expr.var "nope")) ;
       false
     with Expr.Type_error _ -> true)

let test_env_binding () =
  let tn = t0 () in
  let env = [ ("T", Expr.Normalized tn) ] in
  let e = Expr.(Sum (var "T")) in
  match Expr.eval ~env e with
  | Expr.Scalar x ->
    Alcotest.(check (float 1e-7)) "env eval" (Rewrite.sum tn) x
  | _ -> Alcotest.fail "expected scalar"

let test_pretty_printing () =
  let t = Expr.normalized (t0 ()) in
  let s = Expr.to_string Expr.(Crossprod (Scale (2.0, t))) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions crossprod" true (contains s "crossprod")

(* ---- fuzzing: random well-typed expressions ----

   Grow random expression trees over a normalized matrix and dense
   leaves, restricted to type-correct constructions, and check that the
   factorizing evaluator, the materialized reference evaluator, and the
   simplified expression all agree. *)

let rec random_expr rng tn depth =
  (* returns (expr, rows, cols); scalars are represented as (e, 0, 0) *)
  let n, d = Normalized.dims tn in
  let leaf () =
    match Rng.int rng 3 with
    | 0 -> (Expr.normalized tn, n, d)
    | 1 ->
      let k = 1 + Rng.int rng 2 in
      (Expr.dense (Dense.random ~rng d k), d, k)
    | _ ->
      let k = 1 + Rng.int rng 2 in
      (Expr.dense (Dense.random ~rng k n), k, n)
  in
  if depth = 0 then leaf ()
  else begin
    let e, r, c = random_expr rng tn (depth - 1) in
    if r = 0 then (e, 0, 0)
    else
      match Rng.int rng 8 with
      | 0 -> (Expr.Scale (Rng.uniform rng ~lo:(-2.0) ~hi:2.0, e), r, c)
      | 1 -> (Expr.Add_scalar (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, e), r, c)
      | 2 -> (Expr.Transpose e, c, r)
      | 3 -> (Expr.Row_sums e, r, 1)
      | 4 -> (Expr.Col_sums e, 1, c)
      | 5 -> (Expr.Sum e, 0, 0)
      | 6 -> (Expr.Crossprod e, c, c)
      | _ ->
        (* multiply on the right by a random compatible dense matrix *)
        let k = 1 + Rng.int rng 2 in
        (Expr.(e *@ dense (Dense.random ~rng c k)), r, k)
  end

let prop_random_expressions =
  QCheck.Test.make ~name:"qcheck: random well-typed expressions" ~count:120
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 0 100_000) (int_range 1 4)))
    (fun (seed, depth) ->
      let tn = Gen.normalized ~seed:(seed mod 7) Gen.Star2 in
      let rng = Rng.of_int seed in
      let e, _, _ = random_expr rng tn depth in
      let close a b =
        match (a, b) with
        | Expr.Scalar x, Expr.Scalar y ->
          Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs y)
        | _ ->
          (* depth-4 chains of crossprods amplify roundoff: a handful
             of seeds exceed 1e-6 between the factorized and
             materialized accumulation orders *)
          Dense.approx_equal ~tol:1e-5 (Expr.as_dense a) (Expr.as_dense b)
      in
      let v = Expr.eval e in
      close v (Expr.eval_materialized e) && close v (Expr.eval (Expr.simplify e)))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "expr"
    [ ( "evaluation",
        [ Alcotest.test_case "scalar pipeline" `Quick test_scalar_pipeline;
          Alcotest.test_case "aggregations" `Quick test_aggregations;
          Alcotest.test_case "products" `Quick test_products;
          Alcotest.test_case "DMM" `Quick test_dmm_via_expr;
          Alcotest.test_case "elementwise materializes" `Quick test_elementwise_materializes;
          Alcotest.test_case "ginv" `Quick test_ginv_expr;
          Alcotest.test_case "logreg update" `Quick test_logreg_update_expression ] );
      ( "simplify",
        [ Alcotest.test_case "double transpose" `Quick test_simplify_double_transpose;
          Alcotest.test_case "scalar fusion" `Quick test_simplify_scalar_fusion;
          Alcotest.test_case "semantics preserved" `Quick test_simplify_preserves_semantics ] );
      ( "typing",
        [ Alcotest.test_case "shape inference" `Quick test_shape_inference;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "environment" `Quick test_env_binding;
          Alcotest.test_case "printing" `Quick test_pretty_printing ] );
      ("fuzz", [ qc prop_random_expressions ]) ]
