(* Tests for the serving subsystem: registry round-trips for every
   artifact kind (with versioning and corrupt-file handling), the
   bitwise batch-vs-single-row scoring guarantee the protocol relies
   on, the micro-batcher's deadline and overload-shedding semantics
   (with an injected slow executor), and the dataset LRU cache. *)

open La
open Morpheus
open Morpheus_serve

let tmpdir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "morpheus_serve_t_%d_%d" (Unix.getpid ())
       (Random.int 1000000))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = tmpdir () in
  Sys.mkdir dir 0o755 ;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let pkfk ?(seed = 2718) ?(ns = 300) ?(nr = 20) ?(ds = 3) ?(dr = 4) () =
  let g = Rng.of_int seed in
  let s = Dense.random ~rng:g ns ds in
  let r = Dense.random ~rng:g nr dr in
  let k = Sparse.Indicator.random ~rng:g ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s:(Sparse.Mat.of_dense s) ~k ~r:(Sparse.Mat.of_dense r)

let weights ?(seed = 11) d =
  Dense.random ~rng:(Rng.of_int seed) d 1

(* one artifact of every kind over a d-feature space *)
let all_artifacts d =
  let nb =
    Ml_algs.Naive_bayes.make ~d
      [ { Ml_algs.Naive_bayes.label = -1.0;
          prior = 0.5;
          mean = Array.make d 0.1;
          variance = Array.make d 1.0
        };
        { Ml_algs.Naive_bayes.label = 1.0;
          prior = 0.5;
          mean = Array.make d 0.4;
          variance = Array.make d 2.0
        }
      ]
  in
  [ Artifact.Logreg (weights d);
    Artifact.Linreg (weights ~seed:12 d);
    Artifact.Glm (Ml_algs.Glm.Poisson, weights ~seed:13 d);
    Artifact.Kmeans (Dense.random ~rng:(Rng.of_int 14) d 3);
    Artifact.Naive_bayes nb
  ]

(* ---- registry ---- *)

let test_registry_roundtrip_all_kinds () =
  let t = pkfk () in
  let d = snd (Normalized.dims t) in
  with_dir (fun dir ->
      List.iter
        (fun artifact ->
          let name = "m-" ^ Artifact.kind artifact in
          let entry =
            Registry.save ~dir ~name
              ~schema_hash:(Registry.schema_hash t)
              ~meta:[ ("origin", "test") ]
              artifact
          in
          Alcotest.(check string) "id" (name ^ "@v1") entry.Registry.id ;
          match Registry.load ~dir entry.Registry.id with
          | Error msg -> Alcotest.failf "load %s: %s" entry.Registry.id msg
          | Ok (artifact', manifest) ->
            Alcotest.(check string) "kind" (Artifact.kind artifact)
              manifest.Registry.kind ;
            Alcotest.(check int) "feature_dim" d
              manifest.Registry.feature_dim ;
            Alcotest.(check (option string)) "schema hash"
              (Some (Registry.schema_hash t))
              manifest.Registry.schema_hash ;
            (* the reloaded artifact scores bitwise-identically *)
            Alcotest.(check (array (float 0.0))) "same predictions"
              (Artifact.score_normalized artifact t)
              (Artifact.score_normalized artifact' t))
        (all_artifacts d))

let test_registry_versioning () =
  with_dir (fun dir ->
      let v1 = Registry.save ~dir ~name:"m" (Artifact.Logreg (weights 4)) in
      let v2 = Registry.save ~dir ~name:"m" (Artifact.Logreg (weights ~seed:5 4)) in
      Alcotest.(check string) "v1" "m@v1" v1.Registry.id ;
      Alcotest.(check string) "v2" "m@v2" v2.Registry.id ;
      (match Registry.resolve ~dir "m" with
      | Ok e -> Alcotest.(check string) "bare name is latest" "m@v2" e.Registry.id
      | Error msg -> Alcotest.fail msg) ;
      (match Registry.resolve ~dir "m@v1" with
      | Ok e -> Alcotest.(check string) "pinned version" "m@v1" e.Registry.id
      | Error msg -> Alcotest.fail msg) ;
      Alcotest.(check int) "list sees both" 2
        (List.length (Registry.list ~dir)) ;
      (match Registry.resolve ~dir "ghost" with
      | Ok _ -> Alcotest.fail "unknown model resolved"
      | Error _ -> ()) ;
      match Registry.delete ~dir "m@v1" with
      | Error msg -> Alcotest.fail msg
      | Ok () ->
        Alcotest.(check int) "one left" 1 (List.length (Registry.list ~dir)))

let test_registry_rejects_bad_names () =
  with_dir (fun dir ->
      List.iter
        (fun name ->
          Alcotest.(check bool) (Printf.sprintf "name %S rejected" name) true
            (try
               ignore (Registry.save ~dir ~name (Artifact.Logreg (weights 2))) ;
               false
             with Invalid_argument _ -> true))
        [ ""; "a/b"; "a@v1"; "a b" ])

let test_registry_corrupt_artifact () =
  with_dir (fun dir ->
      let e = Registry.save ~dir ~name:"m" (Artifact.Logreg (weights 3)) in
      let path = Filename.concat dir "m/v1/artifact.bin" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "junk") ;
      match Registry.load ~dir e.Registry.id with
      | Ok _ -> Alcotest.fail "corrupt artifact loaded"
      | Error _ -> ())

(* ---- batch-vs-single bitwise equality ---- *)

let test_batch_equals_single_bitwise () =
  let t = pkfk ~seed:31 () in
  let n, d = Normalized.dims t in
  let ids = [| 0; 7; n - 1; 3; 7; 12 |] in
  List.iter
    (fun artifact ->
      let batch = Artifact.score_normalized artifact (Normalized.select_rows t ids) in
      Array.iteri
        (fun j id ->
          let alone =
            (Artifact.score_normalized artifact
               (Normalized.select_rows t [| id |])).(0)
          in
          if batch.(j) <> alone then
            Alcotest.failf "%s: row %d scored %h in a batch, %h alone"
              (Artifact.kind artifact) id batch.(j) alone)
        ids)
    (all_artifacts d)

(* the same guarantee end to end through the batcher, under concurrency *)
let test_batcher_coalesced_equals_alone () =
  let t = pkfk ~seed:32 () in
  let n, d = Normalized.dims t in
  let artifact = List.hd (all_artifacts d) in
  let metrics = Metrics.create () in
  let exec () payloads =
    let all = Array.concat (Array.to_list payloads) in
    let preds = Artifact.score_normalized artifact (Normalized.select_rows t all) in
    let off = ref 0 in
    Array.map
      (fun ids ->
        let r = Array.sub preds !off (Array.length ids) in
        off := !off + Array.length ids ;
        Ok r)
      payloads
  in
  let b =
    Batcher.create ~max_batch:64 ~max_wait:5e-3 ~metrics ~size:Array.length
      ~exec ()
  in
  let ids = Array.init 24 (fun i -> (i * 7) mod n) in
  let results = Array.make (Array.length ids) None in
  let threads =
    Array.mapi
      (fun j id ->
        Thread.create
          (fun () -> results.(j) <- Some (Batcher.submit b () [| id |]))
          ())
      ids
  in
  Array.iter Thread.join threads ;
  Batcher.stop b ;
  Array.iteri
    (fun j id ->
      let alone =
        (Artifact.score_normalized artifact (Normalized.select_rows t [| id |])).(0)
      in
      match results.(j) with
      | Some (Ok r) ->
        if r.(0) <> alone then
          Alcotest.failf "row %d: %h batched vs %h alone" id r.(0) alone
      | Some (Error _) -> Alcotest.failf "row %d: batcher error" id
      | None -> Alcotest.failf "row %d: no result" id)
    ids ;
  Alcotest.(check bool) "requests were coalesced" true
    (let j = Metrics.snapshot metrics in
     match Option.bind (Json.member "batches" j) (Json.member "count") with
     | Some c -> Option.value ~default:0 (Json.to_int c) < Array.length ids
     | None -> false)

(* ---- deadline + shedding, with an injected slow executor ---- *)

let slow_batcher ?(queue_bound = 1024) ~delay metrics =
  Batcher.create ~max_batch:1 ~max_wait:0.0 ~queue_bound ~metrics
    ~size:(fun _ -> 1)
    ~exec:(fun _ payloads ->
      Thread.delay delay ;
      Array.map (fun p -> Ok p) payloads)
    ()

let test_deadline_exceeded () =
  let metrics = Metrics.create () in
  let b = slow_batcher ~delay:0.15 metrics in
  (* occupy the batching thread *)
  let t1 = Thread.create (fun () -> ignore (Batcher.submit b 0 "long")) () in
  Thread.delay 0.03 ;
  (* queued behind it with a deadline that expires while it waits *)
  let r = Batcher.submit b 0 ~deadline:(Unix.gettimeofday () +. 0.02) "doomed" in
  Thread.join t1 ;
  Batcher.stop b ;
  (match r with
  | Error Batcher.Deadline_exceeded -> ()
  | Ok _ -> Alcotest.fail "expired request was scored"
  | Error e -> Alcotest.failf "wrong error: %s" (Batcher.error_code e)) ;
  Alcotest.(check int) "error counted" 1 (Metrics.errors metrics)

let test_overload_shedding () =
  let metrics = Metrics.create () in
  let b = slow_batcher ~queue_bound:1 ~delay:0.15 metrics in
  let t1 = Thread.create (fun () -> ignore (Batcher.submit b 0 "a")) () in
  Thread.delay 0.03 ;
  let t2 = Thread.create (fun () -> ignore (Batcher.submit b 0 "b")) () in
  Thread.delay 0.03 ;
  (* worker busy with "a", "b" fills the bounded queue: shed *)
  let r = Batcher.submit b 0 "c" in
  Thread.join t1 ;
  Thread.join t2 ;
  Batcher.stop b ;
  match r with
  | Error Batcher.Overloaded -> ()
  | Ok _ -> Alcotest.fail "request beyond the bound was accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Batcher.error_code e)

let test_submit_after_stop_rejected () =
  let metrics = Metrics.create () in
  let b = slow_batcher ~delay:0.0 metrics in
  Batcher.stop b ;
  match Batcher.submit b 0 "late" with
  | Error (Batcher.Rejected _) -> ()
  | Ok _ -> Alcotest.fail "submit after stop succeeded"
  | Error e -> Alcotest.failf "wrong error: %s" (Batcher.error_code e)

(* ---- dataset LRU cache ---- *)

let test_lru_eviction () =
  let loads = ref [] in
  let cache =
    Dataset_cache.create ~capacity:2 ~load:(fun key ->
        loads := key :: !loads ;
        String.uppercase_ascii key)
  in
  Alcotest.(check string) "a" "A" (Dataset_cache.get cache "a") ;
  Alcotest.(check string) "b" "B" (Dataset_cache.get cache "b") ;
  Alcotest.(check string) "a hit" "A" (Dataset_cache.get cache "a") ;
  (* c evicts b (least recently used), not a *)
  Alcotest.(check string) "c" "C" (Dataset_cache.get cache "c") ;
  Alcotest.(check bool) "a kept" true (Dataset_cache.mem cache "a") ;
  Alcotest.(check bool) "b evicted" false (Dataset_cache.mem cache "b") ;
  ignore (Dataset_cache.get cache "b") ;
  Alcotest.(check (list string)) "loads in order" [ "a"; "b"; "c"; "b" ]
    (List.rev !loads) ;
  Alcotest.(check int) "hits" 1 (Dataset_cache.hits cache) ;
  Alcotest.(check int) "misses" 4 (Dataset_cache.misses cache) ;
  Alcotest.(check int) "evictions" 2 (Dataset_cache.evictions cache)

let test_lru_failed_load_not_cached () =
  let calls = ref 0 in
  let cache =
    Dataset_cache.create ~capacity:2 ~load:(fun _ ->
        incr calls ;
        if !calls = 1 then failwith "flaky" else "ok")
  in
  (match Dataset_cache.get cache "k" with
  | _ -> Alcotest.fail "failed load returned a value"
  | exception Failure _ -> ()) ;
  Alcotest.(check bool) "failure not cached" false (Dataset_cache.mem cache "k") ;
  Alcotest.(check string) "retry loads" "ok" (Dataset_cache.get cache "k")

(* ---- protocol round-trip ---- *)

let test_protocol_roundtrip () =
  let reqs =
    [ Protocol.Ping;
      Protocol.List_models;
      Protocol.Stats;
      Protocol.Shutdown;
      Protocol.Score
        { model = "m@v2";
          target = Protocol.Rows [| [| 1.0; -2.5 |]; [| 0.0; 3.25 |] |];
          deadline_ms = Some 40.0
        };
      Protocol.Score
        { model = "m";
          target = Protocol.Dataset { dataset = "/data/ds"; ids = [| 0; 9 |] };
          deadline_ms = None
        }
    ]
  in
  List.iter
    (fun req ->
      let wire = Json.to_string (Protocol.request_to_json req) in
      match Json.of_string wire with
      | Error msg -> Alcotest.failf "reparse %s: %s" wire msg
      | Ok j -> (
        match Protocol.request_of_json j with
        | Ok req' ->
          if req <> req' then Alcotest.failf "round-trip changed %s" wire
        | Error msg -> Alcotest.failf "decode %s: %s" wire msg))
    reqs

let () =
  Random.self_init () ;
  Alcotest.run "serve"
    [ ( "registry",
        [ Alcotest.test_case "round-trip all kinds" `Quick
            test_registry_roundtrip_all_kinds;
          Alcotest.test_case "versioning" `Quick test_registry_versioning;
          Alcotest.test_case "bad names" `Quick test_registry_rejects_bad_names;
          Alcotest.test_case "corrupt artifact" `Quick
            test_registry_corrupt_artifact ] );
      ( "batching",
        [ Alcotest.test_case "batch = single, bitwise" `Quick
            test_batch_equals_single_bitwise;
          Alcotest.test_case "coalesced through the batcher" `Quick
            test_batcher_coalesced_equals_alone ] );
      ( "backpressure",
        [ Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
          Alcotest.test_case "overload shedding" `Quick test_overload_shedding;
          Alcotest.test_case "submit after stop" `Quick
            test_submit_after_stop_rejected ] );
      ( "cache",
        [ Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "failed load not cached" `Quick
            test_lru_failed_load_not_cached ] );
      ( "protocol",
        [ Alcotest.test_case "request round-trip" `Quick
            test_protocol_roundtrip ] ) ]
