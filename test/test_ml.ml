(* Tests for the ML algorithms (§4): the factorized and materialized
   instantiations of each functor must produce identical models (the
   paper's exact-arithmetic claim applied end-to-end), training must make
   progress, and Orion must agree with Morpheus. *)

open La
open Sparse
open Morpheus
open Ml_algs
open Ml_algs.Algorithms
open Test_support

let check_close ?(tol = 1e-6) msg a b =
  if not (Dense.approx_equal ~tol a b) then
    Alcotest.failf "%s: max|diff| = %g" msg (Dense.max_abs_diff a b)

(* small PK-FK dataset with a learnable signal *)
let dataset ?(seed = 3) ?(ns = 120) ?(nr = 12) ?(ds = 3) ?(dr = 4) () =
  let rng = Rng.of_int seed in
  let s = Dense.gaussian ~rng ns ds in
  let r = Dense.gaussian ~rng nr dr in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let m = Materialize.to_dense t in
  let w_true = Dense.gaussian ~rng (ds + dr) 1 in
  let scores = Blas.gemm m w_true in
  let y = Dense.map (fun v -> if v >= 0.0 then 1.0 else -1.0) scores in
  let y_num =
    Dense.add scores (Dense.scale 0.1 (Dense.gaussian ~rng ns 1))
  in
  (t, m, y, y_num, w_true)

(* ---- logistic regression ---- *)

let test_logreg_f_equals_m () =
  let t, m, y, _, _ = dataset () in
  let f = Factorized.Logreg.train ~alpha:1e-3 ~iters:15 t y in
  let s = Materialized.Logreg.train ~alpha:1e-3 ~iters:15 (Regular_matrix.of_dense m) y in
  check_close "identical weights" s.Materialized.Logreg.w f.Factorized.Logreg.w

let test_logreg_loss_decreases () =
  let t, _, y, _, _ = dataset () in
  let f = Factorized.Logreg.train ~alpha:1e-3 ~iters:25 ~record_loss:true t y in
  match (f.losses, List.rev f.losses) with
  | first :: _, last :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "loss %.4f → %.4f" first last)
      true (last < first)
  | _ -> Alcotest.fail "no losses recorded"

let test_logreg_learns () =
  let t, _, y, _, _ = dataset ~ns:300 () in
  let f = Factorized.Logreg.train ~alpha:1e-2 ~iters:120 t y in
  let acc = Factorized.Logreg.accuracy t f y in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f > 0.9" acc) true (acc > 0.9)

let test_logreg_sparse () =
  (* same algorithm over sparse base matrices *)
  let t = Gen.normalized ~seed:11 ~sparse:true Gen.Star2 in
  let y =
    Dense.init (Normalized.rows t) 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0)
  in
  let f = Factorized.Logreg.train ~alpha:1e-3 ~iters:10 t y in
  let m = Materialize.to_regular t in
  let s = Materialized.Logreg.train ~alpha:1e-3 ~iters:10 m y in
  check_close "sparse = dense path" s.Materialized.Logreg.w f.Factorized.Logreg.w

(* ---- linear regression ---- *)

let test_linreg_normal_f_equals_m () =
  let t, m, _, y, _ = dataset () in
  let wf = Factorized.Linreg.train_normal t y in
  let wm = Materialized.Linreg.train_normal (Regular_matrix.of_dense m) y in
  check_close ~tol:1e-5 "identical weights" wm wf

let test_linreg_recovers_truth () =
  (* noiseless targets → exact recovery via normal equations *)
  let t, m, _, _, w_true = dataset ~ns:200 () in
  let y = Blas.gemm m w_true in
  let w = Factorized.Linreg.train_normal t y in
  check_close ~tol:1e-5 "recovers w*" w_true w

let test_linreg_gd_f_equals_m () =
  let t, m, _, y, _ = dataset () in
  let wf = Factorized.Linreg.train_gd ~alpha:1e-4 ~iters:30 t y in
  let wm = Materialized.Linreg.train_gd ~alpha:1e-4 ~iters:30 (Regular_matrix.of_dense m) y in
  check_close "identical weights" wm wf

let test_linreg_cofactor () =
  let t, m, _, y, _ = dataset () in
  let wf = Factorized.Linreg.train_cofactor ~alpha:0.05 ~iters:60 t y in
  let wm = Materialized.Linreg.train_cofactor ~alpha:0.05 ~iters:60 (Regular_matrix.of_dense m) y in
  check_close "identical weights" wm wf ;
  (* AdaGrad over the co-factor reduces the RSS *)
  let rss0 = Factorized.Linreg.rss t (Dense.create (Normalized.cols t) 1) y in
  let rss = Factorized.Linreg.rss t wf y in
  Alcotest.(check bool) "rss decreases" true (rss < rss0)

let test_linreg_gd_converges_towards_normal () =
  let t, _, _, y, _ = dataset ~ns:150 () in
  let w_exact = Factorized.Linreg.train_normal t y in
  let w_gd = Factorized.Linreg.train_gd ~alpha:2e-4 ~iters:4000 t y in
  let rss_exact = Factorized.Linreg.rss t w_exact y in
  let rss_gd = Factorized.Linreg.rss t w_gd y in
  Alcotest.(check bool)
    (Printf.sprintf "gd rss %.4f within 5%% of exact %.4f" rss_gd rss_exact)
    true
    (rss_gd < rss_exact *. 1.05 +. 1e-9)

(* ---- K-Means ---- *)

let blobs_dataset () =
  (* two well-separated clusters determined by which R-row a tuple joins *)
  let rng = Rng.of_int 17 in
  let ns = 100 and nr = 2 in
  let s = Dense.init ns 2 (fun _ _ -> Rng.gaussian rng *. 0.1) in
  let r =
    Dense.of_arrays [| [| 10.0; 10.0 |]; [| -10.0; -10.0 |] |]
  in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  (Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r), k)

let test_kmeans_f_equals_m () =
  let t, _ = blobs_dataset () in
  let m = Materialize.to_regular t in
  let f = Factorized.Kmeans.train ~iters:8 ~k:2 t in
  let s = Materialized.Kmeans.train ~iters:8 ~k:2 m in
  check_close "identical centroids" s.Materialized.Kmeans.centroids
    f.Factorized.Kmeans.centroids ;
  Alcotest.(check (array int)) "identical assignments"
    s.Materialized.Kmeans.assignments f.Factorized.Kmeans.assignments

let test_kmeans_separates_blobs () =
  let t, k = blobs_dataset () in
  let f = Factorized.Kmeans.train ~iters:10 ~k:2 t in
  (* all tuples joined to the same R-row must land in the same cluster *)
  let cluster_of_rrow = Array.make 2 (-1) in
  Array.iteri
    (fun i c ->
      let rr = Sparse.Indicator.col_of_row k i in
      if cluster_of_rrow.(rr) = -1 then cluster_of_rrow.(rr) <- c
      else Alcotest.(check int) "consistent cluster" cluster_of_rrow.(rr) c)
    f.Factorized.Kmeans.assignments ;
  Alcotest.(check bool) "two distinct clusters" true
    (cluster_of_rrow.(0) <> cluster_of_rrow.(1))

let test_kmeans_objective_decreases () =
  let t, _, _, _, _ = dataset ~ns:150 () in
  let r1 = Factorized.Kmeans.train ~iters:1 ~k:3 t in
  let r10 = Factorized.Kmeans.train ~iters:10 ~k:3 t in
  Alcotest.(check bool) "objective decreases" true
    (r10.Factorized.Kmeans.objective <= r1.Factorized.Kmeans.objective +. 1e-9)

(* ---- GNMF ---- *)

let nonneg_dataset () =
  (* GNMF needs a non-negative T *)
  let rng = Rng.of_int 23 in
  let ns = 60 and nr = 6 in
  let s = Dense.random ~rng ns 3 in
  let r = Dense.random ~rng nr 4 in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r)

let test_gnmf_f_equals_m () =
  let t = nonneg_dataset () in
  let m = Materialize.to_regular t in
  let init = Factorized.Gnmf.init t 3 in
  let init_m =
    { Materialized.Gnmf.w = Dense.copy init.Factorized.Gnmf.w;
      h = Dense.copy init.Factorized.Gnmf.h }
  in
  let f = Factorized.Gnmf.train ~iters:10 ~init ~rank:3 t in
  let s = Materialized.Gnmf.train ~iters:10 ~init:init_m ~rank:3 m in
  check_close ~tol:1e-5 "identical W" s.Materialized.Gnmf.w f.Factorized.Gnmf.w ;
  check_close ~tol:1e-5 "identical H" s.Materialized.Gnmf.h f.Factorized.Gnmf.h

let test_gnmf_nonnegative () =
  let t = nonneg_dataset () in
  let f = Factorized.Gnmf.train ~iters:10 ~rank:3 t in
  Dense.iteri (fun _ _ v -> Alcotest.(check bool) "W >= 0" true (v >= 0.0))
    f.Factorized.Gnmf.w ;
  Dense.iteri (fun _ _ v -> Alcotest.(check bool) "H >= 0" true (v >= 0.0))
    f.Factorized.Gnmf.h

let test_gnmf_error_decreases () =
  let t = nonneg_dataset () in
  let e1 =
    Factorized.Gnmf.reconstruction_error t (Factorized.Gnmf.train ~iters:1 ~rank:3 t)
  in
  let e20 =
    Factorized.Gnmf.reconstruction_error t (Factorized.Gnmf.train ~iters:20 ~rank:3 t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "error %.3f → %.3f" e1 e20)
    true (e20 < e1)

let test_gnmf_reconstruction_error_matches_direct () =
  let t = nonneg_dataset () in
  let f = Factorized.Gnmf.train ~iters:5 ~rank:3 t in
  let m = Materialize.to_dense t in
  let direct =
    let approx = Blas.gemm_nt f.Factorized.Gnmf.w f.Factorized.Gnmf.h in
    let diff = Dense.sub m approx in
    Dense.sum (Dense.mul_elem diff diff)
  in
  let via_rewrites = Factorized.Gnmf.reconstruction_error t f in
  if Float.abs (direct -. via_rewrites) > 1e-6 *. (1.0 +. direct) then
    Alcotest.failf "error %.6f vs %.6f" direct via_rewrites

(* ---- Orion ---- *)

let test_orion_matches_morpheus () =
  let t, _, y, _, _ = dataset () in
  let s, k, r =
    match (Normalized.ent t, Normalized.parts t) with
    | Some s, [ p ] -> (Mat.dense s, p.Normalized.ind, Mat.dense p.Normalized.mat)
    | _ -> Alcotest.fail "expected single pkfk"
  in
  let w_orion = Orion.train_logreg ~alpha:1e-3 ~iters:15 ~s ~k ~r ~y () in
  let f = Factorized.Logreg.train ~alpha:1e-3 ~iters:15 t y in
  check_close "Orion = Morpheus weights" f.Factorized.Logreg.w w_orion

(* ---- adaptive instantiation ---- *)

let test_adaptive_logreg_matches () =
  let t, _, y, _, _ = dataset ~ns:200 () in
  let a = Adaptive_matrix.of_normalized t in
  let fa = Adaptive.Logreg.train ~alpha:1e-3 ~iters:10 a y in
  let ff = Factorized.Logreg.train ~alpha:1e-3 ~iters:10 t y in
  check_close "adaptive = factorized" ff.Factorized.Logreg.w fa.Adaptive.Logreg.w

let () =
  Alcotest.run "ml"
    [ ( "logreg",
        [ Alcotest.test_case "F = M" `Quick test_logreg_f_equals_m;
          Alcotest.test_case "loss decreases" `Quick test_logreg_loss_decreases;
          Alcotest.test_case "learns separable data" `Quick test_logreg_learns;
          Alcotest.test_case "sparse inputs" `Quick test_logreg_sparse ] );
      ( "linreg",
        [ Alcotest.test_case "normal equations F = M" `Quick test_linreg_normal_f_equals_m;
          Alcotest.test_case "recovers noiseless truth" `Quick test_linreg_recovers_truth;
          Alcotest.test_case "GD F = M" `Quick test_linreg_gd_f_equals_m;
          Alcotest.test_case "co-factor AdaGrad" `Quick test_linreg_cofactor;
          Alcotest.test_case "GD → normal equations" `Slow test_linreg_gd_converges_towards_normal ] );
      ( "kmeans",
        [ Alcotest.test_case "F = M" `Quick test_kmeans_f_equals_m;
          Alcotest.test_case "separates blobs" `Quick test_kmeans_separates_blobs;
          Alcotest.test_case "objective decreases" `Quick test_kmeans_objective_decreases ] );
      ( "gnmf",
        [ Alcotest.test_case "F = M" `Quick test_gnmf_f_equals_m;
          Alcotest.test_case "non-negativity" `Quick test_gnmf_nonnegative;
          Alcotest.test_case "error decreases" `Quick test_gnmf_error_decreases;
          Alcotest.test_case "factorized error formula" `Quick test_gnmf_reconstruction_error_matches_direct ] );
      ( "orion",
        [ Alcotest.test_case "matches Morpheus" `Quick test_orion_matches_morpheus ] );
      ( "adaptive",
        [ Alcotest.test_case "logreg matches" `Quick test_adaptive_logreg_matches ] ) ]
