(* Tests for the extensions beyond the paper's Table 1: column-wise
   operators (Colops), spectral operations / PCA / Cholesky solve
   (Spectral — the paper's "future work" §7), and multi-table M:N chain
   joins (appendix E) through the relational layer. *)

open La
open Sparse
open Morpheus
open Relational
open Test_support

let check_close = Gen.check_close

(* ---- Colops ---- *)

let test_scale_cols () =
  List.iter
    (fun seed ->
      List.iter
        (fun shape ->
          let t = Gen.normalized ~seed shape in
          let d = Normalized.cols t in
          let rng = Rng.of_int (seed + 100) in
          let v = Array.init d (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:2.0) in
          let m = Gen.ground_truth t in
          let expected = Dense.mapi (fun _ j x -> x *. v.(j)) m in
          let got = Gen.ground_truth (Colops.scale_cols t v) in
          check_close
            (Printf.sprintf "scale_cols %s seed %d" (Gen.shape_name shape) seed)
            expected got)
        Gen.shapes)
    [ 0; 1; 2 ]

let test_scale_cols_sparse_stays_sparse () =
  let t = Gen.normalized ~seed:4 ~sparse:true Gen.Star2 in
  let v = Array.make (Normalized.cols t) 2.0 in
  let t' = Colops.scale_cols t v in
  List.iter
    (fun (p : Normalized.part) ->
      Alcotest.(check bool) "sparse preserved" true (Mat.is_sparse p.Normalized.mat))
    (Normalized.parts t')

let test_col_means_stds () =
  let t = Gen.normalized ~seed:5 Gen.Pkfk in
  let m = Gen.ground_truth t in
  let n = float_of_int (Dense.rows m) in
  let means = Colops.col_means t in
  check_close "col_means" (Dense.scale (1.0 /. n) (Dense.col_sums m)) means ;
  let stds = Colops.col_stds t in
  (* reference: population std per column *)
  let expected =
    Dense.init 1 (Dense.cols m) (fun _ j ->
        let mu = Dense.get means 0 j in
        let acc = ref 0.0 in
        for i = 0 to Dense.rows m - 1 do
          acc := !acc +. ((Dense.get m i j -. mu) ** 2.0)
        done ;
        sqrt (!acc /. n))
  in
  check_close ~tol:1e-7 "col_stds" expected stds

let test_standardize_scale () =
  let t = Gen.normalized ~seed:6 Gen.Star2 in
  let t' = Colops.standardize_scale t in
  let stds = Dense.row_to_array (Colops.col_stds t') in
  Array.iter
    (fun s ->
      if Float.abs (s -. 1.0) > 1e-6 && s > 1e-9 then
        Alcotest.failf "column std %g after standardization" s)
    stds

let test_with_intercept () =
  List.iter
    (fun shape ->
      let t = Gen.normalized ~seed:7 shape in
      let t1 = Colops.with_intercept t in
      Alcotest.(check int) "one more column" (Normalized.cols t + 1)
        (Normalized.cols t1) ;
      let m1 = Gen.ground_truth t1 in
      for i = 0 to Dense.rows m1 - 1 do
        Alcotest.(check (float 0.)) "ones column" 1.0 (Dense.get m1 i 0)
      done ;
      check_close "rest unchanged"
        (Gen.ground_truth t)
        (Dense.sub_cols m1 ~lo:1 ~hi:(Dense.cols m1)))
    Gen.shapes

let test_intercept_still_factorized () =
  (* the intercept-extended matrix must still run the rewrites *)
  let t = Colops.with_intercept (Gen.normalized ~seed:8 Gen.Mn) in
  let x = Dense.random ~rng:(Rng.of_int 3) (Normalized.cols t) 2 in
  check_close "lmm with intercept"
    (Blas.gemm (Gen.ground_truth t) x)
    (Rewrite.lmm t x)

(* ---- Spectral ---- *)

let pkfk_tall seed =
  let rng = Rng.of_int seed in
  let s = Mat.of_dense (Dense.gaussian ~rng 60 3) in
  let r = Mat.of_dense (Dense.gaussian ~rng 8 4) in
  let k = Indicator.random ~rng ~rows:60 ~cols:8 () in
  Normalized.pkfk ~s ~k ~r

let test_svd_reconstructs () =
  let t = pkfk_tall 11 in
  let m = Gen.ground_truth t in
  let { Spectral.u; s; v } = Spectral.svd t in
  let recon = Blas.gemm_nt (Blas.gemm u (Dense.diag_of_array s)) v in
  check_close ~tol:1e-6 "USVᵀ = T" m recon ;
  (* descending singular values *)
  Array.iteri
    (fun i x -> if i > 0 then Alcotest.(check bool) "descending" true (x <= s.(i - 1)))
    s ;
  check_close ~tol:1e-8 "U orthonormal" (Dense.identity (Array.length s))
    (Blas.crossprod u) ;
  check_close ~tol:1e-8 "V orthonormal" (Dense.identity (Array.length s))
    (Blas.crossprod v)

let test_svd_matches_direct () =
  let t = pkfk_tall 12 in
  let m = Gen.ground_truth t in
  let _, s_direct, _ = Linalg.svd m in
  let { Spectral.s; _ } = Spectral.svd t in
  Array.sort (fun a b -> compare b a) s_direct ;
  Array.iteri
    (fun i x ->
      if Float.abs (x -. s_direct.(i)) > 1e-6 *. (1.0 +. x) then
        Alcotest.failf "singular value %d: %g vs %g" i x s_direct.(i))
    s

let test_svd_truncated () =
  let t = pkfk_tall 13 in
  let r = Spectral.svd ~rank:2 t in
  Alcotest.(check int) "rank" 2 (Array.length r.Spectral.s) ;
  Alcotest.(check int) "u cols" 2 (Dense.cols r.Spectral.u)

let test_pca_matches_materialized () =
  let t = pkfk_tall 14 in
  let m = Gen.ground_truth t in
  let p = Spectral.pca ~k:3 t in
  (* reference covariance from the centered materialized matrix *)
  let n = Dense.rows m in
  let mu = Dense.scale (1.0 /. float_of_int n) (Dense.col_sums m) in
  let centered = Dense.mapi (fun _ j x -> x -. Dense.get mu 0 j) m in
  let cov_ref = Dense.scale (1.0 /. float_of_int (n - 1)) (Blas.crossprod centered) in
  check_close ~tol:1e-7 "covariance" cov_ref (Spectral.covariance t) ;
  (* projections match centered multiplication *)
  let proj_ref = Blas.gemm centered p.Spectral.components in
  check_close ~tol:1e-7 "transform" proj_ref (Spectral.transform t p) ;
  let ratio = Spectral.explained_ratio t p in
  Alcotest.(check bool) "ratio in (0,1]" true (ratio > 0.0 && ratio <= 1.0 +. 1e-9)

let test_pca_variance_ordering () =
  let t = pkfk_tall 15 in
  let p = Spectral.pca ~k:4 t in
  Array.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool) "descending variance" true
          (v <= p.Spectral.explained_variance.(i - 1)))
    p.Spectral.explained_variance

let test_cholesky_solve () =
  let t = pkfk_tall 16 in
  let m = Gen.ground_truth t in
  let rng = Rng.of_int 17 in
  let w_true = Dense.random ~rng 7 1 in
  let y = Blas.gemm m w_true in
  check_close ~tol:1e-7 "Cholesky solve recovers w" w_true (Spectral.solve t y)

let test_ridge_solve () =
  let t = pkfk_tall 18 in
  let m = Gen.ground_truth t in
  let y = Dense.random ~rng:(Rng.of_int 19) (Dense.rows m) 1 in
  let w = Spectral.solve_ridge ~lambda:0.5 t y in
  (* reference: (TᵀT + λI)⁻¹ Tᵀy on the materialized matrix *)
  let cp = Blas.crossprod m in
  let reg = Dense.mapi (fun i j x -> if i = j then x +. 0.5 else x) cp in
  let expected = Linalg.solve reg (Blas.tgemm m y) in
  check_close ~tol:1e-7 "ridge" expected w ;
  Alcotest.(check bool) "lambda > 0 enforced" true
    (try
       ignore (Spectral.solve_ridge ~lambda:0.0 t y) ;
       false
     with Invalid_argument _ -> true)

(* ---- multi-table M:N chains (appendix E) ---- *)

let chain_table name n ~key_vals ~feature_base =
  let schema =
    Schema.create ~table_name:name
      [ Schema.column ~name:"a" ~role:Schema.Ignored;
        Schema.column ~name:"b" ~role:Schema.Ignored;
        Schema.column ~name:"x" ~role:Schema.Numeric_feature ]
  in
  Table.of_rows schema
    (List.init n (fun i ->
         [| Value.Int (key_vals i);
            Value.Int ((key_vals i + 1) mod 3);
            Value.Float (feature_base +. float_of_int i) |]))

let test_chain_matches_nested_loop () =
  let t1 = chain_table "R1" 4 ~key_vals:(fun i -> i mod 2) ~feature_base:10.0 in
  let t2 = chain_table "R2" 5 ~key_vals:(fun i -> i mod 3) ~feature_base:20.0 in
  let t3 = chain_table "R3" 4 ~key_vals:(fun i -> i mod 2) ~feature_base:30.0 in
  let tables = [ t1; t2; t3 ] in
  let conditions = [ ("a", "a"); ("b", "b") ] in
  let inds = Join.chain_indicators tables conditions in
  Alcotest.(check int) "one indicator per table" 3 (List.length inds) ;
  (* nested-loop ground truth *)
  let count = ref 0 in
  for i = 0 to 3 do
    for j = 0 to 4 do
      for k = 0 to 3 do
        let v t row col = Table.get t ~row ~col_name:col in
        if Value.equal (v t1 i "a") (v t2 j "a") && Value.equal (v t2 j "b") (v t3 k "b")
        then incr count
      done
    done
  done ;
  Alcotest.(check int) "cardinality" !count (Indicator.rows (List.hd inds)) ;
  (* materialized chain has the same cardinality *)
  let mat = Join.materialize_chain tables conditions in
  Alcotest.(check int) "materialized cardinality" !count (Table.nrows mat)

let test_chain_normalized_rewrites () =
  let t1 = chain_table "R1" 6 ~key_vals:(fun i -> i mod 2) ~feature_base:1.0 in
  let t2 = chain_table "R2" 5 ~key_vals:(fun i -> i mod 2) ~feature_base:2.0 in
  let t3 = chain_table "R3" 4 ~key_vals:(fun i -> i mod 2) ~feature_base:3.0 in
  let ds = Builder.mn_chain ~tables:[ t1; t2; t3 ] ~conditions:[ ("a", "a"); ("b", "b") ] () in
  let t = ds.Builder.matrix in
  Alcotest.(check int) "3 parts" 3 (List.length (Normalized.parts t)) ;
  let m = Materialize.to_dense t in
  let x = Dense.random ~rng:(Rng.of_int 20) (Normalized.cols t) 2 in
  check_close "chain lmm" (Blas.gemm m x) (Rewrite.lmm t x) ;
  check_close "chain crossprod" (Blas.crossprod m) (Rewrite.crossprod t) ;
  check_close "chain rowSums" (Dense.row_sums m) (Rewrite.row_sums t) ;
  (* appendix E's transposed Gram rewrite too *)
  check_close "chain gram" (Blas.tcrossprod m)
    (Rewrite.crossprod (Rewrite.transpose t))

let test_chain_empty_join () =
  let t1 = chain_table "R1" 3 ~key_vals:(fun _ -> 0) ~feature_base:1.0 in
  let t2 = chain_table "R2" 3 ~key_vals:(fun _ -> 1) ~feature_base:2.0 in
  let inds = Join.chain_indicators [ t1; t2 ] [ ("a", "a") ] in
  Alcotest.(check int) "empty output" 0 (Indicator.rows (List.hd inds))

let test_chain_condition_arity () =
  let t1 = chain_table "R1" 2 ~key_vals:(fun i -> i) ~feature_base:0.0 in
  Alcotest.(check bool) "arity checked" true
    (try
       ignore (Join.chain_indicators [ t1; t1 ] []) ;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "extensions"
    [ ( "colops",
        [ Alcotest.test_case "scale_cols" `Quick test_scale_cols;
          Alcotest.test_case "sparsity preserved" `Quick test_scale_cols_sparse_stays_sparse;
          Alcotest.test_case "col means/stds" `Quick test_col_means_stds;
          Alcotest.test_case "standardize" `Quick test_standardize_scale;
          Alcotest.test_case "with_intercept" `Quick test_with_intercept;
          Alcotest.test_case "intercept factorized" `Quick test_intercept_still_factorized ] );
      ( "spectral",
        [ Alcotest.test_case "svd reconstructs" `Quick test_svd_reconstructs;
          Alcotest.test_case "svd matches direct" `Quick test_svd_matches_direct;
          Alcotest.test_case "svd truncated" `Quick test_svd_truncated;
          Alcotest.test_case "pca matches materialized" `Quick test_pca_matches_materialized;
          Alcotest.test_case "pca variance ordering" `Quick test_pca_variance_ordering;
          Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
          Alcotest.test_case "ridge solve" `Quick test_ridge_solve ] );
      ( "mn-chain",
        [ Alcotest.test_case "matches nested loop" `Quick test_chain_matches_nested_loop;
          Alcotest.test_case "rewrites correct" `Quick test_chain_normalized_rewrites;
          Alcotest.test_case "empty join" `Quick test_chain_empty_join;
          Alcotest.test_case "condition arity" `Quick test_chain_condition_arity ] ) ]
