(* End-to-end smoke test (the @serve-smoke alias): real server on a
   temp Unix socket, real client over the wire. Trains nothing — uses a
   fixed logreg artifact — but covers the whole serving path: registry
   load, raw-row scoring, dataset scoring by id (one factorized batch),
   agreement with direct in-process scoring, the stats op, and a clean
   shutdown. Exits non-zero on any mismatch. *)

open La
open Morpheus
open Morpheus_serve

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s) ; exit 1) fmt

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "morpheus_smoke_%d" (Unix.getpid ()))
  in
  rm_rf root ;
  Sys.mkdir root 0o755 ;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  (* a small normalized dataset + a model trained on its schema *)
  let g = Rng.of_int 4242 in
  let s = Dense.random ~rng:g 200 3 in
  let r = Dense.random ~rng:g 15 4 in
  let k = Sparse.Indicator.random ~rng:g ~rows:200 ~cols:15 () in
  let t = Normalized.pkfk ~s:(Sparse.Mat.of_dense s) ~k ~r:(Sparse.Mat.of_dense r) in
  let d = snd (Normalized.dims t) in
  let artifact = Artifact.Logreg (Dense.random ~rng:g d 1) in
  let ds_dir = Filename.concat root "ds" in
  Io.save ~dir:ds_dir t ;
  let reg = Filename.concat root "reg" in
  let entry =
    Registry.save ~dir:reg ~name:"smoke"
      ~schema_hash:(Registry.schema_hash t) artifact
  in
  let socket = Filename.concat root "sock" in
  let server =
    Server.start
      { (Server.default_config ~registry:reg ~socket) with
        Server.handlers = 2;
        max_wait = 1e-3
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop server)
  @@ fun () ->
  Client.with_client ~socket
  @@ fun c ->
  (* ping *)
  (match Client.call c Protocol.Ping with
  | Ok _ -> ()
  | Error (code, msg) -> fail "ping: [%s] %s" code msg) ;
  (* list shows the model *)
  (match Client.call c Protocol.List_models with
  | Error (code, msg) -> fail "list: [%s] %s" code msg
  | Ok j ->
    let n =
      Option.bind (Json.member "models" j) Json.to_list
      |> Option.value ~default:[] |> List.length
    in
    if n <> 1 then fail "list: expected 1 model, got %d" n) ;
  (* raw rows over the wire = direct in-process scoring, bitwise *)
  let rows = [| Array.make d 0.25; Array.init d (fun i -> float_of_int i) |] in
  (match Client.score_rows c ~model:"smoke" rows with
  | Error (code, msg) -> fail "score rows: [%s] %s" code msg
  | Ok preds ->
    let direct = Artifact.score_dense artifact (Dense.of_arrays rows) in
    if preds <> direct then fail "row predictions differ from direct scoring") ;
  (* dataset ids over the wire = direct factorized scoring, bitwise *)
  let ids = [| 0; 7; 42; 199; 7 |] in
  (match Client.score_ids c ~model:entry.Registry.id ~dataset:ds_dir ids with
  | Error (code, msg) -> fail "score ids: [%s] %s" code msg
  | Ok preds ->
    let direct = Artifact.score_normalized artifact (Normalized.select_rows t ids) in
    if preds <> direct then fail "id predictions differ from direct scoring") ;
  (* score_where over the wire: the server masks + select_rows + scores
     the whole segment as one factorized plan; predictions must be
     bitwise-identical both to score_ids with client-computed mask ids
     and to direct in-process scoring *)
  let pred =
    match Pred.parse "c0 >= 0.5 && c3 < 0.9" with
    | Ok p -> p
    | Error msg -> fail "where predicate parse: %s" msg
  in
  (match Client.score_where c ~model:"smoke" ~dataset:ds_dir pred with
  | Error (code, msg) -> fail "score where: [%s] %s" code msg
  | Ok preds ->
    let ids = Relalg.mask t pred in
    if ids = [||] then fail "smoke predicate selected no rows" ;
    (match Client.score_ids c ~model:"smoke" ~dataset:ds_dir ids with
    | Error (code, msg) -> fail "score ids (where baseline): [%s] %s" code msg
    | Ok by_ids ->
      if preds <> by_ids then
        fail "where predictions differ from score_ids over the mask") ;
    let direct =
      Artifact.score_normalized artifact (Normalized.select_rows t ids)
    in
    if preds <> direct then fail "where predictions differ from direct scoring") ;
  (* an unknown predicate column is a per-request protocol error *)
  (match
     Client.score_where c ~model:"smoke" ~dataset:ds_dir
       (match Pred.parse "nope > 0" with
       | Ok p -> p
       | Error msg -> fail "predicate parse: %s" msg)
   with
  | Error ("rejected", _) -> ()
  | Ok _ -> fail "unknown-column predicate was scored"
  | Error (code, msg) -> fail "unknown column: wrong error [%s] %s" code msg) ;
  (* errors come back as protocol errors, not hangs *)
  (match Client.score_ids c ~model:"smoke" ~dataset:ds_dir [| 100000 |] with
  | Error ("rejected", _) -> ()
  | Ok _ -> fail "out-of-range id was scored"
  | Error (code, msg) -> fail "out-of-range id: wrong error [%s] %s" code msg) ;
  (match Client.score_rows c ~model:"ghost" rows with
  | Error ("unknown_model", _) -> ()
  | Ok _ -> fail "unknown model was scored"
  | Error (code, msg) -> fail "unknown model: wrong error [%s] %s" code msg) ;
  (* stats reflect the traffic *)
  (match Client.call c Protocol.Stats with
  | Error (code, msg) -> fail "stats: [%s] %s" code msg
  | Ok j ->
    let stats = Option.value ~default:Json.Null (Json.member "stats" j) in
    let int_at path =
      List.fold_left
        (fun acc k -> Option.bind acc (Json.member k))
        (Some stats) path
      |> Fun.flip Option.bind Json.to_int
      |> Option.value ~default:(-1)
    in
    if int_at [ "requests" ] < 4 then
      fail "stats: too few requests (%d)" (int_at [ "requests" ]) ;
    if int_at [ "batches"; "count" ] < 2 then
      fail "stats: too few batches (%d)" (int_at [ "batches"; "count" ]) ;
    if int_at [ "server"; "dataset_cache"; "entries" ] <> 1 then
      fail "stats: dataset cache should hold the dataset" ;
    if int_at [ "errors"; "rejected" ] < 1 then
      fail "stats: the rejected request was not counted") ;
  (* graceful shutdown over the wire *)
  (match Client.call c Protocol.Shutdown with
  | Ok _ -> ()
  | Error (code, msg) -> fail "shutdown: [%s] %s" code msg) ;
  Server.wait server ;
  print_endline "serve smoke: OK"
