(* Tests for the workload generators: dimensions, ratios, referential
   integrity, and the Table 6 statistics of the simulated real datasets. *)

open La
open Sparse
open Morpheus
open Workload

let test_pkfk_dims () =
  let d = Synthetic.pkfk ~ns:50 ~ds:3 ~nr:10 ~dr:6 () in
  Alcotest.(check (pair int int)) "T dims" (50, 9) (Normalized.dims d.Synthetic.t) ;
  Alcotest.(check (pair int int)) "y" (50, 1) (Dense.dims d.Synthetic.y) ;
  Alcotest.(check (float 1e-9)) "TR" 5.0 (Normalized.tuple_ratio d.Synthetic.t) ;
  Alcotest.(check (float 1e-9)) "FR" 2.0 (Normalized.feature_ratio d.Synthetic.t)

let test_pkfk_deterministic () =
  let a = Synthetic.pkfk ~seed:5 ~ns:20 ~ds:2 ~nr:4 ~dr:2 () in
  let b = Synthetic.pkfk ~seed:5 ~ns:20 ~ds:2 ~nr:4 ~dr:2 () in
  Alcotest.(check bool) "same data" true
    (Dense.approx_equal
       (Materialize.to_dense a.Synthetic.t)
       (Materialize.to_dense b.Synthetic.t))

let test_pkfk_labels () =
  let d = Synthetic.pkfk ~ns:100 ~ds:2 ~nr:10 ~dr:2 () in
  Dense.iteri
    (fun _ _ v -> Alcotest.(check bool) "±1" true (v = 1.0 || v = -1.0))
    d.Synthetic.y

let test_star_dims () =
  let d = Synthetic.star ~ns:40 ~ds:2 ~atts:[ (5, 3); (4, 4) ] () in
  Alcotest.(check (pair int int)) "dims" (40, 9) (Normalized.dims d.Synthetic.t) ;
  Alcotest.(check int) "parts" 2 (List.length (Normalized.parts d.Synthetic.t))

let test_mn_join_output () =
  let d = Synthetic.mn ~ns:30 ~nr:30 ~ds:2 ~dr:3 ~nu:5 () in
  let t = d.Synthetic.t in
  (* M:N join output is larger than either input for small domains *)
  Alcotest.(check bool) "output grows" true (Normalized.rows t > 30) ;
  Alcotest.(check int) "cols" 5 (Normalized.cols t) ;
  (* y aligned with output *)
  Alcotest.(check int) "y rows" (Normalized.rows t) (Dense.rows d.Synthetic.y) ;
  (* every base tuple used at least once *)
  List.iter
    (fun (p : Normalized.part) ->
      Array.iter
        (fun c -> Alcotest.(check bool) "referenced" true (c > 0.0))
        (Indicator.col_counts p.Normalized.ind))
    (Normalized.parts t)

let test_mn_uniqueness_drives_size () =
  (* smaller domain (more repetition) → bigger join output *)
  let small = Synthetic.mn ~ns:50 ~nr:50 ~ds:2 ~dr:2 ~nu:2 () in
  let large = Synthetic.mn ~ns:50 ~nr:50 ~ds:2 ~dr:2 ~nu:40 () in
  Alcotest.(check bool) "nu=2 bigger than nu=40" true
    (Normalized.rows small.Synthetic.t > Normalized.rows large.Synthetic.t)

let test_mn_rewrites_correct () =
  (* generated M:N data flows through the rewrite rules correctly *)
  let d = Synthetic.mn ~ns:25 ~nr:20 ~ds:2 ~dr:3 ~nu:4 () in
  let t = d.Synthetic.t in
  let m = Materialize.to_dense t in
  let x = Dense.random ~rng:(Rng.of_int 2) (Normalized.cols t) 2 in
  Alcotest.(check bool) "lmm" true
    (Dense.approx_equal ~tol:1e-8 (Blas.gemm m x) (Rewrite.lmm t x)) ;
  Alcotest.(check bool) "crossprod" true
    (Dense.approx_equal ~tol:1e-8 (Blas.crossprod m) (Rewrite.crossprod t))

let test_table4_presets () =
  let d = Synthetic.table4_tuple_ratio ~base:200 ~tr:10 ~fr:2.0 () in
  Alcotest.(check (float 1e-9)) "TR" 10.0 (Normalized.tuple_ratio d.Synthetic.t) ;
  Alcotest.(check (float 1e-9)) "FR" 2.0 (Normalized.feature_ratio d.Synthetic.t)

(* ---- realistic datasets ---- *)

let test_realistic_specs_match_paper () =
  (* Table 6 numbers, spot-checked *)
  Alcotest.(check int) "expedia nS" 942142 Realistic.expedia.Realistic.s.Realistic.n ;
  Alcotest.(check int) "movies q" 2 (List.length Realistic.movies.Realistic.atts) ;
  Alcotest.(check int) "flights q" 3 (List.length Realistic.flights.Realistic.atts) ;
  Alcotest.(check int) "yelp R2 d" 43900
    (List.nth Realistic.yelp.Realistic.atts 1).Realistic.d ;
  Alcotest.(check int) "all datasets" 7 (List.length Realistic.all)

let test_realistic_load_scaled () =
  let t, y, y_num = Realistic.load ~scale_rows:0.01 ~scale_cols:0.05 Realistic.walmart in
  let ns = Normalized.rows t in
  Alcotest.(check bool) "rows scaled" true (ns > 1000 && ns < 10000) ;
  Alcotest.(check int) "y aligned" ns (Dense.rows y) ;
  Alcotest.(check int) "y_num aligned" ns (Dense.rows y_num) ;
  (* feature matrices are sparse *)
  List.iter
    (fun (p : Normalized.part) ->
      Alcotest.(check bool) "sparse atts" true (Mat.is_sparse p.Normalized.mat))
    (Normalized.parts t)

let test_realistic_nnz_per_row_preserved () =
  let spec = Realistic.movies in
  let t, _, _ = Realistic.load ~scale_rows:0.005 ~scale_cols:0.05 spec in
  let parts = Normalized.parts t in
  List.iter2
    (fun (p : Normalized.part) (att : Realistic.table_stats) ->
      let nnz_per_row_paper =
        float_of_int att.Realistic.nnz /. float_of_int att.Realistic.n
      in
      let got =
        float_of_int (Mat.storage_size p.Normalized.mat)
        /. float_of_int (Mat.rows p.Normalized.mat)
      in
      if Float.abs (got -. nnz_per_row_paper) > 1.5 then
        Alcotest.failf "nnz/row %.1f vs paper %.1f" got nnz_per_row_paper)
    parts spec.Realistic.atts

let test_realistic_rewrites_correct () =
  let t, _, _ = Realistic.load ~scale_rows:0.002 ~scale_cols:0.01 Realistic.yelp in
  let m = Materialize.to_dense t in
  let x = Dense.random ~rng:(Rng.of_int 4) (Normalized.cols t) 1 in
  Alcotest.(check bool) "lmm on realistic data" true
    (Dense.approx_equal ~tol:1e-7 (Blas.gemm m x) (Rewrite.lmm t x))

let test_find () =
  Alcotest.(check string) "find" "Expedia" (Realistic.find "expedia").Realistic.name ;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Realistic.find "nope") ;
       false
     with Invalid_argument _ -> true)

(* ---- timing helpers ---- *)

let test_timing_measure () =
  let calls = ref 0 in
  let dt =
    Timing.measure ~warmup:2 ~runs:3 (fun () ->
        incr calls ;
        ())
  in
  Alcotest.(check int) "warmup+runs" 5 !calls ;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0)

let test_timing_speedup () =
  Alcotest.(check (float 1e-9)) "ratio" 4.0
    (Timing.speedup ~materialized:2.0 ~factorized:0.5)

let () =
  Alcotest.run "workload"
    [ ( "synthetic",
        [ Alcotest.test_case "pkfk dims & ratios" `Quick test_pkfk_dims;
          Alcotest.test_case "deterministic" `Quick test_pkfk_deterministic;
          Alcotest.test_case "±1 labels" `Quick test_pkfk_labels;
          Alcotest.test_case "star dims" `Quick test_star_dims;
          Alcotest.test_case "mn join output" `Quick test_mn_join_output;
          Alcotest.test_case "mn uniqueness → size" `Quick test_mn_uniqueness_drives_size;
          Alcotest.test_case "mn rewrites correct" `Quick test_mn_rewrites_correct;
          Alcotest.test_case "table4 presets" `Quick test_table4_presets ] );
      ( "realistic",
        [ Alcotest.test_case "Table 6 specs" `Quick test_realistic_specs_match_paper;
          Alcotest.test_case "scaled load" `Quick test_realistic_load_scaled;
          Alcotest.test_case "nnz/row preserved" `Quick test_realistic_nnz_per_row_preserved;
          Alcotest.test_case "rewrites correct" `Quick test_realistic_rewrites_correct;
          Alcotest.test_case "find" `Quick test_find ] );
      ( "timing",
        [ Alcotest.test_case "measure" `Quick test_timing_measure;
          Alcotest.test_case "speedup" `Quick test_timing_speedup ] ) ]
