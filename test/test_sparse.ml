(* Tests for the sparse substrate: CSR, indicator matrices, COO, and the
   dense/sparse Mat wrapper. *)

open La
open Sparse

let check_close ?(tol = 1e-9) msg a b =
  if not (Dense.approx_equal ~tol a b) then
    Alcotest.failf "%s: max|diff| = %g" msg (Dense.max_abs_diff a b)

let rng () = Rng.of_int 4242

let random_csr ?(density = 0.3) r c seed =
  let g = Rng.of_int seed in
  let triplets = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Rng.float g < density then
        triplets := (i, j, Rng.uniform g ~lo:(-2.0) ~hi:2.0) :: !triplets
    done
  done ;
  Csr.of_triplets ~rows:r ~cols:c !triplets

(* ---- Csr ---- *)

let test_triplets_roundtrip () =
  let m = Csr.of_triplets ~rows:3 ~cols:4 [ (0, 1, 2.0); (2, 3, -1.0); (1, 0, 0.5) ] in
  Alcotest.(check int) "nnz" 3 (Csr.nnz m) ;
  Alcotest.(check (float 0.)) "get" 2.0 (Csr.get m 0 1) ;
  Alcotest.(check (float 0.)) "zero" 0.0 (Csr.get m 0 0)

let test_duplicate_triplets_sum () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Csr.nnz m) ;
  Alcotest.(check (float 0.)) "summed" 3.5 (Csr.get m 0 0)

let test_zero_triplets_dropped () =
  let m = Csr.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.0); (1, 1, -1.0); (1, 1, 1.0) ] in
  Alcotest.(check int) "dropped" 1 (Csr.nnz m)

let test_dense_roundtrip () =
  let m = random_csr 7 5 11 in
  let back = Csr.of_dense (Csr.to_dense m) in
  Alcotest.(check bool) "roundtrip" true (Csr.approx_equal m back)

let test_csr_transpose () =
  let m = random_csr 6 4 12 in
  check_close "transpose"
    (Dense.transpose (Csr.to_dense m))
    (Csr.to_dense (Csr.transpose m))

let test_csr_aggregations () =
  let m = random_csr 6 4 13 in
  let d = Csr.to_dense m in
  check_close "row_sums" (Dense.row_sums d) (Csr.row_sums m) ;
  check_close "col_sums" (Dense.col_sums d) (Csr.col_sums m) ;
  Alcotest.(check (float 1e-9)) "sum" (Dense.sum d) (Csr.sum m) ;
  check_close "row_sums_sq" (Dense.row_sums (Dense.pow_scalar d 2.0)) (Csr.row_sums_sq m)

let test_smm () =
  let m = random_csr 6 4 14 in
  let x = Dense.random ~rng:(rng ()) 4 3 in
  check_close "smm" (Blas.gemm (Csr.to_dense m) x) (Csr.smm m x)

let test_t_smm () =
  let m = random_csr 6 4 15 in
  let x = Dense.random ~rng:(rng ()) 6 2 in
  check_close "t_smm" (Blas.tgemm (Csr.to_dense m) x) (Csr.t_smm m x)

let test_dense_smm () =
  let m = random_csr 5 6 16 in
  let x = Dense.random ~rng:(rng ()) 3 5 in
  check_close "dense_smm" (Blas.gemm x (Csr.to_dense m)) (Csr.dense_smm x m)

let test_csr_crossprod () =
  let m = random_csr 8 5 17 in
  check_close "crossprod" (Blas.crossprod (Csr.to_dense m)) (Csr.crossprod m)

let test_csr_weighted_crossprod () =
  let m = random_csr 8 5 18 in
  let g = rng () in
  let w = Array.init 8 (fun _ -> Rng.float g) in
  check_close "weighted"
    (Blas.weighted_crossprod (Csr.to_dense m) w)
    (Csr.weighted_crossprod m w)

let test_csr_gather_sub_rows () =
  let m = random_csr 6 4 19 in
  let idx = [| 3; 0; 3; 5 |] in
  let d = Csr.to_dense m in
  let expected = Dense.init 4 4 (fun i j -> Dense.get d idx.(i) j) in
  check_close "gather" expected (Csr.to_dense (Csr.gather_rows m idx)) ;
  check_close "sub_rows"
    (Dense.sub_rows d ~lo:2 ~hi:5)
    (Csr.to_dense (Csr.sub_rows m ~lo:2 ~hi:5))

let test_csr_hcat () =
  let a = random_csr 5 3 20 and b = random_csr 5 2 21 in
  check_close "hcat"
    (Dense.hcat [ Csr.to_dense a; Csr.to_dense b ])
    (Csr.to_dense (Csr.hcat [ a; b ]))

let test_csr_col_scatter () =
  let m = random_csr 5 6 22 in
  let mapping = [| 0; 1; 0; 2; 1; 0 |] in
  let d = Csr.to_dense m in
  let expected = Dense.create 5 3 in
  Dense.iteri (fun i j v ->
      Dense.set expected i mapping.(j) (Dense.get expected i mapping.(j) +. v)) d ;
  check_close "col_scatter" expected (Csr.col_scatter m ~mapping ~ncols:3)

(* ---- Indicator ---- *)

let test_indicator_covers_columns () =
  let k = Indicator.random ~rng:(rng ()) ~rows:20 ~cols:7 () in
  let counts = Indicator.col_counts k in
  Array.iter (fun c -> Alcotest.(check bool) "referenced" true (c > 0.0)) counts ;
  Alcotest.(check (float 0.)) "counts sum to rows" 20.0 (Array.fold_left ( +. ) 0.0 counts)

let test_indicator_nnz () =
  (* nnz(K) = n_S exactly (§3.1) *)
  let k = Indicator.random ~rng:(rng ()) ~rows:15 ~cols:4 () in
  Alcotest.(check int) "nnz = rows" 15 (Indicator.nnz k) ;
  Alcotest.(check int) "csr nnz" 15 (Csr.nnz (Indicator.to_csr k))

let test_indicator_mult () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:10 ~cols:4 () in
  let r = Dense.random ~rng:g 4 3 in
  check_close "K·R" (Blas.gemm (Indicator.to_dense k) r) (Indicator.mult k r)

let test_indicator_mult_csr () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:10 ~cols:4 () in
  let r = random_csr 4 3 23 in
  check_close "K·R sparse"
    (Blas.gemm (Indicator.to_dense k) (Csr.to_dense r))
    (Csr.to_dense (Indicator.mult_csr k r))

let test_indicator_tmult () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:10 ~cols:4 () in
  let x = Dense.random ~rng:g 10 3 in
  check_close "Kᵀ·X" (Blas.tgemm (Indicator.to_dense k) x) (Indicator.tmult k x)

let test_indicator_tmult_csr () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:10 ~cols:4 () in
  let x = random_csr 10 3 24 in
  check_close "Kᵀ·X sparse"
    (Blas.tgemm (Indicator.to_dense k) (Csr.to_dense x))
    (Indicator.tmult_csr k x)

let test_indicator_xmult () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:10 ~cols:4 () in
  let x = Dense.random ~rng:g 3 10 in
  check_close "X·K" (Blas.gemm x (Indicator.to_dense k)) (Indicator.xmult x k)

let test_indicator_gather_scatter () =
  let g = rng () in
  let k = Indicator.random ~rng:g ~rows:8 ~cols:3 () in
  let v = Array.init 3 (fun i -> float_of_int (i + 1)) in
  let gathered = Indicator.gather k v in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 0.)) "gather" v.(Indicator.col_of_row k i) x)
    gathered ;
  let w = Array.init 8 float_of_int in
  let scattered = Indicator.scatter_add k w in
  let expected = Array.make 3 0.0 in
  Array.iteri (fun i x -> expected.(Indicator.col_of_row k i) <- expected.(Indicator.col_of_row k i) +. x) w ;
  Alcotest.(check (array (float 1e-12))) "scatter_add" expected scattered

let test_indicator_identity () =
  let k = Indicator.identity 5 in
  let r = Dense.random ~rng:(rng ()) 5 2 in
  check_close "I·R = R" r (Indicator.mult k r)

(* ---- Coo ---- *)

let test_coo_mult () =
  let g = rng () in
  let p = Coo.of_triplets ~rows:4 ~cols:3 [ (0, 0, 2.0); (1, 2, 1.0); (3, 1, -1.0); (0, 2, 0.5) ] in
  let x = Dense.random ~rng:g 3 2 in
  check_close "P·X" (Blas.gemm (Coo.to_dense p) x) (Coo.mult p x)

let test_coo_mult_csr () =
  let p = Coo.of_triplets ~rows:3 ~cols:4 [ (0, 1, 1.0); (2, 3, 2.0) ] in
  let a = random_csr 4 5 25 in
  check_close "P·A" (Blas.gemm (Coo.to_dense p) (Csr.to_dense a)) (Coo.mult_csr p a)

(* ---- Mat ---- *)

let test_mat_dispatch () =
  let d = Dense.random ~rng:(rng ()) 5 4 in
  let c = random_csr 5 4 26 in
  let md = Mat.of_dense d and ms = Mat.of_csr c in
  Alcotest.(check bool) "dense not sparse" false (Mat.is_sparse md) ;
  Alcotest.(check bool) "sparse" true (Mat.is_sparse ms) ;
  Alcotest.(check int) "storage dense" 20 (Mat.storage_size md) ;
  Alcotest.(check int) "storage sparse" (Csr.nnz c) (Mat.storage_size ms)

let test_mat_scalar_sparsity () =
  let c = random_csr 5 4 27 in
  let ms = Mat.of_csr c in
  (* zero-preserving map keeps sparsity *)
  Alcotest.(check bool) "scale stays sparse" true (Mat.is_sparse (Mat.scale 2.0 ms)) ;
  Alcotest.(check bool) "sq stays sparse" true (Mat.is_sparse (Mat.sq ms)) ;
  (* non-zero-preserving map densifies *)
  Alcotest.(check bool) "exp densifies" false (Mat.is_sparse (Mat.exp ms)) ;
  Alcotest.(check bool) "+1 densifies" false (Mat.is_sparse (Mat.add_scalar 1.0 ms)) ;
  check_close "exp values"
    (Dense.exp (Csr.to_dense c))
    (Mat.dense (Mat.exp ms))

let test_mat_ops_agree () =
  (* every Mat op gives the same answer through both representations *)
  let d = Dense.random ~rng:(rng ()) 6 4 in
  let pairs = [ (Mat.of_dense d, Mat.of_csr (Csr.of_dense d)) ] in
  List.iter
    (fun (a, b) ->
      let x = Dense.random ~rng:(rng ()) 4 3 in
      check_close "mm" (Mat.mm a x) (Mat.mm b x) ;
      let y = Dense.random ~rng:(rng ()) 6 2 in
      check_close "tmm" (Mat.tmm a y) (Mat.tmm b y) ;
      let z = Dense.random ~rng:(rng ()) 2 6 in
      check_close "mm_left" (Mat.mm_left z a) (Mat.mm_left z b) ;
      check_close "crossprod" (Mat.crossprod a) (Mat.crossprod b) ;
      check_close "row_sums" (Mat.row_sums a) (Mat.row_sums b) ;
      check_close "col_sums" (Mat.col_sums a) (Mat.col_sums b) ;
      Alcotest.(check (float 1e-9)) "sum" (Mat.sum a) (Mat.sum b))
    pairs

let test_mat_hcat_mixed () =
  let d = Dense.random ~rng:(rng ()) 4 2 in
  let c = random_csr 4 3 28 in
  let h = Mat.hcat [ Mat.of_dense d; Mat.of_csr c ] in
  Alcotest.(check bool) "mixed hcat densifies" false (Mat.is_sparse h) ;
  check_close "values" (Dense.hcat [ d; Csr.to_dense c ]) (Mat.dense h) ;
  let h2 = Mat.hcat [ Mat.of_csr c; Mat.of_csr c ] in
  Alcotest.(check bool) "all-sparse hcat stays sparse" true (Mat.is_sparse h2)

(* qcheck: CSR smm equals dense gemm over random matrices *)

let qc_gen =
  QCheck.make
    ~print:(fun (r, c, k, seed) -> Printf.sprintf "%dx%dx%d seed=%d" r c k seed)
    QCheck.Gen.(quad (int_range 1 10) (int_range 1 10) (int_range 1 5) (int_range 0 5000))

let prop_smm =
  QCheck.Test.make ~name:"qcheck: smm = gemm" ~count:60 qc_gen
    (fun (r, c, k, seed) ->
      let m = random_csr r c seed in
      let x = Dense.random ~rng:(Rng.of_int (seed + 1)) c k in
      Dense.approx_equal ~tol:1e-9 (Blas.gemm (Csr.to_dense m) x) (Csr.smm m x))

let prop_transpose_involution =
  QCheck.Test.make ~name:"qcheck: csr transpose involution" ~count:60 qc_gen
    (fun (r, c, _, seed) ->
      let m = random_csr r c seed in
      Csr.approx_equal m (Csr.transpose (Csr.transpose m)))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sparse"
    [ ( "csr",
        [ Alcotest.test_case "triplets roundtrip" `Quick test_triplets_roundtrip;
          Alcotest.test_case "duplicates summed" `Quick test_duplicate_triplets_sum;
          Alcotest.test_case "zeros dropped" `Quick test_zero_triplets_dropped;
          Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "aggregations" `Quick test_csr_aggregations;
          Alcotest.test_case "smm" `Quick test_smm;
          Alcotest.test_case "t_smm" `Quick test_t_smm;
          Alcotest.test_case "dense_smm" `Quick test_dense_smm;
          Alcotest.test_case "crossprod" `Quick test_csr_crossprod;
          Alcotest.test_case "weighted crossprod" `Quick test_csr_weighted_crossprod;
          Alcotest.test_case "gather/sub rows" `Quick test_csr_gather_sub_rows;
          Alcotest.test_case "hcat" `Quick test_csr_hcat;
          Alcotest.test_case "col_scatter" `Quick test_csr_col_scatter;
          qc prop_smm;
          qc prop_transpose_involution ] );
      ( "indicator",
        [ Alcotest.test_case "covers all columns" `Quick test_indicator_covers_columns;
          Alcotest.test_case "nnz = rows" `Quick test_indicator_nnz;
          Alcotest.test_case "K·R" `Quick test_indicator_mult;
          Alcotest.test_case "K·R sparse" `Quick test_indicator_mult_csr;
          Alcotest.test_case "Kᵀ·X" `Quick test_indicator_tmult;
          Alcotest.test_case "Kᵀ·X sparse" `Quick test_indicator_tmult_csr;
          Alcotest.test_case "X·K" `Quick test_indicator_xmult;
          Alcotest.test_case "gather/scatter" `Quick test_indicator_gather_scatter;
          Alcotest.test_case "identity" `Quick test_indicator_identity ] );
      ( "coo",
        [ Alcotest.test_case "P·X" `Quick test_coo_mult;
          Alcotest.test_case "P·A sparse" `Quick test_coo_mult_csr ] );
      ( "mat",
        [ Alcotest.test_case "dispatch + storage" `Quick test_mat_dispatch;
          Alcotest.test_case "scalar ops & sparsity" `Quick test_mat_scalar_sparsity;
          Alcotest.test_case "ops agree across reps" `Quick test_mat_ops_agree;
          Alcotest.test_case "hcat mixed" `Quick test_mat_hcat_mixed ] ) ]
