(* The cluster suite (@clustercheck, also plain runtest): qcheck
   properties of the consistent-hash ring, registry replication with
   faults armed on every pull step, and the router against live shard
   servers over loopback TCP — every routed response bitwise-identical
   to a single server's, including scatter-gathered id sets that span
   shards and requests rerouted after a shard dies. When MORPHEUS_BIN
   points at the CLI binary, a SIGKILL chaos storm over real shard
   processes rides along; without it that one case skips. *)

open La
open Sparse
open Morpheus
open Morpheus_serve
open Morpheus_cluster

let qc = QCheck_alcotest.to_alcotest

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let tmpdir prefix =
  incr dir_counter ;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !dir_counter)
  in
  rm_rf d ;
  Sys.mkdir d 0o755 ;
  d

let contains ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ---- endpoint parsing: the transport seam ---- *)

let test_endpoint_parse () =
  let check s expected =
    Alcotest.(check string) s expected (Endpoint.to_string (Endpoint.of_string s))
  in
  (match Endpoint.of_string "127.0.0.1:9000" with
  | Endpoint.Tcp ("127.0.0.1", 9000) -> ()
  | _ -> Alcotest.fail "bare host:port is TCP") ;
  (match Endpoint.of_string "tcp:localhost:80" with
  | Endpoint.Tcp ("localhost", 80) -> ()
  | _ -> Alcotest.fail "tcp: prefix is TCP") ;
  (match Endpoint.of_string "unix:/tmp/x:1" with
  | Endpoint.Unix_path "/tmp/x:1" -> ()
  | _ -> Alcotest.fail "unix: prefix is a path") ;
  (match Endpoint.of_string "/tmp/sock" with
  | Endpoint.Unix_path "/tmp/sock" -> ()
  | _ -> Alcotest.fail "a plain path is a Unix socket") ;
  (* a colon without an all-digit port is still a path *)
  (match Endpoint.of_string "/tmp/odd:name" with
  | Endpoint.Unix_path "/tmp/odd:name" -> ()
  | _ -> Alcotest.fail "non-numeric port stays a path") ;
  check "127.0.0.1:9000" "127.0.0.1:9000" ;
  check "/tmp/sock" "/tmp/sock" ;
  match Endpoint.of_string "tcp:nohost" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "malformed tcp: endpoint accepted"

(* ---- ring properties ---- *)

let probe_keys = List.init 400 (Printf.sprintf "key:%d")

let names_of (n, salt) = List.init n (Printf.sprintf "s%d-%d" salt)

let qcheck_ring_deterministic =
  QCheck.Test.make ~name:"placement ignores insertion order and dups" ~count:60
    QCheck.(pair (int_range 1 8) (int_range 0 999))
    (fun (n, salt) ->
      let names = names_of (n, salt) in
      let a = Ring.create names in
      let b = Ring.create (List.rev names @ names) in
      Ring.members a = Ring.members b
      && List.for_all (fun k -> Ring.lookup a k = Ring.lookup b k) probe_keys)

let qcheck_ring_balance =
  QCheck.Test.make ~name:"ownership within 3x of fair share" ~count:30
    QCheck.(pair (int_range 2 8) (int_range 0 999))
    (fun (n, salt) ->
      let ring = Ring.create (names_of (n, salt)) in
      let samples = 4096 in
      let fair = samples / n in
      List.for_all
        (fun (_, owned) -> owned > fair / 3 && owned < fair * 3)
        (Ring.ownership ring ~samples))

let qcheck_ring_join_minimal =
  QCheck.Test.make ~name:"a join only moves keys onto the joiner" ~count:60
    QCheck.(pair (int_range 1 6) (int_range 0 999))
    (fun (n, salt) ->
      let ring = Ring.create (names_of (n, salt)) in
      let bigger = Ring.add ring "joiner" in
      List.for_all
        (fun k ->
          let before = Ring.lookup ring k and after = Ring.lookup bigger k in
          before = after || after = "joiner")
        probe_keys)

let qcheck_ring_leave_minimal =
  QCheck.Test.make ~name:"a leave only moves the leaver's keys" ~count:60
    QCheck.(pair (int_range 2 6) (int_range 0 999))
    (fun (n, salt) ->
      let names = names_of (n, salt) in
      let ring = Ring.create names in
      let victim = List.hd (Ring.members ring) in
      let smaller = Ring.remove ring victim in
      List.for_all
        (fun k ->
          let before = Ring.lookup ring k in
          if before = victim then Ring.lookup smaller k <> victim
          else Ring.lookup smaller k = before)
        probe_keys)

let qcheck_ring_successors =
  QCheck.Test.make ~name:"successors: owner first, all distinct" ~count:60
    QCheck.(pair (int_range 1 8) (int_range 0 999))
    (fun (n, salt) ->
      let ring = Ring.create (names_of (n, salt)) in
      List.for_all
        (fun k ->
          let succ = Ring.successors ring k in
          List.length succ = n
          && List.hd succ = Ring.lookup ring k
          && List.length (List.sort_uniq compare succ) = n)
        probe_keys)

let test_ring_edges () =
  (match Ring.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty member list accepted") ;
  (match Ring.create ~vnodes:0 [ "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "vnodes=0 accepted") ;
  let one = Ring.create [ "only" ] in
  Alcotest.(check string) "singleton owns everything" "only"
    (Ring.lookup one "anything") ;
  (match Ring.remove one "only" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removed the last member") ;
  (* add is a no-op on an existing member *)
  let r = Ring.create [ "a"; "b" ] in
  Alcotest.(check (list string)) "re-add is a no-op" (Ring.members r)
    (Ring.members (Ring.add r "a"))

(* ---- registry replication ---- *)

let logreg_artifact seed d =
  Artifact.Logreg (Dense.random ~rng:(Rng.of_int seed) d 1)

let test_replicate_sync_once () =
  let root = tmpdir "cluster_repl" in
  let primary = Filename.concat root "primary" in
  let replica = Filename.concat root "replica" in
  ignore (Registry.save ~dir:primary ~name:"alpha" (logreg_artifact 1 4)) ;
  ignore (Registry.save ~dir:primary ~name:"alpha" (logreg_artifact 2 4)) ;
  ignore (Registry.save ~dir:primary ~name:"beta" (logreg_artifact 3 6)) ;
  (match Replicate.sync_once ~primary ~replica with
  | Error e -> Alcotest.failf "sync: %s" e
  | Ok pulled -> Alcotest.(check int) "three versions pulled" 3 (List.length pulled)) ;
  let ids dir =
    List.sort compare
      (List.map (fun e -> e.Registry.id) (Registry.list ~dir))
  in
  Alcotest.(check (list string)) "replica lists the same versions"
    (ids primary) (ids replica) ;
  (* the replica actually serves: latest alpha resolves and loads *)
  (match Registry.load ~dir:replica "alpha" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replica load: %s" e) ;
  (* a second pass is a no-op *)
  (match Replicate.sync_once ~primary ~replica with
  | Ok [] -> ()
  | Ok l -> Alcotest.failf "idempotent sync pulled %d" (List.length l)
  | Error e -> Alcotest.failf "second sync: %s" e) ;
  (* a new primary version flows over on the next pass *)
  ignore (Registry.save ~dir:primary ~name:"beta" (logreg_artifact 4 6)) ;
  match Replicate.sync_once ~primary ~replica with
  | Ok [ id ] -> Alcotest.(check string) "the new version" "beta@v2" id
  | Ok l -> Alcotest.failf "expected 1 pull, got %d" (List.length l)
  | Error e -> Alcotest.failf "third sync: %s" e

let test_replicate_faults_heal () =
  List.iter
    (fun point ->
      let root = tmpdir "cluster_repl_fault" in
      let primary = Filename.concat root "primary" in
      let replica = Filename.concat root "replica" in
      ignore (Registry.save ~dir:primary ~name:"m" (logreg_artifact 7 4)) ;
      Fault.with_config (point ^ "=1.0") (fun () ->
          match Replicate.sync_once ~primary ~replica with
          | Ok _ -> Alcotest.failf "%s: injected pull succeeded" point
          | Error e ->
            if not (contains ~needle:point e) then
              Alcotest.failf "%s: error %S does not name the point" point e) ;
      (* the aborted pull left nothing visible *)
      Alcotest.(check int)
        (point ^ ": no partial version visible")
        0
        (List.length (Registry.list ~dir:replica)) ;
      (* the next fault-free pass heals *)
      (match Replicate.sync_once ~primary ~replica with
      | Ok [ "m@v1" ] -> ()
      | Ok l -> Alcotest.failf "%s: heal pulled %d" point (List.length l)
      | Error e -> Alcotest.failf "%s: heal failed: %s" point e) ;
      match Registry.load ~dir:replica "m" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: healed replica load: %s" point e)
    [ "replicate.list"; "replicate.read"; "replicate.write"; "replicate.commit" ]

let test_replicate_puller () =
  let root = tmpdir "cluster_repl_bg" in
  let primary = Filename.concat root "primary" in
  let replica = Filename.concat root "replica" in
  ignore (Registry.save ~dir:primary ~name:"m" (logreg_artifact 9 4)) ;
  (match Replicate.start ~primary ~replica ~interval:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interval 0 accepted") ;
  let p = Replicate.start ~primary ~replica ~interval:0.02 in
  Fun.protect ~finally:(fun () -> Replicate.stop p)
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec await () =
    if Replicate.pulls p >= 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "background puller pulled nothing"
    else begin
      Thread.delay 0.01 ;
      await ()
    end
  in
  await () ;
  Alcotest.(check int) "replica has the version" 1
    (List.length (Registry.list ~dir:replica))

(* ---- router vs a single server: bitwise identity over TCP ---- *)

let make_data root =
  let g = Rng.of_int 4242 in
  let s = Dense.random ~rng:g 200 3 in
  let r = Dense.random ~rng:g 15 4 in
  let k = Indicator.random ~rng:g ~rows:200 ~cols:15 () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let d = snd (Normalized.dims t) in
  let artifact = Artifact.Logreg (Dense.random ~rng:g d 1) in
  let ds_dir = Filename.concat root "ds" in
  Io.save ~dir:ds_dir t ;
  let reg = Filename.concat root "reg" in
  let entry =
    Registry.save ~dir:reg ~name:"m" ~schema_hash:(Registry.schema_hash t)
      artifact
  in
  (t, d, artifact, ds_dir, reg, entry)

let start_shard reg =
  Server.start
    { (Server.default_config ~registry:reg ~socket:"127.0.0.1:0") with
      Server.handlers = 2;
      max_wait = 1e-3
    }

let shard_addr s = Endpoint.to_string (Server.endpoint s)

(* A router over [n] in-process shards sharing one registry, plus a
   single reference server — [f] gets (router address, single address,
   router handle) and every routed response must render identically to
   the single server's. Block size 4 so a spread id set scatters. *)
let with_cluster ?(n = 3) ~root f =
  let _, d, _, ds_dir, reg, entry = make_data root in
  let shards = List.init n (fun _ -> start_shard reg) in
  let single = start_shard reg in
  let router =
    Router.start
      { (Router.default_config ~listen:"127.0.0.1:0"
           ~shards:
             (List.mapi
                (fun i s -> (Printf.sprintf "shard%d" i, shard_addr s))
                shards)) with
        Router.block = 4;
        handlers = 2;
        breaker_threshold = 2;
        breaker_cooldown = 0.2
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router ;
      List.iter Server.stop shards ;
      Server.stop single)
  @@ fun () ->
  f
    ~routed:(Endpoint.to_string (Router.endpoint router))
    ~single:(shard_addr single) ~router ~shards ~d ~ds_dir ~entry

let wire addr req = Client.with_client ~socket:addr (fun c -> Client.call c req)

let render = function
  | Ok j -> "ok:" ^ Json.to_string j
  | Error (code, msg) -> Printf.sprintf "error:[%s] %s" code msg

let check_identical ~routed ~single name req =
  let a = wire routed req and b = wire single req in
  Alcotest.(check string) (name ^ " matches the single server") (render b)
    (render a)

let score ?deadline_ms model target = Protocol.Score { model; target; deadline_ms }

let test_router_bitwise () =
  let root = tmpdir "cluster_router" in
  with_cluster ~root
  @@ fun ~routed ~single ~router:_ ~shards:_ ~d ~ds_dir ~entry ->
  let rows =
    Array.init 3 (fun i -> Array.init d (fun j -> float_of_int ((i + j) mod 5) /. 5.0))
  in
  check_identical ~routed ~single "score rows" (score "m" (Protocol.Rows rows)) ;
  (* a spread id set: blocks of 4 over 200 rows land on several shards *)
  let spread = Array.init 24 (fun i -> (i * 37) mod 200) in
  check_identical ~routed ~single "scatter-gathered score_ids"
    (score entry.Registry.id (Protocol.Dataset { dataset = ds_dir; ids = spread })) ;
  (* a compact id set: one block, forwarded whole *)
  check_identical ~routed ~single "single-block score_ids"
    (score "m" (Protocol.Dataset { dataset = ds_dir; ids = [| 0; 1; 2; 3 |] })) ;
  (* empty id set *)
  check_identical ~routed ~single "empty score_ids"
    (score "m" (Protocol.Dataset { dataset = ds_dir; ids = [||] })) ;
  let pred =
    match Pred.parse "c0 >= 0.5 && c3 < 0.9" with
    | Ok p -> p
    | Error e -> Alcotest.failf "predicate: %s" e
  in
  check_identical ~routed ~single "score_where"
    (score "m" (Protocol.Dataset_where { dataset = ds_dir; where = pred })) ;
  check_identical ~routed ~single "list_models" Protocol.List_models ;
  (* protocol errors forward verbatim too *)
  check_identical ~routed ~single "unknown model"
    (score "ghost" (Protocol.Rows rows)) ;
  check_identical ~routed ~single "out-of-range id"
    (score "m" (Protocol.Dataset { dataset = ds_dir; ids = [| 100000 |] })) ;
  (* scatter with a bad id still fails like the single server *)
  (match
     wire routed
       (score "m"
          (Protocol.Dataset { dataset = ds_dir; ids = Array.append spread [| 100000 |] }))
   with
  | Error ("rejected", _) -> ()
  | Ok _ -> Alcotest.fail "scattered out-of-range id was scored"
  | Error (code, msg) -> Alcotest.failf "wrong error [%s] %s" code msg) ;
  (* health fans out and aggregates ok *)
  (match wire routed Protocol.Health with
  | Error (code, msg) -> Alcotest.failf "health: [%s] %s" code msg
  | Ok j ->
    Alcotest.(check (option string)) "cluster healthy" (Some "ok")
      (Option.bind (Json.member "status" j) Json.to_str)) ;
  (* the router's stats expose the cluster section with the traffic *)
  match wire routed Protocol.Stats with
  | Error (code, msg) -> Alcotest.failf "stats: [%s] %s" code msg
  | Ok j ->
    let cluster =
      Option.bind (Json.member "stats" j) (Json.member "cluster")
      |> Option.value ~default:Json.Null
    in
    let num k =
      Option.bind (Json.member k cluster) Json.to_int
      |> Option.value ~default:(-1)
    in
    if num "forwarded" < 5 then
      Alcotest.failf "stats: too few forwards (%d)" (num "forwarded") ;
    if num "scattered" < 1 then Alcotest.fail "stats: nothing scattered" ;
    if num "subrequests" <= num "scattered" then
      Alcotest.fail "stats: scatter did not fan out" ;
    let shards_json =
      match Json.member "shards" cluster with
      | Some (Json.Obj fields) -> fields
      | _ -> []
    in
    Alcotest.(check int) "stats lists every shard" 3 (List.length shards_json) ;
    List.iter
      (fun (name, j) ->
        match Option.bind (Json.member "breaker" j) Json.to_str with
        | Some "closed" -> ()
        | s ->
          Alcotest.failf "shard %s breaker is %s" name
            (Option.value ~default:"missing" s))
      shards_json

let test_router_failover () =
  let root = tmpdir "cluster_failover" in
  with_cluster ~root
  @@ fun ~routed ~single ~router ~shards ~d:_ ~ds_dir ~entry ->
  let spread = Array.init 24 (fun i -> (i * 37) mod 200) in
  let req =
    score entry.Registry.id (Protocol.Dataset { dataset = ds_dir; ids = spread })
  in
  let expected = render (wire single req) in
  Alcotest.(check string) "healthy cluster answer" expected
    (render (wire routed req)) ;
  (* kill one shard: every key it owned reroutes, answers unchanged *)
  Server.stop (List.hd shards) ;
  for _ = 1 to 5 do
    Alcotest.(check string) "rerouted answer is bitwise-identical" expected
      (render (wire routed req))
  done ;
  let failovers =
    Json.member "cluster" (Router.stats router)
    |> Fun.flip Option.bind (Json.member "failovers")
    |> Fun.flip Option.bind Json.to_int
    |> Option.value ~default:0
  in
  if failovers < 1 then Alcotest.fail "no failover was counted" ;
  (* health degrades but the cluster still answers *)
  match wire routed Protocol.Health with
  | Error (code, msg) -> Alcotest.failf "health: [%s] %s" code msg
  | Ok j ->
    Alcotest.(check (option string)) "degraded, not down" (Some "degraded")
      (Option.bind (Json.member "status" j) Json.to_str)

(* ---- process-level chaos: SIGKILL a shard mid-storm ----

   Real shard processes (the CLI binary from MORPHEUS_BIN) over
   loopback TCP, an in-process router over them, a storm of
   scatter-gathered requests with one shard SIGKILLed midway: every
   accepted response must be bitwise-identical to direct in-process
   scoring. Skips when MORPHEUS_BIN is not set (the @clustercheck
   alias sets it). *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd)
  @@ fun () ->
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) ;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> Alcotest.fail "no port bound"

let spawn_shard bin ~reg ~port =
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close devnull)
  @@ fun () ->
  let pid =
    Unix.create_process bin
      [| bin; "serve"; "--registry"; reg; "--listen"; addr; "--handlers"; "2";
         "--max-wait-ms"; "1"
      |]
      Unix.stdin devnull devnull
  in
  (pid, addr)

let await_healthy addr =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Client.health ~socket:addr with
    | Ok _ -> ()
    | Error _ | (exception Unix.Unix_error _) ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "shard %s never became healthy" addr
      else begin
        Thread.delay 0.05 ;
        go ()
      end
  in
  go ()

let test_sigkill_chaos () =
  match Sys.getenv_opt "MORPHEUS_BIN" with
  | None | Some "" ->
    print_endline "sigkill chaos: skipped (MORPHEUS_BIN not set)"
  | Some bin ->
    let root = tmpdir "cluster_sigkill" in
    let t, _, artifact, ds_dir, reg, entry = make_data root in
    let procs =
      List.init 3 (fun _ -> spawn_shard bin ~reg ~port:(free_port ()))
    in
    let kill_all signal =
      List.iter (fun (pid, _) -> try Unix.kill pid signal with _ -> ()) procs
    in
    Fun.protect
      ~finally:(fun () ->
        kill_all Sys.sigkill ;
        List.iter (fun (pid, _) -> try ignore (Unix.waitpid [] pid) with _ -> ()) procs)
    @@ fun () ->
    List.iter (fun (_, addr) -> await_healthy addr) procs ;
    let router =
      Router.start
        { (Router.default_config ~listen:"127.0.0.1:0"
             ~shards:
               (List.mapi
                  (fun i (_, addr) -> (Printf.sprintf "shard%d" i, addr))
                  procs)) with
          Router.block = 4;
          handlers = 2;
          breaker_threshold = 2;
          breaker_cooldown = 0.1
        }
    in
    Fun.protect ~finally:(fun () -> Router.stop router)
    @@ fun () ->
    let routed = Endpoint.to_string (Router.endpoint router) in
    let batches =
      Array.init 30 (fun b -> Array.init 8 (fun i -> ((13 * b) + (29 * i)) mod 200))
    in
    let expected =
      Array.map
        (fun ids ->
          Artifact.score_normalized artifact (Normalized.select_rows t ids))
        batches
    in
    let policy =
      { Client.default_retry with
        attempts = 10;
        base_backoff = 5e-3;
        max_backoff = 0.1;
        budget = 30.0;
        retry_codes =
          "unavailable" :: "rejected" :: Client.default_retry.Client.retry_codes
      }
    in
    let victim, _ = List.hd procs in
    Array.iteri
      (fun b ids ->
        if b = 10 then Unix.kill victim Sys.sigkill ;
        match
          Client.score_ids_retry ~policy ~socket:routed
            ~model:entry.Registry.id ~dataset:ds_dir ids
        with
        | Error (code, msg) -> Alcotest.failf "batch %d: [%s] %s" b code msg
        | Ok preds ->
          if preds <> expected.(b) then
            Alcotest.failf
              "batch %d: rerouted answer differs from direct scoring" b)
      batches ;
    (* the storm crossed the kill: the router failed over *)
    let failovers =
      Json.member "cluster" (Router.stats router)
      |> Fun.flip Option.bind (Json.member "failovers")
      |> Fun.flip Option.bind Json.to_int
      |> Option.value ~default:0
    in
    if failovers < 1 then Alcotest.fail "SIGKILL caused no failover" ;
    (* survivors shut down gracefully *)
    kill_all Sys.sigterm

let () =
  Alcotest.run "cluster"
    [ ( "endpoint",
        [ Alcotest.test_case "parsing both transports" `Quick test_endpoint_parse ] );
      ( "ring",
        [ qc qcheck_ring_deterministic;
          qc qcheck_ring_balance;
          qc qcheck_ring_join_minimal;
          qc qcheck_ring_leave_minimal;
          qc qcheck_ring_successors;
          Alcotest.test_case "edges" `Quick test_ring_edges ] );
      ( "replicate",
        [ Alcotest.test_case "pull + idempotence" `Quick test_replicate_sync_once;
          Alcotest.test_case "faults abort then heal" `Quick
            test_replicate_faults_heal;
          Alcotest.test_case "background puller" `Quick test_replicate_puller ] );
      ( "router",
        [ Alcotest.test_case "bitwise identity vs single server" `Quick
            test_router_bitwise;
          Alcotest.test_case "failover after shard death" `Quick
            test_router_failover ] );
      ( "chaos",
        [ Alcotest.test_case "SIGKILL a shard mid-storm" `Quick
            test_sigkill_chaos ] )
    ]
