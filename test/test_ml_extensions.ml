(* Tests for the ML-layer extensions: row subsetting of normalized
   matrices, the GLM family functor, factorized mini-batch SGD
   (footnote 2's future work), k-fold cross-validation, and normalized-
   matrix persistence. *)

open La
open Sparse
open Morpheus
open Ml_algs
open Test_support

let check_close = Gen.check_close

(* ---- Normalized.select_rows ---- *)

let test_select_rows_matches_dense () =
  List.iter
    (fun shape ->
      let t = Gen.normalized ~seed:40 shape in
      let n = Normalized.rows t in
      let rng = Rng.of_int 41 in
      (* includes duplicates and reordering *)
      let idx = Array.init (n + 3) (fun _ -> Rng.int rng n) in
      let m = Gen.ground_truth t in
      let expected =
        Dense.init (Array.length idx) (Dense.cols m) (fun i j ->
            Dense.get m idx.(i) j)
      in
      let got = Gen.ground_truth (Normalized.select_rows t idx) in
      check_close
        (Printf.sprintf "select_rows %s" (Gen.shape_name shape))
        expected got)
    Gen.shapes

let test_select_rows_shares_attributes () =
  let t = Gen.normalized ~seed:42 Gen.Pkfk in
  let sub = Normalized.select_rows t [| 0; 1; 2 |] in
  (* physical sharing of R *)
  List.iter2
    (fun (p : Normalized.part) (p' : Normalized.part) ->
      Alcotest.(check bool) "R shared" true (p.Normalized.mat == p'.Normalized.mat))
    (Normalized.parts t) (Normalized.parts sub)

let test_select_rows_rewrites () =
  let t = Gen.normalized ~seed:43 Gen.Star2 in
  let idx = [| 1; 3; 5; 7; 7; 2 |] in
  let sub = Normalized.select_rows t idx in
  let m = Gen.ground_truth sub in
  let x = Dense.random ~rng:(Rng.of_int 44) (Normalized.cols sub) 2 in
  check_close "subset lmm" (Blas.gemm m x) (Rewrite.lmm sub x) ;
  check_close "subset crossprod" (Blas.crossprod m) (Rewrite.crossprod sub)

let test_select_rows_bounds () =
  let t = Gen.normalized ~seed:45 Gen.Pkfk in
  Alcotest.(check bool) "oob rejected" true
    (try
       ignore (Normalized.select_rows t [| Normalized.rows t |]) ;
       false
     with Invalid_argument _ -> true)

(* ---- GLM functor ---- *)

module FG = Glm.Make (Factorized_matrix)
module MG = Glm.Make (Regular_matrix)

let glm_dataset ?(seed = 50) family =
  let rng = Rng.of_int seed in
  let ns = 150 and nr = 10 and ds = 3 and dr = 3 in
  let s = Dense.gaussian ~rng ns ds in
  let r = Dense.gaussian ~rng nr dr in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let m = Materialize.to_dense t in
  let w_true = Dense.scale 0.4 (Dense.gaussian ~rng (ds + dr) 1) in
  let scores = Blas.gemm m w_true in
  let y =
    match family with
    | Glm.Logistic | Glm.Hinge ->
      Dense.map (fun s -> if s >= 0.0 then 1.0 else -1.0) scores
    | Glm.Gaussian -> Dense.add scores (Dense.scale 0.05 (Dense.gaussian ~rng ns 1))
    | Glm.Poisson ->
      (* deterministic "counts": round exp(score) *)
      Dense.map (fun s -> Float.round (Stdlib.exp s)) scores
  in
  (t, m, y)

let test_glm_f_equals_m () =
  List.iter
    (fun family ->
      let t, m, y = glm_dataset family in
      let f = FG.train ~alpha:1e-3 ~iters:15 ~family t y in
      let g = MG.train ~alpha:1e-3 ~iters:15 ~family (Regular_matrix.of_dense m) y in
      check_close "identical weights" g.MG.w f.FG.w)
    [ Glm.Logistic; Glm.Gaussian; Glm.Poisson ]

let test_glm_loss_decreases () =
  List.iter
    (fun family ->
      let t, _, y = glm_dataset family in
      let m0 = { FG.family; w = Dense.create (Normalized.cols t) 1 } in
      let trained = FG.train ~alpha:5e-4 ~iters:40 ~family t y in
      let l0 = FG.loss t m0 y and l1 = FG.loss t trained y in
      Alcotest.(check bool)
        (Printf.sprintf "loss %.4f -> %.4f" l0 l1)
        true (l1 < l0))
    [ Glm.Logistic; Glm.Gaussian; Glm.Poisson ]

let test_glm_gaussian_matches_linreg_gd () =
  let t, _, y = glm_dataset Glm.Gaussian in
  let module FL = Linreg.Make (Factorized_matrix) in
  let w_linreg = FL.train_gd ~alpha:1e-3 ~iters:10 t y in
  let w_glm = (FG.train ~alpha:1e-3 ~iters:10 ~family:Glm.Gaussian t y).FG.w in
  check_close "Gaussian GLM = linear regression GD" w_linreg w_glm

let test_glm_logistic_matches_logreg () =
  let t, _, y = glm_dataset Glm.Logistic in
  let module FLog = Logreg.Make (Factorized_matrix) in
  let logreg = FLog.train ~alpha:1e-3 ~iters:10 t y in
  let glm = FG.train ~alpha:1e-3 ~iters:10 ~family:Glm.Logistic t y in
  check_close "Logistic GLM = Logreg" logreg.FLog.w glm.FG.w

let test_glm_predict_mean_ranges () =
  let t, _, y = glm_dataset Glm.Logistic in
  let model = FG.train ~alpha:1e-3 ~iters:20 ~family:Glm.Logistic t y in
  let mean = FG.predict_mean t model in
  Dense.iteri
    (fun _ _ p -> Alcotest.(check bool) "probability" true (p >= 0.0 && p <= 1.0))
    mean

(* ---- mini-batch SGD ---- *)

let test_minibatch_learns () =
  let t, _, y = glm_dataset ~seed:51 Glm.Logistic in
  let config = { Minibatch.default_config with epochs = 20; alpha = 0.5; batch_size = 32 } in
  let w = Minibatch.train ~config ~family:Glm.Logistic t y in
  let model = { FG.family = Glm.Logistic; w } in
  let l0 = FG.loss t { FG.family = Glm.Logistic; w = Dense.create (Normalized.cols t) 1 } y in
  let l = FG.loss t model y in
  Alcotest.(check bool)
    (Printf.sprintf "SGD loss %.4f -> %.4f" l0 l)
    true (l < l0)

let test_minibatch_deterministic () =
  let t, _, y = glm_dataset ~seed:52 Glm.Gaussian in
  let w1 = Minibatch.train ~family:Glm.Gaussian t y in
  let w2 = Minibatch.train ~family:Glm.Gaussian t y in
  check_close "same seed, same weights" w1 w2

(* ---- cross-validation ---- *)

let test_fold_indices_partition () =
  let folds = Model_selection.fold_indices ~seed:1 ~k:4 22 in
  Alcotest.(check int) "k folds" 4 (List.length folds) ;
  let all = Array.concat folds in
  Alcotest.(check int) "covers all rows" 22 (Array.length all) ;
  let sorted = Array.copy all in
  Array.sort compare sorted ;
  Array.iteri (fun i v -> Alcotest.(check int) "partition" i v) sorted

let test_cross_validate_ridge () =
  let t, m, y = glm_dataset ~seed:53 Glm.Gaussian in
  ignore m ;
  let best, best_score, scored =
    Model_selection.select_ridge_lambda ~seed:2 ~k:4
      ~lambdas:[ 0.01; 1.0; 1000.0 ] t y
  in
  Alcotest.(check int) "all candidates scored" 3 (List.length scored) ;
  Alcotest.(check bool) "best is finite" true (Float.is_finite best_score) ;
  (* data is near-noiseless linear: tiny λ must beat huge λ *)
  let score_of l = List.assoc l scored in
  Alcotest.(check bool) "small λ beats huge λ" true
    (score_of 0.01 < score_of 1000.0) ;
  Alcotest.(check bool) "best not the huge λ" true (best <> 1000.0)

let test_cv_fold_models_match_materialized () =
  (* each fold's factorized fit equals the same fit on materialized data *)
  let t, _, y = glm_dataset ~seed:54 Glm.Gaussian in
  let folds = Model_selection.fold_indices ~seed:3 ~k:3 (Normalized.rows t) in
  let (t_train, y_train), _ = Model_selection.split t y folds 0 in
  let module FL = Linreg.Make (Factorized_matrix) in
  let module ML = Linreg.Make (Regular_matrix) in
  let wf = FL.train_gd ~alpha:1e-3 ~iters:10 t_train y_train in
  let wm =
    ML.train_gd ~alpha:1e-3 ~iters:10
      (Materialize.to_regular t_train)
      y_train
  in
  check_close "fold training agrees" wm wf

(* ---- persistence ---- *)

let tmpdir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "morpheus_io_%d_%d" (Unix.getpid ()) (Random.int 1000000))

let test_io_roundtrip () =
  List.iter
    (fun (shape, sparse) ->
      let t = Gen.normalized ~seed:60 ~sparse shape in
      let dir = tmpdir () in
      Fun.protect
        ~finally:(fun () -> Io.delete ~dir)
        (fun () ->
          Io.save ~dir t ;
          let t' = Io.load ~dir in
          check_close
            (Printf.sprintf "roundtrip %s sparse=%b" (Gen.shape_name shape) sparse)
            (Gen.ground_truth t) (Gen.ground_truth t') ;
          (* representation preserved *)
          List.iter2
            (fun (p : Normalized.part) (p' : Normalized.part) ->
              Alcotest.(check bool) "sparsity kept"
                (Mat.is_sparse p.Normalized.mat)
                (Mat.is_sparse p'.Normalized.mat))
            (Normalized.parts t) (Normalized.parts t')))
    [ (Gen.Pkfk, false); (Gen.Star3, true); (Gen.Mn, false) ]

let test_io_rejects_garbage () =
  let dir = tmpdir () in
  Sys.mkdir dir 0o755 ;
  Fun.protect
    ~finally:(fun () -> Io.delete ~dir)
    (fun () ->
      Alcotest.(check bool) "missing meta" true
        (try
           ignore (Io.load ~dir) ;
           false
         with Invalid_argument _ -> true))

let test_io_rejects_transposed () =
  let t = Rewrite.transpose (Gen.normalized ~seed:61 Gen.Pkfk) in
  Alcotest.(check bool) "transposed rejected" true
    (try
       Io.save ~dir:(tmpdir ()) t ;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "ml-extensions"
    [ ( "select-rows",
        [ Alcotest.test_case "matches dense gather" `Quick test_select_rows_matches_dense;
          Alcotest.test_case "shares attribute matrices" `Quick test_select_rows_shares_attributes;
          Alcotest.test_case "rewrites on subsets" `Quick test_select_rows_rewrites;
          Alcotest.test_case "bounds checked" `Quick test_select_rows_bounds ] );
      ( "glm",
        [ Alcotest.test_case "F = M (all families)" `Quick test_glm_f_equals_m;
          Alcotest.test_case "loss decreases" `Quick test_glm_loss_decreases;
          Alcotest.test_case "Gaussian = linreg GD" `Quick test_glm_gaussian_matches_linreg_gd;
          Alcotest.test_case "Logistic = Logreg" `Quick test_glm_logistic_matches_logreg;
          Alcotest.test_case "predict_mean ranges" `Quick test_glm_predict_mean_ranges ] );
      ( "minibatch-sgd",
        [ Alcotest.test_case "learns" `Quick test_minibatch_learns;
          Alcotest.test_case "deterministic" `Quick test_minibatch_deterministic ] );
      ( "cross-validation",
        [ Alcotest.test_case "folds partition" `Quick test_fold_indices_partition;
          Alcotest.test_case "ridge selection" `Quick test_cross_validate_ridge;
          Alcotest.test_case "fold fits match materialized" `Quick test_cv_fold_models_match_materialized ] );
      ( "persistence",
        [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "rejects transposed" `Quick test_io_rejects_transposed ] ) ]
