(* Tests for the execution engine: the domain pool, the Exec
   combinators, and the contract the whole kernel stack is built on —
   the parallel backend is bitwise-identical to the sequential one, at
   any domain count, including the flop counters. *)

open La
open Sparse
open Morpheus

let check_bitwise msg a b =
  if Dense.to_arrays a <> Dense.to_arrays b then
    Alcotest.failf "%s: backends differ (max|diff| = %g)" msg
      (Dense.max_abs_diff a b)

let check_farray_bitwise msg (a : float array) b =
  Alcotest.(check bool) msg true (a = b)

let rng () = Rng.of_int 2718

(* Fresh 4-domain backend per test; shut down afterwards so parked
   worker domains never outlive a test. *)
let with_par4 f =
  let e = Exec.make 4 in
  Fun.protect ~finally:(fun () -> Exec.shutdown e) (fun () -> f e)

(* ---- pool ---- *)

let test_pool_runs_every_task () =
  let pool = Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 3 (Pool.size pool) ;
      let hits = Array.make 100 0 in
      Pool.run pool ~njobs:100 (fun i -> hits.(i) <- hits.(i) + 1) ;
      Alcotest.(check bool) "each task ran once" true
        (Array.for_all (( = ) 1) hits) ;
      (* the pool is reusable for a second batch *)
      Pool.run pool ~njobs:100 (fun i -> hits.(i) <- hits.(i) + 1) ;
      Alcotest.(check bool) "second batch" true (Array.for_all (( = ) 2) hits))

let test_pool_propagates_exceptions () =
  let pool = Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "task failure reaches the caller"
        (Failure "task 5") (fun () ->
          Pool.run pool ~njobs:16 (fun i ->
              if i = 5 then failwith "task 5")) ;
      (* a failed batch must not poison the pool *)
      let ok = ref 0 in
      Pool.run pool ~njobs:8 (fun _ -> incr ok) ;
      Alcotest.(check int) "pool survives a failure" 8 !ok)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create 2 in
  Pool.run pool ~njobs:4 (fun _ -> ()) ;
  Pool.shutdown pool ;
  Pool.shutdown pool

(* ---- combinators ---- *)

let test_parallel_for_partitions () =
  with_par4 (fun e ->
      let hits = Array.make 10_000 0 in
      Exec.parallel_for ~min_chunk:16 e ~lo:0 ~hi:10_000 (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done) ;
      Alcotest.(check bool) "disjoint cover" true (Array.for_all (( = ) 1) hits) ;
      (* empty range: body never runs *)
      Exec.parallel_for e ~lo:3 ~hi:3 (fun _ _ -> Alcotest.fail "ran on empty"))

let test_reduce_canonical_grid () =
  let v = Array.init 10_000 (fun i -> sin (float_of_int i)) in
  let sum lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. v.(i)
    done ;
    !s
  in
  let on e = Exec.reduce ~grain:64 e ~lo:0 ~hi:10_000 ~body:sum ~combine:( +. ) in
  with_par4 (fun e ->
      Alcotest.(check (float 0.0)) "same grid, same float ops" (on Exec.seq) (on e)) ;
  Alcotest.check_raises "empty range"
    (Invalid_argument "Exec.reduce: empty range") (fun () ->
      ignore (Exec.reduce Exec.seq ~lo:0 ~hi:0 ~body:sum ~combine:( +. )))

let test_make_and_name () =
  Alcotest.(check string) "make 1 is seq" "seq" (Exec.name (Exec.make 1)) ;
  Alcotest.(check string) "make 0 is seq" "seq" (Exec.name (Exec.make 0)) ;
  let e = Exec.make 4 in
  Alcotest.(check string) "par name" "par:4" (Exec.name e) ;
  Alcotest.(check int) "domains" 4 (Exec.domains e) ;
  Alcotest.check_raises "par 0 rejected"
    (Invalid_argument "Exec.par: domains must be >= 1") (fun () ->
      ignore (Exec.par ~domains:0))

let test_exception_escapes_parallel_for () =
  with_par4 (fun e ->
      Alcotest.check_raises "body exception propagates" (Failure "body")
        (fun () ->
          Exec.parallel_for ~min_chunk:1 e ~lo:0 ~hi:64 (fun lo _ ->
              if lo = 0 then failwith "body")))

let test_shutdown_then_reuse () =
  let e = Exec.make 4 in
  let a = Dense.random ~rng:(rng ()) 500 30 in
  let before = Blas.crossprod ~exec:e a in
  Exec.shutdown e ;
  (* the pool restarts lazily on next use *)
  let after = Blas.crossprod ~exec:e a in
  Exec.shutdown e ;
  check_bitwise "restart preserves results" before after

(* ---- bitwise determinism: dense kernels ---- *)

(* Sizes chosen so every kernel's range really splits into several
   chunks (parallel_for: len/min_chunk > 1; reduce: len > 2048). *)
let test_dense_kernels_bitwise () =
  let g = rng () in
  let a = Dense.random ~rng:g 5_000 40 in
  let b = Dense.random ~rng:g 40 7 in
  let p = Dense.random ~rng:g 5_000 3 in
  let w = Array.init 5_000 (fun i -> float_of_int (1 + (i mod 5))) in
  let v = Array.init 40 (fun i -> cos (float_of_int i)) in
  let narrow = Dense.random ~rng:g 300 40 in
  with_par4 (fun e ->
      check_bitwise "gemm" (Blas.gemm ~exec:Exec.seq a b) (Blas.gemm ~exec:e a b) ;
      check_bitwise "tgemm" (Blas.tgemm ~exec:Exec.seq a p)
        (Blas.tgemm ~exec:e a p) ;
      check_bitwise "gemm_nt"
        (Blas.gemm_nt ~exec:Exec.seq narrow a)
        (Blas.gemm_nt ~exec:e narrow a) ;
      check_bitwise "crossprod" (Blas.crossprod ~exec:Exec.seq a)
        (Blas.crossprod ~exec:e a) ;
      check_bitwise "weighted_crossprod"
        (Blas.weighted_crossprod ~exec:Exec.seq a w)
        (Blas.weighted_crossprod ~exec:e a w) ;
      check_bitwise "tcrossprod"
        (Blas.tcrossprod ~exec:Exec.seq narrow)
        (Blas.tcrossprod ~exec:e narrow) ;
      check_farray_bitwise "gemv" (Blas.gemv ~exec:Exec.seq a v)
        (Blas.gemv ~exec:e a v))

(* ---- bitwise determinism: sparse kernels ---- *)

let test_sparse_kernels_bitwise () =
  let g = rng () in
  let c =
    match Mat.random_sparse ~rng:g ~density:0.1 5_000 40 with
    | Mat.S c -> c
    | Mat.D _ -> Alcotest.fail "expected sparse"
  in
  let x = Dense.random ~rng:g 40 6 in
  let p = Dense.random ~rng:g 5_000 3 in
  let y = Dense.random ~rng:g 300 5_000 in
  let w = Array.init 5_000 (fun i -> float_of_int (1 + (i mod 4))) in
  with_par4 (fun e ->
      check_bitwise "smm" (Csr.smm ~exec:Exec.seq c x) (Csr.smm ~exec:e c x) ;
      check_bitwise "t_smm" (Csr.t_smm ~exec:Exec.seq c p)
        (Csr.t_smm ~exec:e c p) ;
      check_bitwise "dense_smm"
        (Csr.dense_smm ~exec:Exec.seq y c)
        (Csr.dense_smm ~exec:e y c) ;
      check_bitwise "crossprod" (Csr.crossprod ~exec:Exec.seq c)
        (Csr.crossprod ~exec:e c) ;
      check_bitwise "weighted_crossprod"
        (Csr.weighted_crossprod ~exec:Exec.seq c w)
        (Csr.weighted_crossprod ~exec:e c w) ;
      check_bitwise "crossprod_csr"
        (Csr.to_dense (Csr.crossprod_csr ~exec:Exec.seq c))
        (Csr.to_dense (Csr.crossprod_csr ~exec:e c)) ;
      check_bitwise "crossprod_csr weighted"
        (Csr.to_dense (Csr.crossprod_csr ~exec:Exec.seq ~weights:w c))
        (Csr.to_dense (Csr.crossprod_csr ~exec:e ~weights:w c)))

(* ---- in-place kernels: pure-counterpart identity + determinism ---- *)

(* Every [_into]/accumulate kernel must be bitwise-identical to its
   allocating counterpart (beta = 0 into a fresh destination IS the
   pure kernel), and, like every other kernel, bitwise-identical
   between the sequential and parallel backends at any beta. *)
let test_dense_into_kernels_bitwise () =
  let g = rng () in
  let a = Dense.random ~rng:g 5_000 40 in
  let b = Dense.random ~rng:g 40 7 in
  let x = Dense.random ~rng:g 5_000 40 in
  let y = Dense.random ~rng:g 5_000 40 in
  let c0 = Dense.random ~rng:g 5_000 7 in
  let v = Array.init 40 (fun i -> cos (float_of_int i)) in
  let y0 = Array.init 5_000 (fun i -> sin (float_of_int i)) in
  with_par4 (fun e ->
      let c = Dense.create 5_000 7 in
      Blas.gemm_into ~exec:e a b ~c ;
      check_bitwise "gemm_into beta=0 = gemm" (Blas.gemm ~exec:Exec.seq a b) c ;
      List.iter
        (fun beta ->
          let run exec =
            let c = Dense.copy c0 in
            Blas.gemm_into ~exec ~beta a b ~c ;
            c
          in
          check_bitwise
            (Printf.sprintf "gemm_into beta=%g par = seq" beta)
            (run Exec.seq) (run e))
        [ 0.0; 1.0; 2.5 ] ;
      let yv = Array.make 5_000 nan in
      Blas.gemv_into ~exec:e a v ~y:yv ;
      check_farray_bitwise "gemv_into beta=0 = gemv"
        (Blas.gemv ~exec:Exec.seq a v)
        yv ;
      List.iter
        (fun beta ->
          let run exec =
            let y = Array.copy y0 in
            Blas.gemv_into ~exec ~beta a v ~y ;
            y
          in
          check_farray_bitwise
            (Printf.sprintf "gemv_into beta=%g par = seq" beta)
            (run Exec.seq) (run e))
        [ 0.0; 1.0; 2.5 ] ;
      (* axpy folds scale-then-add into one pass over the same
         expression, so it must match the two-kernel composition *)
      let t = Dense.copy y in
      Dense.axpy ~exec:e ~alpha:0.37 x t ;
      check_bitwise "axpy = add y (scale alpha x)"
        (Dense.add y (Dense.scale 0.37 x))
        t ;
      let s = Dense.create 5_000 40 in
      Dense.scale_into ~exec:e 1.7 x ~out:s ;
      check_bitwise "scale_into = scale" (Dense.scale 1.7 x) s ;
      let aliased = Dense.copy x in
      Dense.scale_into ~exec:e 1.7 aliased ~out:aliased ;
      check_bitwise "scale_into, out aliasing src" (Dense.scale 1.7 x) aliased ;
      let m = Dense.create 5_000 40 in
      Dense.map2_into ~exec:e ( -. ) x y ~out:m ;
      check_bitwise "map2_into (-.) = sub" (Dense.sub x y) m ;
      let m2 = Dense.copy x in
      Dense.map2_into ~exec:e ( -. ) m2 y ~out:m2 ;
      check_bitwise "map2_into, out aliasing a" (Dense.sub x y) m2)

let test_sparse_into_kernels_bitwise () =
  let g = rng () in
  let c =
    match Mat.random_sparse ~rng:g ~density:0.1 5_000 40 with
    | Mat.S c -> c
    | Mat.D _ -> Alcotest.fail "expected sparse"
  in
  let x = Dense.random ~rng:g 40 6 in
  let x1 = Dense.random ~rng:g 40 1 in
  let c0 = Dense.random ~rng:g 5_000 6 in
  let c1 = Dense.random ~rng:g 5_000 1 in
  with_par4 (fun e ->
      let out = Dense.create 5_000 6 in
      Csr.smm_into ~exec:e c x ~c:out ;
      check_bitwise "smm_into beta=0 = smm" (Csr.smm ~exec:Exec.seq c x) out ;
      (* the k = 1 kernel takes a separate register-accumulator path *)
      let out1 = Dense.create 5_000 1 in
      Csr.smm_into ~exec:e c x1 ~c:out1 ;
      check_bitwise "smm_into k=1 beta=0 = smm"
        (Csr.smm ~exec:Exec.seq c x1)
        out1 ;
      List.iter
        (fun beta ->
          let run dst rhs exec =
            let o = Dense.copy dst in
            Csr.smm_into ~exec ~beta c rhs ~c:o ;
            o
          in
          check_bitwise
            (Printf.sprintf "smm_into beta=%g par = seq" beta)
            (run c0 x Exec.seq) (run c0 x e) ;
          check_bitwise
            (Printf.sprintf "smm_into k=1 beta=%g par = seq" beta)
            (run c1 x1 Exec.seq) (run c1 x1 e))
        [ 0.0; 1.0; 2.5 ])

(* ---- bitwise determinism: rewrites through the default backend ---- *)

let pkfk_case () =
  let g = rng () in
  let ns = 4_000 and nr = 40 and ds = 6 and dr = 8 in
  let s = Dense.random ~rng:g ns ds in
  let r = Dense.random ~rng:g nr dr in
  let k = Indicator.random ~rng:g ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r)

(* The rewrite layer has no [?exec]: it reaches the backend through the
   process default, exactly as the Data_matrix functors do. *)
let with_default e f =
  Exec.set_default e ;
  Fun.protect ~finally:(fun () -> Exec.set_default Exec.seq) f

let test_rewrites_bitwise_via_default () =
  let t = pkfk_case () in
  let x = Dense.random ~rng:(Rng.of_int 5) (Normalized.cols t) 2 in
  let p = Dense.random ~rng:(Rng.of_int 6) (Normalized.rows t) 2 in
  with_par4 (fun e ->
      let seq_lmm = with_default Exec.seq (fun () -> Rewrite.lmm t x) in
      let seq_tlmm = with_default Exec.seq (fun () -> Rewrite.tlmm t p) in
      let seq_cp = with_default Exec.seq (fun () -> Rewrite.crossprod t) in
      check_bitwise "Rewrite.lmm" seq_lmm
        (with_default e (fun () -> Rewrite.lmm t x)) ;
      check_bitwise "Rewrite.tlmm" seq_tlmm
        (with_default e (fun () -> Rewrite.tlmm t p)) ;
      check_bitwise "Rewrite.crossprod" seq_cp
        (with_default e (fun () -> Rewrite.crossprod t)))

(* ---- flop counters ---- *)

let test_flops_match_across_backends () =
  let a = Dense.random ~rng:(rng ()) 5_000 40 in
  let b = Dense.random ~rng:(rng ()) 40 7 in
  with_par4 (fun e ->
      let flops exec =
        Flops.reset () ;
        ignore (Blas.gemm ~exec a b) ;
        ignore (Blas.crossprod ~exec a) ;
        Flops.get ()
      in
      let fs = flops Exec.seq in
      Alcotest.(check (float 0.0)) "flops backend-independent" fs (flops e) ;
      Alcotest.(check bool) "flops nonzero" true (fs > 0.0))

(* qcheck: any shape, gemm is bitwise-identical and flop-identical
   across backends. *)
let prop_gemm_backends =
  QCheck.Test.make ~count:25
    ~name:"qcheck: gemm par = gemm seq (values and flops), any shape"
    QCheck.(triple (int_range 1 400) (int_range 1 30) (int_range 1 8))
    (fun (n, d, k) ->
      let g = Rng.of_int ((n * 31) + (d * 7) + k) in
      let a = Dense.random ~rng:g n d in
      let b = Dense.random ~rng:g d k in
      let e = Exec.make 4 in
      Fun.protect
        ~finally:(fun () -> Exec.shutdown e)
        (fun () ->
          Flops.reset () ;
          let cs = Blas.gemm ~exec:Exec.seq a b in
          let fs = Flops.get () in
          Flops.reset () ;
          let cp = Blas.gemm ~exec:e a b in
          let fp = Flops.get () in
          Dense.to_arrays cs = Dense.to_arrays cp && fs = fp))

let () =
  Alcotest.run "exec"
    [ ( "pool",
        [ Alcotest.test_case "runs every task" `Quick test_pool_runs_every_task;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exceptions;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent ] );
      ( "combinators",
        [ Alcotest.test_case "parallel_for partitions" `Quick
            test_parallel_for_partitions;
          Alcotest.test_case "reduce canonical grid" `Quick
            test_reduce_canonical_grid;
          Alcotest.test_case "make / name" `Quick test_make_and_name;
          Alcotest.test_case "exceptions escape" `Quick
            test_exception_escapes_parallel_for;
          Alcotest.test_case "shutdown then reuse" `Quick
            test_shutdown_then_reuse ] );
      ( "determinism",
        [ Alcotest.test_case "dense kernels bitwise" `Quick
            test_dense_kernels_bitwise;
          Alcotest.test_case "sparse kernels bitwise" `Quick
            test_sparse_kernels_bitwise;
          Alcotest.test_case "dense _into kernels bitwise" `Quick
            test_dense_into_kernels_bitwise;
          Alcotest.test_case "sparse _into kernels bitwise" `Quick
            test_sparse_into_kernels_bitwise;
          Alcotest.test_case "rewrites via default backend" `Quick
            test_rewrites_bitwise_via_default ] );
      ( "flops",
        [ Alcotest.test_case "backend-independent" `Quick
            test_flops_match_across_backends;
          QCheck_alcotest.to_alcotest prop_gemm_backends ] ) ]
