(* The chaos suite (@chaos alias, also part of plain runtest): the
   fault-injection framework itself, numeric guards, checkpoints and
   bitwise resume, the circuit breaker, registry crash recovery,
   client retries, and end-to-end serving under injected faults. The
   invariants throughout: no wrong answers (responses bitwise-match a
   fault-free run), no lost or duplicated requests, no process death. *)

open La
open Sparse
open Morpheus
open Ore
open Morpheus_serve
module Ck = Ml_algs.Checkpoint
module F = Ml_algs.Algorithms.Factorized

exception Crash (* the simulated kill signal for resume tests *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path) ;
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let tmpdir prefix =
  incr dir_counter ;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !dir_counter)
  in
  rm_rf d ;
  Sys.mkdir d 0o755 ;
  d

let contains ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let bitwise msg a b =
  if Dense.data a <> Dense.data b then
    Alcotest.failf "%s: not bitwise-identical (max|diff| = %g)" msg
      (Dense.max_abs_diff a b)

let must_configure spec =
  match Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e

(* small PK-FK dataset with ±1 and numeric targets *)
let dataset () =
  let rng = Rng.of_int 3 in
  let s = Dense.random ~rng 60 3 in
  let r = Dense.random ~rng 8 4 in
  let k = Indicator.random ~rng ~rows:60 ~cols:8 () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let y = Dense.init 60 1 (fun i _ -> if i mod 2 = 0 then 1.0 else -1.0) in
  let y_num = Dense.init 60 1 (fun i _ -> float_of_int (i mod 5) /. 5.0) in
  (t, y, y_num)

(* ---- the fault framework itself ---- *)

let fired_pattern spec n =
  must_configure spec ;
  let l =
    List.init n (fun _ ->
        match Fault.point "x" with
        | () -> false
        | exception Fault.Injected _ -> true)
  in
  Fault.disable () ;
  l

let test_fault_determinism () =
  let a = fired_pattern "seed=7,x=0.3" 300 in
  let b = fired_pattern "seed=7,x=0.3" 300 in
  Alcotest.(check (list bool)) "same seed replays identically" a b ;
  let c = fired_pattern "seed=8,x=0.3" 300 in
  if a = c then Alcotest.fail "different seeds fired identically" ;
  let k = List.length (List.filter Fun.id a) in
  if k < 40 || k > 140 then
    Alcotest.failf "p=0.3 over 300 arrivals fired %d times" k

let test_fault_wildcard () =
  Fault.with_config "io.read=0.0,io.*=1.0" (fun () ->
      (* the exact rule comes first, so io.read never fires *)
      Fault.point "io.read" ;
      (match Fault.point "io.write" with
      | () -> Alcotest.fail "wildcard rule did not fire"
      | exception Fault.Injected p ->
        Alcotest.(check string) "payload names the point" "io.write" p) ;
      match Fault.point "server.write" with
      | () -> ()
      | exception Fault.Injected _ -> Alcotest.fail "unmatched point fired")

let test_fault_delay () =
  Fault.with_config "z=1.0:delay20" (fun () ->
      let t0 = Unix.gettimeofday () in
      Fault.point "z" ;
      if Unix.gettimeofday () -. t0 < 0.015 then
        Alcotest.fail "delay action did not sleep")

let test_fault_counters () =
  Fault.with_config "x=1.0" (fun () ->
      Alcotest.(check bool) "enabled" true (Fault.enabled ()) ;
      for _ = 1 to 5 do
        try Fault.point "x" with Fault.Injected _ -> ()
      done ;
      Fault.point "y" ;
      Alcotest.(check int) "hits" 5 (Fault.hits "x") ;
      Alcotest.(check int) "fired" 5 (Fault.fired "x") ;
      Alcotest.(check int) "total" 5 (Fault.total_fired ())) ;
  Alcotest.(check bool) "disabled afterwards" false (Fault.enabled ()) ;
  Alcotest.(check int) "counters reset" 0 (Fault.hits "x")

let test_fault_parse_errors () =
  List.iter
    (fun bad ->
      match Fault.configure bad with
      | Ok () ->
        Fault.disable () ;
        Alcotest.failf "malformed spec %S accepted" bad
      | Error _ -> ())
    [ "nonsense"; "x=1.5"; "x=-0.1"; "x=0.5:explode"; "x=0.5:delayx"; "seed=q" ]

(* ---- numeric guards ---- *)

let test_validate () =
  Alcotest.(check bool) "finite ok" true (Validate.array_ok [| 0.0; -1.5 |]) ;
  Alcotest.(check (option int)) "scan finds first" (Some 1)
    (Validate.scan [| 0.0; Float.nan; infinity |]) ;
  (match Validate.check_array ~stage:"unit" [| 1.0; neg_infinity |] with
  | () -> Alcotest.fail "non-finite passed the guard"
  | exception Validate.Numeric_error i ->
    Alcotest.(check string) "stage" "unit" i.Validate.stage ;
    Alcotest.(check int) "index" 1 i.Validate.index) ;
  let m = Dense.init 2 2 (fun i j -> float_of_int (i + j)) in
  bitwise "check_dense chains" m (Validate.check_dense ~stage:"unit" m)

let test_divergence_guard () =
  let t, _, y_num = dataset () in
  match F.Linreg.train_gd ~alpha:1e12 ~iters:200 t y_num with
  | exception Validate.Numeric_error i ->
    Alcotest.(check string) "stage names the step" "linreg.step"
      i.Validate.stage
  | _ -> Alcotest.fail "divergence was not caught"

let test_nan_dataset_refused () =
  let ds_dir = Filename.concat (tmpdir "chaos_nan_ds") "ds" in
  let rng = Rng.of_int 11 in
  let s = Dense.init 6 2 (fun i j -> if i = 1 && j = 0 then Float.nan else 0.5) in
  let r = Dense.random ~rng 3 2 in
  let k = Indicator.random ~rng ~rows:6 ~cols:3 () in
  let t = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  Io.save ~dir:ds_dir t ;
  match Io.load ~dir:ds_dir with
  | exception Validate.Numeric_error i ->
    if not (contains ~needle:"io.load" i.Validate.stage) then
      Alcotest.failf "stage %S does not name the load" i.Validate.stage
  | _ -> Alcotest.fail "NaN dataset loaded without complaint"

let test_nan_model_refused () =
  let reg = Filename.concat (tmpdir "chaos_nan_model") "reg" in
  let w = Dense.of_array ~rows:2 ~cols:1 [| Float.nan; 1.0 |] in
  ignore (Registry.save ~dir:reg ~name:"bad" (Artifact.Logreg w)) ;
  match Registry.load ~dir:reg "bad" with
  | Error msg ->
    if not (contains ~needle:"non-finite" msg) then
      Alcotest.failf "error %S does not name the non-finite value" msg
  | Ok _ -> Alcotest.fail "NaN model loaded without complaint"

(* ---- checkpoints: atomic snapshots, validated loads, bitwise resume ---- *)

let test_checkpoint_roundtrip () =
  let dir = tmpdir "chaos_ck_rt" in
  let path = Filename.concat dir "ck.bin" in
  Alcotest.(check bool) "absent" false (Ck.exists ~path) ;
  let w = Dense.of_array ~rows:2 ~cols:2 [| 1.0; -2.5; 0.0; 4.25 |] in
  let st =
    { Ck.algorithm = "logreg";
      completed = 3;
      total = 9;
      mats = [ ("w", Ck.of_dense w) ];
      scalars = [ ("alpha", 1e-3) ]
    }
  in
  Ck.save ~path st ;
  (match Ck.load ~path with
  | Error e -> Alcotest.fail e
  | Ok got ->
    Alcotest.(check string) "algorithm" "logreg" got.Ck.algorithm ;
    Alcotest.(check int) "completed" 3 got.Ck.completed ;
    Alcotest.(check int) "total" 9 got.Ck.total ;
    Alcotest.(check (option (float 0.0))) "scalar" (Some 1e-3)
      (Ck.scalar got "alpha") ;
    bitwise "matrix" w (Option.get (Ck.dense got "w"))) ;
  (* an invalid state must never reach disk *)
  (match
     Ck.save ~path
       { st with Ck.mats = [ ("w", Ck.of_dense (Dense.of_array ~rows:1 ~cols:1 [| Float.nan |])) ] }
   with
  | () -> Alcotest.fail "NaN snapshot saved"
  | exception Invalid_argument _ -> ()) ;
  (* ... and the previous checkpoint survived the refused save *)
  (match Ck.load ~path with
  | Ok got -> Alcotest.(check int) "old snapshot intact" 3 got.Ck.completed
  | Error e -> Alcotest.fail e) ;
  (* corrupt and foreign files report as Error, never crash *)
  let junk = Filename.concat dir "junk.bin" in
  Out_channel.with_open_text junk (fun oc -> output_string oc "not a checkpoint") ;
  (match Ck.load ~path:junk with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage loaded as a checkpoint") ;
  let foreign = Filename.concat dir "foreign.bin" in
  Io.write_payload ~kind:"model-artifact" foreign (Ck.of_dense w) ;
  (match Ck.load ~path:foreign with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign payload loaded as a checkpoint") ;
  match Ck.load ~path:(Filename.concat dir "missing.bin") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file loaded"

(* Kill mid-run at iteration [kill] of [total], then resume from the
   last snapshot; the resumed model must be bitwise-identical to the
   uninterrupted run. [run] invokes a trainer with (iters, init,
   on_iter); [snap]/[restore] map its state to checkpoint matrices. *)
let resume_case ~name ~total ~kill ~run ~snap ~restore () =
  let dir = tmpdir ("chaos_resume_" ^ name) in
  let path = Filename.concat dir "ck.bin" in
  let full = run ~iters:total ~init:None ~on_iter:None in
  (match
     run ~iters:total ~init:None
       ~on_iter:
         (Some
            (fun i live ->
              Ck.save ~path
                { Ck.algorithm = name;
                  completed = i;
                  total;
                  mats = snap live;
                  scalars = []
                } ;
              if i = kill then raise Crash))
   with
  | _ -> Alcotest.fail "the simulated kill did not happen"
  | exception Crash -> ()) ;
  let st =
    match Ck.load ~path with Ok st -> st | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "algorithm recorded" name st.Ck.algorithm ;
  Alcotest.(check int) "killed at the snapshot" kill st.Ck.completed ;
  let resumed =
    run ~iters:(total - st.Ck.completed) ~init:(Some (restore st)) ~on_iter:None
  in
  bitwise (name ^ " resumed = uninterrupted") full resumed

let test_resume_logreg =
  let t, y, _ = dataset () in
  resume_case ~name:"logreg" ~total:9 ~kill:5
    ~run:(fun ~iters ~init ~on_iter ->
      (F.Logreg.train ~alpha:1e-3 ~iters ?w0:init ?on_iter t y).F.Logreg.w)
    ~snap:(fun w -> [ ("w", Ck.of_dense w) ])
    ~restore:(fun st -> Option.get (Ck.dense st "w"))

let test_resume_glm =
  let t, _, y_num = dataset () in
  resume_case ~name:"glm" ~total:8 ~kill:3
    ~run:(fun ~iters ~init ~on_iter ->
      (F.Glm.train ~alpha:1e-3 ~iters ?w0:init ?on_iter
         ~family:Ml_algs.Glm.Gaussian t y_num)
        .F.Glm.w)
    ~snap:(fun w -> [ ("w", Ck.of_dense w) ])
    ~restore:(fun st -> Option.get (Ck.dense st "w"))

let test_resume_kmeans =
  let t, _, _ = dataset () in
  resume_case ~name:"kmeans" ~total:7 ~kill:4
    ~run:(fun ~iters ~init ~on_iter ->
      (F.Kmeans.train ~iters ?centroids:init ?on_iter ~k:3 t).F.Kmeans.centroids)
    ~snap:(fun c -> [ ("centroids", Ck.of_dense c) ])
    ~restore:(fun st -> Option.get (Ck.dense st "centroids"))

let test_resume_gnmf =
  let t, _, _ = dataset () in
  resume_case ~name:"gnmf" ~total:6 ~kill:3
    ~run:(fun ~iters ~init ~on_iter ->
      (F.Gnmf.train ~iters ?init ?on_iter ~rank:3 t).F.Gnmf.h)
    ~snap:(fun (fs : F.Gnmf.factors) ->
      (* the hook sees live buffers; of_dense copies *)
      [ ("w", Ck.of_dense fs.F.Gnmf.w); ("h", Ck.of_dense fs.F.Gnmf.h) ])
    ~restore:(fun st ->
      { F.Gnmf.w = Option.get (Ck.dense st "w");
        h = Option.get (Ck.dense st "h")
      })

let test_resume_ore_logreg () =
  let rng = Rng.of_int 17 in
  let s = Dense.random ~rng 40 3 in
  let r = Dense.random ~rng 5 4 in
  let k = Indicator.random ~rng ~rows:40 ~cols:5 () in
  let nm = Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r) in
  let y = Dense.init 40 1 (fun i _ -> if i mod 3 = 0 then 1.0 else -1.0) in
  let dir = tmpdir "chaos_ore" in
  let cn =
    Chunked_normalized.of_normalized
      ~dir:(Filename.concat dir "cn")
      ~chunk_size:9 nm
  in
  resume_case ~name:"ore_logreg" ~total:7 ~kill:4
    ~run:(fun ~iters ~init ~on_iter ->
      Ore_logreg.train_factorized ~alpha:1e-3 ~iters ?w0:init ?on_iter cn y)
    ~snap:(fun w -> [ ("w", Ck.of_dense w) ])
    ~restore:(fun st -> Option.get (Ck.dense st "w"))
    ()

(* ---- circuit breaker (fake clock) ---- *)

let test_breaker () =
  let now = ref 0.0 in
  let b = Breaker.create ~threshold:2 ~cooldown:1.0 ~now:(fun () -> !now) () in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b) ;
  Breaker.failure b ;
  Alcotest.(check bool) "one failure stays closed" true (Breaker.allow b) ;
  Breaker.failure b ;
  Alcotest.(check bool) "tripped" true (Breaker.state b = Breaker.Open) ;
  Alcotest.(check bool) "open refuses" false (Breaker.allow b) ;
  Alcotest.(check int) "one open" 1 (Breaker.opens b) ;
  now := 1.5 ;
  Alcotest.(check bool) "half-open probes" true (Breaker.allow b) ;
  Alcotest.(check bool) "exactly one probe" false (Breaker.allow b) ;
  Breaker.failure b ;
  Alcotest.(check bool) "probe failure re-opens" true
    (Breaker.state b = Breaker.Open) ;
  Alcotest.(check int) "re-open counted" 2 (Breaker.opens b) ;
  now := 1.9 ;
  Alcotest.(check bool) "fresh cooldown holds" false (Breaker.allow b) ;
  now := 3.0 ;
  Alcotest.(check bool) "probe again" true (Breaker.allow b) ;
  Breaker.success b ;
  Alcotest.(check bool) "probe success closes" true
    (Breaker.state b = Breaker.Closed) ;
  Alcotest.(check bool) "closed again" true (Breaker.allow b)

(* ---- registry crash recovery ---- *)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> output_string oc contents)

let test_registry_recover () =
  let reg = Filename.concat (tmpdir "chaos_reg") "reg" in
  let w = Dense.of_array ~rows:2 ~cols:1 [| 0.5; -0.25 |] in
  let entry = Registry.save ~dir:reg ~name:"m" (Artifact.Logreg w) in
  Alcotest.(check string) "committed id" "m@v1" entry.Registry.id ;
  (* crash litter of every kind the tmp+rename protocol can leave *)
  write_file (Filename.concat reg "stray.tmp") "x" ;
  let mdir = Filename.concat reg "m" in
  write_file (Filename.concat mdir "artifact.bin.tmp") "x" ;
  let v9 = Filename.concat mdir "v9" in
  Sys.mkdir v9 0o755 ;
  write_file (Filename.concat v9 "artifact.bin") "uncommitted" ;
  write_file (Filename.concat (Filename.concat mdir "v1") "manifest.json.tmp") "x" ;
  let moved = Registry.recover ~dir:reg in
  Alcotest.(check int) "four entries quarantined" 4 (List.length moved) ;
  List.iter
    (fun (_, target) ->
      Alcotest.(check bool) "moved into _quarantine" true
        (contains ~needle:"_quarantine" target) ;
      Alcotest.(check bool) "target exists" true (Sys.file_exists target))
    moved ;
  (* the committed model is untouched and still loads *)
  (match Registry.load ~dir:reg "m" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "committed model lost: %s" e) ;
  Alcotest.(check int) "list skips the quarantine" 1
    (List.length (Registry.list ~dir:reg)) ;
  Alcotest.(check int) "second sweep is clean" 0
    (List.length (Registry.recover ~dir:reg)) ;
  (* '_' is reserved so a model can never collide with the quarantine *)
  (match Registry.save ~dir:reg ~name:"_quarantine" (Artifact.Logreg w) with
  | _ -> Alcotest.fail "leading-underscore name accepted"
  | exception Invalid_argument _ -> ()) ;
  Alcotest.(check int) "absent registry sweeps to []" 0
    (List.length (Registry.recover ~dir:(Filename.concat reg "nope")))

(* ---- batcher: every request exactly one reply, under faults ---- *)

let test_batcher_exactly_once () =
  let n = 160 in
  let executed = Array.make n 0 in
  let metrics = Metrics.create () in
  let batcher =
    Batcher.create ~max_batch:8 ~max_wait:1e-3 ~metrics
      ~size:(fun _ -> 1)
      ~exec:(fun () payloads ->
        Array.map
          (fun i ->
            executed.(i) <- executed.(i) + 1 ;
            Ok i)
          payloads)
      ()
  in
  Fault.with_config "seed=5,batcher.submit=0.2,batcher.exec=0.15" (fun () ->
      let replies = Array.make n None in
      let per = n / 8 in
      let threads =
        List.init 8 (fun th ->
            Thread.create
              (fun () ->
                for j = 0 to per - 1 do
                  let i = (th * per) + j in
                  let r =
                    match Batcher.submit batcher () i with
                    | Ok v -> `Ok v
                    | Error _ -> `Err
                    | exception Fault.Injected _ -> `Err
                  in
                  replies.(i) <- Some r
                done)
              ())
      in
      List.iter Thread.join threads ;
      Batcher.stop batcher ;
      let oks = ref 0 and errs = ref 0 in
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "request %d got no reply" i
          | Some (`Ok v) ->
            incr oks ;
            if v <> i then Alcotest.failf "request %d got reply %d" i v ;
            if executed.(i) <> 1 then
              Alcotest.failf "request %d executed %d times" i executed.(i)
          | Some `Err ->
            incr errs ;
            if executed.(i) <> 0 then
              Alcotest.failf "failed request %d executed %d times" i
                executed.(i))
        replies ;
      (* with these seeds both outcomes actually occur *)
      if !oks = 0 || !errs = 0 then
        Alcotest.failf "degenerate run: %d ok, %d errors" !oks !errs)

(* ---- client retries ---- *)

let test_retry_exhaustion () =
  let m = Metrics.create () in
  let policy =
    { Client.default_retry with
      attempts = 3;
      base_backoff = 1e-3;
      max_backoff = 2e-3;
      budget = 5.0
    }
  in
  let socket = Filename.concat (tmpdir "chaos_ghost") "no.sock" in
  match Client.call_retry ~policy ~metrics:m ~socket Protocol.Ping with
  | Ok _ -> Alcotest.fail "ghost server answered"
  | Error (code, _) ->
    Alcotest.(check string) "transport error" "transport" code ;
    Alcotest.(check int) "two retries recorded" 2 (Metrics.retries m)

(* ---- serving: helpers ---- *)

let make_serving root =
  let g = Rng.of_int 4242 in
  let s = Dense.random ~rng:g 200 3 in
  let r = Dense.random ~rng:g 15 4 in
  let k = Indicator.random ~rng:g ~rows:200 ~cols:15 () in
  let t =
    Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r)
  in
  let d = snd (Normalized.dims t) in
  let artifact = Artifact.Logreg (Dense.random ~rng:g d 1) in
  let ds_dir = Filename.concat root "ds" in
  Io.save ~dir:ds_dir t ;
  let reg = Filename.concat root "reg" in
  let entry =
    Registry.save ~dir:reg ~name:"chaos"
      ~schema_hash:(Registry.schema_hash t) artifact
  in
  (t, d, artifact, ds_dir, reg, entry)

(* ---- serving under a fault storm: no wrong answers, no losses ---- *)

let serve_chaos seed () =
  let root = tmpdir (Printf.sprintf "chaos_serve_%d" seed) in
  let t, d, artifact, ds_dir, reg, entry = make_serving root in
  (* expectations computed BEFORE faults are armed — the fault
     configuration is process-global and would hit these kernels too *)
  let rows_batches =
    Array.init 10 (fun b ->
        Array.init 2 (fun i ->
            Array.init d (fun j -> float_of_int ((b + i + j) mod 7) /. 7.0)))
  in
  let ids_batches =
    Array.init 10 (fun b ->
        Array.init 3 (fun i -> ((17 * b) + (5 * i)) mod 200))
  in
  let expected_rows =
    Array.map
      (fun rows -> Artifact.score_dense artifact (Dense.of_arrays rows))
      rows_batches
  in
  let expected_ids =
    Array.map
      (fun ids ->
        Artifact.score_normalized artifact (Normalized.select_rows t ids))
      ids_batches
  in
  let socket = Filename.concat root "sock" in
  let server =
    Server.start
      { (Server.default_config ~registry:reg ~socket) with
        Server.handlers = 2;
        max_wait = 1e-3
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable () ;
      Server.stop server)
  @@ fun () ->
  let cm = Metrics.create () in
  (* the server folds dataset/exec failures into code "rejected", so
     the chaos client retries that too; we only send valid requests *)
  let policy =
    { Client.default_retry with
      attempts = 10;
      base_backoff = 2e-3;
      max_backoff = 5e-2;
      budget = 30.0;
      retry_codes = "rejected" :: Client.default_retry.Client.retry_codes
    }
  in
  let rng = Rng.of_int (1000 + seed) in
  must_configure
    (Printf.sprintf
       "seed=%d,io.read=0.05,registry.load=0.05,dataset_cache.load=0.05,\
        batcher.submit=0.04,batcher.exec=0.04,server.write=0.04,\
        server.handler=0.03,client.write=0.03,client.read=0.03"
       seed) ;
  for b = 0 to 9 do
    (match
       Client.score_rows_retry ~policy ~metrics:cm ~rng ~socket ~model:"chaos"
         rows_batches.(b)
     with
    | Error (code, msg) -> Alcotest.failf "rows %d: [%s] %s" b code msg
    | Ok preds ->
      if preds <> expected_rows.(b) then
        Alcotest.failf "rows %d: answer differs from the fault-free run" b) ;
    match
      Client.score_ids_retry ~policy ~metrics:cm ~rng ~socket
        ~model:entry.Registry.id ~dataset:ds_dir ids_batches.(b)
    with
    | Error (code, msg) -> Alcotest.failf "ids %d: [%s] %s" b code msg
    | Ok preds ->
      if preds <> expected_ids.(b) then
        Alcotest.failf "ids %d: answer differs from the fault-free run" b
  done ;
  Fault.disable () ;
  (* permanent errors short-circuit the retry loop *)
  let before = Metrics.retries cm in
  (match
     Client.call_retry
       ~policy:{ policy with Client.retry_codes = Client.default_retry.Client.retry_codes }
       ~metrics:cm ~socket
       (Protocol.Score
          { model = "ghost";
            target = Protocol.Rows [| Array.make d 0.0 |];
            deadline_ms = None
          })
   with
  | Error ("unknown_model", _) -> ()
  | Ok _ -> Alcotest.fail "ghost model scored"
  | Error (code, msg) -> Alcotest.failf "wrong code [%s] %s" code msg) ;
  Alcotest.(check int) "permanent error not retried" before
    (Metrics.retries cm) ;
  (* the server survived the storm: health answers, plain ping works *)
  (match Client.health ~socket with
  | Error (code, msg) -> Alcotest.failf "health: [%s] %s" code msg
  | Ok j -> (
    match Json.member "status" j with
    | Some (Json.Str _) -> ()
    | _ -> Alcotest.fail "health response missing status")) ;
  Client.with_client ~socket (fun c ->
      match Client.call c Protocol.Ping with
      | Ok _ -> ()
      | Error (code, msg) -> Alcotest.failf "ping after chaos: [%s] %s" code msg)

(* ---- handler supervision: crashed handlers are replaced ---- *)

let test_supervision () =
  let root = tmpdir "chaos_sup" in
  let _, _, _, _, reg, _ = make_serving root in
  let socket = Filename.concat root "sock" in
  let server =
    Server.start
      { (Server.default_config ~registry:reg ~socket) with Server.handlers = 2 }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable () ;
      Server.stop server)
  @@ fun () ->
  must_configure "server.handler=1.0" ;
  (* every connection crashes its handler: the client sees a closed
     connection (a transport error), never a hang or a wrong answer *)
  for i = 1 to 3 do
    match Client.with_client ~socket (fun c -> Client.call c Protocol.Ping) with
    | Error ("transport", _) -> ()
    | Ok _ -> Alcotest.failf "connection %d: crashed handler answered" i
    | Error (code, msg) ->
      Alcotest.failf "connection %d: wrong error [%s] %s" i code msg
  done ;
  Fault.disable () ;
  (* the supervisor replaced them: service resumes *)
  let policy =
    { Client.default_retry with
      attempts = 50;
      base_backoff = 0.01;
      max_backoff = 0.05;
      budget = 10.0
    }
  in
  (match Client.call_retry ~policy ~socket Protocol.Ping with
  | Ok _ -> ()
  | Error (code, msg) ->
    Alcotest.failf "no handler came back: [%s] %s" code msg) ;
  (* all three crashes were joined, counted, and respawned *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec await () =
    if Metrics.restarts (Server.metrics server) >= 3 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "only %d handler restarts counted"
        (Metrics.restarts (Server.metrics server))
    else begin
      Thread.delay 0.02 ;
      await ()
    end
  in
  await ()

(* ---- circuit breaker at the server: broken dataset fails fast ---- *)

let test_server_circuit_breaker () =
  let root = tmpdir "chaos_brk" in
  let _, _, _, ds_dir, reg, entry = make_serving root in
  let socket = Filename.concat root "sock" in
  let server =
    Server.start
      { (Server.default_config ~registry:reg ~socket) with
        Server.handlers = 1;
        max_wait = 1e-3;
        breaker_threshold = 3;
        breaker_cooldown = 30.0 (* long: stays open for the test *)
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable () ;
      Server.stop server)
  @@ fun () ->
  must_configure "dataset_cache.load=1.0" ;
  Client.with_client ~socket
  @@ fun c ->
  (* three consecutive load failures trip the circuit *)
  for i = 1 to 3 do
    match Client.score_ids c ~model:entry.Registry.id ~dataset:ds_dir [| 0 |] with
    | Error ("rejected", _) -> ()
    | Ok _ -> Alcotest.failf "request %d: broken dataset scored" i
    | Error (code, msg) ->
      Alcotest.failf "request %d: wrong error [%s] %s" i code msg
  done ;
  Fault.disable () ;
  (* the circuit is open: even with the fault gone, the request is
     refused fast, without touching the loader *)
  (match Client.score_ids c ~model:entry.Registry.id ~dataset:ds_dir [| 0 |] with
  | Error (_, msg) ->
    if not (contains ~needle:"circuit open" msg) then
      Alcotest.failf "expected a circuit-open refusal, got %S" msg
  | Ok _ -> Alcotest.fail "open circuit still served") ;
  (* health degrades and counts the open circuit *)
  match Client.call c Protocol.Health with
  | Error (code, msg) -> Alcotest.failf "health: [%s] %s" code msg
  | Ok j ->
    let str k = Option.bind (Json.member k j) Json.to_str in
    let num k = Option.bind (Json.member k j) Json.to_int in
    Alcotest.(check (option string)) "degraded" (Some "degraded") (str "status") ;
    Alcotest.(check (option int)) "one open circuit" (Some 1)
      (num "open_circuits")

let () =
  Alcotest.run "chaos"
    [ ( "fault",
        [ Alcotest.test_case "deterministic replay" `Quick test_fault_determinism;
          Alcotest.test_case "wildcard + first match" `Quick test_fault_wildcard;
          Alcotest.test_case "delay action" `Quick test_fault_delay;
          Alcotest.test_case "counters" `Quick test_fault_counters;
          Alcotest.test_case "parse errors" `Quick test_fault_parse_errors ] );
      ( "guards",
        [ Alcotest.test_case "validate primitives" `Quick test_validate;
          Alcotest.test_case "divergence names the step" `Quick test_divergence_guard;
          Alcotest.test_case "NaN dataset refused at load" `Quick test_nan_dataset_refused;
          Alcotest.test_case "NaN model refused at load" `Quick test_nan_model_refused ] );
      ( "checkpoint",
        [ Alcotest.test_case "roundtrip + validation" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "logreg kill/resume bitwise" `Quick test_resume_logreg;
          Alcotest.test_case "glm kill/resume bitwise" `Quick test_resume_glm;
          Alcotest.test_case "kmeans kill/resume bitwise" `Quick test_resume_kmeans;
          Alcotest.test_case "gnmf kill/resume bitwise" `Quick test_resume_gnmf;
          Alcotest.test_case "ore logreg kill/resume bitwise" `Quick test_resume_ore_logreg ] );
      ( "breaker",
        [ Alcotest.test_case "state machine (fake clock)" `Quick test_breaker ] );
      ( "registry",
        [ Alcotest.test_case "crash-litter recovery" `Quick test_registry_recover ] );
      ( "batcher",
        [ Alcotest.test_case "exactly one reply under faults" `Quick
            test_batcher_exactly_once ] );
      ( "client",
        [ Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion ] );
      ( "serve",
        [ Alcotest.test_case "fault storm, seed 11" `Quick (serve_chaos 11);
          Alcotest.test_case "fault storm, seed 12" `Quick (serve_chaos 12);
          Alcotest.test_case "fault storm, seed 13" `Quick (serve_chaos 13);
          Alcotest.test_case "handler supervision" `Quick test_supervision;
          Alcotest.test_case "dataset circuit breaker" `Quick
            test_server_circuit_breaker ] )
    ]
