(* Shared generators for the test suites: random normalized matrices in
   every schema shape the paper covers (single PK-FK, star multi-table,
   M:N), with dense or sparse base matrices, plus the corresponding
   ground-truth materialization. *)

open La
open Sparse
open Morpheus

type shape = Pkfk | Star2 | Star3 | Mn

let shapes = [ Pkfk; Star2; Star3; Mn ]

let shape_name = function
  | Pkfk -> "pkfk"
  | Star2 -> "star2"
  | Star3 -> "star3"
  | Mn -> "mn"

let mat rng ~sparse r c =
  if sparse then Mat.random_sparse ~rng ~density:0.4 r c
  else Mat.of_dense (Dense.random ~rng r c)

(* A random normalized matrix; dimensions are kept small so exhaustive
   comparison against the materialized T is cheap. *)
let normalized ?(seed = 0) ?(sparse = false) shape =
  let rng = Rng.of_int (seed + Hashtbl.hash (shape_name shape) + if sparse then 7919 else 0) in
  let dim lo hi = lo + Rng.int rng (hi - lo + 1) in
  match shape with
  | Pkfk ->
    let nr = dim 2 6 in
    let ns = nr + dim 2 14 in
    let s = mat rng ~sparse ns (dim 1 5) in
    let r = mat rng ~sparse nr (dim 1 5) in
    let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
    Normalized.pkfk ~s ~k ~r
  | Star2 | Star3 ->
    let q = if shape = Star2 then 2 else 3 in
    let ns = dim 8 20 in
    let s = mat rng ~sparse ns (dim 1 4) in
    let parts =
      List.init q (fun _ ->
          let nr = dim 2 (min 6 ns) in
          let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
          (k, mat rng ~sparse nr (dim 1 4)))
    in
    Normalized.star ~s ~parts
  | Mn ->
    let ns = dim 3 8 and nr = dim 3 8 in
    let n_out = dim (max ns nr) 24 in
    (* every base row must appear at least once *)
    let covering rng ~rows ~cols = Indicator.random ~rng ~rows ~cols () in
    let is_ = covering rng ~rows:n_out ~cols:ns in
    let ir = covering rng ~rows:n_out ~cols:nr in
    let s = mat rng ~sparse ns (dim 1 4) in
    let r = mat rng ~sparse nr (dim 1 4) in
    Normalized.mn ~is_ ~s ~ir ~r

(* All shape × sparsity × transposed combinations for a given seed. *)
let all_cases ~seed =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun sparse ->
          List.map
            (fun trans ->
              let t = normalized ~seed ~sparse shape in
              let t = if trans then Rewrite.transpose t else t in
              let label =
                Printf.sprintf "%s%s%s (seed %d)" (shape_name shape)
                  (if sparse then "/sparse" else "/dense")
                  (if trans then "/transposed" else "")
                  seed
              in
              (label, t))
            [ false; true ])
        [ false; true ])
    shapes

(* The ground-truth denormalized matrix. *)
let ground_truth t = Materialize.to_dense t

let check_close ?(tol = 1e-8) msg expected actual =
  if not (Dense.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: max|diff| = %g (dims %dx%d vs %dx%d)" msg
      (Dense.max_abs_diff expected actual)
      (Dense.rows expected) (Dense.cols expected) (Dense.rows actual)
      (Dense.cols actual)
