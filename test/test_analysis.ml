(* Tests for the concurrency-discipline analyzer (Analysis.Sync) and
   the source-invariant lint (Analysis.Lint).

   The lockdep canaries deliberately perform bad *orderings* — never a
   real deadlock — and assert the first occurrence is reported with
   both acquisition sites. The clean-discipline tests run the real
   stack (pool, memo, fault points) under lockdep and assert silence.
   Lint tests run the real rules against synthetic trees in a temp
   directory, including the must-fail directions the @lint alias can't
   demonstrate on the (clean) repo. *)

open Analysis

(* Every scenario runs with a private, freshly reset lockdep state and
   restores the ambient enablement afterwards, so test order (and an
   inherited MORPHEUS_LOCKDEP) never leaks between cases. *)
let with_lockdep ?(on = true) f =
  let was = Sync.lockdep_enabled () in
  Sync.reset_lockdep () ;
  if on then Sync.enable_lockdep () else Sync.disable_lockdep () ;
  Fun.protect
    ~finally:(fun () ->
      Sync.reset_lockdep () ;
      if was then Sync.enable_lockdep () else Sync.disable_lockdep ())
    f

let codes ds = List.map (fun (d : Diag.t) -> Diag.code_name d.Diag.code) ds

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let find_code c ds =
  match
    List.find_opt (fun (d : Diag.t) -> Diag.code_name d.Diag.code = c) ds
  with
  | Some d -> d
  | None ->
    Alcotest.failf "expected a %s diagnostic, got [%s]" c
      (String.concat "; " (codes ds))

let assert_site ~which line =
  Alcotest.(check bool)
    (Printf.sprintf "%s names an acquisition site (%s)" which line)
    true
    (String.length line > 0
    && (let has sub =
          let n = String.length line and m = String.length sub in
          let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
          go 0
        in
        has ".ml:"))

(* ---- E101: the AB/BA inversion canary ---- *)

let test_inversion_detected () =
  with_lockdep (fun () ->
      let a = Sync.create ~name:"test.canary.a" () in
      let b = Sync.create ~name:"test.canary.b" () in
      (* establish a -> b *)
      Sync.with_lock a (fun () -> Sync.with_lock b (fun () -> ())) ;
      Alcotest.(check int) "a->b alone is clean" 0
        (List.length (Sync.lockdep_report ())) ;
      (* now the inversion; no second thread, no deadlock *)
      Sync.with_lock b (fun () -> Sync.with_lock a (fun () -> ())) ;
      let d = find_code "E101" (Sync.lockdep_violations ()) in
      Alcotest.(check int) "exactly one violation" 1
        (List.length (Sync.lockdep_violations ())) ;
      (match d.Diag.detail with
      | [ now_line; first_line ] ->
        assert_site ~which:"inverting acquisition" now_line ;
        assert_site ~which:"original acquisition" first_line
      | l ->
        Alcotest.failf "expected both acquisition sites, got %d detail line(s)"
          (List.length l)) ;
      (* the same inversion again is deduplicated *)
      Sync.with_lock b (fun () -> Sync.with_lock a (fun () -> ())) ;
      Alcotest.(check int) "reported once" 1
        (List.length (Sync.lockdep_violations ())))

let test_clean_ordering_passes () =
  with_lockdep (fun () ->
      let a = Sync.create ~name:"test.order.a" () in
      let b = Sync.create ~name:"test.order.b" () in
      let c = Sync.create ~name:"test.order.c" () in
      for _ = 1 to 50 do
        Sync.with_lock a (fun () ->
            Sync.with_lock b (fun () -> Sync.with_lock c (fun () -> ()))) ;
        (* skipping a level keeps the same partial order *)
        Sync.with_lock a (fun () -> Sync.with_lock c (fun () -> ())) ;
        Sync.with_lock b (fun () -> Sync.with_lock c (fun () -> ()))
      done ;
      Alcotest.(check (list string)) "no diagnostics" [] (codes (Sync.lockdep_report ())))

(* Same class from two instances (e.g. per-dataset breakers) must not
   self-report: a lock class never orders against itself here. *)
let test_same_class_instances () =
  with_lockdep (fun () ->
      let a1 = Sync.create ~name:"test.instanced" () in
      let a2 = Sync.create ~name:"test.instanced" () in
      Sync.with_lock a1 (fun () -> Sync.with_lock a2 (fun () -> ())) ;
      Sync.with_lock a2 (fun () -> Sync.with_lock a1 (fun () -> ())) ;
      Alcotest.(check (list string)) "no diagnostics" []
        (codes (Sync.lockdep_report ())))

(* ---- E102: lock held across Pool.run ---- *)

let test_lock_held_across_pool () =
  with_lockdep (fun () ->
      let pool = La.Pool.create 2 in
      Fun.protect
        ~finally:(fun () -> La.Pool.shutdown pool)
        (fun () ->
          let l = Sync.create ~name:"test.held" () in
          let hits = Atomic.make 0 in
          (* clean batch first: nothing held *)
          La.Pool.run pool ~njobs:4 (fun _ -> Atomic.incr hits) ;
          Alcotest.(check (list string)) "lock-free caller is clean" []
            (codes (Sync.lockdep_report ())) ;
          Sync.with_lock l (fun () ->
              La.Pool.run pool ~njobs:4 (fun _ -> Atomic.incr hits)) ;
          Alcotest.(check int) "batches still ran" 8 (Atomic.get hits) ;
          let d = find_code "E102" (Sync.lockdep_violations ()) in
          (match d.Diag.detail with
          | [ held_line; entered_line ] ->
            assert_site ~which:"held-lock acquisition" held_line ;
            assert_site ~which:"region entry" entered_line
          | l ->
            Alcotest.failf "expected held site + entry site, got %d line(s)"
              (List.length l)) ;
          (* second offence at the same region/lock pair: deduplicated *)
          Sync.with_lock l (fun () ->
              La.Pool.run pool ~njobs:2 (fun _ -> ())) ;
          Alcotest.(check int) "reported once" 1
            (List.length (Sync.lockdep_violations ()))))

(* ---- W101: the nested-region downgrade is counted and reported ---- *)

let test_nested_downgrade () =
  with_lockdep (fun () ->
      let e = La.Exec.par ~domains:2 in
      Fun.protect
        ~finally:(fun () -> La.Exec.shutdown e)
        (fun () ->
          let before = Sync.nested_downgrades () in
          let inner_ran = Atomic.make 0 in
          La.Exec.parallel_for e ~lo:0 ~hi:8 (fun lo hi ->
              for _ = lo to hi - 1 do
                (* a nested region: downgraded, never re-pooled *)
                La.Exec.parallel_for e ~lo:0 ~hi:4 (fun l h ->
                    Atomic.fetch_and_add inner_ran (h - l) |> ignore)
              done) ;
          Alcotest.(check int) "inner bodies all ran" 32
            (Atomic.get inner_ran) ;
          Alcotest.(check bool) "downgrades counted" true
            (Sync.nested_downgrades () > before) ;
          let d = find_code "W101" (Sync.lockdep_warnings ()) in
          Alcotest.(check string) "warning names the region"
            "Exec.parallel_for" d.Diag.where ;
          Alcotest.(check (list string)) "downgrade is not a violation" []
            (codes (Sync.lockdep_violations ()))))

(* ---- disabled mode: same behavior, nothing recorded ---- *)

let test_disabled_parity () =
  (* identical workload under lockdep off/on must produce bitwise-equal
     results; off must additionally record nothing *)
  let workload () =
    let e = La.Exec.par ~domains:2 in
    Fun.protect
      ~finally:(fun () -> La.Exec.shutdown e)
      (fun () ->
        La.Exec.reduce e ~lo:0 ~hi:100_000 ~grain:1024
          ~body:(fun lo hi ->
            let acc = ref 0.0 in
            for i = lo to hi - 1 do
              acc := !acc +. (1.0 /. float_of_int (i + 1))
            done ;
            !acc)
          ~combine:( +. ))
  in
  let off = with_lockdep ~on:false workload in
  let recorded_off =
    with_lockdep ~on:false (fun () ->
        ignore (workload ()) ;
        List.length (Sync.lockdep_report ()))
  in
  let on = with_lockdep ~on:true workload in
  Alcotest.(check bool) "bitwise-identical result" true
    (Int64.equal (Int64.bits_of_float off) (Int64.bits_of_float on)) ;
  Alcotest.(check int) "disabled mode records nothing" 0 recorded_off

(* ---- the real stack under lockdep: zero violations ---- *)

let test_stack_clean_under_lockdep () =
  with_lockdep (fun () ->
      let pool = La.Pool.create 4 in
      Fun.protect
        ~finally:(fun () -> La.Pool.shutdown pool)
        (fun () ->
          (* fault-point checks, memo cells, and flops counters from
             concurrent pool tasks — the lock classes the LA stack
             actually layers *)
          Fault.with_config "seed=7,pool.task=0.05:delay1" (fun () ->
              let cell = La.Memo.cell () in
              for _ = 1 to 5 do
                La.Pool.run pool ~njobs:16 (fun i ->
                    (try Fault.point "pool.task" with Fault.Injected _ -> ()) ;
                    La.Flops.add i ;
                    ignore
                      (La.Memo.force cell (fun () ->
                           La.Flops.add 1 ;
                           42)))
              done) ;
          ignore (La.Flops.get ()) ;
          Alcotest.(check (list string)) "no violations, no warnings" []
            (codes (Sync.lockdep_report ()))))

(* ---- the lint rules, against synthetic trees ---- *)

let write_file path contents =
  let dir = Filename.dirname path in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d) ;
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir ;
  let oc = open_out path in
  output_string oc contents ;
  close_out oc

(* Minimal E207 catalogue: the section exists and sanctions nothing,
   so a fixture is clean iff it has no unsafe indexing at all. *)
let default_analysis =
  "# Analyzer\n\n## Sanctioned unsafe-indexing modules\n\n\
   | module | why |\n|---|---|\n"

let lint_fixture ?(analysis = default_analysis) ~robustness ~serving ~sources
    () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "morpheus_lint_%d" (Unix.getpid ()))
  in
  (* a fresh tree per call: tests may write conflicting contents *)
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p) ;
        Sys.rmdir p
      end
      else Sys.remove p
  in
  rm root ;
  write_file (Filename.concat root "docs/ROBUSTNESS.md") robustness ;
  write_file (Filename.concat root "docs/SERVING.md") serving ;
  write_file (Filename.concat root "docs/ANALYSIS.md") analysis ;
  List.iter
    (fun (rel, src) -> write_file (Filename.concat root rel) src)
    sources ;
  root

let base_cfg root =
  { Lint.root;
    protocol_ops = [ "ping"; "score" ];
    catalogues = [ ("Check", [ "E001" ]); ("Analysis", [ "E101" ]) ];
    relational_nodes = [];
    router_ops = []
  }

let fault_call name = Printf.sprintf "let f () = Fault.point %S\n" name

let clean_fixture () =
  lint_fixture
    ~robustness:"| point | boundary |\n|---|---|\n| `io.read` | file I/O |\n"
    ~serving:
      "Requests:\n```\n{\"op\":\"ping\"}\n{\"op\":\"score\",\"model\":\"m\"}\n```\n"
    ~sources:
      [ ("lib/core/io.ml", fault_call "io.read");
        ( "lib/serve/protocol.ml",
          "let parse = function Some \"ping\" -> 1 | Some \"score\" -> 2\n" )
      ]
    ()

let test_lint_clean () =
  let root = clean_fixture () in
  Alcotest.(check (list string)) "clean tree has no findings" []
    (codes (Lint.run (base_cfg root)))

let test_lint_undocumented_fault_point () =
  let root = clean_fixture () in
  write_file
    (Filename.concat root "lib/core/extra.ml")
    (fault_call "io.mystery") ;
  let d = find_code "E201" (Lint.run (base_cfg root)) in
  Alcotest.(check bool) "names the point" true
    (String.length d.Diag.message > 0)

let test_lint_phantom_doc_point () =
  let root =
    lint_fixture
      ~robustness:
        "| point | boundary |\n|---|---|\n| `io.read`, `io.gone` | io |\n"
      ~serving:"```\n{\"op\":\"ping\"}\n{\"op\":\"score\"}\n```\n"
      ~sources:
        [ ("lib/core/io.ml", fault_call "io.read");
          ( "lib/serve/protocol.ml",
            "let parse = function Some \"ping\" -> 1 | Some \"score\" -> 2\n" )
        ]
        ()
  in
  ignore (find_code "E202" (Lint.run (base_cfg root)))

let test_lint_undocumented_op () =
  let root = clean_fixture () in
  let cfg = { (base_cfg root) with Lint.protocol_ops = [ "ping"; "score"; "drain" ] } in
  (* "drain" has neither a doc example nor a parser case *)
  let findings = Lint.run cfg in
  ignore (find_code "E203" findings) ;
  Alcotest.(check int) "doc miss and parser miss" 2
    (List.length
       (List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.E203) findings))

let test_lint_raw_primitives () =
  let root = clean_fixture () in
  write_file
    (Filename.concat root "lib/la/bad.ml")
    "let m = Mutex.create ()\nlet t () = Unix.gettimeofday ()\nlet () = Random.self_init ()\n" ;
  write_file
    (Filename.concat root "lib/la/fine.ml")
    "(* Mutex.create in a comment is fine *)\nlet s = \"Unix.gettimeofday\"\n" ;
  let findings = Lint.run (base_cfg root) in
  let e204 =
    List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.E204) findings
  in
  Alcotest.(check int) "three raw-primitive findings" 3 (List.length e204) ;
  Alcotest.(check bool) "all point into bad.ml" true
    (List.for_all
       (fun (d : Diag.t) ->
         String.length d.Diag.where >= 13
         && String.sub d.Diag.where 0 13 = "lib/la/bad.ml")
       e204)

let rewrite_rules_section =
  "# Rules\n\n## Relational operators\n\n| node | rewrite |\n|---|---|\n\
   | `Filter` | masks + select_rows |\n| `Project` | part pruning |\n"

let test_lint_relational_nodes_clean () =
  let root = clean_fixture () in
  write_file (Filename.concat root "docs/REWRITE_RULES.md") rewrite_rules_section ;
  let cfg =
    { (base_cfg root) with Lint.relational_nodes = [ "Filter"; "Project" ] }
  in
  Alcotest.(check (list string)) "documented nodes are clean" []
    (codes (Lint.run cfg))

let test_lint_relational_node_undocumented () =
  let root = clean_fixture () in
  write_file (Filename.concat root "docs/REWRITE_RULES.md") rewrite_rules_section ;
  let cfg =
    { (base_cfg root) with
      Lint.relational_nodes = [ "Filter"; "Project"; "Group_agg" ]
    }
  in
  let d = find_code "E206" (Lint.run cfg) in
  Alcotest.(check bool) "names the missing node" true
    (has_substring d.Diag.message "Group_agg")

let test_lint_relational_node_phantom () =
  let root = clean_fixture () in
  write_file
    (Filename.concat root "docs/REWRITE_RULES.md")
    (rewrite_rules_section ^ "| `Ghost` | does not exist |\n") ;
  let cfg =
    { (base_cfg root) with Lint.relational_nodes = [ "Filter"; "Project" ] }
  in
  let d = find_code "E206" (Lint.run cfg) in
  Alcotest.(check bool) "names the phantom node" true
    (has_substring d.Diag.message "Ghost")

let test_lint_relational_section_missing () =
  let root = clean_fixture () in
  write_file
    (Filename.concat root "docs/REWRITE_RULES.md")
    "# Rules\n\n## Multiplication\n" ;
  let cfg = { (base_cfg root) with Lint.relational_nodes = [ "Filter" ] } in
  ignore (find_code "E206" (Lint.run cfg)) ;
  (* [] disables the rule: the same tree is clean without nodes *)
  Alcotest.(check (list string)) "empty node list disables E206" []
    (codes (Lint.run (base_cfg root)))

(* E207 unsafe-indexing discipline, both directions. *)

let unsafe_src = "let f a = Array.unsafe_get a 0\n"

let sanctioning table_rows =
  default_analysis ^ table_rows

let test_lint_unsafe_outside_table () =
  let root = clean_fixture () in
  write_file (Filename.concat root "lib/la/hot.ml") unsafe_src ;
  let d = find_code "E207" (Lint.run (base_cfg root)) in
  Alcotest.(check bool) "points into the offending file" true
    (has_substring d.Diag.where "lib/la/hot.ml") ;
  (* comments and strings may mention the token freely *)
  write_file
    (Filename.concat root "lib/la/hot.ml")
    "(* Array.unsafe_get in a comment *)\nlet s = \"Array.unsafe_set\"\n" ;
  Alcotest.(check (list string)) "mentions are not findings" []
    (codes (Lint.run (base_cfg root)))

let test_lint_unsafe_sanctioned_clean () =
  let root =
    lint_fixture
      ~analysis:(sanctioning "| `lib/la/hot.ml` | micro-kernel |\n")
      ~robustness:"| point | boundary |\n|---|---|\n| `io.read` | io |\n"
      ~serving:"```\n{\"op\":\"ping\"}\n{\"op\":\"score\"}\n```\n"
      ~sources:
        [ ("lib/core/io.ml", fault_call "io.read");
          ( "lib/serve/protocol.ml",
            "let parse = function Some \"ping\" -> 1 | Some \"score\" -> 2\n" );
          ("lib/la/hot.ml", unsafe_src)
        ]
      ()
  in
  Alcotest.(check (list string)) "sanctioned unsafe use is clean" []
    (codes (Lint.run (base_cfg root)))

let test_lint_unsafe_stale_row () =
  let root = clean_fixture () in
  (* a row for a module that exists but no longer uses unsafe indexing,
     and a row for a module that does not exist at all *)
  write_file
    (Filename.concat root "docs/ANALYSIS.md")
    (sanctioning
       "| `lib/core/io.ml` | stale |\n| `lib/la/ghost.ml` | missing |\n") ;
  let findings = Lint.run (base_cfg root) in
  let e207 =
    List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.E207) findings
  in
  Alcotest.(check int) "both stale rows are findings" 2 (List.length e207) ;
  Alcotest.(check bool) "one names the ghost module" true
    (List.exists (fun (d : Diag.t) -> has_substring d.Diag.message "ghost") e207)

let test_lint_unsafe_section_missing () =
  let root = clean_fixture () in
  write_file (Filename.concat root "docs/ANALYSIS.md") "# Analyzer\n" ;
  ignore (find_code "E207" (Lint.run (base_cfg root)))

(* E208 cluster drift: routed ops vs the SERVING.md table and the
   lib/cluster fault points vs the ROBUSTNESS.md cluster section, both
   directions. *)

let cluster_serving =
  "Requests:\n```\n{\"op\":\"ping\"}\n{\"op\":\"score\",\"model\":\"m\"}\n```\n\n\
   ## Routed operations\n\n| op | fan-out |\n|---|---|\n\
   | `score` | one shard by key |\n| `health` | every shard |\n"

let cluster_robustness =
  "| point | boundary |\n|---|---|\n| `io.read` | file I/O |\n\n\
   ## Cluster fault points\n\n| point | boundary |\n|---|---|\n\
   | `router.forward` | shard dial |\n"

let cluster_fixture ?(serving = cluster_serving)
    ?(robustness = cluster_robustness) ?(extra_sources = []) () =
  lint_fixture ~robustness ~serving
    ~sources:
      ([ ("lib/core/io.ml", fault_call "io.read");
         ( "lib/serve/protocol.ml",
           "let parse = function Some \"ping\" -> 1 | Some \"score\" -> 2\n" );
         ("lib/cluster/router.ml", fault_call "router.forward")
       ]
      @ extra_sources)
    ()

let cluster_cfg root =
  { (base_cfg root) with Lint.router_ops = [ "score"; "health" ] }

let test_lint_cluster_clean () =
  let root = cluster_fixture () in
  Alcotest.(check (list string)) "documented cluster tree is clean" []
    (codes (Lint.run (cluster_cfg root)))

let test_lint_cluster_undocumented_op () =
  let root = cluster_fixture () in
  let cfg =
    { (base_cfg root) with Lint.router_ops = [ "score"; "health"; "stats" ] }
  in
  let d = find_code "E208" (Lint.run cfg) in
  Alcotest.(check bool) "names the missing op" true
    (has_substring d.Diag.message "stats")

let test_lint_cluster_phantom_op () =
  let root =
    cluster_fixture
      ~serving:(cluster_serving ^ "| `drain` | does not exist |\n")
      ()
  in
  let d = find_code "E208" (Lint.run (cluster_cfg root)) in
  Alcotest.(check bool) "names the phantom op" true
    (has_substring d.Diag.message "drain")

let test_lint_cluster_undocumented_point () =
  let root =
    cluster_fixture
      ~extra_sources:[ ("lib/cluster/extra.ml", fault_call "router.mystery") ]
      ()
  in
  let findings = Lint.run (cluster_cfg root) in
  let d = find_code "E208" findings in
  Alcotest.(check bool) "names the undocumented point" true
    (has_substring d.Diag.message "router.mystery") ;
  (* the same point outside lib/cluster/ only concerns the global scan *)
  ignore (find_code "E201" findings)

let test_lint_cluster_phantom_point () =
  let root =
    cluster_fixture
      ~robustness:(cluster_robustness ^ "| `router.ghost` | gone |\n")
      ()
  in
  let d = find_code "E208" (Lint.run (cluster_cfg root)) in
  Alcotest.(check bool) "names the phantom point" true
    (has_substring d.Diag.message "router.ghost")

let test_lint_cluster_sections_missing () =
  (* the clean fixture has neither section; with routed ops configured
     both tables are demanded, without them the tree stays clean *)
  let root = clean_fixture () in
  let findings = Lint.run (cluster_cfg root) in
  let e208 =
    List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.E208) findings
  in
  Alcotest.(check int) "both missing sections are findings" 2
    (List.length e208) ;
  Alcotest.(check (list string)) "empty router_ops disables E208" []
    (codes (Lint.run (base_cfg root)))

let test_lint_duplicate_codes () =
  let root = clean_fixture () in
  let cfg =
    { (base_cfg root) with
      Lint.catalogues =
        [ ("Check", [ "E001"; "W001" ]); ("Analysis", [ "E101"; "E001" ]) ]
    }
  in
  ignore (find_code "E205" (Lint.run cfg))

let () =
  Alcotest.run "analysis"
    [ ( "lockdep",
        [ Alcotest.test_case "AB/BA inversion canary" `Quick
            test_inversion_detected;
          Alcotest.test_case "clean ordering passes" `Quick
            test_clean_ordering_passes;
          Alcotest.test_case "same-class instances" `Quick
            test_same_class_instances;
          Alcotest.test_case "lock held across Pool.run" `Quick
            test_lock_held_across_pool;
          Alcotest.test_case "nested-region downgrade" `Quick
            test_nested_downgrade;
          Alcotest.test_case "disabled-mode parity" `Quick
            test_disabled_parity;
          Alcotest.test_case "real stack is clean" `Quick
            test_stack_clean_under_lockdep ] );
      ( "lint",
        [ Alcotest.test_case "clean fixture" `Quick test_lint_clean;
          Alcotest.test_case "undocumented fault point" `Quick
            test_lint_undocumented_fault_point;
          Alcotest.test_case "phantom documented point" `Quick
            test_lint_phantom_doc_point;
          Alcotest.test_case "undocumented protocol op" `Quick
            test_lint_undocumented_op;
          Alcotest.test_case "raw primitives" `Quick test_lint_raw_primitives;
          Alcotest.test_case "duplicate diagnostic codes" `Quick
            test_lint_duplicate_codes;
          Alcotest.test_case "relational nodes documented" `Quick
            test_lint_relational_nodes_clean;
          Alcotest.test_case "undocumented relational node" `Quick
            test_lint_relational_node_undocumented;
          Alcotest.test_case "phantom relational node" `Quick
            test_lint_relational_node_phantom;
          Alcotest.test_case "missing relational section" `Quick
            test_lint_relational_section_missing;
          Alcotest.test_case "cluster tables clean" `Quick
            test_lint_cluster_clean;
          Alcotest.test_case "undocumented routed op" `Quick
            test_lint_cluster_undocumented_op;
          Alcotest.test_case "phantom routed op" `Quick
            test_lint_cluster_phantom_op;
          Alcotest.test_case "undocumented cluster fault point" `Quick
            test_lint_cluster_undocumented_point;
          Alcotest.test_case "phantom cluster fault point" `Quick
            test_lint_cluster_phantom_point;
          Alcotest.test_case "missing cluster sections" `Quick
            test_lint_cluster_sections_missing;
          Alcotest.test_case "unsafe indexing outside table" `Quick
            test_lint_unsafe_outside_table;
          Alcotest.test_case "sanctioned unsafe indexing" `Quick
            test_lint_unsafe_sanctioned_clean;
          Alcotest.test_case "stale unsafe-table rows" `Quick
            test_lint_unsafe_stale_row;
          Alcotest.test_case "missing unsafe section" `Quick
            test_lint_unsafe_section_missing ] )
    ]
