(* Tests for the invariant-memoization layer: cached loop invariants
   equal freshly computed ones across all three data-matrix
   representations, cache hits re-run no kernel (the Flops counters see
   zero work — the observable steady-state ML iterations rely on), and
   the sharing semantics hold: [transpose] shares its source's memo
   (the cells are keyed to the non-transposed body), while [map_mats]
   and [select_rows] produce different logical matrices and must not. *)

open La
open Sparse
open Morpheus

let check_bitwise msg a b =
  if Dense.to_arrays a <> Dense.to_arrays b then
    Alcotest.failf "%s: values differ (max|diff| = %g)" msg
      (Dense.max_abs_diff a b)

let pkfk_case ?(seed = 2718) ?(ns = 1_000) ?(nr = 30) ?(ds = 5) ?(dr = 7) () =
  let g = Rng.of_int seed in
  let s = Dense.random ~rng:g ns ds in
  let r = Dense.random ~rng:g nr dr in
  let k = Indicator.random ~rng:g ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r)

(* ---- the memo contract, generically over the signature ---- *)

(* For each memoized invariant: the first (cache-filling) call equals a
   fresh memo-disabled computation bitwise, and the second call is a
   hit — same value, zero flops. Returns false with a message instead
   of raising so the qcheck property can reuse it. *)
let contract_holds (type a) (module M : Data_matrix.S with type t = a)
    ~(name : string) (t : a) =
  let failure = ref None in
  let fail op what = failure := Some (name ^ "." ^ op ^ ": " ^ what) in
  let dense_ops : (string * (a -> Dense.t)) list =
    [ ("row_sums", M.row_sums);
      ("col_sums", M.col_sums);
      ("row_sums_sq", M.row_sums_sq);
      ("crossprod", M.crossprod)
    ]
  in
  List.iter
    (fun (op, f) ->
      let fresh = Memo.with_disabled (fun () -> f t) in
      let first = f t in
      if Dense.to_arrays fresh <> Dense.to_arrays first then
        fail op "cached value differs from fresh computation" ;
      Flops.reset () ;
      let second = f t in
      if Dense.to_arrays first <> Dense.to_arrays second then
        fail op "second call differs from first" ;
      if Flops.get () <> 0.0 then fail op "cache hit ran a kernel")
    dense_ops ;
  let fresh = Memo.with_disabled (fun () -> M.sum t) in
  let first = M.sum t in
  if fresh <> first then fail "sum" "cached value differs from fresh" ;
  Flops.reset () ;
  ignore (M.sum t) ;
  if Flops.get () <> 0.0 then fail "sum" "cache hit ran a kernel" ;
  !failure

let check_contract m ~name t =
  match contract_holds m ~name t with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let test_contract_all_reprs () =
  let t = pkfk_case () in
  check_contract (module Factorized_matrix) ~name:"factorized" t ;
  check_contract
    (module Regular_matrix)
    ~name:"regular"
    (Materialize.to_regular (pkfk_case ())) ;
  check_contract
    (module Adaptive_matrix)
    ~name:"adaptive-fact"
    (Adaptive_matrix.factorized (pkfk_case ())) ;
  check_contract
    (module Adaptive_matrix)
    ~name:"adaptive-mat"
    (Adaptive_matrix.materialized (pkfk_case ()))

(* qcheck: the contract holds at any shape, for every representation. *)
let prop_memo_equals_fresh =
  QCheck.Test.make ~count:15
    ~name:"qcheck: memoized invariants = fresh, all reprs, any shape"
    QCheck.(triple (int_range 20 400) (int_range 2 20) (int_range 1 10))
    (fun (ns, nr, dr) ->
      let fresh_t () = pkfk_case ~seed:((ns * 31) + (nr * 7) + dr) ~ns ~nr ~dr () in
      let check m ~name t =
        match contract_holds m ~name t with
        | None -> true
        | Some msg -> QCheck.Test.fail_report msg
      in
      check (module Factorized_matrix) ~name:"factorized" (fresh_t ())
      && check
           (module Regular_matrix)
           ~name:"regular"
           (Materialize.to_regular (fresh_t ()))
      && check
           (module Adaptive_matrix)
           ~name:"adaptive"
           (Adaptive_matrix.of_normalized (fresh_t ())))

(* ---- sharing semantics ---- *)

(* transpose flips a flag; the memo cells are keyed to the
   non-transposed body, so Tᵀ's column invariants hit T's row cells. *)
let test_transpose_shares_memo () =
  let t = pkfk_case () in
  let rs = Rewrite.row_sums t in
  let tt = Rewrite.transpose t in
  Flops.reset () ;
  let cs = Rewrite.col_sums tt in
  Alcotest.(check (float 0.0)) "col_sums(Tᵀ) hits row_sums(T)'s cell" 0.0
    (Flops.get ()) ;
  check_bitwise "and the values agree" (Dense.transpose rs) cs ;
  (* crossprod(Tᵀ) is the gram TTᵀ — a different quantity, so it must
     NOT hit crossprod(T)'s cell *)
  ignore (Rewrite.crossprod t) ;
  Flops.reset () ;
  ignore (Rewrite.crossprod tt) ;
  Alcotest.(check bool) "crossprod(Tᵀ) is a distinct cell" true
    (Flops.get () > 0.0)

(* map_mats and select_rows build different logical matrices: fresh,
   empty memos, never the source's. *)
let test_derived_matrices_get_fresh_memos () =
  let t = pkfk_case () in
  ignore (Rewrite.crossprod t) ;
  ignore (Rewrite.row_sums t) ;
  let scaled = Normalized.map_mats (Mat.scale 2.0) t in
  Flops.reset () ;
  let cp = Rewrite.crossprod scaled in
  Alcotest.(check bool) "map_mats does not inherit the cache" true
    (Flops.get () > 0.0) ;
  check_bitwise "and computes its own value"
    (Memo.with_disabled (fun () -> Rewrite.crossprod scaled))
    cp ;
  let sub = Normalized.select_rows t (Array.init 100 (fun i -> i * 3)) in
  Flops.reset () ;
  let rs = Rewrite.row_sums sub in
  Alcotest.(check bool) "select_rows does not inherit the cache" true
    (Flops.get () > 0.0) ;
  Alcotest.(check int) "with the selection's row count" 100 (Dense.rows rs)

(* ---- the indicator fan-in diagonal ---- *)

let test_indicator_col_counts_memoized () =
  let k = Indicator.random ~rng:(Rng.of_int 3) ~rows:500 ~cols:20 () in
  let fresh = Memo.with_disabled (fun () -> Indicator.col_counts k) in
  let first = Indicator.col_counts k in
  Alcotest.(check bool) "counts equal fresh computation" true (fresh = first) ;
  Flops.reset () ;
  let second = Indicator.col_counts k in
  Alcotest.(check bool) "hit returns the same array" true (second == first) ;
  Alcotest.(check (float 0.0)) "hit costs zero flops" 0.0 (Flops.get ())

(* ---- the global switch ---- *)

let test_disabled_layer_writes_nothing () =
  let t = pkfk_case () in
  Memo.with_disabled (fun () -> ignore (Rewrite.crossprod t)) ;
  Alcotest.(check bool) "with_disabled left the cell empty" false
    (Memo.is_cached (Normalized.memo t).Normalized.mc_crossprod) ;
  ignore (Rewrite.crossprod t) ;
  Alcotest.(check bool) "enabled call filled it" true
    (Memo.is_cached (Normalized.memo t).Normalized.mc_crossprod)

let () =
  Alcotest.run "memo"
    [ ( "contract",
        [ Alcotest.test_case "all representations" `Quick
            test_contract_all_reprs;
          QCheck_alcotest.to_alcotest prop_memo_equals_fresh ] );
      ( "sharing",
        [ Alcotest.test_case "transpose shares" `Quick
            test_transpose_shares_memo;
          Alcotest.test_case "map_mats / select_rows do not" `Quick
            test_derived_matrices_get_fresh_memos ] );
      ( "cells",
        [ Alcotest.test_case "indicator col_counts" `Quick
            test_indicator_col_counts_memoized;
          Alcotest.test_case "disabled layer writes nothing" `Quick
            test_disabled_layer_writes_nothing ] ) ]
