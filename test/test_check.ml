(* Tests for the static plan checker: every diagnostic code has a
   minimal trigger, the abstract shape agrees with both the legacy
   raising shape_of and the shape of the evaluated result on random
   well-formed expressions, the analysis is total (never raises, even
   on corrupt or ill-formed trees), and the plan-file parser
   round-trips the R-flavoured surface syntax. *)

open La
open Sparse
open Morpheus
open Test_support

let t0 () = Gen.normalized ~seed:41 Gen.Star2

(* naive substring / prefix tests (avoid extra library deps) *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let codes_of report =
  List.map (fun d -> Check.code_name d.Check.code) report.Check.diagnostics

let check_codes name expected report =
  Alcotest.(check (list string)) name expected (codes_of report)

(* ---- one minimal trigger per diagnostic code ---- *)

(* 8×4, deliberately non-square so T %*% T is a dimension mismatch *)
let rect_normalized () =
  let s = Mat.of_dense (Dense.random ~rng:(Rng.of_int 5) 8 2) in
  let r = Mat.of_dense (Dense.random ~rng:(Rng.of_int 6) 3 2) in
  let k = Indicator.random ~rng:(Rng.of_int 7) ~rows:8 ~cols:3 () in
  Normalized.pkfk ~s ~k ~r

let test_e001_product () =
  let t = Expr.normalized (rect_normalized ()) in
  let report = Check.analyze Expr.(t *@ t) in
  check_codes "E001 only" [ "E001" ] report ;
  let d = List.hd (Check.errors report) in
  Alcotest.(check bool) "error severity" true
    (Check.severity_of d.Check.code = Check.Error) ;
  Alcotest.(check bool) "subterm rendered" true
    (String.length d.Check.subterm > 0)

let test_e001_elementwise () =
  let a = Expr.dense (Dense.create 3 2) and b = Expr.dense (Dense.create 2 3) in
  check_codes "E001 only" [ "E001" ] (Check.analyze Expr.(a +@ b))

let test_e002_unbound () =
  let report = Check.analyze (Expr.var "nope") in
  check_codes "E002 only" [ "E002" ] report ;
  Alcotest.(check bool) "top result" true
    (report.Check.result.Check.shape = Check.Top)

let test_e003_scalar_operand () =
  check_codes "rowSums of scalar" [ "E003" ]
    (Check.analyze Expr.(Row_sums (scalar 2.0))) ;
  check_codes "colSums of scalar" [ "E003" ]
    (Check.analyze Expr.(Col_sums (scalar 2.0))) ;
  check_codes "scalar +@ matrix" [ "E003" ]
    (Check.analyze Expr.(scalar 1.0 +@ dense (Dense.create 2 2)))

(* E004: constructors reject invalid structure, so corrupt an indicator
   mapping in place (Indicator.mapping returns the shared array). *)
let corrupted () =
  let t = Gen.normalized ~seed:42 Gen.Pkfk in
  let part = List.hd (Normalized.parts t) in
  let mapping = Indicator.mapping part.Normalized.ind in
  mapping.(0) <- Indicator.cols part.Normalized.ind + 5 ;
  t

let test_e004_invariants () =
  let t = corrupted () in
  Alcotest.(check bool) "validate reports" true (Normalized.validate t <> []) ;
  check_codes "E004 only" [ "E004" ] (Check.analyze (Expr.normalized t)) ;
  (* also via the environment *)
  check_codes "E004 via env" [ "E004" ]
    (Check.analyze ~env:[ ("T", Expr.Normalized t) ] (Expr.var "T"))

let test_w001_elementwise_materializes () =
  let tn = t0 () in
  let n, d = Normalized.dims tn in
  let x = Expr.dense (Dense.create n d) in
  check_codes "W001 only" [ "W001" ]
    (Check.analyze Expr.(Expr.normalized tn +@ x))

let test_w002_unresolvable_chain () =
  let a = Expr.dense (Dense.create 3 3) in
  let report = Check.analyze Expr.(a *@ (Sum a *@ a)) in
  Alcotest.(check bool) "W002 present" true
    (List.exists (fun d -> d.Check.code = Check.W002) report.Check.diagnostics) ;
  Alcotest.(check bool) "only warnings" true (Check.is_ok report)

let test_w003_slow_factorization () =
  (* tuple ratio 2 < τ=5 → factorization predicted slower *)
  let v = Check.normalized_value ~ns:100 ~ds:2 ~nr:50 ~dr:4 () in
  let x = Check.dense_value 6 1 in
  let report =
    Check.analyze_abstract ~env:[ ("T", v); ("X", x) ] Expr.(var "T" *@ var "X")
  in
  check_codes "W003 only" [ "W003" ] report ;
  Alcotest.(check bool) "still ok (warning)" true (Check.is_ok report)

(* ---- diagnostics carry usable paths ---- *)

let test_paths_address_subterms () =
  let t = Expr.normalized (rect_normalized ()) in
  let bad = Expr.(Sum (t *@ t)) in
  let report = Check.analyze bad in
  match Check.errors report with
  | [ d ] ->
    (match Ast.subterm bad d.Check.path with
    | Some (Ast.Mult _) -> ()
    | _ -> Alcotest.fail "path should address the offending Mult") ;
    Alcotest.(check bool) "where mentions sum" true
      (contains ~sub:"sum" d.Check.where)
  | ds -> Alcotest.failf "expected exactly one error, got %d" (List.length ds)

(* ---- agreement with the legacy raising API and with evaluation ---- *)

let value_shape = function
  | Expr.Scalar _ -> Check.Scalar
  | Expr.Regular m ->
    Check.Matrix (Some (Mat.rows m), Some (Mat.cols m))
  | Expr.Normalized n ->
    Check.Matrix (Some (Normalized.rows n), Some (Normalized.cols n))

(* random well-formed expression over tn, as in test_expr.ml *)
let rec random_expr rng tn depth =
  let n, d = Normalized.dims tn in
  let leaf () =
    match Rng.int rng 3 with
    | 0 -> (Expr.normalized tn, n, d)
    | 1 ->
      let k = 1 + Rng.int rng 2 in
      (Expr.dense (Dense.random ~rng d k), d, k)
    | _ ->
      let k = 1 + Rng.int rng 2 in
      (Expr.dense (Dense.random ~rng k n), k, n)
  in
  if depth = 0 then leaf ()
  else begin
    let e, r, c = random_expr rng tn (depth - 1) in
    if r = 0 then (e, 0, 0)
    else
      match Rng.int rng 8 with
      | 0 -> (Expr.Scale (Rng.uniform rng ~lo:(-2.0) ~hi:2.0, e), r, c)
      | 1 -> (Expr.Add_scalar (Rng.uniform rng ~lo:(-1.0) ~hi:1.0, e), r, c)
      | 2 -> (Expr.Transpose e, c, r)
      | 3 -> (Expr.Row_sums e, r, 1)
      | 4 -> (Expr.Col_sums e, 1, c)
      | 5 -> (Expr.Sum e, 0, 0)
      | 6 -> (Expr.Crossprod e, c, c)
      | _ ->
        let k = 1 + Rng.int rng 2 in
        (Expr.(e *@ dense (Dense.random ~rng c k)), r, k)
  end

let prop_shape_agrees_with_eval =
  QCheck.Test.make ~name:"qcheck: checker shape = eval shape = shape_of"
    ~count:150
    (QCheck.make
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck.Gen.(pair (int_range 0 100_000) (int_range 1 4)))
    (fun (seed, depth) ->
      let tn = Gen.normalized ~seed:(seed mod 7) Gen.Star2 in
      let rng = Rng.of_int seed in
      let e, _, _ = random_expr rng tn depth in
      let report = Check.analyze e in
      Check.is_ok report
      && report.Check.result.Check.shape = value_shape (Expr.eval e)
      && (match (Expr.shape_of ~env:[] e, report.Check.result.Check.shape) with
         | Expr.S_scalar, Check.Scalar -> true
         | Expr.S_mat (r, c), Check.Matrix (Some r', Some c') ->
           r = r' && c = c'
         | _ -> false))

(* totality: arbitrary (often ill-formed) trees must never raise *)
let rec random_garbage rng depth =
  if depth = 0 then
    match Rng.int rng 4 with
    | 0 -> Expr.scalar (Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
    | 1 -> Expr.var "free"
    | 2 -> Expr.dense (Dense.random ~rng (1 + Rng.int rng 4) (1 + Rng.int rng 4))
    | _ -> Expr.normalized (Gen.normalized ~seed:(Rng.int rng 5) Gen.Pkfk)
  else begin
    let sub () = random_garbage rng (depth - 1) in
    match Rng.int rng 12 with
    | 0 -> Expr.Scale (2.0, sub ())
    | 1 -> Expr.Add_scalar (1.0, sub ())
    | 2 -> Expr.Pow_scalar (sub (), 2.0)
    | 3 -> Expr.Transpose (sub ())
    | 4 -> Expr.Row_sums (sub ())
    | 5 -> Expr.Col_sums (sub ())
    | 6 -> Expr.Sum (sub ())
    | 7 -> Expr.Mult (sub (), sub ())
    | 8 -> Expr.Crossprod (sub ())
    | 9 -> Expr.Ginv (sub ())
    | 10 -> Expr.Add (sub (), sub ())
    | _ -> Expr.Div_elem (sub (), sub ())
  end

let prop_total =
  QCheck.Test.make ~name:"qcheck: analysis is total (never raises)" ~count:200
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_range 0 100_000))
    (fun seed ->
      let rng = Rng.of_int seed in
      let e = random_garbage rng (1 + Rng.int rng 4) in
      let report = Check.analyze e in
      ignore (Check.report_to_string report) ;
      ignore (Check.totals report) ;
      true)

(* ---- per-node annotations ---- *)

let test_annotations () =
  let tn = t0 () in
  let n, d = Normalized.dims tn in
  ignore n ;
  let x = Expr.dense (Dense.create d 2) in
  let report = Check.analyze Expr.(Expr.normalized tn *@ x) in
  Alcotest.(check int) "three nodes" 3 (List.length report.Check.nodes) ;
  let root = List.hd report.Check.nodes in
  Alcotest.(check (list int)) "preorder: root first" [] root.Check.a_path ;
  Alcotest.(check bool) "standard cost present" true
    (root.Check.a_standard <> None) ;
  Alcotest.(check bool) "factorized cost present" true
    (root.Check.a_factorized <> None) ;
  Alcotest.(check bool) "rule names LMM" true
    (match root.Check.a_rule with
    | Some r -> contains ~sub:"LMM" r
    | None -> false) ;
  let std, fact = Check.totals report in
  Alcotest.(check bool) "totals positive" true (std > 0.0 && fact > 0.0)

let test_infer_shape_result () =
  let t = Expr.normalized (rect_normalized ()) in
  (match Check.infer_shape Expr.(Sum t) with
  | Ok Check.Scalar -> ()
  | _ -> Alcotest.fail "sum is scalar") ;
  match Check.infer_shape Expr.(t *@ t) with
  | Error msg ->
    Alcotest.(check bool) "legacy message" true
      (has_prefix ~prefix:"product shape mismatch" msg)
  | Ok _ -> Alcotest.fail "expected error"

(* the raising wrapper keeps the legacy message strings verbatim *)
let test_wrapper_messages () =
  let msg e = try ignore (Expr.shape_of ~env:[] e) ; "" with Expr.Type_error m -> m in
  Alcotest.(check string) "unbound" "unbound variable nope"
    (msg (Expr.var "nope")) ;
  Alcotest.(check string) "rowSums" "rowSums of scalar"
    (msg Expr.(Row_sums (scalar 1.0))) ;
  Alcotest.(check string) "elementwise mix"
    "elementwise op between scalar and matrix"
    (msg Expr.(scalar 1.0 +@ dense (Dense.create 2 2))) ;
  Alcotest.(check string) "elementwise dims"
    "elementwise shape mismatch: 3x2 vs 2x3"
    (msg Expr.(dense (Dense.create 3 2) +@ dense (Dense.create 2 3)))

(* ---- explain / builder integration ---- *)

let test_describe_verdict () =
  let ok = Gen.normalized ~seed:43 Gen.Pkfk in
  let s = Explain.describe ok in
  Alcotest.(check bool) "ok verdict" true (contains ~sub:"invariants: ok" s) ;
  let bad = corrupted () in
  let s = Explain.describe bad in
  Alcotest.(check bool) "violation verdict" true
    (contains ~sub:"invariants: VIOLATED" s)

(* ---- plan files ---- *)

let plan_src =
  "# comment\n\
   normalized T ns=1000 ds=4 nr=50 dr=6\n\
   dense y 1000 1\n\
   scalar alpha\n\
   let gram = crossprod(T)\n\
   check ginv(gram) %*% (T' %*% y)\n\
   check alpha %*% rowSums(T)\n"

let test_plan_parse () =
  match Plan.parse plan_src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok plan ->
    Alcotest.(check int) "three declarations" 3 (List.length (Plan.env plan)) ;
    Alcotest.(check int) "two checks" 2 (List.length (Plan.checks plan)) ;
    let env = Plan.env plan in
    List.iter
      (fun (name, e) ->
        let report = Check.analyze_abstract ~env e in
        if not (Check.is_ok report) then
          Alcotest.failf "plan check %s has errors: %s" name
            (String.concat "; "
               (List.map Check.diagnostic_to_string (Check.errors report))))
      (Plan.checks plan)

let test_plan_scalar_folding () =
  (* 3 * X must fold to Scale, not an ill-typed Mul_elem *)
  match Plan.parse_expr "3 * X + 1" with
  | Ok (Ast.Add_scalar (1.0, Ast.Scale (3.0, Ast.Var "X"))) -> ()
  | Ok e -> Alcotest.failf "unexpected parse: %s" (Ast.to_string e)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_plan_precedence () =
  (* %*% binds tighter than *, postfix ' tightest *)
  match Plan.parse_expr "A' %*% B * C" with
  | Ok (Ast.Mul_elem (Ast.Mult (Ast.Transpose (Ast.Var "A"), Ast.Var "B"),
                      Ast.Var "C")) -> ()
  | Ok e -> Alcotest.failf "unexpected parse: %s" (Ast.to_string e)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_plan_errors_have_lines () =
  match Plan.parse "dense X 3 3\ncheck X %*%\n" with
  | Error msg ->
    Alcotest.(check bool) "line number" true (has_prefix ~prefix:"line 2:" msg)
  | Ok _ -> Alcotest.fail "expected parse error"

let test_plan_undeclared_is_e002 () =
  match Plan.parse "dense X 3 3\ncheck X %*% Mystery\n" with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok plan ->
    let _, e = List.hd (Plan.checks plan) in
    let report = Check.analyze_abstract ~env:(Plan.env plan) e in
    Alcotest.(check (list string)) "E002" [ "E002" ] (codes_of report)

(* optimize must reassociate through the checker's total analysis and
   leave scalar-containing chains untouched (no exceptions involved) *)
let test_optimize_without_exceptions () =
  let a = Expr.dense (Dense.create 10 2) in
  let b = Expr.dense (Dense.create 2 10) in
  let c = Expr.dense (Dense.create 10 1) in
  (match Expr.optimize Expr.(a *@ b *@ c) with
  | Expr.Mult (_, Expr.Mult _) -> () (* right-assoc is cheaper *)
  | e -> Alcotest.failf "expected reassociation, got %s" (Expr.to_string e)) ;
  let chain = Expr.(a *@ (Sum c *@ (b *@ c))) in
  let kept = Expr.optimize chain in
  Alcotest.(check string) "scalar chain untouched" (Expr.to_string chain)
    (Expr.to_string kept)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "check"
    [ ( "codes",
        [ Alcotest.test_case "E001 product" `Quick test_e001_product;
          Alcotest.test_case "E001 elementwise" `Quick test_e001_elementwise;
          Alcotest.test_case "E002 unbound" `Quick test_e002_unbound;
          Alcotest.test_case "E003 scalar operand" `Quick test_e003_scalar_operand;
          Alcotest.test_case "E004 invariants" `Quick test_e004_invariants;
          Alcotest.test_case "W001 materialization" `Quick
            test_w001_elementwise_materializes;
          Alcotest.test_case "W002 chain" `Quick test_w002_unresolvable_chain;
          Alcotest.test_case "W003 slow factorization" `Quick
            test_w003_slow_factorization;
          Alcotest.test_case "paths" `Quick test_paths_address_subterms ] );
      ( "analysis",
        [ Alcotest.test_case "annotations" `Quick test_annotations;
          Alcotest.test_case "infer_shape" `Quick test_infer_shape_result;
          Alcotest.test_case "wrapper messages" `Quick test_wrapper_messages;
          Alcotest.test_case "describe verdict" `Quick test_describe_verdict;
          Alcotest.test_case "optimize total" `Quick
            test_optimize_without_exceptions ] );
      ( "plans",
        [ Alcotest.test_case "parse + check" `Quick test_plan_parse;
          Alcotest.test_case "scalar folding" `Quick test_plan_scalar_folding;
          Alcotest.test_case "precedence" `Quick test_plan_precedence;
          Alcotest.test_case "parse errors" `Quick test_plan_errors_have_lines;
          Alcotest.test_case "undeclared var" `Quick test_plan_undeclared_is_e002 ] );
      ( "properties",
        [ qc prop_shape_agrees_with_eval; qc prop_total ] ) ]
