(* Tests for the EXPLAIN facility: the rendered plans must reflect the
   actual matrix structure, the cost numbers must agree with the Cost
   module, and the decision must match Decision.heuristic. *)

open La
open Sparse
open Morpheus
open Test_support

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains msg hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle hay

let pkfk () =
  let rng = Rng.of_int 7 in
  let s = Mat.of_dense (Dense.random ~rng 200 4) in
  let r = Mat.of_dense (Dense.random ~rng 20 8) in
  let k = Indicator.random ~rng ~rows:200 ~cols:20 () in
  Normalized.pkfk ~s ~k ~r

let test_lmm_plan () =
  let t = pkfk () in
  let s = Explain.explain t (Explain.Lmm 1) in
  check_contains "op" s "LMM" ;
  check_contains "rule structure" s "S*X[1:dS,]" ;
  check_contains "K(RX) order" s "K1*(R1*X[slice,])" ;
  check_contains "decision" s "factorized"

let test_crossprod_plan () =
  let t = pkfk () in
  let s = Explain.explain t Explain.Crossprod in
  check_contains "efficient diag" s "diag(colSums K1)" ;
  check_contains "off-diagonal note" s "(S'Ki)Ri"

let test_aggregation_plans () =
  let t = pkfk () in
  check_contains "rowSums" (Explain.explain t Explain.Row_sums) "K1*rowSums(R1)" ;
  check_contains "colSums" (Explain.explain t Explain.Col_sums) "colSums(K1)*R1" ;
  check_contains "sum" (Explain.explain t Explain.Sum) "colSums(K1)*rowSums(R1)"

let test_ginv_branches () =
  let t = pkfk () in
  check_contains "tall branch" (Explain.explain t Explain.Ginv) "[d < n branch]" ;
  let wide = Rewrite.transpose t in
  check_contains "wide branch" (Explain.explain wide Explain.Ginv) "[d >= n branch]"

let test_costs_match_cost_module () =
  let t = pkfk () in
  let r = Explain.analyze t (Explain.Lmm 2) in
  let dims = Decision.cost_dims t in
  Alcotest.(check (float 1e-9)) "standard" (Cost.standard dims (Cost.Lmm 2))
    r.Explain.standard_flops ;
  Alcotest.(check (float 1e-9)) "factorized" (Cost.factorized dims (Cost.Lmm 2))
    r.Explain.factorized_flops ;
  Alcotest.(check bool) "speedup consistent" true
    (Float.abs
       (r.Explain.predicted_speedup
       -. (r.Explain.standard_flops /. r.Explain.factorized_flops))
    < 1e-9)

let test_decision_matches () =
  let t = pkfk () in
  let r = Explain.analyze t Explain.Scalar_op in
  Alcotest.(check string) "same decision"
    (Decision.to_string (Decision.heuristic t))
    (Decision.to_string r.Explain.decision) ;
  (* forcing thresholds flips it *)
  let r' = Explain.analyze ~tau:1000.0 t Explain.Scalar_op in
  Alcotest.(check string) "forced materialize" "materialized"
    (Decision.to_string r'.Explain.decision)

let test_mn_plan_names () =
  let t = Gen.normalized ~seed:3 Gen.Mn in
  let s = Explain.explain t Explain.Row_sums in
  check_contains "I_S name" s "I_S" ;
  check_contains "I_R name" s "I_R1"

let test_star_plan_names () =
  let t = Gen.normalized ~seed:4 Gen.Star3 in
  let s = Explain.explain t (Explain.Lmm 1) in
  check_contains "K1" s "K1" ;
  check_contains "K2" s "K2" ;
  check_contains "K3" s "K3"

let test_describe () =
  let t = pkfk () in
  let s = Explain.describe t in
  check_contains "dims" s "200 x 12" ;
  check_contains "entity line" s "entity S: 200 x 4" ;
  check_contains "part line" s "attribute 20 x 8" ;
  check_contains "redundancy" s "redundancy ratio" ;
  let mn = Gen.normalized ~seed:5 Gen.Mn in
  check_contains "mn note" (Explain.describe mn) "no plain entity part"

let () =
  Alcotest.run "explain"
    [ ( "plans",
        [ Alcotest.test_case "LMM" `Quick test_lmm_plan;
          Alcotest.test_case "crossprod" `Quick test_crossprod_plan;
          Alcotest.test_case "aggregations" `Quick test_aggregation_plans;
          Alcotest.test_case "ginv branches" `Quick test_ginv_branches ] );
      ( "consistency",
        [ Alcotest.test_case "costs" `Quick test_costs_match_cost_module;
          Alcotest.test_case "decision" `Quick test_decision_matches ] );
      ( "naming",
        [ Alcotest.test_case "M:N names" `Quick test_mn_plan_names;
          Alcotest.test_case "star names" `Quick test_star_plan_names;
          Alcotest.test_case "describe" `Quick test_describe ] ) ]
