(* Dedicated qcheck property suite: algebraic laws that must hold for
   the kernels and the rewrites — adjointness of the indicator products,
   positive semi-definiteness of cross-products, linearity of the
   factorized operators, closure-depth stability, and cost-model
   monotonicity. *)

open La
open Sparse
open Morpheus
open Test_support

let qc = QCheck_alcotest.to_alcotest

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let shape_of_seed seed = List.nth Gen.shapes (seed mod 4)

(* <K·v, w> = <v, Kᵀ·w>: gather and scatter-add are adjoint. *)
let prop_indicator_adjoint =
  QCheck.Test.make ~name:"indicator adjointness" ~count:100 seed_gen (fun seed ->
      let rng = Rng.of_int seed in
      let rows = 5 + Rng.int rng 20 in
      let cols = 1 + Rng.int rng (min rows 6) in
      let k = Indicator.random ~rng ~rows ~cols () in
      let v = Array.init cols (fun _ -> Rng.gaussian rng) in
      let w = Array.init rows (fun _ -> Rng.gaussian rng) in
      let lhs = Blas.dot (Indicator.gather k v) w in
      let rhs = Blas.dot v (Indicator.scatter_add k w) in
      Float.abs (lhs -. rhs) < 1e-9 *. (1.0 +. Float.abs lhs))

(* crossprod(T) is positive semi-definite: xᵀ(TᵀT)x = ‖Tx‖² ≥ 0. *)
let prop_crossprod_psd =
  QCheck.Test.make ~name:"crossprod PSD" ~count:60 seed_gen (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let cp = Rewrite.crossprod t in
      let rng = Rng.of_int (seed + 1) in
      let x = Array.init (Dense.rows cp) (fun _ -> Rng.gaussian rng) in
      let cx = Blas.gemv cp x in
      Blas.dot x cx >= -1e-8)

(* crossprod is symmetric. *)
let prop_crossprod_symmetric =
  QCheck.Test.make ~name:"crossprod symmetric" ~count:60 seed_gen (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let cp = Rewrite.crossprod t in
      Dense.approx_equal ~tol:1e-10 cp (Dense.transpose cp))

(* LMM is linear: T(αx + βz) = α·Tx + β·Tz. *)
let prop_lmm_linear =
  QCheck.Test.make ~name:"LMM linearity" ~count:60 seed_gen (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let rng = Rng.of_int (seed + 2) in
      let d = Normalized.cols t in
      let x = Dense.gaussian ~rng d 1 and z = Dense.gaussian ~rng d 1 in
      let a = Rng.uniform rng ~lo:(-2.0) ~hi:2.0 in
      let b = Rng.uniform rng ~lo:(-2.0) ~hi:2.0 in
      let combo = Dense.add (Dense.scale a x) (Dense.scale b z) in
      let lhs = Rewrite.lmm t combo in
      let rhs =
        Dense.add (Dense.scale a (Rewrite.lmm t x)) (Dense.scale b (Rewrite.lmm t z))
      in
      Dense.approx_equal ~tol:1e-8 lhs rhs)

(* scalar-op closure composes to any depth without error drift:
   applying k alternating scale/add ops matches the dense result. *)
let prop_closure_depth =
  QCheck.Test.make ~name:"scalar-op closure depth" ~count:40
    (QCheck.make
       ~print:(fun (s, k) -> Printf.sprintf "seed=%d depth=%d" s k)
       QCheck.Gen.(pair (int_range 0 10_000) (int_range 1 8)))
    (fun (seed, depth) ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let m = Gen.ground_truth t in
      let rng = Rng.of_int (seed + 3) in
      let t' = ref t and m' = ref m in
      for _ = 1 to depth do
        let c = Rng.uniform rng ~lo:0.5 ~hi:1.5 in
        if Rng.bool rng then begin
          t' := Rewrite.scale c !t' ;
          m' := Dense.scale c !m'
        end
        else begin
          t' := Rewrite.add_scalar c !t' ;
          m' := Dense.add_scalar c !m'
        end
      done ;
      Dense.approx_equal ~tol:1e-8 !m' (Gen.ground_truth !t'))

(* rowSums ∘ transpose = transpose ∘ colSums on normalized matrices. *)
let prop_appendix_a_aggregation =
  QCheck.Test.make ~name:"appendix A aggregation swap" ~count:60 seed_gen
    (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      Dense.approx_equal ~tol:1e-9
        (Rewrite.row_sums (Rewrite.transpose t))
        (Dense.transpose (Rewrite.col_sums t)))

(* sum(T) is invariant under transposition and row permutation. *)
let prop_sum_invariances =
  QCheck.Test.make ~name:"sum invariances" ~count:60 seed_gen (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let n = Normalized.rows t in
      let perm = Array.init n Fun.id in
      Rng.shuffle (Rng.of_int (seed + 4)) perm ;
      let s0 = Rewrite.sum t in
      let s1 = Rewrite.sum (Rewrite.transpose t) in
      let s2 = Rewrite.sum (Normalized.select_rows t perm) in
      Float.abs (s0 -. s1) < 1e-8 *. (1.0 +. Float.abs s0)
      && Float.abs (s0 -. s2) < 1e-8 *. (1.0 +. Float.abs s0))

(* Cost model: factorized cost never exceeds standard once TR ≥ 1 and
   FR ≥ 0 for linear operators (the model's crossing point is below
   TR = 1 for these shapes). *)
let prop_cost_monotone =
  QCheck.Test.make ~name:"cost-model speed-up grows with TR" ~count:100
    (QCheck.make
       ~print:(fun (a, b) -> Printf.sprintf "tr=%d fr=%d" a b)
       QCheck.Gen.(pair (int_range 2 50) (int_range 1 8)))
    (fun (tr, fr) ->
      let nr = 1000 in
      let dims tr =
        { Cost.ns = tr * nr; ds = 10; nr; dr = 10 * fr }
      in
      let s1 = Cost.speedup (dims tr) (Cost.Lmm 1) in
      let s2 = Cost.speedup (dims (tr + 1)) (Cost.Lmm 1) in
      s2 >= s1 -. 1e-9 && s1 > 1.0)

(* select_rows composes: selecting idx2 of selecting idx1 = selecting
   the composition. *)
let prop_select_rows_compose =
  QCheck.Test.make ~name:"select_rows composition" ~count:60 seed_gen
    (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let n = Normalized.rows t in
      let rng = Rng.of_int (seed + 5) in
      let idx1 = Array.init (max 1 (n / 2)) (fun _ -> Rng.int rng n) in
      let idx2 =
        Array.init (max 1 (Array.length idx1 / 2)) (fun _ ->
            Rng.int rng (Array.length idx1))
      in
      let two_step =
        Normalized.select_rows (Normalized.select_rows t idx1) idx2
      in
      let composed =
        Normalized.select_rows t (Array.map (fun i -> idx1.(i)) idx2)
      in
      Dense.approx_equal ~tol:1e-12 (Gen.ground_truth two_step)
        (Gen.ground_truth composed))

(* Materialize ∘ Io roundtrip is the identity on the logical T. *)
let prop_io_roundtrip =
  QCheck.Test.make ~name:"io roundtrip" ~count:20 seed_gen (fun seed ->
      let t = Gen.normalized ~seed ~sparse:(seed mod 2 = 0) (shape_of_seed seed) in
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "morpheus_prop_io_%d_%d" (Unix.getpid ()) seed)
      in
      Fun.protect
        ~finally:(fun () -> Io.delete ~dir)
        (fun () ->
          Io.save ~dir t ;
          Dense.approx_equal ~tol:0.0 (Gen.ground_truth t)
            (Gen.ground_truth (Io.load ~dir))))

(* Dmm A·B respects associativity against dense: (A·B)·x = A·(B·x). *)
let prop_dmm_assoc =
  QCheck.Test.make ~name:"DMM associativity with vectors" ~count:40 seed_gen
    (fun seed ->
      let rng = Rng.of_int seed in
      let a = Gen.normalized ~seed Gen.Pkfk in
      let da = Normalized.cols a in
      (* b: normalized with rows = da *)
      let nb = da in
      let s = Mat.of_dense (Dense.gaussian ~rng nb 2) in
      let nr = max 1 (nb / 2) in
      let k = Indicator.random ~rng ~rows:nb ~cols:nr () in
      let r = Mat.of_dense (Dense.gaussian ~rng nr 2) in
      let b = Normalized.pkfk ~s ~k ~r in
      let x = Dense.gaussian ~rng (Normalized.cols b) 1 in
      let ab = Dmm.mult a b in
      let lhs = Blas.gemm ab x in
      let rhs = Rewrite.lmm a (Rewrite.lmm b x) in
      Dense.approx_equal ~tol:1e-8 lhs rhs)

let () =
  Alcotest.run "properties"
    [ ( "algebraic-laws",
        [ qc prop_indicator_adjoint;
          qc prop_crossprod_psd;
          qc prop_crossprod_symmetric;
          qc prop_lmm_linear;
          qc prop_appendix_a_aggregation;
          qc prop_sum_invariances ] );
      ( "structural",
        [ qc prop_closure_depth;
          qc prop_select_rows_compose;
          qc prop_io_roundtrip;
          qc prop_dmm_assoc ] );
      ("cost-model", [ qc prop_cost_monotone ]) ]
