(* Tests for the out-of-core (ORE-style) substrate: chunk stores,
   streaming operators, and the chunked normalized matrix used by the
   Tables 9/10 scalability experiment. *)

open La
open Sparse
open Morpheus
open Ore

let tmpdir prefix =
  let d = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 100000))
  in
  d

let with_store m chunk f =
  let dir = tmpdir "morpheus_ore" in
  let store = Chunk_store.of_dense ~dir ~chunk_size:chunk m in
  Fun.protect ~finally:(fun () -> Chunk_store.delete store) (fun () -> f store)

let check_close ?(tol = 1e-9) msg a b =
  if not (Dense.approx_equal ~tol a b) then
    Alcotest.failf "%s: max|diff| = %g" msg (Dense.max_abs_diff a b)

let rng () = Rng.of_int 31415

(* ---- chunk store ---- *)

let test_store_roundtrip () =
  let m = Dense.random ~rng:(rng ()) 23 4 in
  with_store m 5 (fun store ->
      Alcotest.(check int) "rows" 23 (Chunk_store.rows store) ;
      Alcotest.(check int) "cols" 4 (Chunk_store.cols store) ;
      Alcotest.(check int) "chunks" 5 (Chunk_store.nchunks store) ;
      check_close "roundtrip" m (Chunk_store.to_dense store))

let test_store_survives_reopen () =
  let m = Dense.random ~rng:(rng ()) 10 3 in
  with_store m 4 (fun store ->
      (* chunks live on disk: re-read one directly *)
      let c0 = Chunk_store.get store 0 in
      check_close "chunk 0" (Dense.sub_rows m ~lo:0 ~hi:4) c0 ;
      let c2 = Chunk_store.get store 2 in
      check_close "chunk 2 (partial)" (Dense.sub_rows m ~lo:8 ~hi:10) c2)

let test_rowapply () =
  let m = Dense.random ~rng:(rng ()) 12 3 in
  with_store m 5 (fun store ->
      let dir = tmpdir "morpheus_ore_out" in
      let out = Chunk_store.rowapply store ~dir ~f:(Dense.scale 2.0) in
      Fun.protect
        ~finally:(fun () -> Chunk_store.delete out)
        (fun () -> check_close "rowapply 2x" (Dense.scale 2.0 m) (Chunk_store.to_dense out)))

(* ---- streaming operators ---- *)

let test_chunked_ops_match_in_memory () =
  let m = Dense.random ~rng:(rng ()) 30 5 in
  with_store m 7 (fun store ->
      let x = Dense.random ~rng:(rng ()) 5 2 in
      check_close "lmm" (Blas.gemm m x) (Chunked_ops.lmm store x) ;
      let p = Dense.random ~rng:(rng ()) 30 2 in
      check_close "tlmm" (Blas.tgemm m p) (Chunked_ops.tlmm store p) ;
      check_close "crossprod" (Blas.crossprod m) (Chunked_ops.crossprod store) ;
      check_close "row_sums" (Dense.row_sums m) (Chunked_ops.row_sums store) ;
      check_close "col_sums" (Dense.col_sums m) (Chunked_ops.col_sums store) ;
      Alcotest.(check (float 1e-9)) "sum" (Dense.sum m) (Chunked_ops.sum store))

(* Parallel-across-chunks: the 4-domain backend must be bitwise equal
   to the sequential one (canonical chunk order), and both must match
   the in-memory kernels on the same data. *)
let test_chunked_ops_parallel_bitwise () =
  let check_bitwise msg a b =
    if Dense.to_arrays a <> Dense.to_arrays b then
      Alcotest.failf "%s: backends differ (max|diff| = %g)" msg
        (Dense.max_abs_diff a b)
  in
  let m = Dense.random ~rng:(rng ()) 57 6 in
  with_store m 5 (fun store ->
      let e = Exec.make 4 in
      Fun.protect
        ~finally:(fun () -> Exec.shutdown e)
        (fun () ->
          let x = Dense.random ~rng:(rng ()) 6 2 in
          let p = Dense.random ~rng:(rng ()) 57 2 in
          check_bitwise "lmm par = seq"
            (Chunked_ops.lmm ~exec:Exec.seq store x)
            (Chunked_ops.lmm ~exec:e store x) ;
          check_bitwise "tlmm par = seq"
            (Chunked_ops.tlmm ~exec:Exec.seq store p)
            (Chunked_ops.tlmm ~exec:e store p) ;
          check_bitwise "crossprod par = seq"
            (Chunked_ops.crossprod ~exec:Exec.seq store)
            (Chunked_ops.crossprod ~exec:e store) ;
          check_bitwise "row_sums par = seq"
            (Chunked_ops.row_sums ~exec:Exec.seq store)
            (Chunked_ops.row_sums ~exec:e store) ;
          check_bitwise "col_sums par = seq"
            (Chunked_ops.col_sums ~exec:Exec.seq store)
            (Chunked_ops.col_sums ~exec:e store) ;
          Alcotest.(check (float 0.0)) "sum par = seq"
            (Chunked_ops.sum ~exec:Exec.seq store)
            (Chunked_ops.sum ~exec:e store) ;
          (* against the in-memory path *)
          check_close "lmm vs in-memory" (Blas.gemm m x)
            (Chunked_ops.lmm ~exec:e store x) ;
          check_close "tlmm vs in-memory" (Blas.tgemm m p)
            (Chunked_ops.tlmm ~exec:e store p) ;
          check_close "crossprod vs in-memory" (Blas.crossprod m)
            (Chunked_ops.crossprod ~exec:e store)))

(* ---- chunked normalized matrix ---- *)

let pkfk_case () =
  let g = rng () in
  let ns = 40 and nr = 5 and ds = 3 and dr = 4 in
  let s = Dense.random ~rng:g ns ds in
  let r = Dense.random ~rng:g nr dr in
  let k = Indicator.random ~rng:g ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s:(Mat.of_dense s) ~k ~r:(Mat.of_dense r)

let mn_case () =
  let g = Rng.of_int 99 in
  let n = 35 in
  let is_ = Indicator.random ~rng:g ~rows:n ~cols:8 () in
  let ir = Indicator.random ~rng:g ~rows:n ~cols:6 () in
  let s = Mat.of_dense (Dense.random ~rng:g 8 3) in
  let r = Mat.of_dense (Dense.random ~rng:g 6 2) in
  Normalized.mn ~is_ ~s ~ir ~r

let with_chunked nm chunk f =
  let dir = tmpdir "morpheus_cn" in
  let cn = Chunked_normalized.of_normalized ~dir ~chunk_size:chunk nm in
  f cn

let test_chunked_normalized_pkfk () =
  let nm = pkfk_case () in
  let m = Materialize.to_dense nm in
  with_chunked nm 9 (fun cn ->
      Alcotest.(check (pair int int)) "dims" (Dense.dims m)
        (Chunked_normalized.rows cn, Chunked_normalized.cols cn) ;
      let x = Dense.random ~rng:(rng ()) (Dense.cols m) 2 in
      check_close "lmm" (Blas.gemm m x) (Chunked_normalized.lmm cn x) ;
      let p = Dense.random ~rng:(rng ()) (Dense.rows m) 2 in
      check_close "tlmm" (Blas.tgemm m p) (Chunked_normalized.tlmm cn p))

let test_chunked_normalized_mn () =
  let nm = mn_case () in
  let m = Materialize.to_dense nm in
  with_chunked nm 8 (fun cn ->
      let x = Dense.random ~rng:(rng ()) (Dense.cols m) 1 in
      check_close "mn lmm" (Blas.gemm m x) (Chunked_normalized.lmm cn x) ;
      let p = Dense.random ~rng:(rng ()) (Dense.rows m) 1 in
      check_close "mn tlmm" (Blas.tgemm m p) (Chunked_normalized.tlmm cn p))

let test_chunked_materialize () =
  let nm = pkfk_case () in
  let m = Materialize.to_dense nm in
  with_chunked nm 9 (fun cn ->
      let dir = tmpdir "morpheus_cn_t" in
      let t_store = Chunked_normalized.materialize ~dir cn in
      Fun.protect
        ~finally:(fun () -> Chunk_store.delete t_store)
        (fun () ->
          check_close "materialized store = T" m (Chunk_store.to_dense t_store)))

(* Chunked normalized matrix under the parallel default backend vs the
   in-memory Normalized path. *)
let test_chunked_normalized_parallel () =
  let nm = pkfk_case () in
  let m = Materialize.to_dense nm in
  with_chunked nm 9 (fun cn ->
      let e = Exec.make 4 in
      Exec.set_default e ;
      Fun.protect
        ~finally:(fun () ->
          Exec.set_default Exec.seq ;
          Exec.shutdown e)
        (fun () ->
          let x = Dense.random ~rng:(rng ()) (Dense.cols m) 2 in
          let p = Dense.random ~rng:(rng ()) (Dense.rows m) 2 in
          check_close "par lmm vs in-memory Normalized" (Rewrite.lmm nm x)
            (Chunked_normalized.lmm cn x) ;
          check_close "par tlmm vs in-memory Normalized" (Rewrite.tlmm nm p)
            (Chunked_normalized.tlmm cn p)))

(* ---- ORE logistic regression: factorized = materialized ---- *)

let test_ore_logreg_paths_agree () =
  let nm = pkfk_case () in
  let n = Normalized.rows nm in
  let g = rng () in
  let y = Dense.init n 1 (fun _ _ -> if Rng.bool g then 1.0 else -1.0) in
  with_chunked nm 9 (fun cn ->
      let dir = tmpdir "morpheus_cn_t2" in
      let t_store = Chunked_normalized.materialize ~dir cn in
      Fun.protect
        ~finally:(fun () -> Chunk_store.delete t_store)
        (fun () ->
          let wf = Ore_logreg.train_factorized ~alpha:1e-3 ~iters:6 cn y in
          let wm = Ore_logreg.train_materialized ~alpha:1e-3 ~iters:6 t_store y in
          check_close ~tol:1e-8 "F = M over chunks" wm wf ;
          (* and both match the in-memory factorized trainer *)
          let f = Ml_algs.Algorithms.Factorized.Logreg.train ~alpha:1e-3 ~iters:6 nm y in
          check_close ~tol:1e-8 "chunked = in-memory" f.Ml_algs.Algorithms.Factorized.Logreg.w wf))

let () =
  Alcotest.run "ore"
    [ ( "chunk-store",
        [ Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "on-disk chunks" `Quick test_store_survives_reopen;
          Alcotest.test_case "rowapply" `Quick test_rowapply ] );
      ( "streaming-ops",
        [ Alcotest.test_case "match in-memory" `Quick test_chunked_ops_match_in_memory;
          Alcotest.test_case "parallel across chunks bitwise" `Quick
            test_chunked_ops_parallel_bitwise ] );
      ( "chunked-normalized",
        [ Alcotest.test_case "pkfk lmm/tlmm" `Quick test_chunked_normalized_pkfk;
          Alcotest.test_case "parallel default backend" `Quick
            test_chunked_normalized_parallel;
          Alcotest.test_case "mn lmm/tlmm" `Quick test_chunked_normalized_mn;
          Alcotest.test_case "materialize" `Quick test_chunked_materialize ] );
      ( "ore-logreg",
        [ Alcotest.test_case "paths agree" `Quick test_ore_logreg_paths_agree ] ) ]
