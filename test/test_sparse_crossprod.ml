(* Tests for the sparse-output cross-product: it must agree exactly with
   the dense rewrite (and hence with the materialized TᵀT) on every
   schema shape, and it must scale to one-hot widths where a dense
   output would be prohibitive. *)

open La
open Sparse
open Morpheus
open Test_support

let check_close = Gen.check_close

let test_matches_dense_rewrite () =
  List.iter
    (fun seed ->
      List.iter
        (fun sparse ->
          List.iter
            (fun shape ->
              let t = Gen.normalized ~seed ~sparse shape in
              let dense_cp = Rewrite.crossprod t in
              let sparse_cp = Sparse_crossprod.crossprod t in
              check_close ~tol:1e-9
                (Printf.sprintf "%s sparse=%b seed=%d" (Gen.shape_name shape)
                   sparse seed)
                dense_cp
                (Csr.to_dense sparse_cp))
            Gen.shapes)
        [ false; true ])
    [ 0; 1; 2 ]

let test_matches_materialized () =
  let t = Gen.normalized ~seed:5 ~sparse:true Gen.Star3 in
  let m = Gen.ground_truth t in
  check_close ~tol:1e-9 "= materialized TᵀT" (Blas.crossprod m)
    (Csr.to_dense (Sparse_crossprod.crossprod t))

let test_output_is_sparse_for_onehot () =
  (* two one-hot attribute tables: the co-occurrence matrix must stay
     far below d² stored entries *)
  let rng = Rng.of_int 9 in
  let ns = 400 in
  let onehot n d =
    Mat.of_csr
      (Csr.of_triplets ~rows:n ~cols:d
         (List.init n (fun i -> (i, Rng.int rng d, 1.0))))
  in
  let nr1 = 40 and d1 = 120 in
  let nr2 = 30 and d2 = 150 in
  let k1 = Indicator.random ~rng ~rows:ns ~cols:nr1 () in
  let k2 = Indicator.random ~rng ~rows:ns ~cols:nr2 () in
  let t =
    Normalized.star
      ~s:(Mat.of_csr (Csr.of_triplets ~rows:ns ~cols:0 []))
      ~parts:[ (k1, onehot nr1 d1); (k2, onehot nr2 d2) ]
  in
  let cp = Sparse_crossprod.crossprod t in
  let d = d1 + d2 in
  Alcotest.(check (pair int int)) "dims" (d, d) (Csr.dims cp) ;
  Alcotest.(check bool)
    (Printf.sprintf "nnz %d << d² = %d" (Csr.nnz cp) (d * d))
    true
    (Csr.nnz cp < d * d / 10) ;
  (* still exact *)
  check_close ~tol:1e-9 "exact" (Rewrite.crossprod t) (Csr.to_dense cp)

let test_wide_onehot_smoke () =
  (* d large enough that callers would not want the dense path: the
     sparse output must be symmetric with the right diagonal mass *)
  let rng = Rng.of_int 10 in
  let ns = 3000 and nr = 300 and dr = 5000 in
  let r =
    Mat.of_csr
      (Csr.of_triplets ~rows:nr ~cols:dr
         (List.init nr (fun i -> (i, Rng.int rng dr, 1.0))))
  in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  let s = Mat.of_csr (Csr.of_triplets ~rows:ns ~cols:0 []) in
  let t = Normalized.star ~s ~parts:[ (k, r) ] in
  let cp = Sparse_crossprod.crossprod t in
  Alcotest.(check (pair int int)) "dims" (dr, dr) (Csr.dims cp) ;
  (* diagonal sums to the total count of ones in T = ns *)
  let diag_sum = ref 0.0 in
  for j = 0 to dr - 1 do
    diag_sum := !diag_sum +. Csr.get cp j j
  done ;
  Alcotest.(check (float 1e-9)) "diagonal mass" (float_of_int ns) !diag_sum ;
  (* symmetric *)
  Alcotest.(check bool) "symmetric" true
    (Csr.approx_equal cp (Csr.transpose cp))

let test_rejects_transposed () =
  let t = Rewrite.transpose (Gen.normalized ~seed:11 Gen.Pkfk) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sparse_crossprod.crossprod t) ;
       false
     with Invalid_argument _ -> true)

let test_csr_crossprod_csr_kernel () =
  (* kernel-level check incl. weights *)
  let rng = Rng.of_int 12 in
  let triplets = ref [] in
  for i = 0 to 19 do
    for j = 0 to 7 do
      if Rng.float rng < 0.3 then
        triplets := (i, j, Rng.uniform rng ~lo:(-1.0) ~hi:1.0) :: !triplets
    done
  done ;
  let c = Csr.of_triplets ~rows:20 ~cols:8 !triplets in
  check_close ~tol:1e-10 "unweighted"
    (Csr.crossprod c)
    (Csr.to_dense (Csr.crossprod_csr c)) ;
  let w = Array.init 20 (fun _ -> Rng.float rng) in
  check_close ~tol:1e-10 "weighted"
    (Csr.weighted_crossprod c w)
    (Csr.to_dense (Csr.crossprod_csr ~weights:w c))

let () =
  Alcotest.run "sparse-crossprod"
    [ ( "correctness",
        [ Alcotest.test_case "= dense rewrite (all shapes)" `Quick test_matches_dense_rewrite;
          Alcotest.test_case "= materialized" `Quick test_matches_materialized;
          Alcotest.test_case "csr kernel" `Quick test_csr_crossprod_csr_kernel;
          Alcotest.test_case "rejects transposed" `Quick test_rejects_transposed ] );
      ( "scale",
        [ Alcotest.test_case "one-hot output sparse" `Quick test_output_is_sparse_for_onehot;
          Alcotest.test_case "wide one-hot smoke" `Quick test_wide_onehot_smoke ] ) ]
