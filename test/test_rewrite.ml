(* The central correctness suite: every Morpheus rewrite rule must
   produce exactly what the corresponding operator computes over the
   materialized T ("our rewrites do not alter the outputs of the
   operators, assuming exact arithmetic", §3.7). Each operator is
   checked across all schema shapes (PK-FK, 2- and 3-table star, M:N) ×
   representations (dense, sparse) × transposition, over several seeds. *)

open La
open Sparse
open Morpheus
open Test_support

let seeds = [ 0; 1; 2; 3; 4 ]

let for_all_cases f =
  List.iter (fun seed -> List.iter (fun (label, t) -> f label t) (Gen.all_cases ~seed)) seeds

(* ---- materialization sanity ---- *)

let test_materialize_dims () =
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      Alcotest.(check (pair int int))
        (label ^ ": dims")
        (Normalized.dims t) (Dense.dims m))

let test_materialize_transpose () =
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      let mt = Gen.ground_truth (Rewrite.transpose t) in
      Gen.check_close (label ^ ": transpose materializes") (Dense.transpose m) mt)

(* ---- element-wise scalar ops (§3.3.1): result is normalized and its
   materialization matches ---- *)

let scalar_case name f_norm f_mat () =
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      let got = Gen.ground_truth (f_norm t) in
      Gen.check_close (label ^ ": " ^ name) (f_mat m) got)

let test_scale = scalar_case "scale" (Rewrite.scale 3.5) (Dense.scale 3.5)
let test_add_scalar = scalar_case "add_scalar" (Rewrite.add_scalar 1.25) (Dense.add_scalar 1.25)
let test_pow = scalar_case "pow 2" (fun t -> Rewrite.pow t 2.0) (fun m -> Dense.pow_scalar m 2.0)
let test_sq = scalar_case "sq" Rewrite.sq (fun m -> Dense.pow_scalar m 2.0)

let test_exp = scalar_case "exp" Rewrite.exp Dense.exp

let test_map_scalar =
  let f v = Stdlib.log ((v *. v) +. 1.0) in
  scalar_case "log(x²+1)" (Rewrite.map_scalar f) (Dense.map_scalar f)

let test_closure_structure () =
  for_all_cases (fun label t ->
      let scaled = Rewrite.scale 2.0 t in
      Alcotest.(check int)
        (label ^ ": closure keeps parts")
        (List.length (Normalized.parts t))
        (List.length (Normalized.parts scaled)) ;
      Alcotest.(check bool)
        (label ^ ": closure keeps ent presence")
        (Option.is_some (Normalized.ent t))
        (Option.is_some (Normalized.ent scaled)))

(* ---- aggregations (§3.3.2) ---- *)

let test_row_sums () =
  for_all_cases (fun label t ->
      Gen.check_close (label ^ ": rowSums")
        (Dense.row_sums (Gen.ground_truth t))
        (Rewrite.row_sums t))

let test_col_sums () =
  for_all_cases (fun label t ->
      Gen.check_close (label ^ ": colSums")
        (Dense.col_sums (Gen.ground_truth t))
        (Rewrite.col_sums t))

let test_sum () =
  for_all_cases (fun label t ->
      let expected = Dense.sum (Gen.ground_truth t) in
      let got = Rewrite.sum t in
      if Float.abs (expected -. got) > 1e-8 then
        Alcotest.failf "%s: sum %g vs %g" label expected got)

(* ---- multiplications ---- *)

let test_lmm () =
  List.iter
    (fun k ->
      for_all_cases (fun label t ->
          let x = Dense.random ~rng:(Rng.of_int (k + 17)) (Normalized.cols t) k in
          Gen.check_close
            (Printf.sprintf "%s: LMM k=%d" label k)
            (Blas.gemm (Gen.ground_truth t) x)
            (Rewrite.lmm t x)))
    [ 1; 3 ]

let test_rmm () =
  List.iter
    (fun k ->
      for_all_cases (fun label t ->
          let x = Dense.random ~rng:(Rng.of_int (k + 31)) k (Normalized.rows t) in
          Gen.check_close
            (Printf.sprintf "%s: RMM k=%d" label k)
            (Blas.gemm x (Gen.ground_truth t))
            (Rewrite.rmm x t)))
    [ 1; 2 ]

let test_tlmm () =
  for_all_cases (fun label t ->
      let x = Dense.random ~rng:(Rng.of_int 53) (Normalized.rows t) 2 in
      Gen.check_close (label ^ ": transposed LMM")
        (Blas.tgemm (Gen.ground_truth t) x)
        (Rewrite.tlmm t x))

let test_crossprod () =
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      Gen.check_close (label ^ ": crossprod (efficient)") (Blas.crossprod m)
        (Rewrite.crossprod t))

let test_crossprod_naive () =
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      Gen.check_close (label ^ ": crossprod (naive)") (Blas.crossprod m)
        (Rewrite.crossprod_naive t))

let test_gram () =
  (* crossprod of the transpose: the Gram matrix rewrite (appendix A) *)
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      Gen.check_close (label ^ ": gram")
        (Blas.tcrossprod m)
        (Rewrite.crossprod (Rewrite.transpose t)))

(* ---- pseudo-inverse (§3.3.6) ---- *)

let test_ginv_moore_penrose () =
  (* comparing against Linalg.ginv directly is numerically fragile when
     the cross-product is near-singular; the Moore-Penrose conditions
     are the right invariant. *)
  List.iter
    (fun seed ->
      List.iter
        (fun (label, t) ->
          let a = Gen.ground_truth t in
          let g = Rewrite.ginv t in
          Alcotest.(check (pair int int))
            (label ^ ": ginv dims")
            (Dense.cols a, Dense.rows a)
            (Dense.dims g) ;
          Gen.check_close ~tol:1e-5 (label ^ ": AGA=A") a
            (Blas.gemm (Blas.gemm a g) a) ;
          Gen.check_close ~tol:1e-5 (label ^ ": GAG=G") g
            (Blas.gemm (Blas.gemm g a) g))
        (Gen.all_cases ~seed))
    [ 0; 1 ]

let test_ginv_matches_direct () =
  (* on a well-conditioned tall case the rewrite must agree with the
     SVD-based ginv of the materialized matrix *)
  let rng = Rng.of_int 271 in
  let s = Mat.of_dense (Dense.random ~rng 30 3) in
  let r = Mat.of_dense (Dense.random ~rng 5 4) in
  let k = Sparse.Indicator.random ~rng ~rows:30 ~cols:5 () in
  let t = Normalized.pkfk ~s ~k ~r in
  Gen.check_close ~tol:1e-6 "ginv matches"
    (Linalg.ginv (Gen.ground_truth t))
    (Rewrite.ginv t)

let test_lstsq () =
  let rng = Rng.of_int 272 in
  let s = Mat.of_dense (Dense.random ~rng 40 3) in
  let r = Mat.of_dense (Dense.random ~rng 6 4) in
  let k = Sparse.Indicator.random ~rng ~rows:40 ~cols:6 () in
  let t = Normalized.pkfk ~s ~k ~r in
  let w_true = Dense.random ~rng 7 1 in
  let y = Blas.gemm (Gen.ground_truth t) w_true in
  Gen.check_close ~tol:1e-6 "lstsq recovers w" w_true (Rewrite.lstsq t y)

(* ---- non-factorizable ops (§3.3.7) ---- *)

let test_elementwise_matrix_ops () =
  for_all_cases (fun label t ->
      let n, d = Normalized.dims t in
      let x = Mat.of_dense (Dense.add_scalar 0.5 (Dense.random ~rng:(Rng.of_int 5) n d)) in
      let m = Mat.of_dense (Gen.ground_truth t) in
      Gen.check_close (label ^ ": T+X") (Mat.dense (Mat.add m x))
        (Mat.dense (Rewrite.add_mat t x)) ;
      Gen.check_close (label ^ ": T*X") (Mat.dense (Mat.mul_elem m x))
        (Mat.dense (Rewrite.mul_elem_mat t x)) ;
      Gen.check_close (label ^ ": T/X") (Mat.dense (Mat.div_elem m x))
        (Mat.dense (Rewrite.div_elem_mat t x)))

(* ---- composition / propagation (§3.2) ---- *)

let test_operator_pipeline () =
  (* rowSums(((2·T)²)) — scalar ops stay normalized, aggregation fires at
     the end; mirrors K-Means' DT pre-computation. *)
  for_all_cases (fun label t ->
      let m = Gen.ground_truth t in
      let expected = Dense.row_sums (Dense.pow_scalar (Dense.scale 2.0 m) 2.0) in
      let got = Rewrite.row_sums (Rewrite.pow (Rewrite.scale 2.0 t) 2.0) in
      Gen.check_close (label ^ ": pipeline") expected got)

let test_double_transpose () =
  for_all_cases (fun label t ->
      let tt = Rewrite.transpose (Rewrite.transpose t) in
      Gen.check_close (label ^ ": Tᵀᵀ = T") (Gen.ground_truth t)
        (Gen.ground_truth tt))

(* ---- Theorem B.1: invertibility of a square T forces TR ≤ 1/FR + 1;
   contrapositive: TR > 1/FR + 1 ⇒ T is singular. ---- *)

let test_theorem_b1 () =
  let rng = Rng.of_int 999 in
  (* ns = 6 = d, nr = 2, ds = dr = 3 → TR = 3 > 1/1 + 1 = 2 *)
  let s = Mat.of_dense (Dense.random ~rng 6 3) in
  let r = Mat.of_dense (Dense.random ~rng 2 3) in
  let k = Sparse.Indicator.random ~rng ~rows:6 ~cols:2 () in
  let t = Normalized.pkfk ~s ~k ~r in
  let m = Gen.ground_truth t in
  Alcotest.(check (pair int int)) "square" (6, 6) (Dense.dims m) ;
  let det = Linalg.determinant m in
  if Float.abs det > 1e-9 then
    Alcotest.failf "T should be singular (det = %g)" det

(* ---- Theorems C.1/C.2: max(n_RA, n_RB) ≤ nnz(KᵀA·KB) ≤ n_S ---- *)

let test_theorem_c_bounds () =
  List.iter
    (fun seed ->
      let rng = Rng.of_int seed in
      let n = 10 + Rng.int rng 30 in
      let ca = 2 + Rng.int rng 5 and cb = 2 + Rng.int rng 5 in
      let a = Sparse.Indicator.random ~rng ~rows:n ~cols:ca () in
      let b = Sparse.Indicator.random ~rng ~rows:n ~cols:cb () in
      let p = Sparse.Indicator.cross a b in
      let nnz = Sparse.Coo.nnz p in
      Alcotest.(check bool)
        (Printf.sprintf "lower bound (seed %d)" seed)
        true
        (nnz >= max ca cb) ;
      Alcotest.(check bool)
        (Printf.sprintf "upper bound (seed %d)" seed)
        true (nnz <= n) ;
      (* and P really is KᵀA·KB *)
      let expected =
        Blas.gemm
          (Dense.transpose (Sparse.Indicator.to_dense a))
          (Sparse.Indicator.to_dense b)
      in
      Gen.check_close "P = KᵀK" expected (Sparse.Coo.to_dense p))
    [ 1; 2; 3; 4; 5 ]

(* ---- qcheck: LMM correctness over random shapes ---- *)

let qc_case =
  QCheck.make
    ~print:(fun (seed, shape_i, sparse) ->
      Printf.sprintf "seed=%d shape=%d sparse=%b" seed shape_i sparse)
    QCheck.Gen.(triple (int_range 0 10_000) (int_range 0 3) bool)

let prop name f =
  QCheck.Test.make ~name ~count:60 qc_case (fun (seed, shape_i, sparse) ->
      let shape = List.nth Gen.shapes shape_i in
      let t = Gen.normalized ~seed ~sparse shape in
      f t)

let prop_lmm =
  prop "qcheck: factorized LMM = materialized" (fun t ->
      let x = Dense.random ~rng:(Rng.of_int 7) (Normalized.cols t) 2 in
      Dense.approx_equal ~tol:1e-8
        (Blas.gemm (Gen.ground_truth t) x)
        (Rewrite.lmm t x))

let prop_crossprod =
  prop "qcheck: factorized crossprod = materialized" (fun t ->
      Dense.approx_equal ~tol:1e-8
        (Blas.crossprod (Gen.ground_truth t))
        (Rewrite.crossprod t))

let prop_aggregations =
  prop "qcheck: aggregations = materialized" (fun t ->
      let m = Gen.ground_truth t in
      Dense.approx_equal ~tol:1e-8 (Dense.row_sums m) (Rewrite.row_sums t)
      && Dense.approx_equal ~tol:1e-8 (Dense.col_sums m) (Rewrite.col_sums t)
      && Float.abs (Dense.sum m -. Rewrite.sum t) < 1e-7)

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rewrite"
    [ ( "materialize",
        [ Alcotest.test_case "dims" `Quick test_materialize_dims;
          Alcotest.test_case "transpose" `Quick test_materialize_transpose ] );
      ( "scalar-ops",
        [ Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "add_scalar" `Quick test_add_scalar;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "sq" `Quick test_sq;
          Alcotest.test_case "exp" `Quick test_exp;
          Alcotest.test_case "map_scalar" `Quick test_map_scalar;
          Alcotest.test_case "closure structure" `Quick test_closure_structure ] );
      ( "aggregations",
        [ Alcotest.test_case "rowSums" `Quick test_row_sums;
          Alcotest.test_case "colSums" `Quick test_col_sums;
          Alcotest.test_case "sum" `Quick test_sum;
          qc prop_aggregations ] );
      ( "multiplications",
        [ Alcotest.test_case "LMM" `Quick test_lmm;
          Alcotest.test_case "RMM" `Quick test_rmm;
          Alcotest.test_case "transposed LMM" `Quick test_tlmm;
          qc prop_lmm ] );
      ( "crossprod",
        [ Alcotest.test_case "efficient (Algorithm 2)" `Quick test_crossprod;
          Alcotest.test_case "naive (Algorithm 1)" `Quick test_crossprod_naive;
          Alcotest.test_case "gram (transposed)" `Quick test_gram;
          qc prop_crossprod ] );
      ( "inversion",
        [ Alcotest.test_case "Moore-Penrose" `Quick test_ginv_moore_penrose;
          Alcotest.test_case "matches direct ginv" `Quick test_ginv_matches_direct;
          Alcotest.test_case "lstsq" `Quick test_lstsq ] );
      ( "non-factorizable",
        [ Alcotest.test_case "elementwise matrix ops" `Quick test_elementwise_matrix_ops ] );
      ( "composition",
        [ Alcotest.test_case "pipeline" `Quick test_operator_pipeline;
          Alcotest.test_case "double transpose" `Quick test_double_transpose ] );
      ( "theory",
        [ Alcotest.test_case "Theorem B.1" `Quick test_theorem_b1;
          Alcotest.test_case "Theorems C.1/C.2" `Quick test_theorem_c_bounds ] ) ]
