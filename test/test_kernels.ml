(* Bitwise equivalence of the cache-blocked/register-tiled kernels
   (Blas) against the frozen naive reference (Blas_ref), at adversarial
   shapes, betas, and tile profiles. Not approximate: every comparison
   is on IEEE bit patterns, because the tiled kernels promise the same
   accumulation sequence per output cell — any reordering shows up here
   as a one-ulp diff long before it corrupts a model.

   The @kernelcheck dune alias re-runs this binary at MORPHEUS_THREADS
   1 and 4 and under MORPHEUS_LOCKDEP=1, so the equivalence is
   certified on both backends and under the lock-order analyzer. *)

open La

let bits = Int64.bits_of_float

(* Bit equality, except that any NaN matches any NaN: IEEE 754 leaves
   NaN sign/payload propagation to the implementation, and x86 resolves
   a NaN×NaN (or NaN-producing) operation to the *destination*
   operand's payload — which operand lands in the destination register
   is per-site codegen, so two differently-compiled bodies cannot
   promise matching payloads. Where a NaN appears is still checked
   exactly (a cell that is NaN in one result must be NaN in the
   other); everything finite and ±Inf and ±0.0 is compared on bits. *)
let eq_bits x y =
  Int64.equal (bits x) (bits y) || (Float.is_nan x && Float.is_nan y)

let mat_equal a b =
  Dense.rows a = Dense.rows b
  && Dense.cols a = Dense.cols b
  && Array.for_all2 eq_bits (Dense.data a) (Dense.data b)

let vec_equal x y =
  Array.length x = Array.length y && Array.for_all2 eq_bits x y

let check_mat name a b =
  if not (mat_equal a b) then
    Alcotest.failf "%s: tiled result differs bitwise from reference (%s)" name
      (Tune.describe (Tune.current ()))

let check_vec name x y =
  if not (vec_equal x y) then
    Alcotest.failf "%s: tiled result differs bitwise from reference (%s)" name
      (Tune.describe (Tune.current ()))

(* Mix of ordinary values, exact zeros (both signs — they exercise the
   reference's [<> 0.0] skip and the packers' zero-free detection), and
   small integers (which collide into equal products, catching
   accumulation-order swaps that cancellation would otherwise hide). *)
let gen_mat rng rows cols =
  Dense.init rows cols (fun _ _ ->
      match Rng.int rng 8 with
      | 0 -> 0.0
      | 1 -> -0.0
      | 2 -> float_of_int (Rng.int rng 7 - 3)
      | _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

let gen_vec rng n =
  Array.init n (fun _ ->
      match Rng.int rng 8 with
      | 0 -> 0.0
      | 1 -> -0.0
      | _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

(* Tile profiles the suite pins via Tune.set: the shipped default, a
   deliberately misaligned tiny blocking (tiles never divide the
   matrix), the 6x2 micro shape, and the degenerate all-1 profile
   (every tile is an edge case). Results must not depend on any of
   this. *)
let profiles =
  [ ("default", Tune.default);
    ("tiny-misaligned", { Tune.default with mc = 5; kc = 3; nc = 7; mr = 3; nr = 5 });
    ("micro-6x2", { Tune.default with mc = 12; kc = 8; nc = 10; mr = 6; nr = 2 });
    ("all-ones", { Tune.default with mc = 1; kc = 1; nc = 1; mr = 1; nr = 1 })
  ]

(* Shapes that stress the edges: unit dims, row/column vectors shaped
   as matrices, primes that no tile divides, and one size past the
   default parallel_for chunking threshold at 4 domains. *)
let shapes =
  [ (1, 1, 1); (1, 9, 1); (7, 1, 5); (5, 3, 7); (13, 17, 11); (4, 4, 4);
    (33, 29, 31); (64, 40, 12) ]

let betas = [ 0.0; 1.0; 0.5 ]

let with_profile p f =
  Tune.set p ;
  Fun.protect ~finally:Tune.reset f

let check_all_kernels ~m ~k ~n rng =
  let a = gen_mat rng m k in
  let b = gen_mat rng k n in
  let at = gen_mat rng k m in (* tgemm multiplies atᵀ·b *)
  let bt = gen_mat rng n k in (* gemm_nt multiplies a·btᵀ *)
  let w = gen_vec rng m in
  let x = gen_vec rng k in
  check_mat "gemm" (Blas_ref.gemm a b) (Blas.gemm a b) ;
  check_mat "tgemm" (Blas_ref.tgemm at b) (Blas.tgemm at b) ;
  check_mat "gemm_nt" (Blas_ref.gemm_nt a bt) (Blas.gemm_nt a bt) ;
  check_mat "crossprod" (Blas_ref.crossprod a) (Blas.crossprod a) ;
  check_mat "weighted_crossprod"
    (Blas_ref.weighted_crossprod a w)
    (Blas.weighted_crossprod a w) ;
  check_mat "tcrossprod" (Blas_ref.tcrossprod a) (Blas.tcrossprod a) ;
  check_vec "gemv" (Blas_ref.gemv a x) (Blas.gemv a x) ;
  List.iter
    (fun beta ->
      let c0 = gen_mat rng m n in
      let cr = Dense.copy c0 and ct = Dense.copy c0 in
      Blas_ref.gemm_into ~beta a b ~c:cr ;
      Blas.gemm_into ~beta a b ~c:ct ;
      check_mat (Printf.sprintf "gemm_into beta=%g" beta) cr ct ;
      let y0 = gen_vec rng m in
      let yr = Array.copy y0 and yt = Array.copy y0 in
      Blas_ref.gemv_into ~beta a x ~y:yr ;
      Blas.gemv_into ~beta a x ~y:yt ;
      check_vec (Printf.sprintf "gemv_into beta=%g" beta) yr yt)
    betas

let test_directed_shapes () =
  List.iter
    (fun (pname, p) ->
      with_profile p (fun () ->
          List.iter
            (fun (m, k, n) ->
              let rng = Rng.of_int ((m * 1000) + (k * 100) + n) in
              try check_all_kernels ~m ~k ~n rng
              with e ->
                Printf.eprintf "at profile %s, shape %dx%dx%d\n%!" pname m k n ;
                raise e)
            shapes))
    profiles

(* NaN and infinity must propagate to the same cells: the reference's
   zero-skip decides whether a NaN/Inf product enters a cell at all,
   and the tiled kernels replicate that skip per (row, depth) element
   (weighted_crossprod additionally forces 0.0 on zero weights, which
   this matrix exercises alongside non-finite data). NaN *payloads*
   are exempted by [eq_bits] above; Inf signs are exact. *)
let test_nonfinite () =
  let rng = Rng.of_int 4242 in
  let inject m =
    Dense.mapi
      (fun i j v ->
        match (i + (2 * j)) mod 11 with
        | 0 -> Float.nan
        | 1 -> Float.infinity
        | 2 -> Float.neg_infinity
        | 3 -> 0.0
        | _ -> v)
      m
  in
  let a = inject (gen_mat rng 9 7) and b = inject (gen_mat rng 7 5) in
  let w = Array.init 9 (fun i -> if i mod 3 = 0 then 0.0 else 1.5) in
  List.iter
    (fun (_, p) ->
      with_profile p (fun () ->
          check_mat "gemm nonfinite" (Blas_ref.gemm a b) (Blas.gemm a b) ;
          check_mat "crossprod nonfinite" (Blas_ref.crossprod a)
            (Blas.crossprod a) ;
          check_mat "weighted nonfinite"
            (Blas_ref.weighted_crossprod a w)
            (Blas.weighted_crossprod a w) ;
          check_mat "tcrossprod nonfinite" (Blas_ref.tcrossprod a)
            (Blas.tcrossprod a)))
    profiles

(* The tiled kernels must charge exactly the reference's analytic flop
   counts — packing is movement, not arithmetic (test_exec's
   model-vs-measured equalities depend on this staying exact). *)
let test_flops_equal () =
  let rng = Rng.of_int 77 in
  let a = gen_mat rng 13 9 and b = gen_mat rng 9 11 in
  let at = gen_mat rng 9 13 and bt = gen_mat rng 11 9 in
  let w = gen_vec rng 13 and x = gen_vec rng 9 in
  let c0 = gen_mat rng 13 11 in
  let counted f = snd (Flops.count f) in
  let pair name fr ft =
    Alcotest.(check (float 0.0)) (name ^ " flops") (counted fr) (counted ft)
  in
  pair "gemm"
    (fun () -> ignore (Blas_ref.gemm a b))
    (fun () -> ignore (Blas.gemm a b)) ;
  pair "tgemm"
    (fun () -> ignore (Blas_ref.tgemm at b))
    (fun () -> ignore (Blas.tgemm at b)) ;
  pair "gemm_nt"
    (fun () -> ignore (Blas_ref.gemm_nt a bt))
    (fun () -> ignore (Blas.gemm_nt a bt)) ;
  pair "crossprod"
    (fun () -> ignore (Blas_ref.crossprod a))
    (fun () -> ignore (Blas.crossprod a)) ;
  pair "weighted_crossprod"
    (fun () -> ignore (Blas_ref.weighted_crossprod a w))
    (fun () -> ignore (Blas.weighted_crossprod a w)) ;
  pair "tcrossprod"
    (fun () -> ignore (Blas_ref.tcrossprod a))
    (fun () -> ignore (Blas.tcrossprod a)) ;
  pair "gemv"
    (fun () -> ignore (Blas_ref.gemv a x))
    (fun () -> ignore (Blas.gemv a x)) ;
  List.iter
    (fun beta ->
      pair
        (Printf.sprintf "gemm_into beta=%g" beta)
        (fun () -> Blas_ref.gemm_into ~beta a b ~c:(Dense.copy c0))
        (fun () -> Blas.gemm_into ~beta a b ~c:(Dense.copy c0)))
    betas

(* qcheck: random shapes × random profile index; the directed shapes
   above pin the known-nasty corners, this sweeps the space between. *)
let qc = QCheck_alcotest.to_alcotest

let prop_bitwise =
  QCheck.Test.make ~name:"tiled kernels bitwise == reference" ~count:60
    (QCheck.make
       ~print:(fun (s, p) -> Printf.sprintf "seed=%d profile=%d" s p)
       QCheck.Gen.(pair (int_range 0 1_000_000) (int_range 0 3)))
    (fun (seed, pidx) ->
      let _, p = List.nth profiles pidx in
      let rng = Rng.of_int seed in
      let m = 1 + Rng.int rng 24
      and k = 1 + Rng.int rng 24
      and n = 1 + Rng.int rng 24 in
      with_profile p (fun () ->
          check_all_kernels ~m ~k ~n rng ;
          true))

(* An explicit 4-domain pool (regardless of MORPHEUS_THREADS), so the
   parallel path is exercised even in the plain runtest invocation. *)
let test_four_domains () =
  let exec = Exec.make 4 in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      let rng = Rng.of_int 90210 in
      let a = gen_mat rng 47 19 and b = gen_mat rng 19 23 in
      with_profile (List.assoc "tiny-misaligned" profiles) (fun () ->
          check_mat "gemm 4dom" (Blas_ref.gemm ~exec a b) (Blas.gemm ~exec a b) ;
          check_mat "crossprod 4dom" (Blas_ref.crossprod ~exec a)
            (Blas.crossprod ~exec a) ;
          check_mat "tcrossprod 4dom" (Blas_ref.tcrossprod ~exec a)
            (Blas.tcrossprod ~exec a) ;
          let x = gen_vec rng 19 in
          check_vec "gemv 4dom" (Blas_ref.gemv ~exec a x)
            (Blas.gemv ~exec a x)))

let () =
  Alcotest.run "kernels"
    [ ( "bitwise",
        [ Alcotest.test_case "directed shapes x profiles" `Quick
            test_directed_shapes;
          Alcotest.test_case "nonfinite propagation" `Quick test_nonfinite;
          Alcotest.test_case "flop accounting equal" `Quick test_flops_equal;
          Alcotest.test_case "explicit 4-domain pool" `Quick test_four_domains;
          qc prop_bitwise
        ] )
    ]
