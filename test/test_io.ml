(* Tests for the hardened persistence layer: bitwise round-trips over
   dense and sparse representations, the framed-payload discipline
   (magic, format version, kind tag), clean [Io.Corrupt] failures on
   truncated / foreign / mislabeled files, and the atomicity contract
   (no tmp siblings survive a save; meta is the commit point). *)

open Sparse
open Morpheus
open Test_support

let tmpdir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "morpheus_io_t_%d_%d" (Unix.getpid ()) (Random.int 1000000))

let with_dir f =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun n -> Sys.remove (Filename.concat dir n))
          (Sys.readdir dir) ;
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let check_bitwise msg a b =
  if La.Dense.to_arrays a <> La.Dense.to_arrays b then
    Alcotest.failf "%s: round-trip changed values" msg

let expect_corrupt msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Io.Corrupt" msg
  | exception Io.Corrupt _ -> ()

(* ---- round-trips ---- *)

let test_roundtrip_bitwise () =
  List.iter
    (fun (shape, sparse) ->
      let t = Gen.normalized ~seed:97 ~sparse shape in
      with_dir (fun dir ->
          Io.save ~dir t ;
          let t' = Io.load ~dir in
          check_bitwise
            (Printf.sprintf "%s sparse=%b" (Gen.shape_name shape) sparse)
            (Gen.ground_truth t) (Gen.ground_truth t') ;
          List.iter2
            (fun (p : Normalized.part) (p' : Normalized.part) ->
              Alcotest.(check bool) "sparsity preserved"
                (Mat.is_sparse p.Normalized.mat)
                (Mat.is_sparse p'.Normalized.mat))
            (Normalized.parts t) (Normalized.parts t') ;
          Io.delete ~dir))
    [ (Gen.Pkfk, false); (Gen.Pkfk, true); (Gen.Star3, false);
      (Gen.Star3, true); (Gen.Mn, false); (Gen.Mn, true) ]

let test_save_rejects_transposed () =
  let t = Rewrite.transpose (Gen.normalized ~seed:98 Gen.Pkfk) in
  with_dir (fun dir ->
      Alcotest.(check bool) "transposed save rejected" true
        (try
           Io.save ~dir t ;
           false
         with Invalid_argument _ -> true))

let test_no_tmp_siblings () =
  let t = Gen.normalized ~seed:99 Gen.Star2 in
  with_dir (fun dir ->
      Io.save ~dir t ;
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".tmp" then
            Alcotest.failf "tmp sibling %s survived the save" n)
        (Sys.readdir dir) ;
      Io.delete ~dir)

(* ---- framed payloads ---- *)

let test_payload_roundtrip () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "p.bin" in
      Io.write_payload ~kind:"probe" path (42, [| 1.5; 2.5 |]) ;
      let n, xs = Io.read_payload ~kind:"probe" path in
      Alcotest.(check int) "fst" 42 n ;
      Alcotest.(check (array (float 0.0))) "snd" [| 1.5; 2.5 |] xs)

let test_kind_mismatch () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "p.bin" in
      Io.write_payload ~kind:"matrix" path 1 ;
      expect_corrupt "wrong kind tag" (fun () ->
          (Io.read_payload ~kind:"indicator" path : int)))

let test_foreign_file () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "foreign.bin" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "this is not a morpheus file\n") ;
      expect_corrupt "foreign magic" (fun () ->
          (Io.read_payload ~kind:"matrix" path : int)))

let test_future_version () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "v9.bin" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "MORPHEUS-BIN v9999 matrix\n" ;
          Marshal.to_channel oc 1 []) ;
      expect_corrupt "future format version" (fun () ->
          (Io.read_payload ~kind:"matrix" path : int)))

let test_truncated_body () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "t.bin" in
      Io.write_payload ~kind:"matrix" path (Array.init 256 float_of_int) ;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full - 40))) ;
      expect_corrupt "truncated payload" (fun () ->
          (Io.read_payload ~kind:"matrix" path : float array)))

(* ---- corrupted dataset directories ---- *)

let test_missing_meta_is_invalid_arg () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      Alcotest.(check bool) "empty dir" true
        (try
           ignore (Io.load ~dir) ;
           false
         with Invalid_argument _ -> true))

let test_corrupted_part_file () =
  let t = Gen.normalized ~seed:100 Gen.Pkfk in
  with_dir (fun dir ->
      Io.save ~dir t ;
      let victim = Filename.concat dir "part_0.mat" in
      Out_channel.with_open_bin victim (fun oc ->
          Out_channel.output_string oc "garbage") ;
      expect_corrupt "clobbered part file" (fun () -> Io.load ~dir) ;
      Io.delete ~dir)

let test_truncated_part_file () =
  let t = Gen.normalized ~seed:101 Gen.Star2 in
  with_dir (fun dir ->
      Io.save ~dir t ;
      let victim = Filename.concat dir "part_0.ind" in
      let full = In_channel.with_open_bin victim In_channel.input_all in
      Out_channel.with_open_bin victim (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2))) ;
      expect_corrupt "truncated indicator" (fun () -> Io.load ~dir) ;
      Io.delete ~dir)

let test_scribbled_meta () =
  let t = Gen.normalized ~seed:102 Gen.Pkfk in
  with_dir (fun dir ->
      Io.save ~dir t ;
      Out_channel.with_open_text (Filename.concat dir "meta") (fun oc ->
          Out_channel.output_string oc "morpheus-normalized v2\nent nonsense\n") ;
      expect_corrupt "scribbled meta" (fun () -> Io.load ~dir) ;
      Io.delete ~dir)

(* ---- write_text_atomic ---- *)

let test_text_atomic () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755 ;
      let path = Filename.concat dir "note.txt" in
      Io.write_text_atomic path "first" ;
      Io.write_text_atomic path "second" ;
      Alcotest.(check string) "last write wins" "second"
        (In_channel.with_open_text path In_channel.input_all) ;
      Alcotest.(check bool) "no tmp left" false
        (Sys.file_exists (path ^ ".tmp")))

let () =
  Random.self_init () ;
  Alcotest.run "io"
    [ ( "roundtrip",
        [ Alcotest.test_case "bitwise, all shapes x density" `Quick
            test_roundtrip_bitwise;
          Alcotest.test_case "transposed rejected" `Quick
            test_save_rejects_transposed;
          Alcotest.test_case "no tmp siblings" `Quick test_no_tmp_siblings ] );
      ( "framing",
        [ Alcotest.test_case "payload roundtrip" `Quick test_payload_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "foreign file" `Quick test_foreign_file;
          Alcotest.test_case "future version" `Quick test_future_version;
          Alcotest.test_case "truncated body" `Quick test_truncated_body ] );
      ( "directories",
        [ Alcotest.test_case "missing meta" `Quick
            test_missing_meta_is_invalid_arg;
          Alcotest.test_case "corrupted part" `Quick test_corrupted_part_file;
          Alcotest.test_case "truncated indicator" `Quick
            test_truncated_part_file;
          Alcotest.test_case "scribbled meta" `Quick test_scribbled_meta ] );
      ( "text",
        [ Alcotest.test_case "atomic text write" `Quick test_text_atomic ] ) ]
