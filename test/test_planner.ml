(* Planner property suite: the fused relational-LA pipeline. Predicates
   round-trip through their canonical string (the serving tier's batch
   fusion key); the Filter → select_rows pushdown agrees with the
   materialize-then-filter baseline — bitwise where both arms gather
   the same floats (masks, filtered materializations, the factorized
   kernels over filter vs mask + select_rows), to tight tolerance
   across the factorized/materialized kernel boundary (different
   accumulation orders); projection and group-by agree with their
   [_mat] twins; the structural rewrites fire (filter fusion,
   projection collapse, selection below projection, σᵀσ → masked
   crossprod); the relational diagnostics trigger; and a plan file
   with a predicate round-trips parse → check → optimize → explain
   with the pushdown narrated. Registered under @parcheck at 1 and 4
   domains: masks, gathers, and the kernels they feed must be
   thread-count-invariant. *)

open La
open Sparse
open Morpheus
open Test_support

let qc = QCheck_alcotest.to_alcotest

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000)

let shape_of_seed seed = List.nth Gen.shapes (seed mod 4)

(* naive substring test (avoid extra library deps) *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Both arms must gather the same floats: exact equality, not approx. *)
let bits_equal a b = Dense.dims a = Dense.dims b && Dense.max_abs_diff a b = 0.0

let gather_rows m ids =
  Dense.of_arrays
    (Array.map (fun i -> Array.init (Dense.cols m) (Dense.get m i)) ids)

(* Random predicate over the positional names [c0 … c{d-1}]: constants
   drawn from the bulk of the data distribution so the whole
   selectivity range is exercised, including empty and full masks. *)
let rec gen_pred rng ~d depth =
  if depth <= 0 || Rng.int rng 3 = 0 then
    let col = Printf.sprintf "c%d" (Rng.int rng d) in
    let cmp =
      match Rng.int rng 6 with
      | 0 -> Pred.Eq
      | 1 -> Pred.Ne
      | 2 -> Pred.Lt
      | 3 -> Pred.Le
      | 4 -> Pred.Gt
      | _ -> Pred.Ge
    in
    Pred.Cmp (col, cmp, Rng.uniform rng ~lo:(-1.5) ~hi:1.5)
  else
    match Rng.int rng 3 with
    | 0 -> Pred.And (gen_pred rng ~d (depth - 1), gen_pred rng ~d (depth - 1))
    | 1 -> Pred.Or (gen_pred rng ~d (depth - 1), gen_pred rng ~d (depth - 1))
    | _ -> Pred.Not (gen_pred rng ~d (depth - 1))

let case seed =
  let t = Gen.normalized ~seed (shape_of_seed seed) in
  let p = gen_pred (Rng.of_int (seed + 13)) ~d:(Normalized.cols t) 3 in
  (t, p)

(* ---- the canonical string is a faithful key ---- *)

let prop_pred_roundtrip =
  QCheck.Test.make ~name:"pred parse/print round-trip" ~count:200 seed_gen
    (fun seed ->
      let p = gen_pred (Rng.of_int seed) ~d:6 4 in
      let s = Pred.to_string p in
      match Pred.parse s with
      | Error _ -> false
      | Ok q -> Pred.equal p q && Pred.to_string q = s)

(* ---- pushdown ≡ materialize-then-filter ---- *)

let prop_mask_agree =
  QCheck.Test.make ~name:"mask = mask_mat over materialization" ~count:100
    seed_gen (fun seed ->
      let t, p = case seed in
      Relalg.mask t p = Relalg.mask_mat (Materialize.to_mat t) p)

let prop_filter_bitwise =
  QCheck.Test.make ~name:"filter materializes bitwise = row gather" ~count:100
    seed_gen (fun seed ->
      let t, p = case seed in
      let ids = Relalg.mask t p in
      if Array.length ids = 0 then true
      else
        bits_equal
          (Materialize.to_dense (Relalg.filter t p))
          (gather_rows (Materialize.to_dense t) ids))

let prop_crossprod_pushdown =
  QCheck.Test.make ~name:"masked crossprod: plan, kernel, baseline" ~count:60
    seed_gen (fun seed ->
      let t, p = case seed in
      let leaf = Expr.normalized t in
      let fe = Expr.filter p leaf in
      let e = Expr.(tr fe *@ fe) in
      let opt = Expr.optimize (Expr.simplify e) in
      let structural =
        match opt with Ast.Crossprod (Ast.Filter _) -> true | _ -> false
      in
      let ids = Relalg.mask t p in
      structural
      && (Array.length ids = 0
         ||
         let push = Rewrite.crossprod (Relalg.filter t p) in
         (* filter is mask + select_rows and nothing else: same kernel
            over the composed selection is bitwise-identical *)
         bits_equal push (Rewrite.crossprod (Normalized.select_rows t ids))
         (* the optimized plan evaluates to the same factorized result *)
         && bits_equal push (Expr.eval_dense opt)
         (* cross the kernel boundary: materialize-then-filter baseline *)
         && Dense.approx_equal ~tol:1e-8 push
              (Mat.crossprod (Relalg.filter_mat (Materialize.to_mat t) p))))

let prop_scoring_pushdown =
  QCheck.Test.make ~name:"masked scoring: LMM over filter" ~count:60 seed_gen
    (fun seed ->
      let t, p = case seed in
      let ids = Relalg.mask t p in
      if Array.length ids = 0 then true
      else
        let w = Dense.gaussian ~rng:(Rng.of_int (seed + 29)) (Normalized.cols t) 1 in
        let push = Rewrite.lmm (Relalg.filter t p) w in
        bits_equal push (Rewrite.lmm (Normalized.select_rows t ids) w)
        && Dense.approx_equal ~tol:1e-8 push
             (Mat.mm (Relalg.filter_mat (Materialize.to_mat t) p) w))

let prop_project_pushdown =
  QCheck.Test.make ~name:"project = column gather (part pruning)" ~count:100
    seed_gen (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let d = Normalized.cols t in
      let rng = Rng.of_int (seed + 37) in
      let keep = List.filter (fun _ -> Rng.bool rng) (List.init d Fun.id) in
      let keep = if keep = [] then [ Rng.int rng d ] else keep in
      let cols = List.map (Printf.sprintf "c%d") keep in
      let dense = Materialize.to_dense t in
      let baseline =
        Dense.init (Dense.rows dense) (List.length keep) (fun i j ->
            Dense.get dense i (List.nth keep j))
      in
      bits_equal (Materialize.to_dense (Relalg.project t cols)) baseline
      && bits_equal
           (Mat.dense (Relalg.project_mat (Materialize.to_mat t) cols))
           baseline)

let prop_group_agg =
  QCheck.Test.make ~name:"group_agg = group_agg_mat" ~count:60 seed_gen
    (fun seed ->
      let t = Gen.normalized ~seed (shape_of_seed seed) in
      let keys = [ "c0" ] in
      List.for_all
        (fun agg ->
          Dense.approx_equal ~tol:1e-8
            (Relalg.group_agg t ~keys agg)
            (Relalg.group_agg_mat (Materialize.to_mat t) ~keys agg))
        [ Relalg.Agg_sum; Relalg.Agg_mean; Relalg.Agg_count ])

(* ---- structural rewrites ---- *)

let p0 = Pred.Cmp ("c0", Pred.Ge, 0.25)
let q0 = Pred.Cmp ("c1", Pred.Lt, 1.0)

let check_ast name expected got =
  Alcotest.(check bool) name true (Ast.equal expected got)

let test_simplify_filter_fusion () =
  let x = Expr.var "T" in
  check_ast "σ_p(σ_q(T)) → σ_{p∧q}(T)"
    (Expr.filter (Pred.And (p0, q0)) x)
    (Expr.simplify (Expr.filter p0 (Expr.filter q0 x)))

let test_simplify_project_collapse () =
  let x = Expr.var "T" in
  check_ast "π_a(π_ab(T)) → π_a(T)"
    (Expr.project [ "c0" ] x)
    (Expr.simplify (Expr.project [ "c0" ] (Expr.project [ "c0"; "c1" ] x)))

let test_simplify_filter_below_project () =
  let x = Expr.var "T" in
  check_ast "σ_p(π(T)) → π(σ_p(T)) when p's columns are kept"
    (Expr.project [ "c0"; "c1" ] (Expr.filter p0 x))
    (Expr.simplify (Expr.filter p0 (Expr.project [ "c0"; "c1" ] x)))

let test_optimize_masked_crossprod () =
  let fe = Expr.filter p0 (Expr.var "T") in
  let opt = Expr.optimize (Expr.simplify Expr.(tr fe *@ fe)) in
  match opt with
  | Ast.Crossprod (Ast.Filter (p, Ast.Var "T")) ->
    Alcotest.(check bool) "predicate preserved" true (Pred.equal p p0)
  | _ -> Alcotest.failf "expected Crossprod (Filter _), got %s" (Ast.to_string opt)

(* ---- relational diagnostics ---- *)

let codes_of report =
  List.map (fun d -> Check.code_name d.Check.code) report.Check.diagnostics

let norm_env () =
  [ ("T", Check.normalized_value ~ns:100 ~ds:2 ~nr:10 ~dr:3 ()) ]

let test_e005_unknown_column () =
  let e = Expr.filter (Pred.Cmp ("nope", Pred.Gt, 0.0)) (Expr.var "T") in
  let report = Check.analyze_abstract ~env:(norm_env ()) e in
  Alcotest.(check bool) "E005 diagnosed" true (List.mem "E005" (codes_of report)) ;
  Alcotest.(check bool) "is error" false (Check.is_ok report)

let test_e006_scalar_operand () =
  let e = Expr.filter p0 (Expr.scalar 1.0) in
  let report = Check.analyze_abstract e in
  Alcotest.(check bool) "E006 diagnosed" true (List.mem "E006" (codes_of report))

let test_w004_materialized_filter () =
  let e = Expr.filter p0 (Expr.var "M") in
  let report =
    Check.analyze_abstract ~env:[ ("M", Check.dense_value 10 3) ] e
  in
  Alcotest.(check bool) "W004 diagnosed" true (List.mem "W004" (codes_of report)) ;
  Alcotest.(check bool) "warning only" true (Check.is_ok report)

(* ---- plan-file pipeline: parse → check → optimize → explain ---- *)

let test_plan_roundtrip () =
  let path = Filename.temp_file "planner" ".plan" in
  let oc = open_out path in
  output_string oc
    "normalized T ns=1000 ds=2 nr=50 dr=3 cols=age,income,region,price,stock\n\
     let seg = filter(T, age >= 30 && price < 2)\n\
     check seg' %*% seg\n" ;
  close_out oc ;
  let plan =
    match Plan.parse_file path with
    | Ok plan -> plan
    | Error msg -> Alcotest.failf "plan parse: %s" msg
  in
  Sys.remove path ;
  let env = Plan.env plan in
  let _, e = List.hd (Plan.checks plan) in
  Alcotest.(check bool) "as-written plan checks clean" true
    (Check.is_ok (Check.analyze_abstract ~env e)) ;
  let opt = Expr.optimize (Expr.simplify e) in
  (match opt with
  | Ast.Crossprod (Ast.Filter _) -> ()
  | _ -> Alcotest.failf "expected masked crossprod, got %s" (Ast.to_string opt)) ;
  let desc = Explain.describe_plan (Check.analyze_abstract ~env opt) in
  Alcotest.(check bool) "explain narrates the pushdown" true
    (contains ~sub:"pushed below join" desc) ;
  (* the printed plan re-parses to the same tree *)
  match Plan.parse_expr (Ast.to_string e) with
  | Ok e2 -> Alcotest.(check bool) "print/parse round-trip" true (Ast.equal e e2)
  | Error msg -> Alcotest.failf "re-parse of printed plan: %s" msg

let () =
  Alcotest.run "planner"
    [ ("pred", [ qc prop_pred_roundtrip ]);
      ( "pushdown",
        [ qc prop_mask_agree;
          qc prop_filter_bitwise;
          qc prop_crossprod_pushdown;
          qc prop_scoring_pushdown;
          qc prop_project_pushdown;
          qc prop_group_agg ] );
      ( "rewrite",
        [ Alcotest.test_case "filter fusion" `Quick test_simplify_filter_fusion;
          Alcotest.test_case "projection collapse" `Quick
            test_simplify_project_collapse;
          Alcotest.test_case "selection below projection" `Quick
            test_simplify_filter_below_project;
          Alcotest.test_case "sigma'sigma -> masked crossprod" `Quick
            test_optimize_masked_crossprod ] );
      ( "diagnostics",
        [ Alcotest.test_case "E005 unknown column" `Quick test_e005_unknown_column;
          Alcotest.test_case "E006 scalar operand" `Quick test_e006_scalar_operand;
          Alcotest.test_case "W004 materialized filter" `Quick
            test_w004_materialized_filter ] );
      ( "plan",
        [ Alcotest.test_case "parse/check/optimize/explain" `Quick
            test_plan_roundtrip ] ) ]
