(* Tests for double matrix multiplication (appendix C): products of two
   normalized matrices in all four transpose combinations, checked
   against the materialized products. *)

open La
open Sparse
open Morpheus
open Test_support

(* A random normalized matrix with prescribed row and column counts so
   we can make shapes compose. *)
let normalized_with rng ~sparse ~n ~parts_spec ~ent_cols =
  let mat r c = Gen.mat rng ~sparse r c in
  let ent = if ent_cols > 0 then Some (mat n ent_cols) else None in
  let parts =
    List.map
      (fun (nr, dr) ->
        let nr = min nr n in
        (Indicator.random ~rng ~rows:n ~cols:nr (), mat nr dr))
      parts_spec
  in
  match ent with
  | Some s -> Normalized.star ~s ~parts
  | None -> Normalized.make parts

let cases =
  (* (seed, sparse_a, sparse_b) *)
  [ (1, false, false); (2, true, false); (3, false, true); (4, true, true); (5, false, false) ]

let check_product name fa fb expected_of got_of =
  List.iter
    (fun (seed, sparse_a, sparse_b) ->
      let rng = Rng.of_int (seed * 131) in
      let a = fa rng sparse_a in
      let b = fb rng sparse_b a in
      let ma = Gen.ground_truth a and mb = Gen.ground_truth b in
      let expected = expected_of ma mb in
      let got = got_of a b in
      Gen.check_close ~tol:1e-8
        (Printf.sprintf "%s (seed %d, sparse %b/%b)" name seed sparse_a sparse_b)
        expected got)
    cases

(* A·B: B's row count must equal A's column count. *)
let test_dmm_ab () =
  check_product "A·B"
    (fun rng sparse ->
      normalized_with rng ~sparse ~n:12 ~parts_spec:[ (4, 3) ] ~ent_cols:2)
    (fun rng sparse a ->
      (* n_B = d_A = 5 *)
      let da = Normalized.cols a in
      normalized_with rng ~sparse ~n:da ~parts_spec:[ (3, 2); (2, 2) ] ~ent_cols:1)
    (fun ma mb -> Blas.gemm ma mb)
    (fun a b -> Dmm.mult a b)

(* AᵀBᵀ = (BA)ᵀ *)
let test_dmm_atbt () =
  check_product "Aᵀ·Bᵀ"
    (fun rng sparse ->
      normalized_with rng ~sparse ~n:10 ~parts_spec:[ (4, 2) ] ~ent_cols:2)
    (fun rng sparse a ->
      let na = Normalized.rows a in
      (* B has d_B = n_A so Bᵀ has n_A columns... B: n_B × n_A *)
      normalized_with rng ~sparse ~n:7 ~parts_spec:[ (3, na - 2) ] ~ent_cols:2)
    (fun ma mb -> Blas.gemm (Dense.transpose ma) (Dense.transpose mb))
    (fun a b -> Dmm.mult (Rewrite.transpose a) (Rewrite.transpose b))

(* Aᵀ·B with shared row dimension (generalized Gramian over features). *)
let test_dmm_atb () =
  check_product "Aᵀ·B"
    (fun rng sparse ->
      normalized_with rng ~sparse ~n:14 ~parts_spec:[ (5, 3) ] ~ent_cols:2)
    (fun rng sparse a ->
      let n = Normalized.rows a in
      normalized_with rng ~sparse ~n ~parts_spec:[ (4, 2); (3, 2) ] ~ent_cols:1)
    (fun ma mb -> Blas.tgemm ma mb)
    (fun a b -> Dmm.mult (Rewrite.transpose a) b)

(* A·Bᵀ with shared column dimension, aligned splits (case 1). *)
let test_dmm_abt_aligned () =
  check_product "A·Bᵀ aligned"
    (fun rng sparse ->
      normalized_with rng ~sparse ~n:9 ~parts_spec:[ (4, 3) ] ~ent_cols:2)
    (fun rng sparse _ ->
      normalized_with rng ~sparse ~n:11 ~parts_spec:[ (5, 3) ] ~ent_cols:2)
    (fun ma mb -> Blas.gemm_nt ma mb)
    (fun a b -> Dmm.mult a (Rewrite.transpose b))

(* A·Bᵀ with misaligned splits (cases 2/3 of appendix C). *)
let test_dmm_abt_misaligned () =
  check_product "A·Bᵀ misaligned"
    (fun rng sparse ->
      (* d_A = 2 + 4 = 6 with split at 2 *)
      normalized_with rng ~sparse ~n:9 ~parts_spec:[ (4, 4) ] ~ent_cols:2)
    (fun rng sparse _ ->
      (* d_B = 4 + 2 = 6 with split at 4 *)
      normalized_with rng ~sparse ~n:11 ~parts_spec:[ (5, 2) ] ~ent_cols:4)
    (fun ma mb -> Blas.gemm_nt ma mb)
    (fun a b -> Dmm.mult a (Rewrite.transpose b))

(* A·Bᵀ where one side is M:N-shaped (no plain entity part). *)
let test_dmm_abt_mn_shape () =
  check_product "A·Bᵀ M:N shape"
    (fun rng sparse ->
      normalized_with rng ~sparse ~n:8 ~parts_spec:[ (3, 2); (4, 3) ] ~ent_cols:0)
    (fun rng sparse _ ->
      normalized_with rng ~sparse ~n:10 ~parts_spec:[ (4, 5) ] ~ent_cols:0)
    (fun ma mb -> Blas.gemm_nt ma mb)
    (fun a b -> Dmm.mult a (Rewrite.transpose b))

(* degenerate A = B: AᵀA must agree with the crossprod rewrite *)
let test_dmm_degenerate_crossprod () =
  List.iter
    (fun seed ->
      let a = Gen.normalized ~seed Gen.Star2 in
      Gen.check_close ~tol:1e-8
        (Printf.sprintf "AᵀA = crossprod (seed %d)" seed)
        (Rewrite.crossprod a)
        (Dmm.mult (Rewrite.transpose a) a))
    [ 0; 1; 2 ]

let test_dmm_dim_mismatch () =
  let rng = Rng.of_int 1 in
  let a = normalized_with rng ~sparse:false ~n:5 ~parts_spec:[ (2, 2) ] ~ent_cols:1 in
  let b = normalized_with rng ~sparse:false ~n:5 ~parts_spec:[ (2, 2) ] ~ent_cols:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dmm.mult a b) ;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "dmm"
    [ ( "double-multiplication",
        [ Alcotest.test_case "A·B" `Quick test_dmm_ab;
          Alcotest.test_case "Aᵀ·Bᵀ" `Quick test_dmm_atbt;
          Alcotest.test_case "Aᵀ·B" `Quick test_dmm_atb;
          Alcotest.test_case "A·Bᵀ aligned" `Quick test_dmm_abt_aligned;
          Alcotest.test_case "A·Bᵀ misaligned" `Quick test_dmm_abt_misaligned;
          Alcotest.test_case "A·Bᵀ M:N shape" `Quick test_dmm_abt_mn_shape;
          Alcotest.test_case "AᵀA = crossprod" `Quick test_dmm_degenerate_crossprod;
          Alcotest.test_case "dimension mismatch" `Quick test_dmm_dim_mismatch ] ) ]
