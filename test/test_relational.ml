(* Tests for the relational substrate: values, tables, CSV, joins, and
   feature encoding — the pipeline that turns base tables into a
   normalized matrix. *)

open La
open Sparse
open Relational

let v_int i = Value.Int i
let v_f f = Value.Float f
let v_s s = Value.String s

(* The paper's running example: Customers ⋈ Employers. *)
let customers_schema =
  Schema.create ~table_name:"Customers"
    [ Schema.column ~name:"CustomerID" ~role:Schema.Primary_key;
      Schema.column ~name:"Churn" ~role:Schema.Target;
      Schema.column ~name:"Age" ~role:Schema.Numeric_feature;
      Schema.column ~name:"Income" ~role:Schema.Numeric_feature;
      Schema.column ~name:"EmployerID" ~role:(Schema.Foreign_key "Employers") ]

let employers_schema =
  Schema.create ~table_name:"Employers"
    [ Schema.column ~name:"EmployerID" ~role:Schema.Primary_key;
      Schema.column ~name:"Revenue" ~role:Schema.Numeric_feature;
      Schema.column ~name:"Country" ~role:Schema.Nominal_feature ]

let customers () =
  Table.of_rows customers_schema
    [ [| v_int 1; v_f 1.0; v_f 30.0; v_f 50.0; v_int 20 |];
      [| v_int 2; v_f (-1.0); v_f 40.0; v_f 80.0; v_int 21 |];
      [| v_int 3; v_f 1.0; v_f 25.0; v_f 40.0; v_int 20 |];
      [| v_int 4; v_f (-1.0); v_f 55.0; v_f 120.0; v_int 22 |];
      [| v_int 5; v_f 1.0; v_f 35.0; v_f 60.0; v_int 20 |] ]

let employers () =
  Table.of_rows employers_schema
    [ [| v_int 20; v_f 1000.0; v_s "US" |];
      [| v_int 21; v_f 2000.0; v_s "DE" |];
      [| v_int 22; v_f 1500.0; v_s "US" |];
      [| v_int 23; v_f 9999.0; v_s "FR" |] (* never referenced *) ]

(* ---- Value ---- *)

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.equal (Value.of_string "42") (v_int 42)) ;
  Alcotest.(check bool) "float" true (Value.equal (Value.of_string "4.5") (v_f 4.5)) ;
  Alcotest.(check bool) "string" true (Value.equal (Value.of_string "abc") (v_s "abc")) ;
  Alcotest.(check bool) "null" true (Value.equal (Value.of_string " ") Value.Null)

let test_value_numeric_equal () =
  Alcotest.(check bool) "int=float" true (Value.equal (v_int 3) (v_f 3.0)) ;
  Alcotest.(check (float 0.)) "to_float" 3.0 (Value.to_float (v_int 3)) ;
  Alcotest.(check int) "to_int of float" 4 (Value.to_int (v_f 4.0))

(* ---- Table ---- *)

let test_table_accessors () =
  let t = customers () in
  Alcotest.(check int) "nrows" 5 (Table.nrows t) ;
  Alcotest.(check int) "ncols" 5 (Table.ncols t) ;
  Alcotest.(check bool) "get" true
    (Value.equal (Table.get t ~row:1 ~col_name:"Age") (v_f 40.0))

let test_table_select_project () =
  let t = customers () in
  let sel = Table.select_rows t [| 0; 2 |] in
  Alcotest.(check int) "selected" 2 (Table.nrows sel) ;
  let proj = Table.project t [ "Age"; "Income" ] in
  Alcotest.(check int) "projected cols" 2 (Table.ncols proj) ;
  Alcotest.(check int) "projected rows" 5 (Table.nrows proj)

(* ---- Csv ---- *)

let test_csv_roundtrip () =
  let t = customers () in
  let path = Filename.temp_file "morpheus_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_table path t ;
      let roles n = (Schema.find customers_schema n).Schema.role in
      let t' = Csv.read_table ~role_of:roles ~table_name:"Customers" path in
      Alcotest.(check int) "rows" (Table.nrows t) (Table.nrows t') ;
      for i = 0 to Table.nrows t - 1 do
        Alcotest.(check bool) "cell" true
          (Value.equal
             (Table.get t ~row:i ~col_name:"Income")
             (Table.get t' ~row:i ~col_name:"Income"))
      done)

let test_csv_quoting () =
  let line = Csv.split_line "a,\"b,c\",\"d\"\"e\",f" in
  Alcotest.(check (list string)) "quoted" [ "a"; "b,c"; "d\"e"; "f" ] line

(* ---- Join: PK-FK ---- *)

let test_pkfk_indicator () =
  let k = Join.pkfk_indicator (customers ()) ~fk:"EmployerID" (employers ()) ~pk:"EmployerID" in
  Alcotest.(check int) "rows" 5 (Indicator.rows k) ;
  Alcotest.(check int) "cols" 4 (Indicator.cols k) ;
  Alcotest.(check (array int)) "mapping" [| 0; 1; 0; 2; 0 |] (Indicator.mapping k)

let test_pkfk_dangling () =
  let bad =
    Table.of_rows customers_schema
      [ [| v_int 1; v_f 1.0; v_f 30.0; v_f 50.0; v_int 999 |] ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Join.pkfk_indicator bad ~fk:"EmployerID" (employers ()) ~pk:"EmployerID") ;
       false
     with Invalid_argument _ -> true)

let test_trim_unreferenced () =
  let r, k = Join.trim_unreferenced (customers ()) ~fk:"EmployerID" (employers ()) ~pk:"EmployerID" in
  (* employer 23 dropped *)
  Alcotest.(check int) "trimmed rows" 3 (Table.nrows r) ;
  Alcotest.(check int) "indicator cols" 3 (Indicator.cols k) ;
  let counts = Indicator.col_counts k in
  Array.iter (fun c -> Alcotest.(check bool) "all referenced" true (c > 0.0)) counts

let test_materialize_pkfk () =
  let t = Join.materialize_pkfk (customers ()) ~fk:"EmployerID" (employers ()) ~pk:"EmployerID" in
  Alcotest.(check int) "rows preserved" 5 (Table.nrows t) ;
  (* row 3 (customer 4) joins employer 22, revenue 1500 *)
  Alcotest.(check bool) "joined value" true
    (Value.equal (Table.get t ~row:3 ~col_name:"Revenue") (v_f 1500.0)) ;
  Alcotest.(check bool) "country" true
    (Value.equal (Table.get t ~row:3 ~col_name:"Country") (v_s "US"))

(* [S, K·R] = materialized join, end to end through encoding *)
let test_normalized_equals_join () =
  let s = customers () and r = employers () in
  let ds = Morpheus.Builder.pkfk ~s ~fk:"EmployerID" ~r ~pk:"EmployerID" () in
  let direct = Morpheus.Materialize.to_dense ds.Morpheus.Builder.matrix in
  (* encode the materialized join the same way *)
  let joined = Join.materialize_pkfk s ~fk:"EmployerID" r ~pk:"EmployerID" in
  let m, _ = Encode.features joined in
  if not (Dense.approx_equal ~tol:1e-9 (Mat.dense m) direct) then
    Alcotest.failf "normalized matrix differs from encoded join output"

(* ---- Join: M:N ---- *)

let mn_s () =
  Table.of_rows
    (Schema.create ~table_name:"S"
       [ Schema.column ~name:"JS" ~role:Schema.Ignored;
         Schema.column ~name:"XS" ~role:Schema.Numeric_feature ])
    [ [| v_int 1; v_f 10.0 |];
      [| v_int 2; v_f 20.0 |];
      [| v_int 1; v_f 30.0 |];
      [| v_int 3; v_f 40.0 |] ]

let mn_r () =
  Table.of_rows
    (Schema.create ~table_name:"R"
       [ Schema.column ~name:"JR" ~role:Schema.Ignored;
         Schema.column ~name:"XR" ~role:Schema.Numeric_feature ])
    [ [| v_int 1; v_f 1.0 |];
      [| v_int 1; v_f 2.0 |];
      [| v_int 2; v_f 3.0 |];
      [| v_int 4; v_f 4.0 |] ]

let test_mn_indicators () =
  let is_, ir = Join.mn_indicators (mn_s ()) ~js:"JS" (mn_r ()) ~jr:"JR" in
  (* S rows 0,2 (JS=1) match R rows 0,1; S row 1 (JS=2) matches R row 2;
     S row 3 (JS=3) matches nothing → 5 output tuples *)
  Alcotest.(check int) "output size" 5 (Indicator.rows is_) ;
  Alcotest.(check (array int)) "I_S" [| 0; 0; 1; 2; 2 |] (Indicator.mapping is_) ;
  Alcotest.(check (array int)) "I_R" [| 0; 1; 2; 0; 1 |] (Indicator.mapping ir)

let test_mn_matches_nested_loop () =
  let s = mn_s () and r = mn_r () in
  let t = Join.materialize_mn s ~js:"JS" r ~jr:"JR" in
  (* nested-loop ground truth *)
  let expected = ref [] in
  for i = 0 to Table.nrows s - 1 do
    for j = 0 to Table.nrows r - 1 do
      if Value.equal (Table.get s ~row:i ~col_name:"JS") (Table.get r ~row:j ~col_name:"JR")
      then expected := (i, j) :: !expected
    done
  done ;
  Alcotest.(check int) "cardinality" (List.length !expected) (Table.nrows t)

let test_mn_normalized_equals_join () =
  let s = mn_s () and r = mn_r () in
  let ds = Morpheus.Builder.mn ~s ~js:"JS" ~r ~jr:"JR" () in
  let direct = Morpheus.Materialize.to_dense ds.Morpheus.Builder.matrix in
  Alcotest.(check (pair int int)) "dims" (5, 2) (Dense.dims direct) ;
  (* first output tuple: S row 0 (XS=10), R row 0 (XR=1) *)
  Alcotest.(check (float 1e-12)) "xs" 10.0 (Dense.get direct 0 0) ;
  Alcotest.(check (float 1e-12)) "xr" 1.0 (Dense.get direct 0 1)

let test_mn_cartesian () =
  (* all join values equal → full cartesian product *)
  let mk name vals =
    Table.of_rows
      (Schema.create ~table_name:name
         [ Schema.column ~name:"J" ~role:Schema.Ignored;
           Schema.column ~name:"X" ~role:Schema.Numeric_feature ])
      (List.map (fun v -> [| v_int 1; v_f v |]) vals)
  in
  let s = mk "S" [ 1.; 2.; 3. ] and r = mk "R" [ 4.; 5. ] in
  let is_, _ = Join.mn_indicators s ~js:"J" r ~jr:"J" in
  Alcotest.(check int) "n_S × n_R" 6 (Indicator.rows is_)

(* ---- Encode ---- *)

let test_encode_numeric_and_nominal () =
  let m, fmap = Encode.features (employers ()) in
  (* Revenue (1 col) + Country one-hot (3 categories: US, DE, FR) *)
  Alcotest.(check int) "width" 4 fmap.Encode.width ;
  let d = Mat.dense m in
  Alcotest.(check (float 0.)) "revenue" 1000.0 (Dense.get d 0 0) ;
  Alcotest.(check (float 0.)) "US one-hot row0" 1.0 (Dense.get d 0 1) ;
  Alcotest.(check (float 0.)) "DE one-hot row1" 1.0 (Dense.get d 1 2) ;
  Alcotest.(check (float 0.)) "US one-hot row2" 1.0 (Dense.get d 2 1) ;
  (* each row has exactly one active nominal column *)
  for i = 0 to 3 do
    let active = ref 0 in
    for j = 1 to 3 do
      if Dense.get d i j <> 0.0 then incr active
    done ;
    Alcotest.(check int) "one-hot" 1 !active
  done

let test_encode_sparse () =
  let m, _ = Encode.features ~sparse:true (employers ()) in
  Alcotest.(check bool) "sparse" true (Mat.is_sparse m)

let test_target_binarize () =
  let y = Encode.target (customers ()) in
  Alcotest.(check (pair int int)) "shape" (5, 1) (Dense.dims y) ;
  let yb = Encode.binarize (Dense.of_col_array [| 1.; 2.; 3.; 4.; 5. |]) in
  let vals = Dense.col_to_array yb in
  Array.iter (fun v -> Alcotest.(check bool) "±1" true (v = 1.0 || v = -1.0)) vals

let () =
  Alcotest.run "relational"
    [ ( "value",
        [ Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "numeric equality" `Quick test_value_numeric_equal ] );
      ( "table",
        [ Alcotest.test_case "accessors" `Quick test_table_accessors;
          Alcotest.test_case "select/project" `Quick test_table_select_project ] );
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting ] );
      ( "pkfk-join",
        [ Alcotest.test_case "indicator" `Quick test_pkfk_indicator;
          Alcotest.test_case "dangling key rejected" `Quick test_pkfk_dangling;
          Alcotest.test_case "trim unreferenced" `Quick test_trim_unreferenced;
          Alcotest.test_case "materialized join" `Quick test_materialize_pkfk;
          Alcotest.test_case "[S,KR] = join output" `Quick test_normalized_equals_join ] );
      ( "mn-join",
        [ Alcotest.test_case "indicators" `Quick test_mn_indicators;
          Alcotest.test_case "matches nested loop" `Quick test_mn_matches_nested_loop;
          Alcotest.test_case "[I_S·S, I_R·R] = join" `Quick test_mn_normalized_equals_join;
          Alcotest.test_case "cartesian product" `Quick test_mn_cartesian ] );
      ( "encode",
        [ Alcotest.test_case "numeric + nominal" `Quick test_encode_numeric_and_nominal;
          Alcotest.test_case "sparse output" `Quick test_encode_sparse;
          Alcotest.test_case "target + binarize" `Quick test_target_binarize ] ) ]
