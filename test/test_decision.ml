(* Tests for the heuristic decision rule (§3.7/§5.1), the Table-3 cost
   model, and its agreement with the instrumented flop counters. *)

open La
open Sparse
open Morpheus

let pkfk ~ns ~ds ~nr ~dr =
  let rng = Rng.of_int (ns + ds + nr + dr) in
  let s = Mat.of_dense (Dense.random ~rng ns ds) in
  let r = Mat.of_dense (Dense.random ~rng nr dr) in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s ~k ~r

(* ---- heuristic rule ---- *)

let test_heuristic_high_redundancy () =
  (* TR = 10, FR = 2: comfortably factorized *)
  let t = pkfk ~ns:200 ~ds:4 ~nr:20 ~dr:8 in
  Alcotest.(check string) "factorized" "factorized"
    (Decision.to_string (Decision.heuristic t))

let test_heuristic_low_tuple_ratio () =
  (* TR = 2 < τ = 5 → materialized *)
  let t = pkfk ~ns:40 ~ds:4 ~nr:20 ~dr:8 in
  Alcotest.(check string) "materialized" "materialized"
    (Decision.to_string (Decision.heuristic t))

let test_heuristic_low_feature_ratio () =
  (* FR = 0.5 < ρ = 1 → materialized *)
  let t = pkfk ~ns:200 ~ds:8 ~nr:20 ~dr:4 in
  Alcotest.(check string) "materialized" "materialized"
    (Decision.to_string (Decision.heuristic t))

let test_heuristic_custom_thresholds () =
  let t = pkfk ~ns:40 ~ds:4 ~nr:20 ~dr:8 in
  (* TR = 2: rejected at τ=5 but accepted at τ=1.5 *)
  Alcotest.(check string) "accepted" "factorized"
    (Decision.to_string (Decision.heuristic ~tau:1.5 t))

let test_tuple_feature_ratio () =
  let t = pkfk ~ns:200 ~ds:4 ~nr:20 ~dr:8 in
  Alcotest.(check (float 1e-9)) "TR" 10.0 (Normalized.tuple_ratio t) ;
  Alcotest.(check (float 1e-9)) "FR" 2.0 (Normalized.feature_ratio t)

let test_redundancy_ratio () =
  let t = pkfk ~ns:200 ~ds:4 ~nr:20 ~dr:8 in
  (* size(T)/(size(S)+size(R)) = 200*12 / (800+160) = 2.5 *)
  Alcotest.(check (float 1e-9)) "ratio" 2.5 (Normalized.redundancy_ratio t)

(* ---- adaptive matrix ---- *)

let test_adaptive_routes () =
  let hi = pkfk ~ns:200 ~ds:4 ~nr:20 ~dr:8 in
  let lo = pkfk ~ns:40 ~ds:8 ~nr:20 ~dr:4 in
  Alcotest.(check string) "hi → F" "factorized"
    (Decision.to_string (Adaptive_matrix.choice (Adaptive_matrix.of_normalized hi))) ;
  Alcotest.(check string) "lo → M" "materialized"
    (Decision.to_string (Adaptive_matrix.choice (Adaptive_matrix.of_normalized lo)))

let test_adaptive_same_results () =
  (* whichever path is chosen, the numbers agree with the rewrites *)
  List.iter
    (fun t ->
      let a = Adaptive_matrix.of_normalized t in
      let x = Dense.random ~rng:(Rng.of_int 3) (Normalized.cols t) 2 in
      if not (Dense.approx_equal ~tol:1e-8 (Rewrite.lmm t x) (Adaptive_matrix.lmm a x))
      then Alcotest.fail "adaptive lmm differs" ;
      if not
           (Dense.approx_equal ~tol:1e-8 (Rewrite.crossprod t)
              (Adaptive_matrix.crossprod a))
      then Alcotest.fail "adaptive crossprod differs")
    [ pkfk ~ns:200 ~ds:4 ~nr:20 ~dr:8; pkfk ~ns:40 ~ds:8 ~nr:20 ~dr:4 ]

(* ---- cost model vs analytic expectations ---- *)

let dims = { Cost.ns = 100_000; ds = 20; nr = 10_000; dr = 40 }

let test_cost_speedups_positive () =
  List.iter
    (fun op ->
      let sp = Cost.speedup dims op in
      Alcotest.(check bool) "speedup > 1 at TR=10,FR=2" true (sp > 1.0))
    [ Cost.Scalar_op; Cost.Aggregation; Cost.Lmm 1; Cost.Rmm 1; Cost.Crossprod ]

let test_cost_asymptotics () =
  (* as TR → ∞ the linear-op speed-up approaches 1 + FR (Table 11) *)
  let fr = 2.0 in
  let big = { Cost.ns = 100_000_000; ds = 20; nr = 100; dr = 40 } in
  let sp = Cost.speedup big (Cost.Lmm 1) in
  Alcotest.(check bool) "≈ 1+FR" true (Float.abs (sp -. (1.0 +. fr)) < 0.01) ;
  let spc = Cost.speedup big Cost.Crossprod in
  Alcotest.(check bool) "crossprod ≈ (1+FR)²" true
    (Float.abs (spc -. ((1.0 +. fr) ** 2.0)) < 0.05) ;
  Alcotest.(check (float 1e-9)) "limit helper" 9.0
    (Cost.limit_tuple_ratio ~feature_ratio:2.0 Cost.Crossprod)

(* ---- cost model vs instrumented flops ---- *)

(* Run a factorized operator under the flop counter and compare with the
   Table 3 expression; lower-order terms allow a loose factor. *)
let measured_close ?(slack = 0.35) name expected measured =
  let rel = Float.abs (measured -. expected) /. expected in
  if rel > slack then
    Alcotest.failf "%s: measured %g vs model %g (rel %.2f)" name measured
      expected rel

let test_flops_match_model () =
  let ns = 2000 and ds = 8 and nr = 100 and dr = 16 in
  let t = pkfk ~ns ~ds ~nr ~dr in
  let d = { Cost.ns; ds; nr; dr } in
  let x1 = Dense.random ~rng:(Rng.of_int 5) (ds + dr) 1 in
  (* factorized LMM: model dX(nS dS + nR dR); count one mult+add = 2 flops,
     model counts "arithmetic computations" similarly at 2 per pair *)
  let _, f_lmm = Flops.count (fun () -> ignore (Rewrite.lmm t x1)) in
  measured_close "factorized LMM" (2.0 *. Cost.factorized d (Cost.Lmm 1)) f_lmm ;
  let m = Materialize.to_dense t in
  let _, m_lmm = Flops.count (fun () -> ignore (Blas.gemm m x1)) in
  measured_close "standard LMM" (2.0 *. Cost.standard d (Cost.Lmm 1)) m_lmm ;
  (* scalar op *)
  let _, f_sc = Flops.count (fun () -> ignore (Rewrite.scale 2.0 t)) in
  measured_close "factorized scalar" (Cost.factorized d Cost.Scalar_op) f_sc ;
  let _, m_sc = Flops.count (fun () -> ignore (Dense.scale 2.0 m)) in
  measured_close "standard scalar" (Cost.standard d Cost.Scalar_op) m_sc ;
  (* crossprod: model (1/2)d²nS vs counted nS·d(d+1) ≈ 2× model *)
  let _, m_cp = Flops.count (fun () -> ignore (Blas.crossprod m)) in
  measured_close "standard crossprod" (2.0 *. Cost.standard d Cost.Crossprod) m_cp ;
  let _, f_cp = Flops.count (fun () -> ignore (Rewrite.crossprod t)) in
  measured_close "factorized crossprod" (2.0 *. Cost.factorized d Cost.Crossprod)
    f_cp

let test_flop_ratio_tracks_speedup_model () =
  (* the measured flop ratio F/M should approximate the model speed-up *)
  let ns = 4000 and ds = 10 and nr = 200 and dr = 30 in
  let t = pkfk ~ns ~ds ~nr ~dr in
  let m = Materialize.to_dense t in
  let x = Dense.random ~rng:(Rng.of_int 5) (ds + dr) 2 in
  let _, f = Flops.count (fun () -> ignore (Rewrite.lmm t x)) in
  let _, s = Flops.count (fun () -> ignore (Blas.gemm m x)) in
  let measured_speedup = s /. f in
  let model = Cost.speedup { Cost.ns; ds; nr; dr } (Cost.Lmm 2) in
  if Float.abs (measured_speedup -. model) /. model > 0.3 then
    Alcotest.failf "flop ratio %.2f vs model %.2f" measured_speedup model

let () =
  Alcotest.run "decision"
    [ ( "heuristic",
        [ Alcotest.test_case "high redundancy → F" `Quick test_heuristic_high_redundancy;
          Alcotest.test_case "low TR → M" `Quick test_heuristic_low_tuple_ratio;
          Alcotest.test_case "low FR → M" `Quick test_heuristic_low_feature_ratio;
          Alcotest.test_case "custom thresholds" `Quick test_heuristic_custom_thresholds;
          Alcotest.test_case "TR/FR accessors" `Quick test_tuple_feature_ratio;
          Alcotest.test_case "redundancy ratio" `Quick test_redundancy_ratio ] );
      ( "adaptive",
        [ Alcotest.test_case "routing" `Quick test_adaptive_routes;
          Alcotest.test_case "identical results" `Quick test_adaptive_same_results ] );
      ( "cost-model",
        [ Alcotest.test_case "speedups > 1" `Quick test_cost_speedups_positive;
          Alcotest.test_case "asymptotics (Table 11)" `Quick test_cost_asymptotics;
          Alcotest.test_case "matches flop counters" `Quick test_flops_match_model;
          Alcotest.test_case "ratio tracks model" `Quick test_flop_ratio_tracks_speedup_model ] ) ]
