(* Uniform-signature test: one generic checker runs against all three
   Data_matrix.S instantiations (regular, factorized, adaptive) and a
   shared dataset, verifying that every operation in the signature gives
   identical results across the implementations — the contract the ML
   functors rely on. *)

open La
open Sparse
open Morpheus
open Test_support

let dataset () =
  let rng = Rng.of_int 123 in
  let ns = 60 and nr = 6 and ds = 3 and dr = 4 in
  let s = Mat.of_dense (Dense.gaussian ~rng ns ds) in
  let r = Mat.of_dense (Dense.gaussian ~rng nr dr) in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  Normalized.pkfk ~s ~k ~r

(* Collect every signature operation's result as a list of named dense
   matrices (scalars become 1×1). *)
module Probe (M : Data_matrix.S) = struct
  let run (t : M.t) =
    let n = M.rows t and d = M.cols t in
    let x = Dense.random ~rng:(Rng.of_int 9) d 2 in
    let z = Dense.random ~rng:(Rng.of_int 10) 2 n in
    let p = Dense.random ~rng:(Rng.of_int 11) n 1 in
    [ ("dims", Dense.of_arrays [| [| float_of_int n; float_of_int d |] |]);
      ("scale->sum", Dense.make 1 1 (M.sum (M.scale 2.5 t)));
      ("add_scalar->sum", Dense.make 1 1 (M.sum (M.add_scalar 1.5 t)));
      ("pow->sum", Dense.make 1 1 (M.sum (M.pow t 2.0)));
      ("map->sum", Dense.make 1 1 (M.sum (M.map_scalar (fun v -> (v *. v) +. 1.0) t)));
      ("row_sums", M.row_sums t);
      ("col_sums", M.col_sums t);
      ("lmm", M.lmm t x);
      ("rmm", M.rmm z t);
      ("tlmm", M.tlmm t p);
      ("crossprod", M.crossprod t);
      ("ginv", M.ginv t) ]
end

module PR = Probe (Regular_matrix)
module PF = Probe (Factorized_matrix)
module PA = Probe (Adaptive_matrix)

let compare_runs name a b =
  List.iter2
    (fun (la, ma) (lb, mb) ->
      assert (la = lb) ;
      Gen.check_close ~tol:1e-7 (Printf.sprintf "%s: %s" name la) ma mb)
    a b

let test_all_instances_agree () =
  let t = dataset () in
  let reg = PR.run (Materialize.to_regular t) in
  let fact = PF.run t in
  let adap_f = PA.run (Adaptive_matrix.factorized t) in
  let adap_m = PA.run (Adaptive_matrix.materialized t) in
  compare_runs "regular vs factorized" reg fact ;
  compare_runs "regular vs adaptive(F)" reg adap_f ;
  compare_runs "regular vs adaptive(M)" reg adap_m

let test_describe_nonempty () =
  let t = dataset () in
  Alcotest.(check bool) "regular" true
    (String.length (Regular_matrix.describe (Materialize.to_regular t)) > 0) ;
  Alcotest.(check bool) "factorized" true
    (String.length (Factorized_matrix.describe t) > 0) ;
  Alcotest.(check bool) "adaptive" true
    (String.length (Adaptive_matrix.describe (Adaptive_matrix.of_normalized t)) > 0)

let test_adaptive_lift () =
  let t = dataset () in
  let a = Adaptive_matrix.factorized t in
  let n = Adaptive_matrix.lift Normalized.rows Sparse.Mat.rows a in
  Alcotest.(check int) "lift dispatches" (Normalized.rows t) n

let () =
  Alcotest.run "data-matrix"
    [ ( "uniform-signature",
        [ Alcotest.test_case "all instances agree" `Quick test_all_instances_agree;
          Alcotest.test_case "describe" `Quick test_describe_nonempty;
          Alcotest.test_case "lift" `Quick test_adaptive_lift ] ) ]
