(* Named locks with an optional lockdep instrumentation layer.

   Every mutex and condition variable in the system is created here
   (the source lint, rule E204, rejects raw [Mutex.create] anywhere
   else), which gives each lock a *class name* — "serve.batcher",
   "la.pool", … — stable across instances. When lockdep is enabled
   (MORPHEUS_LOCKDEP=1, [--lockdep], or {!enable_lockdep}) every
   acquisition records, per thread, the stack of held classes and adds
   held→acquired edges to one global lock-order graph. A cycle in that
   graph is a potential deadlock and is reported (E101) on the first
   bad *ordering* ever observed — no two threads need to actually race
   into the deadly embrace. Two more disciplines ride on the same
   held-stack: entering a parallel region with any lock held (E102,
   via {!enter_parallel_region} in [La.Pool.run]) and the nested-
   region downgrade counter ({!note_nested_downgrade}, W101).

   Disabled-mode cost is one [bool ref] load per operation — the same
   fast-path idiom as [Fault.point] — so the wrappers stay in
   production code paths.

   The instrumentation cannot instrument itself: all lockdep state
   lives under one raw [Mutex] ([big]), which is only ever the
   innermost lock (no callback runs under it), so it can participate
   in no cycle. Thread identity is (domain id, systhread id): domains
   spawned by the LA pool and systhreads spawned by the server both
   get private held-stacks. *)

type t = { name : string; m : Mutex.t }

let name l = l.name

(* ---- lockdep state ---- *)

let lockdep_on = ref false

type held = { h_lock : t; h_site : string }

let big = Mutex.create ()

(* (domain id, thread id) -> held stack, innermost first *)
let stacks : (int * int, held list ref) Hashtbl.t = Hashtbl.create 64

(* (from class, to class) -> the first observed acquisition sites *)
type edge = { e_from_site : string; e_to_site : string }

let edges : (string * string, edge) Hashtbl.t = Hashtbl.create 64

let violations : Diag.t list ref = ref []
let reported : (string, unit) Hashtbl.t = Hashtbl.create 16

(* Nested-region downgrades are counted unconditionally (an Atomic
   increment on a rare path), so production `stats` can surface them
   with lockdep off. *)
let nested_counter = Atomic.make 0

let nested_downgrades () = Atomic.get nested_counter

let locked_big f =
  Mutex.lock big ;
  Fun.protect ~finally:(fun () -> Mutex.unlock big) f

let thread_key () =
  ((Domain.self () :> int), Thread.id (Thread.self ()))

(* Must be called with [big] held. *)
let stack_of key =
  match Hashtbl.find_opt stacks key with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add stacks key s ;
    s

(* The acquisition site: the first backtrace slot outside this module.
   Needs debug info ([-g], on under dune's dev profile); degrades to
   "<no debug info>" without it. *)
let site () =
  let bt = Printexc.get_callstack 12 in
  match Printexc.backtrace_slots bt with
  | None -> "<no debug info>"
  | Some slots ->
    let here = ref None in
    Array.iter
      (fun slot ->
        if !here = None then
          match Printexc.Slot.location slot with
          | Some loc
            when not (Filename.check_suffix loc.Printexc.filename "sync.ml")
            ->
            here :=
              Some (Printf.sprintf "%s:%d" loc.Printexc.filename
                      loc.Printexc.line_number)
          | _ -> ())
      slots ;
    Option.value ~default:"<no debug info>" !here

let emit d =
  violations := d :: !violations ;
  prerr_endline ("morpheus lockdep: " ^ Diag.to_string d)

(* Is there a path [src] ->* [dst] in the order graph? Returns the
   first edge of one such path (for the report). Called under [big];
   the graph has tens of classes, so plain DFS is fine. *)
let find_path src dst =
  let visited = Hashtbl.create 16 in
  let rec dfs node =
    if node = dst then Some []
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.add visited node () ;
      Hashtbl.fold
        (fun (f, t) e acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if f = node then
              match dfs t with
              | Some rest -> Some (((f, t), e) :: rest)
              | None -> None
            else None)
        edges None
    end
  in
  dfs src

(* Record [l] acquired at [s] by the thread owning [stack]: check each
   held class for an order inversion, then push. Under [big]. *)
let record_acquire stack l s =
  List.iter
    (fun h ->
      let from_c = h.h_lock.name and to_c = l.name in
      if from_c <> to_c && not (Hashtbl.mem edges (from_c, to_c)) then begin
        (match find_path to_c from_c with
        | Some (((pf, pt), first) :: _ as path) ->
          let key =
            "inv:" ^ String.concat "<" (List.sort compare [ from_c; to_c ])
          in
          if not (Hashtbl.mem reported key) then begin
            Hashtbl.add reported key () ;
            (* the existing path to_c ->* from_c, closed by the new
               from_c -> to_c edge *)
            let chain =
              String.concat " -> "
                ((to_c :: List.map (fun ((_, t), _) -> t) path) @ [ to_c ])
            in
            emit
              (Diag.make Diag.E101 ~where:to_c
                 ~detail:
                   [ Printf.sprintf "%s acquired at %s while holding %s \
                                     (acquired at %s)"
                       to_c s from_c h.h_site;
                     Printf.sprintf "conflicting order: %s acquired at %s \
                                     while holding %s (acquired at %s)"
                       pt first.e_to_site pf first.e_from_site ]
                 "lock-order inversion between %s and %s (cycle %s)" from_c
                 to_c chain)
          end
        | Some [] | None -> ()) ;
        Hashtbl.replace edges (from_c, to_c)
          { e_from_site = h.h_site; e_to_site = s }
      end)
    !stack ;
  stack := { h_lock = l; h_site = s } :: !stack

(* Pop the innermost entry for [l]. Under [big]. *)
let record_release stack l =
  let rec drop = function
    | [] -> []
    | h :: rest -> if h.h_lock == l then rest else h :: drop rest
  in
  stack := drop !stack

(* ---- the wrappers ---- *)

let create ~name () = { name; m = Mutex.create () }

let lock_slow l =
  Mutex.lock l.m ;
  let s = site () in
  locked_big (fun () -> record_acquire (stack_of (thread_key ())) l s)

let lock l = if !lockdep_on then lock_slow l else Mutex.lock l.m

let unlock_slow l =
  locked_big (fun () -> record_release (stack_of (thread_key ())) l) ;
  Mutex.unlock l.m

let unlock l = if !lockdep_on then unlock_slow l else Mutex.unlock l.m

let with_lock l f =
  lock l ;
  Fun.protect ~finally:(fun () -> unlock l) f

type cond = Condition.t

let condition = Condition.create

(* [Condition.wait] releases and reacquires the mutex, so the held
   stack must mirror that — otherwise every lock taken by another
   thread while this one sleeps would appear nested under [l]. *)
let wait c l =
  if !lockdep_on then begin
    let key = thread_key () in
    locked_big (fun () -> record_release (stack_of key) l) ;
    Condition.wait c l.m ;
    let s = site () in
    locked_big (fun () -> record_acquire (stack_of key) l s)
  end
  else Condition.wait c l.m

let signal = Condition.signal
let broadcast = Condition.broadcast

(* ---- parallel-region discipline ---- *)

let enter_parallel_region ~region =
  if !lockdep_on then begin
    let key = thread_key () in
    locked_big (fun () ->
        match !(stack_of key) with
        | [] -> ()
        | held ->
          List.iter
            (fun h ->
              let rkey = "region:" ^ region ^ ":" ^ h.h_lock.name in
              if not (Hashtbl.mem reported rkey) then begin
                Hashtbl.add reported rkey () ;
                emit
                  (Diag.make Diag.E102 ~where:region
                     ~detail:
                       [ Printf.sprintf "%s acquired at %s and still held"
                           h.h_lock.name h.h_site;
                         Printf.sprintf "parallel region %s entered at %s"
                           region (site ()) ]
                     "lock %s held across parallel region %s (a pool task \
                      taking it would deadlock the batch)"
                     h.h_lock.name region)
              end)
            held)
  end

let note_nested_downgrade ~region =
  Atomic.incr nested_counter ;
  if !lockdep_on then
    locked_big (fun () ->
        let rkey = "nested:" ^ region in
        if not (Hashtbl.mem reported rkey) then begin
          Hashtbl.add reported rkey () ;
          emit
            (Diag.make Diag.W101 ~where:region
               ~detail:[ Printf.sprintf "first downgrade at %s" (site ()) ]
               "nested parallel region in %s downgraded to sequential \
                execution (single-caller contract)"
               region)
        end)

(* ---- lockdep control & reporting ---- *)

let lockdep_enabled () = !lockdep_on

let enable_lockdep () = lockdep_on := true

let disable_lockdep () = lockdep_on := false

let reset_lockdep () =
  locked_big (fun () ->
      Hashtbl.reset stacks ;
      Hashtbl.reset edges ;
      Hashtbl.reset reported ;
      violations := [])

let lockdep_report () = List.rev !violations

let lockdep_violations () =
  List.filter
    (fun (d : Diag.t) -> Diag.severity_of d.Diag.code = Diag.Error)
    (lockdep_report ())

let lockdep_warnings () =
  List.filter
    (fun (d : Diag.t) -> Diag.severity_of d.Diag.code = Diag.Warning)
    (lockdep_report ())

(* MORPHEUS_LOCKDEP=1: enable at program start and make the process
   fail at exit if any error-severity violation was observed — what
   lets `dune` rules certify whole suites clean just by setting the
   variable. (OCaml 5 runs each at_exit closure at most once, so the
   nested [exit] cannot loop.) *)
let () =
  match Sys.getenv_opt "MORPHEUS_LOCKDEP" with
  | Some ("1" | "true" | "on") ->
    enable_lockdep () ;
    at_exit (fun () ->
        match lockdep_violations () with
        | [] -> ()
        | vs ->
          Printf.eprintf
            "morpheus lockdep: %d violation(s) observed (see diagnostics \
             above)\n%!"
            (List.length vs) ;
          exit 3)
  | _ -> ()
