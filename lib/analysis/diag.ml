(* Structured diagnostics for the runtime concurrency analyzer and the
   source-invariant lint — the same E/W shape as the plan checker's
   (Check, codes E001–E004 / W001–W003), but owned by the analysis
   layer so that the libraries underneath the LA core (Fault, the Sync
   layer itself) can report without a dependency cycle. Code numbers
   are partitioned by subsystem — 0xx plan checker, 1xx concurrency
   discipline, 2xx source lint — and `morpheus lint` (rule E205)
   enforces that the union stays collision-free. *)

type severity = Error | Warning

type code =
  (* concurrency discipline (lockdep) *)
  | E101  (* lock-order inversion *)
  | E102  (* lock held across a parallel region *)
  | W101  (* nested parallel region downgraded to sequential *)
  (* source-invariant lint *)
  | E201  (* fault point in code but not documented *)
  | E202  (* fault point documented but not in code *)
  | E203  (* protocol op drift between Protocol and the docs *)
  | E204  (* raw primitive outside its sanctioned module *)
  | E205  (* duplicate diagnostic code across catalogues *)
  | E206  (* relational Ast node drift between Ast and the docs *)
  | E207  (* unsafe array indexing outside the sanctioned kernels *)
  | E208  (* cluster routed-op / fault-point table drift *)

let all_codes =
  [ E101; E102; W101; E201; E202; E203; E204; E205; E206; E207; E208 ]

let severity_of = function
  | E101 | E102 | E201 | E202 | E203 | E204 | E205 | E206 | E207 | E208 ->
    Error
  | W101 -> Warning

let code_name = function
  | E101 -> "E101"
  | E102 -> "E102"
  | W101 -> "W101"
  | E201 -> "E201"
  | E202 -> "E202"
  | E203 -> "E203"
  | E204 -> "E204"
  | E205 -> "E205"
  | E206 -> "E206"
  | E207 -> "E207"
  | E208 -> "E208"

let code_doc = function
  | E101 -> "lock-order inversion (potential deadlock)"
  | E102 -> "lock held across a parallel region (La.Pool.run)"
  | W101 -> "nested parallel region downgraded to sequential"
  | E201 -> "fault point in code is undocumented in docs/ROBUSTNESS.md"
  | E202 -> "fault point documented in docs/ROBUSTNESS.md is not in code"
  | E203 -> "protocol op drift between Protocol and docs/SERVING.md"
  | E204 -> "raw concurrency/clock/rng primitive outside its sanctioned module"
  | E205 -> "diagnostic code defined by more than one catalogue"
  | E206 ->
    "relational Ast node drift between Ast.relational_node_names and \
     docs/REWRITE_RULES.md"
  | E207 ->
    "Array.unsafe_get/unsafe_set outside the sanctioned kernel modules \
     of docs/ANALYSIS.md"
  | E208 ->
    "cluster drift: routed ops vs the docs/SERVING.md table, or \
     lib/cluster fault points vs the docs/ROBUSTNESS.md cluster table"

type t = {
  code : code;
  where : string;  (* "file:line", a lock name, or a region name *)
  message : string;
  detail : string list;  (* one line per involved site *)
}

let make ?(detail = []) code ~where fmt =
  Printf.ksprintf (fun message -> { code; where; message; detail }) fmt

let to_string d =
  let head =
    Printf.sprintf "%s %s: %s\n    at %s" (code_name d.code)
      (match severity_of d.code with Error -> "error" | Warning -> "warning")
      d.message d.where
  in
  match d.detail with
  | [] -> head
  | lines ->
    head ^ "\n" ^ String.concat "\n" (List.map (fun l -> "    " ^ l) lines)
