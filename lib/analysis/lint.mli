(** Source-invariant lint behind [morpheus lint] and the [@lint] dune
    alias: cross-cutting rules over [lib/] and [bin/] that the type
    system cannot express. The scanner strips nested comments and
    string/char literals, so doc-comments mentioning a banned token do
    not trip the rules.

    Rules (see {!Diag} for the catalogue):
    - E201/E202 — [Fault.point] names in code vs [docs/ROBUSTNESS.md].
    - E203 — protocol ops vs the [Protocol] parser and the
      [docs/SERVING.md] wire examples.
    - E204 — raw [Mutex]/[Condition]/wall-clock/[Random.self_init]
      outside their sanctioned modules.
    - E205 — diagnostic-code uniqueness across catalogues.
    - E206 — relational Ast nodes vs the "Relational operators"
      section of [docs/REWRITE_RULES.md], both directions.
    - E207 — [Array.unsafe_get]/[Array.unsafe_set] only inside the
      kernel modules the "Sanctioned unsafe-indexing modules" table of
      [docs/ANALYSIS.md] lists, and every listed module still uses
      them, both directions.
    - E208 — the router's forwarded ops vs the "Routed operations"
      table of [docs/SERVING.md], and the [lib/cluster] fault points
      vs the "Cluster fault points" table of [docs/ROBUSTNESS.md],
      both directions.

    The lint sits at the bottom of the library order, next to {!Sync}:
    facts owned by higher layers (the protocol-op list, the diagnostic
    catalogues) are passed in by the CLI rather than depended upon. *)

type config = {
  root : string;  (** repo root; [lib/], [bin/], [docs/] live under it *)
  protocol_ops : string list;  (** [Protocol.op_names] *)
  catalogues : (string * string list) list;
      (** catalogue name → its diagnostic code names *)
  relational_nodes : string list;
      (** [Ast.relational_node_names]; [[]] disables rule E206 *)
  router_ops : string list;
      (** [Router.routed_op_names]; [[]] disables rule E208 *)
}

val run : config -> Diag.t list
(** Runs every rule; returns all findings (empty = clean tree). *)
