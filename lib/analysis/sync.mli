(** Named locks with an optional lockdep instrumentation layer.

    All mutexes and condition variables in the system are created
    through this module (the source lint, rule E204, rejects raw
    [Mutex.create] anywhere else). The [name] is the lock's {e class}:
    instances created with the same name — e.g. one breaker per
    dataset — share one node in the lock-order graph, so an ordering
    proven for the class covers every instance.

    With lockdep off (the default) every operation is a direct
    [Mutex]/[Condition] call behind one [bool ref] load. With lockdep
    on ([MORPHEUS_LOCKDEP=1], [morpheus serve --lockdep], or
    {!enable_lockdep}) each acquisition records the acquiring thread's
    held-lock stack into a global lock-order graph and reports, in the
    {!Diag} E/W style with both acquisition sites:

    - {b E101} — the first acquisition ordering that closes a cycle in
      the graph (a potential deadlock; no two threads need to actually
      race into it);
    - {b E102} — a parallel region entered while the calling thread
      holds any [Sync] lock ({!enter_parallel_region}, called by
      [La.Pool.run]);
    - {b W101} — a nested parallel region downgraded to sequential
      execution ({!note_nested_downgrade}, called by [La.Exec]). *)

type t
(** A named mutex. *)

val create : name:string -> unit -> t
(** [create ~name ()] makes a lock of class [name]. Use dotted
    lower-case names, [subsystem.module[.role]]: ["serve.batcher"],
    ["la.pool.registry"]. *)

val name : t -> string

val lock : t -> unit
val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Runs the callback with the lock held; releases on exception. *)

type cond
(** A condition variable (uninstrumented; the bookkeeping lives in
    {!wait}, which must pair it with a [Sync] lock). *)

val condition : unit -> cond

val wait : cond -> t -> unit
(** [Condition.wait] with held-stack bookkeeping: the lock leaves the
    acquiring thread's stack while it sleeps and rejoins on wakeup. *)

val signal : cond -> unit
val broadcast : cond -> unit

(** {1 Parallel-region discipline} *)

val enter_parallel_region : region:string -> unit
(** Called by [La.Pool.run] on entry. Under lockdep, reports E102 for
    every lock the calling thread still holds. *)

val note_nested_downgrade : region:string -> unit
(** Called by [La.Exec] when a nested parallel region is downgraded to
    sequential execution. Always increments {!nested_downgrades}
    (cheap; surfaced in serve [stats]); under lockdep additionally
    reports W101, once per region. *)

val nested_downgrades : unit -> int
(** Process-lifetime count of nested-region downgrades. *)

(** {1 Lockdep control and reporting} *)

val lockdep_enabled : unit -> bool
val enable_lockdep : unit -> unit
val disable_lockdep : unit -> unit

val reset_lockdep : unit -> unit
(** Clears the order graph, held stacks, and recorded diagnostics
    (tests use this between scenarios). Does not change enablement. *)

val lockdep_report : unit -> Diag.t list
(** All diagnostics recorded so far, oldest first. *)

val lockdep_violations : unit -> Diag.t list
(** Error-severity subset of {!lockdep_report} (E101/E102). *)

val lockdep_warnings : unit -> Diag.t list
(** Warning-severity subset of {!lockdep_report} (W101). *)
