(** Structured E/W diagnostics for the concurrency analyzer ({!Sync})
    and the source-invariant lint ({!Lint}).

    Same shape as the plan checker's diagnostics (codes E001–E004 /
    W001–W003 in [Check]) but owned by the analysis layer, which sits
    {e below} the LA core in the dependency order. Code numbers are
    partitioned: 0xx plan checker, 1xx concurrency discipline, 2xx
    source lint; lint rule E205 keeps the union collision-free.

    Catalogue:
    - [E101] lock-order inversion (potential deadlock) — two lock
      classes were acquired in both orders; reported on the first bad
      ordering ever observed, with both acquisition sites.
    - [E102] lock held across a parallel region — a thread entered
      [La.Pool.run] while holding a {!Sync} lock; a pool task that
      takes the same lock would deadlock the batch.
    - [W101] nested parallel region downgraded to sequential — the
      [La.Exec] single-caller contract fired its downgrade path
      (counted always; reported as a diagnostic under lockdep).
    - [E201]/[E202] fault-point drift between the source tree and
      [docs/ROBUSTNESS.md].
    - [E203] protocol-op drift between [Protocol] and
      [docs/SERVING.md].
    - [E204] raw [Mutex]/[Condition]/wall-clock/[Random] use outside
      the sanctioned modules.
    - [E205] diagnostic code defined by more than one catalogue.
    - [E206] relational-node drift: every constructor named by
      [Ast.relational_node_names] must appear in the "Relational
      operators" section of [docs/REWRITE_RULES.md], and every node
      that section documents must exist in the Ast.
    - [E207] unsafe-indexing discipline: [Array.unsafe_get]/
      [Array.unsafe_set] may appear only in the kernel modules listed
      in the "Sanctioned unsafe-indexing modules" table of
      [docs/ANALYSIS.md], and every listed module must still use them
      (both directions, like E201/E202).
    - [E208] cluster drift: the router's forwarded ops vs the "Routed
      operations" table of [docs/SERVING.md], and the [lib/cluster]
      fault points vs the "Cluster fault points" table of
      [docs/ROBUSTNESS.md], both directions. *)

type severity = Error | Warning

type code =
  | E101
  | E102
  | W101
  | E201
  | E202
  | E203
  | E204
  | E205
  | E206
  | E207
  | E208

val all_codes : code list
(** Every code this catalogue defines — what lint rule E205 compares
    against the plan checker's catalogue. *)

val severity_of : code -> severity
val code_name : code -> string

val code_doc : code -> string
(** One-line description of what the code means. *)

type t = {
  code : code;
  where : string;  (** "file:line", a lock name, or a region name *)
  message : string;
  detail : string list;  (** one line per involved acquisition site *)
}

val make :
  ?detail:string list -> code -> where:string ->
  ('a, unit, string, t) format4 -> 'a

val to_string : t -> string
(** [Check.diagnostic_to_string]-style rendering: code, severity,
    message, then one indented line per site. *)
