(* Source-invariant lint: cross-cutting rules the type system cannot
   express, run over lib/ and bin/ by `morpheus lint` (and the
   @lint dune alias). The scanner is OCaml-aware enough to be
   trustworthy — nested (* *) comments, string literals (with escapes
   and {|quoted|} forms), char literals — but it is a lint, not a
   parser: rules match tokens in comment-stripped text.

   Rules (catalogue in Diag):
   - E201/E202  every `Fault.point "name"` in code is documented in
                docs/ROBUSTNESS.md, and every point the doc lists
                exists in code.
   - E203       the protocol op list, the Protocol parser, and the
                docs/SERVING.md wire examples agree.
   - E204       no raw Mutex/Condition, wall-clock, or
                Random.self_init outside the sanctioned modules.
   - E205       diagnostic codes are unique across catalogues.
   - E207       Array.unsafe_get/unsafe_set only in the kernel modules
                the docs/ANALYSIS.md table sanctions — and every
                sanctioned module still uses them (both directions).

   The lint knows nothing about the modules above it: the CLI passes
   in the protocol-op list and the diagnostic catalogues, so this
   module stays at the bottom of the dependency order next to Sync. *)

type config = {
  root : string;  (* repo root; lib/ bin/ docs/ resolved under it *)
  protocol_ops : string list;
  catalogues : (string * string list) list;
      (* catalogue name -> its diagnostic code names, for E205 *)
  relational_nodes : string list;
      (* Ast.relational_node_names, for E206; [] disables the rule *)
  router_ops : string list;
      (* Router.routed_op_names, for E208; [] disables the rule *)
}

(* ---- source scanning ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* .ml files under dir, recursively, with root-relative paths using
   '/' — stable report order. *)
let ml_files root dir =
  let out = ref [] in
  let rec go rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs then
      if Sys.is_directory abs then
        Array.iter
          (fun e -> go (rel ^ "/" ^ e))
          (let es = Sys.readdir abs in
           Array.sort compare es ;
           es)
      else if Filename.check_suffix rel ".ml" then out := rel :: !out
  in
  go dir ;
  List.rev !out

(* Blank out comments (and, unless [keep_strings], string/char
   literals) with spaces, preserving every '\n' so byte offsets and
   line numbers survive. Handles nested comments, strings inside
   comments (OCaml lexes them), escapes, {id|...|id} quoted strings,
   and the char-literal / type-variable apostrophe ambiguity. *)
let strip ~keep_strings src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let blank i = if Bytes.get buf i <> '\n' then Bytes.set buf i ' ' in
  let blank_range a b =
    for i = a to b - 1 do
      blank i
    done
  in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  (* consume a string literal starting at the opening quote; returns
     the index one past the closing quote *)
  let skip_string start =
    let j = ref (start + 1) in
    let stop = ref false in
    while (not !stop) && !j < n do
      (match src.[!j] with
      | '\\' -> incr j
      | '"' -> stop := true
      | _ -> ()) ;
      incr j
    done ;
    !j
  in
  let skip_quoted start =
    (* start points at the brace; find the quoted-string opener *)
    let j = ref (start + 1) in
    while
      !j < n && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done ;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (start + 1) (!j - start - 1) in
      let closer = "|" ^ id ^ "}" in
      let cl = String.length closer in
      let k = ref (!j + 1) in
      let stop = ref false in
      while (not !stop) && !k + cl <= n do
        if String.sub src !k cl = closer then stop := true else incr k
      done ;
      Some (if !stop then !k + cl else n)
    end
    else None
  in
  while !i < n do
    match src.[!i] with
    | '(' when peek 1 = '*' ->
      (* comment: nested, and strings inside are lexed *)
      let depth = ref 1 in
      let j = ref (!i + 2) in
      while !depth > 0 && !j < n do
        if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
          incr depth ;
          j := !j + 2
        end
        else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
          decr depth ;
          j := !j + 2
        end
        else if src.[!j] = '"' then j := skip_string !j
        else incr j
      done ;
      blank_range !i !j ;
      i := !j
    | '"' ->
      let j = skip_string !i in
      if not keep_strings then blank_range !i j ;
      i := j
    | '{' -> (
      match skip_quoted !i with
      | Some j ->
        if not keep_strings then blank_range !i j ;
        i := j
      | None -> incr i)
    | '\'' ->
      (* char literal iff '\x…' or 'c'; otherwise a type variable *)
      if peek 1 = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done ;
        let j = min n (!j + 1) in
        if not keep_strings then blank_range !i j ;
        i := j
      end
      else if peek 2 = '\'' && peek 1 <> '\'' then begin
        if not keep_strings then blank_range !i (!i + 3) ;
        i := !i + 3
      end
      else incr i
    | _ -> incr i
  done ;
  Bytes.to_string buf

let line_at src off =
  let l = ref 1 in
  for k = 0 to min off (String.length src) - 1 do
    if src.[k] = '\n' then incr l
  done ;
  !l

let ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Offsets of [pat] in [text] at token boundaries: the preceding char
   is not an identifier char or '.', and — when [pat] doesn't end in
   '.' — neither is the following one. *)
let token_offsets text pat =
  let pl = String.length pat and n = String.length text in
  let tail_open = pl > 0 && pat.[pl - 1] = '.' in
  let out = ref [] in
  let i = ref 0 in
  while !i + pl <= n do
    if
      String.sub text !i pl = pat
      && (!i = 0 || (not (ident_char text.[!i - 1])) && text.[!i - 1] <> '.')
      && (tail_open || !i + pl >= n || not (ident_char text.[!i + pl]))
    then out := !i :: !out ;
    incr i
  done ;
  List.rev !out

(* ---- rule E201/E202: fault points vs docs/ROBUSTNESS.md ---- *)

(* The token is split so that scanning this very file (lint.ml is in
   lib/) cannot mistake the pattern for a call site. *)
let fault_point_token = "Fault." ^ "point"

(* [(name, file:line)] for every Fault.point "name" in [text]
   (comments stripped, strings kept). *)
let fault_points_in rel text =
  List.filter_map
    (fun off ->
      let j = ref (off + String.length fault_point_token) in
      let n = String.length text in
      while !j < n && (text.[!j] = ' ' || text.[!j] = '\n') do
        incr j
      done ;
      if !j < n && text.[!j] = '"' then begin
        let k = ref (!j + 1) in
        while !k < n && text.[!k] <> '"' do
          incr k
        done ;
        Some
          ( String.sub text (!j + 1) (!k - !j - 1),
            Printf.sprintf "%s:%d" rel (line_at text off) )
      end
      else None)
    (token_offsets text fault_point_token)

(* The doc's point catalogue is its markdown table: backticked
   `a.b[.c]` tokens (lower-case, dotted, no wildcard) on `|`-prefixed
   rows. Prose mentions of other dotted names (Validate stages, module
   paths) are deliberately out of scope — only the table is
   authoritative. *)
let doc_points doc =
  let is_point s =
    String.contains s '.'
    && (not (String.contains s '*'))
    && s <> ""
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' | '.' -> true | _ -> false)
         s
  in
  let out = ref [] in
  List.iteri
    (fun k line ->
      if String.length line > 0 && line.[0] = '|' then begin
        let n = String.length line in
        let i = ref 0 in
        while !i < n do
          if line.[!i] = '`' then begin
            let j = ref (!i + 1) in
            while !j < n && line.[!j] <> '`' do
              incr j
            done ;
            if !j < n then begin
              let tok = String.sub line (!i + 1) (!j - !i - 1) in
              if is_point tok then out := (tok, k + 1) :: !out ;
              i := !j + 1
            end
            else i := !j
          end
          else incr i
        done
      end)
    (String.split_on_char '\n' doc) ;
  List.rev !out

let check_fault_points ~root ~sources =
  let doc_rel = "docs/ROBUSTNESS.md" in
  let doc_path = Filename.concat root doc_rel in
  if not (Sys.file_exists doc_path) then
    [ Diag.make Diag.E202 ~where:doc_rel
        "fault-point catalogue %s is missing" doc_rel ]
  else begin
    let doc = read_file doc_path in
    let documented = doc_points doc in
    let in_code =
      List.concat_map
        (fun (rel, text) -> fault_points_in rel text)
        sources
    in
    let undocumented =
      List.filter
        (fun (name, _) -> not (List.mem_assoc name documented))
        in_code
    in
    let phantom =
      List.filter
        (fun (name, _) -> not (List.exists (fun (n, _) -> n = name) in_code))
        documented
    in
    List.map
      (fun (name, where) ->
        Diag.make Diag.E201 ~where
          "fault point %S is not documented in %s" name doc_rel)
      undocumented
    @ List.map
        (fun (name, line) ->
          Diag.make Diag.E202
            ~where:(Printf.sprintf "%s:%d" doc_rel line)
            "documented fault point %S does not appear in lib/ or bin/" name)
        phantom
  end

(* ---- rule E203: protocol ops vs parser vs docs/SERVING.md ---- *)

let check_protocol_ops ~root ~ops =
  let doc_rel = "docs/SERVING.md" in
  let doc_path = Filename.concat root doc_rel in
  let proto_rel = "lib/serve/protocol.ml" in
  let proto_path = Filename.concat root proto_rel in
  let missing_file rel =
    [ Diag.make Diag.E203 ~where:rel "protocol reference %s is missing" rel ]
  in
  if not (Sys.file_exists doc_path) then missing_file doc_rel
  else if not (Sys.file_exists proto_path) then missing_file proto_rel
  else begin
    let doc = read_file doc_path in
    let proto = strip ~keep_strings:true (read_file proto_path) in
    (* wire examples in the doc: "op":"NAME" (optionally spaced) *)
    let doc_ops =
      List.concat_map
        (fun pat ->
          List.map
            (fun off ->
              let start = off + String.length pat in
              let k = ref start in
              let n = String.length doc in
              while !k < n && doc.[!k] <> '"' do
                incr k
              done ;
              (String.sub doc start (!k - start), line_at doc off))
            (let out = ref [] and i = ref 0 in
             let pl = String.length pat and n = String.length doc in
             while !i + pl <= n do
               if String.sub doc !i pl = pat then out := !i :: !out ;
               incr i
             done ;
             List.rev !out))
        [ {|"op":"|}; {|"op": "|} ]
    in
    let undocumented =
      List.filter (fun op -> not (List.mem_assoc op doc_ops)) ops
    in
    let phantom =
      List.filter (fun (op, _) -> not (List.mem op ops)) doc_ops
    in
    let unparsed =
      (* every op must have its parser case: Some "NAME" *)
      List.filter
        (fun op ->
          token_offsets proto (Printf.sprintf "Some %S" op) = [])
        ops
    in
    List.map
      (fun op ->
        Diag.make Diag.E203 ~where:doc_rel
          "protocol op %S has no wire example in %s" op doc_rel)
      undocumented
    @ List.map
        (fun (op, line) ->
          Diag.make Diag.E203
            ~where:(Printf.sprintf "%s:%d" doc_rel line)
            "documented op %S is not in Protocol.op_names" op)
        phantom
    @ List.map
        (fun op ->
          Diag.make Diag.E203 ~where:proto_rel
            "protocol op %S has no parser case (Some %S) in %s" op op
            proto_rel)
        unparsed
  end

(* ---- rule E204: raw primitives outside sanctioned modules ---- *)

(* (token, sanctioned files, why) — matched against comment- and
   string-stripped text, so mentioning a token in a docstring is
   fine. *)
let sanctioned =
  [ ( "Mutex.",
      [ "lib/analysis/sync.ml" ],
      "locks must be named: use Analysis.Sync" );
    ( "Condition.",
      [ "lib/analysis/sync.ml" ],
      "condition variables must pair with Sync locks: use Analysis.Sync" );
    ( "Unix.gettimeofday",
      [ "lib/serve/clock.ml"; "lib/workload/timing.ml" ],
      "wall-clock reads go through Clock/Timing so tests can fake time" );
    ( "Unix.time",
      [ "lib/serve/clock.ml"; "lib/workload/timing.ml" ],
      "wall-clock reads go through Clock/Timing so tests can fake time" );
    ( "Random.self_init",
      [],
      "nondeterministic seeding breaks reproducibility: thread a seed" )
  ]

let check_primitives ~sources_bare =
  List.concat_map
    (fun (rel, text) ->
      List.concat_map
        (fun (tok, allowed, why) ->
          if List.mem rel allowed then []
          else
            List.map
              (fun off ->
                Diag.make Diag.E204
                  ~where:(Printf.sprintf "%s:%d" rel (line_at text off))
                  "raw %s outside %s (%s)" tok
                  (match allowed with
                  | [] -> "any module"
                  | l -> String.concat ", " l)
                  why)
              (token_offsets text tok))
        sanctioned)
    sources_bare

(* ---- rule E206: relational Ast nodes vs docs/REWRITE_RULES.md ---- *)

let relational_heading = "## Relational operators"

(* The documented node names are the backticked bare capitalized
   identifiers on the `|`-table rows of the dedicated section — dotted
   paths (`Relalg.filter`), formulas, and prose mentions of diagnostic
   codes stay out of scope, exactly like the ROBUSTNESS table scan
   above. *)
let doc_relational_nodes doc =
  let out = ref [] and in_section = ref false in
  List.iteri
    (fun k line ->
      if String.starts_with ~prefix:relational_heading line then
        in_section := true
      else if String.starts_with ~prefix:"## " line then in_section := false
      else if !in_section && String.starts_with ~prefix:"|" line then begin
        let n = String.length line in
        let i = ref 0 in
        while !i < n do
          if line.[!i] = '`' then begin
            let j = ref (!i + 1) in
            while !j < n && line.[!j] <> '`' do
              incr j
            done ;
            if !j < n then begin
              let tok = String.sub line (!i + 1) (!j - !i - 1) in
              if
                tok <> ""
                && (match tok.[0] with 'A' .. 'Z' -> true | _ -> false)
                && String.for_all ident_char tok
              then out := (tok, k + 1) :: !out ;
              i := !j + 1
            end
            else i := !j
          end
          else incr i
        done
      end)
    (String.split_on_char '\n' doc) ;
  List.rev !out

let check_relational_nodes ~root ~nodes =
  if nodes = [] then []
  else begin
    let doc_rel = "docs/REWRITE_RULES.md" in
    let doc_path = Filename.concat root doc_rel in
    if not (Sys.file_exists doc_path) then
      [ Diag.make Diag.E206 ~where:doc_rel
          "relational-operator catalogue %s is missing" doc_rel ]
    else begin
      let doc = read_file doc_path in
      let has_section =
        List.exists
          (String.starts_with ~prefix:relational_heading)
          (String.split_on_char '\n' doc)
      in
      if not has_section then
        [ Diag.make Diag.E206 ~where:doc_rel
            "%s has no %S section documenting the relational Ast nodes"
            doc_rel relational_heading ]
      else begin
        let documented = doc_relational_nodes doc in
        List.map
          (fun node ->
            Diag.make Diag.E206 ~where:doc_rel
              "relational node %s is not documented under %S in %s" node
              relational_heading doc_rel)
          (List.filter (fun n -> not (List.mem_assoc n documented)) nodes)
        @ List.map
            (fun (node, line) ->
              Diag.make Diag.E206
                ~where:(Printf.sprintf "%s:%d" doc_rel line)
                "documented relational node %s is not an Ast constructor" node)
            (List.filter (fun (n, _) -> not (List.mem n nodes)) documented)
      end
    end
  end

(* ---- rule E207: unsafe indexing outside the sanctioned kernels ---- *)

let unsafe_heading = "## Sanctioned unsafe-indexing modules"
let unsafe_tokens = [ "Array.unsafe_get"; "Array.unsafe_set" ]

(* The catalogue is the backticked root-relative `.ml` paths on the
   `|`-table rows of the dedicated docs/ANALYSIS.md section — same
   table-only scope as the ROBUSTNESS and REWRITE_RULES scans. *)
let doc_unsafe_modules doc =
  let is_module s =
    Filename.check_suffix s ".ml"
    && String.for_all
         (function
           | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '/' -> true
           | _ -> false)
         s
  in
  let out = ref [] and in_section = ref false in
  List.iteri
    (fun k line ->
      if String.starts_with ~prefix:unsafe_heading line then in_section := true
      else if String.starts_with ~prefix:"## " line then in_section := false
      else if !in_section && String.starts_with ~prefix:"|" line then begin
        let n = String.length line in
        let i = ref 0 in
        while !i < n do
          if line.[!i] = '`' then begin
            let j = ref (!i + 1) in
            while !j < n && line.[!j] <> '`' do
              incr j
            done ;
            if !j < n then begin
              let tok = String.sub line (!i + 1) (!j - !i - 1) in
              if is_module tok then out := (tok, k + 1) :: !out ;
              i := !j + 1
            end
            else i := !j
          end
          else incr i
        done
      end)
    (String.split_on_char '\n' doc) ;
  List.rev !out

(* Both directions, like E201/E202: every raw [Array.unsafe_get/set]
   token (comment- and string-stripped text) must sit in a module the
   table sanctions, and every sanctioned module must still earn its row
   — a file that dropped its unsafe indexing loses the exemption
   rather than silently keeping a blanket license. *)
let check_unsafe_indexing ~root ~sources_bare =
  let doc_rel = "docs/ANALYSIS.md" in
  let doc_path = Filename.concat root doc_rel in
  if not (Sys.file_exists doc_path) then
    [ Diag.make Diag.E207 ~where:doc_rel
        "unsafe-indexing catalogue %s is missing" doc_rel ]
  else begin
    let doc = read_file doc_path in
    let has_section =
      List.exists
        (String.starts_with ~prefix:unsafe_heading)
        (String.split_on_char '\n' doc)
    in
    if not has_section then
      [ Diag.make Diag.E207 ~where:doc_rel
          "%s has no %S table sanctioning the unsafe-indexing kernels"
          doc_rel unsafe_heading ]
    else begin
      let sanctioned = doc_unsafe_modules doc in
      let offenders =
        List.concat_map
          (fun (rel, text) ->
            if List.mem_assoc rel sanctioned then []
            else
              List.concat_map
                (fun tok ->
                  List.map
                    (fun off ->
                      Diag.make Diag.E207
                        ~where:(Printf.sprintf "%s:%d" rel (line_at text off))
                        "raw %s outside the sanctioned kernel modules of %s \
                         (bounds-checked indexing, or earn a table row)"
                        tok doc_rel)
                    (token_offsets text tok))
                unsafe_tokens)
          sources_bare
      in
      let stale =
        List.filter_map
          (fun (m, line) ->
            let where = Printf.sprintf "%s:%d" doc_rel line in
            match List.assoc_opt m sources_bare with
            | None ->
              Some
                (Diag.make Diag.E207 ~where
                   "sanctioned module %s does not exist under lib/ or bin/" m)
            | Some text ->
              if
                List.exists (fun tok -> token_offsets text tok <> [])
                  unsafe_tokens
              then None
              else
                Some
                  (Diag.make Diag.E207 ~where
                     "sanctioned module %s no longer uses unsafe indexing \
                      (drop its table row)"
                     m))
          sanctioned
      in
      offenders @ stale
    end
  end

(* ---- rule E208: cluster routed ops + fault points vs the docs ---- *)

let routed_heading = "## Routed operations"
let cluster_fault_heading = "## Cluster fault points"

(* Backticked tokens satisfying [keep] on the `|`-table rows of the
   section opened by [heading] — the same table-only scope as the
   E206/E207 scans. *)
let section_tokens ~heading ~keep doc =
  let out = ref [] and in_section = ref false in
  List.iteri
    (fun k line ->
      if String.starts_with ~prefix:heading line then in_section := true
      else if String.starts_with ~prefix:"## " line then in_section := false
      else if !in_section && String.starts_with ~prefix:"|" line then begin
        let n = String.length line in
        let i = ref 0 in
        while !i < n do
          if line.[!i] = '`' then begin
            let j = ref (!i + 1) in
            while !j < n && line.[!j] <> '`' do
              incr j
            done ;
            if !j < n then begin
              let tok = String.sub line (!i + 1) (!j - !i - 1) in
              if keep tok then out := (tok, k + 1) :: !out ;
              i := !j + 1
            end
            else i := !j
          end
          else incr i
        done
      end)
    (String.split_on_char '\n' doc) ;
  List.rev !out

let has_section ~heading doc =
  List.exists (String.starts_with ~prefix:heading) (String.split_on_char '\n' doc)

(* Both directions on both tables: the routed ops the router module
   exports vs the SERVING.md "Routed operations" table, and the fault
   points armed in lib/cluster/ vs the ROBUSTNESS.md "Cluster fault
   points" table. (The cluster points also appear to the global
   E201/E202 scan, which reads every table row of ROBUSTNESS.md; this
   rule additionally pins them to the cluster-specific section.) *)
let check_cluster ~root ~router_ops ~sources =
  if router_ops = [] then []
  else begin
    let serving_rel = "docs/SERVING.md" in
    let robust_rel = "docs/ROBUSTNESS.md" in
    let op_diags =
      let path = Filename.concat root serving_rel in
      if not (Sys.file_exists path) then
        [ Diag.make Diag.E208 ~where:serving_rel
            "routed-operation catalogue %s is missing" serving_rel ]
      else begin
        let doc = read_file path in
        if not (has_section ~heading:routed_heading doc) then
          [ Diag.make Diag.E208 ~where:serving_rel
              "%s has no %S table documenting the router's forwarded ops"
              serving_rel routed_heading ]
        else begin
          let is_op s =
            s <> ""
            && String.for_all
                 (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
                 s
          in
          let documented = section_tokens ~heading:routed_heading ~keep:is_op doc in
          List.map
            (fun op ->
              Diag.make Diag.E208 ~where:serving_rel
                "routed op %S is not documented under %S in %s" op
                routed_heading serving_rel)
            (List.filter (fun op -> not (List.mem_assoc op documented)) router_ops)
          @ List.map
              (fun (op, line) ->
                Diag.make Diag.E208
                  ~where:(Printf.sprintf "%s:%d" serving_rel line)
                  "documented routed op %S is not in Router.routed_op_names" op)
              (List.filter
                 (fun (op, _) -> not (List.mem op router_ops))
                 documented)
        end
      end
    in
    let fault_diags =
      let path = Filename.concat root robust_rel in
      if not (Sys.file_exists path) then
        [ Diag.make Diag.E208 ~where:robust_rel
            "cluster fault-point catalogue %s is missing" robust_rel ]
      else begin
        let doc = read_file path in
        if not (has_section ~heading:cluster_fault_heading doc) then
          [ Diag.make Diag.E208 ~where:robust_rel
              "%s has no %S table documenting the lib/cluster fault points"
              robust_rel cluster_fault_heading ]
        else begin
          let is_point s =
            String.contains s '.'
            && (not (String.contains s '*'))
            && s <> ""
            && String.for_all
                 (function
                   | 'a' .. 'z' | '0' .. '9' | '_' | '.' -> true
                   | _ -> false)
                 s
          in
          let documented =
            section_tokens ~heading:cluster_fault_heading ~keep:is_point doc
          in
          let in_cluster =
            List.concat_map
              (fun (rel, text) ->
                if String.starts_with ~prefix:"lib/cluster/" rel then
                  fault_points_in rel text
                else [])
              sources
          in
          List.map
            (fun (name, where) ->
              Diag.make Diag.E208 ~where
                "cluster fault point %S is not documented under %S in %s" name
                cluster_fault_heading robust_rel)
            (List.filter
               (fun (name, _) -> not (List.mem_assoc name documented))
               in_cluster)
          @ List.map
              (fun (name, line) ->
                Diag.make Diag.E208
                  ~where:(Printf.sprintf "%s:%d" robust_rel line)
                  "documented cluster fault point %S does not appear in \
                   lib/cluster/"
                  name)
              (List.filter
                 (fun (name, _) ->
                   not (List.exists (fun (n, _) -> n = name) in_cluster))
                 documented)
        end
      end
    in
    op_diags @ fault_diags
  end

(* ---- rule E205: diagnostic-code uniqueness across catalogues ---- *)

let check_codes ~catalogues =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.concat_map
    (fun (cat, codes) ->
      List.filter_map
        (fun code ->
          match Hashtbl.find_opt seen code with
          | Some other ->
            Some
              (Diag.make Diag.E205
                 ~where:(other ^ "/" ^ cat)
                 "diagnostic code %s is defined by both %s and %s" code other
                 cat)
          | None ->
            Hashtbl.add seen code cat ;
            None)
        codes)
    catalogues

(* ---- driver ---- *)

let run cfg =
  let files = ml_files cfg.root "lib" @ ml_files cfg.root "bin" in
  let raw = List.map (fun rel -> (rel, read_file (Filename.concat cfg.root rel))) files in
  let sources =
    List.map (fun (rel, src) -> (rel, strip ~keep_strings:true src)) raw
  in
  let sources_bare =
    List.map (fun (rel, src) -> (rel, strip ~keep_strings:false src)) raw
  in
  check_fault_points ~root:cfg.root ~sources
  @ check_protocol_ops ~root:cfg.root ~ops:cfg.protocol_ops
  @ check_primitives ~sources_bare
  @ check_unsafe_indexing ~root:cfg.root ~sources_bare
  @ check_codes ~catalogues:cfg.catalogues
  @ check_relational_nodes ~root:cfg.root ~nodes:cfg.relational_nodes
  @ check_cluster ~root:cfg.root ~router_ops:cfg.router_ops ~sources
