(** The consistent-hash ring that assigns routing keys to shards.

    Each shard contributes [vnodes] points on a 64-bit hash circle; a
    key is owned by the first shard point clockwise from the key's own
    hash. The classic consistent-hashing properties follow: keys spread
    across shards within a bounded imbalance (more vnodes → tighter),
    and adding or removing one shard only moves the keys that land on
    (or leave) that shard — every other key keeps its owner, which is
    what keeps a shard join/leave from invalidating the whole fleet's
    dataset caches. Placement is a pure function of the member names:
    every router instance, on any host, computes the same ring.

    Immutable and purely functional — safe to share across router
    threads without a lock. *)

type t

val default_vnodes : int

val create : ?vnodes:int -> string list -> t
(** [create names] builds a ring over the given shard names (order
    irrelevant; duplicates collapse). [vnodes] (default
    {!default_vnodes} = 128) is the number of circle points per shard.
    Raises [Invalid_argument] on an empty member list or [vnodes < 1]. *)

val members : t -> string list
(** Shard names, sorted. *)

val lookup : t -> string -> string
(** The shard that owns a key. *)

val successors : t -> string -> string list
(** All shards in ownership order for a key: the owner first, then each
    distinct next shard clockwise — the failover order when the owner
    is down. Length = number of members. *)

val add : t -> string -> t
(** Ring with one shard added (no-op if already a member). *)

val remove : t -> string -> t
(** Ring with one shard removed. Raises [Invalid_argument] when
    removing the last member. *)

val ownership : t -> samples:int -> (string * int) list
(** Sampled ownership histogram: how many of [samples] deterministic
    probe keys each shard owns (sorted by shard name). The stats op
    reports this as the ring-balance view. *)
