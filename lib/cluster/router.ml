(* The router process. Data path of a routed score request:

     handler thread: read frame → deadline admission (remaining budget
       after queue time, shed with `expired` if overdrawn) → routing
       key from (model, dataset[, id blocks]) → owner shard(s) via the
       ring
     forward: per-shard cached connection (kept alive across
       requests), circuit breaker per shard, failover to the next
       distinct shard in ring order on transport failure; optionally a
       hedged second attempt to the next successor after the p95 delay
     scatter-gather: an id-set spanning shards is split per owner,
       scored per shard, and reassembled in original id order —
       bitwise-identical to a single server because per-row
       predictions are batch-invariant

   Control plane: a prober thread issues periodic health calls per
   shard and maintains dynamic membership — consecutive probe failures
   raise suspicion (Active → Suspect → Ejected, the shard leaves the
   ring with minimal key movement), sustained recovery rejoins it, and
   the drain/undrain ops take a shard out gracefully without a single
   failed request.

   The router runs no LA kernels and touches no model or dataset
   state, so handler threads are fully independent; each owns its
   per-shard connection cache. *)

open Morpheus_serve

type config = {
  listen : string;
  shards : (string * string) list;
  vnodes : int;
  block : int;
  handlers : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  probe_interval : float;
  probe_timeout : float;
  suspect_after : int;
  eject_after : int;
  rejoin_after : int;
  hedge : bool;
  hedge_rate : float;
  hedge_burst : float;
  limiter_target_ms : float option;
}

let default_config ~listen ~shards =
  { listen;
    shards;
    vnodes = Ring.default_vnodes;
    block = 64;
    handlers = 4;
    breaker_threshold = 3;
    breaker_cooldown = 1.0;
    probe_interval = 0.25;
    probe_timeout = 1.0;
    suspect_after = 1;
    eject_after = 3;
    rejoin_after = 2;
    hedge = false;
    hedge_rate = 1.0;
    hedge_burst = 4.0;
    limiter_target_ms = None
  }

(* Kept in forwarding order; `morpheus lint` (E208) cross-checks this
   list against the routed-operations table in docs/SERVING.md. *)
let routed_op_names = [ "score"; "score_where"; "score_ids"; "health"; "stats" ]

(* ---- membership ---- *)

type member_state = Active | Suspect | Draining | Ejected

let state_name = function
  | Active -> "active"
  | Suspect -> "suspect"
  | Draining -> "draining"
  | Ejected -> "ejected"

(* One record per configured shard. The list itself is immutable after
   start; the mutable fields (and the ring) are guarded by [mem_m]. *)
type member = {
  ms_name : string;
  ms_endpoint : Endpoint.t;
  ms_breaker : Breaker.t;
  mutable ms_state : member_state;
  mutable ms_in_ring : bool;
  mutable ms_operator_drain : bool;  (* drains by op never auto-rejoin *)
  mutable ms_fails : int;  (* consecutive probe failures *)
  mutable ms_oks : int;  (* consecutive probe successes while out *)
  mutable ms_ewma : float;  (* probe latency ewma, seconds *)
  mutable ms_tokens : float;  (* hedge token bucket *)
  mutable ms_refilled : float;  (* last bucket refill instant *)
  mutable ms_probes : int;
  mutable ms_ejects : int;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  members : (string * member) list;
  mem_m : Analysis.Sync.t;  (* guards ring + mutable member fields *)
  mutable ring : Ring.t;
  limiter : Limiter.t option;
  listen_fd : Unix.file_descr;
  bound : Endpoint.t;
  conns : Unix.file_descr Queue.t;
  conn_m : Analysis.Sync.t;
  conn_cv : Analysis.Sync.cond;
  (* cluster counters *)
  state_m : Analysis.Sync.t;
  mutable forwarded : int;  (* requests sent whole to one shard *)
  mutable scattered : int;  (* requests split across shards *)
  mutable subrequests : int;  (* per-shard pieces of scattered requests *)
  mutable failovers : int;  (* forwards rerouted after a shard failure *)
  mutable breaker_skips : int;  (* shards skipped on an open circuit *)
  mutable hedges : int;  (* hedge requests fired *)
  mutable hedge_wins : int;  (* hedges that answered first *)
  mutable expired : int;  (* requests shed at admission, deadline overdrawn *)
  per_shard_forwards : (string, int) Hashtbl.t;
  per_shard_errors : (string, int) Hashtbl.t;
  stop_m : Analysis.Sync.t;
  stop_cv : Analysis.Sync.cond;
  mutable stopping : bool;
  mutable threads : Thread.t list;
  started : float;
}

let now () = Clock.wall ()
let member t shard = List.assoc shard t.members
let breaker t shard = (member t shard).ms_breaker
let endpoint_of t shard = (member t shard).ms_endpoint

let count t f = Analysis.Sync.with_lock t.state_m f

let note_shard_forward t shard =
  count t (fun () ->
      Hashtbl.replace t.per_shard_forwards shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_shard_forwards shard)))

let note_shard_error t shard =
  count t (fun () ->
      Hashtbl.replace t.per_shard_errors shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_shard_errors shard)))

(* ring reads take a snapshot (Ring.t is immutable) so lookups and
   successor walks run without holding the membership lock *)
let ring_now t =
  Analysis.Sync.lock t.mem_m ;
  let r = t.ring in
  Analysis.Sync.unlock t.mem_m ;
  r

let in_ring_count_locked t =
  List.fold_left (fun n (_, m) -> if m.ms_in_ring then n + 1 else n) 0 t.members

(* Remove a member from the ring — minimal movement: only its keys
   move. Refused (no-op) for the last in-ring member: a ring must
   never be empty, a lone unhealthy shard is still the best option. *)
let leave_ring_locked t m =
  if m.ms_in_ring && in_ring_count_locked t > 1 then begin
    t.ring <- Ring.remove t.ring m.ms_name ;
    m.ms_in_ring <- false ;
    true
  end
  else not m.ms_in_ring

let join_ring_locked t m =
  if not m.ms_in_ring then begin
    t.ring <- Ring.add t.ring m.ms_name ;
    m.ms_in_ring <- true
  end

(* Hedge token budget: [hedge_rate] tokens/s refill up to
   [hedge_burst]; each fired hedge consumes one. Caps the extra load
   hedging can put on a struggling fleet. *)
let take_token t m =
  Analysis.Sync.lock t.mem_m ;
  let nw = now () in
  m.ms_tokens <-
    Float.min t.cfg.hedge_burst
      (m.ms_tokens +. ((nw -. m.ms_refilled) *. t.cfg.hedge_rate)) ;
  m.ms_refilled <- nw ;
  let ok = m.ms_tokens >= 1.0 in
  if ok then m.ms_tokens <- m.ms_tokens -. 1.0 ;
  Analysis.Sync.unlock t.mem_m ;
  ok

(* ---- forwarding over cached connections ---- *)

(* Each handler thread owns one of these: shard name → live client
   connection, reused across requests until a transport error. *)
type cache = (string, Client.t) Hashtbl.t

let drop_conn cache shard =
  match Hashtbl.find_opt cache shard with
  | Some c ->
    Client.close c ;
    Hashtbl.remove cache shard
  | None -> ()

(* One attempt against one shard. Reuses the cached connection when
   present; a reused stream that fails at the transport level gets one
   immediate fresh-connection retry (it may just have gone stale)
   before the shard is declared failing. *)
let attempt_shard t cache shard request =
  let socket = Endpoint.to_string (endpoint_of t shard) in
  let fresh () =
    let c = Client.connect ~socket in
    Metrics.record_conn_fresh t.metrics ;
    Hashtbl.replace cache shard c ;
    c
  in
  match
    Fault.point "router.forward" ;
    match Hashtbl.find_opt cache shard with
    | Some c ->
      Metrics.record_conn_reused t.metrics ;
      (c, true)
    | None -> (fresh (), false)
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)
  | exception Fault.Injected p -> Error ("transport", "injected fault at " ^ p)
  | c, reused -> (
    match Client.call c request with
    | Error ("transport", _) as err -> (
      drop_conn cache shard ;
      if not reused then err
      else
        match fresh () with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("transport", Unix.error_message e)
        | c -> (
          match Client.call c request with
          | Error ("transport", _) as err -> drop_conn cache shard ; err
          | r -> r))
    | r -> r)

(* Forward a request along a shard order (owner first, then the ring's
   failover successors). A shard answering — even with a protocol
   error — ends the walk: only transport-level failures and open
   breakers move on to the next shard. *)
let forward_ordered t cache order request =
  let rec go ~first = function
    | [] ->
      Metrics.record_error t.metrics ~code:"unavailable" ;
      Error
        ( "unavailable",
          "no shard reachable (all circuits open or connections failing)" )
    | shard :: rest ->
      let b = breaker t shard in
      if not (Breaker.allow b) then begin
        count t (fun () -> t.breaker_skips <- t.breaker_skips + 1) ;
        go ~first rest
      end
      else begin
        if not first then count t (fun () -> t.failovers <- t.failovers + 1) ;
        match attempt_shard t cache shard request with
        | Error ("transport", _) ->
          Breaker.failure b ;
          note_shard_error t shard ;
          go ~first:false rest
        | r ->
          Breaker.success b ;
          note_shard_forward t shard ;
          r
      end
  in
  go ~first:true order

(* ---- hedged forwarding ---- *)

let is_transport = function Error ("transport", _) -> true | _ -> false

(* Fire the hedge once the primary has been out longer than the
   tracked p95 (floored at 1ms so a cold histogram doesn't hedge
   everything). *)
let hedge_delay t = Float.max 1e-3 (Metrics.quantile t.metrics 0.95)

(* Hedged forward for idempotent routed reads: the primary attempt
   runs on its own thread over a private connection; if it is still
   out after the hedge delay and the owner's token budget allows, a
   second identical request goes to the next ring successor and the
   first answer wins. The loser is cancelled by closing its
   connection. Responses stay bitwise-identical to a single server
   because both shards compute identical predictions. *)
let forward_hedged t cache order request =
  let hedgeable =
    t.cfg.hedge
    &&
    match order with
    | owner :: next :: _ -> next <> owner && Breaker.allow (breaker t owner)
    | _ -> false
  in
  if not hedgeable then forward_ordered t cache order request
  else begin
    let owner, next, rest2 =
      match order with
      | owner :: next :: rest2 -> (owner, next, rest2)
      | _ -> assert false
    in
    let hm = Analysis.Sync.create ~name:"cluster.router.hedge" () in
    let results : (_, (Json.t, string * string) result) Hashtbl.t =
      Hashtbl.create 2
    in
    let conns = Hashtbl.create 2 in
    let spawn side shard =
      ignore
        (Thread.create
           (fun () ->
             let outcome =
               match
                 Client.connect ~socket:(Endpoint.to_string (endpoint_of t shard))
               with
               | exception Unix.Unix_error (e, _, _) ->
                 Error ("transport", Unix.error_message e)
               | exception Fault.Injected p ->
                 Error ("transport", "injected fault at " ^ p)
               | c ->
                 Analysis.Sync.lock hm ;
                 Hashtbl.replace conns side c ;
                 Analysis.Sync.unlock hm ;
                 Metrics.record_conn_fresh t.metrics ;
                 Client.call c request
             in
             (if is_transport outcome then begin
                Breaker.failure (breaker t shard) ;
                note_shard_error t shard
              end
              else begin
                Breaker.success (breaker t shard) ;
                note_shard_forward t shard
              end) ;
             Analysis.Sync.lock hm ;
             Hashtbl.replace results side outcome ;
             Analysis.Sync.unlock hm)
           ())
    in
    let get side =
      Analysis.Sync.lock hm ;
      let r = Hashtbl.find_opt results side in
      Analysis.Sync.unlock hm ;
      r
    in
    let close_side side =
      Analysis.Sync.lock hm ;
      (match Hashtbl.find_opt conns side with
      | Some c -> Client.close c
      | None -> ()) ;
      Analysis.Sync.unlock hm
    in
    (* a completed side's connection is private and healthy: adopt it
       into the handler cache for reuse (unless one is already there) *)
    let adopt side shard =
      Analysis.Sync.lock hm ;
      let c = Hashtbl.find_opt conns side in
      Analysis.Sync.unlock hm ;
      match c with
      | Some c when not (Hashtbl.mem cache shard) -> Hashtbl.replace cache shard c
      | Some c -> Client.close c
      | None -> ()
    in
    spawn `Primary owner ;
    let fire_at = now () +. hedge_delay t in
    let rec await_primary () =
      match get `Primary with
      | Some r -> Some r
      | None ->
        if now () >= fire_at then None
        else begin
          Thread.delay 5e-4 ;
          await_primary ()
        end
    in
    let finish_primary r =
      if is_transport r then begin
        (* normal failover semantics for the rest of the order *)
        count t (fun () -> t.failovers <- t.failovers + 1) ;
        forward_ordered t cache (next :: rest2) request
      end
      else begin
        adopt `Primary owner ;
        r
      end
    in
    match await_primary () with
    | Some r -> finish_primary r
    | None ->
      if not (take_token t (member t owner)) then begin
        (* budget exhausted: wait the primary out like an unhedged call *)
        let rec wait_out () =
          match get `Primary with
          | Some r -> finish_primary r
          | None ->
            Thread.delay 5e-4 ;
            wait_out ()
        in
        wait_out ()
      end
      else begin
        count t (fun () -> t.hedges <- t.hedges + 1) ;
        spawn `Hedge next ;
        let rec race () =
          let p = get `Primary and h = get `Hedge in
          match (p, h) with
          | Some r, _ when not (is_transport r) ->
            close_side `Hedge ;
            adopt `Primary owner ;
            r
          | _, Some r when not (is_transport r) ->
            count t (fun () -> t.hedge_wins <- t.hedge_wins + 1) ;
            close_side `Primary ;
            adopt `Hedge next ;
            r
          | Some _, Some _ ->
            (* both attempts failed at the transport level: fall back
               to the remaining successors *)
            count t (fun () -> t.failovers <- t.failovers + 1) ;
            forward_ordered t cache rest2 request
          | _ ->
            Thread.delay 5e-4 ;
            race ()
        in
        race ()
      end
  end

let forward_by_key t cache key request =
  count t (fun () -> t.forwarded <- t.forwarded + 1) ;
  forward_hedged t cache (Ring.successors (ring_now t) key) request

let render = function
  | Ok j -> j
  | Error (code, message) -> Protocol.error ~code ~message

(* ---- scatter-gather over id sets ---- *)

let score_key ~model ~dataset = model ^ "|" ^ dataset

let block_key t ~model ~dataset id =
  Printf.sprintf "%s#%d" (score_key ~model ~dataset) (id / t.cfg.block)

(* Split ids by owning shard (original order preserved within each
   piece), score each piece on its owner, reassemble the predictions
   into the original positions. Any failing piece fails the whole
   request with that piece's error — matching a single server, which
   also answers a whole score request with one error. *)
let scatter_score t cache ~model ~dataset ~ids ~deadline_ms =
  let ring = ring_now t in
  let owners = Array.map (fun id -> Ring.lookup ring (block_key t ~model ~dataset id)) ids in
  let groups = ref [] in
  (* group by owner in order of first appearance *)
  Array.iteri
    (fun i owner ->
      match List.assoc_opt owner !groups with
      | Some positions -> positions := i :: !positions
      | None -> groups := !groups @ [ (owner, ref [ i ]) ])
    owners ;
  let groups = List.map (fun (o, ps) -> (o, List.rev !ps)) !groups in
  match groups with
  | [] | [ _ ] ->
    (* one owner (or an empty id set): forward the request whole *)
    let key =
      match groups with
      | _ :: _ -> block_key t ~model ~dataset ids.(0)
      | [] -> score_key ~model ~dataset
    in
    render
      (forward_by_key t cache key
         (Protocol.Score
            { model; target = Protocol.Dataset { dataset; ids }; deadline_ms }))
  | _ ->
    count t (fun () ->
        t.scattered <- t.scattered + 1 ;
        t.subrequests <- t.subrequests + List.length groups) ;
    let preds = Array.make (Array.length ids) 0.0 in
    let model_id = ref "" in
    let failed = ref None in
    List.iter
      (fun (owner, positions) ->
        if !failed = None then begin
          let sub_ids = Array.of_list (List.map (fun i -> ids.(i)) positions) in
          let order =
            owner
            :: List.filter (( <> ) owner)
                 (Ring.successors ring (score_key ~model ~dataset))
          in
          match
            forward_hedged t cache order
              (Protocol.Score
                 { model;
                   target = Protocol.Dataset { dataset; ids = sub_ids };
                   deadline_ms
                 })
          with
          | Error (code, message) -> failed := Some (code, message)
          | Ok j -> (
            (match Option.bind (Json.member "model" j) Json.to_str with
            | Some id -> model_id := id
            | None -> ()) ;
            match Option.bind (Json.member "predictions" j) Json.float_list with
            | Some ps when List.length ps = Array.length sub_ids ->
              List.iteri (fun k p -> preds.(List.nth positions k) <- p) ps
            | _ ->
              failed := Some ("bad_response", "shard response missing predictions"))
        end)
      groups ;
    (match !failed with
    | Some (code, message) ->
      Metrics.record_error t.metrics ~code ;
      Protocol.error ~code ~message
    | None ->
      Protocol.ok
        [ ("model", Json.Str !model_id);
          ( "predictions",
            Json.Arr (Array.to_list preds |> List.map (fun x -> Json.Num x)) )
        ])

(* ---- the prober: active health checking + dynamic membership ---- *)

(* Phi-accrual-style suspicion score, reported in [membership]:
   consecutive failures dominate, scaled latency adds early warning.
   (The eject decision itself uses the integer thresholds — they are
   deterministic and cheap to reason about in tests.) *)
let suspicion t m =
  float_of_int m.ms_fails
  +. (m.ms_ewma /. Float.max 1e-3 t.cfg.probe_interval)

let note_probe t m outcome =
  Analysis.Sync.lock t.mem_m ;
  m.ms_probes <- m.ms_probes + 1 ;
  (match outcome with
  | `Up latency -> (
    m.ms_ewma <-
      (if m.ms_ewma = 0.0 then latency
       else (0.8 *. m.ms_ewma) +. (0.2 *. latency)) ;
    m.ms_fails <- 0 ;
    match m.ms_state with
    | Suspect -> m.ms_state <- Active
    | Draining when m.ms_operator_drain -> () (* operator owns the drain *)
    | Ejected | Draining ->
      (* sustained recovery rejoins without operator action *)
      m.ms_oks <- m.ms_oks + 1 ;
      if m.ms_oks >= t.cfg.rejoin_after then begin
        m.ms_oks <- 0 ;
        join_ring_locked t m ;
        m.ms_state <- Active
      end
    | Active -> ())
  | `Draining ->
    (* the shard itself is draining (drain op or SIGTERM with
       --drain-on): stop giving it new keys; it auto-rejoins when its
       health reports ok again *)
    m.ms_fails <- 0 ;
    m.ms_oks <- 0 ;
    if not m.ms_operator_drain then begin
      ignore (leave_ring_locked t m) ;
      m.ms_state <- Draining
    end
  | `Down -> (
    m.ms_oks <- 0 ;
    m.ms_fails <- m.ms_fails + 1 ;
    match m.ms_state with
    | Draining when m.ms_operator_drain -> ()
    | _ ->
      if m.ms_fails >= t.cfg.eject_after then begin
        if leave_ring_locked t m then begin
          if m.ms_state <> Ejected then m.ms_ejects <- m.ms_ejects + 1 ;
          m.ms_state <- Ejected
        end
        else
          (* last in-ring shard: refuse to empty the ring, stay
             suspect so forwarding still tries it *)
          m.ms_state <- Suspect
      end
      else if m.ms_fails >= t.cfg.suspect_after && m.ms_state = Active then
        m.ms_state <- Suspect)) ;
  Analysis.Sync.unlock t.mem_m

let probe_member t m =
  let t0 = now () in
  let outcome =
    match
      Fault.point "router.probe" ;
      (* bounded: a shard that accepts but never answers must count as
         down, not wedge the prober (and with it all membership
         transitions) forever *)
      Client.health_timeout ~timeout:t.cfg.probe_timeout
        ~socket:(Endpoint.to_string m.ms_endpoint)
    with
    | Ok j -> (
      match Option.bind (Json.member "status" j) Json.to_str with
      | Some "draining" -> `Draining
      | _ -> `Up (now () -. t0))
    | Error _ -> `Down
    | exception Fault.Injected _ -> `Down (* injected probe loss *)
    | exception Unix.Unix_error _ -> `Down
  in
  note_probe t m outcome

let prober t =
  (* stop-aware sleep in 50ms quanta so shutdown never waits a full
     probe interval *)
  let sleep dt =
    let rec go dt =
      if t.stopping || dt <= 0.0 then ()
      else begin
        Thread.delay (Float.min 0.05 dt) ;
        go (dt -. 0.05)
      end
    in
    go dt
  in
  let rec loop () =
    if t.stopping then ()
    else begin
      List.iter (fun (_, m) -> if not t.stopping then probe_member t m) t.members ;
      sleep t.cfg.probe_interval ;
      loop ()
    end
  in
  loop ()

(* ---- health / stats aggregation ---- *)

let shard_health t cache shard =
  match attempt_shard t cache shard Protocol.Health with
  | Ok j -> (
    match Option.bind (Json.member "status" j) Json.to_str with
    | Some s -> s
    | None -> "degraded")
  | Error _ -> "down"

let handle_health t cache =
  let statuses = List.map (fun (s, _) -> (s, shard_health t cache s)) t.cfg.shards in
  let worst =
    if List.for_all (fun (_, s) -> s = "ok") statuses then "ok"
    else if List.exists (fun (_, s) -> s = "down") statuses then "degraded"
    else "degraded"
  in
  Protocol.ok
    [ ("status", Json.Str worst);
      ("shards", Json.Obj (List.map (fun (n, s) -> (n, Json.Str s)) statuses));
      ("uptime_s", Json.Num (now () -. t.started))
    ]

let breaker_state_name b =
  match Breaker.state b with
  | Breaker.Closed -> "closed"
  | Breaker.Open -> "open"
  | Breaker.Half_open -> "half_open"

let membership_payload t =
  Analysis.Sync.lock t.mem_m ;
  let members =
    List.map
      (fun (name, m) ->
        ( name,
          Json.Obj
            [ ("endpoint", Json.Str (Endpoint.to_string m.ms_endpoint));
              ("state", Json.Str (state_name m.ms_state));
              ("in_ring", Json.Bool m.ms_in_ring);
              ("operator_drain", Json.Bool m.ms_operator_drain);
              ("probe_fails", Json.Num (float_of_int m.ms_fails));
              ("probe_oks", Json.Num (float_of_int m.ms_oks));
              ("probe_latency_ewma_ms", Json.Num (m.ms_ewma *. 1e3));
              ("suspicion", Json.Num (suspicion t m));
              ("hedge_tokens", Json.Num m.ms_tokens);
              ("probes", Json.Num (float_of_int m.ms_probes));
              ("ejects", Json.Num (float_of_int m.ms_ejects))
            ] ))
      t.members
  in
  let ring = Ring.members t.ring in
  Analysis.Sync.unlock t.mem_m ;
  Protocol.ok
    [ ("role", Json.Str "router");
      ("members", Json.Obj members);
      ("ring", Json.Arr (List.map (fun n -> Json.Str n) ring))
    ]

let cluster_json ?health t =
  (* snapshot every counter in one locked section, render outside it *)
  let ( forwarded,
        scattered,
        subrequests,
        failovers,
        breaker_skips,
        hedges,
        hedge_wins,
        expired,
        per_shard ) =
    count t (fun () ->
        ( t.forwarded,
          t.scattered,
          t.subrequests,
          t.failovers,
          t.breaker_skips,
          t.hedges,
          t.hedge_wins,
          t.expired,
          List.map
            (fun (name, _) ->
              ( name,
                Option.value ~default:0 (Hashtbl.find_opt t.per_shard_forwards name),
                Option.value ~default:0 (Hashtbl.find_opt t.per_shard_errors name)
              ))
            t.cfg.shards ))
  in
  let membership =
    Analysis.Sync.lock t.mem_m ;
    let ms =
      List.map
        (fun (name, m) -> (name, (state_name m.ms_state, m.ms_in_ring)))
        t.members
    in
    let ring = t.ring in
    Analysis.Sync.unlock t.mem_m ;
    (ms, ring)
  in
  let member_states, ring = membership in
  let shard_json (name, ep) =
    let fwd, errs =
      match List.find_opt (fun (n, _, _) -> n = name) per_shard with
      | Some (_, f, e) -> (f, e)
      | None -> (0, 0)
    in
    let state, in_ring =
      match List.assoc_opt name member_states with
      | Some si -> si
      | None -> ("active", true)
    in
    let base =
      [ ("endpoint", Json.Str ep);
        ("breaker", Json.Str (breaker_state_name (breaker t name)));
        ("state", Json.Str state);
        ("in_ring", Json.Bool in_ring);
        ("forwards", Json.Num (float_of_int fwd));
        ("errors", Json.Num (float_of_int errs))
      ]
    in
    let health_field =
      match Option.bind health (List.assoc_opt name) with
      | Some s -> [ ("health", Json.Str s) ]
      | None -> []
    in
    (name, Json.Obj (base @ health_field))
  in
  let ownership =
    Ring.ownership ring ~samples:1024
    |> List.map (fun (name, n) -> (name, Json.Num (float_of_int n)))
  in
  Json.Obj
    [ ("shards", Json.Obj (List.map shard_json t.cfg.shards));
      ( "ring",
        Json.Obj
          [ ("vnodes", Json.Num (float_of_int t.cfg.vnodes));
            ("ownership", Json.Obj ownership)
          ] );
      ("forwarded", Json.Num (float_of_int forwarded));
      ("scattered", Json.Num (float_of_int scattered));
      ("subrequests", Json.Num (float_of_int subrequests));
      ("failovers", Json.Num (float_of_int failovers));
      ("breaker_skips", Json.Num (float_of_int breaker_skips));
      ("hedges", Json.Num (float_of_int hedges));
      ("hedge_wins", Json.Num (float_of_int hedge_wins));
      ("expired", Json.Num (float_of_int expired));
      ( "limiter",
        match t.limiter with
        | Some lim -> Limiter.snapshot lim
        | None -> Json.Null )
    ]

let stats_payload ?health t =
  let cluster = cluster_json ?health t in
  match Metrics.snapshot t.metrics with
  | Json.Obj fields -> Json.Obj (fields @ [ ("cluster", cluster) ])
  | other -> Json.Obj [ ("metrics", other); ("cluster", cluster) ]

let stats t = stats_payload t

(* ---- request handling ---- *)

let signal_stop t =
  Analysis.Sync.lock t.stop_m ;
  t.stopping <- true ;
  Analysis.Sync.broadcast t.stop_cv ;
  Analysis.Sync.unlock t.stop_m ;
  Analysis.Sync.lock t.conn_m ;
  Analysis.Sync.broadcast t.conn_cv ;
  Analysis.Sync.unlock t.conn_m

(* Deadline-aware admission: decrement the client's budget by the time
   the frame spent between arrival and dispatch (queue wait + parse +
   any stall), shed with `expired` when nothing remains, and forward
   the decremented budget so the shard sees only what is truly left.
   Never silently late: an overdrawn request gets a structured error,
   not a best-effort answer. *)
let admit t ~arrived req =
  match req with
  | Protocol.Score { model; target; deadline_ms = Some ms } ->
    (* the fault point sits before the elapsed computation: an armed
       delay action deterministically inflates the measured queue time *)
    Fault.point "router.admit" ;
    let elapsed_ms = (now () -. arrived) *. 1e3 in
    let remaining = ms -. elapsed_ms in
    if remaining <= 0.0 then begin
      count t (fun () -> t.expired <- t.expired + 1) ;
      Metrics.record_error t.metrics ~code:"expired" ;
      Error
        (Protocol.error ~code:"expired"
           ~message:
             (Printf.sprintf
                "deadline expired before dispatch (%.3fms budget, %.3fms queue)"
                ms elapsed_ms))
    end
    else Ok (Protocol.Score { model; target; deadline_ms = Some remaining })
  | req -> Ok req

let with_limiter t f =
  match t.limiter with
  | None -> f ()
  | Some lim ->
    if not (Limiter.try_acquire lim) then begin
      Metrics.record_limited t.metrics ;
      Metrics.record_error t.metrics ~code:"overloaded" ;
      Protocol.error ~code:"overloaded"
        ~message:"concurrency limit reached at router, request shed"
    end
    else begin
      let t0 = now () in
      match f () with
      | resp ->
        let ok = Result.is_ok (Protocol.response_result resp) in
        Limiter.release lim ~latency:(now () -. t0) ~ok ;
        resp
      | exception e ->
        Limiter.release lim ~latency:(now () -. t0) ~ok:false ;
        raise e
    end

let handle_drain t shard =
  match List.assoc_opt shard t.members with
  | None ->
    Metrics.record_error t.metrics ~code:"bad_request" ;
    Protocol.error ~code:"bad_request" ~message:("unknown shard " ^ shard)
  | Some m ->
    Analysis.Sync.lock t.mem_m ;
    let refused = m.ms_in_ring && in_ring_count_locked t <= 1 in
    if not refused then begin
      ignore (leave_ring_locked t m) ;
      m.ms_state <- Draining ;
      m.ms_operator_drain <- true ;
      m.ms_fails <- 0 ;
      m.ms_oks <- 0
    end ;
    Analysis.Sync.unlock t.mem_m ;
    if refused then begin
      Metrics.record_error t.metrics ~code:"rejected" ;
      Protocol.error ~code:"rejected"
        ~message:("cannot drain the last in-ring shard " ^ shard)
    end
    else Protocol.ok [ ("shard", Json.Str shard); ("draining", Json.Bool true) ]

let handle_undrain t shard =
  match List.assoc_opt shard t.members with
  | None ->
    Metrics.record_error t.metrics ~code:"bad_request" ;
    Protocol.error ~code:"bad_request" ~message:("unknown shard " ^ shard)
  | Some m ->
    Analysis.Sync.lock t.mem_m ;
    join_ring_locked t m ;
    m.ms_state <- Active ;
    m.ms_operator_drain <- false ;
    m.ms_fails <- 0 ;
    m.ms_oks <- 0 ;
    Analysis.Sync.unlock t.mem_m ;
    Protocol.ok [ ("shard", Json.Str shard); ("draining", Json.Bool false) ]

let handle_request t cache ~arrived req =
  let timed op f =
    let t0 = now () in
    let r = f () in
    Metrics.record t.metrics ~op ~seconds:(now () -. t0) ;
    r
  in
  match admit t ~arrived req with
  | Error resp -> resp
  | Ok req -> (
    match req with
    | Protocol.Ping ->
      Metrics.record t.metrics ~op:"ping" ~seconds:0.0 ;
      Protocol.ok [ ("pong", Json.Bool true) ]
    | Protocol.Shutdown ->
      Metrics.record t.metrics ~op:"shutdown" ~seconds:0.0 ;
      signal_stop t ;
      Protocol.ok [ ("stopping", Json.Bool true) ]
    | Protocol.Stats ->
      timed "stats" (fun () ->
          let health = List.map (fun (s, _) -> (s, shard_health t cache s)) t.cfg.shards in
          Protocol.ok [ ("stats", stats_payload ~health t) ])
    | Protocol.Health -> timed "health" (fun () -> handle_health t cache)
    | Protocol.Membership ->
      timed "membership" (fun () -> membership_payload t)
    | Protocol.Drain None ->
      Metrics.record_error t.metrics ~code:"bad_request" ;
      Protocol.error ~code:"bad_request"
        ~message:"drain at the router requires a shard name"
    | Protocol.Drain (Some shard) -> timed "drain" (fun () -> handle_drain t shard)
    | Protocol.Undrain None ->
      Metrics.record_error t.metrics ~code:"bad_request" ;
      Protocol.error ~code:"bad_request"
        ~message:"undrain at the router requires a shard name"
    | Protocol.Undrain (Some shard) ->
      timed "undrain" (fun () -> handle_undrain t shard)
    | Protocol.List_models ->
      timed "list" (fun () ->
          render (forward_ordered t cache (Ring.successors (ring_now t) "list") req))
    | Protocol.Score { model; target = Protocol.Rows _; _ } ->
      timed "score_rows" (fun () ->
          with_limiter t (fun () -> render (forward_by_key t cache model req)))
    | Protocol.Score { model; target = Protocol.Dataset_where { dataset; _ }; _ } ->
      timed "score_where" (fun () ->
          with_limiter t (fun () ->
              render (forward_by_key t cache (score_key ~model ~dataset) req)))
    | Protocol.Score
        { model; target = Protocol.Dataset { dataset; ids }; deadline_ms } ->
      timed "score_ids" (fun () ->
          with_limiter t (fun () ->
              scatter_score t cache ~model ~dataset ~ids ~deadline_ms)))

(* ---- connection plumbing (stop-aware, mirrors Server) ---- *)

type reader = { fd : Unix.file_descr; rbuf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; rbuf = Buffer.create 512; chunk = Bytes.create 4096 }

let max_frame = 1 lsl 20

type frame = Frame of string | Eof | Oversized

let rec read_frame t r =
  let contents = Buffer.contents r.rbuf in
  match String.index_opt contents '\n' with
  | Some i ->
    let line = String.sub contents 0 i in
    Buffer.clear r.rbuf ;
    Buffer.add_string r.rbuf
      (String.sub contents (i + 1) (String.length contents - i - 1)) ;
    if String.length line > max_frame then Oversized else Frame line
  | None ->
    if Buffer.length r.rbuf > max_frame then Oversized
    else if t.stopping then Eof
    else begin
      match Unix.select [ r.fd ] [] [] 0.1 with
      | [], _, _ -> read_frame t r
      | _ -> (
        match Endpoint.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> Eof
        | n ->
          Buffer.add_subbytes r.rbuf r.chunk 0 n ;
          read_frame t r
        | exception Unix.Unix_error ((EBADF | ECONNRESET | EPIPE), _, _) -> Eof
        | exception Fault.Injected _ -> Eof)
      | exception Unix.Unix_error (EBADF, _, _) -> Eof
    end

let write_frame t fd json =
  let line = Json.to_string json ^ "\n" in
  try
    Endpoint.write_all fd line ;
    true
  with
  | Unix.Unix_error _ ->
    Metrics.record_write_error t.metrics ;
    false
  | Fault.Injected _ ->
    Metrics.record_write_error t.metrics ;
    false

let serve_connection t cache fd =
  let r = reader fd in
  let rec loop () =
    match read_frame t r with
    | Eof -> ()
    | Oversized ->
      Metrics.record_error t.metrics ~code:"bad_request" ;
      ignore
        (write_frame t fd
           (Protocol.error ~code:"bad_request"
              ~message:
                (Printf.sprintf "frame too large (limit %d bytes)" max_frame)))
    | Frame line ->
      (* the admission clock starts the moment the frame is complete *)
      let arrived = now () in
      let response =
        match Json.of_string line with
        | Error msg ->
          Metrics.record_error t.metrics ~code:"bad_request" ;
          Protocol.error ~code:"bad_request" ~message:msg
        | Ok j -> (
          match Protocol.request_of_json j with
          | Error msg ->
            Metrics.record_error t.metrics ~code:"bad_request" ;
            Protocol.error ~code:"bad_request" ~message:msg
          | Ok req -> (
            match handle_request t cache ~arrived req with
            | response -> response
            | exception e ->
              Metrics.record_error t.metrics ~code:"internal" ;
              Protocol.error ~code:"internal" ~message:(Printexc.to_string e)))
      in
      if write_frame t fd response then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Fault.point "router.handler" ;
      loop ())

let accept_loop t =
  let rec loop () =
    if t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> loop ()
      | _ -> (
        match Endpoint.accept t.listen_fd with
        | fd, _ ->
          Analysis.Sync.lock t.conn_m ;
          Queue.push fd t.conns ;
          Analysis.Sync.signal t.conn_cv ;
          Analysis.Sync.unlock t.conn_m ;
          loop ()
        | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
        | exception Unix.Unix_error _ -> loop ()
        | exception Fault.Injected _ -> loop ())
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop ()

(* Handler threads survive anything a connection throws (including the
   router.handler fault point): the cache is rebuilt lazily, the
   thread goes back for the next connection. *)
let handler_loop t =
  let cache : cache = Hashtbl.create 8 in
  let rec loop () =
    Analysis.Sync.lock t.conn_m ;
    while Queue.is_empty t.conns && not t.stopping do
      Analysis.Sync.wait t.conn_cv t.conn_m
    done ;
    let fd = if Queue.is_empty t.conns then None else Some (Queue.pop t.conns) in
    Analysis.Sync.unlock t.conn_m ;
    match fd with
    | Some fd ->
      (try serve_connection t cache fd
       with _ ->
         Hashtbl.iter (fun _ c -> Client.close c) cache ;
         Hashtbl.reset cache) ;
      loop ()
    | None -> Hashtbl.iter (fun _ c -> Client.close c) cache
  in
  loop ()

(* ---- lifecycle ---- *)

let start cfg =
  if cfg.shards = [] then invalid_arg "Router.start: no shards" ;
  if cfg.handlers < 1 then invalid_arg "Router.start: handlers < 1" ;
  if cfg.block < 1 then invalid_arg "Router.start: block < 1" ;
  if cfg.eject_after < 1 then invalid_arg "Router.start: eject_after < 1" ;
  if cfg.rejoin_after < 1 then invalid_arg "Router.start: rejoin_after < 1" ;
  if cfg.probe_timeout <= 0.0 then invalid_arg "Router.start: probe_timeout <= 0" ;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()) ;
  let ep = Endpoint.of_string cfg.listen in
  let listen_fd = Endpoint.listen ep in
  let started = now () in
  let t =
    { cfg;
      metrics = Metrics.create ();
      members =
        List.map
          (fun (n, e) ->
            ( n,
              { ms_name = n;
                ms_endpoint = Endpoint.of_string e;
                ms_breaker =
                  (* per-shard seed: breakers tripped together probe at
                     spread-out instants, not in lockstep *)
                  Breaker.create ~threshold:cfg.breaker_threshold
                    ~cooldown:cfg.breaker_cooldown ~jitter:0.2
                    ~seed:(Hashtbl.hash n) ();
                ms_state = Active;
                ms_in_ring = true;
                ms_operator_drain = false;
                ms_fails = 0;
                ms_oks = 0;
                ms_ewma = 0.0;
                ms_tokens = cfg.hedge_burst;
                ms_refilled = started;
                ms_probes = 0;
                ms_ejects = 0
              } ))
          cfg.shards;
      mem_m = Analysis.Sync.create ~name:"cluster.router.membership" ();
      ring = Ring.create ~vnodes:cfg.vnodes (List.map fst cfg.shards);
      limiter =
        Option.map
          (fun ms -> Limiter.create ~target:(ms /. 1e3) ())
          cfg.limiter_target_ms;
      listen_fd;
      bound = Endpoint.bound_endpoint ep listen_fd;
      conns = Queue.create ();
      conn_m = Analysis.Sync.create ~name:"cluster.router.conns" ();
      conn_cv = Analysis.Sync.condition ();
      state_m = Analysis.Sync.create ~name:"cluster.router.state" ();
      forwarded = 0;
      scattered = 0;
      subrequests = 0;
      failovers = 0;
      breaker_skips = 0;
      hedges = 0;
      hedge_wins = 0;
      expired = 0;
      per_shard_forwards = Hashtbl.create 8;
      per_shard_errors = Hashtbl.create 8;
      stop_m = Analysis.Sync.create ~name:"cluster.router.stop" ();
      stop_cv = Analysis.Sync.condition ();
      stopping = false;
      threads = [];
      started
    }
  in
  let accept_t = Thread.create accept_loop t in
  let handler_ts =
    List.init cfg.handlers (fun _ -> Thread.create handler_loop t)
  in
  let control_ts =
    if cfg.probe_interval > 0.0 then [ Thread.create prober t ] else []
  in
  t.threads <- (accept_t :: handler_ts) @ control_ts ;
  t

let endpoint t = t.bound
let metrics t = t.metrics
let request_stop t = signal_stop t

let wait t =
  Analysis.Sync.lock t.stop_m ;
  while not t.stopping do
    Analysis.Sync.wait t.stop_cv t.stop_m
  done ;
  Analysis.Sync.unlock t.stop_m

let stop t =
  request_stop t ;
  List.iter Thread.join t.threads ;
  t.threads <- [] ;
  Queue.iter
    (fun fd ->
      ignore
        (write_frame t fd
           (Protocol.error ~code:"rejected" ~message:"router shutting down")) ;
      try Unix.close fd with Unix.Unix_error _ -> ())
    t.conns ;
  Queue.clear t.conns ;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()) ;
  Endpoint.cleanup t.bound

let cluster_summary t =
  count t (fun () ->
      Printf.sprintf
        "cluster       : %d shards, %d forwarded (%d scattered into %d \
         subrequests), %d failovers, %d breaker skips, %d hedges (%d won), \
         %d expired\n"
        (List.length t.cfg.shards)
        t.forwarded t.scattered t.subrequests t.failovers t.breaker_skips
        t.hedges t.hedge_wins t.expired)

let run cfg =
  let t = start cfg in
  let stop_signal _ = request_stop t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal) in
  Fmt.pr "morpheus route: listening on %s over %d shards (%d handlers, %d vnodes)@."
    (Endpoint.to_string t.bound)
    (List.length cfg.shards) cfg.handlers cfg.vnodes ;
  List.iter (fun (n, e) -> Fmt.pr "morpheus route:   shard %s at %s@." n e) cfg.shards ;
  wait t ;
  stop t ;
  Sys.set_signal Sys.sigint old_int ;
  Sys.set_signal Sys.sigterm old_term ;
  Fmt.pr "@.-- routing metrics --@.%s%s@."
    (Metrics.summary t.metrics) (cluster_summary t)
