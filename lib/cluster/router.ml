(* The router process. Data path of a routed score request:

     handler thread: read frame → parse → routing key from
       (model, dataset[, id blocks]) → owner shard(s) via the ring
     forward: per-shard cached connection (kept alive across
       requests), circuit breaker per shard, failover to the next
       distinct shard in ring order on transport failure
     scatter-gather: an id-set spanning shards is split per owner,
       scored per shard, and reassembled in original id order —
       bitwise-identical to a single server because per-row
       predictions are batch-invariant

   The router runs no LA kernels and touches no model or dataset
   state, so handler threads are fully independent; each owns its
   per-shard connection cache. *)

open Morpheus_serve

type config = {
  listen : string;
  shards : (string * string) list;
  vnodes : int;
  block : int;
  handlers : int;
  breaker_threshold : int;
  breaker_cooldown : float;
}

let default_config ~listen ~shards =
  { listen;
    shards;
    vnodes = Ring.default_vnodes;
    block = 64;
    handlers = 4;
    breaker_threshold = 3;
    breaker_cooldown = 1.0
  }

(* Kept in forwarding order; `morpheus lint` (E208) cross-checks this
   list against the routed-operations table in docs/SERVING.md. *)
let routed_op_names = [ "score"; "score_where"; "score_ids"; "health"; "stats" ]

type t = {
  cfg : config;
  metrics : Metrics.t;
  ring : Ring.t;
  endpoints : (string * Endpoint.t) list;
  (* read-only after start; each Breaker is itself thread-safe *)
  breakers : (string * Breaker.t) list;
  listen_fd : Unix.file_descr;
  bound : Endpoint.t;
  conns : Unix.file_descr Queue.t;
  conn_m : Analysis.Sync.t;
  conn_cv : Analysis.Sync.cond;
  (* cluster counters *)
  state_m : Analysis.Sync.t;
  mutable forwarded : int;  (* requests sent whole to one shard *)
  mutable scattered : int;  (* requests split across shards *)
  mutable subrequests : int;  (* per-shard pieces of scattered requests *)
  mutable failovers : int;  (* forwards rerouted after a shard failure *)
  mutable breaker_skips : int;  (* shards skipped on an open circuit *)
  per_shard_forwards : (string, int) Hashtbl.t;
  per_shard_errors : (string, int) Hashtbl.t;
  stop_m : Analysis.Sync.t;
  stop_cv : Analysis.Sync.cond;
  mutable stopping : bool;
  mutable threads : Thread.t list;
  started : float;
}

let now () = Clock.wall ()
let breaker t shard = List.assoc shard t.breakers

let count t f = Analysis.Sync.with_lock t.state_m f

let note_shard_forward t shard =
  count t (fun () ->
      Hashtbl.replace t.per_shard_forwards shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_shard_forwards shard)))

let note_shard_error t shard =
  count t (fun () ->
      Hashtbl.replace t.per_shard_errors shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_shard_errors shard)))

(* ---- forwarding over cached connections ---- *)

(* Each handler thread owns one of these: shard name → live client
   connection, reused across requests until a transport error. *)
type cache = (string, Client.t) Hashtbl.t

let drop_conn cache shard =
  match Hashtbl.find_opt cache shard with
  | Some c ->
    Client.close c ;
    Hashtbl.remove cache shard
  | None -> ()

(* One attempt against one shard. Reuses the cached connection when
   present; a reused stream that fails at the transport level gets one
   immediate fresh-connection retry (it may just have gone stale)
   before the shard is declared failing. *)
let attempt_shard t cache shard request =
  let socket = Endpoint.to_string (List.assoc shard t.endpoints) in
  let fresh () =
    let c = Client.connect ~socket in
    Metrics.record_conn_fresh t.metrics ;
    Hashtbl.replace cache shard c ;
    c
  in
  match
    Fault.point "router.forward" ;
    match Hashtbl.find_opt cache shard with
    | Some c ->
      Metrics.record_conn_reused t.metrics ;
      (c, true)
    | None -> (fresh (), false)
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)
  | exception Fault.Injected p -> Error ("transport", "injected fault at " ^ p)
  | c, reused -> (
    match Client.call c request with
    | Error ("transport", _) as err -> (
      drop_conn cache shard ;
      if not reused then err
      else
        match fresh () with
        | exception Unix.Unix_error (e, _, _) ->
          Error ("transport", Unix.error_message e)
        | c -> (
          match Client.call c request with
          | Error ("transport", _) as err -> drop_conn cache shard ; err
          | r -> r))
    | r -> r)

(* Forward a request along a shard order (owner first, then the ring's
   failover successors). A shard answering — even with a protocol
   error — ends the walk: only transport-level failures and open
   breakers move on to the next shard. *)
let forward_ordered t cache order request =
  let rec go ~first = function
    | [] ->
      Metrics.record_error t.metrics ~code:"unavailable" ;
      Error
        ( "unavailable",
          "no shard reachable (all circuits open or connections failing)" )
    | shard :: rest ->
      let b = breaker t shard in
      if not (Breaker.allow b) then begin
        count t (fun () -> t.breaker_skips <- t.breaker_skips + 1) ;
        go ~first rest
      end
      else begin
        if not first then count t (fun () -> t.failovers <- t.failovers + 1) ;
        match attempt_shard t cache shard request with
        | Error ("transport", _) ->
          Breaker.failure b ;
          note_shard_error t shard ;
          go ~first:false rest
        | r ->
          Breaker.success b ;
          note_shard_forward t shard ;
          r
      end
  in
  go ~first:true order

let forward_by_key t cache key request =
  count t (fun () -> t.forwarded <- t.forwarded + 1) ;
  forward_ordered t cache (Ring.successors t.ring key) request

let render = function
  | Ok j -> j
  | Error (code, message) -> Protocol.error ~code ~message

(* ---- scatter-gather over id sets ---- *)

let score_key ~model ~dataset = model ^ "|" ^ dataset

let block_key t ~model ~dataset id =
  Printf.sprintf "%s#%d" (score_key ~model ~dataset) (id / t.cfg.block)

(* Split ids by owning shard (original order preserved within each
   piece), score each piece on its owner, reassemble the predictions
   into the original positions. Any failing piece fails the whole
   request with that piece's error — matching a single server, which
   also answers a whole score request with one error. *)
let scatter_score t cache ~model ~dataset ~ids ~deadline_ms =
  let owners = Array.map (fun id -> Ring.lookup t.ring (block_key t ~model ~dataset id)) ids in
  let groups = ref [] in
  (* group by owner in order of first appearance *)
  Array.iteri
    (fun i owner ->
      match List.assoc_opt owner !groups with
      | Some positions -> positions := i :: !positions
      | None -> groups := !groups @ [ (owner, ref [ i ]) ])
    owners ;
  let groups = List.map (fun (o, ps) -> (o, List.rev !ps)) !groups in
  match groups with
  | [] | [ _ ] ->
    (* one owner (or an empty id set): forward the request whole *)
    let key =
      match groups with
      | _ :: _ -> block_key t ~model ~dataset ids.(0)
      | [] -> score_key ~model ~dataset
    in
    render
      (forward_by_key t cache key
         (Protocol.Score
            { model; target = Protocol.Dataset { dataset; ids }; deadline_ms }))
  | _ ->
    count t (fun () ->
        t.scattered <- t.scattered + 1 ;
        t.subrequests <- t.subrequests + List.length groups) ;
    let preds = Array.make (Array.length ids) 0.0 in
    let model_id = ref "" in
    let failed = ref None in
    List.iter
      (fun (owner, positions) ->
        if !failed = None then begin
          let sub_ids = Array.of_list (List.map (fun i -> ids.(i)) positions) in
          let order =
            owner
            :: List.filter (( <> ) owner)
                 (Ring.successors t.ring (score_key ~model ~dataset))
          in
          match
            forward_ordered t cache order
              (Protocol.Score
                 { model;
                   target = Protocol.Dataset { dataset; ids = sub_ids };
                   deadline_ms
                 })
          with
          | Error (code, message) -> failed := Some (code, message)
          | Ok j -> (
            (match Option.bind (Json.member "model" j) Json.to_str with
            | Some id -> model_id := id
            | None -> ()) ;
            match Option.bind (Json.member "predictions" j) Json.float_list with
            | Some ps when List.length ps = Array.length sub_ids ->
              List.iteri (fun k p -> preds.(List.nth positions k) <- p) ps
            | _ ->
              failed := Some ("bad_response", "shard response missing predictions"))
        end)
      groups ;
    (match !failed with
    | Some (code, message) ->
      Metrics.record_error t.metrics ~code ;
      Protocol.error ~code ~message
    | None ->
      Protocol.ok
        [ ("model", Json.Str !model_id);
          ( "predictions",
            Json.Arr (Array.to_list preds |> List.map (fun x -> Json.Num x)) )
        ])

(* ---- health / stats aggregation ---- *)

let shard_health t cache shard =
  match attempt_shard t cache shard Protocol.Health with
  | Ok j -> (
    match Option.bind (Json.member "status" j) Json.to_str with
    | Some s -> s
    | None -> "degraded")
  | Error _ -> "down"

let handle_health t cache =
  let statuses = List.map (fun (s, _) -> (s, shard_health t cache s)) t.cfg.shards in
  let worst =
    if List.for_all (fun (_, s) -> s = "ok") statuses then "ok"
    else if List.exists (fun (_, s) -> s = "down") statuses then "degraded"
    else "degraded"
  in
  Protocol.ok
    [ ("status", Json.Str worst);
      ("shards", Json.Obj (List.map (fun (n, s) -> (n, Json.Str s)) statuses));
      ("uptime_s", Json.Num (now () -. t.started))
    ]

let breaker_state_name b =
  match Breaker.state b with
  | Breaker.Closed -> "closed"
  | Breaker.Open -> "open"
  | Breaker.Half_open -> "half_open"

let cluster_json ?health t =
  (* snapshot every counter in one locked section, render outside it *)
  let forwarded, scattered, subrequests, failovers, breaker_skips, per_shard =
    count t (fun () ->
        ( t.forwarded,
          t.scattered,
          t.subrequests,
          t.failovers,
          t.breaker_skips,
          List.map
            (fun (name, _) ->
              ( name,
                Option.value ~default:0 (Hashtbl.find_opt t.per_shard_forwards name),
                Option.value ~default:0 (Hashtbl.find_opt t.per_shard_errors name)
              ))
            t.cfg.shards ))
  in
  let shard_json (name, ep) =
    let fwd, errs =
      match List.find_opt (fun (n, _, _) -> n = name) per_shard with
      | Some (_, f, e) -> (f, e)
      | None -> (0, 0)
    in
    let base =
      [ ("endpoint", Json.Str ep);
        ("breaker", Json.Str (breaker_state_name (breaker t name)));
        ("forwards", Json.Num (float_of_int fwd));
        ("errors", Json.Num (float_of_int errs))
      ]
    in
    let health_field =
      match Option.bind health (List.assoc_opt name) with
      | Some s -> [ ("health", Json.Str s) ]
      | None -> []
    in
    (name, Json.Obj (base @ health_field))
  in
  let ownership =
    Ring.ownership t.ring ~samples:1024
    |> List.map (fun (name, n) -> (name, Json.Num (float_of_int n)))
  in
  Json.Obj
    [ ("shards", Json.Obj (List.map shard_json t.cfg.shards));
      ( "ring",
        Json.Obj
          [ ("vnodes", Json.Num (float_of_int t.cfg.vnodes));
            ("ownership", Json.Obj ownership)
          ] );
      ("forwarded", Json.Num (float_of_int forwarded));
      ("scattered", Json.Num (float_of_int scattered));
      ("subrequests", Json.Num (float_of_int subrequests));
      ("failovers", Json.Num (float_of_int failovers));
      ("breaker_skips", Json.Num (float_of_int breaker_skips))
    ]

let stats_payload ?health t =
  let cluster = cluster_json ?health t in
  match Metrics.snapshot t.metrics with
  | Json.Obj fields -> Json.Obj (fields @ [ ("cluster", cluster) ])
  | other -> Json.Obj [ ("metrics", other); ("cluster", cluster) ]

let stats t = stats_payload t

(* ---- request handling ---- *)

let signal_stop t =
  Analysis.Sync.lock t.stop_m ;
  t.stopping <- true ;
  Analysis.Sync.broadcast t.stop_cv ;
  Analysis.Sync.unlock t.stop_m ;
  Analysis.Sync.lock t.conn_m ;
  Analysis.Sync.broadcast t.conn_cv ;
  Analysis.Sync.unlock t.conn_m

let handle_request t cache req =
  let timed op f =
    let t0 = now () in
    let r = f () in
    Metrics.record t.metrics ~op ~seconds:(now () -. t0) ;
    r
  in
  match req with
  | Protocol.Ping ->
    Metrics.record t.metrics ~op:"ping" ~seconds:0.0 ;
    Protocol.ok [ ("pong", Json.Bool true) ]
  | Protocol.Shutdown ->
    Metrics.record t.metrics ~op:"shutdown" ~seconds:0.0 ;
    signal_stop t ;
    Protocol.ok [ ("stopping", Json.Bool true) ]
  | Protocol.Stats ->
    timed "stats" (fun () ->
        let health = List.map (fun (s, _) -> (s, shard_health t cache s)) t.cfg.shards in
        Protocol.ok [ ("stats", stats_payload ~health t) ])
  | Protocol.Health -> timed "health" (fun () -> handle_health t cache)
  | Protocol.List_models ->
    timed "list" (fun () ->
        render (forward_ordered t cache (Ring.successors t.ring "list") req))
  | Protocol.Score { model; target = Protocol.Rows _; _ } ->
    timed "score_rows" (fun () -> render (forward_by_key t cache model req))
  | Protocol.Score { model; target = Protocol.Dataset_where { dataset; _ }; _ } ->
    timed "score_where" (fun () ->
        render (forward_by_key t cache (score_key ~model ~dataset) req))
  | Protocol.Score
      { model; target = Protocol.Dataset { dataset; ids }; deadline_ms } ->
    timed "score_ids" (fun () ->
        scatter_score t cache ~model ~dataset ~ids ~deadline_ms)

(* ---- connection plumbing (stop-aware, mirrors Server) ---- *)

type reader = { fd : Unix.file_descr; rbuf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; rbuf = Buffer.create 512; chunk = Bytes.create 4096 }

let rec read_frame t r =
  let contents = Buffer.contents r.rbuf in
  match String.index_opt contents '\n' with
  | Some i ->
    let line = String.sub contents 0 i in
    Buffer.clear r.rbuf ;
    Buffer.add_string r.rbuf
      (String.sub contents (i + 1) (String.length contents - i - 1)) ;
    Some line
  | None ->
    if t.stopping then None
    else begin
      match Unix.select [ r.fd ] [] [] 0.1 with
      | [], _, _ -> read_frame t r
      | _ -> (
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes r.rbuf r.chunk 0 n ;
          read_frame t r
        | exception Unix.Unix_error ((EBADF | ECONNRESET | EPIPE), _, _) -> None)
      | exception Unix.Unix_error (EBADF, _, _) -> None
    end

let write_frame t fd json =
  let line = Json.to_string json ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd bytes !off (len - !off)
    done ;
    true
  with Unix.Unix_error _ ->
    Metrics.record_write_error t.metrics ;
    false

let serve_connection t cache fd =
  let r = reader fd in
  let rec loop () =
    match read_frame t r with
    | None -> ()
    | Some line ->
      let response =
        match Json.of_string line with
        | Error msg ->
          Metrics.record_error t.metrics ~code:"bad_request" ;
          Protocol.error ~code:"bad_request" ~message:msg
        | Ok j -> (
          match Protocol.request_of_json j with
          | Error msg ->
            Metrics.record_error t.metrics ~code:"bad_request" ;
            Protocol.error ~code:"bad_request" ~message:msg
          | Ok req -> (
            match handle_request t cache req with
            | response -> response
            | exception e ->
              Metrics.record_error t.metrics ~code:"internal" ;
              Protocol.error ~code:"internal" ~message:(Printexc.to_string e)))
      in
      if write_frame t fd response then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Fault.point "router.handler" ;
      loop ())

let accept_loop t =
  let rec loop () =
    if t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          Analysis.Sync.lock t.conn_m ;
          Queue.push fd t.conns ;
          Analysis.Sync.signal t.conn_cv ;
          Analysis.Sync.unlock t.conn_m ;
          loop ()
        | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
        | exception Unix.Unix_error _ -> loop ())
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop ()

(* Handler threads survive anything a connection throws (including the
   router.handler fault point): the cache is rebuilt lazily, the
   thread goes back for the next connection. *)
let handler_loop t =
  let cache : cache = Hashtbl.create 8 in
  let rec loop () =
    Analysis.Sync.lock t.conn_m ;
    while Queue.is_empty t.conns && not t.stopping do
      Analysis.Sync.wait t.conn_cv t.conn_m
    done ;
    let fd = if Queue.is_empty t.conns then None else Some (Queue.pop t.conns) in
    Analysis.Sync.unlock t.conn_m ;
    match fd with
    | Some fd ->
      (try serve_connection t cache fd
       with _ ->
         Hashtbl.iter (fun _ c -> Client.close c) cache ;
         Hashtbl.reset cache) ;
      loop ()
    | None -> Hashtbl.iter (fun _ c -> Client.close c) cache
  in
  loop ()

(* ---- lifecycle ---- *)

let start cfg =
  if cfg.shards = [] then invalid_arg "Router.start: no shards" ;
  if cfg.handlers < 1 then invalid_arg "Router.start: handlers < 1" ;
  if cfg.block < 1 then invalid_arg "Router.start: block < 1" ;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()) ;
  let ep = Endpoint.of_string cfg.listen in
  let listen_fd = Endpoint.listen ep in
  let t =
    { cfg;
      metrics = Metrics.create ();
      ring = Ring.create ~vnodes:cfg.vnodes (List.map fst cfg.shards);
      endpoints = List.map (fun (n, e) -> (n, Endpoint.of_string e)) cfg.shards;
      breakers =
        List.map
          (fun (n, _) ->
            ( n,
              Breaker.create ~threshold:cfg.breaker_threshold
                ~cooldown:cfg.breaker_cooldown () ))
          cfg.shards;
      listen_fd;
      bound = Endpoint.bound_endpoint ep listen_fd;
      conns = Queue.create ();
      conn_m = Analysis.Sync.create ~name:"cluster.router.conns" ();
      conn_cv = Analysis.Sync.condition ();
      state_m = Analysis.Sync.create ~name:"cluster.router.state" ();
      forwarded = 0;
      scattered = 0;
      subrequests = 0;
      failovers = 0;
      breaker_skips = 0;
      per_shard_forwards = Hashtbl.create 8;
      per_shard_errors = Hashtbl.create 8;
      stop_m = Analysis.Sync.create ~name:"cluster.router.stop" ();
      stop_cv = Analysis.Sync.condition ();
      stopping = false;
      threads = [];
      started = now ()
    }
  in
  let accept_t = Thread.create accept_loop t in
  let handler_ts =
    List.init cfg.handlers (fun _ -> Thread.create handler_loop t)
  in
  t.threads <- accept_t :: handler_ts ;
  t

let endpoint t = t.bound
let metrics t = t.metrics
let request_stop t = signal_stop t

let wait t =
  Analysis.Sync.lock t.stop_m ;
  while not t.stopping do
    Analysis.Sync.wait t.stop_cv t.stop_m
  done ;
  Analysis.Sync.unlock t.stop_m

let stop t =
  request_stop t ;
  List.iter Thread.join t.threads ;
  t.threads <- [] ;
  Queue.iter
    (fun fd ->
      ignore
        (write_frame t fd
           (Protocol.error ~code:"rejected" ~message:"router shutting down")) ;
      try Unix.close fd with Unix.Unix_error _ -> ())
    t.conns ;
  Queue.clear t.conns ;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()) ;
  Endpoint.cleanup t.bound

let cluster_summary t =
  count t (fun () ->
      Printf.sprintf
        "cluster       : %d shards, %d forwarded (%d scattered into %d \
         subrequests), %d failovers, %d breaker skips\n"
        (List.length t.cfg.shards)
        t.forwarded t.scattered t.subrequests t.failovers t.breaker_skips)

let run cfg =
  let t = start cfg in
  let stop_signal _ = request_stop t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal) in
  Fmt.pr "morpheus route: listening on %s over %d shards (%d handlers, %d vnodes)@."
    (Endpoint.to_string t.bound)
    (List.length cfg.shards) cfg.handlers cfg.vnodes ;
  List.iter (fun (n, e) -> Fmt.pr "morpheus route:   shard %s at %s@." n e) cfg.shards ;
  wait t ;
  stop t ;
  Sys.set_signal Sys.sigint old_int ;
  Sys.set_signal Sys.sigterm old_term ;
  Fmt.pr "@.-- routing metrics --@.%s%s@."
    (Metrics.summary t.metrics) (cluster_summary t)
