(** The cluster router: a separate process that speaks the same
    line-delimited-JSON protocol as a shard server and fans requests
    out over a fleet of shards.

    Placement is consistent hashing ({!Ring}) over [(model, dataset)]
    routing keys; a [score] request over an id set whose blocks hash to
    different shards is {e scatter-gathered} — split per owning shard,
    scored in parallel by the fleet, and reassembled in the original id
    order. Because every shard serves any (model, dataset) identically
    (registries are replicas, datasets shared) and per-row predictions
    are batch-invariant, the reassembled response is bitwise-identical
    to a single server's.

    Resilience: one {!Breaker} per shard; a transport failure fails
    over to the next distinct shard in ring order (counted as a
    failover) and the reply is still bitwise-identical, which is what
    the chaos suite asserts while SIGKILLing shard processes
    mid-storm. Forwarding connections are cached per handler thread
    and kept alive across requests ({!Metrics.record_conn_reused}).

    The router holds no model or dataset state: [ping], [stats], and
    [shutdown] answer locally, [health] fans out, everything else
    forwards. *)

type config = {
  listen : string;  (** endpoint string ({!Morpheus_serve.Endpoint}) *)
  shards : (string * string) list;
      (** shard name → endpoint string; names are the ring members *)
  vnodes : int;  (** ring points per shard ({!Ring.create}) *)
  block : int;
      (** ids per routing block: id [i] of a dataset routes by block
          [i / block], so runs of nearby ids stay on one shard *)
  handlers : int;  (** connection-handler threads *)
  breaker_threshold : int;
      (** consecutive forward failures before a shard's circuit opens *)
  breaker_cooldown : float;  (** seconds an open shard circuit rests *)
}

val default_config : listen:string -> shards:(string * string) list -> config
(** vnodes {!Ring.default_vnodes}, block 64, handlers 4, breaker
    threshold 3 / cooldown 1s. *)

val routed_op_names : string list
(** The protocol ops the router forwards to shards (the rest are
    answered locally): [score], [score_where], [score_ids], [health],
    [stats] — [stats] in the aggregate: the router answers with its own
    metrics plus the [cluster] section. `morpheus lint` (E208) checks
    this list against the routed-operations table in docs/SERVING.md. *)

type t

val start : config -> t
(** Bind and start handler threads. Raises [Unix.Unix_error] if the
    endpoint cannot be bound, [Invalid_argument] on an empty shard
    list or nonsensical config. *)

val endpoint : t -> Morpheus_serve.Endpoint.t
(** The endpoint actually bound (resolves a [host:0] ephemeral port). *)

val request_stop : t -> unit
val wait : t -> unit
val stop : t -> unit

val metrics : t -> Morpheus_serve.Metrics.t

val stats : t -> Morpheus_serve.Json.t
(** The router's [stats] payload: metrics snapshot plus the [cluster]
    section (per-shard breaker state and forward counts, ring
    ownership histogram, forwarded / scattered / subrequest / failover
    counters). The [stats] protocol op additionally live-probes each
    shard's health. *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM stop handlers, block until
    shutdown, then dump the metrics summary plus a cluster line. *)
