(** The cluster router: a separate process that speaks the same
    line-delimited-JSON protocol as a shard server and fans requests
    out over a fleet of shards.

    Placement is consistent hashing ({!Ring}) over [(model, dataset)]
    routing keys; a [score] request over an id set whose blocks hash to
    different shards is {e scatter-gathered} — split per owning shard,
    scored in parallel by the fleet, and reassembled in the original id
    order. Because every shard serves any (model, dataset) identically
    (registries are replicas, datasets shared) and per-row predictions
    are batch-invariant, the reassembled response is bitwise-identical
    to a single server's.

    Resilience: one {!Breaker} per shard; a transport failure fails
    over to the next distinct shard in ring order (counted as a
    failover) and the reply is still bitwise-identical, which is what
    the chaos suite asserts while SIGKILLing shard processes
    mid-storm. Forwarding connections are cached per handler thread
    and kept alive across requests ({!Metrics.record_conn_reused}).

    Control plane: a prober thread health-checks every shard each
    [probe_interval] and maintains dynamic membership — consecutive
    probe failures walk a shard Active → Suspect → Ejected (it leaves
    the ring with minimal key movement), sustained recovery rejoins it
    automatically, and a shard reporting ["draining"] is taken out
    until healthy again. The [drain]/[undrain] ops drive the same
    machinery by operator hand; [membership] reports the state
    machine. Requests carrying a deadline are admission-checked: the
    budget is decremented by observed queue time before forwarding and
    overdrawn requests are shed with an [expired] error, never
    answered silently late. Optional hedging fires a second identical
    read at the next ring successor when the first is slower than the
    tracked p95, under a per-shard token budget.

    The router holds no model or dataset state: [ping], [stats],
    [membership], [drain], [undrain], and [shutdown] answer locally,
    [health] fans out, everything else forwards. *)

type config = {
  listen : string;  (** endpoint string ({!Morpheus_serve.Endpoint}) *)
  shards : (string * string) list;
      (** shard name → endpoint string; names are the ring members *)
  vnodes : int;  (** ring points per shard ({!Ring.create}) *)
  block : int;
      (** ids per routing block: id [i] of a dataset routes by block
          [i / block], so runs of nearby ids stay on one shard *)
  handlers : int;  (** connection-handler threads *)
  breaker_threshold : int;
      (** consecutive forward failures before a shard's circuit opens *)
  breaker_cooldown : float;  (** seconds an open shard circuit rests *)
  probe_interval : float;
      (** seconds between active health probes of each shard; [<= 0]
          disables the prober (membership then only changes by
          operator [drain]/[undrain]) *)
  probe_timeout : float;
      (** seconds a single probe may take end to end
          ([SO_RCVTIMEO]/[SO_SNDTIMEO] on the probe connection): a
          shard that accepts but never answers counts as a failed
          probe instead of wedging the prober forever *)
  suspect_after : int;
      (** consecutive probe failures before Active → Suspect *)
  eject_after : int;
      (** consecutive probe failures before the shard leaves the ring
          (never empties the ring: the last in-ring shard stays) *)
  rejoin_after : int;
      (** consecutive probe successes before an ejected or draining
          shard rejoins the ring *)
  hedge : bool;  (** hedge slow idempotent routed reads *)
  hedge_rate : float;  (** hedge tokens per second per shard *)
  hedge_burst : float;  (** hedge token bucket capacity per shard *)
  limiter_target_ms : float option;
      (** latency target for the AIMD concurrency {!Limiter} over
          routed score requests; [None] disables admission limiting *)
}

val default_config : listen:string -> shards:(string * string) list -> config
(** vnodes {!Ring.default_vnodes}, block 64, handlers 4, breaker
    threshold 3 / cooldown 1s, probe every 250ms with a 1s probe
    timeout, suspect after 1 / eject after 3 / rejoin after 2 probes,
    hedging off (rate 1/s, burst 4 when on), no concurrency limiter. *)

val routed_op_names : string list
(** The protocol ops the router forwards to shards (the rest are
    answered locally): [score], [score_where], [score_ids], [health],
    [stats] — [stats] in the aggregate: the router answers with its own
    metrics plus the [cluster] section. `morpheus lint` (E208) checks
    this list against the routed-operations table in docs/SERVING.md. *)

type t

val start : config -> t
(** Bind and start handler threads (plus the prober when
    [probe_interval > 0]). Raises [Unix.Unix_error] if the endpoint
    cannot be bound, [Invalid_argument] on an empty shard list or
    nonsensical config. *)

val endpoint : t -> Morpheus_serve.Endpoint.t
(** The endpoint actually bound (resolves a [host:0] ephemeral port). *)

val request_stop : t -> unit
val wait : t -> unit
val stop : t -> unit

val metrics : t -> Morpheus_serve.Metrics.t

val stats : t -> Morpheus_serve.Json.t
(** The router's [stats] payload: metrics snapshot plus the [cluster]
    section (per-shard breaker and membership state, ring ownership
    histogram, forwarded / scattered / subrequest / failover / hedge /
    expired counters, limiter snapshot). The [stats] protocol op
    additionally live-probes each shard's health. *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM stop handlers, block until
    shutdown, then dump the metrics summary plus a cluster line. *)
