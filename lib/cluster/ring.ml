(* Consistent hashing over a 64-bit circle. The hash must be stable
   across processes and runs (every router computes the same ring), so
   it is hand-rolled here: FNV-1a over the bytes, finished with a
   splitmix64-style avalanche — no dependence on OCaml's randomized
   Hashtbl.hash. *)

type t = {
  vnodes : int;
  members : string list;  (* sorted, distinct *)
  (* circle points sorted by hash; lookup is a binary search *)
  points : (int64 * string) array;
}

let default_vnodes = 128

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let avalanche h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let hash s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c)) ;
      h := Int64.mul !h fnv_prime)
    s ;
  avalanche !h

(* unsigned 64-bit compare *)
let ucompare a b =
  compare (Int64.logxor a Int64.min_int) (Int64.logxor b Int64.min_int)

let build ~vnodes members =
  let points = Array.make (vnodes * List.length members) (0L, "") in
  List.iteri
    (fun mi name ->
      for v = 0 to vnodes - 1 do
        points.((mi * vnodes) + v) <- (hash (Printf.sprintf "%s#%d" name v), name)
      done)
    members ;
  (* ties (vanishingly rare) break by shard name so the ring is still a
     pure function of the member set *)
  Array.sort
    (fun (h1, n1) (h2, n2) ->
      match ucompare h1 h2 with 0 -> compare n1 n2 | c -> c)
    points ;
  { vnodes; members; points }

let create ?(vnodes = default_vnodes) names =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1" ;
  let members = List.sort_uniq compare names in
  if members = [] then invalid_arg "Ring.create: no members" ;
  build ~vnodes members

let members t = t.members

(* index of the first point with hash >= h, wrapping to 0 *)
let successor_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ucompare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done ;
  if !lo = n then 0 else !lo

let lookup t key = snd t.points.(successor_index t (hash key))

let successors t key =
  let n = Array.length t.points in
  let start = successor_index t (hash key) in
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  (try
     for i = 0 to n - 1 do
       let name = snd t.points.((start + i) mod n) in
       if not (Hashtbl.mem seen name) then begin
         Hashtbl.add seen name () ;
         order := name :: !order ;
         if Hashtbl.length seen = List.length t.members then raise Exit
       end
     done
   with Exit -> ()) ;
  List.rev !order

let add t name =
  if List.mem name t.members then t
  else build ~vnodes:t.vnodes (List.sort compare (name :: t.members))

let remove t name =
  match List.filter (fun m -> m <> name) t.members with
  | [] -> invalid_arg "Ring.remove: would empty the ring"
  | members -> if members = t.members then t else build ~vnodes:t.vnodes members

let ownership t ~samples =
  let counts = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace counts m 0) t.members ;
  for i = 0 to samples - 1 do
    let owner = lookup t (Printf.sprintf "probe:%d" i) in
    Hashtbl.replace counts owner (1 + Hashtbl.find counts owner)
  done ;
  List.map (fun m -> (m, Hashtbl.find counts m)) t.members
