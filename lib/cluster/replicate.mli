(** Registry replication: shards pull model versions from a primary
    registry directory into their local replica.

    The pull protocol leans entirely on the registry's commit
    discipline: a version is visible only once its [manifest.json]
    exists, and every file lands via tmp+rename. Replication copies
    [artifact.bin] first and the manifest last, so a replica version
    becomes visible only when its artifact is already complete — a
    crash mid-pull leaves either nothing visible or a fully usable
    version, and the next sync heals any litter. Shard servers resolve
    models per request, so a pulled version starts serving without a
    restart.

    Every pull step is armed with a {!Fault} point ([replicate.list],
    [replicate.read], [replicate.write], [replicate.commit]); an
    injected fault aborts that version's pull, leaving it invisible
    until the next sync. *)

val sync_once : primary:string -> replica:string -> (string list, string) result
(** One pull pass: every committed [name@vN] present in [primary] and
    absent from [replica] is copied over. Returns the ids pulled (in
    registry order). [Error] carries the first failure (including an
    injected fault) — earlier versions pulled in the same pass stay
    committed. *)

type t
(** A background puller thread. *)

val start : primary:string -> replica:string -> interval:float -> t
(** Sync every [interval] seconds (first pass immediately). Pull
    failures are counted and retried on the next tick, never raised.
    Raises [Invalid_argument] if [interval <= 0]. *)

val stop : t -> unit
(** Stop and join the puller thread (idempotent). *)

val pulls : t -> int
(** Versions successfully pulled since {!start}. *)

val failures : t -> int
(** Sync passes that ended in an error since {!start}. *)
