(* Pull replication for the model registry. The manifest-last commit
   point (Registry/Io tmp+rename discipline) is the sync barrier: the
   primary's Registry.list only shows committed versions, and the
   replica commits a pulled version by renaming its manifest into
   place as the final step. *)

open Morpheus_serve

let artifact_file = "artifact.bin"
let manifest_file = "manifest.json"

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let read_file path =
  Fault.point "replicate.read" ;
  In_channel.with_open_bin path In_channel.input_all

(* tmp+rename, same discipline as Io: a crash leaves a .tmp, never a
   half-written target *)
let write_file path contents =
  Fault.point "replicate.write" ;
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents) ;
  Sys.rename tmp path

let version_dir root name version =
  Filename.concat (Filename.concat root name) (Printf.sprintf "v%d" version)

let pull_version ~primary ~replica (e : Registry.entry) =
  let m = e.Registry.manifest in
  let src = version_dir primary m.Registry.name m.Registry.version in
  let dst = version_dir replica m.Registry.name m.Registry.version in
  ensure_dir (Filename.concat replica m.Registry.name) ;
  ensure_dir dst ;
  (* artifact first; the version stays invisible to Registry.list and
     Registry.resolve until the manifest lands *)
  write_file (Filename.concat dst artifact_file)
    (read_file (Filename.concat src artifact_file)) ;
  Fault.point "replicate.commit" ;
  write_file (Filename.concat dst manifest_file)
    (read_file (Filename.concat src manifest_file))

let sync_once ~primary ~replica =
  match
    Fault.point "replicate.list" ;
    ensure_dir replica ;
    let committed = Registry.list ~dir:replica in
    let have = List.map (fun (e : Registry.entry) -> e.Registry.id) committed in
    Registry.list ~dir:primary
    |> List.filter (fun (e : Registry.entry) -> not (List.mem e.Registry.id have))
    |> List.map (fun e ->
           pull_version ~primary ~replica e ;
           e.Registry.id)
  with
  | pulled -> Ok pulled
  | exception Fault.Injected p -> Error ("injected fault at " ^ p)
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

(* ---- background puller ---- *)

type t = {
  m : Analysis.Sync.t;
  mutable stopping : bool;
  mutable pulls : int;
  mutable failures : int;
  mutable thread : Thread.t option;
}

let start ~primary ~replica ~interval =
  if interval <= 0.0 then invalid_arg "Replicate.start: interval <= 0" ;
  let t =
    { m = Analysis.Sync.create ~name:"cluster.replicate" ();
      stopping = false;
      pulls = 0;
      failures = 0;
      thread = None
    }
  in
  let rec loop () =
    (match sync_once ~primary ~replica with
    | Ok pulled ->
      Analysis.Sync.with_lock t.m (fun () ->
          t.pulls <- t.pulls + List.length pulled)
    | Error _ -> Analysis.Sync.with_lock t.m (fun () -> t.failures <- t.failures + 1)) ;
    (* sleep in short slices so stop never waits a full interval *)
    let slept = ref 0.0 in
    let stop =
      ref (Analysis.Sync.with_lock t.m (fun () -> t.stopping))
    in
    while (not !stop) && !slept < interval do
      Thread.delay 0.02 ;
      slept := !slept +. 0.02 ;
      stop := Analysis.Sync.with_lock t.m (fun () -> t.stopping)
    done ;
    if not !stop then loop ()
  in
  t.thread <- Some (Thread.create loop ()) ;
  t

let stop t =
  Analysis.Sync.with_lock t.m (fun () -> t.stopping <- true) ;
  match t.thread with
  | Some th ->
    Thread.join th ;
    t.thread <- None
  | None -> ()

let pulls t = Analysis.Sync.with_lock t.m (fun () -> t.pulls)
let failures t = Analysis.Sync.with_lock t.m (fun () -> t.failures)
