(* Indicator matrices: the paper's K (PK-FK, §3.1) and I_S / I_R (M:N,
   §3.6). Every row has exactly one 1, so instead of a generic sparse
   matrix we store the column index per row — the "logical" sparse format
   that makes K·R a row gather and Kᵀ·X a scatter-add. nnz = rows by
   construction, exactly as the paper observes. *)

open La

type t = {
  rows : int; (* n_S, or |T'| for M:N *)
  cols : int; (* n_R *)
  col_of_row : int array; (* length rows; the position of the 1 in each row *)
  counts : float array Memo.cell;
      (* lazy colSums(K) — the KᵀK fan-in diagonal that Algorithm 2's
         weighted cross-product and every aggregation rewrite reuse;
         indicators are immutable, so the cache never invalidates *)
}

let rows k = k.rows
let cols k = k.cols
let dims k = (k.rows, k.cols)
let nnz k = k.rows
let col_of_row k i = k.col_of_row.(i)
let mapping k = k.col_of_row

let create ~cols col_of_row =
  Array.iter
    (fun j ->
      if j < 0 || j >= cols then invalid_arg "Indicator.create: bad column")
    col_of_row ;
  { rows = Array.length col_of_row;
    cols;
    col_of_row = Array.copy col_of_row;
    counts = Memo.cell () }

let identity n =
  { rows = n; cols = n; col_of_row = Array.init n Fun.id; counts = Memo.cell () }

let random ?(rng = Rng.create ()) ~rows ~cols () =
  (* ensure every column is referenced at least once, as the paper assumes
     (tuples of R never referenced are dropped a priori, §3.1). *)
  if rows < cols then
    invalid_arg "Indicator.random: needs rows >= cols to cover all columns" ;
  let col_of_row = Array.init rows (fun _ -> Rng.int rng cols) in
  let perm = Array.init rows Fun.id in
  Rng.shuffle rng perm ;
  for j = 0 to cols - 1 do
    col_of_row.(perm.(j)) <- j
  done ;
  { rows; cols; col_of_row; counts = Memo.cell () }

let to_csr k =
  Csr.of_triplets ~rows:k.rows ~cols:k.cols
    (Array.to_list (Array.mapi (fun i j -> (i, j, 1.0)) k.col_of_row))

let to_dense k = Csr.to_dense (to_csr k)

(* ---- multiplications ---- *)

(* K * R for dense R: gather rows — the core of avoided materialization. *)
let mult k r =
  if Dense.rows r <> k.cols then invalid_arg "Indicator.mult: dim mismatch" ;
  let d = Dense.cols r in
  Flops.add (k.rows * d) ;
  let out = Dense.create k.rows d in
  let od = Dense.data out and rd = Dense.data r in
  if d <= 64 then
    (* manual copy beats Array.blit's call overhead for short rows *)
    for i = 0 to k.rows - 1 do
      let rbase = Array.unsafe_get k.col_of_row i * d and obase = i * d in
      for j = 0 to d - 1 do
        Array.unsafe_set od (obase + j) (Array.unsafe_get rd (rbase + j))
      done
    done
  else
    for i = 0 to k.rows - 1 do
      Array.blit rd (k.col_of_row.(i) * d) od (i * d) d
    done ;
  out

(* K * R for sparse R: gather sparse rows. *)
let mult_csr k r =
  if Csr.rows r <> k.cols then invalid_arg "Indicator.mult_csr: dim mismatch" ;
  Flops.add k.rows ;
  Csr.gather_rows r k.col_of_row

(* Kᵀ * X for dense X: scatter-add rows of X into the buckets. *)
let tmult k x =
  if Dense.rows x <> k.rows then invalid_arg "Indicator.tmult: dim mismatch" ;
  let d = Dense.cols x in
  Flops.add (k.rows * d) ;
  let out = Dense.create k.cols d in
  let od = Dense.data out and xd = Dense.data x in
  for i = 0 to k.rows - 1 do
    let obase = k.col_of_row.(i) * d and xbase = i * d in
    for j = 0 to d - 1 do
      Array.unsafe_set od (obase + j)
        (Array.unsafe_get od (obase + j) +. Array.unsafe_get xd (xbase + j))
    done
  done ;
  out

(* acc += K · Z, fused gather-accumulate: acc is n_S×k, Z is n_R×k.
   Saves the intermediate matrix and one memory pass in factorized LMM. *)
let gather_add k z acc =
  if Dense.rows z <> k.cols || Dense.rows acc <> k.rows
     || Dense.cols z <> Dense.cols acc
  then invalid_arg "Indicator.gather_add: dim mismatch" ;
  let d = Dense.cols z in
  Flops.add (k.rows * d) ;
  let zd = Dense.data z and ad = Dense.data acc in
  if d = 1 then
    for i = 0 to k.rows - 1 do
      Array.unsafe_set ad i
        (Array.unsafe_get ad i
        +. Array.unsafe_get zd (Array.unsafe_get k.col_of_row i))
    done
  else
    for i = 0 to k.rows - 1 do
      let zbase = Array.unsafe_get k.col_of_row i * d and abase = i * d in
      for j = 0 to d - 1 do
        Array.unsafe_set ad (abase + j)
          (Array.unsafe_get ad (abase + j) +. Array.unsafe_get zd (zbase + j))
      done
    done

(* Kᵀ * A for sparse A: scatter sparse rows into a dense accumulator
   (the output K ᵀS of Algorithm 1/2 is dense-sized n_R × d_S anyway). *)
let tmult_csr k a =
  if Csr.rows a <> k.rows then invalid_arg "Indicator.tmult_csr: dim mismatch" ;
  let d = Csr.cols a in
  Flops.add (Csr.nnz a) ;
  let out = Dense.create k.cols d in
  for i = 0 to k.rows - 1 do
    let c = k.col_of_row.(i) in
    Csr.iter_row a i (fun j v ->
        Dense.unsafe_set out c j (Dense.unsafe_get out c j +. v))
  done ;
  out

(* X * K for dense X (the RMM building block (XK)): scatter-add columns of
   X; out[:, col_of_row t] += X[:, t]. *)
let xmult x k =
  if Dense.cols x <> k.rows then invalid_arg "Indicator.xmult: dim mismatch" ;
  let m = Dense.rows x in
  Flops.add (m * k.rows) ;
  let out = Dense.create m k.cols in
  let od = Dense.data out and xd = Dense.data x in
  for i = 0 to m - 1 do
    let xbase = i * k.rows and obase = i * k.cols in
    for t = 0 to k.rows - 1 do
      let c = Array.unsafe_get k.col_of_row t in
      Array.unsafe_set od (obase + c)
        (Array.unsafe_get od (obase + c) +. Array.unsafe_get xd (xbase + t))
    done
  done ;
  out

(* ---- vector forms ---- *)

(* K * v (gather) for a length-n_R vector. *)
let gather k v =
  if Array.length v <> k.cols then invalid_arg "Indicator.gather" ;
  Flops.add k.rows ;
  Array.init k.rows (fun i -> v.(k.col_of_row.(i)))

(* Kᵀ * v (scatter-add) for a length-n_S vector. *)
let scatter_add k v =
  if Array.length v <> k.rows then invalid_arg "Indicator.scatter_add" ;
  Flops.add k.rows ;
  let out = Array.make k.cols 0.0 in
  for i = 0 to k.rows - 1 do
    let c = k.col_of_row.(i) in
    out.(c) <- out.(c) +. v.(i)
  done ;
  out

(* colSums(K) — K_p's diagonal: how many S-rows reference each R-row.
   Memoized on the indicator (callers must not mutate the result): a
   cache hit costs zero flops, which is what makes steady-state
   factorized iterations drop the fan-in recomputation entirely. *)
let col_counts k =
  Memo.force k.counts (fun () ->
      Flops.add k.rows ;
      let out = Array.make k.cols 0.0 in
      Array.iter (fun c -> out.(c) <- out.(c) +. 1.0) k.col_of_row ;
      out)

(* K_aᵀ K_b as COO co-occurrence counts (appendix C: the matrix P whose
   nnz is bounded by Theorems C.1/C.2). Both indicators must share the
   row dimension. *)
let cross a b =
  if a.rows <> b.rows then invalid_arg "Indicator.cross: row mismatch" ;
  Flops.add a.rows ;
  let tbl = Hashtbl.create (max 16 (a.rows / 4)) in
  for t = 0 to a.rows - 1 do
    let key = (a.col_of_row.(t), b.col_of_row.(t)) in
    let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0.0 in
    Hashtbl.replace tbl key (prev +. 1.0)
  done ;
  let triplets =
    Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) tbl []
  in
  Coo.of_triplets ~rows:a.cols ~cols:b.cols triplets

let approx_equal a b =
  a.rows = b.rows && a.cols = b.cols && a.col_of_row = b.col_of_row

let pp ppf k = Fmt.pf ppf "indicator %dx%d" k.rows k.cols
