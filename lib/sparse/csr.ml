(* Compressed Sparse Row matrices. The real datasets of the paper
   (Table 6) are sparse one-hot feature matrices, and Morpheus "supports
   both dense and sparse matrices" (§3.1); this module is the sparse half
   of that claim, playing the role of R's Matrix package. *)

open La

type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows+1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)
let nnz m = Array.length m.values

let check m =
  assert (Array.length m.row_ptr = m.rows + 1) ;
  assert (m.row_ptr.(0) = 0) ;
  assert (m.row_ptr.(m.rows) = nnz m) ;
  for i = 0 to m.rows - 1 do
    assert (m.row_ptr.(i) <= m.row_ptr.(i + 1))
  done ;
  Array.iter (fun j -> assert (j >= 0 && j < m.cols)) m.col_idx ;
  m

(* Build from (row, col, value) triplets; duplicate entries are summed. *)
let of_triplets ~rows ~cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Csr.of_triplets: index out of range")
    triplets ;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2))
      triplets
  in
  (* merge duplicates *)
  let merged =
    List.fold_left
      (fun acc (i, j, v) ->
        match acc with
        | (i', j', v') :: rest when i = i' && j = j' -> (i, j, v +. v') :: rest
        | _ -> (i, j, v) :: acc)
      [] sorted
    |> List.rev
    |> List.filter (fun (_, _, v) -> v <> 0.0)
  in
  let n = List.length merged in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1 ;
      col_idx.(k) <- j ;
      values.(k) <- v)
    merged ;
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done ;
  check { rows; cols; row_ptr; col_idx; values }

let of_dense d =
  let triplets = ref [] in
  Dense.iteri (fun i j v -> if v <> 0.0 then triplets := (i, j, v) :: !triplets) d ;
  of_triplets ~rows:(Dense.rows d) ~cols:(Dense.cols d) !triplets

let to_dense m =
  let d = Dense.create m.rows m.cols in
  for i = 0 to m.rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Dense.unsafe_set d i m.col_idx.(p)
        (Dense.unsafe_get d i m.col_idx.(p) +. m.values.(p))
    done
  done ;
  d

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Csr.get: out of range" ;
  let acc = ref 0.0 in
  for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    if m.col_idx.(p) = j then acc := !acc +. m.values.(p)
  done ;
  !acc

(* Iterate the stored entries of row [i] as (col, value). *)
let iter_row m i f =
  if i < 0 || i >= m.rows then invalid_arg "Csr.iter_row: bad row" ;
  for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_idx.(p) m.values.(p)
  done

let iter_nz f m =
  for i = 0 to m.rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      f i m.col_idx.(p) m.values.(p)
    done
  done

(* Map over stored values only; [f 0.] must be 0 for this to be a
   faithful element-wise map (callers enforce this, see {!Mat}). *)
let map_values f m =
  Flops.add (nnz m) ;
  { m with values = Array.map f m.values }

let scale x m = map_values (fun v -> x *. v) m

let transpose m =
  let n = nnz m in
  let row_ptr = Array.make (m.cols + 1) 0 in
  iter_nz (fun _ j _ -> row_ptr.(j + 1) <- row_ptr.(j + 1) + 1) m ;
  for j = 0 to m.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j + 1) + row_ptr.(j)
  done ;
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  let fill = Array.copy row_ptr in
  iter_nz
    (fun i j v ->
      let p = fill.(j) in
      col_idx.(p) <- i ;
      values.(p) <- v ;
      fill.(j) <- p + 1)
    m ;
  check { rows = m.cols; cols = m.rows; row_ptr; col_idx; values }

(* ---- aggregations ---- *)

let row_sums m =
  Flops.add (nnz m) ;
  let out = Array.make m.rows 0.0 in
  iter_nz (fun i _ v -> out.(i) <- out.(i) +. v) m ;
  Dense.of_col_array out

let col_sums m =
  Flops.add (nnz m) ;
  let out = Array.make m.cols 0.0 in
  iter_nz (fun _ j v -> out.(j) <- out.(j) +. v) m ;
  Dense.of_row_array out

let sum m =
  Flops.add (nnz m) ;
  Array.fold_left ( +. ) 0.0 m.values

(* Per-row sum of squares, used by K-Means' rowSums(T^2). *)
let row_sums_sq m =
  Flops.add (2 * nnz m) ;
  let out = Array.make m.rows 0.0 in
  iter_nz (fun i _ v -> out.(i) <- out.(i) +. (v *. v)) m ;
  Dense.of_col_array out

(* ---- multiplications ----

   Like the Blas kernels, each of these is a range-parameterized body
   executed through {!Exec}: row-partitioned kernels (smm, dense_smm)
   use [parallel_for] over output rows; scatter/accumulate kernels
   (t_smm, the cross-products) fold per-chunk partials over input rows
   with [Exec.reduce]'s canonical grid, so both backends produce
   bitwise-identical results. *)

(* Smallest row range worth scheduling as a task (see Blas.min_rows);
   sparse rows are costed by the average nnz per row, against the tuned
   scheduling grain (64k flops until a sweep has measured better). *)
let min_rows m per_nz =
  let avg = max 1 (nnz m / max 1 m.rows) in
  max 1 (Tune.grain () / max 1 (avg * per_nz))

let add_into acc part =
  let ad = Dense.data acc and pd = Dense.data part in
  for i = 0 to Array.length ad - 1 do
    Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get pd i)
  done ;
  acc

(* C ← A·X + beta·C with X dense: the sparse LMM kernel with an
   accumulating destination. The k>1 body accumulates into whatever the
   beta pre-pass left in C; the k=1 register body folds beta into its
   single store. [smm] is [smm_into ~beta:0.] into a fresh C, so the
   pure and in-place kernels are bitwise identical. [c] must not alias
   [x]. *)
let smm_into ?exec ?(beta = 0.0) m x ~c =
  if Dense.rows x <> m.cols then invalid_arg "Csr.smm_into: dim mismatch" ;
  let k = Dense.cols x in
  if Dense.rows c <> m.rows || Dense.cols c <> k then
    invalid_arg "Csr.smm_into: output dim mismatch" ;
  Flops.add (2 * nnz m * k) ;
  let cd = Dense.data c and xd = Dense.data x in
  if k <> 1 then
    if beta = 0.0 then Dense.fill c 0.0
    else if beta <> 1.0 then Dense.scale_into ?exec beta c ~out:c ;
  let body =
    if k = 1 then fun lo hi ->
      (* vector case: accumulate in a register, one store per row *)
      for i = lo to hi - 1 do
        let acc = ref 0.0 in
        for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get m.values p
               *. Array.unsafe_get xd (Array.unsafe_get m.col_idx p))
        done ;
        Array.unsafe_set cd i
          (if beta = 0.0 then !acc
           else if beta = 1.0 then Array.unsafe_get cd i +. !acc
           else (beta *. Array.unsafe_get cd i) +. !acc)
      done
    else fun lo hi ->
      for i = lo to hi - 1 do
        let cbase = i * k in
        for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
          let j = Array.unsafe_get m.col_idx p in
          let v = Array.unsafe_get m.values p in
          let xbase = j * k in
          for q = 0 to k - 1 do
            Array.unsafe_set cd (cbase + q)
              (Array.unsafe_get cd (cbase + q)
              +. (v *. Array.unsafe_get xd (xbase + q)))
          done
        done
      done
  in
  Exec.parallel_for ~min_chunk:(min_rows m (2 * k)) (Exec.resolve exec) ~lo:0
    ~hi:m.rows body

(* C = A * X with X dense: the sparse LMM kernel. *)
let smm ?exec m x =
  if Dense.rows x <> m.cols then invalid_arg "Csr.smm: dim mismatch" ;
  let c = Dense.create m.rows (Dense.cols x) in
  smm_into ?exec ~beta:0.0 m x ~c ;
  c

(* C = Aᵀ * X with X dense, by scatter; avoids materializing Aᵀ. The
   scatter rows race across input rows, so this reduces per-chunk
   partials of the (small) d×k output. *)
let t_smm ?exec m x =
  if Dense.rows x <> m.rows then invalid_arg "Csr.t_smm: dim mismatch" ;
  let k = Dense.cols x in
  Flops.add (2 * nnz m * k) ;
  if m.rows = 0 then Dense.create m.cols k
  else begin
    let xd = Dense.data x in
    let body lo hi =
      let c = Dense.create m.cols k in
      let cd = Dense.data c in
      for i = lo to hi - 1 do
        let xbase = i * k in
        for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
          let j = Array.unsafe_get m.col_idx p in
          let v = Array.unsafe_get m.values p in
          let cbase = j * k in
          for q = 0 to k - 1 do
            Array.unsafe_set cd (cbase + q)
              (Array.unsafe_get cd (cbase + q)
              +. (v *. Array.unsafe_get xd (xbase + q)))
          done
        done
      done ;
      c
    in
    Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:m.rows ~body ~combine:add_into
  end

(* C = X * A with X dense: the sparse RMM kernel; C[i, col] += X[i, r]·v.
   Partitioned over X's (= C's) rows: for a fixed output row, the
   contribution order over A's entries matches the sequential kernel. *)
let dense_smm ?exec x m =
  if Dense.cols x <> m.rows then invalid_arg "Csr.dense_smm: dim mismatch" ;
  let n = Dense.rows x in
  Flops.add (2 * nnz m * n) ;
  let xcols = Dense.cols x in
  let c = Dense.create n m.cols in
  let cd = Dense.data c and xd = Dense.data x in
  let body lo hi =
    for i = lo to hi - 1 do
      let xbase = i * xcols and cbase = i * m.cols in
      for r = 0 to m.rows - 1 do
        let xv = Array.unsafe_get xd (xbase + r) in
        for p = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
          let j = Array.unsafe_get m.col_idx p in
          Array.unsafe_set cd (cbase + j)
            (Array.unsafe_get cd (cbase + j)
            +. (xv *. Array.unsafe_get m.values p))
        done
      done
    done
  in
  Exec.parallel_for
    ~min_chunk:(max 1 (Tune.grain () / max 1 (2 * nnz m)))
    (Exec.resolve exec) ~lo:0 ~hi:n body ;
  c

let weighted_crossprod_impl ?exec m w =
  let d = m.cols in
  if m.rows = 0 then Dense.create d d
  else begin
    let body rlo rhi =
      let c = Dense.create d d in
      let cd = Dense.data c in
      for i = rlo to rhi - 1 do
        let wi = match w with None -> 1.0 | Some w -> Array.unsafe_get w i in
        if wi <> 0.0 then begin
          let lo = m.row_ptr.(i) and hi = m.row_ptr.(i + 1) - 1 in
          Flops.add ((hi - lo + 1) * (hi - lo + 1) * 2) ;
          for p = lo to hi do
            let jp = Array.unsafe_get m.col_idx p in
            let vp = wi *. Array.unsafe_get m.values p in
            for q = lo to hi do
              let jq = Array.unsafe_get m.col_idx q in
              if jq >= jp then
                Array.unsafe_set cd ((jp * d) + jq)
                  (Array.unsafe_get cd ((jp * d) + jq)
                  +. (vp *. Array.unsafe_get m.values q))
            done
          done
        end
      done ;
      c
    in
    let c = Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:m.rows ~body ~combine:add_into in
    let cd = Dense.data c in
    for i = 0 to d - 1 do
      for j = 0 to i - 1 do
        Array.unsafe_set cd ((i * d) + j) (Array.unsafe_get cd ((j * d) + i))
      done
    done ;
    c
  end

(* crossprod(A) = Aᵀ A as a dense matrix (outputs of cross-products are
   small d×d matrices in all Morpheus uses). *)
let crossprod ?exec m = weighted_crossprod_impl ?exec m None

(* crossprod with a *sparse* result: Aᵀ·diag(w)·A accumulated into a
   hash table of upper-triangle entries. For one-hot-style data the
   output has O(Σ nnz_row²) entries, so this stays feasible when the
   d×d dense output would not (d in the tens of thousands). Parallel
   execution builds one table per row chunk; tables are merged in
   canonical chunk order, so every key's additions happen in the same
   order on both backends. *)
let crossprod_csr ?exec ?weights m =
  (match weights with
  | Some w when Array.length w <> m.rows ->
    invalid_arg "Csr.crossprod_csr: weight length mismatch"
  | _ -> ()) ;
  let body rlo rhi =
    let tbl : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
    for i = rlo to rhi - 1 do
      let wi = match weights with None -> 1.0 | Some w -> Array.unsafe_get w i in
      if wi <> 0.0 then begin
        let lo = m.row_ptr.(i) and hi = m.row_ptr.(i + 1) - 1 in
        Flops.add ((hi - lo + 1) * (hi - lo + 1)) ;
        for p = lo to hi do
          let jp = Array.unsafe_get m.col_idx p in
          let vp = wi *. Array.unsafe_get m.values p in
          for q = lo to hi do
            let jq = Array.unsafe_get m.col_idx q in
            if jq >= jp then begin
              let key = (jp, jq) in
              let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0.0 in
              Hashtbl.replace tbl key (prev +. (vp *. Array.unsafe_get m.values q))
            end
          done
        done
      end
    done ;
    tbl
  in
  let merge into tbl =
    Hashtbl.iter
      (fun key v ->
        let prev = Option.value (Hashtbl.find_opt into key) ~default:0.0 in
        Hashtbl.replace into key (prev +. v))
      tbl ;
    into
  in
  let tbl =
    if m.rows = 0 then Hashtbl.create 1
    else Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:m.rows ~body ~combine:merge
  in
  let triplets =
    Hashtbl.fold
      (fun (i, j) v acc ->
        if i = j then (i, j, v) :: acc else (i, j, v) :: (j, i, v) :: acc)
      tbl []
  in
  of_triplets ~rows:m.cols ~cols:m.cols triplets

(* Aᵀ diag(w) A, dense output. *)
let weighted_crossprod ?exec m w =
  if Array.length w <> m.rows then
    invalid_arg "Csr.weighted_crossprod: weight length mismatch" ;
  weighted_crossprod_impl ?exec m (Some w)

(* tcrossprod(A) = A Aᵀ as dense. Only used for the (small-n) Gram
   matrix rewrite tests; O(n² d̄). *)
let tcrossprod ?exec m = Blas.tcrossprod ?exec (to_dense m)

(* Select rows [idx.(i)] of [m]; the sparse row-gather behind K·R. *)
let gather_rows m idx =
  let n = Array.length idx in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let r = idx.(i) in
    if r < 0 || r >= m.rows then invalid_arg "Csr.gather_rows: bad index" ;
    row_ptr.(i + 1) <- row_ptr.(i) + (m.row_ptr.(r + 1) - m.row_ptr.(r))
  done ;
  let total = row_ptr.(n) in
  let col_idx = Array.make total 0 in
  let values = Array.make total 0.0 in
  for i = 0 to n - 1 do
    let r = idx.(i) in
    let src = m.row_ptr.(r) and len = m.row_ptr.(r + 1) - m.row_ptr.(r) in
    Array.blit m.col_idx src col_idx row_ptr.(i) len ;
    Array.blit m.values src values row_ptr.(i) len
  done ;
  check { rows = n; cols = m.cols; row_ptr; col_idx; values }

(* Select columns [idx.(j)] of [m], sparse-preserving: the projection
   half of the relational planner's attribute-part pruning. Duplicate
   selections are allowed; entries stay sorted because we emit them in
   output-column order per row. *)
let select_cols m idx =
  let k = Array.length idx in
  (* reverse map: source column -> list of output positions *)
  let dests = Array.make m.cols [] in
  Array.iteri
    (fun out src ->
      if src < 0 || src >= m.cols then invalid_arg "Csr.select_cols: bad index" ;
      dests.(src) <- out :: dests.(src))
    idx ;
  let triplets = ref [] in
  iter_nz
    (fun i j v -> List.iter (fun out -> triplets := (i, out, v) :: !triplets) dests.(j))
    m ;
  of_triplets ~rows:m.rows ~cols:k !triplets

(* Contiguous row slice [lo, hi) — O(rows + nnz of slice). *)
let sub_rows m ~lo ~hi =
  if lo < 0 || hi > m.rows || lo > hi then invalid_arg "Csr.sub_rows" ;
  let p0 = m.row_ptr.(lo) and p1 = m.row_ptr.(hi) in
  let row_ptr = Array.init (hi - lo + 1) (fun i -> m.row_ptr.(lo + i) - p0) in
  check
    { rows = hi - lo;
      cols = m.cols;
      row_ptr;
      col_idx = Array.sub m.col_idx p0 (p1 - p0);
      values = Array.sub m.values p0 (p1 - p0) }

(* C = A · K for an indicator K given as a column mapping over A's
   columns: scatter A's columns into [ncols] buckets. This is the
   T·K_B building block of double matrix multiplication (appendix C). *)
let col_scatter m ~mapping ~ncols =
  if Array.length mapping <> m.cols then invalid_arg "Csr.col_scatter" ;
  Flops.add (nnz m) ;
  let c = Dense.create m.rows ncols in
  iter_nz
    (fun i j v ->
      let b = mapping.(j) in
      Dense.unsafe_set c i b (Dense.unsafe_get c i b +. v))
    m ;
  c

(* Horizontal concatenation of sparse blocks. *)
let hcat ms =
  match ms with
  | [] -> of_triplets ~rows:0 ~cols:0 []
  | first :: _ ->
    let rows = first.rows in
    List.iter
      (fun m -> if m.rows <> rows then invalid_arg "Csr.hcat: row mismatch")
      ms ;
    let cols = List.fold_left (fun acc m -> acc + m.cols) 0 ms in
    let total = List.fold_left (fun acc m -> acc + nnz m) 0 ms in
    let row_ptr = Array.make (rows + 1) 0 in
    List.iter
      (fun m ->
        for i = 0 to rows - 1 do
          row_ptr.(i + 1) <-
            row_ptr.(i + 1) + (m.row_ptr.(i + 1) - m.row_ptr.(i))
        done)
      ms ;
    for i = 0 to rows - 1 do
      row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
    done ;
    let col_idx = Array.make total 0 in
    let values = Array.make total 0.0 in
    let fill = Array.copy row_ptr in
    let off = ref 0 in
    List.iter
      (fun m ->
        for i = 0 to rows - 1 do
          for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
            col_idx.(fill.(i)) <- m.col_idx.(p) + !off ;
            values.(fill.(i)) <- m.values.(p) ;
            fill.(i) <- fill.(i) + 1
          done
        done ;
        off := !off + m.cols)
      ms ;
    check { rows; cols; row_ptr; col_idx; values }

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Dense.max_abs_diff (to_dense a) (to_dense b) <= tol

let pp ppf m =
  Fmt.pf ppf "csr %dx%d (nnz=%d)" m.rows m.cols (nnz m)
