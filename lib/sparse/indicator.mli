(** Indicator matrices: the paper's K (PK-FK join, §3.1) and I_S / I_R
    (M:N join, §3.6). Every row has exactly one 1 — [nnz = rows] by
    construction, as the paper observes — so the representation is just
    the column index of each row, making [K·R] a row gather and [Kᵀ·X]
    a scatter-add. *)

open La

type t

(** {1 Dimensions} *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int

val nnz : t -> int
(** Always [rows]. *)

val col_of_row : t -> int -> int
(** Position of the 1 in the given row. *)

val mapping : t -> int array
(** The full row→column mapping (shared, do not mutate). *)

(** {1 Construction} *)

val create : cols:int -> int array -> t
(** [create ~cols mapping]; raises if any entry is out of range. *)

val identity : int -> t

val random : ?rng:Rng.t -> rows:int -> cols:int -> unit -> t
(** Uniform mapping guaranteed to reference every column at least once
    (the paper's assumption after trimming, §3.1); needs
    [rows >= cols]. *)

val to_csr : t -> Csr.t
val to_dense : t -> Dense.t

(** {1 Matrix products} *)

val mult : t -> Dense.t -> Dense.t
(** [mult k r] is [K·R]: a row gather — the core of avoided
    materialization. *)

val mult_csr : t -> Csr.t -> Csr.t
(** [K·R] for sparse [R]. *)

val tmult : t -> Dense.t -> Dense.t
(** [tmult k x] is [Kᵀ·X]: scatter-add of [X]'s rows. *)

val tmult_csr : t -> Csr.t -> Dense.t
(** [Kᵀ·A] for sparse [A], dense accumulator. *)

val xmult : Dense.t -> t -> Dense.t
(** [xmult x k] is [X·K]: column scatter-add — the RMM building block
    [(X·K)]. *)

val gather_add : t -> Dense.t -> Dense.t -> unit
(** [gather_add k z acc] performs [acc += K·Z] in place, fusing the
    gather and the accumulation (factorized LMM's inner step). *)

(** {1 Vector forms} *)

val gather : t -> float array -> float array
(** [K·v] for a length-[cols] vector. *)

val scatter_add : t -> float array -> float array
(** [Kᵀ·v] for a length-[rows] vector. *)

val col_counts : t -> float array
(** [colSums(K)] — the diagonal of [KᵀK], i.e. how many rows reference
    each column (Algorithm 2's [diag(colSums(K))]). Memoized on the
    (immutable) indicator: repeat calls return the cached array at zero
    flop cost. The caller must not mutate the result. *)

(** {1 Indicator-indicator products} *)

val cross : t -> t -> Coo.t
(** [cross a b] is [aᵀ·b] as co-occurrence counts — the matrix P of
    appendix C, with [max(cols a, cols b) <= nnz(P) <= rows]
    (Theorems C.1/C.2). *)

val approx_equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
