(** The "regular matrix" type of Morpheus: dense or CSR-sparse behind
    one operator set, so the rewrite rules are written once for both
    representations (§3.1: "any of R, S, and T can be dense or
    sparse"). *)

open La

type t =
  | D of Dense.t
  | S of Csr.t

val of_dense : Dense.t -> t
val of_csr : Csr.t -> t

val dense : t -> Dense.t
(** Densify (copy for sparse inputs). *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int
val is_sparse : t -> bool

val storage_size : t -> int
(** Stored scalars: [numel] when dense, [nnz] when sparse — the
    paper's size(·) in the redundancy ratios. *)

val get : t -> int -> int -> float

(** {1 Element-wise scalar ops (Table 1)} *)

val scale : float -> t -> t

val map_scalar : (float -> float) -> t -> t
(** Zero-preserving functions keep the sparse representation; others
    (exp, [+x]) densify, as in R. *)

val add_scalar : float -> t -> t
val pow : float -> t -> t
val sq : t -> t
val exp : t -> t

(** {1 Aggregations} *)

val row_sums : t -> Dense.t
val col_sums : t -> Dense.t
val sum : t -> float

val row_sums_sq : t -> Dense.t
(** [rowSums(T²)] without the squared intermediate when sparse. *)

(** {1 Multiplications (regular dense results, as in Table 1)}

    [?exec] flows through to the underlying {!Blas}/{!Csr} kernels. *)

val mm : ?exec:Exec.t -> t -> Dense.t -> Dense.t
(** [mm m x] is [m·x] (the LMM direction). *)

val tmm : ?exec:Exec.t -> t -> Dense.t -> Dense.t
(** [tmm m x] is [mᵀ·x]. *)

val mm_left : ?exec:Exec.t -> Dense.t -> t -> Dense.t
(** [mm_left x m] is [x·m] (the RMM direction). *)

val crossprod : ?exec:Exec.t -> t -> Dense.t
val weighted_crossprod : ?exec:Exec.t -> t -> float array -> Dense.t
val tcrossprod : ?exec:Exec.t -> t -> Dense.t

val transpose : t -> t

(** {1 Element-wise matrix ops (non-factorizable, Table 1 last row)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_elem : t -> t -> t
val div_elem : t -> t -> t

(** {1 Structure} *)

val gather_rows : t -> int array -> t
(** Row gather by index — [K·M] with an explicit mapping. *)

val sub_rows : t -> lo:int -> hi:int -> t
val sub_cols : t -> lo:int -> hi:int -> t

val select_cols : t -> int array -> t
(** Column gather by index, representation-preserving — relational
    projection over a base matrix. *)

val col_scatter : t -> mapping:int array -> ncols:int -> Dense.t
(** [M·K] for an indicator over [M]'s columns (DMM building block). *)

val hcat : t list -> t
(** Sparse iff all blocks are sparse. *)

(** {1 Misc} *)

val approx_equal : ?tol:float -> t -> t -> bool
val random : ?rng:Rng.t -> int -> int -> t
val random_sparse : ?rng:Rng.t -> density:float -> int -> int -> t
val pp : Format.formatter -> t -> unit
