(* The "regular matrix" type of Morpheus: either dense or CSR-sparse,
   with one set of operations dispatching on the representation. The
   paper's normalized matrix allows "any of R, S, and T [to] be dense or
   sparse" (§3.1); this module is what makes S and the R_i
   representation-polymorphic without duplicating the rewrite rules. *)

open La

type t =
  | D of Dense.t
  | S of Csr.t

let of_dense d = D d
let of_csr c = S c

let dense = function D d -> d | S c -> Csr.to_dense c
let rows = function D d -> Dense.rows d | S c -> Csr.rows c
let cols = function D d -> Dense.cols d | S c -> Csr.cols c
let dims m = (rows m, cols m)
let is_sparse = function D _ -> false | S _ -> true

(* Number of stored scalars: the paper's size(S)/size(R) in the speed-up
   ratios and the decision rule. *)
let storage_size = function
  | D d -> Dense.numel d
  | S c -> Csr.nnz c

let get m i j = match m with D d -> Dense.get d i j | S c -> Csr.get c i j

(* ---- element-wise scalar ops (Table 1 rows 1 and 3) ---- *)

let scale x = function
  | D d -> D (Dense.scale x d)
  | S c -> S (Csr.scale x c)

(* Element-wise scalar function. Zero-preserving functions keep the
   sparse representation; others (e.g. exp, +x) densify, as in R. *)
let map_scalar f = function
  | D d -> D (Dense.map_scalar f d)
  | S c ->
    if f 0.0 = 0.0 then S (Csr.map_values f c)
    else D (Dense.map_scalar f (Csr.to_dense c))

let add_scalar x m = map_scalar (fun v -> v +. x) m
let pow p m = map_scalar (fun v -> v ** p) m
let sq m = map_scalar (fun v -> v *. v) m
let exp m = map_scalar Stdlib.exp m

(* ---- aggregations (Table 1 row 4) ---- *)

let row_sums = function D d -> Dense.row_sums d | S c -> Csr.row_sums c
let col_sums = function D d -> Dense.col_sums d | S c -> Csr.col_sums c
let sum = function D d -> Dense.sum d | S c -> Csr.sum c

(* Squares via [v *. v] (like {!sq}), not [v ** 2.0]: libm pow is not
   guaranteed bit-identical to the product, and the factorized
   rowSums(T²) rewrite squares with {!sq}. *)
let row_sums_sq = function
  | D d -> Dense.row_sums (Dense.map_scalar (fun v -> v *. v) d)
  | S c -> Csr.row_sums_sq c

(* ---- multiplications; results of LMM/RMM/crossprod are regular dense
   matrices, mirroring Table 1's output types. [?exec] flows through to
   the Blas/Csr kernels ---- *)

(* M * X (LMM direction) for dense X. *)
let mm ?exec m x =
  match m with D d -> Blas.gemm ?exec d x | S c -> Csr.smm ?exec c x

(* Mᵀ * X for dense X. *)
let tmm ?exec m x =
  match m with D d -> Blas.tgemm ?exec d x | S c -> Csr.t_smm ?exec c x

(* X * M (RMM direction) for dense X. *)
let mm_left ?exec x m =
  match m with D d -> Blas.gemm ?exec x d | S c -> Csr.dense_smm ?exec x c

let crossprod ?exec = function
  | D d -> Blas.crossprod ?exec d
  | S c -> Csr.crossprod ?exec c

let weighted_crossprod ?exec m w =
  match m with
  | D d -> Blas.weighted_crossprod ?exec d w
  | S c -> Csr.weighted_crossprod ?exec c w

let tcrossprod ?exec = function
  | D d -> Blas.tcrossprod ?exec d
  | S c -> Csr.tcrossprod ?exec c

let transpose = function
  | D d -> D (Dense.transpose d)
  | S c -> S (Csr.transpose c)

(* ---- element-wise matrix ops (non-factorizable, Table 1 last row) ---- *)

let lift2 fd a b =
  match (a, b) with
  | D x, D y -> D (fd x y)
  | _ -> D (fd (dense a) (dense b))

let add a b = lift2 Dense.add a b
let sub a b = lift2 Dense.sub a b
let mul_elem a b = lift2 Dense.mul_elem a b
let div_elem a b = lift2 Dense.div_elem a b

(* ---- structure ---- *)

(* Gather rows by index: K·M for an indicator given as a plain mapping. *)
let gather_rows m idx =
  match m with
  | D d ->
    Flops.add (Array.length idx * Dense.cols d) ;
    D (Dense.init (Array.length idx) (Dense.cols d) (fun i j ->
           Dense.unsafe_get d idx.(i) j))
  | S c -> S (Csr.gather_rows c idx)

(* Horizontal concatenation; sparse iff all blocks are sparse. *)
let hcat ms =
  if ms <> [] && List.for_all is_sparse ms then
    S (Csr.hcat (List.map (function S c -> c | D _ -> assert false) ms))
  else D (Dense.hcat (List.map dense ms))

(* Contiguous row slice [lo, hi). *)
let sub_rows m ~lo ~hi =
  match m with
  | D d -> D (Dense.sub_rows d ~lo ~hi)
  | S c -> S (Csr.sub_rows c ~lo ~hi)

(* M · K for an indicator given as a column mapping: scatter M's columns
   into [ncols] buckets. *)
let col_scatter m ~mapping ~ncols =
  match m with
  | S c -> Csr.col_scatter c ~mapping ~ncols
  | D d ->
    if Array.length mapping <> Dense.cols d then
      invalid_arg "Mat.col_scatter: mapping length mismatch" ;
    Flops.add (Dense.numel d) ;
    let out = Dense.create (Dense.rows d) ncols in
    for i = 0 to Dense.rows d - 1 do
      for j = 0 to Dense.cols d - 1 do
        let b = mapping.(j) in
        Dense.unsafe_set out i b
          (Dense.unsafe_get out i b +. Dense.unsafe_get d i j)
      done
    done ;
    out

let sub_cols m ~lo ~hi =
  match m with
  | D d -> D (Dense.sub_cols d ~lo ~hi)
  | S _ -> D (Dense.sub_cols (dense m) ~lo ~hi)

(* Column gather by index (representation-preserving): projection over a
   base matrix, keeping the selected columns in [idx] order. *)
let select_cols m idx =
  match m with
  | D d ->
    let r = Dense.rows d in
    Array.iter
      (fun j ->
        if j < 0 || j >= Dense.cols d then invalid_arg "Mat.select_cols: bad index")
      idx ;
    Flops.add (r * Array.length idx) ;
    D (Dense.init r (Array.length idx) (fun i j -> Dense.unsafe_get d i idx.(j)))
  | S c -> S (Csr.select_cols c idx)

let approx_equal ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  && Dense.max_abs_diff (dense a) (dense b) <= tol

let random ?rng r c = D (Dense.random ?rng r c)

(* Random sparse matrix with expected [density] fraction of nonzeros. *)
let random_sparse ?(rng = Rng.create ()) ~density r c =
  let triplets = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Rng.float rng < density then
        triplets := (i, j, Rng.uniform rng ~lo:(-1.0) ~hi:1.0) :: !triplets
    done
  done ;
  S (Csr.of_triplets ~rows:r ~cols:c !triplets)

let pp ppf = function
  | D d -> Fmt.pf ppf "dense %dx%d" (Dense.rows d) (Dense.cols d)
  | S c -> Csr.pp ppf c
