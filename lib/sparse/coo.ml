(* Coordinate-format sparse matrices. Used for the intermediate
   P = K_aᵀ K_b of the cross-product / DMM rewrites (paper appendix C):
   P is built by counting co-occurrences and immediately consumed by
   R_aᵀ (P R_b), so a lightweight triplet form is the right tool. *)

open La

type t = {
  rows : int;
  cols : int;
  entries : (int * int * float) array;
}

let rows m = m.rows
let cols m = m.cols
let nnz m = Array.length m.entries
let entries m = m.entries

let of_triplets ~rows ~cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Coo.of_triplets: index out of range")
    triplets ;
  { rows; cols; entries = Array.of_list triplets }

let to_dense m =
  let d = Dense.create m.rows m.cols in
  Array.iter
    (fun (i, j, v) -> Dense.unsafe_set d i j (Dense.unsafe_get d i j +. v))
    m.entries ;
  d

(* C = P * X for dense X: C[i,:] += v · X[j,:]. *)
let mult m x =
  if Dense.rows x <> m.cols then invalid_arg "Coo.mult: dim mismatch" ;
  let k = Dense.cols x in
  Flops.add (2 * nnz m * k) ;
  let c = Dense.create m.rows k in
  let cd = Dense.data c and xd = Dense.data x in
  Array.iter
    (fun (i, j, v) ->
      let cbase = i * k and xbase = j * k in
      for q = 0 to k - 1 do
        Array.unsafe_set cd (cbase + q)
          (Array.unsafe_get cd (cbase + q)
          +. (v *. Array.unsafe_get xd (xbase + q)))
      done)
    m.entries ;
  c

(* C = P * A for sparse A (CSR): C[i,:] += v · A[j,:], dense output. *)
let mult_csr m a =
  if Csr.rows a <> m.cols then invalid_arg "Coo.mult_csr: dim mismatch" ;
  let k = Csr.cols a in
  let c = Dense.create m.rows k in
  let cd = Dense.data c in
  Array.iter
    (fun (i, j, v) ->
      let cbase = i * k in
      Csr.iter_row a j (fun col x ->
          Array.unsafe_set cd (cbase + col)
            (Array.unsafe_get cd (cbase + col) +. (v *. x))))
    m.entries ;
  c

let pp ppf m = Fmt.pf ppf "coo %dx%d (nnz=%d)" m.rows m.cols (nnz m)
