(** Coordinate-format sparse matrices: the intermediate
    [P = K_aᵀ·K_b] of the cross-product and DMM rewrites (appendix C),
    built once and immediately consumed. *)

open La

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int
val entries : t -> (int * int * float) array

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Raises on out-of-range indices; duplicates are kept (they add). *)

val to_dense : t -> Dense.t

val mult : t -> Dense.t -> Dense.t
(** [mult p x] is [P·X]. *)

val mult_csr : t -> Csr.t -> Dense.t
(** [P·A] for sparse [A], dense output. *)

val pp : Format.formatter -> t -> unit
