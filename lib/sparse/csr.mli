(** Compressed Sparse Row matrices — the sparse half of the paper's
    claim that "any of R, S, and T can be dense or sparse" (§3.1).
    The real datasets' one-hot feature matrices (Table 6) live here. *)

open La

type t

(** {1 Dimensions} *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int

val nnz : t -> int
(** Number of stored (nonzero) entries. *)

(** {1 Construction and conversion} *)

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from (row, col, value) triplets; duplicates are summed and
    exact zeros dropped. Raises on out-of-range indices. *)

val of_dense : Dense.t -> t
val to_dense : t -> Dense.t

(** {1 Access and traversal} *)

val get : t -> int -> int -> float
(** Bounds-checked; 0 for absent entries. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Stored entries of row [i] as (col, value). *)

val iter_nz : (int -> int -> float -> unit) -> t -> unit

(** {1 Element-wise} *)

val map_values : (float -> float) -> t -> t
(** Map over stored values only; a faithful element-wise map iff
    [f 0. = 0.] (enforced by callers, see {!Mat.map_scalar}). *)

val scale : float -> t -> t

(** {1 Structure} *)

val transpose : t -> t

val gather_rows : t -> int array -> t
(** [gather_rows m idx] selects rows [idx.(i)] — the sparse row-gather
    behind [K·R]. *)

val select_cols : t -> int array -> t
(** [select_cols m idx] keeps columns [idx.(j)] in [idx] order,
    sparse-preserving — relational projection over a base table. *)

val sub_rows : t -> lo:int -> hi:int -> t
(** Contiguous row slice [lo, hi); O(rows + nnz of slice). *)

val hcat : t list -> t

(** {1 Aggregations} *)

val row_sums : t -> Dense.t
val col_sums : t -> Dense.t
val sum : t -> float

val row_sums_sq : t -> Dense.t
(** Per-row sum of squares — K-Means' [rowSums(T^2)] without an
    intermediate. *)

(** {1 Multiplications (dense results)}

    Like {!Blas}, the multiplication kernels run through the pluggable
    {!Exec} engine ([?exec] overrides the process default) and produce
    bitwise-identical results on every backend. *)

val smm : ?exec:Exec.t -> t -> Dense.t -> Dense.t
(** [smm a x] is [a·x] — the sparse LMM kernel. *)

val smm_into : ?exec:Exec.t -> ?beta:float -> t -> Dense.t -> c:Dense.t -> unit
(** [smm_into a x ~c] is [c ← a·x + beta·c] ([?beta] defaults to [0.]:
    overwrite; [1.]: accumulate). Allocation-free variant of {!smm} —
    bitwise-identical results; [c] must not alias [x]. See
    docs/PERFORMANCE.md for the [_into] conventions. *)

val t_smm : ?exec:Exec.t -> t -> Dense.t -> Dense.t
(** [t_smm a x] is [aᵀ·x] by scatter, without materializing [aᵀ]. *)

val dense_smm : ?exec:Exec.t -> Dense.t -> t -> Dense.t
(** [dense_smm x a] is [x·a] — the sparse RMM kernel. *)

val crossprod : ?exec:Exec.t -> t -> Dense.t
(** [aᵀ·a] as a dense d×d matrix. *)

val weighted_crossprod : ?exec:Exec.t -> t -> float array -> Dense.t
(** [aᵀ·diag(w)·a], dense output. *)

val crossprod_csr : ?exec:Exec.t -> ?weights:float array -> t -> t
(** [aᵀ·diag(w)·a] with a *sparse* result (O(Σ nnz_row²) stored
    entries): the form to use when d is too large for a dense d×d
    output, e.g. wide one-hot feature matrices. *)

val tcrossprod : ?exec:Exec.t -> t -> Dense.t
(** [a·aᵀ], dense output (Gram-matrix rewrites only). *)

val col_scatter : t -> mapping:int array -> ncols:int -> Dense.t
(** [a·K] for an indicator over [a]'s columns given as a bucket per
    column — the [T·K_B] building block of DMM (appendix C). *)

(** {1 Comparison and printing} *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
