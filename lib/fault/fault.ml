(* Seeded fault injection. The firing decision at a point is a pure
   function of (seed, point name, arrival index at that point): a
   64-bit mix hashed down to a uniform [0,1) draw compared against the
   configured probability. Per-point arrival counters make a replay
   with the same seed hit the same arrivals even when unrelated points
   interleave differently across threads.

   The disabled fast path is one mutable-bool load, so injection points
   can be left in production code paths. *)

exception Injected of string

type action = Fail | Delay of float (* seconds *)

type rule = { pattern : string; prob : float; action : action }

type config = { seed : int; rules : rule list }

let empty = { seed = 0; rules = [] }

(* Process-global state. [active] is the unsynchronized fast-path flag
   (a plain bool load is atomic in OCaml); everything else lives under
   the lock. Injection points run on handler threads and pool domains
   alike, so a domain-safe lock is required. *)
let active = ref false
let state = ref empty
let hits_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let fired_tbl : (string, int) Hashtbl.t = Hashtbl.create 16
let m = Analysis.Sync.create ~name:"fault.state" ()

let locked f = Analysis.Sync.with_lock m f

(* ---- deterministic firing ---- *)

(* splitmix64 finalizer: full-avalanche 64-bit mix. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

(* FNV-1a over the point name, then mixed. *)
let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s ;
  mix64 !h

let u01 ~seed ~name ~n =
  let h =
    mix64
      (Int64.logxor (hash_string name)
         (mix64 (Int64.logxor (Int64.of_int seed) (Int64.of_int n))))
  in
  (* top 53 bits -> uniform double in [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

(* ---- configuration parsing ---- *)

let matches pattern name =
  let lp = String.length pattern in
  if lp > 0 && pattern.[lp - 1] = '*' then
    let prefix = String.sub pattern 0 (lp - 1) in
    String.length name >= lp - 1 && String.sub name 0 (lp - 1) = prefix
  else pattern = name

let parse_action s =
  if s = "fail" then Ok Fail
  else if String.length s > 5 && String.sub s 0 5 = "delay" then
    match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some ms when ms >= 0.0 -> Ok (Delay (ms /. 1e3))
    | _ -> Error (Printf.sprintf "malformed delay %S (want delay<ms>)" s)
  else Error (Printf.sprintf "unknown action %S (want fail or delay<ms>)" s)

let parse_entry cfg entry =
  match String.index_opt entry '=' with
  | None ->
    Error
      (Printf.sprintf "malformed entry %S (want seed=N or point=prob[:action])"
         entry)
  | Some i -> (
    let key = String.sub entry 0 i in
    let value = String.sub entry (i + 1) (String.length entry - i - 1) in
    if key = "seed" then
      match int_of_string_opt value with
      | Some seed -> Ok { cfg with seed }
      | None -> Error (Printf.sprintf "malformed seed %S" value)
    else
      let prob_s, action_s =
        match String.index_opt value ':' with
        | None -> (value, "fail")
        | Some j ->
          ( String.sub value 0 j,
            String.sub value (j + 1) (String.length value - j - 1) )
      in
      match float_of_string_opt prob_s with
      | Some p when p >= 0.0 && p <= 1.0 -> (
        match parse_action action_s with
        | Ok action ->
          Ok { cfg with rules = cfg.rules @ [ { pattern = key; prob = p; action } ] }
        | Error _ as e -> e)
      | _ ->
        Error
          (Printf.sprintf "probability %S for %S not in [0,1]" prob_s key))

let parse spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.fold_left
       (fun acc entry ->
         match acc with Error _ as e -> e | Ok cfg -> parse_entry cfg entry)
       (Ok empty)

(* ---- public API ---- *)

let enabled () = !active

let disable () =
  locked (fun () ->
      active := false ;
      state := empty ;
      Hashtbl.reset hits_tbl ;
      Hashtbl.reset fired_tbl)

let configure spec =
  match parse spec with
  | Error _ as e -> e
  | Ok cfg ->
    locked (fun () ->
        state := cfg ;
        Hashtbl.reset hits_tbl ;
        Hashtbl.reset fired_tbl ;
        active := cfg.rules <> []) ;
    Ok ()

let with_config spec f =
  (match configure spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.with_config: " ^ msg)) ;
  Fun.protect ~finally:disable f

let check name =
  let decision =
    locked (fun () ->
        let cfg = !state in
        match List.find_opt (fun r -> matches r.pattern name) cfg.rules with
        | None -> None
        | Some r ->
          let n = Option.value ~default:0 (Hashtbl.find_opt hits_tbl name) in
          Hashtbl.replace hits_tbl name (n + 1) ;
          if u01 ~seed:cfg.seed ~name ~n < r.prob then begin
            Hashtbl.replace fired_tbl name
              (1 + Option.value ~default:0 (Hashtbl.find_opt fired_tbl name)) ;
            Some r.action
          end
          else None)
  in
  match decision with
  | None -> ()
  | Some Fail -> raise (Injected name)
  | Some (Delay s) -> if s > 0.0 then Unix.sleepf s

let point name = if !active then check name

let hits name =
  locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt hits_tbl name))

let fired name =
  locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt fired_tbl name))

let total_fired () =
  locked (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) fired_tbl 0)

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Fault.Injected(%s)" p)
    | _ -> None)

(* Environment configuration, once at program start. A malformed spec
   is a loud no-op: chaos runs must never silently run fault-free. *)
let () =
  match Sys.getenv_opt "MORPHEUS_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure spec with
    | Ok () -> ()
    | Error msg -> prerr_endline ("MORPHEUS_FAULTS ignored: " ^ msg))
