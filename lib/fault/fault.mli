(** Deterministic, seeded fault injection.

    Layers that touch the outside world declare named {e injection
    points} ([Fault.point "io.read"]); a configuration maps point names
    to a firing probability and an action (raise {!Injected} or sleep).
    Whether a given arrival fires is a pure function of the configured
    seed, the point name, and that point's arrival index — so a chaos
    run replays identically for a fixed seed, regardless of thread or
    domain interleavings at {e other} points.

    Configuration comes from the [MORPHEUS_FAULTS] environment variable
    (read once at program start) or from {!configure} (tests). The
    syntax is a comma-separated list of entries:

    {v
    MORPHEUS_FAULTS="seed=42,io.read=0.05,registry.load=0.1:delay25,client.*=0.02"
    v}

    - [seed=N]            — the injection seed (default 0)
    - [point=P]           — fire at [point] with probability [P] ∈ [0,1],
                            raising {!Injected} (action [fail])
    - [point=P:fail]      — the same, spelled out
    - [point=P:delayMS]   — instead of raising, sleep [MS] milliseconds
                            (e.g. [delay25] — slow I/O, not broken I/O)

    A point name ending in ['*'] is a prefix wildcard; the first
    matching entry wins. When no configuration is active, {!point}
    is a single boolean load — safe to leave in production code. *)

exception Injected of string
(** Raised by a firing [fail]-action point; the payload is the point
    name. Never raised when fault injection is disabled. *)

val point : string -> unit
(** [point name] does nothing (fast path) unless a configuration rule
    matches [name], in which case it counts the arrival and — when the
    seeded decision fires — raises [Injected name] or sleeps. *)

val enabled : unit -> bool
(** Is any fault configuration active? *)

val configure : string -> (unit, string) result
(** [configure spec] replaces the active configuration (and resets all
    arrival/fired counters) with the parsed [spec], using the
    [MORPHEUS_FAULTS] syntax above. [Error] describes the first
    malformed entry; the previous configuration is kept on error. *)

val disable : unit -> unit
(** Drop the active configuration and reset all counters. *)

val with_config : string -> (unit -> 'a) -> 'a
(** [with_config spec f]: {!configure}, run [f], then {!disable} (also
    on exception). Raises [Invalid_argument] on a malformed [spec].
    The configuration is process-global — not scoped to the calling
    thread. *)

val hits : string -> int
(** Arrivals counted at a point since the last (re)configuration. *)

val fired : string -> int
(** Faults actually injected at a point since the last
    (re)configuration. *)

val total_fired : unit -> int
(** Faults injected across all points since the last
    (re)configuration. *)
