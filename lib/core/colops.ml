(* Column-wise operators over normalized matrices. These are the
   feature-engineering primitives (standardization, per-feature scaling,
   intercept columns) that precede most GLM training. They factorize
   exactly because they act per column of T, and T's columns partition
   across the base matrices:

     T·diag(v)   →  (S·diag(v_S), K, R·diag(v_R))     — closure holds
     colMeans(T) →  colSums(T) / n                     — §3.3.2 rewrite
     [1 | T]     →  extend (or create) the entity part with a 1-column

   Column *centering* (T − 1·μᵀ) is intentionally not provided as a
   normalized-matrix op: it is an element-wise matrix op with a rank-one
   update, which §3.3.7 classifies as non-factorizable (and it destroys
   sparsity); see {!Spectral} for how PCA handles centering implicitly
   through the Gram identities instead. *)

open La
open Sparse
open Normalized

(* Scale the [lo,hi) column slice of a Mat by the corresponding entries
   of [v] (global column indices). *)
let scale_cols_mat m ~v ~lo =
  match m with
  | Mat.D d ->
    Flops.add (Dense.numel d) ;
    Mat.of_dense
      (Dense.mapi (fun _ j x -> x *. v.(lo + j)) d)
  | Mat.S c ->
    Flops.add (Csr.nnz c) ;
    let triplets = ref [] in
    Csr.iter_nz (fun i j x -> triplets := (i, j, x *. v.(lo + j)) :: !triplets) c ;
    Mat.of_csr (Csr.of_triplets ~rows:(Csr.rows c) ~cols:(Csr.cols c) !triplets)

(* T·diag(v): scale T's columns. Returns a normalized matrix with the
   same structure (closure). [v] has length d. *)
let scale_cols t v =
  if is_transposed t then
    invalid_arg "Colops.scale_cols: transpose the result instead" ;
  let d = cols t in
  if Array.length v <> d then invalid_arg "Colops.scale_cols: length mismatch" ;
  let (ent_lo, _), ranges = col_ranges (body t) in
  let ent' =
    Option.map (fun s -> scale_cols_mat s ~v ~lo:ent_lo) (ent t)
  in
  let parts' =
    List.map2
      (fun (p : part) (lo, _) -> (p.ind, scale_cols_mat p.mat ~v ~lo))
      (parts t) ranges
  in
  match ent' with
  | Some s -> Normalized.star ~s ~parts:parts'
  | None -> Normalized.make parts'

(* Column means of T: colSums(T)/n, fully factorized. 1×d row vector. *)
let col_means t =
  let n = float_of_int (rows t) in
  Dense.scale (1.0 /. n) (Rewrite.col_sums t)

(* Column standard deviations (population): sqrt(E[x²] − E[x]²), using
   colSums(T²) — a scalar-op + aggregation pipeline that never touches
   T. 1×d row vector. *)
let col_stds t =
  let n = float_of_int (rows t) in
  let mean = col_means t in
  let mean_sq = Dense.scale (1.0 /. n) (Rewrite.col_sums (Rewrite.sq t)) in
  Dense.init 1 (Dense.cols mean) (fun _ j ->
      let v = Dense.get mean_sq 0 j -. (Dense.get mean 0 j ** 2.0) in
      sqrt (Float.max 0.0 v))

(* Scale every column to unit standard deviation (columns with zero
   variance are left alone). The closure property keeps the result
   normalized, so downstream training still runs factorized. *)
let standardize_scale t =
  let stds = Dense.row_to_array (col_stds t) in
  scale_cols t (Array.map (fun s -> if s > 1e-12 then 1.0 /. s else 1.0) stds)

(* [1 | T]: prepend an all-ones intercept column. For PK-FK shapes the
   column joins the entity part; for M:N shapes (no plain entity part)
   it becomes a one-column entity block, which the uniform
   representation accepts. *)
let with_intercept t =
  if is_transposed t then
    invalid_arg "Colops.with_intercept: transpose the result instead" ;
  let n = rows t in
  let ones = Mat.of_dense (Dense.make n 1 1.0) in
  let parts' = List.map (fun (p : part) -> (p.ind, p.mat)) (parts t) in
  match ent t with
  | Some s -> Normalized.star ~s:(Mat.hcat [ ones; s ]) ~parts:parts'
  | None -> Normalized.star ~s:ones ~parts:parts'
