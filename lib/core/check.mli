(** Static plan checker: one abstract-interpretation pass over the LA
    expression DAG, with structured diagnostics.

    Unlike {!Expr.shape_of} (which raises at the first problem), the
    checker is {e total}: it interprets every node over an abstract
    domain of shape × representation × estimated sparsity × cost,
    collects {e all} diagnostics — each with a stable code, a severity,
    and a path into the expression tree — and annotates every node with
    the Table-3 standard-vs-factorized FLOP estimates, the §3.7
    decision, and the Table-1 / Appendix-C rewrite that would fire.
    It never raises and never evaluates anything, so malformed plans
    are rejected before any kernel runs.

    Diagnostic codes (see [docs/CHECKER.md]):
    - [E001] dimension mismatch (product or element-wise)
    - [E002] unbound variable
    - [E003] matrix operator applied to a scalar operand
    - [E004] normalized-matrix invariant violation
      ({!Normalized.validate})
    - [E005] unknown column name in a relational operator
    - [E006] relational operator misapplied (scalar or transposed
      operand, duplicate or empty column list)
    - [W001] element-wise op forces materialization (§3.3.7)
    - [W002] product-chain order left unoptimized: unresolvable shape
    - [W003] factorization predicted slower than materialized (§3.7
      heuristic)
    - [W004] filter over a materialized operand: post-hoc row mask,
      no pushdown *)

val log_src : Logs.src
(** Log source shared with {!Expr.optimize}'s W002 reports. *)

(** {1 Abstract domain} *)

type dim = int option
(** A matrix dimension; [None] when it cannot be resolved statically. *)

type shape = Scalar | Matrix of dim * dim | Top
(** [Top] is the unknown shape (e.g. of an unbound variable). *)

type repr = R_scalar | R_dense | R_sparse | R_normalized | R_top
(** Abstract representation: which physical kind of value the node
    evaluates to. Normalized operands stay [R_normalized] through the
    closed (Table-1) rewrites and decay to [R_dense] where the paper
    materializes. *)

type norm_info = {
  n_dims : Cost.dims;  (** two-table cost dims (multi-part aggregated) *)
  transposed : bool;
  tuple_ratio : float;
  feature_ratio : float;
}
(** What the cost model needs to know about a normalized operand —
    either extracted from an actual {!Normalized.t} or declared
    abstractly (plan files). *)

type absval = {
  shape : shape;
  repr : repr;
  density : float option;  (** estimated fraction of nonzeros *)
  norm : norm_info option;  (** present iff [repr = R_normalized] *)
  columns : string array option;
      (** explicit column names over the non-transposed column space;
          [None] means the positional defaults [c0..c{d-1}]
          ({!Pred.default_names}) apply when the width is known *)
}

val scalar_value : absval
val dense_value : ?density:float -> ?cols:string array -> int -> int -> absval
val sparse_value : ?density:float -> ?cols:string array -> int -> int -> absval

val normalized_value :
  ?transposed:bool -> ?density:float -> ?cols:string array ->
  ns:int -> ds:int -> nr:int -> dr:int -> unit -> absval
(** An abstract normalized matrix declared by its four Table-3
    dimensions (no data attached) — what plan files bind. [?cols]
    supplies explicit column names for relational operators. *)

val of_value : Ast.value -> absval
(** Abstract a concrete value (measures actual density and normalized
    structure). *)

(** {1 Diagnostics} *)

type code = E001 | E002 | E003 | E004 | E005 | E006 | W001 | W002 | W003 | W004
type severity = Error | Warning

val all_codes : code list
(** Every code this catalogue defines — what [morpheus lint] (rule
    E205) checks for collisions against the analyzer's catalogue. *)

val severity_of : code -> severity
val code_name : code -> string

val code_doc : code -> string
(** One-line description of what the code means. *)

type diagnostic = {
  code : code;
  path : Ast.path;  (** where in the tree *)
  where : string;  (** [Ast.path_string] rendering of [path] *)
  message : string;
  subterm : string;  (** pretty-printed offending subterm *)
}

val diagnostic_to_string : diagnostic -> string

(** {1 Per-node annotations} *)

type annot = {
  a_path : Ast.path;
  a_label : string;  (** operator head ({!Ast.node_label}) *)
  a_value : absval;
  a_standard : float option;  (** standard-path FLOPs for this node *)
  a_factorized : float option;  (** factorized-path FLOPs *)
  a_decision : Decision.choice option;
      (** §3.7 verdict, when a normalized operand is involved *)
  a_rule : string option;  (** the Table-1/Appendix-C rewrite that fires *)
}

type report = {
  expr : Ast.t;
  result : absval;  (** abstract value of the whole plan *)
  nodes : annot list;  (** preorder *)
  diagnostics : diagnostic list;
      (** post-order (sub-term diagnostics before their parents'), which
          matches the raising order of the legacy [shape_of] *)
}

(** {1 Analysis (total: never raises, never evaluates)} *)

val analyze : ?env:(string * Ast.value) list -> Ast.t -> report
(** Check an expression against concrete bindings (the {!Expr.eval}
    environment). Normalized values are additionally run through
    {!Normalized.validate} (E004). *)

val analyze_abstract : ?env:(string * absval) list -> Ast.t -> report
(** Check against purely abstract bindings — no data required; this is
    what [morpheus check] runs on plan files. *)

val errors : report -> diagnostic list
val warnings : report -> diagnostic list

val is_ok : report -> bool
(** No error-severity diagnostics ([warnings] allowed). *)

val totals : report -> float * float
(** Whole-plan (standard, factorized) FLOP totals over all annotated
    nodes. *)

val infer_shape :
  ?env:(string * Ast.value) list -> Ast.t -> (shape, string) result
(** Total shape inference: [Ok] with the abstract result shape when no
    shape/type error was diagnosed, [Error] with the first (innermost,
    leftmost) error message otherwise. {!Expr.shape_of} and
    {!Expr.optimize} route through this, so there is a single
    shape-inference code path. *)

(** {1 Rendering} *)

val report_to_string : ?name:string -> report -> string
(** The annotated plan (one line per node: shape, representation,
    density, standard/factorized FLOPs, decision, rewrite rule),
    followed by all diagnostics and the whole-plan cost totals. *)

val pp_report : Format.formatter -> report -> unit
