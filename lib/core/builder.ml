(* End-to-end construction of normalized matrices from base tables —
   the §3.2 code snippet ("S = read.csv; K = sparseMatrix(...);
   TN = NormalizedMatrix(...)") as a library. Handles feature encoding,
   indicator construction, the pre-processing that drops tuples not
   contributing to the join (§3.1/§3.6), and target extraction. *)

open La
open Sparse
open Relational

type dataset = {
  matrix : Normalized.t;
  target : Dense.t option; (* Y, taken from the entity table *)
}

let target_of table =
  match Schema.target (Table.schema table) with
  | None -> None
  | Some _ -> Some (Encode.target table)

(* Every constructor re-checks the full structural invariants on its
   result (indicator key bounds included, which Normalized.make alone
   does not re-verify) so a bad join/encoding pipeline fails loudly at
   build time, not mid-training. *)
let validated matrix =
  match Normalized.validate matrix with
  | [] -> matrix
  | problems ->
    invalid_arg
      ("Builder: invalid normalized matrix: " ^ String.concat "; " problems)

(* Column names over the global (non-transposed) column space: the
   encoded names of every component, in T's column order — what the
   relational operators (Filter/Project/Group_agg) resolve predicates
   against. *)
let named fmaps matrix =
  Normalized.with_names
    (Array.concat (List.map (fun fm -> fm.Encode.output_names) fmaps))
    matrix

(* Single PK-FK join (the paper's running example): S(Y, X_S, K) joined
   with R(RID, X_R). *)
let pkfk ?(sparse = false) ~s ~fk ~r ~pk () =
  let r, k = Join.trim_unreferenced s ~fk r ~pk in
  let s_mat, s_fm = Encode.features ~sparse s in
  let r_mat, r_fm = Encode.features ~sparse r in
  { matrix =
      named [ s_fm; r_fm ] (validated (Normalized.pkfk ~s:s_mat ~k ~r:r_mat));
    target = target_of s }

(* Star-schema multi-table PK-FK join (§3.5): one entity table, q
   attribute tables given as (foreign key in S, table, its primary key). *)
let star ?(sparse = false) ~s ~atts () =
  let parts =
    List.map
      (fun (fk, r, pk) ->
        let r, k = Join.trim_unreferenced s ~fk r ~pk in
        let r_mat, r_fm = Encode.features ~sparse r in
        ((k, r_mat), r_fm))
      atts
  in
  let s_mat, s_fm = Encode.features ~sparse s in
  { matrix =
      named
        (s_fm :: List.map snd parts)
        (validated (Normalized.star ~s:s_mat ~parts:(List.map fst parts)));
    target = target_of s }

(* M:N equi-join (§3.6). The target Y (if any) lives on S and is mapped
   through I_S so it aligns with the join output's rows. *)
let mn ?(sparse = false) ~s ~js ~r ~jr () =
  let s, is_, r, ir = Join.mn_trim s ~js r ~jr in
  let s_mat, s_fm = Encode.features ~sparse s in
  let r_mat, r_fm = Encode.features ~sparse r in
  let target =
    Option.map
      (fun y ->
        Dense.of_col_array
          (Indicator.gather is_ (Dense.col_to_array y)))
      (target_of s)
  in
  { matrix =
      named [ s_fm; r_fm ]
        (validated (Normalized.mn ~is_ ~s:s_mat ~ir ~r:r_mat));
    target }

(* Multi-table M:N chain join (appendix E): T = R₁ ⋈ R₂ ⋈ … ⋈ R_q with
   the given adjacent equi-join conditions; the normalized matrix is
   (I_R1, …, I_Rq, R₁, …, R_q). Tuples contributing to no output row
   are implicitly absent from the indicators; columns of unreferenced
   base rows keep their zero counts (callers may trim). The target, if
   any, lives on the first table and is mapped through I_R1. *)
let mn_chain ?(sparse = false) ~tables ~conditions () =
  let inds = Join.chain_indicators tables conditions in
  let fmaps = ref [] in
  let parts =
    List.map2
      (fun ind table ->
        let m, fm = Encode.features ~sparse table in
        fmaps := fm :: !fmaps ;
        (ind, m))
      inds tables
  in
  let target =
    match tables with
    | [] -> None
    | first :: _ ->
      Option.map
        (fun y ->
          Dense.of_col_array
            (Indicator.gather (List.hd inds) (Dense.col_to_array y)))
        (target_of first)
  in
  { matrix = named (List.rev !fmaps) (validated (Normalized.make parts));
    target }

(* Load S.csv / R.csv with a role assignment and build the PK-FK
   normalized matrix — the complete §3.2 snippet. *)
let pkfk_of_csv ?(sparse = false) ~s_path ~s_roles ~fk ~r_path ~r_roles ~pk ()
    =
  let s = Csv.read_table ~role_of:s_roles ~table_name:"S" s_path in
  let r = Csv.read_table ~role_of:r_roles ~table_name:"R" r_path in
  pkfk ~sparse ~s ~fk ~r ~pk ()
