(** When are rewrites faster? (§3.7, §5.1.) The paper's heuristic
    decision rule thresholds on the tuple and feature ratios; a
    cost-model alternative is kept for the ablation bench. *)

val log_src : Logs.src
(** Debug-level log of every decision (enable with Logs). *)

type choice = Factorized | Materialized

val default_tau : float
(** τ = 5: minimum tuple ratio (§5.1). *)

val default_rho : float
(** ρ = 1: minimum feature ratio (§5.1). *)

val heuristic : ?tau:float -> ?rho:float -> Normalized.t -> choice
(** The paper's rule: materialize if TR < τ or FR < ρ, else factorize.
    Thresholds are conservative: mispredictions only forgo minor
    (< 50%) speed-ups. *)

val cost_dims : Normalized.t -> Cost.dims
(** Two-table cost dimensions extracted from a normalized matrix
    (multi-part schemas aggregate their attribute sides). *)

val cost_based : ?op:Cost.op -> ?threads:int -> Normalized.t -> choice
(** Compare Table-3 counts for a representative operator (default:
    LMM with one weight vector, the GLM workhorse). [?threads]
    evaluates both sides under the Amdahl-adjusted cost model. *)

val to_string : choice -> string
