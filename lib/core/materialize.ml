(* Materialization: compute the denormalized T from a normalized matrix.
   This is the paper's baseline "M" path — what a data scientist does
   today by joining before ML — and the ground truth that every rewrite
   rule is tested against. *)

open Sparse

(* K·R for one attribute part, preserving sparsity. *)
let part_product (p : Normalized.part) =
  match p.Normalized.mat with
  | Mat.D d -> Mat.of_dense (Indicator.mult p.Normalized.ind d)
  | Mat.S c -> Mat.of_csr (Indicator.mult_csr p.Normalized.ind c)

(* The full T = [S?, I₁M₁, …, I_pM_p] as a regular matrix (§3.1:
   "one can verify that T = [S, KR]"). Honors the transpose flag. *)
let to_mat t =
  let blocks =
    (match Normalized.ent t with Some s -> [ s ] | None -> [])
    @ List.map part_product (Normalized.parts t)
  in
  let m = Mat.hcat blocks in
  if Normalized.is_transposed t then Mat.transpose m else m

(* Materialization is a layer boundary: a NaN/Inf in any factor would
   otherwise spread across the whole denormalized T silently. *)
let to_dense t = La.Validate.check_dense ~stage:"materialize" (Mat.dense (to_mat t))

(* The materialized T as the memoizing Data_matrix wrapper — what the
   baseline "M" path of benches and the adaptive rule execute on. *)
let to_regular t = Regular_matrix.of_mat (to_mat t)
