(* Double matrix multiplication (appendix C): products where *both*
   operands are normalized matrices. DMM "does not arise in any popular
   ML algorithm" but the paper shows it is rewritable; we implement all
   four transpose combinations so the framework is closed under
   multiplication of normalized matrices.

   Shapes (A: n_A×d_A, B: n_B×d_B):
     mult   A·B     requires d_A = n_B
     tdmm   Aᵀ·B    requires n_A = n_B   (generalized Gramian, d_A×d_B)
     gramian A·Bᵀ   requires d_A = d_B   (n_A×n_B)
   and Aᵀ·Bᵀ → (B·A)ᵀ. *)

open La
open Sparse
open Normalized

(* acc += gathered, element-wise, partitioned over the flat buffer by
   the execution engine (disjoint ranges; bitwise-deterministic). *)
let accumulate_into acc gathered =
  Flops.add (Dense.numel acc) ;
  let ad = Dense.data acc and gd = Dense.data gathered in
  Exec.parallel_for ~min_chunk:(Tune.grain ()) (Exec.default ()) ~lo:0
    ~hi:(Array.length ad) (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get gd i)
      done)

(* Column segmentation of a body: [(group, lo, hi)] over T's columns. *)
let segments body =
  let gs = Rewrite.groups body in
  let _, segs =
    List.fold_left
      (fun (off, acc) g ->
        let w = Rewrite.group_cols g in
        (off + w, (g, off, off + w) :: acc))
      (0, []) gs
  in
  List.rev segs

(* A · K_B for an indicator K_B over A's columns (i.e. T·K): factorized
   as S·K_B[rows of S's block] + Σᵢ Kᵢ·(Rᵢ·K_B[their block]) where each
   row-block of K_B is a column-scatter. *)
let mult_indicator_nt body kb =
  let n = base_rows body in
  let ncols = Indicator.cols kb in
  let mapping = Indicator.mapping kb in
  let acc = Dense.create n ncols in
  let accumulate gathered = accumulate_into acc gathered in
  List.iter
    (fun (g, lo, hi) ->
      let sub_map = Array.sub mapping lo (hi - lo) in
      match g with
      | Rewrite.G_ent s -> accumulate (Mat.col_scatter s ~mapping:sub_map ~ncols)
      | Rewrite.G_part { ind; mat } ->
        let z = Mat.col_scatter mat ~mapping:sub_map ~ncols in
        accumulate (Indicator.mult ind z))
    (segments body) ;
  acc

(* A · M for a Mat over A's columns (i.e. T·X with X itself possibly
   sparse): row-slice M per column group, as in LMM. *)
let mult_mat_nt body m =
  let n = base_rows body in
  let k = Mat.cols m in
  let acc = Dense.create n k in
  let accumulate gathered = accumulate_into acc gathered in
  List.iter
    (fun (g, lo, hi) ->
      let slice = Mat.sub_rows m ~lo ~hi in
      match g with
      | Rewrite.G_ent s -> accumulate (Mat.mm s (Mat.dense slice))
      | Rewrite.G_part { ind; mat } ->
        let z = Mat.mm mat (Mat.dense slice) in
        accumulate (Indicator.mult ind z))
    (segments body) ;
  acc

(* A·B for non-transposed A and B (appendix C's first rewrite,
   generalized to any number of parts):
     A·B → [ A·S_B | (A·K_B,1)·R_B,1 | … ]. *)
let mult_nt abody bbody =
  if base_cols abody <> base_rows bbody then
    invalid_arg "Dmm.mult: inner dimension mismatch" ;
  let blocks =
    (match bbody.ent with
    | Some sb -> [ mult_mat_nt abody sb ]
    | None -> [])
    @ List.map
        (fun { ind; mat } -> Mat.mm_left (mult_indicator_nt abody ind) mat)
        bbody.parts
  in
  Dense.hcat blocks

(* Aᵀ·B for bodies sharing the row dimension (appendix C's AᵀB rewrite):
   a d_A×d_B block matrix over the column groups of A and B. *)
let tdmm_nt abody bbody =
  if base_rows abody <> base_rows bbody then
    invalid_arg "Dmm.tdmm: row dimension mismatch" ;
  let block gi gj =
    match (gi, gj) with
    | Rewrite.G_ent sa, Rewrite.G_ent sb -> Rewrite.dense_tmm (Mat.dense sa) sb
    | gi, gj -> Rewrite.cross_block gi gj
  in
  let gsa = Array.of_list (Rewrite.groups abody) in
  let gsb = Array.of_list (Rewrite.groups bbody) in
  let wa = Array.map Rewrite.group_cols gsa in
  let wb = Array.map Rewrite.group_cols gsb in
  let da = Array.fold_left ( + ) 0 wa and db = Array.fold_left ( + ) 0 wb in
  let oa = Array.make (Array.length gsa) 0 in
  for i = 1 to Array.length gsa - 1 do
    oa.(i) <- oa.(i - 1) + wa.(i - 1)
  done ;
  let ob = Array.make (Array.length gsb) 0 in
  for j = 1 to Array.length gsb - 1 do
    ob.(j) <- ob.(j - 1) + wb.(j - 1)
  done ;
  let out = Dense.create da db in
  Array.iteri
    (fun i gi ->
      Array.iteri
        (fun j gj ->
          Dense.blit_block ~src:(block gi gj) ~dst:out ~row:oa.(i) ~col:ob.(j))
        gsb)
    gsa ;
  out

(* A·Bᵀ (appendix C's ABᵀ rewrite, handling all alignment cases by
   refining both column partitions to their common segments): for each
   aligned column segment g, the contribution is
   I_A·(M_A,g · M_B,gᵀ)·I_Bᵀ, applied by a two-sided gather. *)
let gramian_nt abody bbody =
  if base_cols abody <> base_cols bbody then
    invalid_arg "Dmm.gramian: column dimension mismatch" ;
  let na = base_rows abody and nb = base_rows bbody in
  let out = Dense.create na nb in
  let od = Dense.data out in
  (* refine segment boundaries *)
  let bounds =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, lo, hi) -> [ lo; hi ])
         (segments abody @ segments bbody))
  in
  let rec pairs = function
    | lo :: (hi :: _ as rest) -> (lo, hi) :: pairs rest
    | _ -> []
  in
  let seg_of body lo hi =
    (* the (group, local lo, local hi) containing columns [lo,hi) *)
    let g, glo, _ =
      List.find (fun (_, glo, ghi) -> glo <= lo && hi <= ghi) (segments body)
    in
    (g, lo - glo, hi - glo)
  in
  List.iter
    (fun (lo, hi) ->
      let ga, alo, ahi = seg_of abody lo hi in
      let gb, blo, bhi = seg_of bbody lo hi in
      let slice g l h =
        match g with
        | Rewrite.G_ent s -> (None, Mat.dense (Mat.sub_cols s ~lo:l ~hi:h))
        | Rewrite.G_part { ind; mat } ->
          (Some (Indicator.mapping ind), Mat.dense (Mat.sub_cols mat ~lo:l ~hi:h))
      in
      let map_a, ma = slice ga alo ahi in
      let map_b, mb = slice gb blo bhi in
      let c = Blas.gemm_nt ma mb in
      let cd = Dense.data c in
      let rc = Dense.cols c in
      Flops.add (na * nb) ;
      (* two-sided gather: output rows are disjoint across tasks *)
      Exec.parallel_for
        ~min_chunk:(max 1 (Tune.grain () / max 1 nb))
        (Exec.default ()) ~lo:0 ~hi:na
        (fun lo hi ->
          for i = lo to hi - 1 do
            let ci = match map_a with None -> i | Some m -> m.(i) in
            let cbase = ci * rc and obase = i * nb in
            for j = 0 to nb - 1 do
              let cj = match map_b with None -> j | Some m -> m.(j) in
              Array.unsafe_set od (obase + j)
                (Array.unsafe_get od (obase + j)
                +. Array.unsafe_get cd (cbase + cj))
            done
          done))
    (pairs bounds) ;
  out

(* Public entry point dispatching on both transpose flags. *)
let mult a b =
  match (a.trans, b.trans) with
  | false, false -> mult_nt a.body b.body
  | true, true -> Dense.transpose (mult_nt b.body a.body) (* AᵀBᵀ = (BA)ᵀ *)
  | true, false -> tdmm_nt a.body b.body
  | false, true -> gramian_nt a.body b.body
