(* Typed predicates over named columns: the selection language of the
   fused relational-LA planner. Kept deliberately tiny — comparisons of
   encoded (numeric) columns against constants under and/or/not — so
   that the same predicate evaluates identically on base tables (pushed
   below the join through the indicator) and on materialized rows. *)

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Cmp of string * cmp * float
  | And of t * t
  | Or of t * t
  | Not of t

(* ---- printing ---- *)

let cmp_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Canonical form: fully parenthesized binary nodes, [=] for equality,
   [%.17g] constants (round-trips every float). The serving tier uses
   this string as a batch-fusion key, so the rendering must be a
   function of the predicate alone. *)
let rec to_string = function
  | Cmp (col, op, x) -> Printf.sprintf "%s %s %.17g" col (cmp_string op) x
  | And (a, b) -> Printf.sprintf "(%s && %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "!(%s)" (to_string a)

let equal (a : t) (b : t) = a = b

(* ---- parsing ---- *)

type token =
  | T_ident of string
  | T_num of float
  | T_cmp of cmp
  | T_and
  | T_or
  | T_not
  | T_lparen
  | T_rparen

exception Bad of string

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') || c = '.' in
  let is_num c =
    (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      push (T_ident (String.sub src !i (!j - !i)));
      i := !j
    end
    else if (c >= '0' && c <= '9') || c = '.' || ((c = '-' || c = '+') && !i + 1 < n && (let d = src.[!i + 1] in (d >= '0' && d <= '9') || d = '.')) then begin
      let j = ref (!i + 1) in
      while !j < n && is_num src.[!j] do incr j done;
      let s = String.sub src !i (!j - !i) in
      (match float_of_string_opt s with
      | Some x -> push (T_num x)
      | None -> raise (Bad (Printf.sprintf "bad number %S" s)));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" -> push (T_cmp Le); i := !i + 2
      | ">=" -> push (T_cmp Ge); i := !i + 2
      | "==" -> push (T_cmp Eq); i := !i + 2
      | "!=" -> push (T_cmp Ne); i := !i + 2
      | "&&" -> push T_and; i := !i + 2
      | "||" -> push T_or; i := !i + 2
      | _ -> (
        match c with
        | '<' -> push (T_cmp Lt); incr i
        | '>' -> push (T_cmp Gt); incr i
        | '=' -> push (T_cmp Eq); incr i
        | '!' -> push T_not; incr i
        | '(' -> push T_lparen; incr i
        | ')' -> push T_rparen; incr i
        | c -> raise (Bad (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev !toks

(* Recursive descent over the token list; precedence ! > && > ||. *)
let parse src =
  let parse_toks toks =
    let toks = ref toks in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let rec p_or () =
      let a = p_and () in
      match peek () with
      | Some T_or -> advance (); Or (a, p_or ())
      | _ -> a
    and p_and () =
      let a = p_unary () in
      match peek () with
      | Some T_and -> advance (); And (a, p_and ())
      | _ -> a
    and p_unary () =
      match peek () with
      | Some T_not -> advance (); Not (p_unary ())
      | Some T_lparen ->
        advance ();
        let p = p_or () in
        (match peek () with
        | Some T_rparen -> advance (); p
        | _ -> raise (Bad "expected ')'"))
      | Some (T_ident col) ->
        advance ();
        let op =
          match peek () with
          | Some (T_cmp op) -> advance (); op
          | _ -> raise (Bad (Printf.sprintf "expected comparison after %S" col))
        in
        let x =
          match peek () with
          | Some (T_num x) -> advance (); x
          | _ -> raise (Bad (Printf.sprintf "expected number after %S %s" col (cmp_string op)))
        in
        Cmp (col, op, x)
      | _ -> raise (Bad "expected predicate")
    in
    let p = p_or () in
    if !toks <> [] then raise (Bad "trailing tokens after predicate");
    p
  in
  match tokenize src with
  | [] -> Error "empty predicate"
  | toks -> ( try Ok (parse_toks toks) with Bad msg -> Error msg)
  | exception Bad msg -> Error msg

(* ---- semantics ---- *)

let cmp_eval op (v : float) (x : float) =
  match op with
  | Eq -> v = x
  | Ne -> v <> x
  | Lt -> v < x
  | Le -> v <= x
  | Gt -> v > x
  | Ge -> v >= x

let rec eval lookup = function
  | Cmp (col, op, x) -> cmp_eval op (lookup col) x
  | And (a, b) -> eval lookup a && eval lookup b
  | Or (a, b) -> eval lookup a || eval lookup b
  | Not a -> not (eval lookup a)

let columns p =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Cmp (col, _, _) ->
      if not (Hashtbl.mem seen col) then begin
        Hashtbl.add seen col ();
        out := col :: !out
      end
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
  in
  go p;
  List.rev !out

let rec selectivity = function
  | Cmp (_, Eq, _) -> 0.1
  | Cmp (_, Ne, _) -> 0.9
  | Cmp (_, (Lt | Le | Gt | Ge), _) -> 0.5
  | And (a, b) -> selectivity a *. selectivity b
  | Or (a, b) ->
    let sa = selectivity a and sb = selectivity b in
    Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Not a -> 1.0 -. selectivity a

(* ---- resolution ---- *)

let default_names d = Array.init d (fun i -> "c" ^ string_of_int i)

let positional ncols name =
  let n = String.length name in
  if n < 2 || name.[0] <> 'c' then None
  else
    let digits = String.sub name 1 (n - 1) in
    if digits <> "0" && digits.[0] = '0' then None
    else
      match int_of_string_opt digits with
      | Some i when i >= 0 && i < ncols -> Some i
      | _ -> None

let resolve ?names ~ncols name =
  match names with
  | Some names ->
    let rec find i =
      if i >= Array.length names then None
      else if names.(i) = name then Some i
      else find (i + 1)
    in
    find 0
  | None -> positional ncols name

let resolve_pred ?names ~ncols p =
  let exception Unknown of string in
  let out = ref [] in
  let rec go = function
    | Cmp (col, op, x) -> (
      match resolve ?names ~ncols col with
      | Some i -> out := (i, op, x) :: !out
      | None -> raise (Unknown col))
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
  in
  try go p; Ok (List.rev !out) with Unknown col -> Error col
