(* The abstract syntax of the deep-embedded LA expression language —
   the OCaml rendering of Figure 1(c)'s standard script, shared by the
   static plan checker (Check, which abstractly interprets it) and the
   evaluator (Expr, which dispatches every operator to the factorized
   rewrites and re-exports this module). Keeping the syntax separate
   breaks the dependency cycle that a single Expr module would create:
   Expr's shape inference is a thin wrapper over Check, and Check needs
   the expression type. *)

open Sparse

type value =
  | Scalar of float
  | Regular of Mat.t
  | Normalized of Normalized.t

type t =
  | Const of value
  | Var of string
  | Scale of float * t (* x · e *)
  | Add_scalar of float * t
  | Pow_scalar of t * float
  | Map_scalar of string * (float -> float) * t (* named for printing *)
  | Transpose of t
  | Row_sums of t
  | Col_sums of t
  | Sum of t
  | Mult of t * t
  | Crossprod of t
  | Ginv of t
  | Add of t * t
  | Sub of t * t
  | Mul_elem of t * t
  | Div_elem of t * t
  (* relational nodes (docs/PLANNER.md): first-class selection,
     projection and group-by over the expression DAG, so the optimizer
     can push them below the join instead of the relational layer
     running them eagerly *)
  | Filter of Pred.t * t
  | Project of string list * t
  | Group_agg of string list * Relalg.agg * t

(* The Ast constructor names of the relational nodes — the fact the
   source lint (E206) checks against docs/REWRITE_RULES.md. *)
let relational_node_names = [ "Filter"; "Project"; "Group_agg" ]

(* ---- convenience constructors ---- *)

let scalar x = Const (Scalar x)
let regular m = Const (Regular m)
let dense d = Const (Regular (Mat.of_dense d))
let normalized n = Const (Normalized n)
let var name = Var name

let ( *@ ) a b = Mult (a, b)
let ( +@ ) a b = Add (a, b)
let ( -@ ) a b = Sub (a, b)
let ( *.@ ) x e = Scale (x, e)
let tr e = Transpose e
let filter p e = Filter (p, e)
let project cols e = Project (cols, e)
let group_agg keys agg e = Group_agg (keys, agg, e)

(* ---- printing ---- *)

let rec pp ppf = function
  | Const (Scalar x) -> Fmt.pf ppf "%g" x
  | Const (Regular m) -> Fmt.pf ppf "[%dx%d]" (Mat.rows m) (Mat.cols m)
  | Const (Normalized n) ->
    Fmt.pf ppf "T<%dx%d>" (Normalized.rows n) (Normalized.cols n)
  | Var name -> Fmt.string ppf name
  | Scale (x, e) -> Fmt.pf ppf "(%g * %a)" x pp e
  | Add_scalar (x, e) -> Fmt.pf ppf "(%a + %g)" pp e x
  | Pow_scalar (e, p) -> Fmt.pf ppf "(%a ^ %g)" pp e p
  | Map_scalar (name, _, e) -> Fmt.pf ppf "%s(%a)" name pp e
  | Transpose e -> Fmt.pf ppf "%a'" pp e
  | Row_sums e -> Fmt.pf ppf "rowSums(%a)" pp e
  | Col_sums e -> Fmt.pf ppf "colSums(%a)" pp e
  | Sum e -> Fmt.pf ppf "sum(%a)" pp e
  | Mult (a, b) -> Fmt.pf ppf "(%a %%*%% %a)" pp a pp b
  | Crossprod e -> Fmt.pf ppf "crossprod(%a)" pp e
  | Ginv e -> Fmt.pf ppf "ginv(%a)" pp e
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul_elem (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div_elem (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Filter (p, e) -> Fmt.pf ppf "filter(%a, %s)" pp e (Pred.to_string p)
  | Project (cols, e) ->
    Fmt.pf ppf "project(%a, %s)" pp e (String.concat ", " cols)
  | Group_agg (keys, agg, e) ->
    Fmt.pf ppf "groupby(%a, %s, %s)" pp e (Relalg.agg_name agg)
      (String.concat ", " keys)

let to_string e = Fmt.str "%a" pp e

(* ---- algebraic simplification ---- *)

(* One bottom-up pass of local rules:
   - (eᵀ)ᵀ → e
   - a·(b·e) → (a·b)·e            (scalar fusion)
   - (x·e)ᵀ → x·eᵀ                (transpose pushdown; exposes the
                                    Appendix-A rules underneath)
   - rowSums(eᵀ) → colSums(e)ᵀ and symmetrically (Appendix A)
   - sum(eᵀ) → sum(e)
   - crossprod(e) stays; ginv(ginv-free) stays
   - σ_p(σ_q(e)) → σ_{p∧q}(e)         (filter fusion)
   - σ_p(π_cs(e)) → π_cs(σ_p(e))      (selection below projection,
                                        when p only reads kept columns)
   - π_cs(π_ds(e)) → π_cs(e)          (projection collapse, cs ⊆ ds). *)
let rec simplify e =
  let e =
    match e with
    | Const _ | Var _ -> e
    | Scale (x, e) -> Scale (x, simplify e)
    | Add_scalar (x, e) -> Add_scalar (x, simplify e)
    | Pow_scalar (e, p) -> Pow_scalar (simplify e, p)
    | Map_scalar (n, f, e) -> Map_scalar (n, f, simplify e)
    | Transpose e -> Transpose (simplify e)
    | Row_sums e -> Row_sums (simplify e)
    | Col_sums e -> Col_sums (simplify e)
    | Sum e -> Sum (simplify e)
    | Mult (a, b) -> Mult (simplify a, simplify b)
    | Crossprod e -> Crossprod (simplify e)
    | Ginv e -> Ginv (simplify e)
    | Add (a, b) -> Add (simplify a, simplify b)
    | Sub (a, b) -> Sub (simplify a, simplify b)
    | Mul_elem (a, b) -> Mul_elem (simplify a, simplify b)
    | Div_elem (a, b) -> Div_elem (simplify a, simplify b)
    | Filter (p, e) -> Filter (p, simplify e)
    | Project (cols, e) -> Project (cols, simplify e)
    | Group_agg (keys, agg, e) -> Group_agg (keys, agg, simplify e)
  in
  match e with
  | Transpose (Transpose e) -> e
  | Scale (x, Scale (y, e)) -> Scale (Stdlib.( *. ) x y, e)
  | Transpose (Scale (x, e)) -> Scale (x, simplify (Transpose e))
  | Row_sums (Transpose e) -> Transpose (Col_sums e)
  | Col_sums (Transpose e) -> Transpose (Row_sums e)
  | Sum (Transpose e) -> Sum e
  | Filter (p, Filter (q, e)) -> Filter (Pred.And (p, q), e)
  | Filter (p, Project (cols, e))
    when List.for_all (fun c -> List.mem c cols) (Pred.columns p) ->
    Project (cols, simplify (Filter (p, e)))
  | Project (cols, Project (inner, e))
    when List.for_all (fun c -> List.mem c inner) cols ->
    Project (cols, e)
  | e -> e

(* ---- tree structure and paths ---- *)

type path = int list

let children = function
  | Const _ | Var _ -> []
  | Scale (_, e)
  | Add_scalar (_, e)
  | Pow_scalar (e, _)
  | Map_scalar (_, _, e)
  | Transpose e
  | Row_sums e
  | Col_sums e
  | Sum e
  | Crossprod e
  | Ginv e
  | Filter (_, e)
  | Project (_, e)
  | Group_agg (_, _, e) ->
    [ e ]
  | Mult (a, b) | Add (a, b) | Sub (a, b) | Mul_elem (a, b) | Div_elem (a, b)
    ->
    [ a; b ]

let node_label = function
  | Const (Scalar x) -> Printf.sprintf "const %g" x
  | Const (Regular m) ->
    Printf.sprintf "const [%dx%d]" (Mat.rows m) (Mat.cols m)
  | Const (Normalized n) ->
    Printf.sprintf "normalized T<%dx%d>" (Normalized.rows n)
      (Normalized.cols n)
  | Var name -> "var " ^ name
  | Scale (x, _) -> Printf.sprintf "scale %g" x
  | Add_scalar (x, _) -> Printf.sprintf "add-scalar %g" x
  | Pow_scalar (_, p) -> Printf.sprintf "pow %g" p
  | Map_scalar (name, _, _) -> "map " ^ name
  | Transpose _ -> "transpose"
  | Row_sums _ -> "rowSums"
  | Col_sums _ -> "colSums"
  | Sum _ -> "sum"
  | Mult _ -> "mult"
  | Crossprod _ -> "crossprod"
  | Ginv _ -> "ginv"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Mul_elem _ -> "mul-elem"
  | Div_elem _ -> "div-elem"
  | Filter (p, _) -> Printf.sprintf "filter [%s]" (Pred.to_string p)
  | Project (cols, _) ->
    Printf.sprintf "project [%s]" (String.concat ", " cols)
  | Group_agg (keys, agg, _) ->
    Printf.sprintf "groupby [%s; %s]" (Relalg.agg_name agg)
      (String.concat ", " keys)

let rec subterm e = function
  | [] -> Some e
  | i :: rest -> (
    match List.nth_opt (children e) i with
    | Some c -> subterm c rest
    | None -> None)

(* Edge names: "left"/"right" for binary nodes, "arg" for unary. *)
let edge_name e i =
  match children e with
  | [ _ ] -> "arg"
  | [ _; _ ] -> if i = 0 then "left" else "right"
  | _ -> string_of_int i

let path_string root path =
  let rec go e = function
    | [] -> []
    | i :: rest -> (
      let step = Printf.sprintf "%s/%s" (node_label e) (edge_name e i) in
      match List.nth_opt (children e) i with
      | Some c -> step :: go c rest
      | None -> [ step ^ "?" ])
  in
  match go root path with
  | [] -> "root"
  | steps -> String.concat " › " steps

(* ---- structural equality ---- *)

(* Syntactic equality, safe on every constructor: polymorphic compare
   would raise on Map_scalar's closure and is needlessly deep on Const
   payloads, so constants compare physically (scalars by value) and
   mapped functions by name + physical function. Used by the optimizer
   to spot eᵀ·e patterns (σ_p(T)ᵀ · σ_p(T) → crossprod). *)
let rec equal a b =
  match (a, b) with
  | Const (Scalar x), Const (Scalar y) -> x = y
  | Const (Regular m1), Const (Regular m2) -> m1 == m2
  | Const (Normalized n1), Const (Normalized n2) -> n1 == n2
  | Var n1, Var n2 -> n1 = n2
  | Scale (x, e1), Scale (y, e2) -> x = y && equal e1 e2
  | Add_scalar (x, e1), Add_scalar (y, e2) -> x = y && equal e1 e2
  | Pow_scalar (e1, x), Pow_scalar (e2, y) -> x = y && equal e1 e2
  | Map_scalar (n1, f1, e1), Map_scalar (n2, f2, e2) ->
    n1 = n2 && f1 == f2 && equal e1 e2
  | Transpose e1, Transpose e2
  | Row_sums e1, Row_sums e2
  | Col_sums e1, Col_sums e2
  | Sum e1, Sum e2
  | Crossprod e1, Crossprod e2
  | Ginv e1, Ginv e2 ->
    equal e1 e2
  | Mult (a1, b1), Mult (a2, b2)
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul_elem (a1, b1), Mul_elem (a2, b2)
  | Div_elem (a1, b1), Div_elem (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Filter (p1, e1), Filter (p2, e2) -> Pred.equal p1 p2 && equal e1 e2
  | Project (c1, e1), Project (c2, e2) -> c1 = c2 && equal e1 e2
  | Group_agg (k1, g1, e1), Group_agg (k2, g2, e2) ->
    k1 = k2 && g1 = g2 && equal e1 e2
  | _ -> false
