(* The abstract syntax of the deep-embedded LA expression language —
   the OCaml rendering of Figure 1(c)'s standard script, shared by the
   static plan checker (Check, which abstractly interprets it) and the
   evaluator (Expr, which dispatches every operator to the factorized
   rewrites and re-exports this module). Keeping the syntax separate
   breaks the dependency cycle that a single Expr module would create:
   Expr's shape inference is a thin wrapper over Check, and Check needs
   the expression type. *)

open Sparse

type value =
  | Scalar of float
  | Regular of Mat.t
  | Normalized of Normalized.t

type t =
  | Const of value
  | Var of string
  | Scale of float * t (* x · e *)
  | Add_scalar of float * t
  | Pow_scalar of t * float
  | Map_scalar of string * (float -> float) * t (* named for printing *)
  | Transpose of t
  | Row_sums of t
  | Col_sums of t
  | Sum of t
  | Mult of t * t
  | Crossprod of t
  | Ginv of t
  | Add of t * t
  | Sub of t * t
  | Mul_elem of t * t
  | Div_elem of t * t

(* ---- convenience constructors ---- *)

let scalar x = Const (Scalar x)
let regular m = Const (Regular m)
let dense d = Const (Regular (Mat.of_dense d))
let normalized n = Const (Normalized n)
let var name = Var name

let ( *@ ) a b = Mult (a, b)
let ( +@ ) a b = Add (a, b)
let ( -@ ) a b = Sub (a, b)
let ( *.@ ) x e = Scale (x, e)
let tr e = Transpose e

(* ---- printing ---- *)

let rec pp ppf = function
  | Const (Scalar x) -> Fmt.pf ppf "%g" x
  | Const (Regular m) -> Fmt.pf ppf "[%dx%d]" (Mat.rows m) (Mat.cols m)
  | Const (Normalized n) ->
    Fmt.pf ppf "T<%dx%d>" (Normalized.rows n) (Normalized.cols n)
  | Var name -> Fmt.string ppf name
  | Scale (x, e) -> Fmt.pf ppf "(%g * %a)" x pp e
  | Add_scalar (x, e) -> Fmt.pf ppf "(%a + %g)" pp e x
  | Pow_scalar (e, p) -> Fmt.pf ppf "(%a ^ %g)" pp e p
  | Map_scalar (name, _, e) -> Fmt.pf ppf "%s(%a)" name pp e
  | Transpose e -> Fmt.pf ppf "%a'" pp e
  | Row_sums e -> Fmt.pf ppf "rowSums(%a)" pp e
  | Col_sums e -> Fmt.pf ppf "colSums(%a)" pp e
  | Sum e -> Fmt.pf ppf "sum(%a)" pp e
  | Mult (a, b) -> Fmt.pf ppf "(%a %%*%% %a)" pp a pp b
  | Crossprod e -> Fmt.pf ppf "crossprod(%a)" pp e
  | Ginv e -> Fmt.pf ppf "ginv(%a)" pp e
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul_elem (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div_elem (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b

let to_string e = Fmt.str "%a" pp e

(* ---- algebraic simplification ---- *)

(* One bottom-up pass of local rules:
   - (eᵀ)ᵀ → e
   - a·(b·e) → (a·b)·e            (scalar fusion)
   - (x·e)ᵀ → x·eᵀ                (transpose pushdown; exposes the
                                    Appendix-A rules underneath)
   - rowSums(eᵀ) → colSums(e)ᵀ and symmetrically (Appendix A)
   - sum(eᵀ) → sum(e)
   - crossprod(e) stays; ginv(ginv-free) stays. *)
let rec simplify e =
  let e =
    match e with
    | Const _ | Var _ -> e
    | Scale (x, e) -> Scale (x, simplify e)
    | Add_scalar (x, e) -> Add_scalar (x, simplify e)
    | Pow_scalar (e, p) -> Pow_scalar (simplify e, p)
    | Map_scalar (n, f, e) -> Map_scalar (n, f, simplify e)
    | Transpose e -> Transpose (simplify e)
    | Row_sums e -> Row_sums (simplify e)
    | Col_sums e -> Col_sums (simplify e)
    | Sum e -> Sum (simplify e)
    | Mult (a, b) -> Mult (simplify a, simplify b)
    | Crossprod e -> Crossprod (simplify e)
    | Ginv e -> Ginv (simplify e)
    | Add (a, b) -> Add (simplify a, simplify b)
    | Sub (a, b) -> Sub (simplify a, simplify b)
    | Mul_elem (a, b) -> Mul_elem (simplify a, simplify b)
    | Div_elem (a, b) -> Div_elem (simplify a, simplify b)
  in
  match e with
  | Transpose (Transpose e) -> e
  | Scale (x, Scale (y, e)) -> Scale (Stdlib.( *. ) x y, e)
  | Transpose (Scale (x, e)) -> Scale (x, simplify (Transpose e))
  | Row_sums (Transpose e) -> Transpose (Col_sums e)
  | Col_sums (Transpose e) -> Transpose (Row_sums e)
  | Sum (Transpose e) -> Sum e
  | e -> e

(* ---- tree structure and paths ---- *)

type path = int list

let children = function
  | Const _ | Var _ -> []
  | Scale (_, e)
  | Add_scalar (_, e)
  | Pow_scalar (e, _)
  | Map_scalar (_, _, e)
  | Transpose e
  | Row_sums e
  | Col_sums e
  | Sum e
  | Crossprod e
  | Ginv e ->
    [ e ]
  | Mult (a, b) | Add (a, b) | Sub (a, b) | Mul_elem (a, b) | Div_elem (a, b)
    ->
    [ a; b ]

let node_label = function
  | Const (Scalar x) -> Printf.sprintf "const %g" x
  | Const (Regular m) ->
    Printf.sprintf "const [%dx%d]" (Mat.rows m) (Mat.cols m)
  | Const (Normalized n) ->
    Printf.sprintf "normalized T<%dx%d>" (Normalized.rows n)
      (Normalized.cols n)
  | Var name -> "var " ^ name
  | Scale (x, _) -> Printf.sprintf "scale %g" x
  | Add_scalar (x, _) -> Printf.sprintf "add-scalar %g" x
  | Pow_scalar (_, p) -> Printf.sprintf "pow %g" p
  | Map_scalar (name, _, _) -> "map " ^ name
  | Transpose _ -> "transpose"
  | Row_sums _ -> "rowSums"
  | Col_sums _ -> "colSums"
  | Sum _ -> "sum"
  | Mult _ -> "mult"
  | Crossprod _ -> "crossprod"
  | Ginv _ -> "ginv"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Mul_elem _ -> "mul-elem"
  | Div_elem _ -> "div-elem"

let rec subterm e = function
  | [] -> Some e
  | i :: rest -> (
    match List.nth_opt (children e) i with
    | Some c -> subterm c rest
    | None -> None)

(* Edge names: "left"/"right" for binary nodes, "arg" for unary. *)
let edge_name e i =
  match children e with
  | [ _ ] -> "arg"
  | [ _; _ ] -> if i = 0 then "left" else "right"
  | _ -> string_of_int i

let path_string root path =
  let rec go e = function
    | [] -> []
    | i :: rest -> (
      let step = Printf.sprintf "%s/%s" (node_label e) (edge_name e i) in
      match List.nth_opt (children e) i with
      | Some c -> step :: go c rest
      | None -> [ step ^ "?" ])
  in
  match go root path with
  | [] -> "root"
  | steps -> String.concat " › " steps
