(** Column-wise operators over normalized matrices: the feature-
    engineering primitives (per-feature scaling, standardization,
    intercept columns) that precede GLM training. They factorize
    because T's columns partition across the base matrices; results are
    normalized matrices (closure), so downstream training stays
    factorized. Column centering is deliberately absent — it is a
    non-factorizable element-wise op (§3.3.7); {!Spectral} handles
    centering implicitly where it is needed. *)

open La

val scale_cols : Normalized.t -> float array -> Normalized.t
(** [scale_cols t v] is T·diag(v) ([v] has length d). Raises on
    transposed inputs — transpose the result instead. *)

val col_means : Normalized.t -> Dense.t
(** colSums(T)/n as a 1×d row, fully factorized. *)

val col_stds : Normalized.t -> Dense.t
(** Population standard deviation per column via colSums(T²). *)

val standardize_scale : Normalized.t -> Normalized.t
(** Scale every column to unit standard deviation (zero-variance
    columns are untouched). *)

val with_intercept : Normalized.t -> Normalized.t
(** [\[1 | T\]]: prepend an all-ones column (to the entity part, or as a
    new one-column entity block for M:N shapes). *)
