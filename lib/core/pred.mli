(** A small typed predicate language over named matrix columns — the
    selection half of the fused relational-LA planner (docs/PLANNER.md).

    Predicates compare a {e column} against a {e constant}: after
    encoding, every column of a (normalized) feature matrix is numeric,
    so the comparison domain is [float]. Column names resolve against
    the matrix they filter: explicit names carried by the matrix
    (attached by {!Builder} from the encoder's output names) or, for
    matrices without names, positional defaults [c0 … c{d-1}] over the
    global column index. The same predicate therefore means the same
    rows on a normalized matrix and on its materialized equivalent —
    the property the pushdown-equivalence tests certify bitwise. *)

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Cmp of string * cmp * float  (** [column <op> constant] *)
  | And of t * t
  | Or of t * t
  | Not of t

(** {1 Parsing and printing} *)

val parse : string -> (t, string) result
(** Grammar (see docs/PLANNER.md):
    {v
      pred   := or
      or     := and  { "||" and }
      and    := unary { "&&" unary }
      unary  := "!" unary | "(" pred ")" | cmp
      cmp    := ident ( "==" | "=" | "!=" | "<" | "<=" | ">" | ">=" ) number
    v}
    Identifiers are [[A-Za-z_][A-Za-z0-9_.]*]. Returns a human-readable
    error for malformed input. *)

val to_string : t -> string
(** Canonical rendering: [parse (to_string p)] yields a predicate equal
    to [p], and two [Pred.t] built from equivalent canonical strings
    print identically — the serving tier keys batch fusion on this
    string. *)

val equal : t -> t -> bool

val cmp_string : cmp -> string
(** Canonical operator spelling: [=], [!=], [<], [<=], [>], [>=]. *)

(** {1 Semantics} *)

val cmp_eval : cmp -> float -> float -> bool
(** [cmp_eval op v x] applies [v <op> x]. *)

val eval : (string -> float) -> t -> bool
(** [eval lookup p] evaluates [p] with [lookup] supplying column
    values. *)

val columns : t -> string list
(** Referenced column names, deduplicated, in first-appearance order. *)

val selectivity : t -> float
(** Cardinality heuristic in [0, 1] for {!Cost}: equality ≈ 0.1,
    inequalities ≈ 0.5, [!=] ≈ 0.9; conjunction multiplies, disjunction
    is inclusion–exclusion, negation complements. *)

(** {1 Resolution against a column space} *)

val default_names : int -> string array
(** [default_names d] = [[|"c0"; …; "c{d-1}"|]] — the positional names
    every unnamed matrix answers to. *)

val resolve : ?names:string array -> ncols:int -> string -> int option
(** Map a column name to a global column index: an explicit [names]
    array wins; otherwise positional [c<i>] with [0 <= i < ncols].
    [None] when unknown. *)

val resolve_pred :
  ?names:string array -> ncols:int -> t -> ((int * cmp * float) list, string) result
(** Resolve every comparison's column. The list enumerates comparisons
    in syntactic order (one entry per [Cmp], including duplicates);
    [Error col] names the first unknown column. *)
