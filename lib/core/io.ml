(* Persistence for normalized matrices: save/load the (S, Kᵢ, Rᵢ)
   triple to a directory so a normalized dataset can be prepared once
   and reused across sessions — the practical counterpart of §3.2's
   construction snippet. Layout:

     dir/meta          one line per component (kind + dims)
     dir/ent.bin       entity matrix, if any
     dir/part_<i>.ind  indicator mapping (int array)
     dir/part_<i>.mat  attribute matrix

   Matrices serialize as a framed payload: a magic + format-version
   header line identifying the payload kind, then the arrays via
   Marshal (like the ORE chunk store); sparse matrices store their
   triplets, so the on-disk size is O(nnz).

   Durability discipline (shared with the model registry, which frames
   its artifacts through {!write_payload}): every file is written to a
   [.tmp] sibling and renamed into place, so a reader never observes a
   half-written file; [meta] is written last, making it the commit
   point of a multi-file save. A truncated, foreign, or mislabelled
   file raises {!Corrupt} instead of marshalling garbage. *)

open La
open Sparse

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ---- framed, atomic single-file payloads ---- *)

(* One shared magic so [file] can cheaply recognize any Morpheus binary
   file; the per-payload [kind] tag keeps an indicator file from being
   read as a matrix (or a registry artifact as either). *)
let magic = "MORPHEUS-BIN"
let format_version = 1

let header ~kind = Printf.sprintf "%s v%d %s\n" magic format_version kind

(* Atomic text write: tmp sibling + rename, so a reader (or a crash)
   never observes a half-written file at [path]. *)
let write_text_atomic path contents =
  Fault.point "io.write" ;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents ;
     close_out oc
   with e ->
     close_out_noerr oc ;
     (try Sys.remove tmp with Sys_error _ -> ()) ;
     raise e) ;
  Sys.rename tmp path

let write_payload ~kind path v =
  Fault.point "io.write" ;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (header ~kind) ;
     Marshal.to_channel oc v [] ;
     close_out oc
   with e ->
     close_out_noerr oc ;
     (try Sys.remove tmp with Sys_error _ -> ()) ;
     raise e) ;
  Sys.rename tmp path

let read_payload ~kind path =
  Fault.point "io.read" ;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line =
        try input_line ic
        with End_of_file -> corrupt "%s: empty file" path
      in
      (match String.split_on_char ' ' line with
      | [ m; v; k ] when m = magic ->
        if v <> Printf.sprintf "v%d" format_version then
          corrupt "%s: unsupported format version %s" path v ;
        if k <> kind then
          corrupt "%s: payload kind %S, expected %S" path k kind
      | _ -> corrupt "%s: not a Morpheus binary file" path) ;
      try Marshal.from_channel ic
      with End_of_file | Failure _ ->
        corrupt "%s: truncated or damaged payload" path)

(* ---- matrix payloads ---- *)

type mat_payload =
  | P_dense of int * int * float array
  | P_sparse of int * int * (int * int * float) list

let payload_of_mat = function
  | Mat.D d -> P_dense (Dense.rows d, Dense.cols d, Dense.data d)
  | Mat.S c ->
    let triplets = ref [] in
    Csr.iter_nz (fun i j v -> triplets := (i, j, v) :: !triplets) c ;
    P_sparse (Csr.rows c, Csr.cols c, !triplets)

let mat_of_payload = function
  | P_dense (rows, cols, data) ->
    if Array.length data <> rows * cols then
      corrupt "dense payload: %d values for a %dx%d matrix"
        (Array.length data) rows cols ;
    Mat.of_dense (Dense.of_array ~rows ~cols (Array.copy data))
  | P_sparse (rows, cols, triplets) ->
    Mat.of_csr (Csr.of_triplets ~rows ~cols triplets)

let mat_kind = "matrix"
let ind_kind = "indicator"

(* Numeric guard at the load boundary: a NaN/Inf that slipped into a
   file (or was written by a buggy producer) is refused here, before it
   can poison a factorized product. *)
let check_payload path = function
  | P_dense (_, _, data) -> Validate.check_array ~stage:("io.load " ^ path) data
  | P_sparse (_, _, triplets) ->
    List.iteri
      (fun index (_, _, v) ->
        if not (Float.is_finite v) then
          raise
            (Validate.Numeric_error
               { Validate.stage = "io.load " ^ path; index; value = v }))
      triplets

let write_mat path m = write_payload ~kind:mat_kind path (payload_of_mat m)

let read_mat path =
  let p = read_payload ~kind:mat_kind path in
  check_payload path p ;
  mat_of_payload p

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Save a normalized matrix. Only non-transposed matrices are stored
   (persist the logical T; re-apply transpose after loading). *)
let save ~dir t =
  if Normalized.is_transposed t then
    invalid_arg "Io.save: transposed normalized matrix" ;
  ensure_dir dir ;
  let parts = Normalized.parts t in
  let meta = Buffer.create 128 in
  Buffer.add_string meta "morpheus-normalized v2\n" ;
  (match Normalized.ent t with
  | Some s ->
    Buffer.add_string meta
      (Printf.sprintf "ent %d %d\n" (Mat.rows s) (Mat.cols s)) ;
    write_mat (Filename.concat dir "ent.bin") s
  | None -> Buffer.add_string meta "no-ent\n") ;
  Buffer.add_string meta (Printf.sprintf "parts %d\n" (List.length parts)) ;
  List.iteri
    (fun i (p : Normalized.part) ->
      Buffer.add_string meta
        (Printf.sprintf "part %d %d %d\n" i
           (Indicator.rows p.Normalized.ind)
           (Indicator.cols p.Normalized.ind)) ;
      write_payload ~kind:ind_kind
        (Filename.concat dir (Printf.sprintf "part_%d.ind" i))
        (Indicator.cols p.Normalized.ind, Indicator.mapping p.Normalized.ind) ;
      write_mat
        (Filename.concat dir (Printf.sprintf "part_%d.mat" i))
        p.Normalized.mat)
    parts ;
  (* column-name sidecar (one name per line), written before the commit
     point so a committed save is never missing its names; older
     datasets without the file load with names = None (positional
     defaults apply) *)
  (match Normalized.names t with
  | Some names ->
    write_text_atomic
      (Filename.concat dir "columns")
      (String.concat "\n" (Array.to_list names) ^ "\n")
  | None -> ()) ;
  (* the commit point: a crash before this rename leaves no meta, so
     [load] refuses the directory rather than reading partial parts *)
  write_text_atomic (Filename.concat dir "meta") (Buffer.contents meta)

let load ~dir =
  let meta_path = Filename.concat dir "meta" in
  if not (Sys.file_exists meta_path) then
    invalid_arg ("Io.load: no normalized matrix at " ^ dir) ;
  let lines =
    In_channel.with_open_text meta_path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | header :: _
    when header = "morpheus-normalized v2" || header = "morpheus-normalized v1"
    -> ()
  | _ -> corrupt "%s: unrecognized meta header" meta_path) ;
  let ent =
    if List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "ent") lines
    then Some (read_mat (Filename.concat dir "ent.bin"))
    else None
  in
  let nparts =
    let line =
      match
        List.find_opt
          (fun l -> String.length l > 6 && String.sub l 0 6 = "parts ")
          lines
      with
      | Some l -> l
      | None -> corrupt "%s: missing parts line" meta_path
    in
    match int_of_string_opt (String.sub line 6 (String.length line - 6)) with
    | Some n -> n
    | None -> corrupt "%s: malformed parts line" meta_path
  in
  let parts =
    List.init nparts (fun i ->
        let cols, mapping =
          read_payload ~kind:ind_kind
            (Filename.concat dir (Printf.sprintf "part_%d.ind" i))
        in
        let mat = read_mat (Filename.concat dir (Printf.sprintf "part_%d.mat" i)) in
        (Indicator.create ~cols mapping, mat))
  in
  let t =
    match ent with
    | Some s -> Normalized.star ~s ~parts
    | None -> Normalized.make parts
  in
  (* absent sidecar = unnamed columns (pre-sidecar datasets) *)
  let columns_path = Filename.concat dir "columns" in
  if not (Sys.file_exists columns_path) then t
  else begin
    let names =
      In_channel.with_open_text columns_path In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "")
      |> Array.of_list
    in
    try Normalized.with_names names t
    with Invalid_argument msg -> corrupt "%s: %s" columns_path msg
  end

let delete ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir) ;
    Sys.rmdir dir
  end
