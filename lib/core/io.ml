(* Persistence for normalized matrices: save/load the (S, Kᵢ, Rᵢ)
   triple to a directory so a normalized dataset can be prepared once
   and reused across sessions — the practical counterpart of §3.2's
   construction snippet. Layout:

     dir/meta          one line per component (kind + dims)
     dir/ent.bin       entity matrix, if any
     dir/part_<i>.ind  indicator mapping (int array)
     dir/part_<i>.mat  attribute matrix

   Matrices serialize as a small header plus the payload arrays via
   Marshal (like the ORE chunk store); sparse matrices store their
   triplets, so the on-disk size is O(nnz). *)

open La
open Sparse

let write_value path v =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Marshal.to_channel oc v [])

let read_value path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Marshal.from_channel ic)

type mat_payload =
  | P_dense of int * int * float array
  | P_sparse of int * int * (int * int * float) list

let payload_of_mat = function
  | Mat.D d -> P_dense (Dense.rows d, Dense.cols d, Dense.data d)
  | Mat.S c ->
    let triplets = ref [] in
    Csr.iter_nz (fun i j v -> triplets := (i, j, v) :: !triplets) c ;
    P_sparse (Csr.rows c, Csr.cols c, !triplets)

let mat_of_payload = function
  | P_dense (rows, cols, data) ->
    Mat.of_dense (Dense.of_array ~rows ~cols (Array.copy data))
  | P_sparse (rows, cols, triplets) ->
    Mat.of_csr (Csr.of_triplets ~rows ~cols triplets)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Save a normalized matrix. Only non-transposed matrices are stored
   (persist the logical T; re-apply transpose after loading). *)
let save ~dir t =
  if Normalized.is_transposed t then
    invalid_arg "Io.save: transposed normalized matrix" ;
  ensure_dir dir ;
  let parts = Normalized.parts t in
  let meta = Buffer.create 128 in
  Buffer.add_string meta "morpheus-normalized v1\n" ;
  (match Normalized.ent t with
  | Some s ->
    Buffer.add_string meta
      (Printf.sprintf "ent %d %d\n" (Mat.rows s) (Mat.cols s)) ;
    write_value (Filename.concat dir "ent.bin") (payload_of_mat s)
  | None -> Buffer.add_string meta "no-ent\n") ;
  Buffer.add_string meta (Printf.sprintf "parts %d\n" (List.length parts)) ;
  List.iteri
    (fun i (p : Normalized.part) ->
      Buffer.add_string meta
        (Printf.sprintf "part %d %d %d\n" i
           (Indicator.rows p.Normalized.ind)
           (Indicator.cols p.Normalized.ind)) ;
      write_value
        (Filename.concat dir (Printf.sprintf "part_%d.ind" i))
        (Indicator.cols p.Normalized.ind, Indicator.mapping p.Normalized.ind) ;
      write_value
        (Filename.concat dir (Printf.sprintf "part_%d.mat" i))
        (payload_of_mat p.Normalized.mat))
    parts ;
  let oc = open_out (Filename.concat dir "meta") in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents meta))

let load ~dir =
  let meta_path = Filename.concat dir "meta" in
  if not (Sys.file_exists meta_path) then
    invalid_arg ("Io.load: no normalized matrix at " ^ dir) ;
  let lines =
    In_channel.with_open_text meta_path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | header :: _ when header = "morpheus-normalized v1" -> ()
  | _ -> invalid_arg "Io.load: unrecognized format") ;
  let ent =
    if List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "ent") lines
    then Some (mat_of_payload (read_value (Filename.concat dir "ent.bin")))
    else None
  in
  let nparts =
    let line =
      List.find (fun l -> String.length l > 6 && String.sub l 0 6 = "parts ") lines
    in
    int_of_string (String.sub line 6 (String.length line - 6))
  in
  let parts =
    List.init nparts (fun i ->
        let cols, mapping =
          read_value (Filename.concat dir (Printf.sprintf "part_%d.ind" i))
        in
        let mat =
          mat_of_payload
            (read_value (Filename.concat dir (Printf.sprintf "part_%d.mat" i)))
        in
        (Indicator.create ~cols mapping, mat))
  in
  match ent with
  | Some s -> Normalized.star ~s ~parts
  | None -> Normalized.make parts

let delete ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir) ;
    Sys.rmdir dir
  end
