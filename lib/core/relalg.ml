(* Relational operators over (normalized) matrices: the execution layer
   behind the Filter/Project/Group_agg nodes of the Expr DAG.

   The point of this module is WHERE predicates and projections run.
   A materialized engine filters T after paying O(n·d) to build it; here
   every comparison is evaluated against the base table that owns the
   column — entity columns on S's rows directly, attribute-part columns
   on the part's n_Ri base rows, expanded to T's row space through the
   indicator mapping (one array read per row). The combined row mask
   then drives a single Normalized.select_rows, so the filtered matrix
   is still normalized and everything downstream (crossprod, gemm,
   scoring) keeps the paper's factorized rewrites. Selection is pushed
   below the join by construction. *)

open La
open Sparse

exception Rel_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Rel_error s)) fmt

type agg =
  | Agg_sum
  | Agg_mean
  | Agg_count

let agg_name = function
  | Agg_sum -> "sum"
  | Agg_mean -> "mean"
  | Agg_count -> "count"

let agg_of_string = function
  | "sum" -> Some Agg_sum
  | "mean" -> Some Agg_mean
  | "count" -> Some Agg_count
  | _ -> None

(* ---- column accessors ---- *)

(* Locate global column [g] in the block structure: the entity block or
   the owning attribute part. *)
type block =
  | B_ent of int (* column within S *)
  | B_part of int * int (* part index, column within R_i *)

let locate body g =
  let (_, ent_hi), parts = Normalized.col_ranges body in
  if g < ent_hi then B_ent g
  else
    let rec find i = function
      | [] -> fail "column %d outside %d columns" g (Normalized.base_cols body)
      | (lo, hi) :: rest ->
        if g >= lo && g < hi then B_part (i, g - lo) else find (i + 1) rest
    in
    find 0 parts

(* A row->value accessor for global column [g] of the non-transposed T.
   Entity columns read S directly; part columns precompute the base
   column once (O(n_Ri)) and compose through the indicator — this is the
   per-table evaluation that makes pushdown cheap. *)
let value_accessor t g =
  let body = Normalized.body t in
  match locate body g with
  | B_ent j -> (
    match body.Normalized.ent with
    | Some s -> fun row -> Mat.get s row j
    | None -> assert false)
  | B_part (i, j) ->
    let { Normalized.ind; mat } = List.nth body.Normalized.parts i in
    let base = Array.init (Mat.rows mat) (fun k -> Mat.get mat k j) in
    let mapping = Indicator.mapping ind in
    fun row -> base.(mapping.(row))

let resolve_col ?names ~ncols col =
  match Pred.resolve ?names ~ncols col with
  | Some g -> g
  | None -> fail "unknown column %S" col

(* Compile a predicate to a row->bool function over the normalized
   matrix, resolving names against its (explicit or positional c<i>)
   column space. *)
let compile_pred t p =
  let names = Normalized.names t in
  let ncols = Normalized.base_cols (Normalized.body t) in
  let rec go = function
    | Pred.Cmp (col, op, x) ->
      let acc = value_accessor t (resolve_col ?names ~ncols col) in
      fun row -> Pred.cmp_eval op (acc row) x
    | Pred.And (a, b) ->
      let fa = go a and fb = go b in
      fun row -> fa row && fb row
    | Pred.Or (a, b) ->
      let fa = go a and fb = go b in
      fun row -> fa row || fb row
    | Pred.Not a ->
      let fa = go a in
      fun row -> not (fa row)
  in
  go p

let collect_mask n f =
  let out = ref [] in
  let count = ref 0 in
  for row = n - 1 downto 0 do
    if f row then begin
      out := row :: !out;
      incr count
    end
  done ;
  let arr = Array.make !count 0 in
  List.iteri (fun i r -> arr.(i) <- r) !out ;
  arr

(* ---- selection ---- *)

let mask t p =
  if Normalized.is_transposed t then
    fail "filter over a transposed normalized matrix" ;
  let f = compile_pred t p in
  collect_mask (Normalized.base_rows (Normalized.body t)) f

let mask_mat ?names m p =
  let ncols = Mat.cols m in
  let rec go = function
    | Pred.Cmp (col, op, x) ->
      let j = resolve_col ?names ~ncols col in
      fun row -> Pred.cmp_eval op (Mat.get m row j) x
    | Pred.And (a, b) ->
      let fa = go a and fb = go b in
      fun row -> fa row && fb row
    | Pred.Or (a, b) ->
      let fa = go a and fb = go b in
      fun row -> fa row || fb row
    | Pred.Not a ->
      let fa = go a in
      fun row -> not (fa row)
  in
  collect_mask (Mat.rows m) (go p)

let filter t p = Normalized.select_rows t (mask t p)
let filter_mat ?names m p = Mat.gather_rows m (mask_mat ?names m p)

(* ---- projection ---- *)

(* Resolve a projection list to ascending global indices (set
   semantics: result columns keep T's order), rejecting duplicates. *)
let resolve_projection ?names ~ncols cols =
  if cols = [] then fail "empty projection" ;
  let idx = List.map (fun c -> (resolve_col ?names ~ncols c, c)) cols in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) idx in
  let rec dups = function
    | (a, ca) :: ((b, _) :: _ as rest) ->
      if a = b then fail "duplicate column %S in projection" ca else dups rest
    | _ -> ()
  in
  dups sorted ;
  Array.of_list (List.map fst sorted)

let project t cols =
  if Normalized.is_transposed t then
    fail "project over a transposed normalized matrix" ;
  let body = Normalized.body t in
  let names = Normalized.names t in
  let ncols = Normalized.base_cols body in
  let idx = resolve_projection ?names ~ncols cols in
  let (_, ent_hi), ranges = Normalized.col_ranges body in
  let ent_sel =
    Array.of_list
      (List.filter (fun g -> g < ent_hi) (Array.to_list idx))
  in
  let ent' =
    match body.Normalized.ent with
    | Some s when Array.length ent_sel > 0 -> Some (Mat.select_cols s ent_sel)
    | _ -> None
  in
  (* Per part: local column selection; parts keeping no column are
     pruned entirely — indicator and base matrix drop out of the plan. *)
  let parts' =
    List.map2
      (fun { Normalized.ind; mat } (lo, hi) ->
        let local =
          Array.of_list
            (List.filter_map
               (fun g -> if g >= lo && g < hi then Some (g - lo) else None)
               (Array.to_list idx))
        in
        if Array.length local = 0 then None
        else Some (ind, Mat.select_cols mat local))
      body.Normalized.parts ranges
    |> List.filter_map Fun.id
  in
  if ent' = None && parts' = [] then fail "projection keeps no columns" ;
  let t' = Normalized.make ?ent:ent' parts' in
  let out_names =
    let src = match names with
      | Some a -> a
      | None -> Pred.default_names ncols
    in
    Array.map (fun g -> src.(g)) idx
  in
  Normalized.with_names out_names t'

let project_mat ?names m cols =
  let idx = resolve_projection ?names ~ncols:(Mat.cols m) cols in
  Mat.select_cols m idx

(* ---- group-by aggregation ---- *)

(* Distinct key tuples in ascending order -> dense group ids. The sort
   makes the output row order a function of the data alone, so the
   factorized and materialized paths lay groups out identically. *)
let group_ids n key_of_row =
  let tbl = Hashtbl.create 64 in
  let tuples = ref [] in
  let raw = Array.init n key_of_row in
  Array.iter
    (fun key ->
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key (-1);
        tuples := key :: !tuples
      end)
    raw ;
  let sorted = List.sort compare !tuples in
  List.iteri (fun id key -> Hashtbl.replace tbl key id) sorted ;
  let gids = Array.map (fun key -> Hashtbl.find tbl key) raw in
  (List.length sorted, gids)

let finish_agg agg ngroups d gids sums =
  let counts = Array.make ngroups 0.0 in
  Array.iter (fun g -> counts.(g) <- counts.(g) +. 1.0) gids ;
  match agg with
  | Agg_count -> Dense.init ngroups 1 (fun g _ -> counts.(g))
  | Agg_sum -> sums ()
  | Agg_mean ->
    let out = sums () in
    Flops.add (ngroups * d) ;
    Dense.init ngroups d (fun g j -> Dense.unsafe_get out g j /. counts.(g))

let group_agg t ~keys agg =
  if Normalized.is_transposed t then
    fail "groupby over a transposed normalized matrix" ;
  if keys = [] then fail "groupby needs at least one key column" ;
  let body = Normalized.body t in
  let names = Normalized.names t in
  let ncols = Normalized.base_cols body in
  let accessors =
    List.map (fun c -> value_accessor t (resolve_col ?names ~ncols c)) keys
  in
  let n = Normalized.base_rows body in
  let ngroups, gids =
    group_ids n (fun row -> List.map (fun acc -> acc row) accessors)
  in
  let sums () =
    (* Group sums block by block, never materializing T:
       - entity block: Gᵀ·S where G is the (n × groups) one-hot of the
         group ids — an indicator scatter-add;
       - part i: (Gᵀ·Kᵢ)·Rᵢ — a (groups × n_Ri) count matrix (built in
         O(n)) times the base table. *)
    let d = ncols in
    let out = Dense.create ngroups d in
    let g_ind = Indicator.create ~cols:ngroups gids in
    let _, ranges = Normalized.col_ranges body in
    (match body.Normalized.ent with
    | Some s ->
      let block = Indicator.tmult g_ind (Mat.dense s) in
      Dense.blit_block ~src:block ~dst:out ~row:0 ~col:0
    | None -> ()) ;
    List.iter2
      (fun { Normalized.ind; mat } (lo, _hi) ->
        let nr = Mat.rows mat in
        let counts = Dense.create ngroups nr in
        let mapping = Indicator.mapping ind in
        Flops.add n ;
        for row = 0 to n - 1 do
          let g = gids.(row) and k = mapping.(row) in
          Dense.unsafe_set counts g k (Dense.unsafe_get counts g k +. 1.0)
        done ;
        let block = Mat.mm_left counts mat in
        Dense.blit_block ~src:block ~dst:out ~row:0 ~col:lo)
      body.Normalized.parts ranges ;
    out
  in
  finish_agg agg ngroups ncols gids sums

let group_agg_mat ?names m ~keys agg =
  if keys = [] then fail "groupby needs at least one key column" ;
  let ncols = Mat.cols m in
  let kidx =
    List.map (fun c -> resolve_col ?names ~ncols c) keys
  in
  let n = Mat.rows m in
  let ngroups, gids =
    group_ids n (fun row -> List.map (fun j -> Mat.get m row j) kidx)
  in
  let sums () =
    let out = Dense.create ngroups ncols in
    Flops.add (n * ncols) ;
    for row = 0 to n - 1 do
      let g = gids.(row) in
      for j = 0 to ncols - 1 do
        Dense.unsafe_set out g j (Dense.unsafe_get out g j +. Mat.get m row j)
      done
    done ;
    out
  in
  finish_agg agg ngroups ncols gids sums
