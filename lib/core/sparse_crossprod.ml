(* Cross-product with a sparse result: crossprod(T) = TᵀT assembled as a
   CSR matrix instead of a dense d×d block matrix. This is the form that
   stays feasible at the real datasets' full one-hot widths (Table 6:
   d up to ~5×10⁴, where a dense d×d output would need ~20 GB) — the
   output of a one-hot cross-product is itself sparse (feature
   co-occurrence counts).

   The block structure is exactly Algorithm 2's (see Rewrite.crossprod);
   only the accumulation differs: every block lands in one global
   (row, col) → value table, and off-diagonal R_iᵀ·P·R_j blocks are
   computed triplet-by-triplet through P = K_iᵀK_j without any dense
   intermediate. *)

open La
open Sparse
open Normalized

(* iterate the (col, value) entries of row [i] of a Mat *)
let iter_mat_row m i f =
  match m with
  | Mat.S c -> Csr.iter_row c i f
  | Mat.D d ->
    for j = 0 to Dense.cols d - 1 do
      let v = Dense.unsafe_get d i j in
      if v <> 0.0 then f j v
    done

let crossprod t =
  let body = body t in
  if is_transposed t then
    invalid_arg "Sparse_crossprod.crossprod: use the Gram form for transposed input" ;
  let gs = Array.of_list (Rewrite.groups body) in
  let widths = Array.map Rewrite.group_cols gs in
  let d = Array.fold_left ( + ) 0 widths in
  let offsets = Array.make (Array.length gs) 0 in
  for i = 1 to Array.length gs - 1 do
    offsets.(i) <- offsets.(i - 1) + widths.(i - 1)
  done ;
  let tbl : (int * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let add i j v =
    if v <> 0.0 then begin
      let key = (i, j) in
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0.0 in
      Hashtbl.replace tbl key (prev +. v)
    end
  in
  (* add a block and its mirror below the diagonal *)
  let add_block_dense ~ro ~co ~mirror (b : Dense.t) =
    Dense.iteri
      (fun i j v ->
        if v <> 0.0 then begin
          add (ro + i) (co + j) v ;
          if mirror then add (co + j) (ro + i) v
        end)
      b
  in
  let add_block_csr ~ro ~co (b : Csr.t) =
    Csr.iter_nz (fun i j v -> add (ro + i) (co + j) v) b
  in
  Array.iteri
    (fun gi g ->
      let o = offsets.(gi) in
      (* diagonal block *)
      (match g with
      | Rewrite.G_ent (Mat.S c) -> add_block_csr ~ro:o ~co:o (Csr.crossprod_csr c)
      | Rewrite.G_ent (Mat.D dm) ->
        add_block_dense ~ro:o ~co:o ~mirror:false (Blas.crossprod dm)
      | Rewrite.G_part { ind; mat = Mat.S c } ->
        add_block_csr ~ro:o ~co:o
          (Csr.crossprod_csr ~weights:(Indicator.col_counts ind) c)
      | Rewrite.G_part { ind; mat = Mat.D dm } ->
        add_block_dense ~ro:o ~co:o ~mirror:false
          (Blas.weighted_crossprod dm (Indicator.col_counts ind))) ;
      (* strictly-upper blocks, mirrored *)
      for gj = gi + 1 to Array.length gs - 1 do
        let oj = offsets.(gj) in
        match (g, gs.(gj)) with
        | Rewrite.G_ent s, Rewrite.G_part { ind; mat } ->
          (* Sᵀ(K·R) = (KᵀS)ᵀ·R: KᵀS is n_R×d_S (d_S is small in
             wide-one-hot schemas); keep the product sparse-aware *)
          let g_acc = Rewrite.ind_tmult ind s in
          let block = Rewrite.dense_tmm g_acc mat in
          add_block_dense ~ro:o ~co:oj ~mirror:true block
        | Rewrite.G_part a, Rewrite.G_part b ->
          (* Rᵢᵀ·(KᵢᵀKⱼ)·Rⱼ via the co-occurrence triplets of P. The
             triplet sweep is the hot loop of wide M:N schemas, so it
             runs through the execution engine: per-chunk contribution
             tables over slices of the entries array, merged in
             canonical chunk order (deterministic per key), then folded
             into the global table. *)
          let p = Indicator.cross a.ind b.ind in
          let entries = Coo.entries p in
          if Array.length entries > 0 then begin
            let body lo hi =
              let local : (int * int, float) Hashtbl.t =
                Hashtbl.create (4 * (hi - lo))
              in
              let ladd i j v =
                if v <> 0.0 then begin
                  let key = (i, j) in
                  let prev =
                    Option.value (Hashtbl.find_opt local key) ~default:0.0
                  in
                  Hashtbl.replace local key (prev +. v)
                end
              in
              for e = lo to hi - 1 do
                let ra, rb, v = entries.(e) in
                iter_mat_row a.mat ra (fun ca xa ->
                    iter_mat_row b.mat rb (fun cb xb ->
                        let contrib = v *. xa *. xb in
                        ladd (o + ca) (oj + cb) contrib ;
                        ladd (oj + cb) (o + ca) contrib))
              done ;
              local
            in
            let merge acc part =
              Hashtbl.iter
                (fun key v ->
                  let prev =
                    Option.value (Hashtbl.find_opt acc key) ~default:0.0
                  in
                  Hashtbl.replace acc key (prev +. v))
                part ;
              acc
            in
            let block =
              Exec.reduce (Exec.default ()) ~lo:0 ~hi:(Array.length entries)
                ~body ~combine:merge
            in
            Hashtbl.iter (fun (i, j) v -> add i j v) block
          end
        | Rewrite.G_ent _, Rewrite.G_ent _ | Rewrite.G_part _, Rewrite.G_ent _
          ->
          (* the entity group, when present, is always first *)
          assert false
      done)
    gs ;
  let triplets = Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) tbl [] in
  Csr.of_triplets ~rows:d ~cols:d triplets
