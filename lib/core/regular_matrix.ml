(* The standard single-table instantiation of {!Data_matrix.S}: operators
   run directly on the materialized T (dense or sparse). This is the
   paper's baseline "M" execution path. *)

open La
open Sparse

type t = Mat.t

let rows = Mat.rows
let cols = Mat.cols

let scale = Mat.scale
let add_scalar = Mat.add_scalar
let pow m p = Mat.pow p m
let map_scalar = Mat.map_scalar

let row_sums = Mat.row_sums
let col_sums = Mat.col_sums
let sum = Mat.sum

(* Eta-expanded so the [?exec] knob of the underlying kernels elides to
   the process default, matching the plain {!Data_matrix.S} arrows. *)
let lmm m x = Mat.mm m x
let rmm x m = Mat.mm_left x m
let tlmm m x = Mat.tmm m x
let crossprod m = Mat.crossprod m

let ginv m = Linalg.ginv (Mat.dense m)

let describe m = Fmt.str "%a" Mat.pp m
