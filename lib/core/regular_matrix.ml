(* The standard single-table instantiation of {!Data_matrix.S}: operators
   run directly on the materialized T (dense or sparse). This is the
   paper's baseline "M" execution path.

   The matrix wraps its {!Mat.t} together with lazy invariant cells
   (crossprod, the aggregations), so the baseline benefits from the same
   per-instance memoization as the factorized path: repeat calls on one
   matrix cost zero flops, and speed-up ratios between the two paths
   keep reflecting the algorithms, not caching differences. The wrapped
   matrix must not be mutated after {!of_mat}. *)

open La
open Sparse

type t = {
  mat : Mat.t;
  rc_crossprod : Dense.t Memo.cell;
  rc_row_sums : Dense.t Memo.cell;
  rc_col_sums : Dense.t Memo.cell;
  rc_sum : float Memo.cell;
  rc_row_sums_sq : Dense.t Memo.cell;
}

let of_mat mat =
  { mat;
    rc_crossprod = Memo.cell ();
    rc_row_sums = Memo.cell ();
    rc_col_sums = Memo.cell ();
    rc_sum = Memo.cell ();
    rc_row_sums_sq = Memo.cell () }

let to_mat t = t.mat
let of_dense d = of_mat (Mat.of_dense d)
let of_csr c = of_mat (Mat.of_csr c)

let rows t = Mat.rows t.mat
let cols t = Mat.cols t.mat

(* Element-wise results are new logical matrices: fresh cells. *)
let scale x t = of_mat (Mat.scale x t.mat)
let add_scalar x t = of_mat (Mat.add_scalar x t.mat)
let pow t p = of_mat (Mat.pow p t.mat)
let map_scalar f t = of_mat (Mat.map_scalar f t.mat)

let select_rows t idx = of_mat (Mat.gather_rows t.mat idx)

let row_sums t = Memo.force t.rc_row_sums (fun () -> Mat.row_sums t.mat)
let col_sums t = Memo.force t.rc_col_sums (fun () -> Mat.col_sums t.mat)
let sum t = Memo.force t.rc_sum (fun () -> Mat.sum t.mat)
let row_sums_sq t = Memo.force t.rc_row_sums_sq (fun () -> Mat.row_sums_sq t.mat)

(* Eta-expanded so the [?exec] knob of the underlying kernels elides to
   the process default, matching the plain {!Data_matrix.S} arrows. *)
let lmm t x = Mat.mm t.mat x
let rmm x t = Mat.mm_left x t.mat
let tlmm t x = Mat.tmm t.mat x
let crossprod t = Memo.force t.rc_crossprod (fun () -> Mat.crossprod t.mat)

let ginv t = Linalg.ginv (Mat.dense t.mat)

let describe t = Fmt.str "%a" Mat.pp t.mat
