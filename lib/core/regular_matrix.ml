(* The standard single-table instantiation of {!Data_matrix.S}: operators
   run directly on the materialized T (dense or sparse). This is the
   paper's baseline "M" execution path. *)

open La
open Sparse

type t = Mat.t

let rows = Mat.rows
let cols = Mat.cols

let scale = Mat.scale
let add_scalar = Mat.add_scalar
let pow m p = Mat.pow p m
let map_scalar = Mat.map_scalar

let row_sums = Mat.row_sums
let col_sums = Mat.col_sums
let sum = Mat.sum

let lmm = Mat.mm
let rmm = Mat.mm_left
let tlmm = Mat.tmm
let crossprod = Mat.crossprod

let ginv m = Linalg.ginv (Mat.dense m)

let describe m = Fmt.str "%a" Mat.pp m
