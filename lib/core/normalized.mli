(** The normalized matrix (§3.1, §3.5, §3.6): the paper's new logical
    data type. Represents the join output

    {v T  =  [ S? | I₁M₁ | … | I_pM_p ] v}

    without materializing it, where each attribute part is an indicator
    matrix times a base-table feature matrix. One uniform representation
    covers all the paper's schema shapes:

    - single PK-FK join: [ent = Some s], parts [[(k, r)]];
    - star multi-table PK-FK (§3.5): [ent = Some s], parts
      [[(k1, r1); …; (kq, rq)]];
    - M:N join (§3.6): [ent = None], parts [[(i_s, s); (i_r, r)]].

    A [trans] flag records logical transposition (§3.2), so transposed
    operators reuse the same type via the Appendix-A rules. *)

open Sparse

type part = { ind : Indicator.t; mat : Mat.t }

type body = {
  ent : Mat.t option;  (** the plain entity feature matrix S, if any *)
  parts : part list;  (** attribute parts, in column order *)
}

(** Lazy caches of the loop-invariant factorized quantities (see
    docs/PERFORMANCE.md). Each cell holds the result for the
    {e non-transposed} body; {!Rewrite} dispatches on the transpose flag
    before touching a cell, which is why [Rewrite.transpose] — a pure
    flag flip — shares its argument's memo, while {!map_mats} and
    {!select_rows} (different logical matrices) build fresh cells. *)
type memo = {
  mc_crossprod : La.Dense.t La.Memo.cell;  (** crossprod(T) = TᵀT, d×d *)
  mc_gram : La.Dense.t La.Memo.cell;  (** crossprod(Tᵀ) = TTᵀ, n×n *)
  mc_row_sums : La.Dense.t La.Memo.cell;  (** rowSums(T), n×1 *)
  mc_col_sums : La.Dense.t La.Memo.cell;  (** colSums(T), 1×d *)
  mc_sum : float La.Memo.cell;  (** sum(T) *)
  mc_row_sums_sq : La.Dense.t La.Memo.cell;  (** rowSums(T²), n×1 *)
  mc_col_sums_sq : La.Dense.t La.Memo.cell;  (** colSums(T²), 1×d *)
}

val fresh_memo : unit -> memo
(** Empty cells for a new logical matrix. *)

type t = {
  body : body;
  trans : bool;
  names : string array option;
      (** column names over the global (non-transposed) column space *)
  memo : memo;
}

(** {1 Accessors} *)

val memo : t -> memo

val body : t -> body
val is_transposed : t -> bool
val ent : t -> Mat.t option
val parts : t -> part list

val names : t -> string array option
(** Column names attached with {!with_names} (e.g. by {!Builder} from
    the encoder's output names), or [None] — in which case the matrix
    answers to the positional defaults [c0 … c{d-1}]. *)

(** {1 Construction}

    All constructors validate that indicators share the row count and
    match their attribute matrices; they raise [Invalid_argument]
    otherwise. *)

val make : ?ent:Mat.t -> (Indicator.t * Mat.t) list -> t

val pkfk : s:Mat.t -> k:Indicator.t -> r:Mat.t -> t
(** Single PK-FK join: TN = (S, K, R). *)

val star : s:Mat.t -> parts:(Indicator.t * Mat.t) list -> t
(** Star-schema multi-table PK-FK join. *)

val mn : is_:Indicator.t -> s:Mat.t -> ir:Indicator.t -> r:Mat.t -> t
(** M:N join: T = [I_S·S, I_R·R]. *)

val with_names : string array -> t -> t
(** Attach column names (length must equal {!base_cols}). Names are
    preserved by {!select_rows}, {!map_mats} and transposition. *)

val validate : t -> string list
(** Total re-check of the structural invariants: non-empty body,
    consistent row counts across parts, indicator/attribute dimension
    agreement, indicator key bounds, non-degenerate dims. Returns
    human-readable violations ([[]] when sound) instead of raising —
    run by {!Builder} after construction, by the static checker
    ({!Check}, code E004), and surfaced in {!Explain.describe}. *)

(** {1 Logical dimensions (respect the transpose flag)} *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int

val base_rows : body -> int
(** n_S (or |T'| for M:N), ignoring transposition. *)

val base_cols : body -> int
(** d = d_S + Σ d_Ri, ignoring transposition. *)

val col_ranges : body -> (int * int) * (int * int) list
(** Column ranges [lo, hi)[ of the entity block and of each attribute
    part within T's column space — how LMM slices its multiplier. *)

(** {1 Statistics} *)

val storage_size : t -> int
(** Stored scalars across base matrices (indicators excluded: they cost
    one integer per row). *)

val redundancy_ratio : t -> float
(** size(T) / (size(S) + Σ size(Rᵢ)) — the speed-up predictor of
    §3.3.1. *)

val tuple_ratio : t -> float
(** TR = n_S / Σ n_Ri (§3.4). *)

val feature_ratio : t -> float
(** FR = Σ d_Ri / d_S (§3.4). *)

val select_rows : t -> int array -> t
(** Row subset T[idx, ] as a normalized matrix: gathers S's rows and
    composes the indicator mappings; the Rᵢ are shared untouched, so the
    cost is O(|idx|·d_S). Duplicate and reordered indices are allowed
    (mini-batches, bootstrap samples, CV folds). Raises on transposed
    inputs or out-of-range indices. *)

(** {1 Structure-preserving map} *)

val map_mats : (Mat.t -> Mat.t) -> t -> t
(** Map every base matrix, keeping indicators and shape: the form of
    all element-wise scalar rewrites, and the closure property that
    lets scalar ops return normalized matrices (§3.2). *)

val pp : Format.formatter -> t -> unit
