(** Plan files for [morpheus check]: a tiny declarative language that
    declares abstract operands (no data attached) and the expressions
    to check against them, so whole pipelines are validated before any
    CSV is read or kernel run.

    Grammar (line-oriented; [#] starts a comment):

    {v
    normalized T ns=100000 ds=5 nr=5000 dr=20 [transposed] [density=D]
                 [cols=age,price,...]          # ds+dr names, T's order
    dense      X 100000 3 [density=D] [cols=a,b,c]
    sparse     Y 100000 20 [density=D]
    scalar     alpha
    let  w = ginv(crossprod(T)) %*% (T' %*% y)
    check T %*% w
    check crossprod(filter(T, age >= 30 && price < 2))
    check project(T, age, price)
    check groupby(T, mean, region)
    v}

    Expressions use the R-flavoured surface syntax of the paper:
    [%*%] (matrix product), postfix ['] (transpose), [+ - * / ^]
    (element-wise), [rowSums(e)], [colSums(e)], [sum(e)],
    [crossprod(e)], [ginv(e)], [exp(e)], parentheses, numeric literals.
    A literal combined with [* + - / ^] folds to the scalar forms
    ([Scale], [Add_scalar], …), mirroring how R dispatches
    scalar-matrix arithmetic.

    Relational forms (docs/PLANNER.md): [filter(e, pred)] with [pred]
    over column names ([< <= > >= == != && || !], parentheses);
    [project(e, c1, c2, ...)]; [groupby(e, sum|mean|count, k1, ...)].
    Without a [cols=] declaration the positional names [c0 … c{d-1}]
    apply. Unknown columns are diagnosed as E005, misapplied operators
    as E006.

    [let] bindings substitute inline (the DAG stays a tree);
    identifiers that are neither declared nor let-bound stay free
    variables, which the checker reports as E002. *)

type stmt =
  | Declare of string * Check.absval
  | Check of string * Ast.t
      (** the string is the source text of the checked expression *)

type t = { stmts : stmt list }

val env : t -> (string * Check.absval) list
(** All declarations, in order. *)

val checks : t -> (string * Ast.t) list
(** All check statements, in order. *)

val parse : string -> (t, string) result
(** Parse plan source text; [Error] carries a message with a line
    number. *)

val parse_file : string -> (t, string) result

val parse_expr :
  ?lets:(string * Ast.t) list -> string -> (Ast.t, string) result
(** Parse a single expression (the [--expr] form of [morpheus
    check]). *)
