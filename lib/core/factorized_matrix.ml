(* The factorized instantiation of {!Data_matrix.S}: operators are the
   Morpheus rewrites over the normalized matrix. Any ML functor applied
   to this module is "automatically factorized" in the paper's sense. *)

type t = Normalized.t

let rows = Normalized.rows
let cols = Normalized.cols

let scale = Rewrite.scale
let add_scalar = Rewrite.add_scalar
let pow = Rewrite.pow
let map_scalar = Rewrite.map_scalar

let select_rows = Normalized.select_rows

let row_sums = Rewrite.row_sums
let col_sums = Rewrite.col_sums
let sum = Rewrite.sum
let row_sums_sq = Rewrite.row_sums_sq

let lmm = Rewrite.lmm
let rmm = Rewrite.rmm
let tlmm = Rewrite.tlmm
let crossprod = Rewrite.crossprod

let ginv = Rewrite.ginv

let describe t = Fmt.str "%a" Normalized.pp t
