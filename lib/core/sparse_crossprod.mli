(** crossprod(T) with a sparse CSR result — the form that stays feasible
    at the real datasets' full one-hot widths (Table 6: d up to ~5×10⁴),
    where the dense d×d output of {!Rewrite.crossprod} would need tens
    of gigabytes. Same Algorithm-2 block structure; off-diagonal blocks
    are accumulated triplet-by-triplet through the co-occurrence matrix
    P = KᵢᵀKⱼ with no dense intermediates. *)

open Sparse

val crossprod : Normalized.t -> Csr.t
(** Raises [Invalid_argument] on transposed inputs (the Gram matrix
    T·Tᵀ is n×n and dense-natured; use {!Rewrite.crossprod} for it). *)
