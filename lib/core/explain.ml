(* EXPLAIN for factorized linear algebra: given an operator and a
   normalized matrix, render the rewrite that would fire (with the
   actual block structure), the Table-3 cost estimates for both
   execution paths, and the §3.7 decision — the LA counterpart of a
   database EXPLAIN plan. Purely informational; nothing is executed. *)

open Sparse

type op =
  | Scalar_op
  | Row_sums
  | Col_sums
  | Sum
  | Lmm of int (* columns of the multiplier *)
  | Rmm of int (* rows of the multiplier *)
  | Crossprod
  | Ginv
  | Selection (* relational σ_p *)
  | Group_by (* relational γ *)

let op_name = function
  | Scalar_op -> "element-wise scalar op"
  | Row_sums -> "rowSums"
  | Col_sums -> "colSums"
  | Sum -> "sum"
  | Lmm k -> Printf.sprintf "LMM (T x X, d_X = %d)" k
  | Rmm k -> Printf.sprintf "RMM (X x T, n_X = %d)" k
  | Crossprod -> "crossprod"
  | Ginv -> "pseudo-inverse"
  | Selection -> "selection (filter)"
  | Group_by -> "group-by aggregation"

let cost_op = function
  | Scalar_op -> Cost.Scalar_op
  | Row_sums | Col_sums | Sum -> Cost.Aggregation
  | Lmm k -> Cost.Lmm k
  | Rmm k -> Cost.Rmm k
  | Crossprod -> Cost.Crossprod
  | Ginv -> Cost.Pseudo_inverse
  | Selection -> Cost.Selection
  | Group_by -> Cost.Group_by

(* Names for the parts: S, R1..Rq (or S', R' under I_S/I_R for M:N). *)
let part_names t =
  let q = List.length (Normalized.parts t) in
  match Normalized.ent t with
  | Some _ -> List.init q (fun i -> Printf.sprintf "R%d" (i + 1))
  | None ->
    (* M:N shape: first part is the entity table behind I_S *)
    List.init q (fun i -> if i = 0 then "S" else Printf.sprintf "R%d" i)

let ind_names t =
  let q = List.length (Normalized.parts t) in
  match Normalized.ent t with
  | Some _ -> List.init q (fun i -> Printf.sprintf "K%d" (i + 1))
  | None ->
    List.init q (fun i -> if i = 0 then "I_S" else Printf.sprintf "I_R%d" i)

let rewrite_formula t op =
  let rs = part_names t and ks = ind_names t in
  let with_ent f_ent parts_terms join =
    let ent_term = match Normalized.ent t with Some _ -> [ f_ent ] | None -> [] in
    String.concat join (ent_term @ parts_terms)
  in
  match op with
  | Scalar_op ->
    let terms = List.map (fun r -> "f(" ^ r ^ ")") rs in
    "(" ^ with_ent "f(S)" terms ", " ^ ")   [closure: result stays normalized]"
  | Row_sums ->
    with_ent "rowSums(S)"
      (List.map2 (fun k r -> k ^ "*rowSums(" ^ r ^ ")") ks rs)
      " + "
  | Col_sums ->
    "[" ^ with_ent "colSums(S)"
      (List.map2 (fun k r -> "colSums(" ^ k ^ ")*" ^ r) ks rs)
      ", " ^ "]"
  | Sum ->
    with_ent "sum(S)"
      (List.map2 (fun k r -> "colSums(" ^ k ^ ")*rowSums(" ^ r ^ ")") ks rs)
      " + "
  | Lmm _ ->
    with_ent "S*X[1:dS,]"
      (List.map2 (fun k r -> k ^ "*(" ^ r ^ "*X[slice,])") ks rs)
      " + "
  | Rmm _ ->
    "[" ^ with_ent "X*S"
      (List.map2 (fun k r -> "(X*" ^ k ^ ")*" ^ r) ks rs)
      ", " ^ "]"
  | Crossprod ->
    let diag =
      List.map2
        (fun k r ->
          Printf.sprintf "%s'diag(colSums %s)%s" r k r)
        ks rs
    in
    "block[" ^ with_ent "crossprod(S)" diag "; "
    ^ "; off-diagonals via (S'Ki)Ri and Ri'(Ki'Kj)Rj]"
  | Ginv ->
    let n, d = Normalized.dims t in
    if d < n then "ginv(crossprod(T)) * T'   [d < n branch]"
    else "T' * ginv(crossprod(T'))   [d >= n branch]"
  | Selection ->
    with_ent "mask(S)"
      (List.map2 (fun k r -> "mask(" ^ r ^ ") via " ^ k) ks rs)
      " & "
    ^ " -> select_rows   [selection pushed below join]"
  | Group_by ->
    "[" ^ with_ent "G'*S"
      (List.map2 (fun k r -> "count(G," ^ k ^ ")*" ^ r) ks rs)
      ", " ^ "]   [per-part count-matrix products]"

type report = {
  operator : string;
  rewrite : string;
  standard_flops : float;
  factorized_flops : float;
  predicted_speedup : float;
  decision : Decision.choice;
  tuple_ratio : float;
  feature_ratio : float;
}

let analyze ?tau ?rho t op =
  let dims = Decision.cost_dims t in
  let c = cost_op op in
  { operator = op_name op;
    rewrite = rewrite_formula t op;
    standard_flops = Cost.standard dims c;
    factorized_flops = Cost.factorized dims c;
    predicted_speedup = Cost.speedup dims c;
    decision = Decision.heuristic ?tau ?rho t;
    tuple_ratio = Normalized.tuple_ratio t;
    feature_ratio = Normalized.feature_ratio t }

let to_string r =
  Printf.sprintf
    "operator          : %s\n\
     rewrite           : %s\n\
     standard cost     : %.3g arithmetic ops\n\
     factorized cost   : %.3g arithmetic ops\n\
     predicted speedup : %.2fx\n\
     tuple ratio       : %.2f, feature ratio: %.2f\n\
     decision (3.7)    : %s"
    r.operator r.rewrite r.standard_flops r.factorized_flops
    r.predicted_speedup r.tuple_ratio r.feature_ratio
    (Decision.to_string r.decision)

let explain ?tau ?rho t op = to_string (analyze ?tau ?rho t op)

(* Describe the normalized matrix itself: shape, parts, storage. *)
let describe t =
  let buf = Buffer.create 256 in
  let n, d = Normalized.dims t in
  Buffer.add_string buf
    (Printf.sprintf "normalized matrix: %d x %d%s\n" n d
       (if Normalized.is_transposed t then " (transposed)" else "")) ;
  (match Normalized.ent t with
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf "  entity S: %d x %d (%s, %d stored)\n" (Mat.rows s)
         (Mat.cols s)
         (if Mat.is_sparse s then "sparse" else "dense")
         (Mat.storage_size s))
  | None -> Buffer.add_string buf "  no plain entity part (M:N shape)\n") ;
  List.iteri
    (fun i (p : Normalized.part) ->
      Buffer.add_string buf
        (Printf.sprintf "  part %d: indicator %d -> %d rows; attribute %d x %d (%s, %d stored)\n"
           (i + 1)
           (Indicator.rows p.Normalized.ind)
           (Indicator.cols p.Normalized.ind)
           (Mat.rows p.Normalized.mat) (Mat.cols p.Normalized.mat)
           (if Mat.is_sparse p.Normalized.mat then "sparse" else "dense")
           (Mat.storage_size p.Normalized.mat)))
    (Normalized.parts t) ;
  Buffer.add_string buf
    (Printf.sprintf "  stored scalars %d vs materialized %d (redundancy ratio %.2f)"
       (Normalized.storage_size t) (n * d)
       (Normalized.redundancy_ratio t)) ;
  (match Normalized.validate t with
  | [] -> Buffer.add_string buf "\n  invariants: ok"
  | problems ->
    Buffer.add_string buf "\n  invariants: VIOLATED" ;
    List.iter
      (fun p -> Buffer.add_string buf (Printf.sprintf "\n    - %s" p))
      problems) ;
  Buffer.contents buf

(* Narrate a checked plan: the expression, then — preorder — every node
   a rewrite rule fires on, with both cost estimates. A filter pushed
   below the join reads "selection pushed below join: per-table masks →
   select_rows", straight from the checker's annotation, so `morpheus
   check` output shows where the relational operators land in the
   factorized execution. *)
let describe_plan (r : Check.report) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "plan: %s\n" (Ast.to_string r.Check.expr)) ;
  List.iter
    (fun (a : Check.annot) ->
      match a.Check.a_rule with
      | None -> ()
      | Some rule ->
        let costs =
          match (a.Check.a_standard, a.Check.a_factorized) with
          | Some s, Some f ->
            Printf.sprintf "  [standard %.3g vs factorized %.3g]" s f
          | _ -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %s%s\n" a.Check.a_label rule costs))
    r.Check.nodes ;
  let std, fac = Check.totals r in
  Buffer.add_string buf
    (Printf.sprintf "  total: standard %.3g vs factorized %.3g arithmetic ops" std fac) ;
  Buffer.contents buf
