(* The normalized matrix (§3.1, §3.5, §3.6): the paper's new logical data
   type. A normalized matrix represents the join output
   T = [S, K₁R₁, …, K_qR_q] (star-schema PK-FK) or T = [I_S·S, I_R·R]
   (M:N join) without materializing it.

   One uniform representation covers all the paper's schema shapes: an
   optional plain entity part S plus a list of attribute parts (Iᵢ, Mᵢ),
   each an indicator matrix times a base-table feature matrix:

     T  =  [ S? | I₁M₁ | … | I_pM_p ]

   - single PK-FK join   : ent = Some S, parts = [(K, R)]
   - star multi-table    : ent = Some S, parts = [(K₁,R₁); …; (K_q,R_q)]
   - M:N join            : ent = None,   parts = [(I_S, S); (I_R, R)]

   A [trans] flag records logical transposition, exactly as §3.2
   describes ("we add a special binary flag"), so that transposed
   operators reuse the same class via the Appendix-A rules. *)

open Sparse

type part = { ind : Indicator.t; mat : Mat.t }

type body = {
  ent : Mat.t option; (* the entity feature matrix S, if attached plainly *)
  parts : part list; (* attribute parts, in column order *)
}

(* Memoized loop-invariant quantities (one lazy cell per operation).
   Every cell stores the result for the NON-transposed body — the
   public operators in {!Rewrite} dispatch on the transpose flag before
   touching a cell — so [Rewrite.transpose], which only flips the flag,
   can share the memo of its argument: crossprod(T) computed through
   [transpose (transpose t)] still hits the cache of [t]. Structural
   edits ([map_mats], [select_rows]) build fresh cells because they
   produce a different logical matrix. *)
type memo = {
  mc_crossprod : La.Dense.t La.Memo.cell; (* crossprod(T) = TᵀT, d×d *)
  mc_gram : La.Dense.t La.Memo.cell; (* crossprod(Tᵀ) = TTᵀ, n×n *)
  mc_row_sums : La.Dense.t La.Memo.cell; (* rowSums(T), n×1 *)
  mc_col_sums : La.Dense.t La.Memo.cell; (* colSums(T), 1×d *)
  mc_sum : float La.Memo.cell; (* sum(T) *)
  mc_row_sums_sq : La.Dense.t La.Memo.cell; (* rowSums(T²), n×1 *)
  mc_col_sums_sq : La.Dense.t La.Memo.cell; (* colSums(T²), 1×d *)
}

let fresh_memo () =
  { mc_crossprod = La.Memo.cell ();
    mc_gram = La.Memo.cell ();
    mc_row_sums = La.Memo.cell ();
    mc_col_sums = La.Memo.cell ();
    mc_sum = La.Memo.cell ();
    mc_row_sums_sq = La.Memo.cell ();
    mc_col_sums_sq = La.Memo.cell () }

type t = { body : body; trans : bool; names : string array option; memo : memo }

let memo t = t.memo
let body t = t.body
let is_transposed t = t.trans
let ent t = t.body.ent
let parts t = t.body.parts
let names t = t.names

(* ---- construction ---- *)

let check_body body =
  let base_rows =
    match (body.ent, body.parts) with
    | Some s, _ -> Mat.rows s
    | None, { ind; _ } :: _ -> Indicator.rows ind
    | None, [] -> invalid_arg "Normalized: empty"
  in
  List.iter
    (fun { ind; mat } ->
      if Indicator.rows ind <> base_rows then
        invalid_arg "Normalized: indicator row mismatch" ;
      if Indicator.cols ind <> Mat.rows mat then
        invalid_arg "Normalized: indicator/attribute dim mismatch")
    body.parts ;
  body

let make ?ent parts =
  { body = check_body { ent; parts = List.map (fun (ind, mat) -> { ind; mat }) parts };
    trans = false;
    names = None;
    memo = fresh_memo () }

(* Single PK-FK join (§3.1): TN = (S, K, R). *)
let pkfk ~s ~k ~r = make ~ent:s [ (k, r) ]

(* Star-schema multi-table PK-FK join (§3.5). *)
let star ~s ~parts = make ~ent:s parts

(* M:N join (§3.6): TN = (S, I_S, I_R, R); T = [I_S·S, I_R·R]. *)
let mn ~is_ ~s ~ir ~r = make [ (is_, s); (ir, r) ]

(* ---- logical dimensions of T (respecting the transpose flag) ---- *)

let base_rows body =
  match (body.ent, body.parts) with
  | Some s, _ -> Mat.rows s
  | None, { ind; _ } :: _ -> Indicator.rows ind
  | None, [] -> assert false

let base_cols body =
  let ent_cols = match body.ent with Some s -> Mat.cols s | None -> 0 in
  List.fold_left (fun acc { mat; _ } -> acc + Mat.cols mat) ent_cols body.parts

let rows t = if t.trans then base_cols t.body else base_rows t.body
let cols t = if t.trans then base_rows t.body else base_cols t.body
let dims t = (rows t, cols t)

(* Column ranges [lo, hi) of each block in T's column space: the entity
   block (if any) first, then each attribute part. Used by LMM to slice
   X "by the projection of w to the features from S (resp. R)" (§2). *)
let col_ranges body =
  let ent_cols = match body.ent with Some s -> Mat.cols s | None -> 0 in
  let ranges = ref [] in
  let off = ref ent_cols in
  List.iter
    (fun { mat; _ } ->
      let w = Mat.cols mat in
      ranges := (!off, !off + w) :: !ranges ;
      off := !off + w)
    body.parts ;
  ((0, ent_cols), List.rev !ranges)

(* Column names are metadata over the GLOBAL (non-transposed) column
   space [S-cols | part₁-cols | …]; they ride along through transposes,
   row subsets and scalar maps, and let predicates name encoded
   features instead of positions. Matrices without names answer to the
   positional defaults c0…c{d-1} (see Pred.resolve). *)
let with_names names t =
  let d = base_cols t.body in
  if Array.length names <> d then
    invalid_arg
      (Printf.sprintf "Normalized.with_names: %d names for %d columns"
         (Array.length names) d) ;
  { t with names = Some names }

(* Total stored scalars across base matrices — the "size of S and R put
   together" that the paper compares against size(T) (§3.3.1, §3.7).
   Indicators are excluded: their storage is one integer per row. *)
let storage_size t =
  let ent = match t.body.ent with Some s -> Mat.storage_size s | None -> 0 in
  List.fold_left (fun acc { mat; _ } -> acc + Mat.storage_size mat) ent t.body.parts

(* Redundancy ratio size(T) / (size(S)+size(R)): the speed-up predictor
   of §3.3.1. *)
let redundancy_ratio t =
  let n = base_rows t.body and d = base_cols t.body in
  float_of_int (n * d) /. float_of_int (max 1 (storage_size t))

(* Row subset T[idx, ] as a normalized matrix: select the rows of S and
   *compose* the indicator mappings — R is shared untouched, so the
   subset costs O(|idx|·d_S), not O(|idx|·d). This is what makes
   cross-validation folds and mini-batches (the paper's footnote-2 SGD
   future work) factorized operations. *)
let select_rows t idx =
  if t.trans then invalid_arg "Normalized.select_rows: transposed input" ;
  let n = base_rows t.body in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Normalized.select_rows: bad index")
    idx ;
  let ent = Option.map (fun s -> Mat.gather_rows s idx) t.body.ent in
  let parts =
    List.map
      (fun { ind; mat } ->
        let mapping = Indicator.mapping ind in
        let mapping' = Array.map (fun i -> mapping.(i)) idx in
        { ind = Indicator.create ~cols:(Indicator.cols ind) mapping'; mat })
      t.body.parts
  in
  { body = { ent; parts }; trans = false; names = t.names; memo = fresh_memo () }

(* Map every base matrix through [f], keeping structure — the shape of
   all element-wise scalar rewrites. The result is again a normalized
   matrix: the closure property that lets Morpheus "propagate the
   avoidance of data redundancy" (§3.2). *)
let map_mats f t =
  { t with
    body =
      { ent = Option.map f t.body.ent;
        parts = List.map (fun p -> { p with mat = f p.mat }) t.body.parts };
    (* a different logical matrix: do NOT share the source's memo *)
    memo = fresh_memo () }

(* Tuple ratio n_S/n_R and feature ratio d_R/d_S (§3.4). For multi-part
   schemas the attribute sides are aggregated, which reduces to the
   paper's definition in the two-table case. *)
let tuple_ratio t =
  let ns = float_of_int (base_rows t.body) in
  let nr =
    List.fold_left (fun acc { mat; _ } -> acc + Mat.rows mat) 0 t.body.parts
  in
  ns /. float_of_int (max 1 nr)

let feature_ratio t =
  let ds =
    match t.body.ent with
    | Some s -> Mat.cols s
    | None ->
      (* M:N: the entity table is carried as the first part *)
      (match t.body.parts with { mat; _ } :: _ -> Mat.cols mat | [] -> 0)
  in
  let dr =
    let all =
      List.fold_left (fun acc { mat; _ } -> acc + Mat.cols mat) 0 t.body.parts
    in
    match t.body.ent with Some _ -> all | None -> all - ds
  in
  float_of_int dr /. float_of_int (max 1 ds)

(* Total re-check of the structural invariants that [check_body]
   enforces at construction — plus the indicator key bounds, which only
   Indicator.create guards. Returns human-readable violations instead
   of raising, so the static checker (E004) and Explain.describe can
   report corruption on hand-built or mutated matrices. *)
let validate t =
  let body = t.body in
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let base =
    match (body.ent, body.parts) with
    | Some s, _ -> Some (Mat.rows s)
    | None, { ind; _ } :: _ -> Some (Indicator.rows ind)
    | None, [] ->
      add "empty: no entity part and no attribute parts" ;
      None
  in
  (match base with
  | Some 0 -> add "zero logical rows"
  | Some _ when base_cols body = 0 -> add "zero logical columns"
  | _ -> ()) ;
  List.iteri
    (fun i { ind; mat } ->
      let pi = i + 1 in
      (match base with
      | Some n when Indicator.rows ind <> n ->
        add "part %d: indicator has %d rows, expected %d" pi
          (Indicator.rows ind) n
      | _ -> ()) ;
      let keys = Indicator.cols ind in
      if keys <> Mat.rows mat then
        add "part %d: indicator addresses %d base rows but the attribute matrix has %d"
          pi keys (Mat.rows mat) ;
      let mapping = Indicator.mapping ind in
      let bad = ref None in
      Array.iteri
        (fun row key ->
          if !bad = None && (key < 0 || key >= keys) then bad := Some (row, key))
        mapping ;
      match !bad with
      | Some (row, key) ->
        add "part %d: indicator row %d maps to key %d, outside [0, %d)" pi row
          key keys
      | None -> ())
    body.parts ;
  List.rev !problems

let pp ppf t =
  let { ent; parts } = t.body in
  Fmt.pf ppf "@[normalized %dx%d%s: ent=%a, parts=[%a]@]" (rows t) (cols t)
    (if t.trans then " (transposed)" else "")
    (Fmt.option ~none:(Fmt.any "none") Mat.pp)
    ent
    (Fmt.list ~sep:Fmt.semi (fun ppf p ->
         Fmt.pf ppf "%a*%a" Indicator.pp p.ind Mat.pp p.mat))
    parts
