(** A deep-embedded LA expression language with automatic factorization
    — the OCaml rendering of Figure 1(c). Write the standard script
    against logical matrices; {!eval} dispatches every operator to the
    factorized rewrites when an operand is a normalized matrix, to plain
    kernels otherwise, and materializes only where the paper requires it
    (element-wise matrix ops, §3.3.7).

    The syntax itself lives in {!Ast} (re-exported here, with type
    equalities, so [Expr.t] and [Ast.t] interchange freely); the static
    analysis lives in {!Check}, of which {!shape_of} is a thin raising
    wrapper. *)

open La
open Sparse

type value = Ast.value =
  | Scalar of float
  | Regular of Mat.t
  | Normalized of Normalized.t

type t = Ast.t =
  | Const of value
  | Var of string
  | Scale of float * t
  | Add_scalar of float * t
  | Pow_scalar of t * float
  | Map_scalar of string * (float -> float) * t  (** named for printing *)
  | Transpose of t
  | Row_sums of t
  | Col_sums of t
  | Sum of t
  | Mult of t * t
  | Crossprod of t
  | Ginv of t
  | Add of t * t
  | Sub of t * t
  | Mul_elem of t * t
  | Div_elem of t * t
  | Filter of Pred.t * t
      (** relational selection σ_p(e) over named columns *)
  | Project of string list * t
      (** relational projection π_cols(e), set semantics *)
  | Group_agg of string list * Relalg.agg * t
      (** group-by aggregation γ_{keys; agg}(e) *)

(** {1 Constructors} *)

val scalar : float -> t
val regular : Mat.t -> t
val dense : Dense.t -> t
val normalized : Normalized.t -> t
val var : string -> t

val ( *@ ) : t -> t -> t
(** Matrix product (R's [%*%]). *)

val ( +@ ) : t -> t -> t
val ( -@ ) : t -> t -> t

val ( *.@ ) : float -> t -> t
(** Scalar multiple. *)

val tr : t -> t
(** Transpose. *)

val filter : Pred.t -> t -> t
val project : string list -> t -> t
val group_agg : string list -> Relalg.agg -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Simplification}

    Bottom-up local rules: double-transpose elimination, scalar fusion,
    transpose pushdown, and the Appendix-A aggregation swaps
    (rowSums(eᵀ) → colSums(e)ᵀ etc.). Semantics-preserving. *)

val simplify : t -> t

val optimize : ?env:(string * value) list -> t -> t
(** Matrix-chain-order optimization (the related-work companion to the
    rewrites: mmtimes / SystemML): reassociates every maximal product
    chain of length ≥ 3 by the classic dynamic program, with a cost
    model that charges normalized leaves their *factorized* LMM/RMM
    counts. Associativity-preserving. Leaf shapes are resolved by the
    checker's total analysis; chains containing scalar operands or
    unresolvable shapes are left as written and reported as W002 on
    {!Check.log_src}.

    Additionally recognizes the [σ_p(e)ᵀ · σ_p(e)] pattern
    ([Mult (Transpose a, b)] with [a] syntactically equal to [b],
    {!Ast.equal}) and rewrites it to [Crossprod a] — for a filtered
    normalized operand this runs the factorized masked cross-product
    with no materialized intermediate (docs/PLANNER.md). The
    relational pushdown rules themselves (filter fusion, selection
    below projection, projection collapse) live in {!Ast.simplify};
    [morpheus check --explain] runs both. *)

(** {1 Shape inference} *)

exception Type_error of string

type shape = S_scalar | S_mat of int * int

val shape_of : env:(string * value) list -> t -> shape
(** Raises {!Type_error} on dimension mismatches or unbound variables.
    A thin wrapper over {!Check.infer_shape} — the single
    shape-inference code path — raising the first (innermost, leftmost)
    error the checker diagnoses. *)

(** {1 Evaluation} *)

val eval : ?env:(string * value) list -> t -> value
(** Evaluate with automatic factorization. *)

val eval_dense : ?env:(string * value) list -> t -> Dense.t
val eval_scalar : ?env:(string * value) list -> t -> float

val eval_materialized : ?env:(string * value) list -> t -> value
(** Reference evaluator: every normalized leaf is materialized up
    front, so only plain kernels run — the "standard single-table
    script" baseline. *)

val as_dense : value -> Dense.t
val as_mat : value -> Mat.t
val as_scalar : value -> float
