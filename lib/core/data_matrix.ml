(* The abstract data-matrix interface that ML algorithms are written
   against. This is the OCaml rendering of the paper's key architectural
   move: in R, Morpheus overloads the LA operators on a new class so the
   *same* ML script runs over regular and normalized matrices; here the
   operators in this signature are the overloaded set (Table 1), and the
   ML algorithms in [lib/ml] are functors over it. Instantiating a
   functor with {!Regular_matrix} gives the standard single-table
   algorithm; with {!Factorized_matrix} the automatically factorized
   one — no algorithm code changes, which is the paper's entire point. *)

open La

module type S = sig
  type t

  val rows : t -> int
  val cols : t -> int

  (* element-wise scalar ops: closure, same logical matrix type *)
  val scale : float -> t -> t
  val add_scalar : float -> t -> t
  val pow : t -> float -> t
  val map_scalar : (float -> float) -> t -> t

  (* row selection: T[idx, ] as the same logical matrix type, so
     mini-batches, folds, and K-Means' seed rows stay factorized *)
  val select_rows : t -> int array -> t

  (* aggregations — memoized per matrix instance where the
     representation allows it (repeat calls cost zero flops) *)
  val row_sums : t -> Dense.t (* n×1 *)
  val col_sums : t -> Dense.t (* 1×d *)
  val sum : t -> float

  val row_sums_sq : t -> Dense.t
  (* rowSums(T²) as n×1 without materializing T²: the loop-invariant
     half of K-Means' distances, factorized per Rewrite.row_sums_sq *)

  (* multiplications: outputs are regular matrices *)
  val lmm : t -> Dense.t -> Dense.t (* T·X *)
  val rmm : Dense.t -> t -> Dense.t (* X·T *)
  val tlmm : t -> Dense.t -> Dense.t (* Tᵀ·X *)
  val crossprod : t -> Dense.t (* TᵀT *)

  (* inversion *)
  val ginv : t -> Dense.t

  val describe : t -> string
end
