(** End-to-end construction of normalized matrices from base tables —
    the §3.2 snippet ("S = read.csv; K = sparseMatrix(...);
    TN = NormalizedMatrix(...)") as a library: feature encoding,
    indicator construction, the §3.1/§3.6 trimming of tuples that don't
    contribute to the join, and target extraction. *)

open La
open Relational

type dataset = {
  matrix : Normalized.t;
  target : Dense.t option;  (** Y, from the entity table, if declared *)
}

val pkfk :
  ?sparse:bool -> s:Table.t -> fk:string -> r:Table.t -> pk:string -> unit ->
  dataset
(** Single PK-FK join: S(Y, X_S, K) ⋈ R(RID, X_R). *)

val star :
  ?sparse:bool -> s:Table.t -> atts:(string * Table.t * string) list ->
  unit -> dataset
(** Star-schema join; each attribute table comes as
    [(fk in S, table, its pk)]. *)

val mn :
  ?sparse:bool -> s:Table.t -> js:string -> r:Table.t -> jr:string -> unit ->
  dataset
(** M:N equi-join on [S.js = R.jr]. The target (if any) is mapped
    through I_S to align with the join output's rows. *)

val mn_chain :
  ?sparse:bool ->
  tables:Table.t list ->
  conditions:(string * string) list ->
  unit ->
  dataset
(** Multi-table M:N chain join (appendix E):
    T = R₁ ⋈ R₂ ⋈ … ⋈ R_q, where [conditions] links consecutive tables
    as [(column of Rⱼ, column of Rⱼ₊₁)]. The target, if any, lives on
    the first table. *)

val pkfk_of_csv :
  ?sparse:bool ->
  s_path:string ->
  s_roles:(string -> Schema.role) ->
  fk:string ->
  r_path:string ->
  r_roles:(string -> Schema.role) ->
  pk:string ->
  unit ->
  dataset
(** Load S.csv / R.csv with a role assignment per column name and build
    the PK-FK normalized matrix. *)
