(* The evaluator for the deep-embedded LA expression language — the
   OCaml rendering of Figure 1(c): the user writes the *standard*
   script against logical matrices; the evaluator dispatches every
   operator to the factorized rewrites when an operand is a normalized
   matrix, to plain kernels otherwise, and materializes only where the
   paper's rules require it (element-wise matrix ops, §3.3.7).

   The syntax lives in Ast (re-exported below); static analysis lives
   in Check, of which [shape_of] here is a thin raising wrapper — one
   shape-inference code path for the evaluator, the optimizer, and the
   plan checker.

   In the R prototype this dispatch is S4 operator overloading; a deep
   embedding additionally enables the algebraic simplifications of
   [Ast.simplify] and the chain-order optimization below, which an
   overloading-based design cannot see. *)

open La
open Sparse
include Ast

(* ---- shape inference ---- *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type shape = S_scalar | S_mat of int * int

(* Thin raising wrapper over the checker's total analysis: raise the
   first (innermost, leftmost) shape/type error, otherwise convert the
   abstract shape — fully resolved for concrete environments. *)
let shape_of ~env e =
  match Check.infer_shape ~env e with
  | Error msg -> raise (Type_error msg)
  | Ok Check.Scalar -> S_scalar
  | Ok (Check.Matrix (Some r, Some c)) -> S_mat (r, c)
  | Ok _ -> type_error "unresolved shape for %s" (to_string e)

(* ---- evaluation with automatic factorization ---- *)

let as_dense = function
  | Scalar _ -> type_error "expected a matrix, got a scalar"
  | Regular m -> Mat.dense m
  | Normalized n -> Materialize.to_dense n

let as_mat = function
  | Scalar _ -> type_error "expected a matrix, got a scalar"
  | Regular m -> m
  | Normalized n -> Materialize.to_mat n

let as_scalar = function
  | Scalar x -> x
  | Regular m when Mat.rows m = 1 && Mat.cols m = 1 -> Mat.get m 0 0
  | _ -> type_error "expected a scalar"

(* scalar-function application preserving normalization (closure). *)
let map_value f = function
  | Scalar x -> Scalar (f x)
  | Regular m -> Regular (Mat.map_scalar f m)
  | Normalized n -> Normalized (Rewrite.map_scalar f n)

(* Relational misuse (unknown column, transposed operand, …) surfaces
   as the evaluator's own exception, like every other type error. *)
let rel f = try f () with Relalg.Rel_error msg -> raise (Type_error msg)

let rec eval ?(env = []) e =
  let ev e = eval ~env e in
  match e with
  | Const v -> v
  | Var name -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> type_error "unbound variable %s" name)
  | Scale (x, e) -> (
    match ev e with
    | Scalar y -> Scalar (Stdlib.( *. ) x y)
    | Regular m -> Regular (Mat.scale x m)
    | Normalized n -> Normalized (Rewrite.scale x n))
  | Add_scalar (x, e) -> (
    match ev e with
    | Scalar y -> Scalar (x +. y)
    | Regular m -> Regular (Mat.add_scalar x m)
    | Normalized n -> Normalized (Rewrite.add_scalar x n))
  | Pow_scalar (e, p) -> (
    match ev e with
    | Scalar y -> Scalar (y ** p)
    | Regular m -> Regular (Mat.pow p m)
    | Normalized n -> Normalized (Rewrite.pow n p))
  | Map_scalar (_, f, e) -> map_value f (ev e)
  | Transpose e -> (
    match ev e with
    | Scalar x -> Scalar x
    | Regular m -> Regular (Mat.transpose m)
    | Normalized n -> Normalized (Rewrite.transpose n))
  | Row_sums e -> (
    match ev e with
    | Scalar _ -> type_error "rowSums of scalar"
    | Regular m -> Regular (Mat.of_dense (Mat.row_sums m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.row_sums n)))
  | Col_sums e -> (
    match ev e with
    | Scalar _ -> type_error "colSums of scalar"
    | Regular m -> Regular (Mat.of_dense (Mat.col_sums m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.col_sums n)))
  | Sum e -> (
    match ev e with
    | Scalar x -> Scalar x
    | Regular m -> Scalar (Mat.sum m)
    | Normalized n -> Scalar (Rewrite.sum n))
  | Mult (a, b) -> eval_mult (ev a) (ev b)
  | Crossprod e -> (
    match ev e with
    | Scalar x -> Scalar (x *. x)
    | Regular m -> Regular (Mat.of_dense (Mat.crossprod m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.crossprod n)))
  | Ginv e -> (
    match ev e with
    | Scalar x -> Scalar (if x = 0.0 then 0.0 else 1.0 /. x)
    | Regular m -> Regular (Mat.of_dense (Linalg.ginv (Mat.dense m)))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.ginv n)))
  | Add (a, b) -> eval_elementwise "+" Mat.add Rewrite.add_mat (ev a) (ev b)
  | Sub (a, b) -> eval_elementwise "-" Mat.sub Rewrite.sub_mat (ev a) (ev b)
  | Mul_elem (a, b) ->
    eval_elementwise "*" Mat.mul_elem Rewrite.mul_elem_mat (ev a) (ev b)
  | Div_elem (a, b) ->
    eval_elementwise "/" Mat.div_elem Rewrite.div_elem_mat (ev a) (ev b)
  (* Relational operators: the normalized paths never materialize the
     join (per-table masks, part pruning, count-matrix group-by —
     Relalg); Regular operands get the same semantics post hoc. *)
  | Filter (p, e) -> (
    match ev e with
    | Scalar _ -> type_error "filter of scalar"
    | Regular m -> Regular (rel (fun () -> Relalg.filter_mat m p))
    | Normalized n -> Normalized (rel (fun () -> Relalg.filter n p)))
  | Project (cols, e) -> (
    match ev e with
    | Scalar _ -> type_error "project of scalar"
    | Regular m -> Regular (rel (fun () -> Relalg.project_mat m cols))
    | Normalized n -> Normalized (rel (fun () -> Relalg.project n cols)))
  | Group_agg (keys, agg, e) -> (
    match ev e with
    | Scalar _ -> type_error "groupby of scalar"
    | Regular m ->
      Regular (Mat.of_dense (rel (fun () -> Relalg.group_agg_mat m ~keys agg)))
    | Normalized n ->
      Regular (Mat.of_dense (rel (fun () -> Relalg.group_agg n ~keys agg))))

(* Matrix product dispatch: the heart of the automatic factorization.
   Any combination involving a normalized operand routes to the LMM,
   RMM, or DMM rewrite; scalars distribute. *)
and eval_mult a b =
  match (a, b) with
  | Scalar x, v | v, Scalar x -> (
    match v with
    | Scalar y -> Scalar (Stdlib.( *. ) x y)
    | Regular m -> Regular (Mat.scale x m)
    | Normalized n -> Normalized (Rewrite.scale x n))
  | Regular m, Regular m' -> Regular (Mat.of_dense (Mat.mm m (Mat.dense m')))
  | Normalized n, Regular m ->
    Regular (Mat.of_dense (Rewrite.lmm n (Mat.dense m)))
  | Regular m, Normalized n ->
    Regular (Mat.of_dense (Rewrite.rmm (Mat.dense m) n))
  | Normalized n, Normalized n' -> Regular (Mat.of_dense (Dmm.mult n n'))

(* Element-wise matrix ops are non-factorizable (§3.3.7): a normalized
   operand is materialized. Scalar operands fall back to scalar ops. *)
and eval_elementwise name f_mat f_norm a b =
  match (a, b) with
  | Scalar x, Scalar y -> (
    Scalar
      (match name with
      | "+" -> x +. y
      | "-" -> x -. y
      | "*" -> Stdlib.( *. ) x y
      | "/" -> x /. y
      | _ -> assert false))
  | Scalar x, v | v, Scalar x when name = "+" -> map_value (fun y -> x +. y) v
  | v, Scalar x when name = "-" -> map_value (fun y -> y -. x) v
  | Scalar x, v | v, Scalar x when name = "*" ->
    map_value (fun y -> Stdlib.( *. ) x y) v
  | v, Scalar x when name = "/" -> map_value (fun y -> y /. x) v
  | Normalized n, v -> Regular (f_norm n (as_mat v))
  | v, Normalized n ->
    (* materialize the normalized side; order matters for - and / *)
    Regular (f_mat (as_mat v) (Materialize.to_mat n))
  | Regular m, Regular m' -> Regular (f_mat m m')
  | Scalar _, _ | _, Scalar _ ->
    type_error "elementwise %s between scalar and matrix unsupported" name

(* Evaluate to a dense matrix (convenience for callers and tests). *)
let eval_dense ?env e = as_dense (eval ?env e)

let eval_scalar ?env e = as_scalar (eval ?env e)

(* ---- matrix-chain-order optimization ----

   The paper's related work points at matrix-chain-product optimization
   (Matlab's mmtimes, SystemML) as a natural companion to factorized
   rewrites. [optimize] reassociates maximal Mult chains with the
   classic O(m³) dynamic program, using a cost model that knows about
   normalized operands: multiplying a normalized leaf on the left of an
   (k×c) argument costs the *factorized* LMM count, not n·k·c, so the
   chosen parenthesization reflects what will actually execute. *)

module Log = (val Logs.src_log Check.log_src)

let rec flatten_mult = function
  | Mult (a, b) -> flatten_mult a @ flatten_mult b
  | e -> [ e ]

let rec rebuild_mult = function
  | [ e ] -> e
  | es ->
    (* only used for even splits chosen by the DP *)
    let n = List.length es in
    let left = List.filteri (fun i _ -> i < n / 2) es in
    let right = List.filteri (fun i _ -> i >= n / 2) es in
    Mult (rebuild_mult left, rebuild_mult right)

(* Cost of multiplying a (r×k) segment by a (k×c) segment, where the
   left segment might be a single normalized leaf (factorized LMM) and
   the right likewise (factorized RMM). *)
let pair_cost left_seg right_seg r k c =
  let f = float_of_int in
  match (left_seg, right_seg) with
  | [ Const (Normalized t) ], _ when not (Normalized.is_transposed t) ->
    Cost.factorized (Decision.cost_dims t) (Cost.Lmm c)
  | _, [ Const (Normalized t) ] when not (Normalized.is_transposed t) ->
    Cost.factorized (Decision.cost_dims t) (Cost.Rmm r)
  | _ -> f r *. f k *. f c

(* The dims are resolved up front by the checker's *total* shape
   analysis (no exceptions as control flow): [None] means the chain has
   a scalar-shaped or unresolvable leaf and must be left as written. *)
let chain_leaf_dims ~env leaves =
  let dim_of leaf =
    match Check.infer_shape ~env leaf with
    | Ok (Check.Matrix (Some r, Some c)) -> Some (r, c)
    | Ok _ | Error _ -> None
  in
  let dims = List.map dim_of leaves in
  if List.for_all Option.is_some dims then
    Some (Array.of_list (List.map Option.get dims))
  else None

let chain_order ~dims leaves =
  let leaves = Array.of_list leaves in
  let m = Array.length leaves in
  (* dp.(i).(j) = (cost, split) for multiplying leaves i..j *)
  let cost = Array.make_matrix m m 0.0 in
  let split = Array.make_matrix m m 0 in
  for len = 2 to m do
    for i = 0 to m - len do
      let j = i + len - 1 in
      cost.(i).(j) <- infinity ;
      for s = i to j - 1 do
        let r = fst dims.(i) and k = snd dims.(s) and c = snd dims.(j) in
        let left_seg = Array.to_list (Array.sub leaves i (s - i + 1)) in
        let right_seg = Array.to_list (Array.sub leaves (s + 1) (j - s)) in
        let total =
          cost.(i).(s) +. cost.(s + 1).(j) +. pair_cost left_seg right_seg r k c
        in
        if total < cost.(i).(j) then begin
          cost.(i).(j) <- total ;
          split.(i).(j) <- s
        end
      done
    done
  done ;
  let rec build i j =
    if i = j then leaves.(i)
    else begin
      let s = split.(i).(j) in
      Mult (build i s, build (s + 1) j)
    end
  in
  build 0 (m - 1)

(* Reassociate every maximal matrix-product chain of length >= 3.
   Chains containing scalar-shaped or unresolvable operands are left as
   written, reported as W002 on the checker's log source. *)
let rec optimize ?(env = []) e =
  let opt = optimize ~env in
  match e with
  (* σ_p(e)ᵀ · σ_p(e) → crossprod(σ_p(e)): one factorized masked
     cross-product, no materialized intermediate. The syntactic-equality
     test (Ast.equal) makes this safe for any matching operand, not just
     filters. *)
  | Mult (Transpose a, b) when Ast.equal a b -> Crossprod (opt a)
  | Mult _ as chain -> (
    let leaves = List.map opt (flatten_mult chain) in
    if List.length leaves < 3 then rebuild_mult leaves
    else
      match chain_leaf_dims ~env leaves with
      | Some dims -> chain_order ~dims leaves
      | None ->
        Log.warn (fun m ->
            m
              "W002 product-chain order left unoptimized: scalar or \
               unresolvable shape in %s"
              (to_string chain)) ;
        (* keep the chain as written; resolvable sub-chains still get
           reordered by the recursive calls *)
        (match chain with
        | Mult (a, b) -> Mult (opt a, opt b)
        | _ -> rebuild_mult leaves))
  | Const _ | Var _ -> e
  | Scale (x, e) -> Scale (x, opt e)
  | Add_scalar (x, e) -> Add_scalar (x, opt e)
  | Pow_scalar (e, p) -> Pow_scalar (opt e, p)
  | Map_scalar (n, f, e) -> Map_scalar (n, f, opt e)
  | Transpose e -> Transpose (opt e)
  | Row_sums e -> Row_sums (opt e)
  | Col_sums e -> Col_sums (opt e)
  | Sum e -> Sum (opt e)
  | Crossprod e -> Crossprod (opt e)
  | Ginv e -> Ginv (opt e)
  | Add (a, b) -> Add (opt a, opt b)
  | Sub (a, b) -> Sub (opt a, opt b)
  | Mul_elem (a, b) -> Mul_elem (opt a, opt b)
  | Div_elem (a, b) -> Div_elem (opt a, opt b)
  | Filter (p, e) -> Filter (p, opt e)
  | Project (cols, e) -> Project (cols, opt e)
  | Group_agg (keys, agg, e) -> Group_agg (keys, agg, opt e)

(* Reference evaluator: materializes every normalized leaf up front and
   uses only plain kernels — the "standard single-table script". Tests
   compare [eval] against this to certify the automatic factorization
   end-to-end. *)
let eval_materialized ?(env = []) e =
  let material = function
    | Normalized n -> Regular (Materialize.to_mat n)
    | v -> v
  in
  let rec mat_leaves = function
    | Const v -> Const (material v)
    | Var name -> Var name
    | Scale (x, e) -> Scale (x, mat_leaves e)
    | Add_scalar (x, e) -> Add_scalar (x, mat_leaves e)
    | Pow_scalar (e, p) -> Pow_scalar (mat_leaves e, p)
    | Map_scalar (n, f, e) -> Map_scalar (n, f, mat_leaves e)
    | Transpose e -> Transpose (mat_leaves e)
    | Row_sums e -> Row_sums (mat_leaves e)
    | Col_sums e -> Col_sums (mat_leaves e)
    | Sum e -> Sum (mat_leaves e)
    | Mult (a, b) -> Mult (mat_leaves a, mat_leaves b)
    | Crossprod e -> Crossprod (mat_leaves e)
    | Ginv e -> Ginv (mat_leaves e)
    | Add (a, b) -> Add (mat_leaves a, mat_leaves b)
    | Sub (a, b) -> Sub (mat_leaves a, mat_leaves b)
    | Mul_elem (a, b) -> Mul_elem (mat_leaves a, mat_leaves b)
    | Div_elem (a, b) -> Div_elem (mat_leaves a, mat_leaves b)
    | Filter (p, e) -> Filter (p, mat_leaves e)
    | Project (cols, e) -> Project (cols, mat_leaves e)
    | Group_agg (keys, agg, e) -> Group_agg (keys, agg, mat_leaves e)
  in
  eval ~env:(List.map (fun (k, v) -> (k, material v)) env) (mat_leaves e)
