(* A deep-embedded LA expression language with automatic factorization —
   the OCaml rendering of Figure 1(c): the user writes the *standard*
   script against logical matrices; the evaluator dispatches every
   operator to the factorized rewrites when an operand is a normalized
   matrix, to plain kernels otherwise, and materializes only where the
   paper's rules require it (element-wise matrix ops, §3.3.7).

   In the R prototype this dispatch is S4 operator overloading; a deep
   embedding additionally enables the algebraic simplifications below
   (double-transpose elimination, scalar fusion, transpose pushdown),
   which an overloading-based design cannot see. *)

open La
open Sparse

type value =
  | Scalar of float
  | Regular of Mat.t
  | Normalized of Normalized.t

type t =
  | Const of value
  | Var of string
  | Scale of float * t (* x · e *)
  | Add_scalar of float * t
  | Pow_scalar of t * float
  | Map_scalar of string * (float -> float) * t (* named for printing *)
  | Transpose of t
  | Row_sums of t
  | Col_sums of t
  | Sum of t
  | Mult of t * t
  | Crossprod of t
  | Ginv of t
  | Add of t * t
  | Sub of t * t
  | Mul_elem of t * t
  | Div_elem of t * t

(* ---- convenience constructors ---- *)

let scalar x = Const (Scalar x)
let regular m = Const (Regular m)
let dense d = Const (Regular (Mat.of_dense d))
let normalized n = Const (Normalized n)
let var name = Var name

let ( *@ ) a b = Mult (a, b)
let ( +@ ) a b = Add (a, b)
let ( -@ ) a b = Sub (a, b)
let ( *.@ ) x e = Scale (x, e)
let tr e = Transpose e

(* ---- printing ---- *)

let rec pp ppf = function
  | Const (Scalar x) -> Fmt.pf ppf "%g" x
  | Const (Regular m) -> Fmt.pf ppf "[%dx%d]" (Mat.rows m) (Mat.cols m)
  | Const (Normalized n) ->
    Fmt.pf ppf "T<%dx%d>" (Normalized.rows n) (Normalized.cols n)
  | Var name -> Fmt.string ppf name
  | Scale (x, e) -> Fmt.pf ppf "(%g * %a)" x pp e
  | Add_scalar (x, e) -> Fmt.pf ppf "(%a + %g)" pp e x
  | Pow_scalar (e, p) -> Fmt.pf ppf "(%a ^ %g)" pp e p
  | Map_scalar (name, _, e) -> Fmt.pf ppf "%s(%a)" name pp e
  | Transpose e -> Fmt.pf ppf "%a'" pp e
  | Row_sums e -> Fmt.pf ppf "rowSums(%a)" pp e
  | Col_sums e -> Fmt.pf ppf "colSums(%a)" pp e
  | Sum e -> Fmt.pf ppf "sum(%a)" pp e
  | Mult (a, b) -> Fmt.pf ppf "(%a %%*%% %a)" pp a pp b
  | Crossprod e -> Fmt.pf ppf "crossprod(%a)" pp e
  | Ginv e -> Fmt.pf ppf "ginv(%a)" pp e
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul_elem (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div_elem (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b

let to_string e = Fmt.str "%a" pp e

(* ---- algebraic simplification ---- *)

(* One bottom-up pass of local rules:
   - (eᵀ)ᵀ → e
   - a·(b·e) → (a·b)·e            (scalar fusion)
   - (x·e)ᵀ → x·eᵀ                (transpose pushdown; exposes the
                                    Appendix-A rules underneath)
   - rowSums(eᵀ) → colSums(e)ᵀ and symmetrically (Appendix A)
   - sum(eᵀ) → sum(e)
   - crossprod(e) stays; ginv(ginv-free) stays. *)
let rec simplify e =
  let e =
    match e with
    | Const _ | Var _ -> e
    | Scale (x, e) -> Scale (x, simplify e)
    | Add_scalar (x, e) -> Add_scalar (x, simplify e)
    | Pow_scalar (e, p) -> Pow_scalar (simplify e, p)
    | Map_scalar (n, f, e) -> Map_scalar (n, f, simplify e)
    | Transpose e -> Transpose (simplify e)
    | Row_sums e -> Row_sums (simplify e)
    | Col_sums e -> Col_sums (simplify e)
    | Sum e -> Sum (simplify e)
    | Mult (a, b) -> Mult (simplify a, simplify b)
    | Crossprod e -> Crossprod (simplify e)
    | Ginv e -> Ginv (simplify e)
    | Add (a, b) -> Add (simplify a, simplify b)
    | Sub (a, b) -> Sub (simplify a, simplify b)
    | Mul_elem (a, b) -> Mul_elem (simplify a, simplify b)
    | Div_elem (a, b) -> Div_elem (simplify a, simplify b)
  in
  match e with
  | Transpose (Transpose e) -> e
  | Scale (x, Scale (y, e)) -> Scale (Stdlib.( *. ) x y, e)
  | Transpose (Scale (x, e)) -> Scale (x, simplify (Transpose e))
  | Row_sums (Transpose e) -> Transpose (Col_sums e)
  | Col_sums (Transpose e) -> Transpose (Row_sums e)
  | Sum (Transpose e) -> Sum e
  | e -> e

(* ---- shape inference ---- *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type shape = S_scalar | S_mat of int * int

let value_shape = function
  | Scalar _ -> S_scalar
  | Regular m -> S_mat (Mat.rows m, Mat.cols m)
  | Normalized n -> S_mat (Normalized.rows n, Normalized.cols n)

let rec shape_of ~env = function
  | Const v -> value_shape v
  | Var name -> (
    match List.assoc_opt name env with
    | Some v -> value_shape v
    | None -> type_error "unbound variable %s" name)
  | Scale (_, e) | Add_scalar (_, e) | Pow_scalar (e, _) | Map_scalar (_, _, e)
    ->
    shape_of ~env e
  | Transpose e -> (
    match shape_of ~env e with
    | S_scalar -> S_scalar
    | S_mat (r, c) -> S_mat (c, r))
  | Row_sums e -> (
    match shape_of ~env e with
    | S_scalar -> type_error "rowSums of scalar"
    | S_mat (r, _) -> S_mat (r, 1))
  | Col_sums e -> (
    match shape_of ~env e with
    | S_scalar -> type_error "colSums of scalar"
    | S_mat (_, c) -> S_mat (1, c))
  | Sum _ -> S_scalar
  | Mult (a, b) -> (
    match (shape_of ~env a, shape_of ~env b) with
    | S_scalar, s | s, S_scalar -> s
    | S_mat (r, k), S_mat (k', c) when k = k' -> S_mat (r, c)
    | S_mat (r, k), S_mat (k', c) ->
      type_error "product shape mismatch: %dx%d times %dx%d" r k k' c)
  | Crossprod e -> (
    match shape_of ~env e with
    | S_scalar -> S_scalar
    | S_mat (_, c) -> S_mat (c, c))
  | Ginv e -> (
    match shape_of ~env e with
    | S_scalar -> S_scalar
    | S_mat (r, c) -> S_mat (c, r))
  | Add (a, b) | Sub (a, b) | Mul_elem (a, b) | Div_elem (a, b) -> (
    match (shape_of ~env a, shape_of ~env b) with
    | s, s' when s = s' -> s
    | S_mat (r, c), S_mat (r', c') ->
      type_error "elementwise shape mismatch: %dx%d vs %dx%d" r c r' c'
    | _ -> type_error "elementwise op between scalar and matrix")

(* ---- evaluation with automatic factorization ---- *)

let as_dense = function
  | Scalar _ -> type_error "expected a matrix, got a scalar"
  | Regular m -> Mat.dense m
  | Normalized n -> Materialize.to_dense n

let as_mat = function
  | Scalar _ -> type_error "expected a matrix, got a scalar"
  | Regular m -> m
  | Normalized n -> Materialize.to_mat n

let as_scalar = function
  | Scalar x -> x
  | Regular m when Mat.rows m = 1 && Mat.cols m = 1 -> Mat.get m 0 0
  | _ -> type_error "expected a scalar"

(* scalar-function application preserving normalization (closure). *)
let map_value f = function
  | Scalar x -> Scalar (f x)
  | Regular m -> Regular (Mat.map_scalar f m)
  | Normalized n -> Normalized (Rewrite.map_scalar f n)

let rec eval ?(env = []) e =
  let ev e = eval ~env e in
  match e with
  | Const v -> v
  | Var name -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> type_error "unbound variable %s" name)
  | Scale (x, e) -> (
    match ev e with
    | Scalar y -> Scalar (Stdlib.( *. ) x y)
    | Regular m -> Regular (Mat.scale x m)
    | Normalized n -> Normalized (Rewrite.scale x n))
  | Add_scalar (x, e) -> (
    match ev e with
    | Scalar y -> Scalar (x +. y)
    | Regular m -> Regular (Mat.add_scalar x m)
    | Normalized n -> Normalized (Rewrite.add_scalar x n))
  | Pow_scalar (e, p) -> (
    match ev e with
    | Scalar y -> Scalar (y ** p)
    | Regular m -> Regular (Mat.pow p m)
    | Normalized n -> Normalized (Rewrite.pow n p))
  | Map_scalar (_, f, e) -> map_value f (ev e)
  | Transpose e -> (
    match ev e with
    | Scalar x -> Scalar x
    | Regular m -> Regular (Mat.transpose m)
    | Normalized n -> Normalized (Rewrite.transpose n))
  | Row_sums e -> (
    match ev e with
    | Scalar _ -> type_error "rowSums of scalar"
    | Regular m -> Regular (Mat.of_dense (Mat.row_sums m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.row_sums n)))
  | Col_sums e -> (
    match ev e with
    | Scalar _ -> type_error "colSums of scalar"
    | Regular m -> Regular (Mat.of_dense (Mat.col_sums m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.col_sums n)))
  | Sum e -> (
    match ev e with
    | Scalar x -> Scalar x
    | Regular m -> Scalar (Mat.sum m)
    | Normalized n -> Scalar (Rewrite.sum n))
  | Mult (a, b) -> eval_mult (ev a) (ev b)
  | Crossprod e -> (
    match ev e with
    | Scalar x -> Scalar (x *. x)
    | Regular m -> Regular (Mat.of_dense (Mat.crossprod m))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.crossprod n)))
  | Ginv e -> (
    match ev e with
    | Scalar x -> Scalar (if x = 0.0 then 0.0 else 1.0 /. x)
    | Regular m -> Regular (Mat.of_dense (Linalg.ginv (Mat.dense m)))
    | Normalized n -> Regular (Mat.of_dense (Rewrite.ginv n)))
  | Add (a, b) -> eval_elementwise "+" Mat.add Rewrite.add_mat (ev a) (ev b)
  | Sub (a, b) -> eval_elementwise "-" Mat.sub Rewrite.sub_mat (ev a) (ev b)
  | Mul_elem (a, b) ->
    eval_elementwise "*" Mat.mul_elem Rewrite.mul_elem_mat (ev a) (ev b)
  | Div_elem (a, b) ->
    eval_elementwise "/" Mat.div_elem Rewrite.div_elem_mat (ev a) (ev b)

(* Matrix product dispatch: the heart of the automatic factorization.
   Any combination involving a normalized operand routes to the LMM,
   RMM, or DMM rewrite; scalars distribute. *)
and eval_mult a b =
  match (a, b) with
  | Scalar x, v | v, Scalar x -> (
    match v with
    | Scalar y -> Scalar (Stdlib.( *. ) x y)
    | Regular m -> Regular (Mat.scale x m)
    | Normalized n -> Normalized (Rewrite.scale x n))
  | Regular m, Regular m' -> Regular (Mat.of_dense (Mat.mm m (Mat.dense m')))
  | Normalized n, Regular m ->
    Regular (Mat.of_dense (Rewrite.lmm n (Mat.dense m)))
  | Regular m, Normalized n ->
    Regular (Mat.of_dense (Rewrite.rmm (Mat.dense m) n))
  | Normalized n, Normalized n' -> Regular (Mat.of_dense (Dmm.mult n n'))

(* Element-wise matrix ops are non-factorizable (§3.3.7): a normalized
   operand is materialized. Scalar operands fall back to scalar ops. *)
and eval_elementwise name f_mat f_norm a b =
  match (a, b) with
  | Scalar x, Scalar y -> (
    Scalar
      (match name with
      | "+" -> x +. y
      | "-" -> x -. y
      | "*" -> Stdlib.( *. ) x y
      | "/" -> x /. y
      | _ -> assert false))
  | Scalar x, v | v, Scalar x when name = "+" -> map_value (fun y -> x +. y) v
  | v, Scalar x when name = "-" -> map_value (fun y -> y -. x) v
  | Scalar x, v | v, Scalar x when name = "*" ->
    map_value (fun y -> Stdlib.( *. ) x y) v
  | v, Scalar x when name = "/" -> map_value (fun y -> y /. x) v
  | Normalized n, v -> Regular (f_norm n (as_mat v))
  | v, Normalized n ->
    (* materialize the normalized side; order matters for - and / *)
    Regular (f_mat (as_mat v) (Materialize.to_mat n))
  | Regular m, Regular m' -> Regular (f_mat m m')
  | Scalar _, _ | _, Scalar _ ->
    type_error "elementwise %s between scalar and matrix unsupported" name

(* Evaluate to a dense matrix (convenience for callers and tests). *)
let eval_dense ?env e = as_dense (eval ?env e)

let eval_scalar ?env e = as_scalar (eval ?env e)

(* ---- matrix-chain-order optimization ----

   The paper's related work points at matrix-chain-product optimization
   (Matlab's mmtimes, SystemML) as a natural companion to factorized
   rewrites. [optimize] reassociates maximal Mult chains with the
   classic O(m³) dynamic program, using a cost model that knows about
   normalized operands: multiplying a normalized leaf on the left of an
   (k×c) argument costs the *factorized* LMM count, not n·k·c, so the
   chosen parenthesization reflects what will actually execute. *)

let rec flatten_mult = function
  | Mult (a, b) -> flatten_mult a @ flatten_mult b
  | e -> [ e ]

let rec rebuild_mult = function
  | [ e ] -> e
  | es ->
    (* only used for even splits chosen by the DP *)
    let n = List.length es in
    let left = List.filteri (fun i _ -> i < n / 2) es in
    let right = List.filteri (fun i _ -> i >= n / 2) es in
    Mult (rebuild_mult left, rebuild_mult right)

(* Cost of multiplying a (r×k) segment by a (k×c) segment, where the
   left segment might be a single normalized leaf (factorized LMM) and
   the right likewise (factorized RMM). *)
let pair_cost left_seg right_seg r k c =
  let f = float_of_int in
  match (left_seg, right_seg) with
  | [ Const (Normalized t) ], _ when not (Normalized.is_transposed t) ->
    Cost.factorized (Decision.cost_dims t) (Cost.Lmm c)
  | _, [ Const (Normalized t) ] when not (Normalized.is_transposed t) ->
    Cost.factorized (Decision.cost_dims t) (Cost.Rmm r)
  | _ -> f r *. f k *. f c

let chain_order ~env leaves =
  let leaves = Array.of_list leaves in
  let m = Array.length leaves in
  let dims =
    Array.map
      (fun e ->
        match shape_of ~env e with
        | S_mat (r, c) -> (r, c)
        | S_scalar -> raise Exit)
      leaves
  in
  (* dp.(i).(j) = (cost, split) for multiplying leaves i..j *)
  let cost = Array.make_matrix m m 0.0 in
  let split = Array.make_matrix m m 0 in
  for len = 2 to m do
    for i = 0 to m - len do
      let j = i + len - 1 in
      cost.(i).(j) <- infinity ;
      for s = i to j - 1 do
        let r = fst dims.(i) and k = snd dims.(s) and c = snd dims.(j) in
        let left_seg = Array.to_list (Array.sub leaves i (s - i + 1)) in
        let right_seg = Array.to_list (Array.sub leaves (s + 1) (j - s)) in
        let total =
          cost.(i).(s) +. cost.(s + 1).(j) +. pair_cost left_seg right_seg r k c
        in
        if total < cost.(i).(j) then begin
          cost.(i).(j) <- total ;
          split.(i).(j) <- s
        end
      done
    done
  done ;
  let rec build i j =
    if i = j then leaves.(i)
    else begin
      let s = split.(i).(j) in
      Mult (build i s, build (s + 1) j)
    end
  in
  build 0 (m - 1)

(* Reassociate every maximal matrix-product chain of length >= 3; chains
   containing scalar-shaped operands are left as written. *)
let rec optimize ?(env = []) e =
  let opt = optimize ~env in
  match e with
  | Mult _ as chain -> (
    let leaves = List.map opt (flatten_mult chain) in
    if List.length leaves < 3 then rebuild_mult leaves
    else
      match chain_order ~env leaves with
      | reassociated -> reassociated
      | exception (Exit | Type_error _) -> rebuild_mult leaves)
  | Const _ | Var _ -> e
  | Scale (x, e) -> Scale (x, opt e)
  | Add_scalar (x, e) -> Add_scalar (x, opt e)
  | Pow_scalar (e, p) -> Pow_scalar (opt e, p)
  | Map_scalar (n, f, e) -> Map_scalar (n, f, opt e)
  | Transpose e -> Transpose (opt e)
  | Row_sums e -> Row_sums (opt e)
  | Col_sums e -> Col_sums (opt e)
  | Sum e -> Sum (opt e)
  | Crossprod e -> Crossprod (opt e)
  | Ginv e -> Ginv (opt e)
  | Add (a, b) -> Add (opt a, opt b)
  | Sub (a, b) -> Sub (opt a, opt b)
  | Mul_elem (a, b) -> Mul_elem (opt a, opt b)
  | Div_elem (a, b) -> Div_elem (opt a, opt b)

(* Reference evaluator: materializes every normalized leaf up front and
   uses only plain kernels — the "standard single-table script". Tests
   compare [eval] against this to certify the automatic factorization
   end-to-end. *)
let eval_materialized ?(env = []) e =
  let material = function
    | Normalized n -> Regular (Materialize.to_mat n)
    | v -> v
  in
  let rec mat_leaves = function
    | Const v -> Const (material v)
    | Var name -> Var name
    | Scale (x, e) -> Scale (x, mat_leaves e)
    | Add_scalar (x, e) -> Add_scalar (x, mat_leaves e)
    | Pow_scalar (e, p) -> Pow_scalar (mat_leaves e, p)
    | Map_scalar (n, f, e) -> Map_scalar (n, f, mat_leaves e)
    | Transpose e -> Transpose (mat_leaves e)
    | Row_sums e -> Row_sums (mat_leaves e)
    | Col_sums e -> Col_sums (mat_leaves e)
    | Sum e -> Sum (mat_leaves e)
    | Mult (a, b) -> Mult (mat_leaves a, mat_leaves b)
    | Crossprod e -> Crossprod (mat_leaves e)
    | Ginv e -> Ginv (mat_leaves e)
    | Add (a, b) -> Add (mat_leaves a, mat_leaves b)
    | Sub (a, b) -> Sub (mat_leaves a, mat_leaves b)
    | Mul_elem (a, b) -> Mul_elem (mat_leaves a, mat_leaves b)
    | Div_elem (a, b) -> Div_elem (mat_leaves a, mat_leaves b)
  in
  eval ~env:(List.map (fun (k, v) -> (k, material v)) env) (mat_leaves e)
