(* When are rewrites faster? (§3.7, §5.1.) The paper's heuristic
   decision rule is a disjunctive predicate on the tuple ratio
   TR = n_S/n_R and feature ratio FR = d_R/d_S: "if the tuple ratio is
   < τ or if the feature ratio is < ρ, we do not use F", with the
   conservative thresholds τ = 5 and ρ = 1 tuned on the synthetic
   sweeps. A cost-model alternative (which the paper rejects for
   violating genericity, but which we keep for the ablation bench) is
   also provided. *)

let log_src = Logs.Src.create "morpheus.decision" ~doc:"execution-path decisions"

module Log = (val Logs.src_log log_src)

type choice = Factorized | Materialized

let default_tau = 5.0
let default_rho = 1.0

(* The paper's heuristic rule. *)
let heuristic ?(tau = default_tau) ?(rho = default_rho) t =
  let tr = Normalized.tuple_ratio t in
  let fr = Normalized.feature_ratio t in
  let choice = if tr < tau || fr < rho then Materialized else Factorized in
  Log.debug (fun m ->
      m "heuristic: TR=%.2f FR=%.2f (tau=%.1f rho=%.1f) -> %s" tr fr tau rho
        (match choice with Factorized -> "factorized" | Materialized -> "materialized")) ;
  choice

(* Cost-model rule: compare Table-3 arithmetic counts for a
   representative operator (LMM with a single weight vector, the
   dominant operation of GLMs). Two-table PK-FK dims are extracted from
   the normalized matrix; multi-part schemas aggregate attribute sides. *)
let cost_dims t =
  let ns = if Normalized.is_transposed t then Normalized.cols t else Normalized.rows t in
  let ds =
    match Normalized.ent t with
    | Some s -> Sparse.Mat.cols s
    | None -> (
      match Normalized.parts t with
      | p :: _ -> Sparse.Mat.cols p.Normalized.mat
      | [] -> 0)
  in
  let nr, dr =
    List.fold_left
      (fun (nr, dr) (p : Normalized.part) ->
        (nr + Sparse.Mat.rows p.Normalized.mat, dr + Sparse.Mat.cols p.Normalized.mat))
      (0, 0) (Normalized.parts t)
  in
  let dr = match Normalized.ent t with Some _ -> dr | None -> dr - ds in
  { Cost.ns; ds; nr; dr }

(* One-shot bridge from the autotuner: the first cost-based decision
   copies the measured constants out of the resolved La.Tune profile
   (written by [morpheus tune]) into Cost's calibration. An unmeasured
   profile (the 0.0 sentinels) leaves Cost uncalibrated, which keeps
   the historical pure flops-ratio rule. *)
let calibration_synced = ref false

let sync_calibration () =
  if not !calibration_synced then begin
    calibration_synced := true ;
    let p = La.Tune.current () in
    if p.La.Tune.flops_per_sec > 0.0 then
      Cost.set_calibration
        { Cost.flops_per_sec = p.La.Tune.flops_per_sec;
          dispatch_overhead = p.La.Tune.dispatch_overhead }
  end

(* Seconds-based when a calibration has been measured (dispatch
   overhead then penalizes the factorized path's extra kernel batches
   on tiny inputs); identical to the historical flops-ratio rule when
   uncalibrated. *)
let cost_based ?(op = Cost.Lmm 1) ?(threads = 1) t =
  sync_calibration () ;
  let dims = cost_dims t in
  if Cost.speedup_measured ~threads dims op > 1.0 then Factorized
  else Materialized

let to_string = function
  | Factorized -> "factorized"
  | Materialized -> "materialized"
