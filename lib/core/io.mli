(** Persistence for normalized matrices: save/load the (S, Kᵢ, Rᵢ)
    components to a directory (binary, O(nnz) for sparse parts), so a
    normalized dataset is prepared once and reused — the durable
    counterpart of §3.2's construction snippet.

    Every file is framed with a magic + format-version header and
    written atomically (tmp sibling + rename); [meta] is written last,
    so a crashed save never leaves a loadable-but-partial directory. *)

open Sparse

exception Corrupt of string
(** A file exists but is not a valid Morpheus payload: wrong magic,
    unsupported format version, mismatched payload kind, or a truncated
    / damaged body. Distinct from [Invalid_argument] (caller misuse:
    saving a transposed matrix, loading a directory that holds
    nothing). *)

val save : dir:string -> Normalized.t -> unit
(** Persist a (non-transposed) normalized matrix. Creates [dir].
    Column names ({!Normalized.names}), when present, are written to a
    [columns] sidecar (one name per line, before the [meta] commit
    point) so server-side predicates resolve against the same names. *)

val load : dir:string -> Normalized.t
(** Load a matrix saved by {!save}; raises [Invalid_argument] if the
    directory does not hold one and {!Corrupt} if it does but the files
    are damaged. A missing [columns] sidecar (pre-sidecar datasets)
    loads with names [None] — the positional defaults apply. *)

val delete : dir:string -> unit
(** Remove a saved matrix's files and directory. *)

(** {1 Framed payload files}

    The building blocks behind {!save}/{!load}, exposed so other
    on-disk formats (the model registry in [lib/serve]) share the same
    magic, versioning, atomicity, and corruption discipline. *)

val write_payload : kind:string -> string -> 'a -> unit
(** [write_payload ~kind path v] writes a header line
    ["MORPHEUS-BIN v1 <kind>"] followed by [v] marshalled, atomically
    (tmp + rename). [kind] must not contain spaces or newlines. *)

val read_payload : kind:string -> string -> 'a
(** Read a payload written by {!write_payload} with the same [kind];
    raises {!Corrupt} on foreign, truncated, version-mismatched, or
    wrongly-tagged files. The caller asserts the payload type, as with
    [Marshal]. *)

val write_text_atomic : string -> string -> unit
(** [write_text_atomic path contents] writes a text file atomically
    (tmp sibling + rename). *)

val write_mat : string -> Mat.t -> unit
(** A single regular matrix as a framed payload (dense values or sparse
    triplets). *)

val read_mat : string -> Mat.t
