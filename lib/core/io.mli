(** Persistence for normalized matrices: save/load the (S, Kᵢ, Rᵢ)
    components to a directory (binary, O(nnz) for sparse parts), so a
    normalized dataset is prepared once and reused — the durable
    counterpart of §3.2's construction snippet. *)

val save : dir:string -> Normalized.t -> unit
(** Persist a (non-transposed) normalized matrix. Creates [dir]. *)

val load : dir:string -> Normalized.t
(** Load a matrix saved by {!save}; raises [Invalid_argument] if the
    directory does not hold one. *)

val delete : dir:string -> unit
(** Remove a saved matrix's files and directory. *)
