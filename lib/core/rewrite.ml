(* Factorized linear-algebra operators (§3.3, §3.5, §3.6, appendices A,
   C–E): every operation of the paper's Table 1 executed over a
   normalized matrix without materializing the join.

   Notation note: all internal [_nt] functions operate on the
   non-transposed body; the public functions first dispatch on the
   transpose flag using the Appendix-A rules, e.g.
   TᵀX → (XᵀT)ᵀ and crossprod(Tᵀ) → S·cp(Sᵀ)-style Gram rewrites. *)

open La
open Sparse
open Normalized

(* Kᵀ · M for either representation of M. *)
let ind_tmult ind = function
  | Mat.D d -> Indicator.tmult ind d
  | Mat.S c -> Indicator.tmult_csr ind c

(* Aᵀ · B where A is dense and B is a Mat. *)
let dense_tmm a b =
  match b with
  | Mat.D d -> Blas.tgemm a d
  | Mat.S c -> Dense.transpose (Csr.t_smm c a)

(* ------------------------------------------------------------------ *)
(* Element-wise scalar operators (§3.3.1): closure — the result is a
   normalized matrix with the same structure. *)

let scale x t = map_mats (Mat.scale x) t

let add_scalar x t = map_mats (Mat.add_scalar x) t

let pow t p = map_mats (Mat.pow p) t

(* T^2, the special case K-Means uses. *)
let sq t = map_mats Mat.sq t

(* f(T) for a scalar function f. *)
let map_scalar f t = map_mats (Mat.map_scalar f) t

let exp t = map_mats Mat.exp t

(* Transpose (§3.2): flip the flag; no data is touched. *)
let transpose t = { t with trans = not t.trans }

(* ------------------------------------------------------------------ *)
(* Aggregations (§3.3.2, extended per §3.5 and appendix D):
     rowSums(T) → rowSums(S) + Σᵢ Kᵢ·rowSums(Rᵢ)
     colSums(T) → [colSums(S), colSums(Kᵢ)·Rᵢ, …]
     sum(T)     → sum(S) + Σᵢ colSums(Kᵢ)·rowSums(Rᵢ) *)

let row_sums_nt body =
  let n = base_rows body in
  let acc =
    match body.ent with
    | Some s -> Dense.col_to_array (Mat.row_sums s)
    | None -> Array.make n 0.0
  in
  List.iter
    (fun { ind; mat } ->
      let part = Dense.col_to_array (Mat.row_sums mat) in
      let gathered = Indicator.gather ind part in
      Flops.add n ;
      for i = 0 to n - 1 do
        acc.(i) <- acc.(i) +. gathered.(i)
      done)
    body.parts ;
  Dense.of_col_array acc

let col_sums_nt body =
  let blocks =
    (match body.ent with Some s -> [ Mat.col_sums s ] | None -> [])
    @ List.map
        (fun { ind; mat } ->
          let counts = Dense.of_row_array (Indicator.col_counts ind) in
          Mat.mm_left counts mat)
        body.parts
  in
  Dense.hcat blocks

let sum_nt body =
  let ent = match body.ent with Some s -> Mat.sum s | None -> 0.0 in
  List.fold_left
    (fun acc { ind; mat } ->
      let counts = Indicator.col_counts ind in
      let rs = Dense.col_to_array (Mat.row_sums mat) in
      acc +. Blas.dot counts rs)
    ent body.parts

(* Squared body (S², Rᵢ²) sharing indicators: squaring distributes over
   the gather K·R, so aggregations of T² reduce to aggregations of the
   squared *base* matrices — O(size(S)+Σ size(Rᵢ)) work, never O(n·d). *)
let sq_body body =
  { ent = Option.map Mat.sq body.ent;
    parts = List.map (fun p -> { p with mat = Mat.sq p.mat }) body.parts }

(* rowSums(T²) = rowSums(S²) + Σᵢ Kᵢ·rowSums(Rᵢ²) — the loop-invariant
   half of K-Means' distance computation (Algorithm 4's rowSums(T^2)). *)
let row_sums_sq_nt body = row_sums_nt (sq_body body)

(* colSums(T²) = [colSums(S²), colSums(Kᵢ)·Rᵢ², …] — per-column squared
   norms, e.g. for feature scaling. *)
let col_sums_sq_nt body = col_sums_nt (sq_body body)

(* ------------------------------------------------------------------ *)
(* Memoized dispatch. Every public aggregation/cross-product first
   resolves the transpose flag (Appendix A), then serves the result from
   the matrix's invariant cells (Normalized.memo): the cells are keyed
   to the non-transposed body, so a transpose — which only flips the
   flag and shares the memo — still hits the same cache. Cache hits run
   no kernel and count zero flops; callers must not mutate returned
   matrices (they are shared). *)

(* Appendix A: colSums(Tᵀ) → rowSums(T)ᵀ, rowSums(Tᵀ) → colSums(T)ᵀ. *)
let row_sums t =
  if t.trans then
    Dense.transpose (Memo.force t.memo.mc_col_sums (fun () -> col_sums_nt t.body))
  else Memo.force t.memo.mc_row_sums (fun () -> row_sums_nt t.body)

let col_sums t =
  if t.trans then
    Dense.transpose (Memo.force t.memo.mc_row_sums (fun () -> row_sums_nt t.body))
  else Memo.force t.memo.mc_col_sums (fun () -> col_sums_nt t.body)

let sum t = Memo.force t.memo.mc_sum (fun () -> sum_nt t.body)

(* rowSums(T²) and colSums(T²), with the same Appendix-A flip:
   rowSums((Tᵀ)²) = colSums(T²)ᵀ. *)
let row_sums_sq t =
  if t.trans then
    Dense.transpose
      (Memo.force t.memo.mc_col_sums_sq (fun () -> col_sums_sq_nt t.body))
  else Memo.force t.memo.mc_row_sums_sq (fun () -> row_sums_sq_nt t.body)

let col_sums_sq t =
  if t.trans then
    Dense.transpose
      (Memo.force t.memo.mc_row_sums_sq (fun () -> row_sums_sq_nt t.body))
  else Memo.force t.memo.mc_col_sums_sq (fun () -> col_sums_sq_nt t.body)

(* ------------------------------------------------------------------ *)
(* LMM (§3.3.3 / §3.5): TX → S·X[1:dS,] + Σᵢ Kᵢ(Rᵢ·X[d'ᵢ₋₁+1:d'ᵢ,]).
   The multiplication order Kᵢ(RᵢX) — never (KᵢRᵢ)X — is what avoids
   the computational redundancy of the join. *)

let lmm_nt body x =
  let n = base_rows body and d = base_cols body in
  if Dense.rows x <> d then
    invalid_arg
      (Printf.sprintf "Rewrite.lmm: T is %dx%d but X has %d rows" n d
         (Dense.rows x)) ;
  let (ent_lo, ent_hi), ranges = col_ranges body in
  let acc =
    match body.ent with
    | Some s -> Mat.mm s (Dense.sub_rows x ~lo:ent_lo ~hi:ent_hi)
    | None -> Dense.create n (Dense.cols x)
  in
  List.iter2
    (fun { ind; mat } (lo, hi) ->
      let z = Mat.mm mat (Dense.sub_rows x ~lo ~hi) in
      Indicator.gather_add ind z acc)
    body.parts ranges ;
  acc

(* RMM (§3.3.4 / §3.5): XT → [X·S, (X·K₁)R₁, …, (X·K_q)R_q]. *)
let rmm_nt x body =
  let n = base_rows body in
  if Dense.cols x <> n then
    invalid_arg
      (Printf.sprintf "Rewrite.rmm: X has %d cols but T has %d rows"
         (Dense.cols x) n) ;
  let blocks =
    (match body.ent with Some s -> [ Mat.mm_left x s ] | None -> [])
    @ List.map
        (fun { ind; mat } -> Mat.mm_left (Indicator.xmult x ind) mat)
        body.parts
  in
  Dense.hcat blocks

(* Appendix A: TᵀX → (XᵀT)ᵀ and XTᵀ → (TXᵀ)ᵀ. *)
let lmm t x =
  if t.trans then Dense.transpose (rmm_nt (Dense.transpose x) t.body)
  else lmm_nt t.body x

let rmm x t =
  if t.trans then Dense.transpose (lmm_nt t.body (Dense.transpose x))
  else rmm_nt x t.body

(* Tᵀ·X without wrapping in two explicit transposes at call sites; this
   is the "transposed LMM" the ML algorithms in §4 rely on. *)
let tlmm t x = lmm (transpose t) x

(* ------------------------------------------------------------------ *)
(* Cross-product (§3.3.5 / §3.5): crossprod(T) = TᵀT as a block matrix.

   Efficient method (Algorithm 2):
   - diagonal attribute blocks: crossprod(diag(colSums Kᵢ)^½ Rᵢ),
     computed here as the weighted cross-product Rᵢᵀ·diag(counts)·Rᵢ;
   - entity block: crossprod(S);
   - S-vs-Rᵢ blocks: (SᵀKᵢ)Rᵢ;
   - Rᵢ-vs-Rⱼ blocks: Rᵢᵀ(KᵢᵀKⱼ)Rⱼ with the co-occurrence matrix
     P = KᵢᵀKⱼ formed first (appendix C's order). *)

type group = G_ent of Mat.t | G_part of part

let groups body =
  (match body.ent with Some s -> [ G_ent s ] | None -> [])
  @ List.map (fun p -> G_part p) body.parts

let group_cols = function G_ent s -> Mat.cols s | G_part p -> Mat.cols p.mat

(* The block gᵢᵀ·gⱼ of TᵀT for two distinct column groups. *)
let cross_block gi gj =
  match (gi, gj) with
  | G_ent s, G_ent s' -> dense_tmm (Mat.dense s) s' (* unused: i<j only *)
  | G_ent s, G_part { ind; mat } ->
    (* Sᵀ(K·R) = (KᵀS)ᵀ·R *)
    let g = ind_tmult ind s in
    dense_tmm g mat
  | G_part { ind; mat }, G_ent s ->
    let g = ind_tmult ind s in
    Mat.tmm mat g
  | G_part a, G_part b ->
    let p = Indicator.cross a.ind b.ind in
    let q =
      match b.mat with
      | Mat.D d -> Coo.mult p d
      | Mat.S c -> Coo.mult_csr p c
    in
    Mat.tmm a.mat q

let crossprod_nt body =
  let gs = Array.of_list (groups body) in
  let widths = Array.map group_cols gs in
  let d = Array.fold_left ( + ) 0 widths in
  let offsets = Array.make (Array.length gs) 0 in
  for i = 1 to Array.length gs - 1 do
    offsets.(i) <- offsets.(i - 1) + widths.(i - 1)
  done ;
  let out = Dense.create d d in
  Array.iteri
    (fun i gi ->
      (* diagonal block *)
      let diag =
        match gi with
        | G_ent s -> Mat.crossprod s
        | G_part { ind; mat } ->
          Mat.weighted_crossprod mat (Indicator.col_counts ind)
      in
      Dense.blit_block ~src:diag ~dst:out ~row:offsets.(i) ~col:offsets.(i) ;
      (* upper-right blocks, mirrored *)
      for j = i + 1 to Array.length gs - 1 do
        let b = cross_block gi gs.(j) in
        Dense.blit_block ~src:b ~dst:out ~row:offsets.(i) ~col:offsets.(j) ;
        Dense.blit_block ~src:(Dense.transpose b) ~dst:out ~row:offsets.(j)
          ~col:offsets.(i)
      done)
    gs ;
  out

(* Naive method (Algorithm 1 / appendix Algorithm 9), kept for the
   ablation bench: SᵀS without the symmetry saving and
   Rᵀ((KᵀK)R) instead of the weighted cross-product. *)
let crossprod_naive_nt body =
  let gs = Array.of_list (groups body) in
  let widths = Array.map group_cols gs in
  let d = Array.fold_left ( + ) 0 widths in
  let offsets = Array.make (Array.length gs) 0 in
  for i = 1 to Array.length gs - 1 do
    offsets.(i) <- offsets.(i - 1) + widths.(i - 1)
  done ;
  let out = Dense.create d d in
  Array.iteri
    (fun i gi ->
      let diag =
        match gi with
        | G_ent s -> dense_tmm (Mat.dense s) s
        | G_part { ind; mat } ->
          let p = Indicator.cross ind ind in
          let q =
            match mat with
            | Mat.D dm -> Coo.mult p dm
            | Mat.S c -> Coo.mult_csr p c
          in
          Mat.tmm mat q
      in
      Dense.blit_block ~src:diag ~dst:out ~row:offsets.(i) ~col:offsets.(i) ;
      for j = i + 1 to Array.length gs - 1 do
        let b = cross_block gi gs.(j) in
        Dense.blit_block ~src:b ~dst:out ~row:offsets.(i) ~col:offsets.(j) ;
        Dense.blit_block ~src:(Dense.transpose b) ~dst:out ~row:offsets.(j)
          ~col:offsets.(i)
      done)
    gs ;
  out

(* Gram matrix crossprod(Tᵀ) = T·Tᵀ (appendix A / D):
   crossprod(Tᵀ) → S·cp(Sᵀ)·Sᵀ-free form: S Sᵀ + Σᵢ Kᵢ·cp(Rᵢᵀ)·Kᵢᵀ,
   where Kᵢ·G·Kᵢᵀ is a two-sided gather. O(n²) output — only sensible
   for modest n, as in the paper's kernel-method use case. *)
let gram_nt body =
  let n = base_rows body in
  let out =
    match body.ent with
    | Some s -> Mat.tcrossprod s
    | None -> Dense.create n n
  in
  let od = Dense.data out in
  List.iter
    (fun { ind; mat } ->
      let g = Mat.tcrossprod mat in
      Flops.add (n * n) ;
      let map = Indicator.mapping ind in
      for i = 0 to n - 1 do
        let gbase = map.(i) * Dense.cols g and obase = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set od (obase + j)
            (Array.unsafe_get od (obase + j)
            +. Array.unsafe_get (Dense.data g) (gbase + map.(j)))
        done
      done)
    body.parts ;
  out

let crossprod t =
  if t.trans then Memo.force t.memo.mc_gram (fun () -> gram_nt t.body)
  else Memo.force t.memo.mc_crossprod (fun () -> crossprod_nt t.body)

let crossprod_naive t =
  if t.trans then gram_nt t.body else crossprod_naive_nt t.body

(* ------------------------------------------------------------------ *)
(* Pseudo-inverse (§3.3.6):
     ginv(T) → ginv(crossprod(T))·Tᵀ        if d < n
     ginv(T) → Tᵀ·ginv(crossprod(Tᵀ))       otherwise
   The d×d (or n×n) pseudo-inverse of the symmetric cross-product is
   computed by eigendecomposition, and the outer product with Tᵀ is
   itself a factorized multiplication. *)

let ginv t =
  let n, d = dims t in
  if d < n then begin
    let g = Linalg.ginv_sym (crossprod t) in
    (* G·Tᵀ = (T·Gᵀ)ᵀ = (T·G)ᵀ since G is symmetric *)
    Dense.transpose (lmm t g)
  end
  else begin
    let g = Linalg.ginv_sym (crossprod (transpose t)) in
    (* Tᵀ·G = (Gᵀ·T)ᵀ = (G·T)ᵀ *)
    Dense.transpose (rmm g t)
  end

(* Least-squares solve ginv(crossprod T)·(Tᵀ·B): the normal-equations
   path of Algorithm 6 packaged as one call. *)
let lstsq t b = Blas.gemm (Linalg.ginv_sym (crossprod t)) (tlmm t b)

(* ------------------------------------------------------------------ *)
(* Non-factorizable element-wise matrix ops (§3.3.7): joins introduce no
   redundancy into these computations, so Morpheus materializes. The
   result is a regular matrix. *)

let add_mat t x = Mat.add (Materialize.to_mat t) x
let sub_mat t x = Mat.sub (Materialize.to_mat t) x
let mul_elem_mat t x = Mat.mul_elem (Materialize.to_mat t) x
let div_elem_mat t x = Mat.div_elem (Materialize.to_mat t) x
