(** The full Morpheus execution policy (Figure 1(c)): apply the §3.7
    heuristic decision rule once at construction and either keep the
    normalized matrix (factorized operators) or materialize T up front
    (standard operators). Implements {!Data_matrix.S}, so every ML
    functor can run behind the rule. *)

open La
open Sparse

type t

val of_normalized : ?tau:float -> ?rho:float -> Normalized.t -> t
(** Route by the heuristic rule (defaults τ = 5, ρ = 1). *)

val factorized : Normalized.t -> t
(** Force the factorized path (benches). *)

val materialized : Normalized.t -> t
(** Force materialization (benches). *)

val choice : t -> Decision.choice
(** Which path this matrix runs on. *)

(** {1 The Data_matrix.S operations} *)

val rows : t -> int
val cols : t -> int
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow : t -> float -> t
val map_scalar : (float -> float) -> t -> t
val select_rows : t -> int array -> t
val row_sums : t -> Dense.t
val col_sums : t -> Dense.t
val sum : t -> float
val row_sums_sq : t -> Dense.t
val lmm : t -> Dense.t -> Dense.t
val rmm : Dense.t -> t -> Dense.t
val tlmm : t -> Dense.t -> Dense.t
val crossprod : t -> Dense.t
val ginv : t -> Dense.t
val describe : t -> string

val lift : (Normalized.t -> 'a) -> (Mat.t -> 'a) -> t -> 'a
(** Dispatch a custom operation on whichever representation is held.
    The materialized arm is unwrapped to its raw {!Mat.t} — custom
    operations bypass (but cannot corrupt) the memoized wrapper. *)
