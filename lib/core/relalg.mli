(** Relational operators over (normalized) matrices — the execution
    layer behind the {!Ast} nodes [Filter]/[Project]/[Group_agg]
    (docs/PLANNER.md).

    The factorized paths never materialize the join: selection
    evaluates each comparison against the {e base table} owning the
    column (entity rows directly; attribute-part rows once per base row,
    expanded through the indicator mapping) and performs one
    {!Normalized.select_rows}; projection prunes whole attribute parts
    and column-gathers base matrices; group-by aggregates each attribute
    part with a small (groups × base-rows) count-matrix product.

    The [_mat] variants give the same semantics over a materialized
    regular matrix — both the fallback for [Regular] operands and the
    baseline the pushdown-equivalence tests compare against. Column
    names default to the positional [c0 … c{d-1}] (see {!Pred}). *)

open Sparse

exception Rel_error of string
(** Raised on unknown columns, transposed normalized inputs, duplicate
    projections, and other relational misuse. *)

type agg =
  | Agg_sum
  | Agg_mean
  | Agg_count

val agg_name : agg -> string
(** ["sum"] / ["mean"] / ["count"]. *)

val agg_of_string : string -> agg option

(** {1 Selection} *)

val mask : Normalized.t -> Pred.t -> int array
(** Indices (ascending) of the rows of the non-transposed [T] that
    satisfy the predicate, computed per base table through the
    indicators — O(n_S·#cmps + Σ n_Ri), never O(n·d). *)

val mask_mat : ?names:string array -> Mat.t -> Pred.t -> int array
(** Post-hoc row mask over a materialized matrix. *)

val filter : Normalized.t -> Pred.t -> Normalized.t
(** [mask] + {!Normalized.select_rows}; the result is still normalized
    (names preserved), so downstream crossprod/gemm/scoring stay
    factorized. *)

val filter_mat : ?names:string array -> Mat.t -> Pred.t -> Mat.t

(** {1 Projection}

    Set semantics: the kept columns appear in [T]'s column order;
    duplicates are rejected. Attribute parts losing all columns are
    dropped entirely (part pruning — their indicator and base matrix
    leave the plan). *)

val project : Normalized.t -> string list -> Normalized.t
val project_mat : ?names:string array -> Mat.t -> string list -> Mat.t

(** {1 Group-by aggregation}

    Groups are the distinct key-tuples, ordered ascending — a
    deterministic row order, so factorized and materialized runs of the
    same plan agree on layout. [Agg_sum]/[Agg_mean] return
    (groups × d) over all of [T]'s columns; [Agg_count] returns
    (groups × 1). *)

val group_agg : Normalized.t -> keys:string list -> agg -> La.Dense.t
val group_agg_mat : ?names:string array -> Mat.t -> keys:string list -> agg -> La.Dense.t
