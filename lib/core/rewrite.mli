(** Factorized linear-algebra operators: the rewrite rules of §3.3
    (single PK-FK), §3.5 (star multi-table), §3.6/appendix D (M:N), and
    appendix A (transposed forms), all over the uniform
    {!Normalized.t} representation.

    Every function here computes exactly what the corresponding operator
    would compute over the materialized T (tested exhaustively against
    {!Materialize}); none of them materializes the join. *)

open La
open Sparse

(** {1 Element-wise scalar operators (§3.3.1)}

    Closure: results are normalized matrices with the same structure,
    so redundancy avoidance propagates through LA pipelines (§3.2). *)

val scale : float -> Normalized.t -> Normalized.t
val add_scalar : float -> Normalized.t -> Normalized.t
val pow : Normalized.t -> float -> Normalized.t

val sq : Normalized.t -> Normalized.t
(** [T^2], K-Means' special case. *)

val map_scalar : (float -> float) -> Normalized.t -> Normalized.t
(** [f(T)] for a scalar function [f]. *)

val exp : Normalized.t -> Normalized.t

val transpose : Normalized.t -> Normalized.t
(** Flip the transpose flag (§3.2); no data is touched. *)

(** {1 Aggregations (§3.3.2)}

    Aggregations and cross-products are memoized on the matrix's
    invariant cells ({!Normalized.memo}): the first call computes, every
    later call returns the cached result at zero flop cost — including
    through {!transpose}, which shares the memo. Callers must not mutate
    returned matrices. See docs/PERFORMANCE.md. *)

val row_sums : Normalized.t -> Dense.t
(** [rowSums(T) → rowSums(S) + Σ Kᵢ·rowSums(Rᵢ)], as an n×1 column. *)

val col_sums : Normalized.t -> Dense.t
(** [colSums(T) → \[colSums(S), colSums(Kᵢ)·Rᵢ, …\]], as a 1×d row. *)

val sum : Normalized.t -> float
(** [sum(T) → sum(S) + Σ colSums(Kᵢ)·rowSums(Rᵢ)]. *)

val row_sums_sq : Normalized.t -> Dense.t
(** [rowSums(T²) → rowSums(S²) + Σ Kᵢ·rowSums(Rᵢ²)]: squaring
    distributes over the gather, so only the base matrices are squared
    (O(size S + Σ size Rᵢ), never O(n·d)). The loop-invariant half of
    K-Means' point-to-centroid distances. *)

val col_sums_sq : Normalized.t -> Dense.t
(** [colSums(T²) → \[colSums(S²), colSums(Kᵢ)·Rᵢ², …\]] — per-column
    squared norms, as a 1×d row. *)

(** {1 Multiplications (§3.3.3–3.3.4)} *)

val lmm : Normalized.t -> Dense.t -> Dense.t
(** [lmm t x] is [T·X], rewritten
    [S·X\[1:dS,\] + Σ Kᵢ(Rᵢ·X\[…\])] — with the order [Kᵢ(RᵢX)], never
    [(KᵢRᵢ)X], which would materialize the join. *)

val rmm : Dense.t -> Normalized.t -> Dense.t
(** [rmm x t] is [X·T → \[X·S, (X·K₁)R₁, …\]]. *)

val tlmm : Normalized.t -> Dense.t -> Dense.t
(** [tlmm t x] is [Tᵀ·X] — the "transposed LMM" the §4 algorithms use,
    rewritten through the Appendix-A transpose rules. *)

(** {1 Cross-products (§3.3.5)} *)

val crossprod : Normalized.t -> Dense.t
(** [TᵀT] by the efficient method (Algorithm 2): [crossprod(S)] blocks,
    weighted cross-products [Rᵢᵀ·diag(colSums Kᵢ)·Rᵢ] on the diagonal,
    [(SᵀKᵢ)Rᵢ] and [Rᵢᵀ(KᵢᵀKⱼ)Rⱼ] off-diagonal. On a transposed input
    this is the Gram matrix [T·Tᵀ] rewrite. *)

val crossprod_naive : Normalized.t -> Dense.t
(** Algorithm 1, kept for the ablation bench: [SᵀS] without the
    symmetry saving and [Rᵀ((KᵀK)R)] instead of the weighted form. *)

(** {1 Inversion (§3.3.6)} *)

val ginv : Normalized.t -> Dense.t
(** Moore-Penrose pseudo-inverse:
    [ginv(T) → ginv(crossprod(T))·Tᵀ] when d < n, else
    [Tᵀ·ginv(crossprod(Tᵀ))]; the outer product is itself factorized. *)

val lstsq : Normalized.t -> Dense.t -> Dense.t
(** Normal-equations solve [ginv(crossprod T)·(Tᵀ·B)] (Algorithm 6's
    core). *)

(** {1 Non-factorizable element-wise matrix ops (§3.3.7)}

    Joins introduce no redundancy into these, so Morpheus materializes;
    results are regular matrices. *)

val add_mat : Normalized.t -> Mat.t -> Mat.t
val sub_mat : Normalized.t -> Mat.t -> Mat.t
val mul_elem_mat : Normalized.t -> Mat.t -> Mat.t
val div_elem_mat : Normalized.t -> Mat.t -> Mat.t

(** {1 Internal building blocks}

    Exposed for {!Dmm} and the benches. *)

type group = G_ent of Mat.t | G_part of Normalized.part

val groups : Normalized.body -> group list
val group_cols : group -> int

val cross_block : group -> group -> Dense.t
(** The block [gᵢᵀ·gⱼ] of a cross-product for two distinct column
    groups. *)

val dense_tmm : Dense.t -> Mat.t -> Dense.t
(** [aᵀ·b] for dense [a] and either representation of [b]. *)

val ind_tmult : Indicator.t -> Mat.t -> Dense.t
(** [Kᵀ·M] for either representation of [M]. *)
