(** Analytic cost model: the arithmetic-computation expressions of
    Table 3 (and the pseudo-inverse rows of Table 11), used by the
    cost-based decision rule and validated against the instrumented
    {!La.Flops} counters. *)

type dims = {
  ns : int;  (** rows of S (and of T) *)
  ds : int;  (** columns of S *)
  nr : int;  (** rows of R *)
  dr : int;  (** columns of R *)
}

type op =
  | Scalar_op
  | Aggregation
  | Lmm of int  (** columns of the multiplier, d_X *)
  | Rmm of int  (** rows of the multiplier, n_X *)
  | Crossprod
  | Pseudo_inverse
  | Selection
      (** relational σ_p: standard = post-hoc mask over materialized
          rows (n·d); factorized = per-table predicate evaluation
          through the indicators + an S-column gather (n + n_R + n·d_S)
          — docs/PLANNER.md *)
  | Group_by
      (** relational γ: standard = group ids + scatter over
          materialized rows (2·n·d); factorized = ids + Gᵀ·S + per-part
          count-matrix products (n + n·d_S + n_R·d_R) *)

val parallel_fraction : op -> float
(** Fraction of the operator's arithmetic the execution engine can
    spread over domains (Amdahl's parallelizable share): ~0.9–0.95 for
    the row-partitioned kernels, 0.5 for the pseudo-inverse (its SVD
    is sequential). *)

val standard : ?threads:int -> dims -> op -> float
(** Arithmetic computations of the materialized operator (Table 3,
    "Standard" column). [?threads] (default 1) applies the Amdahl
    adjustment [serial + parallel/threads] to model multi-domain
    execution. *)

val factorized : ?threads:int -> dims -> op -> float
(** Arithmetic computations of the factorized operator (Table 3,
    "Factorized" column), with the same Amdahl [?threads] knob. *)

val speedup : ?threads:int -> dims -> op -> float
(** [standard / factorized] at the given thread count. For a single
    operator the Amdahl factors cancel; the knob matters when
    comparing whole-algorithm costs mixing kernel and SVD work. *)

(** {1 Measured calibration}

    Two host constants recorded by the autotune sweep ({!La.Tune} /
    [morpheus tune]) turn the flop expressions into predicted seconds.
    With the default 0.0 sentinels ("unmeasured") every [_seconds]
    function returns plain flop counts, so ratios — and therefore the
    decision rule — are unchanged until a profile has been measured. *)

type calibration = {
  flops_per_sec : float;  (** tuned gemm throughput; 0 = unmeasured *)
  dispatch_overhead : float;
      (** seconds per kernel batch dispatched to the pool; 0 = unmeasured *)
}

val uncalibrated : calibration

val set_calibration : calibration -> unit
(** Install measured constants (negative/non-finite fields are clamped
    to the unmeasured sentinel). *)

val get_calibration : unit -> calibration

val standard_seconds : ?threads:int -> dims -> op -> float
(** Predicted wall-clock of the materialized operator: [flops/rate]
    plus one kernel-batch dispatch. Falls back to {!standard} (flop
    units) when uncalibrated. *)

val factorized_seconds : ?threads:int -> dims -> op -> float
(** Predicted wall-clock of the factorized operator: [flops/rate] plus
    ~3 kernel-batch dispatches (per-table parts + assembly), which is
    what makes factorization lose on tiny inputs even when it saves
    flops. Falls back to {!factorized} when uncalibrated. *)

val speedup_measured : ?threads:int -> dims -> op -> float
(** [standard_seconds / factorized_seconds]; equals {!speedup} until a
    calibration is installed. *)

val limit_tuple_ratio : feature_ratio:float -> op -> float
(** Table 11's asymptotic speed-up as TR → ∞: [1 + FR] for linear ops,
    [(1 + FR)²] for the cross-product, [14(1+FR)²/(2FR+3)] for the
    pseudo-inverse. *)
