(** Analytic cost model: the arithmetic-computation expressions of
    Table 3 (and the pseudo-inverse rows of Table 11), used by the
    cost-based decision rule and validated against the instrumented
    {!La.Flops} counters. *)

type dims = {
  ns : int;  (** rows of S (and of T) *)
  ds : int;  (** columns of S *)
  nr : int;  (** rows of R *)
  dr : int;  (** columns of R *)
}

type op =
  | Scalar_op
  | Aggregation
  | Lmm of int  (** columns of the multiplier, d_X *)
  | Rmm of int  (** rows of the multiplier, n_X *)
  | Crossprod
  | Pseudo_inverse

val standard : dims -> op -> float
(** Arithmetic computations of the materialized operator (Table 3,
    "Standard" column). *)

val factorized : dims -> op -> float
(** Arithmetic computations of the factorized operator (Table 3,
    "Factorized" column). *)

val speedup : dims -> op -> float
(** [standard / factorized]. *)

val limit_tuple_ratio : feature_ratio:float -> op -> float
(** Table 11's asymptotic speed-up as TR → ∞: [1 + FR] for linear ops,
    [(1 + FR)²] for the cross-product, [14(1+FR)²/(2FR+3)] for the
    pseudo-inverse. *)
