(** Spectral operations over normalized data — the paper's §7 "future
    work" (SVD, Cholesky) implemented through the cross-product
    rewrites: the only O(n·…) step is a factorized LMM, so T is never
    materialized, and PCA's centering happens implicitly in the
    covariance identity rather than on the data. *)

open La

type svd = {
  u : Dense.t;  (** n×r, orthonormal columns *)
  s : float array;  (** singular values, descending *)
  v : Dense.t;  (** d×r, orthonormal columns *)
}

val top_eigen : ?cutoff:float -> Dense.t -> float array * Dense.t
(** Eigenpairs of a symmetric matrix sorted by descending eigenvalue,
    dropping those below [cutoff]. *)

val svd : ?rank:int -> Normalized.t -> svd
(** Economic SVD of the logical T via TᵀT = VΣ²Vᵀ and U = T·V·Σ⁻¹
    (one factorized LMM). [rank] truncates. O(d³ + n·d·r). *)

type pca = {
  components : Dense.t;  (** d×k principal directions (columns) *)
  explained_variance : float array;  (** covariance eigenvalues *)
  mean : Dense.t;  (** 1×d column means *)
}

val covariance : Normalized.t -> Dense.t
(** (TᵀT − n·μᵀμ)/(n−1), both terms factorized. *)

val pca : k:int -> Normalized.t -> pca

val transform : Normalized.t -> pca -> Dense.t
(** Project onto the principal directions:
    (T − 1μᵀ)·W = T·W − 1·(μW). *)

val explained_ratio : Normalized.t -> pca -> float
(** Fraction of total variance captured by the kept components. *)

val cholesky_crossprod : Normalized.t -> Dense.t
(** Cholesky factor of crossprod(T); raises
    [Linalg.Not_positive_definite] when TᵀT is singular. *)

val solve : Normalized.t -> Dense.t -> Dense.t
(** Exact normal-equations solve (TᵀT)w = Tᵀb via Cholesky. *)

val solve_ridge : lambda:float -> Normalized.t -> Dense.t -> Dense.t
(** (TᵀT + λI)w = Tᵀb; requires λ > 0 (always SPD). *)
