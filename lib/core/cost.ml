(* Analytic cost model: the arithmetic-computation expressions of the
   paper's Table 3 (and Table 11 with the pseudo-inverse rows), used by
   the cost-based decision rule and checked against the instrumented
   flop counters in tests and in the [table3] bench. *)

type dims = {
  ns : int; (* rows of S (and T) *)
  ds : int; (* columns of S *)
  nr : int; (* rows of R *)
  dr : int; (* columns of R *)
}

let f = float_of_int

type op =
  | Scalar_op
  | Aggregation
  | Lmm of int (* d_X: columns of the multiplier *)
  | Rmm of int (* n_X: rows of the multiplier *)
  | Crossprod
  | Pseudo_inverse

(* Arithmetic computations of the standard (materialized) operator. *)
let standard dims op =
  let { ns; ds; nr = _; dr } = dims in
  let d = f (ds + dr) in
  match op with
  | Scalar_op | Aggregation -> f ns *. d
  | Lmm dx -> f dx *. f ns *. d
  | Rmm nx -> f nx *. f ns *. d
  | Crossprod -> 0.5 *. d *. d *. f ns
  | Pseudo_inverse ->
    if ns > ds + dr then (7.0 *. f ns *. d *. d) +. (20.0 *. (d ** 3.0))
    else (7.0 *. f ns *. f ns *. d) +. (20.0 *. (f ns ** 3.0))

(* Arithmetic computations of the factorized operator. *)
let factorized dims op =
  let { ns; ds; nr; dr } = dims in
  let base = (f ns *. f ds) +. (f nr *. f dr) in
  match op with
  | Scalar_op | Aggregation -> base
  | Lmm dx -> f dx *. base
  | Rmm nx -> f nx *. base
  | Crossprod ->
    (0.5 *. f ds *. f ds *. f ns)
    +. (0.5 *. f dr *. f dr *. f nr)
    +. (f ds *. f dr *. f nr)
  | Pseudo_inverse ->
    let d = f (ds + dr) in
    if ns > ds + dr then
      (27.0 *. (d ** 3.0))
      +. (0.5 *. f ds *. f ds *. f ns)
      +. (0.5 *. f dr *. f dr *. f nr)
      +. (f ds *. f dr *. f nr)
      +. (d *. base)
    else
      (27.0 *. (f ns ** 3.0))
      +. (0.5 *. f ns *. f ns *. f ds)
      +. (0.5 *. f nr *. f nr *. f dr)
      +. (f ns *. base)

(* Predicted speed-up of the factorized operator. *)
let speedup dims op = standard dims op /. factorized dims op

(* Asymptotic speed-up limits from Table 11: 1 + FR as TR → ∞ (linear
   ops), (1 + FR)² for crossprod. *)
let limit_tuple_ratio ~feature_ratio op =
  match op with
  | Scalar_op | Aggregation | Lmm _ | Rmm _ -> 1.0 +. feature_ratio
  | Crossprod -> (1.0 +. feature_ratio) ** 2.0
  | Pseudo_inverse ->
    14.0 *. ((1.0 +. feature_ratio) ** 2.0) /. ((2.0 *. feature_ratio) +. 3.0)
