(* Analytic cost model: the arithmetic-computation expressions of the
   paper's Table 3 (and Table 11 with the pseudo-inverse rows), used by
   the cost-based decision rule and checked against the instrumented
   flop counters in tests and in the [table3] bench. *)

type dims = {
  ns : int; (* rows of S (and T) *)
  ds : int; (* columns of S *)
  nr : int; (* rows of R *)
  dr : int; (* columns of R *)
}

let f = float_of_int

type op =
  | Scalar_op
  | Aggregation
  | Lmm of int (* d_X: columns of the multiplier *)
  | Rmm of int (* n_X: rows of the multiplier *)
  | Crossprod
  | Pseudo_inverse
  | Selection (* σ_p: predicate evaluation + row gather *)
  | Group_by (* γ: group ids + per-part count-matrix products *)

(* Parallelizable fraction of each operator's arithmetic, for the
   Amdahl adjustment below. The kernel work (row-partitioned maps and
   chunked reductions in La.Exec) scales; final merges, mirroring and
   block assembly do not. The pseudo-inverse runs through the
   sequential Jacobi SVD, so only its Gram/assembly half scales. *)
let parallel_fraction = function
  | Scalar_op | Aggregation -> 0.90
  | Lmm _ | Rmm _ -> 0.95
  | Crossprod -> 0.95
  | Pseudo_inverse -> 0.50
  | Selection | Group_by -> 0.90

(* Amdahl's law: serial part + parallel part spread over [threads]. *)
let amdahl ~threads op cost =
  if threads <= 1 then cost
  else
    let p = parallel_fraction op in
    cost *. ((1.0 -. p) +. (p /. f threads))

(* Arithmetic computations of the standard (materialized) operator. *)
let standard_arith dims op =
  let { ns; ds; nr = _; dr } = dims in
  let d = f (ds + dr) in
  match op with
  | Scalar_op | Aggregation -> f ns *. d
  | Lmm dx -> f dx *. f ns *. d
  | Rmm nx -> f nx *. f ns *. d
  | Crossprod -> 0.5 *. d *. d *. f ns
  | Pseudo_inverse ->
    if ns > ds + dr then (7.0 *. f ns *. d *. d) +. (20.0 *. (d ** 3.0))
    else (7.0 *. f ns *. f ns *. d) +. (20.0 *. (f ns ** 3.0))
  (* post-hoc masking: the predicate runs over materialized rows and
     the gather touches every surviving column — n·d either way *)
  | Selection -> f ns *. d
  | Group_by -> 2.0 *. f ns *. d

(* Arithmetic computations of the factorized operator. *)
let factorized_arith dims op =
  let { ns; ds; nr; dr } = dims in
  let base = (f ns *. f ds) +. (f nr *. f dr) in
  match op with
  | Scalar_op | Aggregation -> base
  | Lmm dx -> f dx *. base
  | Rmm nx -> f nx *. base
  (* pushed below the join: per-table predicate columns (entity rows +
     attribute base rows), then a gather of S's columns only — the
     attribute side rides along as composed indicator mappings *)
  | Selection -> f ns +. f nr +. (f ns *. f ds)
  (* group ids over n rows, Gᵀ·S scatter, and a (groups × n_R)·R
     product bounded by n_R·d_R *)
  | Group_by -> f ns +. (f ns *. f ds) +. (f nr *. f dr)
  | Crossprod ->
    (0.5 *. f ds *. f ds *. f ns)
    +. (0.5 *. f dr *. f dr *. f nr)
    +. (f ds *. f dr *. f nr)
  | Pseudo_inverse ->
    let d = f (ds + dr) in
    if ns > ds + dr then
      (27.0 *. (d ** 3.0))
      +. (0.5 *. f ds *. f ds *. f ns)
      +. (0.5 *. f dr *. f dr *. f nr)
      +. (f ds *. f dr *. f nr)
      +. (d *. base)
    else
      (27.0 *. (f ns ** 3.0))
      +. (0.5 *. f ns *. f ns *. f ds)
      +. (0.5 *. f nr *. f nr *. f dr)
      +. (f ns *. base)

let standard ?(threads = 1) dims op = amdahl ~threads op (standard_arith dims op)

let factorized ?(threads = 1) dims op =
  amdahl ~threads op (factorized_arith dims op)

(* Predicted speed-up of the factorized operator. Both paths share the
   same parallel fraction, so the Amdahl factors cancel for a fixed
   operator — [threads] is kept in the signature because the decision
   layer compares *whole-algorithm* costs where the pseudo-inverse's
   serial share grows with the thread count. *)
let speedup ?(threads = 1) dims op =
  standard ~threads dims op /. factorized ~threads dims op

(* ---- measured calibration (La.Tune profile → wall-clock model) ----

   The arithmetic expressions above compare flop counts; two measured
   host constants turn them into predicted seconds. [flops_per_sec] is
   the tuned kernels' gemm throughput, [dispatch_overhead] the cost of
   waking the domain pool for one kernel batch — both recorded by the
   autotune sweep (La.Tune / `morpheus tune`). A 0.0 sentinel means
   "unmeasured": predictions then stay in flop units, so the decision
   rule's behavior without a tuned profile is exactly the historical
   flops-ratio rule. *)

type calibration = { flops_per_sec : float; dispatch_overhead : float }

let uncalibrated = { flops_per_sec = 0.0; dispatch_overhead = 0.0 }

let calibration = ref uncalibrated

let set_calibration c =
  calibration :=
    { flops_per_sec =
        (if Float.is_finite c.flops_per_sec then max 0.0 c.flops_per_sec
         else 0.0);
      dispatch_overhead =
        (if Float.is_finite c.dispatch_overhead then
           max 0.0 c.dispatch_overhead
         else 0.0) }

let get_calibration () = !calibration

(* Kernel batches the operator dispatches through the pool: the
   standard path runs one materialized kernel; the factorized rewrite
   issues roughly one per base table plus the combining step (the
   paper's S-part, R-part and assembly — ~3 for a two-table schema).
   Per-invocation overhead is what makes factorization lose on tiny
   inputs even when it saves flops. *)
let invocations ~factorized:fzd _op = if fzd then 3.0 else 1.0

let seconds ~arith ~fzd op =
  let c = !calibration in
  if c.flops_per_sec > 0.0 then
    (arith /. c.flops_per_sec)
    +. (invocations ~factorized:fzd op *. c.dispatch_overhead)
  else arith

let standard_seconds ?(threads = 1) dims op =
  seconds ~arith:(standard ~threads dims op) ~fzd:false op

let factorized_seconds ?(threads = 1) dims op =
  seconds ~arith:(factorized ~threads dims op) ~fzd:true op

(* Measured-time speed-up prediction: collapses to the flops ratio
   when no calibration has been recorded. *)
let speedup_measured ?(threads = 1) dims op =
  standard_seconds ~threads dims op /. factorized_seconds ~threads dims op

(* Asymptotic speed-up limits from Table 11: 1 + FR as TR → ∞ (linear
   ops), (1 + FR)² for crossprod. *)
let limit_tuple_ratio ~feature_ratio op =
  match op with
  | Scalar_op | Aggregation | Lmm _ | Rmm _ | Selection | Group_by ->
    1.0 +. feature_ratio
  | Crossprod -> (1.0 +. feature_ratio) ** 2.0
  | Pseudo_inverse ->
    14.0 *. ((1.0 +. feature_ratio) ** 2.0) /. ((2.0 *. feature_ratio) +. 3.0)
