(* Spectral operations over normalized data: economic SVD and PCA
   without materializing T. The paper's conclusion lists "more complex
   LA operations such as Cholesky decomposition and SVD" as future
   work; they factorize through the same cross-product rewrites:

     TᵀT = V Σ² Vᵀ           (d×d eigendecomposition of crossprod(T))
     T   = U Σ Vᵀ  with  U = T·V·Σ⁻¹   (a factorized LMM)

   so the only O(n·…) work is one LMM over the normalized matrix. PCA
   handles mean-centering implicitly: the covariance is
   (TᵀT − n·μμᵀ)/(n−1) with μ = colMeans(T), both factorized, so the
   centered matrix is never formed (centering would densify and is
   non-factorizable element-wise, §3.3.7). *)

open La

type svd = {
  u : Dense.t; (* n×r, orthonormal columns *)
  s : float array; (* r singular values, descending *)
  v : Dense.t; (* d×r, orthonormal columns *)
}

(* Sort eigenpairs by descending eigenvalue, dropping those below
   [cutoff]. Returns (values, vectors as columns). *)
let top_eigen ?(cutoff = 1e-10) g =
  let vals, vecs = Linalg.sym_eig g in
  let order = Array.init (Array.length vals) Fun.id in
  Array.sort (fun i j -> compare vals.(j) vals.(i)) order ;
  let keep =
    Array.of_list
      (List.filter (fun i -> vals.(i) > cutoff) (Array.to_list order))
  in
  let values = Array.map (fun i -> vals.(i)) keep in
  let vectors =
    Dense.init (Dense.rows vecs) (Array.length keep) (fun r c ->
        Dense.unsafe_get vecs r keep.(c))
  in
  (values, vectors)

(* Economic SVD of the logical T. [rank] truncates; default keeps every
   numerically nonzero singular value. O(d³ + n·d·r) — never O(n·d²)
   like a direct SVD of the materialized T would be. *)
let svd ?rank t =
  let cp = Rewrite.crossprod t in
  let values, v = top_eigen cp in
  let r =
    match rank with
    | Some r -> min r (Array.length values)
    | None -> Array.length values
  in
  let values = Array.sub values 0 r in
  let v = Dense.sub_cols v ~lo:0 ~hi:r in
  let s = Array.map sqrt values in
  (* U = T·V·Σ⁻¹: one factorized LMM, then a cheap column scaling *)
  let tv = Rewrite.lmm t v in
  let u =
    Dense.mapi (fun _ j x -> if s.(j) > 0.0 then x /. s.(j) else 0.0) tv
  in
  { u; s; v }

type pca = {
  components : Dense.t; (* d×k principal directions (columns) *)
  explained_variance : float array; (* k eigenvalues of the covariance *)
  mean : Dense.t; (* 1×d column means *)
}

(* Covariance matrix (TᵀT − n·μᵀμ)/(n−1) over the normalized matrix. *)
let covariance t =
  let n = float_of_int (Normalized.rows t) in
  let cp = Rewrite.crossprod t in
  let mu = Colops.col_means t in
  let d = Dense.cols cp in
  Dense.init d d (fun i j ->
      (Dense.unsafe_get cp i j -. (n *. Dense.get mu 0 i *. Dense.get mu 0 j))
      /. (n -. 1.0))

(* Principal component analysis without materializing or centering T. *)
let pca ~k t =
  let cov = covariance t in
  let values, vectors = top_eigen cov in
  let k = min k (Array.length values) in
  { components = Dense.sub_cols vectors ~lo:0 ~hi:k;
    explained_variance = Array.sub values 0 k;
    mean = Colops.col_means t }

(* Project the normalized matrix onto the principal directions:
   (T − 1μᵀ)·W = T·W − 1·(μ·W), i.e. one factorized LMM and a rank-one
   correction applied to the (small) output. *)
let transform t p =
  let tw = Rewrite.lmm t p.components in
  let muw = Blas.gemm p.mean p.components in
  Dense.mapi (fun _ j x -> x -. Dense.get muw 0 j) tw

(* Fraction of total variance captured by the first k components. *)
let explained_ratio t p =
  let total = Array.fold_left ( +. ) 0.0 (Dense.diag (covariance t)) in
  Array.fold_left ( +. ) 0.0 p.explained_variance /. total

(* Cholesky factor of crossprod(T) — the other "future work" operation,
   useful for solving normal equations without eigendecomposition.
   Raises [Linalg.Not_positive_definite] when TᵀT is singular. *)
let cholesky_crossprod t = Linalg.cholesky (Rewrite.crossprod t)

(* Exact normal-equations solve via Cholesky when TᵀT is SPD:
   solve (TᵀT)·w = Tᵀb by two triangular solves. *)
let solve t b =
  let l = cholesky_crossprod t in
  let tb = Rewrite.tlmm t b in
  (* forward then backward substitution through the dense solver *)
  let y = Linalg.solve l tb in
  Linalg.solve (Dense.transpose l) y

(* Ridge solve (TᵀT + λI)·w = Tᵀb — always SPD for λ > 0. *)
let solve_ridge ~lambda t b =
  if lambda <= 0.0 then invalid_arg "Spectral.solve_ridge: lambda must be > 0" ;
  let cp = Rewrite.crossprod t in
  let reg = Dense.mapi (fun i j x -> if i = j then x +. lambda else x) cp in
  let l = Linalg.cholesky reg in
  let tb = Rewrite.tlmm t b in
  let y = Linalg.solve l tb in
  Linalg.solve (Dense.transpose l) y
