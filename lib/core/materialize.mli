(** Materialization: the denormalized T from a normalized matrix — the
    baseline "M" path a data scientist runs today, and the ground truth
    every rewrite rule is tested against. *)

open La
open Sparse

val part_product : Normalized.part -> Mat.t
(** [Kᵢ·Rᵢ] for one attribute part, preserving sparsity. *)

val to_mat : Normalized.t -> Mat.t
(** The full [T = \[S?, I₁M₁, …\]] (§3.1: "one can verify that
    T = \[S, KR\]"). Honors the transpose flag. Sparse iff all base
    matrices are sparse. *)

val to_dense : Normalized.t -> Dense.t

val to_regular : Normalized.t -> Regular_matrix.t
(** [to_mat] wrapped as the memoizing {!Regular_matrix.t} — the form the
    ML functors' baseline path consumes. *)
