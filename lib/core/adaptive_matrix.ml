(* The full Morpheus execution policy: apply the heuristic decision rule
   (§3.7 / §5.1) once at construction, and either keep the normalized
   matrix (factorized operators) or materialize T up front (standard
   operators). This mirrors Figure 1(c)'s "heuristic decision rule"
   stage sitting in front of the rewrite rules.

   The materialized arm holds a {!Regular_matrix.t} — the wrapper with
   per-instance invariant cells — so both routes of the rule share the
   memoization layer. *)

open Sparse

type t =
  | Fact of Normalized.t
  | Reg of Regular_matrix.t

let of_normalized ?tau ?rho nm =
  match Decision.heuristic ?tau ?rho nm with
  | Decision.Factorized -> Fact nm
  | Decision.Materialized -> Reg (Materialize.to_regular nm)

(* Force one path regardless of the rule (used by benches). *)
let factorized nm = Fact nm
let materialized nm = Reg (Materialize.to_regular nm)

let choice = function Fact _ -> Decision.Factorized | Reg _ -> Decision.Materialized

(* The public dispatcher stays keyed on the raw Mat.t so existing custom
   operations keep working; internal operators below dispatch on the
   wrapper instead to keep its memo. *)
let lift ff fr = function Fact n -> ff n | Reg r -> fr (Regular_matrix.to_mat r)

let rows = lift Normalized.rows Mat.rows
let cols = lift Normalized.cols Mat.cols

let scale x = function
  | Fact n -> Fact (Rewrite.scale x n)
  | Reg r -> Reg (Regular_matrix.scale x r)

let add_scalar x = function
  | Fact n -> Fact (Rewrite.add_scalar x n)
  | Reg r -> Reg (Regular_matrix.add_scalar x r)

let pow t p =
  match t with
  | Fact n -> Fact (Rewrite.pow n p)
  | Reg r -> Reg (Regular_matrix.pow r p)

let map_scalar f = function
  | Fact n -> Fact (Rewrite.map_scalar f n)
  | Reg r -> Reg (Regular_matrix.map_scalar f r)

let select_rows t idx =
  match t with
  | Fact n -> Fact (Normalized.select_rows n idx)
  | Reg r -> Reg (Regular_matrix.select_rows r idx)

let row_sums = function
  | Fact n -> Rewrite.row_sums n
  | Reg r -> Regular_matrix.row_sums r

let col_sums = function
  | Fact n -> Rewrite.col_sums n
  | Reg r -> Regular_matrix.col_sums r

let sum = function Fact n -> Rewrite.sum n | Reg r -> Regular_matrix.sum r

let row_sums_sq = function
  | Fact n -> Rewrite.row_sums_sq n
  | Reg r -> Regular_matrix.row_sums_sq r

let lmm t x =
  match t with Fact n -> Rewrite.lmm n x | Reg r -> Regular_matrix.lmm r x

let rmm x t =
  match t with Fact n -> Rewrite.rmm x n | Reg r -> Regular_matrix.rmm x r

let tlmm t x =
  match t with Fact n -> Rewrite.tlmm n x | Reg r -> Regular_matrix.tlmm r x

let crossprod = function
  | Fact n -> Rewrite.crossprod n
  | Reg r -> Regular_matrix.crossprod r

let ginv = function Fact n -> Rewrite.ginv n | Reg r -> Regular_matrix.ginv r

let describe = function
  | Fact n -> Fmt.str "adaptive->factorized: %a" Normalized.pp n
  | Reg r -> Fmt.str "adaptive->materialized: %s" (Regular_matrix.describe r)
