(* The full Morpheus execution policy: apply the heuristic decision rule
   (§3.7 / §5.1) once at construction, and either keep the normalized
   matrix (factorized operators) or materialize T up front (standard
   operators). This mirrors Figure 1(c)'s "heuristic decision rule"
   stage sitting in front of the rewrite rules. *)

open La
open Sparse

type t =
  | Fact of Normalized.t
  | Reg of Mat.t

let of_normalized ?tau ?rho nm =
  match Decision.heuristic ?tau ?rho nm with
  | Decision.Factorized -> Fact nm
  | Decision.Materialized -> Reg (Materialize.to_mat nm)

(* Force one path regardless of the rule (used by benches). *)
let factorized nm = Fact nm
let materialized nm = Reg (Materialize.to_mat nm)

let choice = function Fact _ -> Decision.Factorized | Reg _ -> Decision.Materialized

let lift ff fr = function Fact n -> ff n | Reg m -> fr m

let rows = lift Normalized.rows Mat.rows
let cols = lift Normalized.cols Mat.cols

let scale x = function
  | Fact n -> Fact (Rewrite.scale x n)
  | Reg m -> Reg (Mat.scale x m)

let add_scalar x = function
  | Fact n -> Fact (Rewrite.add_scalar x n)
  | Reg m -> Reg (Mat.add_scalar x m)

let pow t p =
  match t with
  | Fact n -> Fact (Rewrite.pow n p)
  | Reg m -> Reg (Mat.pow p m)

let map_scalar f = function
  | Fact n -> Fact (Rewrite.map_scalar f n)
  | Reg m -> Reg (Mat.map_scalar f m)

let row_sums = lift Rewrite.row_sums Mat.row_sums
let col_sums = lift Rewrite.col_sums Mat.col_sums
let sum = lift Rewrite.sum Mat.sum

let lmm t x = lift (fun n -> Rewrite.lmm n x) (fun m -> Mat.mm m x) t
let rmm x t = lift (fun n -> Rewrite.rmm x n) (fun m -> Mat.mm_left x m) t
let tlmm t x = lift (fun n -> Rewrite.tlmm n x) (fun m -> Mat.tmm m x) t
let crossprod = lift Rewrite.crossprod Mat.crossprod
let ginv = lift Rewrite.ginv (fun m -> Linalg.ginv (Mat.dense m))

let describe = function
  | Fact n -> Fmt.str "adaptive->factorized: %a" Normalized.pp n
  | Reg m -> Fmt.str "adaptive->materialized: %a" Mat.pp m
