(** The abstract syntax of the LA expression DSL, split out of {!Expr}
    so that the static plan checker ({!Check}) and the evaluator
    ({!Expr}) share a single definition without a dependency cycle:
    [Ast] is pure syntax (constructors, printing, syntactic
    simplification, tree paths); [Check] abstractly interprets it;
    [Expr] evaluates it and re-exports everything here. *)

open La
open Sparse

type value =
  | Scalar of float
  | Regular of Mat.t
  | Normalized of Normalized.t

type t =
  | Const of value
  | Var of string
  | Scale of float * t
  | Add_scalar of float * t
  | Pow_scalar of t * float
  | Map_scalar of string * (float -> float) * t  (** named for printing *)
  | Transpose of t
  | Row_sums of t
  | Col_sums of t
  | Sum of t
  | Mult of t * t
  | Crossprod of t
  | Ginv of t
  | Add of t * t
  | Sub of t * t
  | Mul_elem of t * t
  | Div_elem of t * t
  | Filter of Pred.t * t
      (** relational selection σ_p(e) over named columns *)
  | Project of string list * t
      (** relational projection π_cols(e), set semantics *)
  | Group_agg of string list * Relalg.agg * t
      (** group-by aggregation γ_{keys; agg}(e) *)

val relational_node_names : string list
(** Constructor names of the relational nodes, in declaration order —
    checked against docs/REWRITE_RULES.md by [morpheus lint] (E206). *)

(** {1 Constructors} *)

val scalar : float -> t
val regular : Mat.t -> t
val dense : Dense.t -> t
val normalized : Normalized.t -> t
val var : string -> t

val ( *@ ) : t -> t -> t
(** Matrix product (R's [%*%]). *)

val ( +@ ) : t -> t -> t
val ( -@ ) : t -> t -> t

val ( *.@ ) : float -> t -> t
(** Scalar multiple. *)

val tr : t -> t
(** Transpose. *)

val filter : Pred.t -> t -> t
val project : string list -> t -> t
val group_agg : string list -> Relalg.agg -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Simplification}

    Bottom-up local rules: double-transpose elimination, scalar fusion,
    transpose pushdown, the Appendix-A aggregation swaps
    (rowSums(eᵀ) → colSums(e)ᵀ etc.), and the relational fusion rules
    (filter fusion, selection below projection, projection collapse —
    docs/PLANNER.md). Semantics-preserving. *)

val simplify : t -> t

val equal : t -> t -> bool
(** Syntactic equality, total on every constructor (constants and mapped
    functions compare physically). The optimizer's test for
    [σ_p(T)ᵀ · σ_p(T)] patterns. *)

(** {1 Tree structure and paths}

    A path addresses a subterm as the sequence of child indices from the
    root; the checker attaches every diagnostic and annotation to one. *)

type path = int list

val children : t -> t list

val node_label : t -> string
(** Short operator head for annotations, e.g. ["mult"], ["crossprod"],
    ["var w"]. *)

val subterm : t -> path -> t option
(** The subterm a path points at, or [None] if the path runs off the
    tree. *)

val path_string : t -> path -> string
(** Human-readable rendering of a path within a given root, e.g.
    ["mult/left › ginv/arg"]; ["root"] for the empty path. *)
