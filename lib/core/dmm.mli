(** Double matrix multiplication (appendix C): products where both
    operands are normalized matrices, in all four transpose
    combinations, so the framework is closed under multiplication of
    normalized matrices. *)

open La

val mult : Normalized.t -> Normalized.t -> Dense.t
(** [mult a b] dispatches on the operands' transpose flags:

    - [A·B] (neither transposed; needs [cols a = rows b]):
      [\[A·S_B | (A·K_B,i)·R_B,i | …\]];
    - [Aᵀ·Bᵀ = (B·A)ᵀ];
    - [Aᵀ·B] (shared row dimension): the block matrix of appendix C;
    - [A·Bᵀ] (shared column dimension): per aligned column segment,
      [I_A·(M_A,g·M_B,gᵀ)·I_Bᵀ] applied as a two-sided gather —
      covering the aligned and misaligned cases of appendix C.

    Raises [Invalid_argument] on dimension mismatch. *)

(** {1 Building blocks (exposed for tests)} *)

val mult_indicator_nt : Normalized.body -> Sparse.Indicator.t -> Dense.t
(** [T·K] for an indicator over T's columns, factorized per column
    group. *)

val mult_mat_nt : Normalized.body -> Sparse.Mat.t -> Dense.t
(** [T·X] with [X] itself possibly sparse, row-sliced per group. *)
