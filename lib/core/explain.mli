(** EXPLAIN for factorized linear algebra: render the rewrite that would
    fire for an operator over a given normalized matrix, the Table-3
    cost estimates for both paths, and the §3.7 decision — the LA
    counterpart of a database EXPLAIN plan. Purely informational. *)

type op =
  | Scalar_op
  | Row_sums
  | Col_sums
  | Sum
  | Lmm of int  (** columns of the multiplier *)
  | Rmm of int  (** rows of the multiplier *)
  | Crossprod
  | Ginv
  | Selection  (** relational σ_p: per-table masks + select_rows *)
  | Group_by  (** relational γ: Gᵀ·S + per-part count-matrix products *)

type report = {
  operator : string;
  rewrite : string;  (** the rewrite with this matrix's actual parts *)
  standard_flops : float;
  factorized_flops : float;
  predicted_speedup : float;
  decision : Decision.choice;
  tuple_ratio : float;
  feature_ratio : float;
}

val analyze : ?tau:float -> ?rho:float -> Normalized.t -> op -> report

val to_string : report -> string

val explain : ?tau:float -> ?rho:float -> Normalized.t -> op -> string
(** [to_string (analyze t op)]. *)

val describe : Normalized.t -> string
(** Shape, parts, representations, and storage of the normalized
    matrix, ending with the {!Normalized.validate} verdict
    ([invariants: ok] or the list of violations) so [morpheus info]
    reports corruption on hand-built matrices. *)

val describe_plan : Check.report -> string
(** Narrate a checked plan: the expression, one line per node a
    rewrite rule fires on (e.g. ["selection pushed below join:
    per-table masks → select_rows"] for a filter over a normalized
    operand), and the whole-plan standard-vs-factorized totals —
    what [morpheus check --explain] prints. *)
