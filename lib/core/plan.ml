(* Plan files for `morpheus check`: declarations of abstract operands
   (shape, representation, sparsity, Table-3 dims — no data) plus
   expressions to verify. Parsing never touches CSVs or kernels; the
   result feeds Check.analyze_abstract. The surface syntax mirrors the
   paper's R scripts (%*%, postfix ', crossprod, ginv), with numeric
   literals folding to the scalar forms so `3 * X` means Scale, not an
   ill-typed element-wise product. *)

type stmt = Declare of string * Check.absval | Check of string * Ast.t
type t = { stmts : stmt list }

let env t =
  List.filter_map
    (function Declare (n, v) -> Some (n, v) | Check _ -> None)
    t.stmts

let checks t =
  List.filter_map
    (function Check (n, e) -> Some (n, e) | Declare _ -> None)
    t.stmts

(* ---- lexer ---- *)

type token =
  | Ident of string
  | Num of float
  | LParen
  | RParen
  | Quote
  | Plus
  | Minus
  | Star
  | Slash
  | Caret
  | MatMul
  | Comma
  (* predicate tokens (filter bodies — re-rendered and fed to Pred.parse) *)
  | Lt
  | Le
  | Gt
  | Ge
  | EqEq
  | Ne
  | Bang
  | AndAnd
  | OrOr

let token_str = function
  | Ident s -> s
  | Num x -> Printf.sprintf "%g" x
  | LParen -> "("
  | RParen -> ")"
  | Quote -> "'"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Caret -> "^"
  | MatMul -> "%*%"
  | Comma -> ","
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | EqEq -> "=="
  | Ne -> "!="
  | Bang -> "!"
  | AndAnd -> "&&"
  | OrOr -> "||"

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done ;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks ;
      i := !j
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      while
        !j < n
        && (is_digit s.[!j] || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = 'E'
           || ((s.[!j] = '+' || s.[!j] = '-')
              && !j > !i
              && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done ;
      let text = String.sub s !i (!j - !i) in
      (match float_of_string_opt text with
      | Some x -> toks := Num x :: !toks
      | None -> fail "bad number %S" text) ;
      i := !j
    end
    else begin
      let two t = toks := t :: !toks ; incr i in
      (match c with
      | '(' -> toks := LParen :: !toks
      | ')' -> toks := RParen :: !toks
      | '\'' -> toks := Quote :: !toks
      | '+' -> toks := Plus :: !toks
      | '-' -> toks := Minus :: !toks
      | '*' -> toks := Star :: !toks
      | '/' -> toks := Slash :: !toks
      | '^' -> toks := Caret :: !toks
      | ',' -> toks := Comma :: !toks
      | '<' ->
        if !i + 1 < n && s.[!i + 1] = '=' then two Le else toks := Lt :: !toks
      | '>' ->
        if !i + 1 < n && s.[!i + 1] = '=' then two Ge else toks := Gt :: !toks
      | '=' ->
        (* both = and == read as equality inside predicates *)
        if !i + 1 < n && s.[!i + 1] = '=' then two EqEq
        else toks := EqEq :: !toks
      | '!' ->
        if !i + 1 < n && s.[!i + 1] = '=' then two Ne else toks := Bang :: !toks
      | '&' ->
        if !i + 1 < n && s.[!i + 1] = '&' then two AndAnd
        else fail "expected && (single & is not an operator)"
      | '|' ->
        if !i + 1 < n && s.[!i + 1] = '|' then two OrOr
        else fail "expected || (single | is not an operator)"
      | '%' ->
        if !i + 2 < n && s.[!i + 1] = '*' && s.[!i + 2] = '%' then begin
          toks := MatMul :: !toks ;
          i := !i + 2
        end
        else fail "expected %%*%% at %S" (String.sub s !i (min 3 (n - !i)))
      | c -> fail "unexpected character %C" c) ;
      incr i
    end
  done ;
  List.rev !toks

(* ---- expression parser ----

   Precedence, tightest first (as in R): postfix ' > ^ > unary - >
   %*% > * / > + -. Numeric literals stay symbolic until an operator
   forces a choice, so scalar-literal arithmetic folds to the Scale /
   Add_scalar / Pow_scalar forms the evaluator is closed under. *)

type operand = P_num of float | P_expr of Ast.t

let to_expr = function P_num x -> Ast.scalar x | P_expr e -> e

let functions : (string * (Ast.t -> Ast.t)) list =
  [ ("rowSums", fun e -> Ast.Row_sums e);
    ("colSums", fun e -> Ast.Col_sums e);
    ("sum", fun e -> Ast.Sum e);
    ("crossprod", fun e -> Ast.Crossprod e);
    ("ginv", fun e -> Ast.Ginv e);
    ("t", Ast.tr);
    ("exp", fun e -> Ast.Map_scalar ("exp", Stdlib.exp, e));
    ("log", fun e -> Ast.Map_scalar ("log", Stdlib.log, e));
    ("sqrt", fun e -> Ast.Map_scalar ("sqrt", Stdlib.sqrt, e)) ]

let parse_tokens ~lets toks =
  let toks = ref toks in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let expect t =
    match !toks with
    | t' :: rest when t' = t -> toks := rest
    | t' :: _ -> fail "expected %s, found %s" (token_str t) (token_str t')
    | [] -> fail "expected %s, found end of line" (token_str t)
  in
  (* Collect the predicate of filter(e, <pred>) up to the call's closing
     paren (left in place for the caller's [expect RParen]), re-render
     it and hand it to the predicate parser. *)
  let pred_until_rparen () =
    let buf = Buffer.create 32 in
    let depth = ref 0 in
    let continue = ref true in
    while !continue do
      match !toks with
      | [] -> fail "unterminated predicate"
      | RParen :: _ when !depth = 0 -> continue := false
      | t :: rest ->
        (match t with
        | LParen -> incr depth
        | RParen -> decr depth
        | _ -> ()) ;
        if Buffer.length buf > 0 then Buffer.add_char buf ' ' ;
        Buffer.add_string buf (token_str t) ;
        toks := rest
    done ;
    let src = Buffer.contents buf in
    match Pred.parse src with
    | Ok p -> p
    | Error msg -> fail "bad predicate %S: %s" src msg
  in
  (* Comma-separated column names, at least one. *)
  let ident_list what =
    let cols = ref [] in
    let rec loop () =
      match !toks with
      | Ident c :: rest -> (
        toks := rest ;
        cols := c :: !cols ;
        match !toks with
        | Comma :: rest -> toks := rest ; loop ()
        | _ -> ())
      | t :: _ -> fail "%s: expected a column name, found %s" what (token_str t)
      | [] -> fail "%s: expected a column name" what
    in
    loop () ;
    List.rev !cols
  in
  let rec primary () =
    match !toks with
    | Num x :: rest ->
      toks := rest ;
      P_num x
    (* relational forms: filter(e, pred), project(e, c1, c2, ...),
       groupby(e, sum|mean|count, k1, k2, ...) *)
    | Ident "filter" :: LParen :: rest ->
      toks := rest ;
      let arg = add () in
      expect Comma ;
      let p = pred_until_rparen () in
      expect RParen ;
      P_expr (Ast.Filter (p, to_expr arg))
    | Ident "project" :: LParen :: rest ->
      toks := rest ;
      let arg = add () in
      expect Comma ;
      let cols = ident_list "project" in
      expect RParen ;
      P_expr (Ast.Project (cols, to_expr arg))
    | Ident "groupby" :: LParen :: rest ->
      toks := rest ;
      let arg = add () in
      expect Comma ;
      let agg =
        match !toks with
        | Ident a :: rest -> (
          toks := rest ;
          match Relalg.agg_of_string a with
          | Some agg -> agg
          | None -> fail "groupby: unknown aggregate %S (sum|mean|count)" a)
        | t :: _ ->
          fail "groupby: expected an aggregate, found %s" (token_str t)
        | [] -> fail "groupby: expected an aggregate"
      in
      expect Comma ;
      let keys = ident_list "groupby" in
      expect RParen ;
      P_expr (Ast.Group_agg (keys, agg, to_expr arg))
    | Ident name :: LParen :: rest when List.mem_assoc name functions ->
      toks := rest ;
      let arg = add () in
      expect RParen ;
      P_expr ((List.assoc name functions) (to_expr arg))
    | Ident name :: rest ->
      toks := rest ;
      P_expr
        (match List.assoc_opt name lets with
        | Some e -> e
        | None -> Ast.var name)
    | LParen :: rest ->
      toks := rest ;
      let e = add () in
      expect RParen ;
      e
    | t :: _ -> fail "unexpected %s" (token_str t)
    | [] -> fail "unexpected end of line"
  and postfix () =
    let e = ref (primary ()) in
    while peek () = Some Quote do
      advance () ;
      e := P_expr (Ast.tr (to_expr !e))
    done ;
    !e
  and power () =
    let base = postfix () in
    match peek () with
    | Some Caret -> (
      advance () ;
      let exponent = unary () in
      match (base, exponent) with
      | P_num b, P_num p -> P_num (b ** p)
      | _, P_num p -> P_expr (Ast.Pow_scalar (to_expr base, p))
      | _ -> fail "exponent must be a numeric literal")
    | _ -> base
  and unary () =
    match peek () with
    | Some Minus -> (
      advance () ;
      match unary () with
      | P_num x -> P_num (-.x)
      | P_expr e -> P_expr (Ast.Scale (-1.0, e)))
    | _ -> power ()
  and matmul () =
    let e = ref (unary ()) in
    while peek () = Some MatMul do
      advance () ;
      let rhs = unary () in
      e := P_expr (Ast.Mult (to_expr !e, to_expr rhs))
    done ;
    !e
  and mul () =
    let e = ref (matmul ()) in
    let rec loop () =
      match peek () with
      | Some Star ->
        advance () ;
        let rhs = matmul () in
        (e :=
           match (!e, rhs) with
           | P_num a, P_num b -> P_num (a *. b)
           | P_num a, P_expr b | P_expr b, P_num a ->
             P_expr (Ast.Scale (a, b))
           | P_expr a, P_expr b -> P_expr (Ast.Mul_elem (a, b))) ;
        loop ()
      | Some Slash ->
        advance () ;
        let rhs = matmul () in
        (e :=
           match (!e, rhs) with
           | P_num a, P_num b -> P_num (a /. b)
           | P_expr a, P_num b -> P_expr (Ast.Scale (1.0 /. b, a))
           | a, b ->
             (* scalar / matrix: leave it to the checker (E003) *)
             P_expr (Ast.Div_elem (to_expr a, to_expr b))) ;
        loop ()
      | _ -> ()
    in
    loop () ;
    !e
  and add () =
    let e = ref (mul ()) in
    let rec loop () =
      match peek () with
      | Some Plus ->
        advance () ;
        let rhs = mul () in
        (e :=
           match (!e, rhs) with
           | P_num a, P_num b -> P_num (a +. b)
           | P_num a, P_expr b | P_expr b, P_num a ->
             P_expr (Ast.Add_scalar (a, b))
           | P_expr a, P_expr b -> P_expr (Ast.Add (a, b))) ;
        loop ()
      | Some Minus ->
        advance () ;
        let rhs = mul () in
        (e :=
           match (!e, rhs) with
           | P_num a, P_num b -> P_num (a -. b)
           | P_expr a, P_num b -> P_expr (Ast.Add_scalar (-.b, a))
           | P_num a, P_expr b ->
             P_expr (Ast.Add_scalar (a, Ast.Scale (-1.0, b)))
           | P_expr a, P_expr b -> P_expr (Ast.Sub (a, b))) ;
        loop ()
      | _ -> ()
    in
    loop () ;
    !e
  in
  let e = add () in
  (match !toks with
  | [] -> ()
  | t :: _ -> fail "trailing %s" (token_str t)) ;
  to_expr e

let parse_expr_exn ~lets src = parse_tokens ~lets (tokenize src)

let parse_expr ?(lets = []) src =
  match parse_expr_exn ~lets src with
  | e -> Ok e
  | exception Parse_error msg -> Error msg

(* ---- statement parser ---- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* key=value attributes of declaration lines *)
let parse_attrs words =
  List.map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
        ( String.sub w 0 i,
          Some (String.sub w (i + 1) (String.length w - i - 1)) )
      | None -> (w, None))
    words

let attr_int attrs key =
  match List.assoc_opt key attrs with
  | Some (Some v) -> (
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "%s must be an integer, got %S" key v)
  | _ -> fail "missing %s=<int>" key

let attr_float_opt attrs key =
  match List.assoc_opt key attrs with
  | Some (Some v) -> (
    match float_of_string_opt v with
    | Some x -> Some x
    | None -> fail "%s must be a number, got %S" key v)
  | Some None -> fail "%s needs a value" key
  | None -> None

(* cols=age,price,region — explicit column names for the relational
   operators; must cover every column of the declared operand. *)
let attr_cols attrs ~ncols =
  match List.assoc_opt "cols" attrs with
  | Some (Some v) ->
    let cols =
      String.split_on_char ',' v |> List.filter (fun c -> c <> "")
    in
    if List.length cols <> ncols then
      fail "cols: %d names for %d columns" (List.length cols) ncols ;
    Some (Array.of_list cols)
  | Some None -> fail "cols needs a value, e.g. cols=age,price"
  | None -> None

let dims_of_words name = function
  | r :: c :: attrs -> (
    match (int_of_string_opt r, int_of_string_opt c) with
    | Some r, Some c -> (r, c, parse_attrs attrs)
    | _ -> fail "%s: expected <rows> <cols>" name)
  | _ -> fail "%s: expected <rows> <cols>" name

let parse_stmt ~lets line =
  let line = String.trim (strip_comment line) in
  if line = "" then `Skip
  else
    match words line with
    | "normalized" :: name :: attr_words ->
      let attrs = parse_attrs attr_words in
      let ns = attr_int attrs "ns"
      and ds = attr_int attrs "ds"
      and nr = attr_int attrs "nr"
      and dr = attr_int attrs "dr" in
      let transposed = List.mem_assoc "transposed" attrs in
      let v =
        Check.normalized_value ~transposed
          ?density:(attr_float_opt attrs "density")
          ?cols:(attr_cols attrs ~ncols:(ds + dr))
          ~ns ~ds ~nr ~dr ()
      in
      `Stmt (Declare (name, v))
    | "dense" :: name :: rest ->
      let r, c, attrs = dims_of_words "dense" rest in
      `Stmt
        (Declare
           ( name,
             Check.dense_value
               ?density:(attr_float_opt attrs "density")
               ?cols:(attr_cols attrs ~ncols:c) r c ))
    | "sparse" :: name :: rest ->
      let r, c, attrs = dims_of_words "sparse" rest in
      `Stmt
        (Declare
           ( name,
             Check.sparse_value
               ?density:(attr_float_opt attrs "density")
               ?cols:(attr_cols attrs ~ncols:c) r c ))
    | [ "scalar"; name ] -> `Stmt (Declare (name, Check.scalar_value))
    | "let" :: name :: "=" :: _ ->
      let eq = String.index line '=' in
      let body =
        String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
      in
      `Let (name, parse_expr_exn ~lets body)
    | "check" :: _ ->
      let body = String.trim (String.sub line 5 (String.length line - 5)) in
      `Stmt (Check (body, parse_expr_exn ~lets body))
    | first :: _ when String.contains line '=' && not (List.mem first [ "let" ])
      ->
      (* `name = expr` without the let keyword still reads naturally *)
      let eq = String.index line '=' in
      let name = String.trim (String.sub line 0 eq) in
      if List.length (words name) = 1 && name <> "" then
        let body =
          String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
        in
        `Let (name, parse_expr_exn ~lets body)
      else fail "unrecognized statement %S" line
    | _ -> fail "unrecognized statement %S" line

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno lets acc = function
    | [] -> Ok { stmts = List.rev acc }
    | line :: rest -> (
      match parse_stmt ~lets line with
      | `Skip -> go (lineno + 1) lets acc rest
      | `Let (name, e) -> go (lineno + 1) ((name, e) :: lets) acc rest
      | `Stmt s -> go (lineno + 1) lets (s :: acc) rest
      | exception Parse_error msg ->
        Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] [] lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error msg -> Error msg
