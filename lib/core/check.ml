(* Static plan checker: abstract interpretation over the LA expression
   DAG. One total pass interprets every node over shape ×
   representation × estimated sparsity × cost, collects all diagnostics
   (no fail-fast), verifies the Table-1/Appendix-C rewrite
   preconditions per node, and annotates every node with the Table-3
   standard-vs-factorized FLOP estimates and the §3.7 decision — the
   whole-plan generalization of the single-operator Explain module.
   Nothing is ever evaluated, so a malformed plan is rejected before
   any kernel runs. *)

open Sparse

let log_src = Logs.Src.create "morpheus.check" ~doc:"Static plan checker"

let fi = float_of_int

(* ---- abstract domain ---- *)

type dim = int option
type shape = Scalar | Matrix of dim * dim | Top
type repr = R_scalar | R_dense | R_sparse | R_normalized | R_top

type norm_info = {
  n_dims : Cost.dims;
  transposed : bool;
  tuple_ratio : float;
  feature_ratio : float;
}

type absval = {
  shape : shape;
  repr : repr;
  density : float option;
  norm : norm_info option;
  columns : string array option;
      (* explicit column names over the non-transposed column space;
         [None] falls back to the positional c0…c{d-1} defaults when
         the column count is known (Pred.resolve) *)
}

let top_value =
  { shape = Top; repr = R_top; density = None; norm = None; columns = None }

let scalar_value =
  { shape = Scalar; repr = R_scalar; density = None; norm = None;
    columns = None }

let dense_value ?(density = 1.0) ?cols r c =
  { shape = Matrix (Some r, Some c);
    repr = R_dense;
    density = Some density;
    norm = None;
    columns = cols }

let sparse_value ?(density = 0.1) ?cols r c =
  { shape = Matrix (Some r, Some c);
    repr = R_sparse;
    density = Some density;
    norm = None;
    columns = cols }

let normalized_value ?(transposed = false) ?(density = 1.0) ?cols ~ns ~ds ~nr
    ~dr () =
  let d = ds + dr in
  { shape =
      (if transposed then Matrix (Some d, Some ns)
       else Matrix (Some ns, Some d));
    repr = R_normalized;
    density = Some density;
    norm =
      Some
        { n_dims = { Cost.ns; ds; nr; dr };
          transposed;
          tuple_ratio = fi ns /. fi (max 1 nr);
          feature_ratio = fi dr /. fi (max 1 ds) };
    columns = cols }

let mat_density m =
  let numel = Mat.rows m * Mat.cols m in
  if numel = 0 then 0.0
  else min 1.0 (fi (Mat.storage_size m) /. fi numel)

(* Density the materialized T would have: the entity block verbatim
   plus every attribute block at its base table's nonzero rate expanded
   to the full row count. *)
let normalized_density n =
  let body = Normalized.body n in
  let nb = Normalized.base_rows body and db = Normalized.base_cols body in
  let numel = nb * db in
  if numel = 0 then 0.0
  else begin
    let ent =
      match Normalized.ent n with
      | Some s -> fi (Mat.storage_size s)
      | None -> 0.0
    in
    let parts =
      List.fold_left
        (fun acc (p : Normalized.part) ->
          let rows = max 1 (Mat.rows p.Normalized.mat) in
          acc +. (fi nb *. fi (Mat.storage_size p.Normalized.mat) /. fi rows))
        0.0 (Normalized.parts n)
    in
    min 1.0 ((ent +. parts) /. fi numel)
  end

let of_value = function
  | Ast.Scalar _ -> scalar_value
  | Ast.Regular m ->
    { shape = Matrix (Some (Mat.rows m), Some (Mat.cols m));
      repr = (if Mat.is_sparse m then R_sparse else R_dense);
      density = Some (mat_density m);
      norm = None;
      columns = None }
  | Ast.Normalized n ->
    { shape = Matrix (Some (Normalized.rows n), Some (Normalized.cols n));
      repr = R_normalized;
      density = Some (normalized_density n);
      norm =
        Some
          { n_dims = Decision.cost_dims n;
            transposed = Normalized.is_transposed n;
            tuple_ratio = Normalized.tuple_ratio n;
            feature_ratio = Normalized.feature_ratio n };
      columns = Normalized.names n }

(* ---- diagnostics ---- *)

type code = E001 | E002 | E003 | E004 | E005 | E006 | W001 | W002 | W003 | W004
type severity = Error | Warning

(* The full catalogue, for the cross-catalogue uniqueness lint (E205):
   `morpheus lint` compares these names against the analyzer's. *)
let all_codes = [ E001; E002; E003; E004; E005; E006; W001; W002; W003; W004 ]

let severity_of = function
  | E001 | E002 | E003 | E004 | E005 | E006 -> Error
  | W001 | W002 | W003 | W004 -> Warning

let code_name = function
  | E001 -> "E001"
  | E002 -> "E002"
  | E003 -> "E003"
  | E004 -> "E004"
  | E005 -> "E005"
  | E006 -> "E006"
  | W001 -> "W001"
  | W002 -> "W002"
  | W003 -> "W003"
  | W004 -> "W004"

let code_doc = function
  | E001 -> "dimension mismatch"
  | E002 -> "unbound variable"
  | E003 -> "matrix operator applied to a scalar operand"
  | E004 -> "normalized-matrix invariant violation"
  | E005 -> "unknown column in relational operator"
  | E006 -> "relational operator misapplied (scalar/transposed operand, \
             duplicate or empty column list)"
  | W001 -> "element-wise op forces materialization (§3.3.7)"
  | W002 -> "product-chain order left unoptimized: unresolvable shape"
  | W003 -> "factorization predicted slower than materialized (§3.7 heuristic)"
  | W004 -> "filter over a materialized operand: post-hoc row mask, no \
             pushdown"

type diagnostic = {
  code : code;
  path : Ast.path;
  where : string;
  message : string;
  subterm : string;
}

let diagnostic_to_string d =
  Printf.sprintf "%s %s: %s\n    at %s: %s" (code_name d.code)
    (match severity_of d.code with Error -> "error" | Warning -> "warning")
    d.message d.where d.subterm

(* ---- per-node annotations ---- *)

type annot = {
  a_path : Ast.path;
  a_label : string;
  a_value : absval;
  a_standard : float option;
  a_factorized : float option;
  a_decision : Decision.choice option;
  a_rule : string option;
}

type report = {
  expr : Ast.t;
  result : absval;
  nodes : annot list;
  diagnostics : diagnostic list;
}

(* ---- shape helpers ---- *)

let dim_str = function Some n -> string_of_int n | None -> "?"

let shape_str = function
  | Scalar -> "scalar"
  | Top -> "?"
  | Matrix (r, c) -> dim_str r ^ "x" ^ dim_str c

let repr_str = function
  | R_scalar -> "scalar"
  | R_dense -> "dense"
  | R_sparse -> "sparse"
  | R_normalized -> "normalized"
  | R_top -> "?"

let numel = function
  | Matrix (Some r, Some c) -> Some (fi r *. fi c)
  | Scalar -> Some 1.0
  | _ -> None

(* Unify two dims that must agree; [None] absorbs. Conflicts are
   reported separately, so unification keeps the first known dim as
   the recovery value. *)
let unify_dim a b =
  match (a, b) with Some x, _ -> Some x | None, b -> b

let dims_conflict a b =
  match (a, b) with Some x, Some y -> x <> y | _ -> false

(* ---- relational helpers ---- *)

(* Column count of the operand's (non-transposed) column space, when
   statically known. *)
let operand_ncols v =
  match v.shape with Matrix (_, Some c) -> Some c | _ -> None

(* Resolve a column list to ascending global indices; [None] when the
   column space is unknown or any name fails to resolve (reported
   separately as E005). *)
let resolved_indices v cols =
  match operand_ncols v with
  | None -> None
  | Some ncols ->
    let idx =
      List.filter_map
        (fun c -> Pred.resolve ?names:v.columns ~ncols c)
        cols
    in
    if List.length idx <> List.length cols then None
    else Some (Array.of_list (List.sort_uniq compare idx))

(* The §3.7 heuristic over declared ratios (no data needed). *)
let decision_of info =
  if
    info.tuple_ratio < Decision.default_tau
    || info.feature_ratio < Decision.default_rho
  then Decision.Materialized
  else Decision.Factorized

(* Standard FLOPs of a plain pseudo-inverse on an r×c input — the same
   convention as {!Cost.standard}'s Pseudo_inverse row. *)
let plain_ginv_cost r c =
  let n = fi r and d = fi c in
  if r > c then (7.0 *. n *. d *. d) +. (20.0 *. (d ** 3.0))
  else (7.0 *. n *. n *. d) +. (20.0 *. (n ** 3.0))

(* ---- the analysis ---- *)

type state = {
  mutable diags : diagnostic list; (* most recent first *)
  mutable annots : annot list;
}

(* [lookup name] resolves a variable to its abstract value plus any
   structural-invariant violations of the bound value (E004). *)
let analyze_with lookup root =
  let st = { diags = []; annots = [] } in
  let emit code rpath fmt =
    Format.kasprintf
      (fun message ->
        let path = List.rev rpath in
        let subterm =
          match Ast.subterm root path with
          | Some e -> Ast.to_string e
          | None -> "<?>"
        in
        st.diags <-
          { code; path; where = Ast.path_string root path; message; subterm }
          :: st.diags)
      fmt
  in
  let note rpath e v ?standard ?factorized ?decision ?rule () =
    st.annots <-
      { a_path = List.rev rpath;
        a_label = Ast.node_label e;
        a_value = v;
        a_standard = standard;
        a_factorized = factorized;
        a_decision = decision;
        a_rule = rule }
      :: st.annots
  in
  let validate_const rpath v =
    match v with
    | Ast.Normalized n -> (
      match Normalized.validate n with
      | [] -> ()
      | problems ->
        emit E004 rpath "normalized matrix violates structural invariants: %s"
          (String.concat "; " problems))
    | _ -> ()
  in
  let warn_slower rpath opname info =
    if decision_of info = Decision.Materialized then
      emit W003 rpath
        "factorized %s predicted slower than materialized (tuple ratio %.2f \
         vs τ=%.0f, feature ratio %.2f vs ρ=%.0f)"
        opname info.tuple_ratio Decision.default_tau info.feature_ratio
        Decision.default_rho
  in
  (* Relational operands must be non-scalar and, when normalized,
     non-transposed (σ/π/γ are row/column operations over T, not Tᵀ). *)
  let relational_operand rpath opname v =
    match v.shape with
    | Scalar ->
      emit E006 rpath "%s applied to a scalar operand" opname;
      false
    | _ -> (
      match v.norm with
      | Some i when i.transposed ->
        emit E006 rpath "%s over a transposed normalized matrix" opname;
        false
      | _ -> true)
  in
  let resolve_columns rpath what v cols =
    match operand_ncols v with
    | None -> ()
    | Some ncols ->
      List.iter
        (fun c ->
          if Pred.resolve ?names:v.columns ~ncols c = None then
            emit E005 rpath "unknown column %S in %s" c what)
        cols
  in
  (* [go] returns the node's abstract value plus the flattened shapes of
     its product-chain leaves (singleton for non-Mult nodes) — what the
     W002 check at a maximal chain root needs. [in_chain] marks Mult
     nodes whose parent is also a Mult. *)
  let rec go rpath ~in_chain e =
    match e with
    | Ast.Mult (a, b) ->
      let va, la = go (0 :: rpath) ~in_chain:true a in
      let vb, lb = go (1 :: rpath) ~in_chain:true b in
      let leaves = la @ lb in
      let v =
        match (va.shape, vb.shape) with
        (* scalars distribute over the other operand (§3.2) *)
        | Scalar, Scalar ->
          note rpath e scalar_value ~standard:1.0 ();
          scalar_value
        | Scalar, _ | _, Scalar ->
          let other = if va.shape = Scalar then vb else va in
          (match other.norm with
          | Some info ->
            let std, fact =
              ( Cost.standard info.n_dims Cost.Scalar_op,
                Cost.factorized info.n_dims Cost.Scalar_op )
            in
            note rpath e other ~standard:std ~factorized:fact
              ~decision:(decision_of info)
              ~rule:"scalar distributes over T (§3.2)" ()
          | None -> note rpath e other ?standard:(numel other.shape) ());
          other
        | _ ->
          let row_col = function
            | Matrix (r, c) -> (r, c)
            | _ -> (None, None)
          in
          let ra, ka = row_col va.shape and kb, cb = row_col vb.shape in
          if dims_conflict ka kb then
            emit E001 rpath "product shape mismatch: %sx%s times %sx%s"
              (dim_str ra) (dim_str ka) (dim_str kb) (dim_str cb);
          let k_dim = unify_dim ka kb in
          let shape = Matrix (ra, cb) in
          let density =
            match (va.density, vb.density, k_dim) with
            | Some da, Some db, Some k ->
              Some (min 1.0 (1.0 -. ((1.0 -. (da *. db)) ** fi k)))
            | _ -> None
          in
          let v = { shape; repr = R_dense; density; norm = None; columns = None } in
          let plain_cost =
            match (ra, k_dim, cb) with
            | Some r, Some k, Some c -> Some (fi r *. fi k *. fi c)
            | _ -> None
          in
          (match (va.repr, va.norm, vb.repr, vb.norm) with
          | R_normalized, Some ia, R_normalized, Some _ ->
            (* both sides normalized: the DMM of §3.6 / Appendix C *)
            let rule =
              if ia.transposed then "DMM Tᵀ·T (Appendix C)"
              else "DMM T·Tᵀ (Appendix C)"
            in
            note rpath e v ?standard:plain_cost ~rule ()
          | R_normalized, Some info, _, _ ->
            let dx = match cb with Some c -> c | None -> 1 in
            let op = Cost.Lmm dx in
            let rule =
              if info.transposed then "LMM under transpose (Appendix A)"
              else "LMM (Table 1)"
            in
            note rpath e v
              ~standard:(Cost.standard info.n_dims op)
              ~factorized:(Cost.factorized info.n_dims op)
              ~decision:(decision_of info) ~rule ();
            warn_slower rpath "LMM" info
          | _, _, R_normalized, Some info ->
            let nx = match ra with Some r -> r | None -> 1 in
            let op = Cost.Rmm nx in
            let rule =
              if info.transposed then "RMM under transpose (Appendix A)"
              else "RMM (Table 1)"
            in
            note rpath e v
              ~standard:(Cost.standard info.n_dims op)
              ~factorized:(Cost.factorized info.n_dims op)
              ~decision:(decision_of info) ~rule ();
            warn_slower rpath "RMM" info
          | _ -> note rpath e v ?standard:plain_cost ());
          v
      in
      if
        (not in_chain)
        && List.length leaves >= 3
        && List.exists
             (function Matrix (Some _, Some _) -> false | _ -> true)
             leaves
      then
        emit W002 rpath
          "product chain of %d terms contains a scalar or unresolved \
           operand; chain-order optimization is skipped"
          (List.length leaves);
      (v, leaves)
    | _ ->
      let v = go1 rpath e in
      (v, [ v.shape ])
  and child rpath i e = fst (go (i :: rpath) ~in_chain:false e)
  (* every non-Mult constructor *)
  and go1 rpath e =
    match e with
    | Ast.Mult _ -> assert false
    | Ast.Const v ->
      validate_const rpath v;
      let av = of_value v in
      note rpath e av ();
      av
    | Ast.Var name ->
      let av =
        match lookup name with
        | Some (av, problems) ->
          (match problems with
          | [] -> ()
          | ps ->
            emit E004 rpath
              "normalized matrix bound to %s violates structural \
               invariants: %s"
              name (String.concat "; " ps));
          av
        | None ->
          emit E002 rpath "unbound variable %s" name;
          top_value
      in
      note rpath e av ();
      av
    | Ast.Scale (x, e1) ->
      let v1 = child rpath 0 e1 in
      let density = if x = 0.0 then Some 0.0 else v1.density in
      scalar_op rpath e { v1 with density } ~keeps_sparse:true
    | Ast.Add_scalar (x, e1) ->
      let v1 = child rpath 0 e1 in
      let density =
        if x = 0.0 then v1.density
        else
          match v1.shape with Scalar -> v1.density | _ -> Some 1.0
      in
      scalar_op rpath e { v1 with density } ~keeps_sparse:(x = 0.0)
    | Ast.Pow_scalar (e1, p) ->
      let v1 = child rpath 0 e1 in
      let density = if p = 0.0 then Some 1.0 else v1.density in
      scalar_op rpath e { v1 with density } ~keeps_sparse:(p <> 0.0)
    | Ast.Map_scalar (_, _, e1) ->
      let v1 = child rpath 0 e1 in
      (* unknown function: zero preservation is not known statically *)
      scalar_op rpath e { v1 with density = None } ~keeps_sparse:false
    | Ast.Transpose e1 ->
      let v1 = child rpath 0 e1 in
      let shape =
        match v1.shape with
        | Matrix (r, c) -> Matrix (c, r)
        | s -> s
      in
      let norm =
        Option.map (fun i -> { i with transposed = not i.transposed }) v1.norm
      in
      let v = { v1 with shape; norm } in
      let rule =
        if norm <> None then Some "transpose flag flip (§3.2, Appendix A)"
        else None
      in
      note rpath e v ?rule ();
      v
    | Ast.Row_sums e1 ->
      let v1 = child rpath 0 e1 in
      aggregation rpath e v1 ~scalar_msg:"rowSums of scalar"
        ~shape:(fun r _ -> Matrix (r, Some 1))
        ~rule:"rowSums(T) (Table 1)"
    | Ast.Col_sums e1 ->
      let v1 = child rpath 0 e1 in
      aggregation rpath e v1 ~scalar_msg:"colSums of scalar"
        ~shape:(fun _ c -> Matrix (Some 1, c))
        ~rule:"colSums(T) (Table 1)"
    | Ast.Sum e1 ->
      let v1 = child rpath 0 e1 in
      let std, fact, decision, rule =
        match v1.norm with
        | Some info ->
          ( Some (Cost.standard info.n_dims Cost.Aggregation),
            Some (Cost.factorized info.n_dims Cost.Aggregation),
            Some (decision_of info),
            Some "sum(T) (Table 1)" )
        | None -> (numel v1.shape, None, None, None)
      in
      note rpath e scalar_value ?standard:std ?factorized:fact ?decision
        ?rule ();
      scalar_value
    | Ast.Crossprod e1 ->
      let v1 = child rpath 0 e1 in
      let v, std, fact, decision, rule =
        match v1.shape with
        | Scalar -> (scalar_value, Some 1.0, None, None, None)
        | Top -> (top_value, None, None, None, None)
        | Matrix (r, c) ->
          let density =
            match (v1.density, r) with
            | Some d, Some rows ->
              Some (min 1.0 (1.0 -. ((1.0 -. (d *. d)) ** fi rows)))
            | _ -> None
          in
          let v = { shape = Matrix (c, c); repr = R_dense; density; norm = None; columns = None } in
          (match v1.norm with
          | Some info ->
            ( v,
              Some (Cost.standard info.n_dims Cost.Crossprod),
              Some (Cost.factorized info.n_dims Cost.Crossprod),
              Some (decision_of info),
              Some
                (if info.transposed then "gram TᵀT via transpose (Appendix A)"
                 else "crossprod(T) (Table 1, §3.3.5)") )
          | None ->
            let std =
              match (r, c) with
              | Some r, Some c -> Some (0.5 *. fi c *. fi c *. fi r)
              | _ -> None
            in
            (v, std, None, None, None))
      in
      (match v1.norm with
      | Some info -> warn_slower rpath "crossprod" info
      | None -> ());
      note rpath e v ?standard:std ?factorized:fact ?decision ?rule ();
      v
    | Ast.Ginv e1 ->
      let v1 = child rpath 0 e1 in
      let v, std, fact, decision, rule =
        match v1.shape with
        | Scalar -> (scalar_value, Some 1.0, None, None, None)
        | Top -> (top_value, None, None, None, None)
        | Matrix (r, c) ->
          let v =
            { shape = Matrix (c, r);
              repr = R_dense;
              density = Some 1.0;
              norm = None;
              columns = None }
          in
          (match v1.norm with
          | Some info ->
            ( v,
              Some (Cost.standard info.n_dims Cost.Pseudo_inverse),
              Some (Cost.factorized info.n_dims Cost.Pseudo_inverse),
              Some (decision_of info),
              Some "factorized pseudo-inverse (Table 11)" )
          | None ->
            let std =
              match (r, c) with
              | Some r, Some c -> Some (plain_ginv_cost r c)
              | _ -> None
            in
            (v, std, None, None, None))
      in
      (match v1.norm with
      | Some info -> warn_slower rpath "ginv" info
      | None -> ());
      note rpath e v ?standard:std ?factorized:fact ?decision ?rule ();
      v
    | Ast.Add (a, b) -> elementwise rpath e a b ~density:density_add
    | Ast.Sub (a, b) -> elementwise rpath e a b ~density:density_add
    | Ast.Mul_elem (a, b) -> elementwise rpath e a b ~density:density_mul
    | Ast.Div_elem (a, b) -> elementwise rpath e a b ~density:density_left
    (* Relational nodes (docs/PLANNER.md): selection keeps the operand's
       representation — a normalized operand STAYS normalized (mask +
       select_rows), which is the whole point of lifting σ/π/γ into the
       DAG — while rows become data-dependent. Column names resolve
       against explicit names or the positional c0…c{d-1} defaults. *)
    | Ast.Filter (p, e1) ->
      let v1 = child rpath 0 e1 in
      if not (relational_operand rpath "filter" v1) then begin
        note rpath e top_value ();
        top_value
      end
      else begin
        resolve_columns rpath "filter predicate" v1 (Pred.columns p);
        let sel = Pred.selectivity p in
        let shape =
          match v1.shape with Matrix (_, c) -> Matrix (None, c) | s -> s
        in
        let norm =
          Option.map
            (fun i ->
              let ns = max 1 (int_of_float (ceil (sel *. fi i.n_dims.Cost.ns))) in
              { i with
                n_dims = { i.n_dims with Cost.ns };
                tuple_ratio = fi ns /. fi (max 1 i.n_dims.Cost.nr) })
            v1.norm
        in
        let v = { v1 with shape; norm } in
        (match v1.norm with
        | Some info ->
          note rpath e v
            ~standard:(Cost.standard info.n_dims Cost.Selection)
            ~factorized:(Cost.factorized info.n_dims Cost.Selection)
            ~decision:(decision_of info)
            ~rule:
              (Printf.sprintf
                 "selection pushed below join: per-table masks → select_rows \
                  (est. selectivity %.2f)"
                 sel)
            ()
        | None ->
          if v1.repr <> R_top then
            emit W004 rpath
              "filter over a materialized operand is a post-hoc row mask; \
               no factorized pushdown applies";
          note rpath e v ?standard:(numel v1.shape)
            ~rule:"post-hoc row mask" ());
        v
      end
    | Ast.Project (cols, e1) ->
      let v1 = child rpath 0 e1 in
      if not (relational_operand rpath "project" v1) then begin
        note rpath e top_value ();
        top_value
      end
      else begin
        if cols = [] then emit E006 rpath "empty projection";
        let rec dup = function
          | c :: rest ->
            if List.mem c rest then Some c else dup rest
          | [] -> None
        in
        (match dup cols with
        | Some c -> emit E006 rpath "duplicate column %S in projection" c
        | None -> ());
        resolve_columns rpath "projection" v1 cols;
        let rows = match v1.shape with Matrix (r, _) -> r | _ -> None in
        let kept = List.length cols in
        (* columns metadata: the kept source names in T's column order *)
        let columns =
          match resolved_indices v1 cols with
          | Some idx ->
            let src =
              match (v1.columns, v1.shape) with
              | Some a, _ -> a
              | None, Matrix (_, Some c) -> Pred.default_names c
              | None, _ -> [||]
            in
            if Array.length src = 0 then None
            else Some (Array.map (fun g -> src.(g)) idx)
          | None -> None
        in
        let norm =
          Option.map
            (fun i ->
              let ds_old = i.n_dims.Cost.ds in
              let ds', dr' =
                match resolved_indices v1 cols with
                | Some idx ->
                  let ents =
                    Array.fold_left
                      (fun acc g -> if g < ds_old then acc + 1 else acc)
                      0 idx
                  in
                  (ents, Array.length idx - ents)
                | None -> (min kept ds_old, max 0 (kept - ds_old))
              in
              { i with
                n_dims = { i.n_dims with Cost.ds = ds'; dr = dr' };
                feature_ratio = fi dr' /. fi (max 1 ds') })
            v1.norm
        in
        let v =
          { v1 with shape = Matrix (rows, Some kept); norm; columns }
        in
        (match v1.norm with
        | Some info ->
          note rpath e v
            ~standard:(Cost.standard info.n_dims Cost.Scalar_op)
            ~factorized:
              (match norm with
              | Some i -> Cost.factorized i.n_dims Cost.Scalar_op
              | None -> Cost.factorized info.n_dims Cost.Scalar_op)
            ~decision:(decision_of info)
            ~rule:"projection → attribute-part pruning" ()
        | None -> note rpath e v ?standard:(numel v.shape) ());
        v
      end
    | Ast.Group_agg (keys, agg, e1) ->
      let v1 = child rpath 0 e1 in
      if not (relational_operand rpath "groupby" v1) then begin
        note rpath e top_value ();
        top_value
      end
      else begin
        if keys = [] then emit E006 rpath "groupby needs at least one key";
        resolve_columns rpath "groupby key" v1 keys;
        let out_cols =
          match agg with
          | Relalg.Agg_count -> Some 1
          | Relalg.Agg_sum | Relalg.Agg_mean -> (
            match v1.shape with Matrix (_, c) -> c | _ -> None)
        in
        let columns =
          match agg with
          | Relalg.Agg_count -> None
          | Relalg.Agg_sum | Relalg.Agg_mean -> v1.columns
        in
        let v =
          { shape = Matrix (None, out_cols);
            repr = R_dense;
            density = Some 1.0;
            norm = None;
            columns }
        in
        (match v1.norm with
        | Some info ->
          note rpath e v
            ~standard:(Cost.standard info.n_dims Cost.Group_by)
            ~factorized:(Cost.factorized info.n_dims Cost.Group_by)
            ~decision:(decision_of info)
            ~rule:"factorized group-by: Gᵀ·S scatter + per-part count-matrix \
                   products"
            ()
        | None -> note rpath e v ?standard:(numel v1.shape) ());
        v
      end
  (* Element-wise scalar ops (Scale/Add_scalar/Pow/Map): shape is
     preserved and normalized operands stay normalized (the closure
     property of §3.2). *)
  and scalar_op rpath e v1 ~keeps_sparse =
    let repr =
      match v1.repr with
      | R_sparse when not keeps_sparse -> R_dense
      | r -> r
    in
    let v = { v1 with repr } in
    (match v1.norm with
    | Some info ->
      note rpath e v
        ~standard:(Cost.standard info.n_dims Cost.Scalar_op)
        ~factorized:(Cost.factorized info.n_dims Cost.Scalar_op)
        ~decision:(decision_of info)
        ~rule:"scalar-op closure (Table 1, §3.2)" ()
    | None -> note rpath e v ?standard:(numel v.shape) ());
    v
  and aggregation rpath e v1 ~scalar_msg ~shape ~rule =
    match v1.shape with
    | Scalar ->
      emit E003 rpath "%s" scalar_msg;
      note rpath e top_value ();
      top_value
    | Top | Matrix _ ->
      let r, c =
        match v1.shape with Matrix (r, c) -> (r, c) | _ -> (None, None)
      in
      let v =
        { shape = shape r c; repr = R_dense; density = Some 1.0; norm = None; columns = None }
      in
      let std, fact, decision, rule =
        match v1.norm with
        | Some info ->
          ( Some (Cost.standard info.n_dims Cost.Aggregation),
            Some (Cost.factorized info.n_dims Cost.Aggregation),
            Some (decision_of info),
            Some rule )
        | None -> (numel v1.shape, None, None, None)
      in
      note rpath e v ?standard:std ?factorized:fact ?decision ?rule ();
      v
  and density_add da db = Option.map (min 1.0) (lift2 ( +. ) da db)
  and density_mul da db = lift2 ( *. ) da db
  and density_left da _ = da
  and lift2 f a b =
    match (a, b) with Some x, Some y -> Some (f x y) | _ -> None
  (* Element-wise matrix ops: non-factorizable (§3.3.7) — a normalized
     operand is materialized (W001); shapes must agree exactly. *)
  and elementwise rpath e a b ~density =
    let va = child rpath 0 a in
    let vb = child rpath 1 b in
    match (va.shape, vb.shape) with
    | Scalar, Scalar ->
      note rpath e scalar_value ~standard:1.0 ();
      scalar_value
    | Scalar, Matrix _ | Matrix _, Scalar ->
      emit E003 rpath "elementwise op between scalar and matrix";
      let other = if va.shape = Scalar then vb else va in
      let v = { other with norm = None } in
      note rpath e v ();
      v
    | _ ->
      let row_col = function
        | Matrix (r, c) -> (r, c)
        | _ -> (None, None)
      in
      let ra, ca = row_col va.shape and rb, cb = row_col vb.shape in
      if dims_conflict ra rb || dims_conflict ca cb then
        emit E001 rpath "elementwise shape mismatch: %sx%s vs %sx%s"
          (dim_str ra) (dim_str ca) (dim_str rb) (dim_str cb);
      let normalized_side =
        va.repr = R_normalized || vb.repr = R_normalized
      in
      if normalized_side then
        emit W001 rpath
          "element-wise matrix op forces materialization of the normalized \
           operand (§3.3.7)";
      let repr =
        match (va.repr, vb.repr) with
        | R_top, R_top -> R_top
        | R_sparse, R_sparse -> R_sparse
        | _ -> R_dense
      in
      let v =
        { shape = Matrix (unify_dim ra rb, unify_dim ca cb);
          repr;
          density = density va.density vb.density;
          norm = None;
          columns = None }
      in
      let rule = if normalized_side then Some "materialize (§3.3.7)" else None in
      note rpath e v ?standard:(numel v.shape) ?rule ();
      v
  in
  let result, _ = go [] ~in_chain:false root in
  { expr = root;
    result;
    nodes = List.sort (fun a b -> compare a.a_path b.a_path) st.annots;
    diagnostics = List.rev st.diags }

let analyze ?(env = []) e =
  analyze_with
    (fun name ->
      Option.map
        (fun v ->
          let problems =
            match v with
            | Ast.Normalized n -> Normalized.validate n
            | _ -> []
          in
          (of_value v, problems))
        (List.assoc_opt name env))
    e

let analyze_abstract ?(env = []) e =
  analyze_with
    (fun name -> Option.map (fun v -> (v, [])) (List.assoc_opt name env))
    e

(* ---- report accessors ---- *)

let errors r = List.filter (fun d -> severity_of d.code = Error) r.diagnostics

let warnings r =
  List.filter (fun d -> severity_of d.code = Warning) r.diagnostics

let is_ok r = errors r = []

let totals r =
  List.fold_left
    (fun (s, f) a ->
      let std = Option.value a.a_standard ~default:0.0 in
      let fct = match a.a_factorized with Some x -> x | None -> std in
      (s +. std, f +. fct))
    (0.0, 0.0) r.nodes

(* Legacy-compatible single shape: the first (innermost, leftmost)
   shape/type error, or the abstract result shape. E004 is excluded —
   the raising [Expr.shape_of] never validated normalized structure. *)
let infer_shape ?env e =
  let r = analyze ?env e in
  match
    List.find_opt
      (fun d -> match d.code with E001 | E002 | E003 -> true | _ -> false)
      r.diagnostics
  with
  | Some d -> Stdlib.Error d.message
  | None -> Stdlib.Ok r.result.shape

(* ---- rendering ---- *)

let flops_str = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.3g" x

let report_to_string ?name r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match name with
  | Some n -> add "check %s\n" n
  | None -> ());
  add "  %s\n\n" (Ast.to_string r.expr);
  add "  %-36s %-9s %-10s %-7s %10s %12s %-12s %s\n" "node" "shape" "repr"
    "density" "standard" "factorized" "decision" "rule";
  List.iter
    (fun a ->
      let indent = String.make (2 * List.length a.a_path) ' ' in
      add "  %-36s %-9s %-10s %-7s %10s %12s %-12s %s\n"
        (indent ^ a.a_label)
        (shape_str a.a_value.shape)
        (repr_str a.a_value.repr)
        (match a.a_value.density with
        | Some d -> Printf.sprintf "%.2f" d
        | None -> "-")
        (flops_str a.a_standard)
        (flops_str a.a_factorized)
        (match a.a_decision with
        | Some c -> Decision.to_string c
        | None -> "-")
        (Option.value a.a_rule ~default:"-"))
    r.nodes;
  let std, fact = totals r in
  add "\n  plan totals: standard %.3g flops, factorized %.3g flops" std fact;
  if fact > 0.0 && std > 0.0 then
    add " (predicted speedup %.2fx)" (std /. fact);
  add "\n  result: %s %s\n" (shape_str r.result.shape) (repr_str r.result.repr);
  (match r.diagnostics with
  | [] -> add "  no diagnostics\n"
  | ds ->
    add "\n";
    List.iter (fun d -> add "  %s\n" (diagnostic_to_string d)) ds);
  Buffer.contents buf

let pp_report ppf r = Format.pp_print_string ppf (report_to_string r)
