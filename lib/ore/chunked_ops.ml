(* Streaming LA operators over chunked matrices — the operator layer the
   paper builds on top of ore.rowapply ("This function is used to build
   LA operators (such [as] matrix multiplications) for larger-than-
   memory data", appendix N). Skinny results (vectors, d×k matrices)
   stay in memory; n-row results are aligned with the input chunks.

   Parallelism is across chunks: the execution engine schedules one
   task per chunk index ([~grain:1]), so several chunks are read and
   processed concurrently while reductions still combine per-chunk
   partials in canonical chunk order (bitwise-deterministic across
   backends). The in-memory kernels invoked inside a task detect the
   enclosing parallel region and run sequentially. *)

open La

(* One task per chunk: process chunk [i] with [f]. *)
let for_chunks exec store f =
  Exec.parallel_for (Exec.resolve exec) ~lo:0 ~hi:(Chunk_store.nchunks store)
    (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

(* Reduce per-chunk partials in canonical chunk order. *)
let reduce_chunks exec store ~body ~combine =
  Exec.reduce ~grain:1 (Exec.resolve exec) ~lo:0
    ~hi:(Chunk_store.nchunks store)
    ~body:(fun lo hi ->
      let acc = ref (body lo) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (body i)
      done ;
      !acc)
    ~combine

let add_into acc part =
  let ad = Dense.data acc and pd = Dense.data part in
  for i = 0 to Array.length ad - 1 do
    Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get pd i)
  done ;
  acc

(* T·X for skinny dense X: one pass, output n×k in memory. *)
let lmm ?exec store x =
  if Dense.rows x <> Chunk_store.cols store then
    invalid_arg "Chunked_ops.lmm: dim mismatch" ;
  let blocks = Array.make (Chunk_store.nchunks store) None in
  for_chunks exec store (fun i ->
      blocks.(i) <- Some (Blas.gemm (Chunk_store.get store i) x)) ;
  Dense.vcat (List.map Option.get (Array.to_list blocks))

(* Tᵀ·P for P (n×k) in memory: stream chunks, slice P, accumulate d×k. *)
let tlmm ?exec store p =
  if Dense.rows p <> Chunk_store.rows store then
    invalid_arg "Chunked_ops.tlmm: dim mismatch" ;
  let d = Chunk_store.cols store and k = Dense.cols p in
  if Chunk_store.nchunks store = 0 then Dense.create d k
  else begin
    let bounds = Array.of_list (Chunk_store.boundaries store) in
    reduce_chunks exec store
      ~body:(fun i ->
        let lo, hi = bounds.(i) in
        let slice = Dense.sub_rows p ~lo ~hi in
        Blas.tgemm (Chunk_store.get store i) slice)
      ~combine:add_into
  end

(* crossprod(T): stream chunks, accumulate the d×d Gram blocks. *)
let crossprod ?exec store =
  let d = Chunk_store.cols store in
  if Chunk_store.nchunks store = 0 then Dense.create d d
  else
    reduce_chunks exec store
      ~body:(fun i -> Blas.crossprod (Chunk_store.get store i))
      ~combine:add_into

let row_sums ?exec store =
  let blocks = Array.make (Chunk_store.nchunks store) None in
  for_chunks exec store (fun i ->
      blocks.(i) <- Some (Dense.row_sums (Chunk_store.get store i))) ;
  Dense.vcat (List.map Option.get (Array.to_list blocks))

let col_sums ?exec store =
  if Chunk_store.nchunks store = 0 then
    Dense.create 1 (Chunk_store.cols store)
  else
    reduce_chunks exec store
      ~body:(fun i -> Dense.col_sums (Chunk_store.get store i))
      ~combine:add_into

let sum ?exec store =
  if Chunk_store.nchunks store = 0 then 0.0
  else
    reduce_chunks exec store
      ~body:(fun i -> Dense.sum (Chunk_store.get store i))
      ~combine:( +. )
