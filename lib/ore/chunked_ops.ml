(* Streaming LA operators over chunked matrices — the operator layer the
   paper builds on top of ore.rowapply ("This function is used to build
   LA operators (such [as] matrix multiplications) for larger-than-
   memory data", appendix N). Skinny results (vectors, d×k matrices)
   stay in memory; n-row results are aligned with the input chunks. *)

open La

(* T·X for skinny dense X: one pass, output n×k in memory. *)
let lmm store x =
  if Dense.rows x <> Chunk_store.cols store then
    invalid_arg "Chunked_ops.lmm: dim mismatch" ;
  let blocks =
    List.rev
      (Chunk_store.fold store ~init:[] ~f:(fun acc _ chunk ->
           Blas.gemm chunk x :: acc))
  in
  Dense.vcat blocks

(* Tᵀ·P for P (n×k) in memory: stream chunks, slice P, accumulate d×k. *)
let tlmm store p =
  if Dense.rows p <> Chunk_store.rows store then
    invalid_arg "Chunked_ops.tlmm: dim mismatch" ;
  let d = Chunk_store.cols store and k = Dense.cols p in
  let acc = Dense.create d k in
  let offset = ref 0 in
  Chunk_store.iter store ~f:(fun _ chunk ->
      let lo = !offset in
      let hi = lo + Dense.rows chunk in
      offset := hi ;
      let slice = Dense.sub_rows p ~lo ~hi in
      let contrib = Blas.tgemm chunk slice in
      let ad = Dense.data acc and cd = Dense.data contrib in
      for i = 0 to Array.length ad - 1 do
        Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get cd i)
      done) ;
  acc

(* crossprod(T): stream chunks, accumulate the d×d Gram blocks. *)
let crossprod store =
  let d = Chunk_store.cols store in
  Chunk_store.fold store ~init:(Dense.create d d) ~f:(fun acc _ chunk ->
      Dense.add acc (Blas.crossprod chunk))

let row_sums store =
  let blocks =
    List.rev
      (Chunk_store.fold store ~init:[] ~f:(fun acc _ chunk ->
           Dense.row_sums chunk :: acc))
  in
  Dense.vcat blocks

let col_sums store =
  Chunk_store.fold store ~init:(Dense.create 1 (Chunk_store.cols store))
    ~f:(fun acc _ chunk -> Dense.add acc (Dense.col_sums chunk))

let sum store =
  Chunk_store.fold store ~init:0.0 ~f:(fun acc _ chunk ->
      acc +. Dense.sum chunk)
