(** File-backed row-chunked dense matrices: the stand-in for ORE's
    larger-than-memory ore.frame (paper §5.2.4, appendix N). A matrix is
    a directory of row-chunk files; operators stream one chunk at a time
    through memory. *)

open La

type t

val dir : t -> string
val cols : t -> int
val nchunks : t -> int
val rows : t -> int

val boundaries : t -> (int * int) list
(** Row ranges [lo, hi) of each chunk, from metadata (no file reads). *)

val create : dir:string -> cols:int -> t
(** An empty store (creates the directory). *)

val append : t -> Dense.t -> t
(** Write a chunk to disk and return the extended store. *)

val get : t -> int -> Dense.t
(** Read chunk [i] back from disk. *)

val fold : t -> init:'a -> f:('a -> int -> Dense.t -> 'a) -> 'a
(** Stream every chunk through [f acc index chunk]. *)

val iter : t -> f:(int -> Dense.t -> unit) -> unit

val of_dense : dir:string -> chunk_size:int -> Dense.t -> t
(** Spill an in-memory matrix into chunks of [chunk_size] rows. *)

val to_dense : t -> Dense.t

val rowapply : t -> dir:string -> f:(Dense.t -> Dense.t) -> t
(** ore.rowapply: apply a chunk-wise transformation, writing the result
    as a new chunked matrix. *)

val delete : t -> unit
(** Remove the chunk files (and the directory if then empty). *)
