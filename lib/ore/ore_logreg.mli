(** Logistic regression over chunked data: both execution paths of the
    paper's §5.2.4 scalability experiment (Tables 9/10). The
    materialized path streams the wide T from disk; the Morpheus path
    streams only the narrow S (or indicator windows for M:N) with R in
    memory. *)

open La

val gradient_weights : Dense.t -> Dense.t -> Dense.t
(** g = Y / (1 + exp(Y·scores)) for ±1 labels. *)

val iteration_materialized :
  alpha:float -> Chunk_store.t -> Dense.t -> Dense.t -> Dense.t
(** One GD step streaming the materialized T. *)

val iteration_factorized :
  alpha:float -> Chunked_normalized.t -> Dense.t -> Dense.t -> Dense.t
(** One GD step over the chunked normalized matrix. *)

val train_materialized :
  ?alpha:float ->
  ?iters:int ->
  ?w0:Dense.t ->
  ?on_iter:(int -> Dense.t -> unit) ->
  Chunk_store.t ->
  Dense.t ->
  Dense.t
(** [w0] seeds the weights (copied); [on_iter i w] observes the live
    weights after iteration [i] (1-based) — the checkpoint hook.
    Resuming with the checkpointed weights and the remaining iteration
    count is bitwise-identical to the uninterrupted run. Raises
    {!La.Validate.Numeric_error} if an update produces a non-finite
    weight. *)

val train_factorized :
  ?alpha:float ->
  ?iters:int ->
  ?w0:Dense.t ->
  ?on_iter:(int -> Dense.t -> unit) ->
  Chunked_normalized.t ->
  Dense.t ->
  Dense.t
(** Same contract as {!train_materialized} on the factorized path. *)
