(* Morpheus-on-ORE (§5.2.4): the normalized matrix whose entity side S is
   a chunked on-disk matrix while the (much smaller) attribute matrices
   R_i stay in memory. The factorized operators stream S's chunks and
   apply the rewrite rules per chunk: the K·(R·X) term only needs the
   indicator mapping restricted to the chunk's rows. The materialized
   baseline instead streams the (1+FR)× wider T chunks — that width
   difference is exactly the paper's Tables 9/10 speed-up at scale.

   Covers both PK-FK (parts indexed by row mappings over R) and M:N
   (ent absent; S itself addressed through I_S) by reusing the uniform
   part representation. *)

open La
open Sparse

type part = {
  mapping : int array; (* indicator column per T-row, full length n *)
  r : Dense.t; (* in-memory attribute matrix *)
}

type t = {
  s : Chunk_store.t option; (* chunked entity matrix, or None for M:N *)
  n : int; (* logical row count of T *)
  chunk_size : int; (* row granularity when ent is absent *)
  parts : part list;
}

let of_pkfk ~s ~parts =
  let n = Chunk_store.rows s in
  List.iter
    (fun { mapping; _ } ->
      if Array.length mapping <> n then
        invalid_arg "Chunked_normalized: mapping length mismatch")
    parts ;
  { s = Some s; n; chunk_size = max 1 n; parts }

(* M:N: all feature matrices are attribute parts (I_S·S, I_R·R); rows
   are streamed in [chunk_size] windows. *)
let of_mn ~chunk_size ~parts =
  match parts with
  | [] -> invalid_arg "Chunked_normalized.of_mn: no parts"
  | { mapping; _ } :: _ ->
    let n = Array.length mapping in
    { s = None; n; chunk_size; parts }

let rows t = t.n

let cols t =
  let ent = match t.s with Some s -> Chunk_store.cols s | None -> 0 in
  List.fold_left (fun acc p -> acc + Dense.cols p.r) ent t.parts

(* Chunk boundaries [(lo, hi)] over T's rows. *)
let windows t =
  match t.s with
  | Some s -> Chunk_store.boundaries s
  | None ->
    let rec go lo acc =
      if lo >= t.n then List.rev acc
      else begin
        let hi = min t.n (lo + t.chunk_size) in
        go hi ((lo, hi) :: acc)
      end
    in
    go 0 []

let col_ranges t =
  let ent = match t.s with Some s -> Chunk_store.cols s | None -> 0 in
  let ranges = ref [] and off = ref ent in
  List.iter
    (fun p ->
      let w = Dense.cols p.r in
      ranges := (!off, !off + w) :: !ranges ;
      off := !off + w)
    t.parts ;
  ((0, ent), List.rev !ranges)

(* Factorized T·X: per chunk, S_chunk·X_S plus row-gathers of the
   precomputed R_i·X_i (computed once per call, not per chunk). *)
let lmm t x =
  if Dense.rows x <> cols t then invalid_arg "Chunked_normalized.lmm" ;
  let (elo, ehi), ranges = col_ranges t in
  let k = Dense.cols x in
  let part_products =
    List.map2
      (fun p (lo, hi) -> (p, Blas.gemm p.r (Dense.sub_rows x ~lo ~hi)))
      t.parts ranges
  in
  let out = Dense.create t.n k in
  let chunk_index = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let base =
        match t.s with
        | Some s ->
          let c = Chunk_store.get s !chunk_index in
          incr chunk_index ;
          Blas.gemm c (Dense.sub_rows x ~lo:elo ~hi:ehi)
        | None -> Dense.create (hi - lo) k
      in
      List.iter
        (fun (p, z) ->
          Flops.add ((hi - lo) * k) ;
          for i = lo to hi - 1 do
            let zrow = p.mapping.(i) in
            for j = 0 to k - 1 do
              Dense.unsafe_set base (i - lo) j
                (Dense.unsafe_get base (i - lo) j +. Dense.unsafe_get z zrow j)
            done
          done)
        part_products ;
      Dense.blit_block ~src:base ~dst:out ~row:lo ~col:0)
    (windows t) ;
  out

(* Factorized Tᵀ·P: stream chunks once, accumulating the S-part with
   tgemm and the R-parts with scatter-adds, then multiply through R_i. *)
let tlmm t p =
  if Dense.rows p <> t.n then invalid_arg "Chunked_normalized.tlmm" ;
  let k = Dense.cols p in
  let ent_cols = match t.s with Some s -> Chunk_store.cols s | None -> 0 in
  let ent_acc = Dense.create ent_cols k in
  let scatter =
    List.map (fun part -> (part, Dense.create (Dense.rows part.r) k)) t.parts
  in
  let chunk_index = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let pslice = Dense.sub_rows p ~lo ~hi in
      (match t.s with
      | Some s ->
        let c = Chunk_store.get s !chunk_index in
        incr chunk_index ;
        let contrib = Blas.tgemm c pslice in
        let ad = Dense.data ent_acc and cd = Dense.data contrib in
        for i = 0 to Array.length ad - 1 do
          Array.unsafe_set ad i
            (Array.unsafe_get ad i +. Array.unsafe_get cd i)
        done
      | None -> ()) ;
      List.iter
        (fun (part, acc) ->
          Flops.add ((hi - lo) * k) ;
          for i = lo to hi - 1 do
            let row = part.mapping.(i) in
            for j = 0 to k - 1 do
              Dense.unsafe_set acc row j
                (Dense.unsafe_get acc row j +. Dense.unsafe_get pslice (i - lo) j)
            done
          done)
        scatter)
    (windows t) ;
  let blocks =
    (if ent_cols > 0 then [ ent_acc ] else [])
    @ List.map (fun (part, acc) -> Blas.tgemm part.r acc) scatter
  in
  Dense.vcat blocks

(* Materialize T to a chunked store — the baseline path's input. *)
let materialize ~dir t =
  let store = ref (Chunk_store.create ~dir ~cols:(cols t)) in
  let chunk_index = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let ent_block =
        match t.s with
        | Some s ->
          let c = Chunk_store.get s !chunk_index in
          incr chunk_index ;
          [ c ]
        | None -> []
      in
      let part_blocks =
        List.map
          (fun p ->
            Dense.init (hi - lo) (Dense.cols p.r) (fun i j ->
                Dense.unsafe_get p.r p.mapping.(lo + i) j))
          t.parts
      in
      store := Chunk_store.append !store (Dense.hcat (ent_block @ part_blocks)))
    (windows t) ;
  !store

(* Remove the on-disk entity chunks (no-op for M:N, which has none). *)
let cleanup t =
  match t.s with Some s -> Chunk_store.delete s | None -> ()

(* Convenience: build from an in-memory normalized matrix by spilling
   the entity matrix to disk. *)
let of_normalized ~dir ~chunk_size nm =
  let parts =
    List.map
      (fun (p : Morpheus.Normalized.part) ->
        { mapping = Indicator.mapping p.Morpheus.Normalized.ind;
          r = Mat.dense p.Morpheus.Normalized.mat })
      (Morpheus.Normalized.parts nm)
  in
  match Morpheus.Normalized.ent nm with
  | Some s ->
    let store = Chunk_store.of_dense ~dir ~chunk_size (Mat.dense s) in
    of_pkfk ~s:store ~parts
  | None -> of_mn ~chunk_size ~parts
