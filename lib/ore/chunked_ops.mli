(** Streaming LA operators over chunked matrices — the operator layer
    built on ore.rowapply (appendix N). Skinny results stay in memory;
    n-row results align with the input chunks.

    Work is parallel {e across chunks} (one execution-engine task per
    chunk index, reading and processing several chunks concurrently);
    reductions combine per-chunk partials in canonical chunk order, so
    results are bitwise-identical across backends. [?exec] overrides
    the process-default backend ({!La.Exec.default}). *)

open La

val lmm : ?exec:Exec.t -> Chunk_store.t -> Dense.t -> Dense.t
(** T·X for skinny dense X, one pass over the chunks. *)

val tlmm : ?exec:Exec.t -> Chunk_store.t -> Dense.t -> Dense.t
(** Tᵀ·P for in-memory P (n×k): stream, slice, accumulate d×k. *)

val crossprod : ?exec:Exec.t -> Chunk_store.t -> Dense.t
(** TᵀT accumulated chunk by chunk. *)

val row_sums : ?exec:Exec.t -> Chunk_store.t -> Dense.t
val col_sums : ?exec:Exec.t -> Chunk_store.t -> Dense.t
val sum : ?exec:Exec.t -> Chunk_store.t -> float
