(** Streaming LA operators over chunked matrices — the operator layer
    built on ore.rowapply (appendix N). Skinny results stay in memory;
    n-row results align with the input chunks. *)

open La

val lmm : Chunk_store.t -> Dense.t -> Dense.t
(** T·X for skinny dense X, one pass over the chunks. *)

val tlmm : Chunk_store.t -> Dense.t -> Dense.t
(** Tᵀ·P for in-memory P (n×k): stream, slice, accumulate d×k. *)

val crossprod : Chunk_store.t -> Dense.t
(** TᵀT accumulated chunk by chunk. *)

val row_sums : Chunk_store.t -> Dense.t
val col_sums : Chunk_store.t -> Dense.t
val sum : Chunk_store.t -> float
