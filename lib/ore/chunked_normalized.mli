(** Morpheus-on-ORE (§5.2.4): a normalized matrix whose entity side is a
    chunked on-disk matrix while the small attribute matrices stay in
    memory. Factorized operators stream the chunks and apply the rewrite
    rules per chunk; the materialized baseline instead streams the
    (1+FR)× wider T — that width difference is Tables 9/10's speed-up. *)

open La

type part = {
  mapping : int array;  (** indicator column per T-row, full length *)
  r : Dense.t;  (** in-memory attribute matrix *)
}

type t

val of_pkfk : s:Chunk_store.t -> parts:part list -> t

val of_mn : chunk_size:int -> parts:part list -> t
(** M:N shape: no entity store; rows are streamed in [chunk_size]
    windows. *)

val of_normalized : dir:string -> chunk_size:int -> Morpheus.Normalized.t -> t
(** Spill an in-memory normalized matrix's entity part to disk. *)

val rows : t -> int
val cols : t -> int

val windows : t -> (int * int) list
(** Streaming row windows (chunk boundaries). *)

val lmm : t -> Dense.t -> Dense.t
(** Factorized T·X: per chunk, S_chunk·X_S plus row-gathers of the
    precomputed Rᵢ·Xᵢ. *)

val tlmm : t -> Dense.t -> Dense.t
(** Factorized Tᵀ·P: one streaming pass accumulating the S part with a
    transposed product and the R parts with scatter-adds. *)

val materialize : dir:string -> t -> Chunk_store.t
(** Write the denormalized T chunk by chunk — the baseline's input. *)

val cleanup : t -> unit
(** Delete the on-disk entity chunks (no-op for M:N). *)
