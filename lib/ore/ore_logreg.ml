(* Logistic regression over chunked data, both execution paths of the
   paper's §5.2.4 scalability experiment (Tables 9 and 10): the
   materialized path streams the wide T from disk; the Morpheus path
   streams only the narrow S (PK-FK) or nothing but indicator windows
   (M:N) while R stays in memory. *)

open La

let gradient_weights y scores =
  Dense.init (Dense.rows y) 1 (fun i _ ->
      let yi = Dense.get y i 0 and s = Dense.get scores i 0 in
      yi /. (1.0 +. Stdlib.exp (yi *. s)))

(* One GD iteration over a materialized chunk store. *)
let iteration_materialized ~alpha t_store y w =
  let scores = Chunked_ops.lmm t_store w in
  let p = gradient_weights y scores in
  let grad = Chunked_ops.tlmm t_store p in
  Dense.add w (Dense.scale alpha grad)

(* One GD iteration over the chunked normalized matrix. *)
let iteration_factorized ~alpha t y w =
  let scores = Chunked_normalized.lmm t w in
  let p = gradient_weights y scores in
  let grad = Chunked_normalized.tlmm t p in
  Dense.add w (Dense.scale alpha grad)

(* [w0] + the per-iteration [on_iter] hook carry checkpoint/resume: the
   loop body only depends on the current weights, so re-invoking with
   the checkpointed w and the remaining iteration count replays the
   uninterrupted run bitwise. *)
let train_materialized ?(alpha = 1e-4) ?(iters = 5) ?w0 ?on_iter t_store y =
  let w =
    ref
      (match w0 with
      | Some w -> Dense.copy w
      | None -> Dense.create (Chunk_store.cols t_store) 1)
  in
  for it = 1 to iters do
    w := iteration_materialized ~alpha t_store y !w ;
    Validate.check_array ~stage:"ore_logreg.step" (Dense.data !w) ;
    match on_iter with Some f -> f it !w | None -> ()
  done ;
  !w

let train_factorized ?(alpha = 1e-4) ?(iters = 5) ?w0 ?on_iter t y =
  let w =
    ref
      (match w0 with
      | Some w -> Dense.copy w
      | None -> Dense.create (Chunked_normalized.cols t) 1)
  in
  for it = 1 to iters do
    w := iteration_factorized ~alpha t y !w ;
    Validate.check_array ~stage:"ore_logreg.step" (Dense.data !w) ;
    match on_iter with Some f -> f it !w | None -> ()
  done ;
  !w
