(* Logistic regression over chunked data, both execution paths of the
   paper's §5.2.4 scalability experiment (Tables 9 and 10): the
   materialized path streams the wide T from disk; the Morpheus path
   streams only the narrow S (PK-FK) or nothing but indicator windows
   (M:N) while R stays in memory. *)

open La

let gradient_weights y scores =
  Dense.init (Dense.rows y) 1 (fun i _ ->
      let yi = Dense.get y i 0 and s = Dense.get scores i 0 in
      yi /. (1.0 +. Stdlib.exp (yi *. s)))

(* One GD iteration over a materialized chunk store. *)
let iteration_materialized ~alpha t_store y w =
  let scores = Chunked_ops.lmm t_store w in
  let p = gradient_weights y scores in
  let grad = Chunked_ops.tlmm t_store p in
  Dense.add w (Dense.scale alpha grad)

(* One GD iteration over the chunked normalized matrix. *)
let iteration_factorized ~alpha t y w =
  let scores = Chunked_normalized.lmm t w in
  let p = gradient_weights y scores in
  let grad = Chunked_normalized.tlmm t p in
  Dense.add w (Dense.scale alpha grad)

let train_materialized ?(alpha = 1e-4) ?(iters = 5) t_store y =
  let w = ref (Dense.create (Chunk_store.cols t_store) 1) in
  for _ = 1 to iters do
    w := iteration_materialized ~alpha t_store y !w
  done ;
  !w

let train_factorized ?(alpha = 1e-4) ?(iters = 5) t y =
  let w = ref (Dense.create (Chunked_normalized.cols t) 1) in
  for _ = 1 to iters do
    w := iteration_factorized ~alpha t y !w
  done ;
  !w
