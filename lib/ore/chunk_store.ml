(* File-backed row-chunked dense matrices: the stand-in for Oracle R
   Enterprise's larger-than-memory ore.frame (paper §5.2.4, appendix N).
   A matrix lives on disk as a directory of row-chunk files; operators
   stream one chunk at a time through memory, which is exactly the
   ore.rowapply execution model the paper built Morpheus-on-ORE with. *)

open La

type t = {
  dir : string;
  cols : int;
  chunk_rows : int list; (* row count per chunk, in order *)
}

let dir t = t.dir
let cols t = t.cols
let nchunks t = List.length t.chunk_rows
let rows t = List.fold_left ( + ) 0 t.chunk_rows

let chunk_path t i = Filename.concat t.dir (Printf.sprintf "chunk_%06d.bin" i)

(* Row ranges [(lo, hi)] of each chunk, from metadata (no file reads). *)
let boundaries t =
  let acc = ref [] and off = ref 0 in
  List.iter
    (fun n ->
      acc := (!off, !off + n) :: !acc ;
      off := !off + n)
    t.chunk_rows ;
  List.rev !acc

let create ~dir ~cols =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 ;
  { dir; cols; chunk_rows = [] }

(* Append a chunk (written immediately to disk). *)
let append t chunk =
  if Dense.cols chunk <> t.cols then
    invalid_arg "Chunk_store.append: column mismatch" ;
  Fault.point "chunk_store.write" ;
  let i = nchunks t in
  let t = { t with chunk_rows = t.chunk_rows @ [ Dense.rows chunk ] } in
  let oc = open_out_bin (chunk_path t i) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_binary_int oc (Dense.rows chunk) ;
      output_binary_int oc (Dense.cols chunk) ;
      Marshal.to_channel oc (Dense.data chunk) []) ;
  t

let get t i =
  if i < 0 || i >= nchunks t then invalid_arg "Chunk_store.get: bad index" ;
  Fault.point "chunk_store.read" ;
  let path = chunk_path t i in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let corrupt fmt =
        Printf.ksprintf (fun s -> raise (Morpheus.Io.Corrupt s)) fmt
      in
      let rows, cols, (data : float array) =
        try
          let rows = input_binary_int ic in
          let cols = input_binary_int ic in
          (rows, cols, Marshal.from_channel ic)
        with End_of_file | Failure _ ->
          corrupt "%s: truncated or damaged chunk" path
      in
      if rows < 0 || cols < 0 || Array.length data <> rows * cols then
        corrupt "%s: %d values for a %dx%d chunk" path (Array.length data)
          rows cols ;
      (* streamed chunks feed factorized products directly; refuse a
         poisoned chunk at the read boundary *)
      Validate.check_array ~stage:("chunk_store.read " ^ path) data ;
      Dense.of_array ~rows ~cols data)

(* Stream all chunks through [f], accumulating. [f acc index chunk]. *)
let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to nchunks t - 1 do
    acc := f !acc i (get t i)
  done ;
  !acc

let iter t ~f = fold t ~init:() ~f:(fun () i c -> f i c)

(* Split an in-memory matrix into chunks of [chunk_size] rows. *)
let of_dense ~dir ~chunk_size m =
  let t = create ~dir ~cols:(Dense.cols m) in
  let n = Dense.rows m in
  let rec go t lo =
    if lo >= n then t
    else begin
      let hi = min n (lo + chunk_size) in
      go (append t (Dense.sub_rows m ~lo ~hi)) hi
    end
  in
  go t 0

let to_dense t =
  Dense.vcat (List.init (nchunks t) (get t))

(* ore.rowapply: apply a chunk-wise transformation, writing the result
   as a new chunked matrix. *)
let rowapply t ~dir ~f =
  let out = ref None in
  iter t ~f:(fun _ chunk ->
      let r = f chunk in
      let store =
        match !out with
        | None -> create ~dir ~cols:(Dense.cols r)
        | Some s -> s
      in
      out := Some (append store r)) ;
  match !out with
  | Some s -> s
  | None -> create ~dir ~cols:0

let delete t =
  for i = 0 to nchunks t - 1 do
    let p = chunk_path t i in
    if Sys.file_exists p then Sys.remove p
  done ;
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    try Sys.rmdir t.dir with Sys_error _ -> ()
