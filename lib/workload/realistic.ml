(* Simulated versions of the seven real-world datasets of Table 6
   (Expedia, Movies, Yelp, Walmart, LastFM, Books, Flights, adapted in
   the paper from Kumar et al. SIGMOD'16). The raw data is not
   redistributable, so per DESIGN.md we generate sparse one-hot feature
   matrices matching the published per-table statistics
   (n_S, d_S, nnz_S) and (n_Ri, d_Ri, nnz_i): the factorized-vs-
   materialized runtime ratio depends only on these dimensions and
   sparsities, not on the feature values, so Table 7's shape is
   preserved. [scale_rows]/[scale_cols] shrink the dataset uniformly for
   quick runs; ratios (TR, FR, nnz-per-row) are preserved. *)

open La
open Sparse
open Morpheus

type table_stats = { n : int; d : int; nnz : int }

type spec = {
  name : string;
  s : table_stats;
  atts : table_stats list;
}

(* Table 6 of the paper, verbatim. *)
let expedia =
  { name = "Expedia";
    s = { n = 942142; d = 27; nnz = 5652852 };
    atts =
      [ { n = 11939; d = 12013; nnz = 107451 };
        { n = 37021; d = 40242; nnz = 555315 } ] }

let movies =
  { name = "Movies";
    s = { n = 1000209; d = 0; nnz = 0 };
    atts =
      [ { n = 6040; d = 9509; nnz = 30200 };
        { n = 3706; d = 3839; nnz = 81532 } ] }

let yelp =
  { name = "Yelp";
    s = { n = 215879; d = 0; nnz = 0 };
    atts =
      [ { n = 11535; d = 11706; nnz = 380655 };
        { n = 43873; d = 43900; nnz = 307111 } ] }

let walmart =
  { name = "Walmart";
    s = { n = 421570; d = 1; nnz = 421570 };
    atts =
      [ { n = 2340; d = 2387; nnz = 23400 };
        { n = 45; d = 53; nnz = 135 } ] }

let lastfm =
  { name = "LastFM";
    s = { n = 343747; d = 0; nnz = 0 };
    atts =
      [ { n = 4099; d = 5019; nnz = 39992 };
        { n = 50000; d = 50233; nnz = 250000 } ] }

let books =
  { name = "Books";
    s = { n = 253120; d = 0; nnz = 0 };
    atts =
      [ { n = 27876; d = 28022; nnz = 83628 };
        { n = 49972; d = 53641; nnz = 249860 } ] }

let flights =
  { name = "Flights";
    s = { n = 66548; d = 20; nnz = 55301 };
    atts =
      [ { n = 540; d = 718; nnz = 3240 };
        { n = 3167; d = 6464; nnz = 22169 };
        { n = 3170; d = 6467; nnz = 22190 } ] }

let all = [ expedia; movies; yelp; walmart; lastfm; books; flights ]

let find name =
  match
    List.find_opt
      (fun s -> String.lowercase_ascii s.name = String.lowercase_ascii name)
      all
  with
  | Some s -> s
  | None -> invalid_arg ("Realistic.find: unknown dataset " ^ name)

(* Generate a sparse feature matrix with the given statistics: the
   expected nnz-per-row entries are spread over random columns, values
   1.0 (one-hot style) with a few numeric-looking magnitudes mixed in. *)
let gen_table rng { n; d; nnz } =
  if d = 0 || n = 0 then Mat.of_csr (Csr.of_triplets ~rows:n ~cols:d [])
  else begin
    let per_row = max 1 (int_of_float (Float.round (float_of_int nnz /. float_of_int n))) in
    let per_row = min per_row d in
    let triplets = ref [] in
    for i = 0 to n - 1 do
      (* distinct columns per row: sample-and-retry on a small set *)
      let chosen = Hashtbl.create per_row in
      while Hashtbl.length chosen < per_row do
        let c = Rng.int rng d in
        if not (Hashtbl.mem chosen c) then Hashtbl.add chosen c ()
      done ;
      Hashtbl.iter
        (fun c () ->
          let v = if Rng.float rng < 0.9 then 1.0 else Rng.uniform rng ~lo:0.1 ~hi:3.0 in
          triplets := (i, c, v) :: !triplets)
        chosen
    done ;
    Mat.of_csr (Csr.of_triplets ~rows:n ~cols:d !triplets)
  end

let scaled_stats ~scale_rows ~scale_cols { n; d; nnz } =
  let n' = max 1 (int_of_float (float_of_int n *. scale_rows)) in
  let d' = max (min d 1) (int_of_float (float_of_int d *. scale_cols)) in
  (* preserve nnz-per-row; cap by available columns *)
  let per_row = float_of_int nnz /. float_of_int (max n 1) in
  { n = n'; d = d'; nnz = int_of_float (per_row *. float_of_int n') }

(* Instantiate a dataset spec as a star-schema normalized matrix plus
   targets, at the given scale. *)
let load ?(seed = 7) ?(scale_rows = 1.0) ?(scale_cols = 1.0) spec =
  let rng = Rng.of_int (seed + Hashtbl.hash spec.name) in
  let s_stats = scaled_stats ~scale_rows ~scale_cols spec.s in
  let ns = max 2 s_stats.n in
  let s_stats = { s_stats with n = ns } in
  let s = gen_table rng s_stats in
  let parts =
    List.map
      (fun att ->
        let st = scaled_stats ~scale_rows ~scale_cols att in
        (* every attribute row must be referenced: need n_R <= n_S *)
        let st = { st with n = max 1 (min st.n ns) } in
        let k = Indicator.random ~rng ~rows:ns ~cols:st.n () in
        (k, gen_table rng st))
      spec.atts
  in
  let t = Normalized.star ~s ~parts in
  let y =
    Dense.init ns 1 (fun _ _ -> if Rng.bool rng then 1.0 else -1.0)
  in
  let y_numeric = Dense.init ns 1 (fun _ _ -> Rng.gaussian rng) in
  (t, y, y_numeric)
