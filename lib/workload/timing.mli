(** Wall-clock measurement for the benches: GC-isolated single runs and
    warmup + median-of-runs, enough to read off the speed-up ratios the
    paper reports. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary epoch (CLOCK_MONOTONIC).
    Use only differences; never compare against calendar time. *)

val time : (unit -> 'a) -> 'a * float
(** One run's result and wall-clock seconds. A full major collection
    runs first so leftover garbage from previous measurements is not
    charged to this one. *)

val measure : ?warmup:int -> ?runs:int -> (unit -> 'a) -> float
(** Median seconds over [runs] measured executions after [warmup]
    unmeasured ones (defaults 1 and 3). *)

(** {1 Allocation-aware measurement}

    Wall-clock time plus [Gc.quick_stat] heap-allocation deltas, the
    observable behind the allocation columns of BENCH_memo.json: the
    [_into] kernels and preallocated ML workspaces show up as
    minor/major words dropping, not just as time. Counters are
    per-domain; work done on Exec pool domains is not charged. *)

type alloc = {
  seconds : float;
  minor_words : float;  (** words allocated on the minor heap *)
  major_words : float;  (** words allocated directly on the major heap *)
  promoted_words : float;  (** minor-heap survivors moved to the major heap *)
}

val time_alloc : (unit -> 'a) -> 'a * alloc
(** One GC-isolated run's result, seconds, and allocation deltas. *)

val measure_alloc : ?warmup:int -> ?runs:int -> (unit -> 'a) -> alloc
(** Median seconds over [runs] measured executions after [warmup]
    unmeasured ones, with the (deterministic) allocation counters of a
    single run. *)

val speedup : materialized:float -> factorized:float -> float

val pp_seconds : Format.formatter -> float -> unit
