(** Wall-clock measurement for the benches: GC-isolated single runs and
    warmup + median-of-runs, enough to read off the speed-up ratios the
    paper reports. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary epoch (CLOCK_MONOTONIC).
    Use only differences; never compare against calendar time. *)

val time : (unit -> 'a) -> 'a * float
(** One run's result and wall-clock seconds. A full major collection
    runs first so leftover garbage from previous measurements is not
    charged to this one. *)

val measure : ?warmup:int -> ?runs:int -> (unit -> 'a) -> float
(** Median seconds over [runs] measured executions after [warmup]
    unmeasured ones (defaults 1 and 3). *)

val speedup : materialized:float -> factorized:float -> float

val pp_seconds : Format.formatter -> float -> unit
