(* Wall-clock measurement helpers shared by the benches: warmup + median
   of repeated runs, which is enough to read off the speed-up *ratios*
   the paper reports. *)

(* Monotonic clock (bechamel's CLOCK_MONOTONIC binding, nanoseconds
   since an arbitrary epoch): immune to NTP slews and wall-clock steps
   that made Unix.gettimeofday occasionally report negative or wildly
   wrong durations. Only differences of [now] are meaningful. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Wall-clock seconds of one run of [f], plus its result. A full major
   collection runs first so that garbage left over from previous
   measurements is not charged to [f] — without this, large temporary
   matrices freed by one path distort the other path's numbers. *)
let time f =
  Gc.full_major () ;
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

(* Median wall-clock seconds over [runs] measured executions after
   [warmup] unmeasured ones. *)
let measure ?(warmup = 1) ?(runs = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done ;
  let samples =
    List.init runs (fun _ ->
        let _, dt = time f in
        dt)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

(* ---- allocation-aware measurement ---- *)

type alloc = {
  seconds : float;
  minor_words : float; (* words allocated on the minor heap *)
  major_words : float; (* words allocated directly on the major heap *)
  promoted_words : float; (* minor-heap survivors copied to the major heap *)
}

(* One run's wall-clock time and heap allocation, from Gc.counters
   deltas. [Gc.counters] reads the allocation counters without walking
   the heap, so the measurement itself is cheap, and — unlike
   [Gc.quick_stat] on OCaml 5, whose major_words only refreshes at GC
   slice boundaries — it is accurate immediately after the allocation.
   The preceding full major collection gives every run the same
   starting heap. Counts are per-domain, so callers should run [f] on
   the calling domain (the Exec pool's share of a parallel kernel is
   not charged here). *)
let time_alloc f =
  Gc.full_major () ;
  let mi0, p0, ma0 = Gc.counters () in
  let t0 = now () in
  let x = f () in
  let dt = now () -. t0 in
  let mi1, p1, ma1 = Gc.counters () in
  ( x,
    {
      seconds = dt;
      minor_words = mi1 -. mi0;
      (* Gc's major_words includes promotions; report direct major
         allocation so the three columns are disjoint. *)
      major_words = ma1 -. ma0 -. (p1 -. p0);
      promoted_words = p1 -. p0;
    } )

(* Median-seconds sample with the allocation stats of that same run
   shape: time is the median over [runs]; allocation is deterministic
   for these kernels, so the last run's counters stand for all. *)
let measure_alloc ?(warmup = 1) ?(runs = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done ;
  let samples = List.init runs (fun _ -> snd (time_alloc f)) in
  let sorted =
    List.sort (fun a b -> compare a.seconds b.seconds) samples
  in
  let median = List.nth sorted (runs / 2) in
  let last = List.nth samples (runs - 1) in
  { last with seconds = median.seconds }

(* Speed-up of [fast] over [slow] (the paper's F-vs-M ratio). *)
let speedup ~materialized ~factorized = materialized /. factorized

let pp_seconds ppf s =
  if s < 1e-3 then Fmt.pf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Fmt.pf ppf "%.2fms" (s *. 1e3)
  else Fmt.pf ppf "%.2fs" s
