(* Wall-clock measurement helpers shared by the benches: warmup + median
   of repeated runs, which is enough to read off the speed-up *ratios*
   the paper reports. *)

(* Monotonic clock (bechamel's CLOCK_MONOTONIC binding, nanoseconds
   since an arbitrary epoch): immune to NTP slews and wall-clock steps
   that made Unix.gettimeofday occasionally report negative or wildly
   wrong durations. Only differences of [now] are meaningful. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Wall-clock seconds of one run of [f], plus its result. A full major
   collection runs first so that garbage left over from previous
   measurements is not charged to [f] — without this, large temporary
   matrices freed by one path distort the other path's numbers. *)
let time f =
  Gc.full_major () ;
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

(* Median wall-clock seconds over [runs] measured executions after
   [warmup] unmeasured ones. *)
let measure ?(warmup = 1) ?(runs = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done ;
  let samples =
    List.init runs (fun _ ->
        let _, dt = time f in
        dt)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

(* Speed-up of [fast] over [slow] (the paper's F-vs-M ratio). *)
let speedup ~materialized ~factorized = materialized /. factorized

let pp_seconds ppf s =
  if s < 1e-3 then Fmt.pf ppf "%.1fus" (s *. 1e6)
  else if s < 1.0 then Fmt.pf ppf "%.2fms" (s *. 1e3)
  else Fmt.pf ppf "%.2fs" s
