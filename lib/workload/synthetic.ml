(* Synthetic data generators mirroring the paper's §5 setup:
   - PK-FK joins parameterized by tuple ratio TR = n_S/n_R and feature
     ratio FR = d_R/d_S (Table 4);
   - M:N joins parameterized by the join-attribute domain size n_U
     (Table 5), where the "join attribute uniqueness degree" is n_U/n_S. *)

open La
open Sparse
open Morpheus

type pkfk = {
  t : Normalized.t;
  y : Dense.t; (* ±1 labels aligned with S's rows *)
  y_numeric : Dense.t; (* numeric target for regression *)
}

(* Random ±1 labels. *)
let labels rng n =
  Dense.init n 1 (fun _ _ -> if Rng.bool rng then 1.0 else -1.0)

(* Single PK-FK join with the given dimensions. *)
let pkfk ?(seed = 1) ~ns ~ds ~nr ~dr () =
  let rng = Rng.of_int seed in
  let s = Mat.of_dense (Dense.gaussian ~rng ns ds) in
  let r = Mat.of_dense (Dense.gaussian ~rng nr dr) in
  let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
  { t = Normalized.pkfk ~s ~k ~r;
    y = labels rng ns;
    y_numeric = Dense.gaussian ~rng ns 1 }

(* Multi-table star-schema PK-FK join (used by the Table 7 shape tests):
   one entity table and q attribute tables. *)
let star ?(seed = 1) ~ns ~ds ~atts () =
  let rng = Rng.of_int seed in
  let s = Mat.of_dense (Dense.gaussian ~rng ns ds) in
  let parts =
    List.map
      (fun (nr, dr) ->
        let k = Indicator.random ~rng ~rows:ns ~cols:nr () in
        let r = Mat.of_dense (Dense.gaussian ~rng nr dr) in
        (k, r))
      atts
  in
  { t = Normalized.star ~s ~parts;
    y = labels rng ns;
    y_numeric = Dense.gaussian ~rng ns 1 }

(* M:N equi-join: S and R both draw their join attribute uniformly from
   a domain of size n_U; every pair of matching tuples joins. Returns
   the normalized matrix (ent = None; parts = [(I_S,S); (I_R,R)]) plus
   targets aligned with the join output. *)
let mn ?(seed = 1) ~ns ~nr ~ds ~dr ~nu () =
  let rng = Rng.of_int seed in
  if nu <= 0 then invalid_arg "Synthetic.mn: nu must be positive" ;
  let js = Array.init ns (fun _ -> Rng.int rng nu) in
  let jr = Array.init nr (fun _ -> Rng.int rng nu) in
  (* bucket R rows by join value *)
  let buckets = Array.make nu [] in
  Array.iteri (fun j v -> buckets.(v) <- j :: buckets.(v)) jr ;
  Array.iteri (fun v l -> buckets.(v) <- List.rev l) buckets ;
  let is_rev = ref [] and ir_rev = ref [] in
  Array.iteri
    (fun i v ->
      List.iter
        (fun j ->
          is_rev := i :: !is_rev ;
          ir_rev := j :: !ir_rev)
        buckets.(v))
    js ;
  let is_map = Array.of_list (List.rev !is_rev) in
  let ir_map = Array.of_list (List.rev !ir_rev) in
  if Array.length is_map = 0 then invalid_arg "Synthetic.mn: empty join output" ;
  (* drop S/R tuples that never joined, as §3.6 assumes *)
  let compact map n =
    let used = Array.make n false in
    Array.iter (fun j -> used.(j) <- true) map ;
    let new_idx = Array.make n (-1) in
    let count = ref 0 in
    for j = 0 to n - 1 do
      if used.(j) then begin
        new_idx.(j) <- !count ;
        incr count
      end
    done ;
    (Array.map (fun j -> new_idx.(j)) map, new_idx, !count)
  in
  let is_map, _, ns' = compact is_map ns in
  let ir_map, _, nr' = compact ir_map nr in
  let s = Mat.of_dense (Dense.gaussian ~rng ns' ds) in
  let r = Mat.of_dense (Dense.gaussian ~rng nr' dr) in
  let is_ = Indicator.create ~cols:ns' is_map in
  let ir = Indicator.create ~cols:nr' ir_map in
  let t = Normalized.mn ~is_ ~s ~ir ~r in
  let n_out = Indicator.rows is_ in
  { t; y = labels rng n_out; y_numeric = Dense.gaussian ~rng n_out 1 }

(* The Table 4 presets: tuple-ratio sweep fixes (d_S, n_R) = (20, 1e6)
   and d_R ∈ {40, 80}; feature-ratio sweep fixes n_S ∈ {1e7, 2e7},
   (d_S, n_R) = (20, 1e6). [base] rescales every row count so the sweep
   shapes run at laptop scale; ratios are unchanged. *)
let table4_tuple_ratio ?(base = 10_000) ~tr ~fr () =
  let nr = base in
  let ns = tr * nr in
  let ds = 20 in
  let dr = int_of_float (fr *. float_of_int ds) in
  pkfk ~seed:(tr + (97 * dr)) ~ns ~ds ~nr ~dr ()

let table5_mn ?(base = 20_000) ~uniqueness () =
  let ns = base and nr = base in
  let nu = max 1 (int_of_float (uniqueness *. float_of_int ns)) in
  mn ~seed:(nu + 3) ~ns ~nr ~ds:20 ~dr:20 ~nu ()
