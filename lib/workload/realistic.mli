(** Simulated versions of the paper's seven real-world datasets
    (Table 6). The raw data is not redistributable; these generators
    produce sparse one-hot feature matrices matching the published
    per-table statistics (n, d, nnz), which is what the factorized-vs-
    materialized runtime ratio depends on (see DESIGN.md's substitution
    table). *)

open La
open Morpheus

type table_stats = { n : int; d : int; nnz : int }

type spec = {
  name : string;
  s : table_stats;  (** the entity table S *)
  atts : table_stats list;  (** the attribute tables R_i *)
}

(** The Table 6 rows, verbatim. *)

val expedia : spec
val movies : spec
val yelp : spec
val walmart : spec
val lastfm : spec
val books : spec
val flights : spec

val all : spec list
(** All seven, in the paper's order. *)

val find : string -> spec
(** Case-insensitive lookup; raises on unknown names. *)

val load :
  ?seed:int -> ?scale_rows:float -> ?scale_cols:float -> spec ->
  Normalized.t * Dense.t * Dense.t
(** Instantiate a spec as a star-schema normalized matrix plus (±1,
    numeric) targets. [scale_rows]/[scale_cols] shrink uniformly;
    nnz-per-row and the tuple ratio are preserved. *)
