(** Synthetic data generators mirroring the paper's §5 setup: PK-FK
    joins parameterized by tuple/feature ratio (Table 4) and M:N joins
    parameterized by the join-attribute domain size (Table 5). All
    generators are deterministic in [seed]. *)

open La
open Morpheus

type pkfk = {
  t : Normalized.t;
  y : Dense.t;  (** ±1 labels aligned with the data rows *)
  y_numeric : Dense.t;  (** numeric target for regression *)
}

val pkfk : ?seed:int -> ns:int -> ds:int -> nr:int -> dr:int -> unit -> pkfk
(** Single PK-FK join with dense Gaussian features. *)

val star : ?seed:int -> ns:int -> ds:int -> atts:(int * int) list -> unit -> pkfk
(** Star schema; each attribute table given as (n_Ri, d_Ri). *)

val mn : ?seed:int -> ns:int -> nr:int -> ds:int -> dr:int -> nu:int -> unit -> pkfk
(** M:N equi-join with join attributes uniform over a domain of size
    [nu]; base tuples that never join are dropped (§3.6). Targets align
    with the join output's rows. *)

val table4_tuple_ratio : ?base:int -> tr:int -> fr:float -> unit -> pkfk
(** The Table 4 shape at laptop scale: n_R = [base], n_S = TR·n_R,
    d_S = 20, d_R = FR·d_S. *)

val table5_mn : ?base:int -> uniqueness:float -> unit -> pkfk
(** The Table 5 shape: n_S = n_R = [base], n_U = uniqueness·n_S. *)
