(** Factorized mini-batch SGD — the paper's footnote 2 lists SGD as
    future work because it updates per mini-batch of T; with
    [Normalized.select_rows] each batch is a small normalized matrix
    sharing the attribute tables, so every step runs the factorized
    rewrites. *)

open La
open Morpheus

type config = {
  batch_size : int;
  alpha : float;
  epochs : int;
  seed : int;
}

val default_config : config
(** 256-row batches, α = 1e-3, 3 epochs. *)

val train :
  ?config:config -> family:Glm.family -> Normalized.t -> Dense.t -> Dense.t
(** Shuffled-epoch mini-batch gradient descent; returns the weights. *)
