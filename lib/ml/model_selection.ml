(* K-fold cross-validation over normalized matrices. Folds are row
   subsets of T, and Normalized.select_rows keeps them factorized: every
   fold shares the attribute tables, so CV costs k× the entity-side
   work only — the factorized-ML benefit compounds across the folds
   (the "model selection" workloads of Kumar et al. [27]). *)

open La
open Morpheus

(* Deterministic fold assignment: a shuffled partition into [k] parts. *)
let fold_indices ?(seed = 0) ~k n =
  if k < 2 || k > n then invalid_arg "Model_selection.fold_indices" ;
  let order = Array.init n Fun.id in
  Rng.shuffle (Rng.of_int seed) order ;
  List.init k (fun f ->
      let lo = f * n / k and hi = (f + 1) * n / k in
      Array.sub order lo (hi - lo))

(* Train/validation split matrices for one held-out fold. *)
let split t y folds held_out =
  let train_idx =
    Array.concat
      (List.filteri (fun i _ -> i <> held_out) folds)
  in
  let val_idx = List.nth folds held_out in
  let y_arr = Dense.col_to_array y in
  let sub idx =
    ( Normalized.select_rows t idx,
      Dense.of_col_array (Array.map (fun i -> y_arr.(i)) idx) )
  in
  (sub train_idx, sub val_idx)

type 'model fold_result = {
  model : 'model;
  train_score : float;
  val_score : float;
}

(* Generic k-fold loop: [fit train_t train_y] produces a model,
   [score model t y] evaluates it (lower = better, e.g. a loss). *)
let cross_validate ?seed ~k ~fit ~score t y =
  let folds = fold_indices ?seed ~k (Normalized.rows t) in
  List.init k (fun f ->
      let (t_train, y_train), (t_val, y_val) = split t y folds f in
      let model = fit t_train y_train in
      { model;
        train_score = score model t_train y_train;
        val_score = score model t_val y_val })

let mean_val_score results =
  List.fold_left (fun acc r -> acc +. r.val_score) 0.0 results
  /. float_of_int (List.length results)

(* Ridge-regression λ selection by k-fold CV — a complete, factorized
   model-selection pipeline. Returns (best λ, its mean validation RSS,
   all candidates with their scores). *)
let select_ridge_lambda ?seed ?(k = 5) ~lambdas t y =
  let module FL = Linreg.Make (Morpheus.Factorized_matrix) in
  let evaluate lambda =
    let results =
      cross_validate ?seed ~k
        ~fit:(fun t_train y_train -> Spectral.solve_ridge ~lambda t_train y_train)
        ~score:(fun w t_part y_part ->
          FL.rss t_part w y_part /. float_of_int (Normalized.rows t_part))
        t y
    in
    (lambda, mean_val_score results)
  in
  let scored = List.map evaluate lambdas in
  let best =
    List.fold_left
      (fun (bl, bs) (l, s) -> if s < bs then (l, s) else (bl, bs))
      (nan, infinity) scored
  in
  (fst best, snd best, scored)
