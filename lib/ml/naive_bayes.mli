(** Gaussian Naive Bayes over normalized matrices: per-class feature
    means/variances come from factorized column statistics of per-class
    row subsets ([Normalized.select_rows] + [Colops]), so training never
    materializes T. *)

open La
open Morpheus

type class_stats = {
  label : float;
  prior : float;
  mean : float array;
  variance : float array;  (** floored at 1e-9 *)
}

type model = { classes : class_stats list; d : int }

val train : Normalized.t -> Dense.t -> model
(** Targets are arbitrary class labels as floats (≥ 2 distinct). *)

val feature_dim : model -> int

val make : d:int -> class_stats list -> model
(** Rebuild a model from persisted per-class statistics (the model
    registry's load path); raises [Invalid_argument] unless the
    invariants of {!train} hold (width [d] everywhere, ≥ 2 classes,
    priors in (0, 1], variances at least the floor). *)

val log_joint : class_stats -> float array -> float
(** log p(c) + Σ log N(xⱼ | μⱼ, σⱼ²) for one example. *)

val predict_dense : model -> Dense.t -> float array
(** Predict labels for the rows of a dense feature matrix. *)

val predict : model -> Normalized.t -> float array
(** Score the normalized matrix row by row (1×d slices only). *)

val accuracy : model -> Normalized.t -> Dense.t -> float
