(** Least-squares linear regression, three ways, as in the paper:
    normal equations (Algorithms 5/6), gradient descent (appendix
    Algorithms 11/12), and the Schleich et al. SIGMOD'16 co-factor +
    AdaGrad hybrid (appendix Algorithms 13/14). *)

open La

module Make (M : Morpheus.Data_matrix.S) : sig
  val train_normal : M.t -> Dense.t -> Dense.t
  (** [w = ginv(crossprod(T))·(TᵀY)]; the factorized instantiation runs
      Algorithm 2's efficient cross-product. *)

  val train_gd :
    ?alpha:float -> ?iters:int -> ?w0:Dense.t ->
    ?on_iter:(int -> Dense.t -> unit) ->
    M.t -> Dense.t -> Dense.t
  (** [w ← w − α·Tᵀ(Tw − Y)]. [on_iter i w] observes the live weights
      after iteration [i] (1-based) — the checkpoint hook; resuming
      from [w0] with the remaining iteration count is
      bitwise-identical to the uninterrupted run. Raises
      {!La.Validate.Numeric_error} if a step produces a non-finite
      weight. *)

  val cofactor : M.t -> Dense.t -> Dense.t
  (** The (d+1)×d co-factor matrix [C = \[YᵀT; crossprod(T)\]]. *)

  val train_cofactor :
    ?alpha:float -> ?iters:int -> ?w0:Dense.t -> M.t -> Dense.t -> Dense.t
  (** AdaGrad touching only [C]: the gradient is [Cᵀ·\[−1; w\]]. *)

  val rss : M.t -> Dense.t -> Dense.t -> float
  (** Residual sum of squares ‖Tw − Y‖². *)
end
