(* Reimplementation of Orion's "factorized learning" for GLMs (Kumar et
   al., SIGMOD 2015 [26]) — the ML-algorithm-specific comparator of the
   paper's Table 8. The key difference from Morpheus (§3.3.3): Orion
   stores the partial inner products over R in an *associative array*
   keyed by the foreign key, rather than using matrix multiplications;
   the paper attributes Orion's lower speed-ups to these hashing
   overheads, which we reproduce faithfully with a Hashtbl keyed by the
   R-row id. Dense features and a single PK-FK join only, like Orion. *)

open La
open Sparse

(* One iteration of factorized logistic-regression GD over (S, K, R). *)
let logreg_iteration ~alpha ~s ~k ~r ~y w =
  let ns = Dense.rows s and ds = Dense.cols s in
  let nr = Dense.rows r and dr = Dense.cols r in
  let ws = Array.init ds (fun j -> Dense.get w j 0) in
  let wr = Array.init dr (fun j -> Dense.get w (ds + j) 0) in
  (* Phase 1: partial inner products over R, stored in an associative
     array keyed by RID (Orion's HR statistics table). *)
  let hr : (int, float) Hashtbl.t = Hashtbl.create (2 * nr) in
  for rid = 0 to nr - 1 do
    let acc = ref 0.0 in
    for j = 0 to dr - 1 do
      acc := !acc +. (Dense.unsafe_get r rid j *. wr.(j))
    done ;
    Hashtbl.replace hr rid !acc
  done ;
  (* Phase 2: scan S, probe the associative array for the partial inner
     product, accumulate the gradient over S's features and a per-RID
     gradient weight for R (a dense accumulator: RIDs are dense row
     numbers after the §3.1 preprocessing). *)
  let grad_s = Array.make ds 0.0 in
  let gr = Array.make nr 0.0 in
  for i = 0 to ns - 1 do
    let rid = Indicator.col_of_row k i in
    let partial_r =
      match Hashtbl.find_opt hr rid with
      | Some v -> v
      | None -> invalid_arg "Orion: missing RID in associative array"
    in
    let inner = ref partial_r in
    for j = 0 to ds - 1 do
      inner := !inner +. (Dense.unsafe_get s i j *. ws.(j))
    done ;
    let yi = Dense.get y i 0 in
    let p = yi /. (1.0 +. Stdlib.exp (yi *. !inner)) in
    for j = 0 to ds - 1 do
      grad_s.(j) <- grad_s.(j) +. (p *. Dense.unsafe_get s i j)
    done ;
    gr.(rid) <- gr.(rid) +. p
  done ;
  (* Phase 3: expand the per-RID gradient weights over R's features. *)
  let grad_r = Array.make dr 0.0 in
  for rid = 0 to nr - 1 do
    let p = gr.(rid) in
    if p <> 0.0 then
      for j = 0 to dr - 1 do
        grad_r.(j) <- grad_r.(j) +. (p *. Dense.unsafe_get r rid j)
      done
  done ;
  Dense.init (ds + dr) 1 (fun i _ ->
      let g = if i < ds then grad_s.(i) else grad_r.(i - ds) in
      Dense.get w i 0 +. (alpha *. g))

let train_logreg ?(alpha = 1e-4) ?(iters = 20) ?w0 ~s ~k ~r ~y () =
  let d = Dense.cols s + Dense.cols r in
  let w = ref (match w0 with Some w -> Dense.copy w | None -> Dense.create d 1) in
  for _ = 1 to iters do
    w := logreg_iteration ~alpha ~s ~k ~r ~y !w
  done ;
  !w
